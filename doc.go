// Package rhsd is the root of a from-scratch Go reproduction of
// "Faster Region-based Hotspot Detection" (Chen, Zhong, Yang, Geng, Zeng,
// Yu — DAC 2019): an end-to-end region-based lithography hotspot detector
// together with every substrate it needs — a tensor/neural-network stack,
// Manhattan layout modelling, a lithography-simulation proxy, a synthetic
// benchmark suite and three baseline detectors — plus the harness that
// regenerates the paper's Table 1 and Figures 5, 9 and 10.
//
// The implementation lives under internal/; executables under cmd/;
// runnable walkthroughs under examples/. Start with README.md, DESIGN.md
// and the quickstart example.
package rhsd
