# Tier-1 verification and developer shortcuts. `make verify` is the
# gate every PR must keep green: build, vet, full test suite, and the
# race detector (short mode) over the parallel compute paths.

GO ?= go

.PHONY: build vet test race race-full verify serve-smoke obs-smoke cache-smoke trace-smoke kernel-matrix bench bench-smoke bench-parallel bench-alloc bench-scan bench-obs bench-serve bench-simd bench-quant

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass in short mode: the parity suites in
# internal/parallel, internal/tensor, internal/hsd and internal/serve
# drive every parallelised kernel and the serving pool under -race;
# -short keeps the training-heavy packages fast.
race:
	$(GO) test -race -short ./...

# Full race pass including long training tests; slow, run before releases.
race-full:
	$(GO) test -race ./...

# End-to-end daemon check: rhsd-serve starts on a loopback port, scans a
# generated layout through its own HTTP API, verifies the error boundary
# on a malformed request, and drains cleanly.
serve-smoke:
	$(GO) run ./cmd/rhsd-serve -selftest -init-random

# Observability smoke: the same selftest with pprof mounted, which also
# asserts the Prometheus exposition on /metrics (request counters,
# per-stage histograms, pool gauges) against known request counts.
obs-smoke:
	$(GO) run ./cmd/rhsd-serve -selftest -init-random -pprof

# Result-cache smoke: the content-addressed cache unit suite, the layout
# diff edge cases, the differential cached/incremental/cold scan harness
# (short mode), and a brief run of the cache-key fuzzer's corpus.
cache-smoke:
	$(GO) test -short -count=1 ./internal/scancache
	$(GO) test -short -count=1 -run 'Diff|Dirty' ./internal/layout
	$(GO) test -short -count=1 -run 'Cache|Rescan|Diff|Dirty|Adversarial|WeightChange' ./internal/hsd
	$(GO) test -run='^$$' -fuzz=FuzzCacheKey -fuzztime=30x ./internal/hsd

# Flight-recorder smoke: the span-tree unit suite (ring semantics, span
# pooling, bounded drops, traceparent), the traced-scan shape and
# per-span profile-parity tests, the concurrent hammer under -race, and
# the serve selftest — which asserts end to end that a /detect request
# produces a retrievable trace with queue-wait, scan, megatile and
# correctly nested stage spans, joined to /statusz scan history.
trace-smoke:
	$(GO) test -count=1 ./internal/telemetry
	$(GO) test -count=1 -run 'TestScanTraceTree|TestPerTileScanTrace|TestProfileScopeParity' ./internal/hsd
	$(GO) test -race -count=1 -run 'TestTraceHammer' ./internal/telemetry
	$(GO) run ./cmd/rhsd-serve -selftest -init-random -slow-scan 1ns

# GEMM kernel matrix: re-run the numeric parity suites with each
# registered micro-kernel forced via RHSD_GEMM_KERNEL, then the int8
# parity suites with each quantized kernel forced via RHSD_QGEMM_KERNEL.
# A kernel the host cannot run is skipped inside the tests with a logged
# reason (the TestForcedKernelActive gates record that the request was
# not honored), so the matrix stays green on narrower machines while
# documenting what was not exercised. The final -race run hammers the
# atomic kernel dispatch while Gemm calls are in flight.
kernel-matrix:
	for k in go go-fma sse avx2 avx512; do \
		echo "== RHSD_GEMM_KERNEL=$$k =="; \
		RHSD_GEMM_KERNEL=$$k $(GO) test -count=1 \
			-run 'Gemm|Conv|Infer|Kernel|Quantize' ./internal/tensor ./internal/nn || exit 1; \
	done
	for q in qgo qavx2 qvnni; do \
		echo "== RHSD_QGEMM_KERNEL=$$q =="; \
		RHSD_QGEMM_KERNEL=$$q $(GO) test -count=1 \
			-run 'QGemm|Quant|QConv' ./internal/tensor ./internal/nn || exit 1; \
	done
	$(GO) test -race -count=1 -run 'TestGemmKernelDispatchRace' ./internal/tensor

verify: build vet test race serve-smoke obs-smoke cache-smoke trace-smoke kernel-matrix bench-quant

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, to catch bit-rot in bench code
# without paying full measurement time. The root package only runs the
# Micro benchmarks: the Table1/Figure10 ones train models in their setup
# and would dominate the smoke run.
bench-smoke:
	$(GO) test -run='^$$' -bench=Micro -benchtime=1x .
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/...

# Serial-vs-parallel wall-clock comparison; writes BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/rhsd-bench -exp parallel

# Heap-path vs zero-allocation inference comparison; writes BENCH_alloc.json.
bench-alloc:
	$(GO) run ./cmd/rhsd-bench -exp alloc

# Per-tile vs megatile full-chip scan comparison; writes BENCH_scan.json.
bench-scan:
	$(GO) run ./cmd/rhsd-bench -exp scan

# Telemetry-on vs telemetry-off overhead guard (<1%); writes BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/rhsd-bench -exp obs

# Cached serving daemon under a 90%-repeat load; writes BENCH_serve.json.
# On a host with fewer than two CPUs this records {"status": "skipped"}.
bench-serve:
	$(GO) run ./cmd/rhsd-bench -exp serve

# Per-GEMM-kernel throughput, end-to-end detect delta and fused-im2col
# comparison; writes BENCH_simd.json. On a host without AVX2+FMA this
# records {"status": "skipped"} naming the missing feature.
bench-simd:
	$(GO) run ./cmd/rhsd-bench -exp simd

# Int8 vs fp32 kernel throughput (min-of-3), end-to-end detection under a
# calibrated int8 trunk, steady-state allocations and the fp32-vs-int8
# accuracy-delta gate at smoke scale; writes BENCH_quant.json. On a host
# without AVX-512-VNNI (or AVX2) this records {"status": "skipped"}
# naming the missing feature.
bench-quant:
	$(GO) run ./cmd/rhsd-bench -exp quant
