# Tier-1 verification and developer shortcuts. `make verify` is the
# gate every PR must keep green: build, full test suite, and the race
# detector (short mode) over the parallel compute paths.

GO ?= go

.PHONY: build test race race-full verify bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass in short mode: the parity suites in
# internal/parallel, internal/tensor and internal/hsd drive every
# parallelised kernel under -race; -short keeps the training-heavy
# packages fast.
race:
	$(GO) test -race -short ./...

# Full race pass including long training tests; slow, run before releases.
race-full:
	$(GO) test -race ./...

verify: build test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Serial-vs-parallel wall-clock comparison; writes BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/rhsd-bench -exp parallel
