// Command rhsd-detect runs one-pass region-based hotspot detection on a
// layout file with a trained checkpoint.
//
//	rhsd-detect -ckpt rhsd.ckpt -layout region.layout
//	rhsd-detect -ckpt rhsd.ckpt -layout chip.layout -png out.png
//
// Layouts larger than one model region are scanned in megatiles —
// factor×factor-region windows, each rasterized once and detected in a
// single fully-convolutional forward pass — and the per-megatile
// detections are merged with hotspot NMS. The -megatile flag picks the
// factor: 0 (default) sizes it automatically from the -megatile-mem
// workspace budget, an explicit N forces N×N regions per pass, and a
// negative value falls back to the legacy per-tile scan. Detections
// print as CSV (clip centre, size, score) in layout nm.
//
// Tiles are scanned concurrently by the parallel compute engine; -workers
// (default: RHSD_WORKERS or NumCPU) sizes the pool. Results are
// bit-identical for every worker count.
//
// The -cpuprofile and -memprofile flags write pprof profiles of the scan
// for offline hot-path diagnosis; -trace writes a runtime/trace of the
// whole run, with every pipeline stage (backbone, enc-dec, inception,
// CPN, pruning, h-NMS, refinement) annotated as a trace region — open it
// with `go tool trace` to see where a scan's wall time goes across
// goroutines. -trace-dump instead prints the scan's own span trace — the
// same per-megatile timeline rhsd-serve's flight recorder retains — as
// an aligned text tree on stderr, no tooling required.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/metrics"
	"rhsd/internal/parallel"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
	"rhsd/internal/viz"
)

func main() {
	ckpt := flag.String("ckpt", "rhsd.ckpt", "model checkpoint from rhsd-train")
	layoutPath := flag.String("layout", "", "layout file (BOUNDS/RECT format)")
	pngPath := flag.String("png", "", "optional detection-map PNG output")
	thresh := flag.Float64("threshold", -1, "override score threshold, 0 allowed (negative = config default)")
	megatile := flag.Int("megatile", 0, "megatile factor: 0 = auto from -megatile-mem, N = N×N regions per pass, negative = per-tile scan")
	megatileMem := flag.Int("megatile-mem", 512, "inference workspace budget in MiB for -megatile 0 (auto)")
	workers := flag.Int("workers", 0, "compute worker pool size (0 = RHSD_WORKERS or NumCPU)")
	precision := flag.String("precision", "fp32", "trunk numeric path: fp32, or int8 (calibrated at startup on synthetic oracle-labeled layouts)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime/trace with per-stage regions to this file")
	traceDump := flag.Bool("trace-dump", false, "print the scan's span trace (per-megatile timeline) to stderr after the run")
	flag.Parse()

	// 0 means "unset" for -workers and -megatile, so an explicitly passed
	// bad value must be caught by inspecting which flags were set rather
	// than by comparing against the sentinel.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			if *workers < 1 {
				fatal(fmt.Errorf("-workers must be >= 1 (got %d)", *workers))
			}
		case "megatile-mem":
			if *megatileMem < 1 {
				fatal(fmt.Errorf("-megatile-mem must be >= 1 MiB (got %d)", *megatileMem))
			}
		}
	})
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *layoutPath == "" {
		fatal(fmt.Errorf("-layout is required"))
	}
	f, err := os.Open(*layoutPath)
	if err != nil {
		fatal(err)
	}
	l, err := layout.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	cfg := eval.FastProfile().HSD
	if *thresh >= 0 {
		cfg.ScoreThreshold = *thresh
	}
	m, err := hsd.NewModel(cfg)
	if err != nil {
		fatal(err)
	}
	if err := m.LoadChecked(*ckpt); err != nil {
		fatal(err)
	}
	if *precision == hsd.PrecisionInt8 {
		cal := eval.SyntheticCalibration(m.Config, 4)
		if err := m.CalibrateInt8(cal); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rhsd-detect: int8 trunk calibrated on %d synthetic regions\n", len(cal))
	}
	if err := m.SetPrecision(*precision); err != nil {
		fatal(err)
	}

	// -trace-dump records the scan into a one-slot flight recorder — the
	// same span tree rhsd-serve retains per request — and prints it as an
	// aligned text timeline, one line per megatile with its stage times.
	var tr *telemetry.Trace
	if *traceDump {
		tensor.SetProfiling(true)
		tr = telemetry.NewFlightRecorder(1).StartTrace("detect", "cli", "")
		m.SetTrace(tr, tr.Root())
	}

	var dets []hsd.Detection
	switch {
	case *megatile < 0:
		dets, err = m.DetectLayoutChecked(l, l.Bounds)
	case *megatile == 0:
		factor := m.AutoMegatileFactor(l.Bounds, int64(*megatileMem)<<20)
		fmt.Fprintf(os.Stderr, "rhsd-detect: auto megatile factor %d (budget %d MiB)\n", factor, *megatileMem)
		dets, err = m.DetectLayoutMegatileChecked(l, l.Bounds, factor)
	default:
		dets, err = m.DetectLayoutMegatileChecked(l, l.Bounds, *megatile)
	}
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		m.SetTrace(nil, nil)
		tr.Complete()
		tr.Snapshot().RenderText(os.Stderr)
	}
	fmt.Println("cx_nm,cy_nm,w_nm,h_nm,score")
	for _, d := range dets {
		fmt.Printf("%.1f,%.1f,%.1f,%.1f,%.4f\n",
			d.Clip.CX(), d.Clip.CY(), d.Clip.W(), d.Clip.H(), d.Score)
	}
	fmt.Fprintf(os.Stderr, "rhsd-detect: %d hotspot clips\n", len(dets))

	if *pngPath != "" {
		md := make([]metrics.Detection, len(dets))
		for i, d := range dets {
			md[i] = metrics.Detection{Clip: d.Clip, Score: d.Score}
		}
		c := viz.RenderRegion(l, nil, md, 768)
		if err := c.SaveFile(*pngPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rhsd-detect: wrote %s\n", *pngPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-detect:", err)
	os.Exit(1)
}
