// Command rhsd-litho runs the lithography proxy on a layout file: it
// reports the simulated hotspots (the ground-truth generator used by the
// benchmarks) and a process-window robustness summary.
//
//	rhsd-litho -layout region.layout
//	rhsd-litho -layout region.layout -defocus 20 -png aerial.png
//
// Accepts the text layout format of rhsd-gendata or a GDSII stream
// (detected by extension .gds).
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"strings"

	"rhsd/internal/layout"
	"rhsd/internal/litho"
)

func main() {
	layoutPath := flag.String("layout", "", "layout file (.layout text format or .gds stream)")
	defocus := flag.Float64("defocus", 20, "defocus corner in nm for the window report")
	pngPath := flag.String("png", "", "optional aerial-image PNG output")
	pitch := flag.Float64("pitch", 0, "override simulation pitch in nm/px (0 = model default)")
	flag.Parse()

	if *layoutPath == "" {
		fatal(fmt.Errorf("-layout is required"))
	}
	f, err := os.Open(*layoutPath)
	if err != nil {
		fatal(err)
	}
	var l *layout.Layout
	if strings.HasSuffix(*layoutPath, ".gds") {
		l, err = layout.ReadGDS(f)
	} else {
		l, err = layout.Load(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}

	m := litho.DefaultModel()
	if *pitch > 0 {
		m.PitchNM = *pitch
	}
	fmt.Printf("layout: %d shapes in %v nm\n", len(l.Rects), l.Bounds)

	hs := m.Simulate(l, l.Bounds)
	fmt.Printf("simulated hotspots: %d\n", len(hs))
	for i, h := range hs {
		fmt.Printf("  %2d: %-6s at (%.0f, %.0f) nm, %d px\n",
			i, h.Kind, h.Center.CX(), h.Center.CY(), h.Pixels)
	}

	rep := m.AnalyzeWindow(l, l.Bounds, *defocus)
	fmt.Printf("process window: %v\n", rep)

	if *pngPath != "" {
		mask := l.Rasterize(l.Bounds, m.PitchNM)
		aerial := m.Aerial(mask)
		h, w := aerial.Dim(1), aerial.Dim(2)
		img := image.NewGray(image.Rect(0, 0, w, h))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := aerial.At(0, y, x)
				if v > 1 {
					v = 1
				}
				img.SetGray(x, y, color.Gray{Y: uint8(v * 255)})
			}
		}
		out, err := os.Create(*pngPath)
		if err != nil {
			fatal(err)
		}
		if err := png.Encode(out, img); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("aerial image written to %s\n", *pngPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-litho:", err)
	os.Exit(1)
}
