// Command rhsd-train trains an R-HSD model on layout regions and writes a
// checkpoint.
//
//	rhsd-train -data data/ -ckpt model.ckpt -steps 700
//
// It consumes the directory layout written by rhsd-gendata: each case's
// train/ directory holds region_*.layout files and a hotspots.csv. With
// -data unset it synthesizes the benchmark in memory (the common path for
// experiments; gendata/train round-trips exist so users can bring their
// own layouts).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rhsd/internal/dataset"
	"rhsd/internal/eval"
	"rhsd/internal/hsd"
)

func main() {
	dataDir := flag.String("data", "", "dataset directory from rhsd-gendata (empty = synthesize in memory)")
	ckpt := flag.String("ckpt", "rhsd.ckpt", "checkpoint output path")
	steps := flag.Int("steps", 0, "training steps (0 = profile default)")
	seed := flag.Int64("seed", 0, "model seed (0 = profile default)")
	logEvery := flag.Int("log-every", 50, "progress logging period in steps")
	historyPath := flag.String("history", "", "optional CSV of per-step losses")
	flag.Parse()

	p := eval.FastProfile()
	if *steps > 0 {
		p.HSD.TrainSteps = *steps
	}
	if *seed != 0 {
		p.HSD.Seed = *seed
	}

	var samples []hsd.Sample
	if *dataDir == "" {
		fmt.Println("rhsd-train: synthesizing benchmark training halves in memory")
		data := eval.LoadData(p)
		for _, r := range data.MergedTrain {
			samples = append(samples, hsd.MakeSample(r.Layout, r.HotspotPoints(), p.HSD))
		}
	} else {
		var err error
		samples, err = loadSamples(*dataDir, p.HSD)
		if err != nil {
			fatal(err)
		}
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no training samples found"))
	}
	fmt.Printf("rhsd-train: %d training regions, %d steps\n", len(samples), p.HSD.TrainSteps)

	m, err := hsd.NewModel(p.HSD)
	if err != nil {
		fatal(err)
	}
	tr := hsd.NewTrainer(m)
	history := tr.Run(samples, func(step int, st hsd.StepStats) {
		if *logEvery > 0 && step%*logEvery == 0 {
			fmt.Printf("step %5d  loss %.4f (cls %.3f reg %.3f refCls %.3f refReg %.3f L2 %.3f)\n",
				step, st.Total(), st.RPNCls, st.RPNReg, st.RefineCls, st.RefineReg, st.L2)
		}
	})
	if *historyPath != "" {
		f, err := os.Create(*historyPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "step,total,rpn_cls,rpn_reg,refine_cls,refine_reg,l2")
		for i, st := range history {
			fmt.Fprintf(f, "%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
				i, st.Total(), st.RPNCls, st.RPNReg, st.RefineCls, st.RefineReg, st.L2)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("rhsd-train: loss history written to %s\n", *historyPath)
	}
	if err := m.Save(*ckpt); err != nil {
		fatal(err)
	}
	fmt.Printf("rhsd-train: checkpoint written to %s\n", *ckpt)
}

// loadSamples walks <dir>/<Case>/train directories produced by
// rhsd-gendata.
func loadSamples(dir string, cfg hsd.Config) ([]hsd.Sample, error) {
	caseDirs, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var samples []hsd.Sample
	for _, cd := range caseDirs {
		if !cd.IsDir() {
			continue
		}
		regions, err := dataset.LoadSplit(filepath.Join(dir, cd.Name(), "train"))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		for _, r := range regions {
			samples = append(samples, hsd.MakeSample(r.Layout, r.Hotspot, cfg))
		}
	}
	return samples, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-train:", err)
	os.Exit(1)
}
