// Command rhsd-bench regenerates the paper's evaluation artifacts on the
// synthetic benchmark suite:
//
//	rhsd-bench -exp table1              # detector comparison (Table 1)
//	rhsd-bench -exp figure9 -out out/   # qualitative panels (Figure 9)
//	rhsd-bench -exp figure10            # ablation study (Figure 10)
//	rhsd-bench -exp parallel            # serial vs parallel compute engine
//	rhsd-bench -exp alloc               # heap-path vs zero-alloc inference
//	rhsd-bench -exp scan                # per-tile vs megatile full-chip scan
//	rhsd-bench -exp obs                 # telemetry-on vs telemetry-off overhead
//	rhsd-bench -exp serve               # cached serving daemon under load
//	rhsd-bench -exp simd                # per-GEMM-kernel throughput comparison
//	rhsd-bench -exp quant               # int8 vs fp32 kernels + accuracy gate
//	rhsd-bench -exp all -out out/
//
// The -workers flag (default: RHSD_WORKERS or NumCPU) sizes the worker
// pool used by the parallel compute engine; -exp parallel writes the
// serial-vs-parallel wall-clock comparison to BENCH_parallel.json,
// -exp alloc writes the allocation comparison (unblocked vs packed GEMM,
// training-path vs workspace-backed inference) to BENCH_alloc.json, and
// -exp scan writes the per-tile vs megatile scan comparison to
// BENCH_scan.json, -exp obs writes the telemetry overhead guard
// (instrumented vs uninstrumented Detect, budget <1%) to BENCH_obs.json,
// and -exp serve drives an in-process detection daemon with the megatile
// result cache enabled (90% repeat ratio, cold/warm latency percentiles,
// one incremental ?since= rescan) and writes BENCH_serve.json.
// -exp simd measures every GEMM micro-kernel available on the host
// (packed throughput at the dominant backbone shape, end-to-end Detect
// delta, fused vs materialized im2col) and writes BENCH_simd.json.
// -exp quant measures every int8 GEMM kernel against the float32 avx512
// baseline (packed throughput, end-to-end detection under a calibrated
// int8 trunk, steady-state allocations) plus the fp32-vs-int8
// accuracy-delta gate, and writes BENCH_quant.json.
// All reports embed host metadata (CPU count, GOMAXPROCS, arch, CPU
// feature flags, active GEMM and int8-GEMM kernels).
// On a host with fewer than two CPUs, -exp parallel and -exp serve
// refuse to emit speedup numbers and record {"status": "skipped"} with
// the reason instead; -exp simd does the same on hosts without AVX2,
// and -exp quant on hosts without AVX-512-VNNI.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// whatever experiments ran, for offline hot-path diagnosis; -trace
// writes a runtime/trace with per-stage regions for `go tool trace`.
//
// All experiments run the FastProfile: a proportionally shrunk
// configuration that executes in minutes on one CPU core. Absolute
// numbers therefore differ from the paper's GPU-scale results; the
// comparison *shape* (who wins, by roughly how much) is the reproduction
// target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"rhsd/internal/dataset"
	"rhsd/internal/eval"
	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
)

func main() {
	expFlag := flag.String("exp", "table1", "experiment to run: table1, table1-ext, figure9, figure10, roc, ablation-ext, parallel, alloc, scan, obs, serve, simd, quant, all")
	outFlag := flag.String("out", "out", "output directory for figure panels and CSVs")
	trainSteps := flag.Int("steps", 0, "override R-HSD training steps (0 = profile default)")
	nTrain := flag.Int("train-regions", 0, "override training regions per case (0 = profile default)")
	nTest := flag.Int("test-regions", 0, "override test regions per case (0 = profile default)")
	seed := flag.Int64("seed", 0, "override model seed (0 = profile default)")
	workersFlag := flag.Int("workers", 0, "compute worker pool size (0 = RHSD_WORKERS or NumCPU)")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output path for the -exp parallel report")
	allocOut := flag.String("alloc-out", "BENCH_alloc.json", "output path for the -exp alloc report")
	scanOut := flag.String("scan-out", "BENCH_scan.json", "output path for the -exp scan report")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "output path for the -exp obs report")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output path for the -exp serve report")
	simdOut := flag.String("simd-out", "BENCH_simd.json", "output path for the -exp simd report")
	quantOut := flag.String("quant-out", "BENCH_quant.json", "output path for the -exp quant report")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime/trace with per-stage regions to this file")
	flag.Parse()

	// 0 means "unset" for -workers, so an explicitly passed bad value is
	// caught by checking which flags were set, not the sentinel.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" && *workersFlag < 1 {
			fatal(fmt.Errorf("-workers must be >= 1 (got %d)", *workersFlag))
		}
	})
	if *workersFlag > 0 {
		parallel.SetWorkers(*workersFlag)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}

	p := eval.FastProfile()
	if *trainSteps > 0 {
		p.HSD.TrainSteps = *trainSteps
	}
	if *nTrain > 0 {
		p.NTrain = *nTrain
	}
	if *nTest > 0 {
		p.NTest = *nTest
	}
	if *seed != 0 {
		p.HSD.Seed = *seed
	}
	if err := p.Validate(); err != nil {
		fatal(err)
	}

	progress := func(s string) {
		fmt.Printf("[%s] %s\n", time.Now().Format("15:04:05"), s)
	}

	runTable1 := *expFlag == "table1" || *expFlag == "all"
	runFig9 := *expFlag == "figure9" || *expFlag == "all"
	runFig10 := *expFlag == "figure10" || *expFlag == "all"
	runROC := *expFlag == "roc" || *expFlag == "all"
	runExtAbl := *expFlag == "ablation-ext" || *expFlag == "all"
	runExtTable := *expFlag == "table1-ext" || *expFlag == "all"
	runPar := *expFlag == "parallel" || *expFlag == "all"
	runAlloc := *expFlag == "alloc" || *expFlag == "all"
	runScan := *expFlag == "scan" || *expFlag == "all"
	runObs := *expFlag == "obs" || *expFlag == "all"
	runServe := *expFlag == "serve" || *expFlag == "all"
	runSimd := *expFlag == "simd" || *expFlag == "all"
	runQuant := *expFlag == "quant" || *expFlag == "all"
	if !runTable1 && !runFig9 && !runFig10 && !runROC && !runExtAbl && !runExtTable && !runPar && !runAlloc && !runScan && !runObs && !runServe && !runSimd && !runQuant {
		fatal(fmt.Errorf("unknown experiment %q", *expFlag))
	}

	if runPar {
		progress(fmt.Sprintf("parallel compute bench: %d workers", parallel.Workers()))
		if err := runParallelBench(p, parallel.Workers(), *parallelOut, progress); err != nil {
			fatal(err)
		}
	}

	if runAlloc {
		progress(fmt.Sprintf("allocation bench: %d workers", parallel.Workers()))
		if err := runAllocBench(p, parallel.Workers(), *allocOut, progress); err != nil {
			fatal(err)
		}
	}

	if runScan {
		progress(fmt.Sprintf("scan bench: %d workers", parallel.Workers()))
		if err := runScanBench(p, parallel.Workers(), *scanOut, progress); err != nil {
			fatal(err)
		}
	}

	if runObs {
		progress(fmt.Sprintf("observability overhead bench: %d workers", parallel.Workers()))
		if err := runObsBench(p, parallel.Workers(), *obsOut, progress); err != nil {
			fatal(err)
		}
	}

	if runServe {
		progress(fmt.Sprintf("serving bench: %d workers", parallel.Workers()))
		if err := runServeBench(p, parallel.Workers(), *serveOut, progress); err != nil {
			fatal(err)
		}
	}

	if runSimd {
		progress(fmt.Sprintf("simd kernel bench: %d workers, active kernel %s", parallel.Workers(), tensor.GemmKernel()))
		if err := runSimdBench(p, parallel.Workers(), *simdOut, progress); err != nil {
			fatal(err)
		}
	}

	if runQuant {
		progress(fmt.Sprintf("quant kernel bench: %d workers, active int8 kernel %s", parallel.Workers(), tensor.QGemmKernel()))
		if err := runQuantBench(p, parallel.Workers(), *quantOut, progress); err != nil {
			fatal(err)
		}
	}

	needData := runTable1 || runFig9 || runFig10 || runROC || runExtAbl || runExtTable
	if !needData {
		return
	}
	progress("generating benchmark cases")
	data := eval.LoadData(p)
	for _, ds := range data.Cases {
		progress(fmt.Sprintf("%s: train %v | test %v",
			ds.Name, dataset.ComputeStats(ds.Train), dataset.ComputeStats(ds.Test)))
	}

	if runTable1 {
		tbl, err := eval.RunTable1(p, data, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nTable 1 — comparison with state-of-the-art")
		fmt.Println(tbl.Render(eval.DetTCAD))
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fatal(err)
		}
		csvPath := *outFlag + "/table1.csv"
		if err := os.WriteFile(csvPath, []byte(tbl.CSV()), 0o644); err != nil {
			fatal(err)
		}
		progress("wrote " + csvPath)
	}

	if runFig10 {
		variants, err := eval.RunFigure10(p, data, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println(eval.RenderFigure10(variants))
	}

	if runExtTable {
		tbl, err := eval.RunExtendedTable1(p, data, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nExtended Table 1 — the paper's other method classes")
		fmt.Println(tbl.Render(eval.DetOurs))
	}

	if runExtAbl {
		variants, err := eval.RunExtendedAblation(p, data, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nExtended ablation — anchor diversity and NMS choice")
		fmt.Println(eval.RenderFigure10(variants))
	}

	if runROC {
		rs, err := eval.RunROC(p, data, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println(eval.RenderROCResults(rs))
	}

	if runFig9 {
		if err := eval.RunFigure9(p, data, *outFlag, progress); err != nil {
			fatal(err)
		}
		progress("figure 9 panels in " + *outFlag)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-bench:", err)
	os.Exit(1)
}

// writeHeapProfile snapshots the heap after a final GC, the conventional
// -memprofile behaviour.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}
