package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
)

// parallelBenchEntry is one serial-vs-parallel wall-clock comparison in
// BENCH_parallel.json.
type parallelBenchEntry struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// parallelBenchReport is the BENCH_parallel.json schema; it records the
// machine context so speedup trajectories across PRs stay interpretable.
type parallelBenchReport struct {
	Host    hostMeta             `json:"host"`
	Workers int                  `json:"workers"`
	Entries []parallelBenchEntry `json:"entries"`
}

// bestOf runs f iters times and returns the fastest wall-clock duration —
// the usual noise-robust point estimate for single-process benchmarks.
func bestOf(iters int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// compare measures f at 1 worker and at the configured pool size.
func compare(name string, workers, iters int, f func(), progress func(string)) parallelBenchEntry {
	prev := parallel.SetWorkers(1)
	serial := bestOf(iters, f)
	parallel.SetWorkers(workers)
	par := bestOf(iters, f)
	parallel.SetWorkers(prev)
	e := parallelBenchEntry{
		Name:       name,
		SerialMS:   float64(serial.Microseconds()) / 1000,
		ParallelMS: float64(par.Microseconds()) / 1000,
	}
	if par > 0 {
		e.Speedup = float64(serial) / float64(par)
	}
	progress(fmt.Sprintf("parallel bench %-16s serial %8.2f ms  parallel %8.2f ms  speedup %.2fx",
		name, e.SerialMS, e.ParallelMS, e.Speedup))
	return e
}

// runParallelBench compares the serial and parallel compute paths on the
// R-HSD hot kernels and a full-region detection, then writes the
// comparison to outPath as JSON. The detector is untrained (weights are
// seed-random): detection wall-clock depends only on the architecture,
// not on what the weights converged to.
func runParallelBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	if reason := serialHostReason(); reason != "" {
		return writeSkipped(outPath, reason, progress)
	}
	warnIfSerialHost()
	report := parallelBenchReport{
		Host:    collectHostMeta(),
		Workers: workers,
	}

	// GEMM at the shape that dominates a 224-px region forward pass:
	// [64, 64·3·3] × [64·3·3, 56·56].
	const gm, gk, gn = 64, 64 * 3 * 3, 56 * 56
	ga := make([]float32, gm*gk)
	gb := make([]float32, gk*gn)
	gc := make([]float32, gm*gn)
	for i := range ga {
		ga[i] = float32(i%17) * 0.25
	}
	for i := range gb {
		gb[i] = float32(i%13) * 0.5
	}
	report.Entries = append(report.Entries, compare("gemm", workers, 5, func() {
		tensor.Gemm(false, false, gm, gn, gk, 1, ga, gb, 0, gc)
	}, progress))

	// One 3×3 convolution over a 64×56×56 feature map.
	cx := tensor.New(1, 64, 56, 56)
	cw := tensor.New(64, 64, 3, 3)
	cbias := tensor.New(64)
	for i, d := 0, cx.Data(); i < len(d); i++ {
		d[i] = float32(i%11) * 0.1
	}
	for i, d := 0, cw.Data(); i < len(d); i++ {
		d[i] = float32(i%7) * 0.2
	}
	copts := tensor.ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	report.Entries = append(report.Entries, compare("conv2d", workers, 5, func() {
		tensor.Conv2D(cx, cw, cbias, copts)
	}, progress))

	// Full-region detection and a multi-tile full-chip scan with the
	// profile's detector configuration.
	cfg := p.HSD
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return err
	}
	regionNM := cfg.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM, 2*regionNM))
	for x := 40; x < 2*regionNM-110; x += 150 {
		l.Add(layout.R(x, 30, x+70, 2*regionNM-30))
	}
	region := l.Window(layout.R(0, 0, regionNM, regionNM))
	raster := hsd.MakeSample(region, nil, cfg).Raster
	report.Entries = append(report.Entries, compare("detect_region", workers, 3, func() {
		m.Detect(raster)
	}, progress))
	report.Entries = append(report.Entries, compare("fullchip_scan", workers, 2, func() {
		m.DetectLayout(l, l.Bounds)
	}, progress))

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
