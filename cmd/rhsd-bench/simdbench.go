package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

// simdKernelEntry is one GEMM micro-kernel's measured throughput at the
// dominant backbone shape plus its end-to-end detection time.
type simdKernelEntry struct {
	Name          string  `json:"name"`
	Family        string  `json:"family"` // "muladd" or "fma"
	GemmNsPerOp   float64 `json:"gemm_ns_per_op"`
	GFlops        float64 `json:"gflops"`
	SpeedupVsSSE  float64 `json:"speedup_vs_sse"` // 0 when sse unavailable
	DetectNsPerOp float64 `json:"detect_ns_per_op"`
	DetectVsSSE   float64 `json:"detect_speedup_vs_sse"`
	AllocsPerOp   int64   `json:"gemm_allocs_per_op"`
}

// simdBenchReport is the BENCH_simd.json schema: per-kernel GEMM GF/s at
// the [64 × 576 × 3136] backbone shape, end-to-end DetectRegion deltas,
// and the fused-vs-materialized im2col comparison under the widest
// kernel.
type simdBenchReport struct {
	Host      hostMeta          `json:"host"`
	Workers   int               `json:"workers"`
	GemmShape [3]int            `json:"gemm_shape"` // m, k, n
	Kernels   []simdKernelEntry `json:"kernels"`

	ConvMaterialized allocBenchEntry `json:"conv_materialized"`
	ConvFused        allocBenchEntry `json:"conv_fused"`
	ConvFusedSpeedup float64         `json:"conv_fused_speedup"`
}

// simdBenchReps is how many times each timed section is repeated; the
// fastest repetition is reported. Min-of-N is the standard defence
// against scheduler and thermal noise for wall-clock kernels — the
// minimum is the run least perturbed by the rest of the machine.
const simdBenchReps = 3

// measureMin runs f under the benchmark harness reps times and keeps
// the repetition with the lowest ns/op.
func measureMin(name string, reps int, f func(b *testing.B)) allocBenchEntry {
	best := measure(name, f)
	for i := 1; i < reps; i++ {
		if e := measure(name, f); e.NsPerOp < best.NsPerOp {
			best = e
		}
	}
	return best
}

// runSimdBench measures every GEMM micro-kernel available on this host —
// packed-GEMM throughput at the dominant backbone shape and the
// end-to-end detection delta — plus the fused-im2col win, and writes
// BENCH_simd.json. On a host without AVX2+FMA the vectorised kernels the
// experiment exists to measure cannot run, so it records a skipped
// report naming the missing feature instead of emitting scalar numbers
// under a misleading filename.
func runSimdBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	if !tensor.GemmKernelAvailable("avx2") {
		return writeSkipped(outPath,
			"host lacks AVX2+FMA (or OS support for YMM state); SIMD kernel comparison not measurable", progress)
	}

	origKernel := tensor.GemmKernel()
	defer tensor.SetGemmKernel(origKernel)

	report := simdBenchReport{
		Host:      collectHostMeta(),
		Workers:   workers,
		GemmShape: [3]int{64, 64 * 3 * 3, 56 * 56},
	}

	// Dominant backbone GEMM: [64, 576] × [576, 3136].
	gm, gk, gn := report.GemmShape[0], report.GemmShape[1], report.GemmShape[2]
	ga := make([]float32, gm*gk)
	gb := make([]float32, gk*gn)
	gc := make([]float32, gm*gn)
	for i := range ga {
		ga[i] = float32(i%17) * 0.25
	}
	for i := range gb {
		gb[i] = float32(i%13) * 0.5
	}
	flops := 2 * float64(gm) * float64(gk) * float64(gn)

	// Detection bench fixture, shared by every kernel.
	cfg := p.HSD
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return err
	}
	regionNM := cfg.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM, 2*regionNM))
	for x := 40; x < 2*regionNM-110; x += 150 {
		l.Add(layout.R(x, 30, x+70, 2*regionNM-30))
	}
	region := l.Window(layout.R(0, 0, regionNM, regionNM))
	raster := hsd.MakeSample(region, nil, cfg).Raster

	var sseGemmNs, sseDetectNs float64
	for _, name := range tensor.GemmKernels() {
		if !tensor.GemmKernelAvailable(name) {
			progress(fmt.Sprintf("simd bench: kernel %s unsupported on this host; skipping", name))
			continue
		}
		if _, err := tensor.SetGemmKernel(name); err != nil {
			return err
		}
		gemm := measureMin("gemm_"+name, simdBenchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.Gemm(false, false, gm, gn, gk, 1, ga, gb, 0, gc)
			}
		})
		m.Detect(raster) // warm-up under this kernel sizes arenas
		det := measureMin("detect_"+name, simdBenchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Detect(raster)
			}
		})
		e := simdKernelEntry{
			Name:          name,
			Family:        tensor.GemmKernelFamily(name),
			GemmNsPerOp:   gemm.NsPerOp,
			GFlops:        flops / gemm.NsPerOp,
			DetectNsPerOp: det.NsPerOp,
			AllocsPerOp:   gemm.AllocsPerOp,
		}
		if name == "sse" {
			sseGemmNs, sseDetectNs = gemm.NsPerOp, det.NsPerOp
		}
		report.Kernels = append(report.Kernels, e)
		progress(fmt.Sprintf("simd bench %-7s %7.2f GF/s  detect %6.2f ms/op  (%d allocs/op)",
			name, e.GFlops, det.NsPerOp/1e6, gemm.AllocsPerOp))
	}
	if sseGemmNs > 0 {
		for i := range report.Kernels {
			report.Kernels[i].SpeedupVsSSE = sseGemmNs / report.Kernels[i].GemmNsPerOp
			report.Kernels[i].DetectVsSSE = sseDetectNs / report.Kernels[i].DetectNsPerOp
		}
	}

	// Fused-vs-materialized im2col under the widest kernel: one 3×3
	// convolution over a 64×56×56 feature map with bias+ReLU epilogue.
	if _, err := tensor.SetGemmKernel(origKernel); err != nil {
		return err
	}
	cx := tensor.New(1, 64, 56, 56)
	cw := tensor.New(64, 64, 3, 3)
	cbias := tensor.New(64)
	for i, d := 0, cx.Data(); i < len(d); i++ {
		d[i] = float32(i%11) * 0.1
	}
	for i, d := 0, cw.Data(); i < len(d); i++ {
		d[i] = float32(i%7) * 0.2
	}
	copts := tensor.ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	ep := tensor.Epilogue{Bias: cbias, Act: true}
	ws := tensor.NewWorkspace()

	prevFused := tensor.SetConvFusedIm2col(false)
	report.ConvMaterialized = measureMin("conv2d_materialized", simdBenchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws.Reset()
			tensor.Conv2DInfer(ws, cx, cw, copts, ep)
		}
	})
	tensor.SetConvFusedIm2col(true)
	wsFused := tensor.NewWorkspace() // fresh arena: never allocates the col class
	report.ConvFused = measureMin("conv2d_fused", simdBenchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wsFused.Reset()
			tensor.Conv2DInfer(wsFused, cx, cw, copts, ep)
		}
	})
	tensor.SetConvFusedIm2col(prevFused)
	if report.ConvFused.NsPerOp > 0 {
		report.ConvFusedSpeedup = report.ConvMaterialized.NsPerOp / report.ConvFused.NsPerOp
	}
	progress(fmt.Sprintf("simd bench conv im2col: materialized %6.2f ms/op → fused %6.2f ms/op (%.2fx)",
		report.ConvMaterialized.NsPerOp/1e6, report.ConvFused.NsPerOp/1e6, report.ConvFusedSpeedup))

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
