package main

import (
	"fmt"
	"os"
	"runtime"
)

// hostMeta records the machine context a benchmark ran under. Every bench
// JSON embeds it: BENCH_parallel.json captured on a 1-CPU host looks like
// a parallelisation failure unless the reader can see num_cpu was 1.
type hostMeta struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOARCH     string `json:"goarch"`
	GOOS       string `json:"goos"`
}

func collectHostMeta() hostMeta {
	return hostMeta{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOARCH:     runtime.GOARCH,
		GOOS:       runtime.GOOS,
	}
}

// warnIfSerialHost prints a prominent notice when the process has a
// single scheduling thread: serial-vs-parallel speedups measured in that
// state say nothing about multi-core behaviour.
func warnIfSerialHost() {
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr,
			"rhsd-bench: WARNING: GOMAXPROCS=1 — parallel speedups on this host are meaningless; "+
				"rerun on a multi-core machine before comparing serial vs parallel numbers")
	}
}
