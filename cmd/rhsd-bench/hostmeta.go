package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"rhsd/internal/cpu"
	"rhsd/internal/tensor"
)

// hostMeta records the machine context a benchmark ran under. Every bench
// JSON embeds it: BENCH_parallel.json captured on a 1-CPU host looks like
// a parallelisation failure unless the reader can see num_cpu was 1, and
// a GEMM number captured under the scalar fallback kernel looks like a
// regression unless the reader can see which micro-kernel was active.
type hostMeta struct {
	NumCPU       int      `json:"num_cpu"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	GOARCH       string   `json:"goarch"`
	GOOS         string   `json:"goos"`
	CPUFeatures  []string `json:"cpu_features"`
	GemmKernel   string   `json:"gemm_kernel"`
	GemmKernels  []string `json:"gemm_kernels_available"`
	QGemmKernel  string   `json:"qgemm_kernel"`
	QGemmKernels []string `json:"qgemm_kernels_available"`
}

func collectHostMeta() hostMeta {
	var avail, qavail []string
	for _, name := range tensor.GemmKernels() {
		if tensor.GemmKernelAvailable(name) {
			avail = append(avail, name)
		}
	}
	for _, name := range tensor.QGemmKernels() {
		if tensor.QGemmKernelAvailable(name) {
			qavail = append(qavail, name)
		}
	}
	return hostMeta{
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GOARCH:       runtime.GOARCH,
		GOOS:         runtime.GOOS,
		CPUFeatures:  cpu.X86.FeatureList(),
		GemmKernel:   tensor.GemmKernel(),
		GemmKernels:  avail,
		QGemmKernel:  tensor.QGemmKernel(),
		QGemmKernels: qavail,
	}
}

// warnIfSerialHost prints a prominent notice when the process has a
// single scheduling thread: serial-vs-parallel speedups measured in that
// state say nothing about multi-core behaviour.
func warnIfSerialHost() {
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr,
			"rhsd-bench: WARNING: GOMAXPROCS=1 — parallel speedups on this host are meaningless; "+
				"rerun on a multi-core machine before comparing serial vs parallel numbers")
	}
}

// serialHostReason returns a non-empty skip reason when the host cannot
// honestly back a speedup claim: with fewer than two CPUs the "parallel"
// and "serving throughput" numbers measure scheduler overhead, not the
// system under test, so -exp parallel and -exp serve refuse to emit them
// and record a skipped report instead. RHSD_BENCH_ALLOW_SERIAL=1
// overrides the refusal so the bench machinery itself can be exercised
// on any machine (the report still embeds num_cpu for the reader).
func serialHostReason() string {
	if runtime.NumCPU() >= 2 || os.Getenv("RHSD_BENCH_ALLOW_SERIAL") == "1" {
		return ""
	}
	return fmt.Sprintf("host has %d CPU(s); speedup and serving-throughput claims need at least 2",
		runtime.NumCPU())
}

// skippedReport is what a refused experiment writes in place of its
// usual schema: host context, status "skipped" and the reason, so a
// downstream consumer sees an explicit record instead of a stale or
// missing file.
type skippedReport struct {
	Host   hostMeta `json:"host"`
	Status string   `json:"status"`
	Reason string   `json:"reason"`
}

func writeSkipped(outPath, reason string, progress func(string)) error {
	blob, err := json.MarshalIndent(skippedReport{
		Host:   collectHostMeta(),
		Status: "skipped",
		Reason: reason,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("skipped: " + reason)
	progress("wrote " + outPath + " (status: skipped)")
	return nil
}
