package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"rhsd/internal/eval"
	"rhsd/internal/geom"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// allocBenchEntry is one measured side of a before/after pair, in the
// units Go benchmarks report: nanoseconds, heap bytes and heap
// allocations per operation.
type allocBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// allocBenchPair compares the PR-1 path ("before") with the packed /
// workspace-backed path ("after") for one kernel or pipeline stage.
type allocBenchPair struct {
	Name           string          `json:"name"`
	Before         allocBenchEntry `json:"before"`
	After          allocBenchEntry `json:"after"`
	Speedup        float64         `json:"speedup"`         // before.ns / after.ns
	AllocReduction float64         `json:"alloc_reduction"` // 1 - after.allocs/before.allocs
}

// allocBenchReport is the BENCH_alloc.json schema.
type allocBenchReport struct {
	Host    hostMeta         `json:"host"`
	Workers int              `json:"workers"`
	Pairs   []allocBenchPair `json:"pairs"`
}

// measure runs f under the testing benchmark harness and extracts
// ns/op, B/op and allocs/op.
func measure(name string, f func(b *testing.B)) allocBenchEntry {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	return allocBenchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func pairOf(name string, before, after allocBenchEntry, progress func(string)) allocBenchPair {
	p := allocBenchPair{Name: name, Before: before, After: after}
	if after.NsPerOp > 0 {
		p.Speedup = before.NsPerOp / after.NsPerOp
	}
	if before.AllocsPerOp > 0 {
		p.AllocReduction = 1 - float64(after.AllocsPerOp)/float64(before.AllocsPerOp)
	}
	progress(fmt.Sprintf("alloc bench %-12s %9.2f → %9.2f ms/op (%.2fx)  %6d → %4d allocs/op (-%.1f%%)",
		name, before.NsPerOp/1e6, after.NsPerOp/1e6, p.Speedup,
		before.AllocsPerOp, after.AllocsPerOp, 100*p.AllocReduction))
	return p
}

// runAllocBench compares the reference kernels against the packed GEMM
// and the workspace-backed zero-allocation inference path, then writes
// the comparison to outPath as JSON.
//
// Pairs:
//   - gemm:   GemmUnblocked (PR-1 row kernel) vs Gemm (packed) at the
//     [64 × 576 × 3136] shape dominating a 224-px backbone pass.
//   - conv2d: Conv2D (fresh im2col + output per call, separate bias
//     sweep) vs Conv2DInfer (workspace scratch, fused bias epilogue).
//   - detect: the training-path composition ForwardBase + Proposals +
//     RefineForward (every activation on the heap) vs Model.Detect
//     (workspace arena + scratch buffers).
func runAllocBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	warnIfSerialHost()
	report := allocBenchReport{
		Host:    collectHostMeta(),
		Workers: workers,
	}

	// GEMM at the shape of the dominant backbone convolution:
	// [64, 64·3·3] × [64·3·3, 56·56].
	const gm, gk, gn = 64, 64 * 3 * 3, 56 * 56
	ga := make([]float32, gm*gk)
	gb := make([]float32, gk*gn)
	gc := make([]float32, gm*gn)
	for i := range ga {
		ga[i] = float32(i%17) * 0.25
	}
	for i := range gb {
		gb[i] = float32(i%13) * 0.5
	}
	gemmBefore := measure("gemm_unblocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.GemmUnblocked(false, false, gm, gn, gk, 1, ga, gb, 0, gc)
		}
	})
	gemmAfter := measure("gemm_packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Gemm(false, false, gm, gn, gk, 1, ga, gb, 0, gc)
		}
	})
	report.Pairs = append(report.Pairs, pairOf("gemm", gemmBefore, gemmAfter, progress))

	// One 3×3 convolution over a 64×56×56 feature map, bias + ReLU tail.
	cx := tensor.New(1, 64, 56, 56)
	cw := tensor.New(64, 64, 3, 3)
	cbias := tensor.New(64)
	for i, d := 0, cx.Data(); i < len(d); i++ {
		d[i] = float32(i%11) * 0.1
	}
	for i, d := 0, cw.Data(); i < len(d); i++ {
		d[i] = float32(i%7) * 0.2
	}
	copts := tensor.ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	act := nn.NewReLU()
	convBefore := measure("conv2d_train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := tensor.Conv2D(cx, cw, cbias, copts)
			act.Forward(out)
		}
	})
	ws := tensor.NewWorkspace()
	ep := tensor.Epilogue{Bias: cbias, Act: true}
	convAfter := measure("conv2d_infer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws.Reset()
			tensor.Conv2DInfer(ws, cx, cw, copts, ep)
		}
	})
	report.Pairs = append(report.Pairs, pairOf("conv2d", convBefore, convAfter, progress))

	// Full-region detection: training-path composition vs the
	// workspace-backed Detect. Untrained weights — wall-clock and
	// allocation counts depend only on the architecture.
	cfg := p.HSD
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return err
	}
	regionNM := cfg.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM, 2*regionNM))
	for x := 40; x < 2*regionNM-110; x += 150 {
		l.Add(layout.R(x, 30, x+70, 2*regionNM-30))
	}
	region := l.Window(layout.R(0, 0, regionNM, regionNM))
	raster := hsd.MakeSample(region, nil, cfg).Raster
	detBefore := measure("detect_train_path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := m.ForwardBase(raster)
			props := m.Proposals(out)
			if cfg.UseRefine && len(props) > 0 {
				rois := make([]geom.Rect, len(props))
				for j, pr := range props {
					rois[j] = pr.Clip
				}
				m.RefineForward(out, rois)
			}
		}
	})
	m.Detect(raster) // warm-up sizes the workspace arena
	detAfter := measure("detect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Detect(raster)
		}
	})
	report.Pairs = append(report.Pairs, pairOf("detect", detBefore, detAfter, progress))

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
