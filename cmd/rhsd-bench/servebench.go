package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/serve"
)

// serveBenchReport is the BENCH_serve.json schema for a run that was not
// skipped: a closed-loop load generator drives a real serve.Server over
// HTTP with a 90% repeat ratio and reports latency percentiles split by
// cold (first sighting of a layout) vs warm (content already cached),
// the cache hit rate the daemon observed, and one incremental ?since=
// rescan of an edited layout.
type serveBenchReport struct {
	Host          hostMeta `json:"host"`
	Status        string   `json:"status"`
	Pool          int      `json:"pool"`
	CacheMemMiB   int      `json:"cache_mem_mib"`
	Requests      int      `json:"requests"`
	UniqueLayouts int      `json:"unique_layouts"`
	RepeatRatio   float64  `json:"repeat_ratio"`
	P50MS         float64  `json:"p50_ms"`
	P95MS         float64  `json:"p95_ms"`
	ColdP50MS     float64  `json:"cold_p50_ms"`
	WarmP50MS     float64  `json:"warm_p50_ms"`
	CacheHitRate  float64  `json:"cache_hit_rate"`
	// Incremental* describe one /detect?since= request posting a
	// one-rect edit of an already-scanned layout.
	IncrementalMS           float64 `json:"incremental_ms"`
	IncrementalTilesScanned int     `json:"incremental_tiles_scanned"`
	IncrementalTilesReused  int     `json:"incremental_tiles_reused"`
}

// serveBenchLayout builds the i-th distinct benchmark layout: the stripe
// phase and the blob position both depend on i, so every unique layout
// rasterizes to different megatile content (no accidental cross-layout
// cache hits between "cold" requests).
func serveBenchLayout(c hsd.Config, i int) *layout.Layout {
	regionNM := c.RegionNM()
	p := int(c.PitchNM)
	l := layout.New(layout.R(0, 0, regionNM+regionNM/2, regionNM+regionNM/4))
	for y := (i%6 + 1) * p; y < l.Bounds.Y1; y += 6 * p {
		l.Add(layout.R(0, y, l.Bounds.X1, y+p))
	}
	bx := regionNM/4 + (i*3*p)%regionNM
	by := regionNM/4 + (i*5*p)%regionNM
	l.Add(layout.R(bx-4*p, by-4*p, bx+5*p, by+5*p))
	return l
}

// percentileMS is the nearest-rank percentile of sorted latencies, in ms.
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds()) / 1000
}

// runServeBench stands up an in-process detection daemon with the result
// cache enabled and drives it with a deterministic request mix: one
// never-seen layout every tenth request, warm repeats otherwise — the
// shape of a DFM loop re-checking candidate fixes. The detector is
// untrained (wall-clock depends only on the architecture); megatile
// factor is pinned to 1 so the tile population is the same on every
// host.
func runServeBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	if reason := serialHostReason(); reason != "" {
		return writeSkipped(outPath, reason, progress)
	}
	warnIfSerialHost()

	m, err := hsd.NewModel(p.HSD)
	if err != nil {
		return err
	}
	s, err := serve.New(m, serve.Config{
		MegatileFactor: 1,
		CacheMemMiB:    64,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	client := ts.Client()
	client.Timeout = 2 * time.Minute

	post := func(query string, l *layout.Layout) (serve.DetectResponse, time.Duration, error) {
		var dr serve.DetectResponse
		var buf bytes.Buffer
		if err := l.Save(&buf); err != nil {
			return dr, 0, err
		}
		start := time.Now()
		resp, err := client.Post(ts.URL+"/detect"+query, "text/plain", &buf)
		if err != nil {
			return dr, 0, err
		}
		elapsed := time.Since(start)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return dr, 0, fmt.Errorf("detect: status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &dr); err != nil {
			return dr, 0, fmt.Errorf("detect: decoding %q: %w", body, err)
		}
		return dr, elapsed, nil
	}

	const total, repeatEvery = 60, 10
	nUnique := total / repeatEvery
	layouts := make([]*layout.Layout, nUnique)
	for i := range layouts {
		layouts[i] = serveBenchLayout(p.HSD, i)
	}

	var all, cold, warm []time.Duration
	var lastScanID int64
	for i := 0; i < total; i++ {
		idx, novel := i/repeatEvery, i%repeatEvery == 0
		if !novel {
			idx = i % (i/repeatEvery + 1) // repeat among layouts already seen
		}
		dr, elapsed, err := post("", layouts[idx])
		if err != nil {
			return err
		}
		if idx == 0 {
			lastScanID = dr.ScanID
		}
		all = append(all, elapsed)
		if novel {
			cold = append(cold, elapsed)
		} else {
			warm = append(warm, elapsed)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })

	// One DFM-style edit: nudge the blob of an already-scanned layout and
	// rescan incrementally against its last scan id.
	edited := serveBenchLayout(p.HSD, 0)
	pnm := int(p.HSD.PitchNM)
	edited.Add(layout.R(2*pnm, 2*pnm, 6*pnm, 6*pnm))
	incr, incrElapsed, err := post(fmt.Sprintf("?since=%d", lastScanID), edited)
	if err != nil {
		return err
	}

	resp, err := client.Get(ts.URL + "/statusz")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("statusz: decoding %q: %w", body, err)
	}

	report := serveBenchReport{
		Host:          collectHostMeta(),
		Status:        "ok",
		Pool:          st.Pool,
		CacheMemMiB:   64,
		Requests:      total,
		UniqueLayouts: nUnique,
		RepeatRatio:   1 - float64(nUnique)/float64(total),
		P50MS:         percentileMS(all, 0.50),
		P95MS:         percentileMS(all, 0.95),
		ColdP50MS:     percentileMS(cold, 0.50),
		WarmP50MS:     percentileMS(warm, 0.50),
		CacheHitRate:  st.CacheHitRate,

		IncrementalMS:           float64(incrElapsed.Microseconds()) / 1000,
		IncrementalTilesScanned: incr.TilesScanned,
		IncrementalTilesReused:  incr.TilesReused,
	}
	progress(fmt.Sprintf("serve bench: p50 %.2f ms  p95 %.2f ms  cold p50 %.2f ms  warm p50 %.2f ms  hit rate %.2f",
		report.P50MS, report.P95MS, report.ColdP50MS, report.WarmP50MS, report.CacheHitRate))
	progress(fmt.Sprintf("serve bench: incremental rescan %.2f ms, %d scanned / %d reused",
		report.IncrementalMS, report.IncrementalTilesScanned, report.IncrementalTilesReused))

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
