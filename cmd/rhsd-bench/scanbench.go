package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
)

// scanBenchEntry is one full-chip scan measurement in BENCH_scan.json.
// Factor 0 is the per-tile baseline; factor f ≥ 1 is the megatile scan
// with f×f regions per forward pass.
type scanBenchEntry struct {
	Name       string  `json:"name"`
	Factor     int     `json:"factor"`
	WallMS     float64 `json:"wall_ms"`
	Speedup    float64 `json:"speedup_vs_per_tile"`
	RasterPx   int64   `json:"raster_px"`
	Detections int     `json:"detections"`
}

// scanBenchReport is the BENCH_scan.json schema: the per-tile scan
// against megatile scans of increasing factor on the same window, at the
// configured worker count, with host context.
type scanBenchReport struct {
	Host       hostMeta         `json:"host"`
	Workers    int              `json:"workers"`
	WindowNM   int              `json:"window_nm"`
	WindowTile int              `json:"window_regions_per_side"`
	Entries    []scanBenchEntry `json:"entries"`
}

// runScanBench compares the per-tile full-chip scan against the megatile
// scan at factors 1, 2 and 4 on a multi-megatile window, then writes the
// comparison to outPath. The detector is untrained (weights are
// seed-random): scan wall-clock depends only on the architecture and the
// tiling, not on what the weights converged to.
func runScanBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	warnIfSerialHost()
	report := scanBenchReport{
		Host:    collectHostMeta(),
		Workers: workers,
	}

	cfg := p.HSD
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return err
	}
	// A 15×15-region window: every factor tiles it with at most one
	// halo's worth of clamp overlap (the 4× megatile stride divides the
	// span exactly), so the comparison measures redundancy elimination
	// rather than last-row clamping artifacts.
	const side = 15
	regionNM := cfg.RegionNM()
	W := side * regionNM
	report.WindowNM = W
	report.WindowTile = side
	l := layout.New(layout.R(0, 0, W, W))
	p8 := 8 * int(cfg.PitchNM)
	for y := 0; y < W; y += p8 {
		l.Add(layout.R(0, y, W, y+int(cfg.PitchNM)))
	}
	for x := 40; x < W-110; x += 531 {
		l.Add(layout.R(x, 30, x+70, W-30))
	}

	measure := func(name string, factor int, scan func() []hsd.Detection) {
		var dets []hsd.Detection
		layout.ResetRasterizedPixels()
		wall := bestOf(2, func() { dets = scan() })
		px := layout.RasterizedPixels() / 2 // two bestOf iterations
		e := scanBenchEntry{
			Name:       name,
			Factor:     factor,
			WallMS:     float64(wall.Microseconds()) / 1000,
			RasterPx:   px,
			Detections: len(dets),
		}
		if len(report.Entries) > 0 {
			base := report.Entries[0].WallMS
			if e.WallMS > 0 {
				e.Speedup = base / e.WallMS
			}
		} else {
			e.Speedup = 1
		}
		progress(fmt.Sprintf("scan bench %-12s %9.2f ms  %8d px  speedup %.2fx",
			name, e.WallMS, e.RasterPx, e.Speedup))
		report.Entries = append(report.Entries, e)
	}

	measure("per_tile", 0, func() []hsd.Detection { return m.DetectLayout(l, l.Bounds) })
	for _, f := range []int{1, 2, 4} {
		f := f
		measure(fmt.Sprintf("megatile_%dx", f), f,
			func() []hsd.Detection { return m.DetectLayoutMegatile(l, l.Bounds, f) })
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
