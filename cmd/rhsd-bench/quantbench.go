package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

// quantKernelEntry is one int8 GEMM micro-kernel's measured throughput at
// the dominant backbone shape, its speedup over the float32 avx512
// baseline, and the end-to-end int8 detection time under that kernel.
type quantKernelEntry struct {
	Name            string  `json:"name"`
	Family          string  `json:"family"` // "exact" or "sat16"
	GemmNsPerOp     float64 `json:"gemm_ns_per_op"`
	GOps            float64 `json:"gops"`             // int8 MAC throughput, G mul-adds/s
	SpeedupVsFP32   float64 `json:"speedup_vs_fp32"`  // fp32 avx512 GEMM ns / int8 GEMM ns
	DetectNsPerOp   float64 `json:"detect_ns_per_op"` // end-to-end int8 Detect
	DetectVsFP32    float64 `json:"detect_speedup_vs_fp32"`
	DetectAllocs    int64   `json:"detect_allocs_per_op"`
	GemmAllocsPerOp int64   `json:"gemm_allocs_per_op"`

	StageProfile []quantStageEntry `json:"stage_profile"`
}

// quantStageEntry is one tensor-layer stage of the per-Detect profile:
// CPU time spent in the stage per Detect call and its share of the
// detect wall time (on a single-CPU host CPU time ≈ wall time; with
// workers the shares can sum past 100%). The gemm_rows share is the
// number the small-shape routing work is judged by — it is the scalar
// residue the packed/prepacked/fused paths are supposed to claim.
type quantStageEntry struct {
	Stage       string  `json:"stage"`
	NsPerOp     float64 `json:"ns_per_op"`
	CallsPerOp  float64 `json:"calls_per_op"`
	PctOfDetect float64 `json:"pct_of_detect"`
}

// quantGateEntry summarizes the accuracy-delta gate run embedded in the
// report: the fp32-vs-int8 Table-1 deltas scored against the shipping
// budget, so BENCH_quant.json carries its own accuracy evidence next to
// the throughput numbers.
type quantGateEntry struct {
	Profile            string   `json:"profile"` // evaluation scale the gate ran at
	CalibrationRasters int      `json:"calibration_rasters"`
	RecallFP32         float64  `json:"recall_fp32"`
	RecallInt8         float64  `json:"recall_int8"`
	RecallDropPts      float64  `json:"recall_drop_pts"`
	FADelta            int      `json:"fa_delta"`
	Pass               bool     `json:"pass"`
	Reasons            []string `json:"reasons,omitempty"`
}

// quantBenchReport is the BENCH_quant.json schema: per-int8-kernel GEMM
// throughput at [64 × 576 × 3136] against the float32 avx512 baseline,
// end-to-end fp32-vs-int8 detection, steady-state allocation counts and
// the accuracy-gate deltas. Host metadata records which quant kernel was
// active and which were available, so the file is self-describing.
type quantBenchReport struct {
	Host      hostMeta `json:"host"`
	Workers   int      `json:"workers"`
	GemmShape [3]int   `json:"gemm_shape"` // m, k, n

	FP32Kernel      string  `json:"fp32_kernel"` // baseline GEMM kernel
	FP32GemmNsPerOp float64 `json:"fp32_gemm_ns_per_op"`
	FP32GFlops      float64 `json:"fp32_gflops"`
	FP32DetectNs    float64 `json:"fp32_detect_ns_per_op"`

	FP32StageProfile []quantStageEntry `json:"fp32_stage_profile"`

	Kernels []quantKernelEntry `json:"kernels"`
	Gate    quantGateEntry     `json:"gate"`
}

// profileDetect runs Detect under the tensor stage profiler and returns
// the per-stage breakdown normalized per call. The iteration count is
// sized from the measured detect time so the profiled window covers
// roughly a quarter second regardless of host speed; shares are taken
// against the wall time of the profiled loop itself, so the profiling
// overhead (two clock reads per instrumented call) deflates every
// stage's share uniformly instead of inflating one.
func profileDetect(m *hsd.Model, raster *tensor.Tensor, detNsPerOp float64) []quantStageEntry {
	iters := 3
	if detNsPerOp > 0 {
		if n := int(250e6 / detNsPerOp); n > iters {
			iters = n
		}
	}
	m.Detect(raster) // steady state before counters start
	tensor.ResetProfile()
	prev := tensor.SetProfiling(true)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		m.Detect(raster)
	}
	wall := time.Since(t0).Nanoseconds()
	tensor.SetProfiling(prev)
	snap := tensor.ProfileSnapshot()
	out := make([]quantStageEntry, 0, len(snap))
	for _, s := range snap {
		e := quantStageEntry{
			Stage:      s.Stage,
			NsPerOp:    float64(s.Ns) / float64(iters),
			CallsPerOp: float64(s.Calls) / float64(iters),
		}
		if wall > 0 {
			e.PctOfDetect = 100 * float64(s.Ns) / float64(wall)
		}
		out = append(out, e)
	}
	return out
}

// stagePct picks one stage's share out of a profile, 0 if absent.
func stagePct(prof []quantStageEntry, stage string) float64 {
	for _, e := range prof {
		if e.Stage == stage {
			return e.PctOfDetect
		}
	}
	return 0
}

// runQuantBench measures every int8 GEMM kernel available on this host
// against the best float32 kernel — packed throughput at the dominant
// backbone shape, end-to-end detection under a calibrated int8 trunk —
// runs the accuracy-delta gate at smoke scale, and writes
// BENCH_quant.json. The headline ≥2× int8-vs-fp32 claim needs VNNI's
// VPDPBUSD; a host without AVX-512-VNNI records a skipped report naming
// the missing feature instead of emitting numbers that cannot support
// the claim.
func runQuantBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	if !tensor.QGemmKernelAvailable("qavx2") {
		return writeSkipped(outPath,
			"host lacks AVX2 (or OS support for YMM state); vectorised int8 kernels not measurable", progress)
	}
	if !tensor.QGemmKernelAvailable("qvnni") {
		return writeSkipped(outPath,
			"host lacks AVX-512-VNNI (VPDPBUSD); the int8-vs-fp32 speedup claim is not measurable", progress)
	}

	origQ := tensor.QGemmKernel()
	defer tensor.SetQGemmKernel(origQ)
	origF := tensor.GemmKernel()
	defer tensor.SetGemmKernel(origF)

	report := quantBenchReport{
		Host:      collectHostMeta(),
		Workers:   workers,
		GemmShape: [3]int{64, 64 * 3 * 3, 56 * 56},
	}
	gm, gk, gn := report.GemmShape[0], report.GemmShape[1], report.GemmShape[2]
	ops := float64(gm) * float64(gk) * float64(gn) // mul-adds; ×2 for flops

	// Float32 baseline: the widest fp32 kernel the host runs (avx512 on
	// VNNI hosts — VNNI implies AVX-512F).
	fp32Kernel := "avx512"
	if !tensor.GemmKernelAvailable(fp32Kernel) {
		fp32Kernel = origF
	}
	if _, err := tensor.SetGemmKernel(fp32Kernel); err != nil {
		return err
	}
	report.FP32Kernel = fp32Kernel
	fa := make([]float32, gm*gk)
	fb := make([]float32, gk*gn)
	fc := make([]float32, gm*gn)
	for i := range fa {
		fa[i] = float32(i%17) * 0.25
	}
	for i := range fb {
		fb[i] = float32(i%13) * 0.5
	}
	fgemm := measureMin("gemm_fp32_"+fp32Kernel, simdBenchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Gemm(false, false, gm, gn, gk, 1, fa, fb, 0, fc)
		}
	})
	report.FP32GemmNsPerOp = fgemm.NsPerOp
	report.FP32GFlops = 2 * ops / fgemm.NsPerOp
	progress(fmt.Sprintf("quant bench fp32 %-7s %7.2f GF/s", fp32Kernel, report.FP32GFlops))

	// Quantized operands for the same shape: int8 weights, uint8
	// activations, per-row dequantization constants — the exact call the
	// quantized conv path makes per megatile GEMM.
	aq := make([]int8, gm*gk)
	bq := make([]uint8, gk*gn)
	cq := make([]float32, gm*gn)
	for i := range aq {
		aq[i] = int8(i%17 - 8)
	}
	for i := range bq {
		bq[i] = uint8(i % 251)
	}
	deq := make([]float32, gm)
	corr := make([]int32, gm)
	for r := 0; r < gm; r++ {
		deq[r] = 0.01
		var s int32
		for _, v := range aq[r*gk : r*gk+gk] {
			s += int32(v)
		}
		corr[r] = 128 * s
	}

	// End-to-end detection fixture: the fp32 baseline first, then each
	// int8 kernel on a trunk calibrated over oracle-labeled synthetic
	// regions. The fixture model is the paper-nominal config, not the
	// evaluation profile's shrunken one: the int8-vs-fp32 claim is about
	// the backbone shape population this bench's own GemmShape comes
	// from ([64 × 576 × 3136] is PaperConfig's dominant conv lowering),
	// and a toy backbone systematically undersells the dot-product
	// kernels — its GEMMs are small enough that quantize/dequantize
	// boundary costs cancel the kernel win. Weights are untrained
	// (throughput does not depend on them); calibration still runs the
	// real oracle-labeled envelope sweep so the quantized path is the
	// shipping one.
	cfg := hsd.PaperConfig()
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return err
	}
	regionNM := cfg.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM, 2*regionNM))
	for x := 40; x < 2*regionNM-110; x += 150 {
		l.Add(layout.R(x, 30, x+70, 2*regionNM-30))
	}
	region := l.Window(layout.R(0, 0, regionNM, regionNM))
	raster := hsd.MakeSample(region, nil, cfg).Raster

	m.Detect(raster) // warm-up sizes fp32 arenas
	fdet := measureMin("detect_fp32", simdBenchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Detect(raster)
		}
	})
	report.FP32DetectNs = fdet.NsPerOp
	report.FP32StageProfile = profileDetect(m, raster, fdet.NsPerOp)
	progress(fmt.Sprintf("quant bench fp32 detect %6.2f ms/op (gemm_rows %.1f%%)",
		fdet.NsPerOp/1e6, stagePct(report.FP32StageProfile, "gemm_rows")))

	cal := eval.SyntheticCalibration(cfg, 4)
	if err := m.CalibrateInt8(cal); err != nil {
		return err
	}
	if err := m.SetPrecision(hsd.PrecisionInt8); err != nil {
		return err
	}
	for _, name := range tensor.QGemmKernels() {
		if !tensor.QGemmKernelAvailable(name) {
			progress(fmt.Sprintf("quant bench: kernel %s unsupported on this host; skipping", name))
			continue
		}
		if _, err := tensor.SetQGemmKernel(name); err != nil {
			return err
		}
		gemm := measureMin("qgemm_"+name, simdBenchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.QGemmInt8(gm, gn, gk, aq, bq, deq, corr, cq)
			}
		})
		m.Detect(raster) // warm-up under this kernel sizes int8 arenas
		det := measureMin("detect_int8_"+name, simdBenchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Detect(raster)
			}
		})
		e := quantKernelEntry{
			Name:            name,
			Family:          tensor.QGemmKernelFamily(name),
			GemmNsPerOp:     gemm.NsPerOp,
			GOps:            ops / gemm.NsPerOp,
			SpeedupVsFP32:   fgemm.NsPerOp / gemm.NsPerOp,
			DetectNsPerOp:   det.NsPerOp,
			DetectVsFP32:    fdet.NsPerOp / det.NsPerOp,
			DetectAllocs:    det.AllocsPerOp,
			GemmAllocsPerOp: gemm.AllocsPerOp,
		}
		e.StageProfile = profileDetect(m, raster, det.NsPerOp)
		report.Kernels = append(report.Kernels, e)
		progress(fmt.Sprintf("quant bench %-6s %7.2f Gmac/s (%.2fx fp32)  detect %6.2f ms/op (%.2fx, %d allocs/op, gemm_rows %.1f%%)",
			name, e.GOps, e.SpeedupVsFP32, det.NsPerOp/1e6, e.DetectVsFP32, det.AllocsPerOp,
			stagePct(e.StageProfile, "gemm_rows")))
	}
	if err := m.SetPrecision(hsd.PrecisionFP32); err != nil {
		return err
	}
	if _, err := tensor.SetQGemmKernel(origQ); err != nil {
		return err
	}

	// Accuracy-delta gate at smoke scale: train once, run the Table-1
	// protocol under both precisions, score against the shipping budget.
	// Smoke scale keeps `make bench-quant` minutes-free; the same gate
	// runs at any profile through eval.RunQuantGate. A gate FAIL is
	// recorded in the report, not turned into a bench error — the bench's
	// job is to measure honestly, the eval suite's job is to enforce.
	gp := eval.SmokeProfile()
	gdata := eval.LoadData(gp)
	progress("quant bench: accuracy gate (smoke scale)")
	gres, err := eval.RunQuantGate(gp, gdata, eval.DefaultQuantGateBudget(), progress)
	if err != nil {
		return err
	}
	report.Gate = quantGateEntry{
		Profile:            "smoke",
		CalibrationRasters: gres.CalibrationRasters,
		RecallFP32:         gres.FP32.Accuracy() * 100,
		RecallInt8:         gres.Int8.Accuracy() * 100,
		RecallDropPts:      gres.RecallDropPts,
		FADelta:            gres.FADelta,
		Pass:               gres.Pass,
		Reasons:            gres.Reasons,
	}
	progress("quant bench gate: " + map[bool]string{true: "PASS", false: "FAIL"}[gres.Pass] +
		fmt.Sprintf(" (recall drop %+.2f pts, FA delta %+d, %d calibration rasters)",
			gres.RecallDropPts, gres.FADelta, gres.CalibrationRasters))

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
