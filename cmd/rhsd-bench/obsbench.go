package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// obsOverheadBudgetPct is the acceptance budget for the telemetry layer:
// a fully instrumented Detect (stage histograms, scan counters, pool
// hooks) must cost less than this much wall time over the telemetry-off
// baseline.
const obsOverheadBudgetPct = 1.0

// obsBenchReport is the BENCH_obs.json schema. The tracing_armed leg
// runs the same loop with the flight recorder live: a span trace per
// Detect (stage spans + tensor profiling), completed into the ring each
// op. trace_overhead_pct compares it against the telemetry-off baseline,
// under the same <1% budget; alloc_delta still compares the nil-trace
// paths (telemetry on, no trace attached), which must stay at zero.
type obsBenchReport struct {
	Host             hostMeta        `json:"host"`
	Workers          int             `json:"workers"`
	Reps             int             `json:"reps"`
	TelemetryOff     allocBenchEntry `json:"telemetry_off"`
	TelemetryOn      allocBenchEntry `json:"telemetry_on"`
	TracingArmed     allocBenchEntry `json:"tracing_armed"`
	OverheadPct      float64         `json:"overhead_pct"`
	TraceOverheadPct float64         `json:"trace_overhead_pct"`
	BudgetPct        float64         `json:"budget_pct"`
	OverheadOK       bool            `json:"overhead_ok"`
	TraceOverheadOK  bool            `json:"trace_overhead_ok"`
	AllocDelta       int64           `json:"alloc_delta"`
}

// runObsBench measures the cost of the telemetry layer on the region
// detection hot path: the same Detect loop as BenchmarkDetectRegion,
// once with no instruments anywhere and once with a live registry
// receiving stage histograms, scan counters and pool utilization hooks.
// Reps are interleaved off/on and the minimum of each side is compared,
// so thermal drift and background noise cancel instead of biasing one
// side. The report (BENCH_obs.json) carries overhead_ok so CI can gate
// on the <1% budget.
func runObsBench(p eval.Profile, workers int, outPath string, progress func(string)) error {
	warnIfSerialHost()
	cfg := p.HSD
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return err
	}
	regionNM := cfg.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM, 2*regionNM))
	for x := 40; x < 2*regionNM-110; x += 150 {
		l.Add(layout.R(x, 30, x+70, 2*regionNM-30))
	}
	region := l.Window(layout.R(0, 0, regionNM, regionNM))
	raster := hsd.MakeSample(region, nil, cfg).Raster
	m.Detect(raster) // warm-up sizes the workspace arena and scratch

	const reps = 5
	detectLoop := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Detect(raster)
		}
	}
	// The tracing leg records a full span trace per op into a live
	// recorder, the way one served request does: stage spans parent under
	// the trace root and tensor profiling is armed (that is what feeds
	// per-span gemm/im2col attribution in real traces).
	rec := telemetry.NewFlightRecorder(8)
	traceLoop := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rec.StartTrace("bench", "bench", "")
			m.SetTrace(tr, tr.Root())
			m.Detect(raster)
			m.SetTrace(nil, nil)
			tr.Complete()
		}
	}

	var off, on, traced allocBenchEntry
	for rep := 0; rep < reps; rep++ {
		parallel.DetachMetrics()
		m.SetInstruments(nil)
		o := measure("detect_telemetry_off", detectLoop)

		reg := telemetry.NewRegistry()
		parallel.RegisterMetrics(reg)
		m.SetInstruments(hsd.NewInstruments(reg))
		i := measure("detect_telemetry_on", detectLoop)

		prevProf := tensor.SetProfiling(true)
		t := measure("detect_tracing_armed", traceLoop)
		tensor.SetProfiling(prevProf)

		if rep == 0 || o.NsPerOp < off.NsPerOp {
			off = o
		}
		if rep == 0 || i.NsPerOp < on.NsPerOp {
			on = i
		}
		if rep == 0 || t.NsPerOp < traced.NsPerOp {
			traced = t
		}
		progress(fmt.Sprintf("obs bench rep %d/%d: off %.2f ms/op, on %.2f ms/op, traced %.2f ms/op",
			rep+1, reps, o.NsPerOp/1e6, i.NsPerOp/1e6, t.NsPerOp/1e6))
	}
	parallel.DetachMetrics()
	m.SetInstruments(nil)

	report := obsBenchReport{
		Host:         collectHostMeta(),
		Workers:      workers,
		Reps:         reps,
		TelemetryOff: off,
		TelemetryOn:  on,
		TracingArmed: traced,
		BudgetPct:    obsOverheadBudgetPct,
		AllocDelta:   on.AllocsPerOp - off.AllocsPerOp,
	}
	if off.NsPerOp > 0 {
		report.OverheadPct = (on.NsPerOp/off.NsPerOp - 1) * 100
		report.TraceOverheadPct = (traced.NsPerOp/off.NsPerOp - 1) * 100
	}
	report.OverheadOK = report.OverheadPct < obsOverheadBudgetPct
	report.TraceOverheadOK = report.TraceOverheadPct < obsOverheadBudgetPct
	progress(fmt.Sprintf("obs bench: telemetry %+.2f%%, tracing %+.2f%% (budget %.1f%%), alloc delta %+d/op",
		report.OverheadPct, report.TraceOverheadPct, obsOverheadBudgetPct, report.AllocDelta))
	if !report.OverheadOK {
		progress("obs bench: WARNING — telemetry overhead exceeds the budget")
	}
	if !report.TraceOverheadOK {
		progress("obs bench: WARNING — tracing-armed overhead exceeds the budget")
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	progress("wrote " + outPath)
	return nil
}
