// Command rhsd-sweep trains R-HSD variants over a small hyperparameter
// grid with periodic evaluation — the calibration workflow behind the
// fast profile's defaults.
//
//	rhsd-sweep -grid lr -steps 900 -eval-every 300
//	rhsd-sweep -grid threshold -out sweep.csv
//
// Built-in grids: lr, threshold, proposals, l2, width.
package main

import (
	"flag"
	"fmt"
	"os"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
)

func main() {
	grid := flag.String("grid", "threshold", "grid to sweep: lr, threshold, proposals, l2, width")
	steps := flag.Int("steps", 900, "training steps per point")
	evalEvery := flag.Int("eval-every", 300, "evaluation period in steps")
	nTrain := flag.Int("train-regions", 0, "override training regions per case")
	nTest := flag.Int("test-regions", 0, "override test regions per case")
	out := flag.String("out", "", "optional CSV output path")
	flag.Parse()

	p := eval.FastProfile()
	p.HSD.TrainSteps = *steps
	if *nTrain > 0 {
		p.NTrain = *nTrain
	}
	if *nTest > 0 {
		p.NTest = *nTest
	}

	points, err := gridPoints(*grid)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rhsd-sweep: grid %q, %d points × %d steps\n", *grid, len(points), *steps)
	data := eval.LoadData(p)
	samples, err := eval.RunSweep(p, data, points, *evalEvery, func(s eval.SweepSample) {
		fmt.Printf("  %-20s step %4d: acc %6.2f%%  FA %6.1f\n", s.Point, s.Step, s.Accuracy, s.FA)
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println("\nbest per point (by accuracy):")
	for name, s := range eval.BestByAccuracy(samples) {
		fmt.Printf("  %-20s step %4d: acc %6.2f%%  FA %6.1f\n", name, s.Step, s.Accuracy, s.FA)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(eval.SweepCSV(samples)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

func gridPoints(name string) ([]eval.SweepPoint, error) {
	mk := func(label string, f func(*hsd.Config)) eval.SweepPoint {
		return eval.SweepPoint{Name: label, Mutate: f}
	}
	switch name {
	case "lr":
		return []eval.SweepPoint{
			mk("lr=0.005", func(c *hsd.Config) { c.LearningRate = 0.005 }),
			mk("lr=0.01", func(c *hsd.Config) { c.LearningRate = 0.01 }),
			mk("lr=0.02", func(c *hsd.Config) { c.LearningRate = 0.02 }),
		}, nil
	case "threshold":
		return []eval.SweepPoint{
			mk("thr=0.4", func(c *hsd.Config) { c.ScoreThreshold = 0.4 }),
			mk("thr=0.5", func(c *hsd.Config) { c.ScoreThreshold = 0.5 }),
			mk("thr=0.6", func(c *hsd.Config) { c.ScoreThreshold = 0.6 }),
		}, nil
	case "proposals":
		return []eval.SweepPoint{
			mk("props=16", func(c *hsd.Config) { c.ProposalCount = 16 }),
			mk("props=32", func(c *hsd.Config) { c.ProposalCount = 32 }),
			mk("props=48", func(c *hsd.Config) { c.ProposalCount = 48 }),
		}, nil
	case "l2":
		return []eval.SweepPoint{
			mk("l2=0", func(c *hsd.Config) { c.L2Beta = 0 }),
			mk("l2=0.003", func(c *hsd.Config) { c.L2Beta = 0.003 }),
			mk("l2=0.01", func(c *hsd.Config) { c.L2Beta = 0.01 }),
		}, nil
	case "width":
		return []eval.SweepPoint{
			mk("w=8", func(c *hsd.Config) { c.InceptionWidth = 8 }),
			mk("w=12", func(c *hsd.Config) { c.InceptionWidth = 12 }),
			mk("w=16", func(c *hsd.Config) { c.InceptionWidth = 16 }),
		}, nil
	}
	return nil, fmt.Errorf("unknown grid %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-sweep:", err)
	os.Exit(1)
}
