// Command rhsd-gendata synthesizes the benchmark suite to disk: one
// directory per case with train/ and test/ splits, one layout file per
// region plus a ground-truth hotspot listing produced by the litho proxy.
//
//	rhsd-gendata -out data/ -region-nm 768 -train 10 -test 8
//
// The layout files use the line-oriented format of internal/layout
// (BOUNDS/RECT records); hotspots.csv holds region-relative nm centres.
// See internal/dataset for the exact directory contract.
package main

import (
	"flag"
	"fmt"
	"os"

	"rhsd/internal/dataset"
	"rhsd/internal/litho"
)

func main() {
	out := flag.String("out", "data", "output directory")
	regionNM := flag.Int("region-nm", 768, "region side length in nm")
	nTrain := flag.Int("train", 10, "training regions per case")
	nTest := flag.Int("test", 8, "test regions per case")
	flag.Parse()

	model := litho.DefaultModel()
	for _, spec := range dataset.CaseSpecs(*regionNM) {
		ds := dataset.Generate(spec, model, *nTrain, *nTest)
		if err := dataset.WriteDataset(*out, ds); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: train %v | test %v\n",
			ds.Name, dataset.ComputeStats(ds.Train), dataset.ComputeStats(ds.Test))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-gendata:", err)
	os.Exit(1)
}
