// Command rhsd-serve is the R-HSD detection daemon: it loads a trained
// checkpoint once, builds a pool of model clones, and serves hotspot
// detection over HTTP.
//
//	rhsd-serve -ckpt rhsd.ckpt -addr :8080
//	curl --data-binary @chip.layout localhost:8080/detect
//
// Endpoints:
//
//	POST /detect   layout text (BOUNDS/RECT format) in, JSON detections out
//	GET  /healthz  liveness; 503 while draining
//	GET  /statusz  pool, queue, workspace, build info and counters as JSON
//	GET  /metrics  Prometheus text exposition (stage timings, pool, serve)
//	GET  /traces   flight recorder: recent request span traces as JSON
//	GET  /traces/{id}            one trace's span tree (?format=txt for text)
//	GET  /debug/pprof/*  profiling handlers, only with -pprof
//
// Every /detect request records a span trace — queue wait, parse, scan,
// one span per megatile with its cache outcome and per-stage timings —
// into a fixed-size flight recorder (-flight-recorder traces retained).
// The response carries the trace id (trace_id field, X-Trace-Id and W3C
// traceparent headers; an inbound traceparent is adopted, so a
// coordinator fanning one chip across workers sees a single trace).
// Detections slower than -slow-scan additionally log a structured dump
// naming the worst megatile and its dominant stage.
//
// The pool holds -pool model clones (default: one per compute worker),
// each scanning with its share of the worker budget, so a saturated
// daemon uses the same compute as one CLI scan. Requests beyond
// -pool + -queue are shed with 429; each request is bounded by -timeout.
//
// All clones share one content-addressed megatile result cache
// (-cache-mem, 0 disables): a megatile whose rasterized content was
// scanned before — in any request, at any position — is answered without
// a forward pass. Each megatile response carries a scan_id; re-posting
// an edited layout to /detect?since=<scan_id> diffs it against the
// stored one and re-rasterizes only megatiles a dirty rect touches.
// The whole detection stack runs behind a panic-recovery boundary: a
// corrupt request or an internal bug answers a JSON error and the daemon
// keeps serving. SIGINT/SIGTERM drain in-flight requests before exit.
//
// -selftest starts the daemon on a loopback port, posts a generated
// layout to it, checks /healthz and /statusz, and exits 0 on success —
// used by `make serve-smoke` as an end-to-end build check.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/serve"
	"rhsd/internal/telemetry"
)

func main() {
	ckpt := flag.String("ckpt", "rhsd.ckpt", "model checkpoint from rhsd-train")
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "model clones serving concurrently (0 = one per compute worker)")
	queue := flag.Int("queue", -1, "admitted requests that may wait beyond the pool; past pool+queue sheds 429 (negative = 2×pool, 0 = no waiting room)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline covering queue wait and detection (0 = none)")
	maxBody := flag.Int64("max-body", 16<<20, "largest accepted /detect body in bytes")
	thresh := flag.Float64("threshold", -1, "override score threshold, 0 allowed (negative = config default)")
	megatile := flag.Int("megatile", 0, "megatile factor: 0 = auto from -megatile-mem, N = N×N regions per pass, negative = per-tile scan")
	megatileMem := flag.Int("megatile-mem", 512, "per-clone inference workspace budget in MiB for -megatile 0 (auto)")
	cacheMem := flag.Int("cache-mem", 64, "content-addressed megatile result cache budget in MiB, shared by the pool (0 = disabled)")
	workers := flag.Int("workers", 0, "compute worker pool size (0 = RHSD_WORKERS or NumCPU)")
	precision := flag.String("precision", "fp32", "pool-wide trunk numeric path: fp32 or int8; per-request override via /detect?precision=")
	flightRec := flag.Int("flight-recorder", 0, "completed request traces retained for GET /traces (0 = 32, negative = tracing off)")
	slowScan := flag.Duration("slow-scan", 0, "log a structured trace dump for detections at least this slow (0 = off)")
	idleTrim := flag.Duration("idle-trim", time.Minute, "trim per-clone workspaces after this much idle time (0 = never)")
	initRandom := flag.Bool("init-random", false, "serve freshly initialized weights instead of loading -ckpt (smoke tests)")
	selftest := flag.Bool("selftest", false, "start on a loopback port, run one end-to-end request against it, and exit")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("-log-level %q: %w", *logLevel, err))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// 0 means "unset" for -workers and -megatile, so an explicit bad value
	// must be caught by inspecting which flags the user actually passed.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			if *workers < 1 {
				fatal(fmt.Errorf("-workers must be >= 1 (got %d)", *workers))
			}
		case "megatile-mem":
			if *megatileMem < 1 {
				fatal(fmt.Errorf("-megatile-mem must be >= 1 MiB (got %d)", *megatileMem))
			}
		case "cache-mem":
			if *cacheMem < 0 {
				fatal(fmt.Errorf("-cache-mem must be >= 0 MiB (got %d)", *cacheMem))
			}
		}
	})
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	m, err := hsd.NewModel(eval.FastProfile().HSD)
	if err != nil {
		fatal(err)
	}
	if *initRandom {
		fmt.Fprintln(os.Stderr, "rhsd-serve: serving randomly initialized weights (-init-random)")
	} else if err := m.LoadChecked(*ckpt); err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Pool:           *pool,
		QueueDepth:     *queue,
		Timeout:        *timeout,
		MaxBodyBytes:   *maxBody,
		MegatileFactor: *megatile,
		MegatileMemMiB: *megatileMem,
		CacheMemMiB:    *cacheMem,
		ScoreThreshold: *thresh,
		IdleTrim:       *idleTrim,
		FlightRecorder: *flightRec,
		SlowScan:       *slowScan,
		EnablePprof:    *pprofFlag,
		Logger:         logger,
		Precision:      *precision,
		// Always arm the int8 path (a few synthetic oracle-labeled
		// forward passes at startup) so /detect?precision=int8 works
		// whatever the pool default is.
		Calibration: eval.SyntheticCalibration(m.Config, 4),
	}
	if *timeout == 0 {
		cfg.Timeout = -1 // Config uses 0 as "default"; the flag's 0 means none
	}
	if *idleTrim == 0 {
		cfg.IdleTrim = -1
	}
	s, err := serve.New(m, cfg)
	if err != nil {
		fatal(err)
	}

	listenAddr := *addr
	if *selftest {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "rhsd-serve: listening on %s\n", ln.Addr())

	if *selftest {
		if err := runSelftest(m.Config, cfg, "http://"+ln.Addr().String()); err != nil {
			fmt.Fprintln(os.Stderr, "rhsd-serve: selftest FAILED:", err)
			os.Exit(1)
		}
		shutdown(srv, s)
		fmt.Println("rhsd-serve: selftest ok")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rhsd-serve: signal received, draining")
		shutdown(srv, s)
	case err := <-serveErr:
		fatal(err)
	}
}

// shutdown stops accepting connections, then drains in-flight detections.
func shutdown(srv *http.Server, s *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rhsd-serve: http shutdown:", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rhsd-serve: drain:", err)
	}
}

// runSelftest exercises the live daemon end to end: health, a cold
// detection over a generated layout, a warm repeat that must be
// bit-identical and (when the cache is on) served from it, an
// incremental ?since= rescan of the unchanged layout that must reuse
// every megatile, a malformed request, and status counters plus the
// Prometheus exposition reflecting all of it.
func runSelftest(c hsd.Config, cfg serve.Config, base string) error {
	client := &http.Client{Timeout: 2 * time.Minute}
	megatiles := cfg.MegatileFactor >= 0
	cacheOn := megatiles && cfg.CacheMemMiB > 0

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	var layoutText bytes.Buffer
	if err := selftestLayout(c).Save(&layoutText); err != nil {
		return fmt.Errorf("building layout: %w", err)
	}
	detect := func(label, query string) (serve.DetectResponse, error) {
		var dr serve.DetectResponse
		resp, err := client.Post(base+"/detect"+query, "text/plain", bytes.NewReader(layoutText.Bytes()))
		if err != nil {
			return dr, fmt.Errorf("%s: %w", label, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return dr, fmt.Errorf("%s: status %d: %s", label, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &dr); err != nil {
			return dr, fmt.Errorf("%s: decoding %q: %w", label, body, err)
		}
		if dr.Count != len(dr.Detections) {
			return dr, fmt.Errorf("%s: count %d but %d detections", label, dr.Count, len(dr.Detections))
		}
		return dr, nil
	}

	cold, err := detect("cold detect", "")
	if err != nil {
		return err
	}
	if megatiles {
		if cold.ScanID <= 0 {
			return fmt.Errorf("cold detect: scan_id %d, want > 0 on the megatile path", cold.ScanID)
		}
		if cold.TilesScanned < 1 || cold.TilesReused != 0 || cold.Incremental {
			return fmt.Errorf("cold detect: tiles scanned=%d reused=%d incremental=%v",
				cold.TilesScanned, cold.TilesReused, cold.Incremental)
		}
	}

	// The warm repeat posts the identical layout: the detections must be
	// bit-identical, and with the cache on every megatile raster hashes
	// to an entry the cold scan filled.
	warm, err := detect("warm detect", "")
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(warm.Detections, cold.Detections) {
		return fmt.Errorf("warm detect: detections differ from the cold scan")
	}

	// Re-posting the unchanged layout with ?since= takes the incremental
	// path: an empty diff reuses every retained megatile and rasterizes
	// nothing, and the detections still match.
	if megatiles {
		incr, err := detect("incremental detect", fmt.Sprintf("?since=%d", warm.ScanID))
		if err != nil {
			return err
		}
		if !incr.Incremental || incr.TilesScanned != 0 || incr.TilesReused < 1 {
			return fmt.Errorf("incremental detect: incremental=%v scanned=%d reused=%d, want an all-reused rescan",
				incr.Incremental, incr.TilesScanned, incr.TilesReused)
		}
		if !reflect.DeepEqual(incr.Detections, cold.Detections) {
			return fmt.Errorf("incremental detect: detections differ from the cold scan")
		}
	}

	// The int8 override must run (the server always arms the quantized
	// trunk at startup) and echo the precision it used.
	i8, err := detect("int8 detect", "?precision=int8")
	if err != nil {
		return err
	}
	if i8.Precision != hsd.PrecisionInt8 {
		return fmt.Errorf("int8 detect: response precision %q, want %q", i8.Precision, hsd.PrecisionInt8)
	}
	if cold.Precision != hsd.PrecisionFP32 {
		return fmt.Errorf("cold detect: response precision %q, want %q", cold.Precision, hsd.PrecisionFP32)
	}

	// A malformed body must come back as a 4xx JSON error, not kill the
	// daemon — the serving boundary's core promise.
	resp, err = client.Post(base+"/detect", "text/plain", bytes.NewReader([]byte("RECT with no bounds")))
	if err != nil {
		return fmt.Errorf("malformed detect: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("malformed detect: status %d, want 400: %s", resp.StatusCode, body)
	}

	good := int64(3)
	if megatiles {
		good = 4
	}
	resp, err = client.Get(base + "/statusz")
	if err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("statusz: decoding %q: %w", body, err)
	}
	if st.Requests != good+1 || st.OK != good || st.ClientErrors != 1 {
		return fmt.Errorf("statusz: counters %+v after %d good and one bad request", st, good)
	}
	if !st.Int8Armed || st.Precision != hsd.PrecisionFP32 {
		return fmt.Errorf("statusz: precision %q int8_armed %v, want fp32 and armed", st.Precision, st.Int8Armed)
	}
	if cacheOn {
		if !st.CacheEnabled {
			return fmt.Errorf("statusz: cache_enabled false with -cache-mem %d", cfg.CacheMemMiB)
		}
		if st.CacheHits < 1 || st.CacheMisses < 1 || st.CacheHitRate <= 0 {
			return fmt.Errorf("statusz: cache hits=%d misses=%d hit_rate=%g after a warm repeat",
				st.CacheHits, st.CacheMisses, st.CacheHitRate)
		}
	}

	// The Prometheus exposition must carry every layer of the stack —
	// serve requests, pool utilization, per-stage model timings and the
	// result cache — and agree with the /statusz counters read above.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("metrics: content type %q", ct)
	}
	text := string(body)
	wants := []string{
		fmt.Sprintf("rhsd_serve_requests_total %d", good+1),
		fmt.Sprintf(`rhsd_serve_responses_total{class="2xx"} %d`, good),
		`rhsd_serve_responses_total{class="4xx"} 1`,
		"# TYPE rhsd_detect_stage_seconds histogram",
		`rhsd_detect_stage_seconds_count{stage="backbone"}`,
		"rhsd_pool_workers",
		"rhsd_detect_passes_total",
		"rhsd_build_info{",
	}
	if megatiles {
		wants = append(wants, `rhsd_scan_tiles_total{kind="megatile_reused"}`)
	}
	if cacheOn {
		wants = append(wants,
			`rhsd_scancache_lookups_total{outcome="hit"}`,
			`rhsd_scancache_lookups_total{outcome="miss"}`,
			"rhsd_scancache_bytes",
		)
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics: exposition is missing %q", want)
		}
	}

	if err := selftestTraces(client, base, cold, st, megatiles, layoutText.Bytes()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rhsd-serve: selftest scanned layout, %d detections, pool %d, cache hits %d, trace %s\n",
		cold.Count, st.Pool, st.CacheHits, cold.TraceID)
	return nil
}

// selftestTraces checks the flight recorder end to end: the cold scan's
// trace is retrievable by its id, its span tree has the right shape
// (queue wait + scan + megatile spans with cache outcomes + stage
// children nested within their parents), the text rendering works, the
// scan history on /statusz joins scans to traces, and an inbound W3C
// traceparent header is adopted as the trace id.
func selftestTraces(client *http.Client, base string, cold serve.DetectResponse, st serve.Status, megatiles bool, layoutText []byte) error {
	if len(cold.TraceID) != 32 {
		return fmt.Errorf("traces: cold scan trace_id %q, want 32 hex digits", cold.TraceID)
	}
	if st.Build.GoVersion == "" || st.Build.GemmKernel == "" || st.Build.QGemmKernel == "" {
		return fmt.Errorf("traces: statusz build info incomplete: %+v", st.Build)
	}
	if st.TraceCapacity < 1 || st.TracesRetained < 1 {
		return fmt.Errorf("traces: statusz recorder retained=%d capacity=%d, want both >= 1",
			st.TracesRetained, st.TraceCapacity)
	}
	if megatiles {
		found := false
		for _, e := range st.ScanHistory {
			if e.ScanID == cold.ScanID && e.TraceID == cold.TraceID {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("traces: statusz scan history lacks scan %d with trace %s: %+v",
				cold.ScanID, cold.TraceID, st.ScanHistory)
		}
	}

	// The listing must contain the cold scan's trace.
	resp, err := client.Get(base + "/traces")
	if err != nil {
		return fmt.Errorf("traces list: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traces list: status %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Capacity int `json:"capacity"`
		Traces   []struct {
			TraceID string `json:"trace_id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return fmt.Errorf("traces list: decoding %q: %w", body, err)
	}
	listed := false
	for _, t := range list.Traces {
		if t.TraceID == cold.TraceID {
			listed = true
		}
	}
	if !listed {
		return fmt.Errorf("traces list: trace %s not retained (capacity %d, %d listed)",
			cold.TraceID, list.Capacity, len(list.Traces))
	}

	// The full tree: root "detect" → queue_wait + parse + scan →
	// megatile spans carrying a cache outcome → stage children whose
	// spans nest within the megatile's interval.
	resp, err = client.Get(base + "/traces/" + cold.TraceID)
	if err != nil {
		return fmt.Errorf("trace fetch: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace fetch: status %d: %s", resp.StatusCode, body)
	}
	var td telemetry.TraceData
	if err := json.Unmarshal(body, &td); err != nil {
		return fmt.Errorf("trace fetch: decoding %q: %w", body, err)
	}
	if !td.Complete || td.Root.Name != "detect" {
		return fmt.Errorf("trace fetch: complete=%v root=%q, want a complete detect trace", td.Complete, td.Root.Name)
	}
	children := map[string]int{}
	for _, c := range td.Root.Children {
		children[c.Name]++
	}
	for _, want := range []string{"queue_wait", "parse", "scan"} {
		if children[want] == 0 {
			return fmt.Errorf("trace fetch: root has no %q span (children %v)", want, children)
		}
	}
	workName := "tile"
	if megatiles {
		workName = "megatile"
	}
	workSpans, stageSpans := 0, 0
	for _, c := range td.Root.Children {
		if c.Name != "scan" {
			continue
		}
		for _, mt := range c.Children {
			if mt.Name != workName {
				continue
			}
			workSpans++
			cacheAttr := false
			for _, a := range mt.Attrs {
				if a.Key == "cache" && a.Str != "" {
					cacheAttr = true
				}
			}
			if !cacheAttr {
				return fmt.Errorf("trace fetch: %s span lacks a cache outcome attr: %+v", workName, mt.Attrs)
			}
			for _, stg := range mt.Children {
				stageSpans++
				if stg.StartNs < mt.StartNs || stg.StartNs+stg.DurationNs > mt.StartNs+mt.DurationNs {
					return fmt.Errorf("trace fetch: stage %q [%d,+%d] outside its %s span [%d,+%d]",
						stg.Name, stg.StartNs, stg.DurationNs, workName, mt.StartNs, mt.DurationNs)
				}
			}
		}
	}
	if workSpans < 1 || stageSpans < 1 {
		return fmt.Errorf("trace fetch: %d %s spans with %d stage children, want >= 1 of each",
			workSpans, workName, stageSpans)
	}

	// Text rendering, addressed by request id this time (both keys work).
	resp, err = client.Get(base + "/traces/" + td.RequestID + "?format=txt")
	if err != nil {
		return fmt.Errorf("trace txt: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace txt: status %d: %s", resp.StatusCode, body)
	}
	txt := string(body)
	if !strings.Contains(txt, "trace "+cold.TraceID) || !strings.Contains(txt, workName) {
		return fmt.Errorf("trace txt: rendering lacks the header or %s spans:\n%s", workName, txt)
	}

	// An inbound W3C traceparent must be adopted: the response echoes the
	// caller's trace id and the recorder retains the trace under it.
	const inboundID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, base+"/detect", bytes.NewReader(layoutText))
	if err != nil {
		return fmt.Errorf("traceparent detect: %w", err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("traceparent", "00-"+inboundID+"-00f067aa0ba902b7-01")
	resp, err = client.Do(req)
	if err != nil {
		return fmt.Errorf("traceparent detect: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traceparent detect: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != inboundID {
		return fmt.Errorf("traceparent detect: X-Trace-Id %q, want the inbound id %s", got, inboundID)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.Contains(tp, inboundID) {
		return fmt.Errorf("traceparent detect: response traceparent %q lacks the inbound id", tp)
	}
	resp, err = client.Get(base + "/traces/" + inboundID)
	if err != nil {
		return fmt.Errorf("traceparent fetch: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traceparent fetch: status %d, want the adopted trace retained", resp.StatusCode)
	}
	return nil
}

// selftestLayout covers one megatile and a ragged margin with dense wire
// stripes, enough geometry to drive a real scan.
func selftestLayout(c hsd.Config) *layout.Layout {
	regionNM := c.RegionNM()
	p := int(c.PitchNM)
	l := layout.New(layout.R(0, 0, regionNM+regionNM/2, regionNM+regionNM/4))
	for y := 0; y < l.Bounds.Y1; y += 6 * p {
		l.Add(layout.R(0, y, l.Bounds.X1, y+p))
	}
	l.Add(layout.R(regionNM/2-4*p, regionNM/2-4*p, regionNM/2+5*p, regionNM/2+5*p))
	return l
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-serve:", err)
	os.Exit(1)
}
