// Command rhsd-serve is the R-HSD detection daemon: it loads a trained
// checkpoint once, builds a pool of model clones, and serves hotspot
// detection over HTTP.
//
//	rhsd-serve -ckpt rhsd.ckpt -addr :8080
//	curl --data-binary @chip.layout localhost:8080/detect
//
// Endpoints:
//
//	POST /detect   layout text (BOUNDS/RECT format) in, JSON detections out
//	GET  /healthz  liveness; 503 while draining
//	GET  /statusz  pool, queue, workspace and request counters as JSON
//	GET  /metrics  Prometheus text exposition (stage timings, pool, serve)
//	GET  /debug/pprof/*  profiling handlers, only with -pprof
//
// The pool holds -pool model clones (default: one per compute worker),
// each scanning with its share of the worker budget, so a saturated
// daemon uses the same compute as one CLI scan. Requests beyond
// -pool + -queue are shed with 429; each request is bounded by -timeout.
// The whole detection stack runs behind a panic-recovery boundary: a
// corrupt request or an internal bug answers a JSON error and the daemon
// keeps serving. SIGINT/SIGTERM drain in-flight requests before exit.
//
// -selftest starts the daemon on a loopback port, posts a generated
// layout to it, checks /healthz and /statusz, and exits 0 on success —
// used by `make serve-smoke` as an end-to-end build check.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/serve"
)

func main() {
	ckpt := flag.String("ckpt", "rhsd.ckpt", "model checkpoint from rhsd-train")
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "model clones serving concurrently (0 = one per compute worker)")
	queue := flag.Int("queue", -1, "admitted requests that may wait beyond the pool; past pool+queue sheds 429 (negative = 2×pool, 0 = no waiting room)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline covering queue wait and detection (0 = none)")
	maxBody := flag.Int64("max-body", 16<<20, "largest accepted /detect body in bytes")
	thresh := flag.Float64("threshold", -1, "override score threshold, 0 allowed (negative = config default)")
	megatile := flag.Int("megatile", 0, "megatile factor: 0 = auto from -megatile-mem, N = N×N regions per pass, negative = per-tile scan")
	megatileMem := flag.Int("megatile-mem", 512, "per-clone inference workspace budget in MiB for -megatile 0 (auto)")
	workers := flag.Int("workers", 0, "compute worker pool size (0 = RHSD_WORKERS or NumCPU)")
	idleTrim := flag.Duration("idle-trim", time.Minute, "trim per-clone workspaces after this much idle time (0 = never)")
	initRandom := flag.Bool("init-random", false, "serve freshly initialized weights instead of loading -ckpt (smoke tests)")
	selftest := flag.Bool("selftest", false, "start on a loopback port, run one end-to-end request against it, and exit")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("-log-level %q: %w", *logLevel, err))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// 0 means "unset" for -workers and -megatile, so an explicit bad value
	// must be caught by inspecting which flags the user actually passed.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			if *workers < 1 {
				fatal(fmt.Errorf("-workers must be >= 1 (got %d)", *workers))
			}
		case "megatile-mem":
			if *megatileMem < 1 {
				fatal(fmt.Errorf("-megatile-mem must be >= 1 MiB (got %d)", *megatileMem))
			}
		}
	})
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	m, err := hsd.NewModel(eval.FastProfile().HSD)
	if err != nil {
		fatal(err)
	}
	if *initRandom {
		fmt.Fprintln(os.Stderr, "rhsd-serve: serving randomly initialized weights (-init-random)")
	} else if err := m.LoadChecked(*ckpt); err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Pool:           *pool,
		QueueDepth:     *queue,
		Timeout:        *timeout,
		MaxBodyBytes:   *maxBody,
		MegatileFactor: *megatile,
		MegatileMemMiB: *megatileMem,
		ScoreThreshold: *thresh,
		IdleTrim:       *idleTrim,
		EnablePprof:    *pprofFlag,
		Logger:         logger,
	}
	if *timeout == 0 {
		cfg.Timeout = -1 // Config uses 0 as "default"; the flag's 0 means none
	}
	if *idleTrim == 0 {
		cfg.IdleTrim = -1
	}
	s, err := serve.New(m, cfg)
	if err != nil {
		fatal(err)
	}

	listenAddr := *addr
	if *selftest {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "rhsd-serve: listening on %s\n", ln.Addr())

	if *selftest {
		if err := runSelftest(m.Config, "http://"+ln.Addr().String()); err != nil {
			fmt.Fprintln(os.Stderr, "rhsd-serve: selftest FAILED:", err)
			os.Exit(1)
		}
		shutdown(srv, s)
		fmt.Println("rhsd-serve: selftest ok")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rhsd-serve: signal received, draining")
		shutdown(srv, s)
	case err := <-serveErr:
		fatal(err)
	}
}

// shutdown stops accepting connections, then drains in-flight detections.
func shutdown(srv *http.Server, s *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rhsd-serve: http shutdown:", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rhsd-serve: drain:", err)
	}
}

// runSelftest exercises the live daemon end to end: health, one detection
// over a generated layout, and status counters that reflect it.
func runSelftest(c hsd.Config, base string) error {
	client := &http.Client{Timeout: 2 * time.Minute}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	var buf bytes.Buffer
	if err := selftestLayout(c).Save(&buf); err != nil {
		return fmt.Errorf("building layout: %w", err)
	}
	resp, err = client.Post(base+"/detect", "text/plain", &buf)
	if err != nil {
		return fmt.Errorf("detect: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("detect: status %d: %s", resp.StatusCode, body)
	}
	var dr serve.DetectResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		return fmt.Errorf("detect: decoding %q: %w", body, err)
	}
	if dr.Count != len(dr.Detections) {
		return fmt.Errorf("detect: count %d but %d detections", dr.Count, len(dr.Detections))
	}

	// A malformed body must come back as a 4xx JSON error, not kill the
	// daemon — the serving boundary's core promise.
	resp, err = client.Post(base+"/detect", "text/plain", bytes.NewReader([]byte("RECT with no bounds")))
	if err != nil {
		return fmt.Errorf("malformed detect: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("malformed detect: status %d, want 400: %s", resp.StatusCode, body)
	}

	resp, err = client.Get(base + "/statusz")
	if err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st serve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("statusz: decoding %q: %w", body, err)
	}
	if st.Requests != 2 || st.OK != 1 || st.ClientErrors != 1 {
		return fmt.Errorf("statusz: counters %+v after one good and one bad request", st)
	}

	// The Prometheus exposition must carry every layer of the stack —
	// serve requests, pool utilization and per-stage model timings — and
	// agree with the /statusz counters read above.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("metrics: content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"rhsd_serve_requests_total 2",
		`rhsd_serve_responses_total{class="2xx"} 1`,
		`rhsd_serve_responses_total{class="4xx"} 1`,
		"# TYPE rhsd_detect_stage_seconds histogram",
		`rhsd_detect_stage_seconds_count{stage="backbone"}`,
		"rhsd_pool_workers",
		"rhsd_detect_passes_total",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics: exposition is missing %q", want)
		}
	}
	fmt.Fprintf(os.Stderr, "rhsd-serve: selftest scanned layout, %d detections, pool %d\n", dr.Count, st.Pool)
	return nil
}

// selftestLayout covers one megatile and a ragged margin with dense wire
// stripes, enough geometry to drive a real scan.
func selftestLayout(c hsd.Config) *layout.Layout {
	regionNM := c.RegionNM()
	p := int(c.PitchNM)
	l := layout.New(layout.R(0, 0, regionNM+regionNM/2, regionNM+regionNM/4))
	for y := 0; y < l.Bounds.Y1; y += 6 * p {
		l.Add(layout.R(0, y, l.Bounds.X1, y+p))
	}
	l.Add(layout.R(regionNM/2-4*p, regionNM/2-4*p, regionNM/2+5*p, regionNM/2+5*p))
	return l
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhsd-serve:", err)
	os.Exit(1)
}
