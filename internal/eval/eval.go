// Package eval is the experiment harness that regenerates the paper's
// evaluation artifacts: Table 1 (detector comparison across benchmark
// cases), Figure 9 (qualitative detection maps) and Figure 10 (ablation
// of encoder-decoder, L2 regularization and refinement).
//
// Experiments follow the paper's protocol (§4): each benchmark case is
// split in half for training and testing, the training halves of all
// cases are merged to train one model, and that single model is evaluated
// per case on accuracy, false-alarm count and detection wall-clock.
package eval

import (
	"fmt"
	"time"

	"rhsd/internal/baseline/fasterrcnn"
	"rhsd/internal/baseline/ssd"
	"rhsd/internal/baseline/tcad"
	"rhsd/internal/dataset"
	"rhsd/internal/hsd"
	"rhsd/internal/litho"
	"rhsd/internal/metrics"
	"rhsd/internal/viz"
)

// Profile bundles every knob of one end-to-end experiment run. The paper
// runs at GPU scale; FastProfile shrinks all dimensions proportionally so
// the whole suite executes in minutes on one CPU core.
type Profile struct {
	Name string
	// RegionNM is the physical region size; it must equal
	// HSD.InputSize × HSD.PitchNM.
	RegionNM int
	// NTrain and NTest are regions per case in each split half.
	NTrain, NTest int
	Litho         litho.Model
	HSD           hsd.Config
	TCAD          tcad.Config
	FRCNN         fasterrcnn.Config
	SSD           ssd.Config
}

// FastProfile returns the minutes-scale configuration used by the bench
// harness and examples. The NN raster runs at 8 nm/px so the synthetic
// risky geometry (10–16 nm gaps and necks) stays resolvable after
// rasterization.
func FastProfile() Profile {
	// Calibrated on the synthetic suite (see DESIGN.md §7): leaky
	// activations, fine tap on, moderate L2 with a step-decayed LR, and
	// enough proposals to cover multi-hotspot regions.
	h := hsd.TinyConfig()
	h.InputSize = 96
	h.PitchNM = 8
	h.ClipPx = 24 // 192 nm clips
	h.StemChannels = [3]int{8, 12, 16}
	h.EncChannels = [3]int{20, 24, 28}
	h.InceptionWidth = 12
	h.HeadChannels = 48
	h.RefineFC = 64
	h.ProposalCount = 40
	h.L2Beta = 0.003
	h.LRDecayEvery = 500
	h.LRDecayRate = 0.3
	h.TrainSteps = 1200
	h.ScoreThreshold = 0.5

	t := tcad.DefaultConfig()
	t.ClipPx = 48
	t.PitchNM = 4 // the conventional flow scans fine-resolution clips
	t.DCTKeep = 16
	t.Conv1, t.Conv2, t.FC = 20, 28, 64
	t.TrainSteps = 500

	f := fasterrcnn.DefaultConfig()
	f.InputSize = 96
	f.PitchNM = 8
	f.AnchorBases = []float64{64, 96} // natural-image object scale
	f.TrainSteps = 700

	s := ssd.DefaultConfig()
	s.InputSize = 96
	s.PitchNM = 8
	s.Bases1 = []float64{18, 28}
	s.Bases2 = []float64{40, 56}
	s.TrainSteps = 700

	return Profile{
		Name:     "fast",
		RegionNM: 768,
		NTrain:   10,
		NTest:    8,
		Litho:    litho.DefaultModel(),
		HSD:      h,
		TCAD:     t,
		FRCNN:    f,
		SSD:      s,
	}
}

// FullProfile approaches the paper's scale: 256×256 regions at 10 nm/px,
// the full-width architecture and a long training schedule. On a single
// CPU core this takes many hours — it exists for users with real compute
// (or patience), and as the documented reference the fast profile shrinks
// from. The synthetic cases scale up with the region size.
func FullProfile() Profile {
	h := hsd.PaperConfig()
	h.TrainSteps = 20000 // CPU-feasible fraction of the paper's 90k
	h.BatchRegions = 4

	t := tcad.DefaultConfig()
	t.ClipPx = 120
	t.PitchNM = 4 // 480 nm clips at fine pitch
	t.DCTBlock = 8
	t.DCTKeep = 24
	t.Conv1, t.Conv2, t.FC = 32, 48, 128
	t.TrainSteps = 4000

	f := fasterrcnn.DefaultConfig()
	f.InputSize = 256
	f.PitchNM = 10
	f.AnchorBases = []float64{96, 160}
	f.Backbone = [3]int{24, 48, 64}
	f.TrainSteps = 8000

	s := ssd.DefaultConfig()
	s.InputSize = 256
	s.PitchNM = 10
	s.Bases1 = []float64{32, 48}
	s.Bases2 = []float64{64, 96}
	s.Backbone = [3]int{24, 48, 64}
	s.TrainSteps = 8000

	return Profile{
		Name:     "full",
		RegionNM: 2560,
		NTrain:   40,
		NTest:    30,
		Litho:    litho.DefaultModel(),
		HSD:      h,
		TCAD:     t,
		FRCNN:    f,
		SSD:      s,
	}
}

// SmokeProfile is a seconds-scale profile for tests: tiny data, short
// training. Results are well-formed but not representative.
func SmokeProfile() Profile {
	p := FastProfile()
	p.Name = "smoke"
	p.NTrain, p.NTest = 2, 2
	p.HSD.TrainSteps = 30
	p.TCAD.TrainSteps = 30
	p.FRCNN.TrainSteps = 20
	p.SSD.TrainSteps = 20
	return p
}

// Validate checks the profile's internal consistency.
func (p Profile) Validate() error {
	if err := p.HSD.Validate(); err != nil {
		return err
	}
	if p.HSD.RegionNM() != p.RegionNM {
		return fmt.Errorf("eval: HSD covers %d nm but profile regions are %d nm",
			p.HSD.RegionNM(), p.RegionNM)
	}
	if int(p.TCAD.ClipNM()) != int(p.HSD.ClipNM()) {
		return fmt.Errorf("eval: TCAD clip %v nm != HSD clip %v nm", p.TCAD.ClipNM(), p.HSD.ClipNM())
	}
	if p.NTrain <= 0 || p.NTest <= 0 {
		return fmt.Errorf("eval: need at least one train and test region per case")
	}
	return nil
}

// Data is the generated benchmark suite.
type Data struct {
	Cases []*dataset.Dataset
	// MergedTrain is the union of all cases' training halves (§4: "three
	// training layouts are merged together to train one model").
	MergedTrain []*dataset.Region
}

// LoadData synthesizes and labels all benchmark cases.
func LoadData(p Profile) *Data {
	d := &Data{}
	for _, spec := range dataset.CaseSpecs(p.RegionNM) {
		ds := dataset.Generate(spec, p.Litho, p.NTrain, p.NTest)
		d.Cases = append(d.Cases, ds)
		d.MergedTrain = append(d.MergedTrain, ds.Train...)
	}
	return d
}

// TrainOurs trains one R-HSD model with the given configuration on the
// merged training regions.
func TrainOurs(cfg hsd.Config, train []*dataset.Region, progress func(step int, loss float64)) (*hsd.Model, error) {
	m, err := hsd.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	tr := hsd.NewTrainer(m)
	samples := make([]hsd.Sample, len(train))
	for i, r := range train {
		samples[i] = hsd.MakeSample(r.Layout, r.HotspotPoints(), cfg)
	}
	tr.Run(samples, func(step int, st hsd.StepStats) {
		if progress != nil {
			progress(step, st.Total())
		}
	})
	return m, nil
}

// EvalOurs runs region-based detection over the test regions and scores
// the paper's metrics with wall-clock timing.
func EvalOurs(m *hsd.Model, regions []*dataset.Region) metrics.Outcome {
	var total metrics.Outcome
	for _, r := range regions {
		start := time.Now()
		sample := hsd.MakeSample(r.Layout, nil, m.Config)
		dets := m.DetectionsNM(m.Detect(sample.Raster))
		elapsed := time.Since(start)
		md := make([]metrics.Detection, len(dets))
		for i, d := range dets {
			md[i] = metrics.Detection{Clip: d.Clip, Score: d.Score}
		}
		o := metrics.Evaluate(md, r.HotspotPoints())
		o.Elapsed = elapsed
		total.Add(o)
	}
	return total
}

// Table-1 detector column names.
const (
	DetTCAD  = "TCAD'18"
	DetFRCNN = "Faster R-CNN"
	DetSSD   = "SSD"
	DetOurs  = "Ours"
)

// RunTable1 trains all four detectors on the merged training halves and
// evaluates each per case, reproducing Table 1's layout. progress (may be
// nil) receives coarse status lines.
func RunTable1(p Profile, data *Data, progress func(string)) (*metrics.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	tbl := &metrics.Table{Detectors: []string{DetTCAD, DetFRCNN, DetSSD, DetOurs}}
	clipNM := p.HSD.ClipNM()

	say("training %s on %d merged regions", DetTCAD, len(data.MergedTrain))
	td := tcad.New(p.TCAD)
	td.Train(data.MergedTrain)

	say("training %s", DetFRCNN)
	fd := fasterrcnn.New(p.FRCNN)
	fd.Train(data.MergedTrain, clipNM)

	say("training %s", DetSSD)
	sd := ssd.New(p.SSD)
	sd.Train(data.MergedTrain, clipNM)

	say("training %s (%d steps)", DetOurs, p.HSD.TrainSteps)
	ours, err := TrainOurs(p.HSD, data.MergedTrain, nil)
	if err != nil {
		return nil, err
	}

	for _, ds := range data.Cases {
		say("evaluating %s (%d test regions)", ds.Name, len(ds.Test))
		tbl.AddRow(ds.Name, DetTCAD, td.Evaluate(ds.Test))
		tbl.AddRow(ds.Name, DetFRCNN, fd.Evaluate(ds.Test, clipNM))
		tbl.AddRow(ds.Name, DetSSD, sd.Evaluate(ds.Test, clipNM))
		tbl.AddRow(ds.Name, DetOurs, EvalOurs(ours, ds.Test))
	}
	return tbl, nil
}

// AblationVariant names one Figure-10 configuration.
type AblationVariant struct {
	Name     string
	Config   hsd.Config
	Accuracy float64 // average accuracy over cases, percent
	FA       float64 // average false alarms over cases
}

// AblationVariants derives the four Figure-10 configurations from a full
// configuration.
func AblationVariants(full hsd.Config) []AblationVariant {
	woED := full
	woED.UseEncDec = false
	woL2 := full
	woL2.L2Beta = 0
	woRef := full
	woRef.UseRefine = false
	return []AblationVariant{
		{Name: "w/o. ED", Config: woED},
		{Name: "w/o. L2", Config: woL2},
		{Name: "w/o. Refine", Config: woRef},
		{Name: "Full", Config: full},
	}
}

// ExtendedAblationVariants derives additional design-choice ablations
// beyond Figure 10, isolating two choices the paper argues for in §3.2:
// the 12-anchor clip group ("clips with single aspect ratio and scale may
// lead to bad performance") and hotspot NMS over conventional NMS
// (Figure 5).
func ExtendedAblationVariants(full hsd.Config) []AblationVariant {
	single := full
	single.Scales = []float64{1.0}
	single.AspectRatios = []float64{1.0}
	convNMS := full
	convNMS.ConventionalNMS = true
	noTap := full
	noTap.UseFineTap = false
	return []AblationVariant{
		{Name: "1 anchor/px", Config: single},
		{Name: "conv. NMS", Config: convNMS},
		{Name: "w/o fine tap", Config: noTap},
		{Name: "Full", Config: full},
	}
}

// RunExtendedAblation trains and evaluates the extended variants with the
// same protocol as Figure 10.
func RunExtendedAblation(p Profile, data *Data, progress func(string)) ([]AblationVariant, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	variants := ExtendedAblationVariants(p.HSD)
	return runVariants(variants, data, progress)
}

// RunFigure10 trains the four ablation variants identically and reports
// average accuracy and false alarms, reproducing Figure 10.
func RunFigure10(p Profile, data *Data, progress func(string)) ([]AblationVariant, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return runVariants(AblationVariants(p.HSD), data, progress)
}

// runVariants trains and evaluates each variant on the shared data.
func runVariants(variants []AblationVariant, data *Data, progress func(string)) ([]AblationVariant, error) {
	for vi := range variants {
		v := &variants[vi]
		if progress != nil {
			progress(fmt.Sprintf("training variant %q", v.Name))
		}
		m, err := TrainOurs(v.Config, data.MergedTrain, nil)
		if err != nil {
			return nil, err
		}
		var accSum, faSum float64
		for _, ds := range data.Cases {
			o := EvalOurs(m, ds.Test)
			accSum += o.Accuracy() * 100
			faSum += float64(o.FalseAlarms)
		}
		v.Accuracy = accSum / float64(len(data.Cases))
		v.FA = faSum / float64(len(data.Cases))
	}
	return variants, nil
}

// RenderFigure10 renders the ablation result as a text histogram in the
// spirit of the paper's bar chart.
func RenderFigure10(variants []AblationVariant) string {
	out := "Figure 10 — ablation (averages over cases)\n"
	out += fmt.Sprintf("%-12s %10s %10s\n", "Variant", "Accu(%)", "FA")
	for _, v := range variants {
		out += fmt.Sprintf("%-12s %10.2f %10.1f\n", v.Name, v.Accuracy, v.FA)
	}
	return out
}

// RunFigure9 renders qualitative comparison maps (ground truth vs TCAD'18
// vs ours) for the first test region of each case into outDir.
func RunFigure9(p Profile, data *Data, outDir string, progress func(string)) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if progress != nil {
		progress("training detectors for figure 9")
	}
	td := tcad.New(p.TCAD)
	td.Train(data.MergedTrain)
	ours, err := TrainOurs(p.HSD, data.MergedTrain, nil)
	if err != nil {
		return err
	}
	for _, ds := range data.Cases {
		r := pickRegion(ds.Test)
		sample := hsd.MakeSample(r.Layout, nil, ours.Config)
		oursDet := ours.DetectionsNM(ours.Detect(sample.Raster))
		md := make([]metrics.Detection, len(oursDet))
		for i, d := range oursDet {
			md[i] = metrics.Detection{Clip: d.Clip, Score: d.Score}
		}
		results := map[string][]metrics.Detection{
			"groundtruth": nil,
			"tcad18":      td.DetectRegion(r),
			"ours":        md,
		}
		if err := viz.SaveComparison(outDir, ds.Name, r.Layout, r.HotspotPoints(), results, 512); err != nil {
			return err
		}
		if progress != nil {
			progress(fmt.Sprintf("wrote figure 9 panels for %s", ds.Name))
		}
	}
	return nil
}

// pickRegion prefers a region with at least two hotspots (the paper's
// figure shows a multi-hotspot region), falling back to the first.
func pickRegion(regions []*dataset.Region) *dataset.Region {
	for _, r := range regions {
		if len(r.Hotspots) >= 2 {
			return r
		}
	}
	return regions[0]
}
