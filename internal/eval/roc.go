package eval

import (
	"fmt"

	"rhsd/internal/baseline/ssd"
	"rhsd/internal/baseline/tcad"
	"rhsd/internal/dataset"
	"rhsd/internal/hsd"
	"rhsd/internal/metrics"
)

// The ROC experiment extends the paper's single-operating-point Table 1
// with the full accuracy/false-alarm trade-off curve, in the spirit of
// the LithoROC line of work the paper cites. Detectors are run with their
// thresholds opened up so every scored candidate is kept; the sweep is
// then applied post-hoc by metrics.ROC.

// CollectOursResults runs the R-HSD detector with an opened-up threshold
// over the regions and returns scored per-region results for ROC
// sweeping.
func CollectOursResults(m *hsd.Model, regions []*dataset.Region) []metrics.RegionResult {
	cfg := m.Config
	orig := m.Config.ScoreThreshold
	m.Config.ScoreThreshold = 0.01
	defer func() { m.Config.ScoreThreshold = orig }()
	var out []metrics.RegionResult
	for _, r := range regions {
		sample := hsd.MakeSample(r.Layout, nil, cfg)
		dets := m.DetectionsNM(m.Detect(sample.Raster))
		md := make([]metrics.Detection, len(dets))
		for i, d := range dets {
			md[i] = metrics.Detection{Clip: d.Clip, Score: d.Score}
		}
		out = append(out, metrics.RegionResult{Dets: md, GT: r.HotspotPoints()})
	}
	return out
}

// CollectTCADResults opens up the TCAD detector's bias so every window's
// score survives to the sweep.
func CollectTCADResults(d *tcad.Detector, regions []*dataset.Region) []metrics.RegionResult {
	orig := d.Config.Bias
	d.Config.Bias = 0.49 // accept essentially everything; sweep filters
	defer func() { d.Config.Bias = orig }()
	var out []metrics.RegionResult
	for _, r := range regions {
		out = append(out, metrics.RegionResult{Dets: d.DetectRegion(r), GT: r.HotspotPoints()})
	}
	return out
}

// CollectSSDResults opens up the SSD score threshold for ROC sweeping.
func CollectSSDResults(d *ssd.Detector, regions []*dataset.Region, clipNM float64) []metrics.RegionResult {
	orig := d.Config.ScoreThresh
	d.Config.ScoreThresh = 0.01
	defer func() { d.Config.ScoreThresh = orig }()
	var out []metrics.RegionResult
	for _, r := range regions {
		out = append(out, metrics.RegionResult{Dets: d.DetectRegion(r, clipNM), GT: r.HotspotPoints()})
	}
	return out
}

// ROCResult is one detector's operating curve.
type ROCResult struct {
	Detector string
	Points   []metrics.ROCPoint
	AUAC     float64
}

// RunROC trains ours, TCAD'18 and SSD on the merged training halves and
// sweeps their operating curves over all test regions. (Faster R-CNN is
// omitted: its generic anchors fire so rarely that its curve degenerates,
// as Table 1 already shows.)
func RunROC(p Profile, data *Data, progress func(string)) ([]ROCResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	say := func(f string, a ...any) {
		if progress != nil {
			progress(fmt.Sprintf(f, a...))
		}
	}
	var allTest []*dataset.Region
	for _, ds := range data.Cases {
		allTest = append(allTest, ds.Test...)
	}
	thresholds := metrics.DefaultThresholds(20)

	say("training %s", DetTCAD)
	td := tcad.New(p.TCAD)
	td.Train(data.MergedTrain)
	say("training %s", DetSSD)
	sd := ssd.New(p.SSD)
	sd.Train(data.MergedTrain, p.HSD.ClipNM())
	say("training %s", DetOurs)
	ours, err := TrainOurs(p.HSD, data.MergedTrain, nil)
	if err != nil {
		return nil, err
	}

	say("sweeping operating curves over %d regions", len(allTest))
	results := []ROCResult{
		{Detector: DetTCAD, Points: metrics.ROC(CollectTCADResults(td, allTest), thresholds)},
		{Detector: DetSSD, Points: metrics.ROC(CollectSSDResults(sd, allTest, p.HSD.ClipNM()), thresholds)},
		{Detector: DetOurs, Points: metrics.ROC(CollectOursResults(ours, allTest), thresholds)},
	}
	for i := range results {
		results[i].AUAC = metrics.AUAC(results[i].Points)
	}
	return results, nil
}

// RenderROCResults prints all curves plus the AUAC summary.
func RenderROCResults(rs []ROCResult) string {
	out := "ROC extension — accuracy vs false alarms across score thresholds\n"
	for _, r := range rs {
		out += fmt.Sprintf("\n%s (AUAC %.3f):\n%s", r.Detector, r.AUAC, metrics.RenderROC(r.Points))
	}
	return out
}
