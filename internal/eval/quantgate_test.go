package eval

import (
	"strings"
	"testing"
	"time"

	"rhsd/internal/metrics"
)

// TestQuantGateCheckPass: identical outcomes trivially pass, and small
// in-budget drifts pass too.
func TestQuantGateCheckPass(t *testing.T) {
	b := DefaultQuantGateBudget()
	fp32 := metrics.Outcome{GroundTruth: 1000, Detected: 950, FalseAlarms: 100, Elapsed: 2 * time.Second}
	r := QuantGateCheck(fp32, fp32, b)
	if !r.Pass || len(r.Reasons) != 0 {
		t.Fatalf("identical outcomes failed the gate: %+v", r)
	}
	// 0.4 pt recall drop, +2 FA on a 100-FA base (2% + 1 slack = +3).
	i8 := metrics.Outcome{GroundTruth: 1000, Detected: 946, FalseAlarms: 102, Elapsed: time.Second}
	r = QuantGateCheck(fp32, i8, b)
	if !r.Pass {
		t.Fatalf("in-budget drift failed the gate: %v", r.Reasons)
	}
	if r.Speedup < 1.99 || r.Speedup > 2.01 {
		t.Errorf("speedup %v, want ~2", r.Speedup)
	}
	// An int8 recall gain must never fail.
	better := metrics.Outcome{GroundTruth: 1000, Detected: 990, FalseAlarms: 100}
	if r := QuantGateCheck(fp32, better, b); !r.Pass {
		t.Fatalf("int8 recall gain failed the gate: %v", r.Reasons)
	}
}

// TestQuantGateCheckFailsOverBudget proves the gate actually fails:
// recall drops beyond 0.5 pt and false-alarm growth beyond the budget
// must each flip Pass to false with a reason naming the violation.
func TestQuantGateCheckFailsOverBudget(t *testing.T) {
	b := DefaultQuantGateBudget()
	fp32 := metrics.Outcome{GroundTruth: 1000, Detected: 950, FalseAlarms: 100}

	// 1.0 pt recall drop > 0.5 budget.
	lowRecall := metrics.Outcome{GroundTruth: 1000, Detected: 940, FalseAlarms: 100}
	r := QuantGateCheck(fp32, lowRecall, b)
	if r.Pass {
		t.Fatal("gate passed a 1.0 pt recall drop against a 0.5 pt budget")
	}
	if len(r.Reasons) != 1 || !strings.Contains(r.Reasons[0], "recall drop") {
		t.Fatalf("reasons = %v, want one recall-drop violation", r.Reasons)
	}

	// +4 false alarms > 2% of 100 + 1 slack = +3.
	manyFA := metrics.Outcome{GroundTruth: 1000, Detected: 950, FalseAlarms: 104}
	r = QuantGateCheck(fp32, manyFA, b)
	if r.Pass {
		t.Fatal("gate passed +4 false alarms against a +3 budget")
	}
	if len(r.Reasons) != 1 || !strings.Contains(r.Reasons[0], "false-alarm") {
		t.Fatalf("reasons = %v, want one false-alarm violation", r.Reasons)
	}

	// Both over budget: both reasons reported, and Render says FAIL.
	worst := metrics.Outcome{GroundTruth: 1000, Detected: 900, FalseAlarms: 150}
	r = QuantGateCheck(fp32, worst, b)
	if r.Pass || len(r.Reasons) != 2 {
		t.Fatalf("want both violations, got pass=%v reasons=%v", r.Pass, r.Reasons)
	}
	if out := r.Render(); !strings.Contains(out, "FAIL") {
		t.Errorf("Render of a failing gate lacks FAIL: %q", out)
	}
}

// TestQuantGateCheckZeroFABaseline: with a clean fp32 baseline the
// relative budget contributes nothing and only the absolute slack
// remains.
func TestQuantGateCheckZeroFABaseline(t *testing.T) {
	b := DefaultQuantGateBudget() // slack +1
	fp32 := metrics.Outcome{GroundTruth: 100, Detected: 90, FalseAlarms: 0}
	ok := metrics.Outcome{GroundTruth: 100, Detected: 90, FalseAlarms: 1}
	if r := QuantGateCheck(fp32, ok, b); !r.Pass {
		t.Fatalf("+1 FA on zero baseline failed with +1 slack: %v", r.Reasons)
	}
	bad := metrics.Outcome{GroundTruth: 100, Detected: 90, FalseAlarms: 2}
	if r := QuantGateCheck(fp32, bad, b); r.Pass {
		t.Fatal("+2 FA on zero baseline passed with +1 slack")
	}
}

// TestCalibrationRastersPrefersOracleLabels checks labeled regions come
// first and the count cap holds.
func TestCalibrationRastersPrefersOracleLabels(t *testing.T) {
	p := SmokeProfile()
	data := LoadData(p)
	var labeled int
	for _, r := range data.MergedTrain {
		if len(r.HotspotPoints()) > 0 {
			labeled++
		}
	}
	if labeled == 0 {
		t.Skip("smoke data produced no labeled training regions")
	}
	n := labeled
	if n > 3 {
		n = 3
	}
	rs := CalibrationRasters(p.HSD, data.MergedTrain, n)
	if len(rs) != n {
		t.Fatalf("got %d rasters, want %d", len(rs), n)
	}
	for i, r := range rs {
		if r.Rank() != 4 || r.Dim(2) != p.HSD.InputSize {
			t.Fatalf("raster %d has shape %v", i, r.Shape())
		}
	}
}

// TestRunQuantGateSmoke runs the full gate end-to-end at smoke scale:
// train once, calibrate, evaluate both precisions, score. A smoke-scale
// model is barely trained, so the test asserts the machinery — deltas
// computed, calibration counted, precision restored — not the verdict.
func TestRunQuantGateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quant gate smoke test skipped in -short mode")
	}
	p := SmokeProfile()
	data := LoadData(p)
	res, err := RunQuantGate(p, data, DefaultQuantGateBudget(), nil)
	if err != nil {
		t.Fatalf("RunQuantGate: %v", err)
	}
	if res.CalibrationRasters == 0 {
		t.Error("gate ran with zero calibration rasters")
	}
	if res.FP32.GroundTruth == 0 || res.Int8.GroundTruth == 0 {
		t.Error("gate evaluated zero ground-truth hotspots")
	}
	if res.FP32.GroundTruth != res.Int8.GroundTruth {
		t.Errorf("fp32 and int8 saw different ground truth: %d vs %d",
			res.FP32.GroundTruth, res.Int8.GroundTruth)
	}
	if out := res.Render(); !strings.Contains(out, "int8 accuracy gate") {
		t.Errorf("Render output malformed: %q", out)
	}
}
