package eval

import (
	"fmt"
	"time"

	"rhsd/internal/dataset"
	"rhsd/internal/hsd"
	"rhsd/internal/litho"
	"rhsd/internal/metrics"
	"rhsd/internal/tensor"
)

// The int8 accuracy-delta gate: quantized inference is only worth
// shipping if it is effectively free in accuracy terms. The gate runs
// the Table-1 protocol twice on one trained model — float32 and int8 —
// and fails when the quantized path loses more recall or gains more
// false alarms than the budget allows.

// QuantGateBudget bounds how far the int8 path may drift from float32.
type QuantGateBudget struct {
	// MaxRecallDropPts is the largest tolerated drop in detection
	// accuracy (recall), in percentage points, aggregated over all
	// cases. An int8 *gain* never fails the gate.
	MaxRecallDropPts float64
	// MaxFADeltaFrac is the largest tolerated relative increase in
	// false alarms (0.02 = +2%). With zero float32 false alarms, any
	// tolerated absolute increase must come from MaxFASlack.
	MaxFADeltaFrac float64
	// MaxFASlack is the absolute false-alarm headroom added on top of
	// the relative budget — keeps the gate meaningful when the float32
	// baseline has very few (or zero) false alarms.
	MaxFASlack int
}

// DefaultQuantGateBudget is the shipping bar: within half a point of
// recall and 2% (+1 absolute) of false alarms.
func DefaultQuantGateBudget() QuantGateBudget {
	return QuantGateBudget{MaxRecallDropPts: 0.5, MaxFADeltaFrac: 0.02, MaxFASlack: 1}
}

// QuantGateResult is the gate's verdict with the evidence behind it.
type QuantGateResult struct {
	Budget QuantGateBudget
	// FP32 and Int8 aggregate the Table-1 outcome over all cases.
	FP32, Int8 metrics.Outcome
	// RecallDropPts is fp32 recall − int8 recall in percentage points
	// (positive = int8 lost recall).
	RecallDropPts float64
	// FADelta is int8 false alarms − fp32 false alarms.
	FADelta int
	// Speedup is fp32 wall-clock / int8 wall-clock over the evaluation.
	Speedup float64
	// CalibrationRasters is how many oracle-labeled regions fed the
	// activation-range sweep.
	CalibrationRasters int
	Pass               bool
	Reasons            []string // populated when Pass is false
}

// QuantGateCheck scores an fp32/int8 outcome pair against the budget.
// Pure function — the testable core of the gate.
func QuantGateCheck(fp32, i8 metrics.Outcome, b QuantGateBudget) QuantGateResult {
	r := QuantGateResult{Budget: b, FP32: fp32, Int8: i8}
	r.RecallDropPts = (fp32.Accuracy() - i8.Accuracy()) * 100
	r.FADelta = i8.FalseAlarms - fp32.FalseAlarms
	if i8.Elapsed > 0 {
		r.Speedup = float64(fp32.Elapsed) / float64(i8.Elapsed)
	}
	r.Pass = true
	if r.RecallDropPts > b.MaxRecallDropPts {
		r.Pass = false
		r.Reasons = append(r.Reasons, fmt.Sprintf(
			"recall drop %.2f pts exceeds budget %.2f pts", r.RecallDropPts, b.MaxRecallDropPts))
	}
	faBudget := int(b.MaxFADeltaFrac*float64(fp32.FalseAlarms)) + b.MaxFASlack
	if r.FADelta > faBudget {
		r.Pass = false
		r.Reasons = append(r.Reasons, fmt.Sprintf(
			"false-alarm delta +%d exceeds budget +%d (%.0f%% of %d, +%d slack)",
			r.FADelta, faBudget, b.MaxFADeltaFrac*100, fp32.FalseAlarms, b.MaxFASlack))
	}
	return r
}

// CalibrationRasters rasterizes up to n oracle-labeled training regions
// (regions whose ground truth marks at least one hotspot) for the
// activation-range sweep. Hotspot-bearing regions exercise the risky
// geometry the detector fires on, so the calibrated ranges cover the
// activations that matter; plain regions are used only when labeled
// ones run out.
func CalibrationRasters(cfg hsd.Config, regions []*dataset.Region, n int) []*tensor.Tensor {
	if n <= 0 {
		n = 4
	}
	var out []*tensor.Tensor
	for _, r := range regions {
		if len(out) >= n {
			return out
		}
		if len(r.HotspotPoints()) > 0 {
			out = append(out, hsd.MakeSample(r.Layout, nil, cfg).Raster)
		}
	}
	for _, r := range regions {
		if len(out) >= n {
			break
		}
		if len(r.HotspotPoints()) == 0 {
			out = append(out, hsd.MakeSample(r.Layout, nil, cfg).Raster)
		}
	}
	return out
}

// SyntheticCalibration generates oracle-labeled calibration rasters at
// the configuration's region scale from the synthetic benchmark
// generator — what the CLIs use to arm the int8 path when no training
// data is at hand. The generator's hotspot labels are the oracle, so
// the sweep covers the activations risky geometry produces.
func SyntheticCalibration(cfg hsd.Config, n int) []*tensor.Tensor {
	var regions []*dataset.Region
	for _, spec := range dataset.CaseSpecs(cfg.RegionNM()) {
		ds := dataset.Generate(spec, litho.DefaultModel(), 2, 0)
		regions = append(regions, ds.Train...)
	}
	return CalibrationRasters(cfg, regions, n)
}

// evalOursPrecision runs EvalOurs over every case under the given
// precision, restoring the model's previous precision after.
func evalOursPrecision(m *hsd.Model, data *Data, precision string) (metrics.Outcome, error) {
	prev := m.Precision()
	if err := m.SetPrecision(precision); err != nil {
		return metrics.Outcome{}, err
	}
	defer m.SetPrecision(prev)
	var total metrics.Outcome
	for _, ds := range data.Cases {
		total.Add(EvalOurs(m, ds.Test))
	}
	return total, nil
}

// RunQuantGate trains one R-HSD model, calibrates its int8 path on
// oracle-labeled training clips, evaluates the Table-1 protocol under
// both precisions and scores the deltas against the budget. progress
// (may be nil) receives coarse status lines.
func RunQuantGate(p Profile, data *Data, b QuantGateBudget, progress func(string)) (*QuantGateResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	say("training R-HSD (%d steps)", p.HSD.TrainSteps)
	m, err := TrainOurs(p.HSD, data.MergedTrain, nil)
	if err != nil {
		return nil, err
	}
	return QuantGateOnModel(m, data, b, progress)
}

// QuantGateOnModel runs the gate on an already-trained model (shared by
// RunQuantGate and callers that reuse a Table-1 model). The model's
// precision is left as it was found.
func QuantGateOnModel(m *hsd.Model, data *Data, b QuantGateBudget, progress func(string)) (*QuantGateResult, error) {
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	cal := CalibrationRasters(m.Config, data.MergedTrain, 4)
	if len(cal) == 0 {
		return nil, fmt.Errorf("eval: no calibration rasters available")
	}
	say("calibrating int8 on %d oracle-labeled regions", len(cal))
	if err := m.CalibrateInt8(cal); err != nil {
		return nil, err
	}
	say("evaluating fp32")
	start := time.Now()
	fp32, err := evalOursPrecision(m, data, hsd.PrecisionFP32)
	if err != nil {
		return nil, err
	}
	say("fp32 done in %v; evaluating int8", time.Since(start).Round(time.Millisecond))
	int8Out, err := evalOursPrecision(m, data, hsd.PrecisionInt8)
	if err != nil {
		return nil, err
	}
	r := QuantGateCheck(fp32, int8Out, b)
	r.CalibrationRasters = len(cal)
	return &r, nil
}

// Render formats the gate verdict for CLI output.
func (r *QuantGateResult) Render() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	out := fmt.Sprintf("int8 accuracy gate: %s\n", verdict)
	out += fmt.Sprintf("  recall  fp32 %.2f%%  int8 %.2f%%  drop %+.2f pts (budget %.2f)\n",
		r.FP32.Accuracy()*100, r.Int8.Accuracy()*100, r.RecallDropPts, r.Budget.MaxRecallDropPts)
	out += fmt.Sprintf("  false alarms  fp32 %d  int8 %d  delta %+d (budget %.0f%% +%d)\n",
		r.FP32.FalseAlarms, r.Int8.FalseAlarms, r.FADelta, r.Budget.MaxFADeltaFrac*100, r.Budget.MaxFASlack)
	if r.Speedup > 0 {
		out += fmt.Sprintf("  wall-clock  fp32 %v  int8 %v  speedup %.2f×\n",
			r.FP32.Elapsed.Round(time.Millisecond), r.Int8.Elapsed.Round(time.Millisecond), r.Speedup)
	}
	for _, reason := range r.Reasons {
		out += "  ! " + reason + "\n"
	}
	return out
}
