package eval

import (
	"strings"
	"testing"

	"rhsd/internal/hsd"
)

func TestCollectOursResultsRestoresThreshold(t *testing.T) {
	p := SmokeProfile()
	data := LoadData(p)
	m, err := hsd.NewModel(p.HSD)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Config.ScoreThreshold
	results := CollectOursResults(m, data.Cases[0].Test[:1])
	if m.Config.ScoreThreshold != orig {
		t.Fatal("threshold not restored after collection")
	}
	if len(results) != 1 {
		t.Fatalf("results: %d", len(results))
	}
	for _, d := range results[0].Dets {
		if d.Score < 0 || d.Score > 1 {
			t.Fatalf("score %v out of range", d.Score)
		}
	}
}

func TestRunROCSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test skipped in -short")
	}
	p := SmokeProfile()
	data := LoadData(p)
	rs, err := RunROC(p, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("detectors: %d", len(rs))
	}
	for _, r := range rs {
		if len(r.Points) == 0 {
			t.Fatalf("%s: empty curve", r.Detector)
		}
		// Monotone in threshold.
		for i := 1; i < len(r.Points); i++ {
			if r.Points[i].FalseAlarms > r.Points[i-1].FalseAlarms {
				t.Fatalf("%s: FA not monotone", r.Detector)
			}
		}
	}
	text := RenderROCResults(rs)
	for _, want := range []string{DetTCAD, DetSSD, DetOurs, "AUAC"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}
