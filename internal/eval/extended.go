package eval

import (
	"rhsd/internal/baseline/adaboost"
	"rhsd/internal/baseline/patmatch"
	"rhsd/internal/metrics"
)

// Extended-table detector names.
const (
	DetPatMatch = "PatternMatch"
	DetAdaBoost = "AdaBoost"
)

// RunExtendedTable1 adds the paper's two *other* method classes — fuzzy
// pattern matching and classical (pre-CNN) machine learning — to the
// comparison, trained and evaluated under the Table-1 protocol. The paper
// surveys both in §1 without benchmarking them; this extended table
// completes the method-class picture on the synthetic suite.
func RunExtendedTable1(p Profile, data *Data, progress func(string)) (*metrics.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	say := func(s string) {
		if progress != nil {
			progress(s)
		}
	}
	tbl := &metrics.Table{Detectors: []string{DetPatMatch, DetAdaBoost, DetOurs}}

	say("training " + DetPatMatch)
	pmCfg := patmatch.DefaultConfig()
	pmCfg.ClipNM = p.HSD.ClipNM()
	pm := patmatch.New(pmCfg)
	pm.Train(data.MergedTrain)

	say("training " + DetAdaBoost)
	abCfg := adaboost.DefaultConfig()
	abCfg.ClipNM = p.HSD.ClipNM()
	ab := adaboost.New(abCfg)
	ab.Train(data.MergedTrain)

	say("training " + DetOurs)
	ours, err := TrainOurs(p.HSD, data.MergedTrain, nil)
	if err != nil {
		return nil, err
	}

	for _, ds := range data.Cases {
		say("evaluating " + ds.Name)
		tbl.AddRow(ds.Name, DetPatMatch, pm.Evaluate(ds.Test))
		tbl.AddRow(ds.Name, DetAdaBoost, ab.Evaluate(ds.Test))
		tbl.AddRow(ds.Name, DetOurs, EvalOurs(ours, ds.Test))
	}
	return tbl, nil
}
