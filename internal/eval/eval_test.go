package eval

import (
	"os"
	"strings"
	"testing"

	"rhsd/internal/hsd"
)

func TestProfilesValidate(t *testing.T) {
	if err := FastProfile().Validate(); err != nil {
		t.Fatalf("fast profile: %v", err)
	}
	if err := SmokeProfile().Validate(); err != nil {
		t.Fatalf("smoke profile: %v", err)
	}
	if err := FullProfile().Validate(); err != nil {
		t.Fatalf("full profile: %v", err)
	}
	bad := FastProfile()
	bad.RegionNM = 1000
	if bad.Validate() == nil {
		t.Fatal("mismatched region size must fail validation")
	}
}

func TestLoadDataMergesTrainingHalves(t *testing.T) {
	p := SmokeProfile()
	d := LoadData(p)
	if len(d.Cases) != 3 {
		t.Fatalf("cases: %d", len(d.Cases))
	}
	if len(d.MergedTrain) != 3*p.NTrain {
		t.Fatalf("merged train: %d want %d", len(d.MergedTrain), 3*p.NTrain)
	}
	for _, ds := range d.Cases {
		if len(ds.Test) != p.NTest {
			t.Fatalf("%s test regions: %d", ds.Name, len(ds.Test))
		}
	}
}

func TestAblationVariantsToggleTheRightKnobs(t *testing.T) {
	full := FastProfile().HSD
	vs := AblationVariants(full)
	if len(vs) != 4 {
		t.Fatalf("variants: %d", len(vs))
	}
	byName := map[string]AblationVariant{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	if byName["w/o. ED"].Config.UseEncDec {
		t.Fatal("w/o. ED keeps the encoder-decoder")
	}
	if byName["w/o. L2"].Config.L2Beta != 0 {
		t.Fatal("w/o. L2 keeps regularization")
	}
	if byName["w/o. Refine"].Config.UseRefine {
		t.Fatal("w/o. Refine keeps the 2nd stage")
	}
	f := byName["Full"].Config
	if !f.UseEncDec || !f.UseRefine || f.L2Beta == 0 {
		t.Fatal("Full variant altered")
	}
	// Ablations must not perturb unrelated settings.
	if byName["w/o. ED"].Config.TrainSteps != full.TrainSteps {
		t.Fatal("ablation changed the training budget")
	}
}

func TestRunTable1SmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test skipped in -short")
	}
	p := SmokeProfile()
	data := LoadData(p)
	var lines []string
	tbl, err := RunTable1(p, data, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 { // 3 cases × 4 detectors
		t.Fatalf("table rows: %d", len(tbl.Rows))
	}
	rendered := tbl.Render(DetTCAD)
	for _, want := range []string{"Case2", "Case3", "Case4", "Average", "Ratio", DetOurs} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("table missing %q:\n%s", want, rendered)
		}
	}
	if len(lines) == 0 {
		t.Fatal("progress callback never invoked")
	}
	// Outcomes are internally consistent.
	for _, r := range tbl.Rows {
		if r.Outcome.Detected > r.Outcome.GroundTruth {
			t.Fatalf("row %v: detected > ground truth", r)
		}
		if r.Outcome.Elapsed <= 0 {
			t.Fatalf("row %v: missing timing", r)
		}
	}
}

func TestRunFigure9WritesPanels(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test skipped in -short")
	}
	p := SmokeProfile()
	data := LoadData(p)
	dir := t.TempDir()
	if err := RunFigure9(p, data, dir, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 { // 3 cases × 3 panels
		t.Fatalf("figure 9 panels: %d", len(entries))
	}
}

func TestRenderFigure10Format(t *testing.T) {
	vs := []AblationVariant{
		{Name: "w/o. ED", Accuracy: 88.5, FA: 120},
		{Name: "Full", Accuracy: 95.8, FA: 84},
	}
	s := RenderFigure10(vs)
	if !strings.Contains(s, "w/o. ED") || !strings.Contains(s, "95.80") {
		t.Fatalf("figure 10 render:\n%s", s)
	}
}

func TestExtendedAblationVariants(t *testing.T) {
	vs := ExtendedAblationVariants(FastProfile().HSD)
	if len(vs) != 4 {
		t.Fatalf("variants: %d", len(vs))
	}
	byName := map[string]AblationVariant{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	if byName["1 anchor/px"].Config.AnchorsPerCell() != 1 {
		t.Fatal("single-anchor variant wrong")
	}
	if !byName["conv. NMS"].Config.ConventionalNMS {
		t.Fatal("conventional NMS variant wrong")
	}
	if byName["w/o fine tap"].Config.UseFineTap {
		t.Fatal("fine-tap variant wrong")
	}
	if byName["Full"].Config.ConventionalNMS || byName["Full"].Config.AnchorsPerCell() != 12 ||
		!byName["Full"].Config.UseFineTap {
		t.Fatal("full variant altered")
	}
}

func TestRunFigure10SmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test skipped in -short")
	}
	p := SmokeProfile()
	p.HSD.TrainSteps = 12 // 4 variants × 12 steps keeps this quick
	data := LoadData(p)
	variants, err := RunFigure10(p, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 4 {
		t.Fatalf("variants: %d", len(variants))
	}
	for _, v := range variants {
		if v.Accuracy < 0 || v.Accuracy > 100 {
			t.Fatalf("%s: accuracy %v", v.Name, v.Accuracy)
		}
		if v.FA < 0 {
			t.Fatalf("%s: FA %v", v.Name, v.FA)
		}
	}
}

func TestRunSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test skipped in -short")
	}
	p := SmokeProfile()
	p.HSD.TrainSteps = 10
	data := LoadData(p)
	points := []SweepPoint{
		{Name: "a", Mutate: func(c *hsd.Config) { c.ScoreThreshold = 0.4 }},
		{Name: "b", Mutate: func(c *hsd.Config) { c.ScoreThreshold = 0.6 }},
	}
	var seen []SweepSample
	samples, err := RunSweep(p, data, points, 5, func(s SweepSample) { seen = append(seen, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 { // 2 points × 2 evals (step 5 and 10)
		t.Fatalf("samples: %d (%v)", len(samples), samples)
	}
	if len(seen) != len(samples) {
		t.Fatal("progress callback missed samples")
	}
	best := BestByAccuracy(samples)
	if len(best) != 2 {
		t.Fatalf("best map: %v", best)
	}
	csv := SweepCSV(samples)
	if !strings.Contains(csv, "point,step,accuracy_pct,false_alarms") {
		t.Fatalf("csv header missing:\n%s", csv)
	}
}

func TestRunExtendedTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test skipped in -short")
	}
	p := SmokeProfile()
	p.HSD.TrainSteps = 10
	data := LoadData(p)
	tbl, err := RunExtendedTable1(p, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 { // 3 cases × 3 detectors
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	rendered := tbl.Render(DetOurs)
	for _, want := range []string{DetPatMatch, DetAdaBoost, DetOurs} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("missing %q:\n%s", want, rendered)
		}
	}
}
