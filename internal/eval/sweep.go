package eval

import (
	"fmt"
	"strings"

	"rhsd/internal/hsd"
)

// Sweep support: train R-HSD variants over a hyperparameter grid with
// periodic evaluation, the calibration workflow used to pick the fast
// profile's operating point. Exposed as a first-class harness because
// retuning is the first thing a user with different data will need.

// SweepPoint is one grid entry: a named mutation of the base config.
type SweepPoint struct {
	Name   string
	Mutate func(*hsd.Config)
}

// SweepSample is one periodic measurement during a sweep run.
type SweepSample struct {
	Point    string
	Step     int
	Accuracy float64 // average over cases, percent
	FA       float64 // average over cases
}

// RunSweep trains one model per point on the shared data, evaluating
// every evalEvery steps. Results stream to the callback (for live logs)
// and are returned for tabulation.
func RunSweep(p Profile, data *Data, points []SweepPoint, evalEvery int,
	progress func(SweepSample)) ([]SweepSample, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if evalEvery <= 0 {
		evalEvery = 300
	}
	var out []SweepSample
	for _, pt := range points {
		cfg := p.HSD
		pt.Mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep point %q: %w", pt.Name, err)
		}
		m, err := hsd.NewModel(cfg)
		if err != nil {
			return nil, err
		}
		tr := hsd.NewTrainer(m)
		samples := make([]hsd.Sample, len(data.MergedTrain))
		for i, r := range data.MergedTrain {
			samples[i] = hsd.MakeSample(r.Layout, r.HotspotPoints(), cfg)
		}
		measure := func(step int) {
			var acc, fa float64
			for _, ds := range data.Cases {
				o := EvalOurs(m, ds.Test)
				acc += o.Accuracy() * 100
				fa += float64(o.FalseAlarms)
			}
			s := SweepSample{
				Point:    pt.Name,
				Step:     step,
				Accuracy: acc / float64(len(data.Cases)),
				FA:       fa / float64(len(data.Cases)),
			}
			out = append(out, s)
			if progress != nil {
				progress(s)
			}
		}
		tr.Run(samples, func(step int, _ hsd.StepStats) {
			if (step+1)%evalEvery == 0 {
				measure(step + 1)
			}
		})
		if cfg.TrainSteps%evalEvery != 0 {
			measure(cfg.TrainSteps)
		}
	}
	return out, nil
}

// SweepCSV renders sweep samples as CSV.
func SweepCSV(samples []SweepSample) string {
	var b strings.Builder
	b.WriteString("point,step,accuracy_pct,false_alarms\n")
	for _, s := range samples {
		fmt.Fprintf(&b, "%s,%d,%.2f,%.1f\n", s.Point, s.Step, s.Accuracy, s.FA)
	}
	return b.String()
}

// BestByAccuracy returns, per point, the sample with the highest accuracy
// (ties broken by lower FA).
func BestByAccuracy(samples []SweepSample) map[string]SweepSample {
	best := map[string]SweepSample{}
	for _, s := range samples {
		b, ok := best[s.Point]
		if !ok || s.Accuracy > b.Accuracy || (s.Accuracy == b.Accuracy && s.FA < b.FA) {
			best[s.Point] = s
		}
	}
	return best
}
