package cpu

import (
	"runtime"
	"testing"
)

// TestFeatureImplications checks internal consistency of the detected
// flags: the wider sets imply the narrower ones on any real machine
// (and on amd64, SSE2 is an architectural baseline).
func TestFeatureImplications(t *testing.T) {
	f := X86
	if runtime.GOARCH == "amd64" && !f.SSE2 {
		t.Fatalf("amd64 host without SSE2: %+v", f)
	}
	if f.AVX2 && !f.AVX {
		t.Errorf("AVX2 without AVX: %+v", f)
	}
	if f.AVX512F && !f.AVX2 {
		// Every shipped AVX-512 part implements AVX2; a violation here
		// means the XCR0/CPUID plumbing disagrees with itself.
		t.Errorf("AVX512F without AVX2: %+v", f)
	}
	if f.HasAVX512() && !f.HasAVX2FMA() {
		t.Errorf("HasAVX512 but not HasAVX2FMA: %+v", f)
	}
	if f.AVX512VNNI && !f.AVX512F {
		// VNNI is an extension of the AVX-512 foundation; both flags sit
		// behind the same ZMM OS-state gate, so they must agree.
		t.Errorf("AVX512VNNI without AVX512F: %+v", f)
	}
	if f.AVXVNNI && !f.AVX {
		t.Errorf("AVXVNNI without AVX: %+v", f)
	}
	if f.HasAVX512VNNI() != (f.AVX512VNNI && f.AVX512F) {
		t.Errorf("HasAVX512VNNI inconsistent with flags: %+v", f)
	}
	t.Logf("detected: %v", f.FeatureList())
}

// TestFeatureListStable pins the tag set: sorted, no duplicates, and
// consistent with the boolean flags.
func TestFeatureListStable(t *testing.T) {
	tags := X86.FeatureList()
	seen := map[string]bool{}
	for i, tag := range tags {
		if seen[tag] {
			t.Fatalf("duplicate tag %q in %v", tag, tags)
		}
		seen[tag] = true
		if i > 0 && tags[i-1] > tag {
			t.Fatalf("tags not sorted: %v", tags)
		}
	}
	if seen["avx2"] != X86.AVX2 || seen["fma"] != X86.FMA || seen["avx512f"] != X86.AVX512F {
		t.Fatalf("tag set %v inconsistent with flags %+v", tags, X86)
	}
	if seen["avx512vnni"] != X86.AVX512VNNI || seen["avxvnni"] != X86.AVXVNNI {
		t.Fatalf("VNNI tags in %v inconsistent with flags %+v", tags, X86)
	}
}

// TestGoamd64Floor checks the build-level floor raises flags
// monotonically and never lowers one already set.
func TestGoamd64Floor(t *testing.T) {
	var f X86Features
	f.AVX512F = true
	goamd64Floor(&f)
	if !f.AVX512F {
		t.Fatal("goamd64Floor cleared a detected flag")
	}
}
