//go:build !amd64

package cpu

// Non-x86 architectures report no x86 features; kernel dispatch falls
// back to the portable implementations. (GOAMD64 floors are meaningless
// here, so init is a no-op.)
func init() {}
