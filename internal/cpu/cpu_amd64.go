package cpu

// cpuid executes the CPUID instruction for (leaf, subleaf); implemented
// in cpu_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register XCR0, which records the
// register state the OS saves/restores across context switches. A CPU
// feature is unusable unless the matching XCR0 bits are set; executing
// e.g. a VFMADD on a kernel that does not save YMM state corrupts other
// processes' registers. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

const (
	// CPUID.1:ECX
	cpuidSSE41   = 1 << 19
	cpuidFMA     = 1 << 12
	cpuidOSXSAVE = 1 << 27
	cpuidAVX     = 1 << 28
	// CPUID.1:EDX
	cpuidSSE2 = 1 << 26
	// CPUID.7.0:EBX
	cpuidAVX2    = 1 << 5
	cpuidAVX512F = 1 << 16
	// CPUID.7.0:ECX
	cpuidAVX512VNNI = 1 << 11
	// CPUID.7.1:EAX
	cpuidAVXVNNI = 1 << 4
	// XCR0 state bits
	xcr0SSE    = 1 << 1
	xcr0AVX    = 1 << 2
	xcr0Opmask = 1 << 5
	xcr0ZMMHi  = 1 << 6
	xcr0Hi16   = 1 << 7
)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		goamd64Floor(&X86)
		return
	}
	_, _, ecx1, edx1 := cpuid(1, 0)
	X86.SSE2 = edx1&cpuidSSE2 != 0
	X86.SSE41 = ecx1&cpuidSSE41 != 0

	// AVX-family features need OSXSAVE plus the OS actually enabling
	// the wider register state in XCR0.
	osAVX, osAVX512 := false, false
	if ecx1&cpuidOSXSAVE != 0 {
		xeax, _ := xgetbv()
		const avxState = xcr0SSE | xcr0AVX
		const avx512State = avxState | xcr0Opmask | xcr0ZMMHi | xcr0Hi16
		osAVX = xeax&avxState == avxState
		osAVX512 = xeax&avx512State == avx512State
	}
	X86.AVX = osAVX && ecx1&cpuidAVX != 0
	X86.FMA = osAVX && ecx1&cpuidFMA != 0
	if maxLeaf >= 7 {
		// EAX of leaf 7 subleaf 0 reports the highest supported subleaf.
		maxSub, ebx7, ecx7, _ := cpuid(7, 0)
		X86.AVX2 = osAVX && ebx7&cpuidAVX2 != 0
		X86.AVX512F = osAVX512 && ebx7&cpuidAVX512F != 0
		X86.AVX512VNNI = osAVX512 && ecx7&cpuidAVX512VNNI != 0
		if maxSub >= 1 {
			eax71, _, _, _ := cpuid(7, 1)
			X86.AVXVNNI = osAVX && eax71&cpuidAVXVNNI != 0
		}
	}
	goamd64Floor(&X86)
}
