// Package cpu detects x86 SIMD capability at startup so compute kernels
// can pick the widest instruction set the machine (and operating system)
// actually supports. It is the decision substrate for the GEMM
// micro-kernel dispatch in internal/tensor: feature flags come from
// CPUID + XGETBV on amd64 and are all-false elsewhere, so portable
// fallbacks are selected automatically.
//
// Detection happens once at package init and the result is immutable;
// reading X86 from any goroutine is race-free.
package cpu

import (
	"runtime/debug"
	"sort"
)

// X86Features reports the instruction-set extensions relevant to the
// float32 compute kernels. Each flag is true only when both the CPU
// advertises the feature and the OS has enabled the matching register
// state (XCR0), so a true flag means the instructions are safe to
// execute.
type X86Features struct {
	SSE2    bool // baseline on amd64 (always true there)
	SSE41   bool
	AVX     bool // CPU AVX + OSXSAVE + XCR0 XMM/YMM state
	FMA     bool // VFMADD* (implies AVX usable)
	AVX2    bool
	AVX512F bool // foundation; CPU flag + XCR0 opmask/ZMM state
	// AVX512VNNI is the 512-bit VPDPBUSD dot-product extension the int8
	// GEMM kernels use; gated on the same ZMM OS state as AVX512F.
	AVX512VNNI bool
	// AVXVNNI is the 256-bit VEX encoding of the VNNI dot products
	// (CPUID.7.1:EAX), gated on YMM OS state only. Probed for hostmeta
	// completeness; the current int8 AVX2 kernel uses VPMADDUBSW, which
	// predates it.
	AVXVNNI bool
}

// X86 holds the detected features of the running machine. On non-amd64
// architectures every flag is false.
var X86 X86Features

// HasAVX2FMA reports whether the 256-bit FMA micro-kernels are safe.
func (f X86Features) HasAVX2FMA() bool { return f.AVX2 && f.FMA }

// HasAVX512 reports whether the 512-bit FMA micro-kernels are safe.
// AVX-512 implies FMA capability but we require the flag anyway: the
// kernels mix VFMADD231PS forms and a machine advertising AVX512F
// without FMA would be a CPUID lie worth failing safe on.
func (f X86Features) HasAVX512() bool { return f.AVX512F && f.FMA }

// HasAVX512VNNI reports whether the 512-bit VPDPBUSD int8 dot-product
// kernel is safe. AVX512F is required alongside the VNNI bit: the kernel
// uses EVEX moves and zeroing that belong to the foundation set.
func (f X86Features) HasAVX512VNNI() bool { return f.AVX512VNNI && f.AVX512F }

// FeatureList renders the detected features as sorted lowercase tags
// (e.g. ["avx2" "fma" "sse2"]), the format embedded in benchmark
// reports so perf numbers stay interpretable across hosts.
func (f X86Features) FeatureList() []string {
	var tags []string
	add := func(on bool, tag string) {
		if on {
			tags = append(tags, tag)
		}
	}
	add(f.SSE2, "sse2")
	add(f.SSE41, "sse4.1")
	add(f.AVX, "avx")
	add(f.FMA, "fma")
	add(f.AVX2, "avx2")
	add(f.AVX512F, "avx512f")
	add(f.AVX512VNNI, "avx512vnni")
	add(f.AVXVNNI, "avxvnni")
	sort.Strings(tags)
	return tags
}

// goamd64Floor applies the compile-time GOAMD64 microarchitecture level
// as a floor under the runtime-detected flags: a binary compiled with
// GOAMD64=v3 already executes AVX2+FMA instructions unconditionally
// wherever the compiler chose to, so the dispatch layer must never
// select narrower than the build guarantees. CPUID normally agrees with
// the build level; this guards the degenerate case of a hypervisor
// masking CPUID bits while still executing the instructions.
func goamd64Floor(f *X86Features) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	level := ""
	for _, s := range info.Settings {
		if s.Key == "GOAMD64" {
			level = s.Value
		}
	}
	switch level {
	case "v4":
		f.AVX512F = true
		fallthrough
	case "v3":
		f.AVX = true
		f.AVX2 = true
		f.FMA = true
		fallthrough
	case "v2":
		f.SSE41 = true
		f.SSE2 = true
	}
}
