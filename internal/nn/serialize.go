package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpoint I/O: parameters are stored as a simple binary stream —
// magic, count, then per parameter: name, shape, raw float32 data. The
// format is self-describing enough to verify shape compatibility on load.

const checkpointMagic = "RHSDCKPT1"

// SaveParams writes all parameters to w.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads parameters from r into params, matching by position and
// validating name and shape.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		name, err := readString(br)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: checkpoint param %q does not match model param %q", name, p.Name)
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return err
		}
		shape := make([]int, rank)
		vol := 1
		for i := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			shape[i] = int(d)
			vol *= int(d)
		}
		if vol != p.W.Size() {
			return fmt.Errorf("nn: checkpoint param %q shape %v incompatible with model shape %v",
				name, shape, p.W.Shape())
		}
		buf := p.W.Data()
		for i := range buf {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			buf[i] = math.Float32frombits(bits)
		}
	}
	return nil
}

// SaveParamsFile writes params to path, creating or truncating it.
func SaveParamsFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveParams(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadParamsFile reads params from path.
func LoadParamsFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("nn: unreasonable string length %d in checkpoint", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
