package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpoint I/O: parameters are stored as a simple binary stream —
// magic, count, then per parameter: name, shape, raw float32 data. The
// format is self-describing enough to verify shape compatibility on load.

const checkpointMagic = "RHSDCKPT1"

// Bounds on untrusted header fields. A corrupt or adversarial checkpoint
// must never drive an allocation or a read loop with attacker-chosen
// sizes: every header value is validated against these limits — and
// against the model's own parameter shapes — before any memory
// proportional to it is touched. The limits are far above anything a real
// model writes (max rank in the repo is 4, the largest parameter is ~1M
// elements) but small enough that even the worst accepted header costs
// only kilobytes before the shape cross-check rejects it.
const (
	maxCheckpointRank   = 16      // dimensions per parameter shape
	maxCheckpointVolume = 1 << 28 // elements per parameter (1 GiB of float32)
	maxCheckpointString = 1 << 20 // bytes per parameter name
)

// SaveParams writes all parameters to w.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads parameters from r into params, matching by position and
// validating name and shape. The stream is untrusted: every header field
// is bounded and cross-checked against the model before anything is
// allocated or read in proportion to it, so a corrupt, truncated or
// adversarial checkpoint yields a descriptive error rather than a panic
// or a multi-gigabyte allocation. On error some parameters may already
// have been overwritten; callers that need transactional semantics load
// into a throwaway model first.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading checkpoint param count: %w", err)
	}
	if uint64(count) != uint64(len(params)) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(params))
	}
	for pi, p := range params {
		name, err := readString(br)
		if err != nil {
			return fmt.Errorf("nn: reading name of checkpoint param %d: %w", pi, err)
		}
		if name != p.Name {
			return fmt.Errorf("nn: checkpoint param %q does not match model param %q", name, p.Name)
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return fmt.Errorf("nn: reading rank of checkpoint param %q: %w", name, err)
		}
		if rank > maxCheckpointRank {
			return fmt.Errorf("nn: checkpoint param %q rank %d exceeds limit %d", name, rank, maxCheckpointRank)
		}
		shape := make([]int, rank)
		vol := int64(1)
		for i := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return fmt.Errorf("nn: reading shape of checkpoint param %q: %w", name, err)
			}
			if d == 0 || d > maxCheckpointVolume {
				return fmt.Errorf("nn: checkpoint param %q dimension %d out of range [1, %d]", name, d, maxCheckpointVolume)
			}
			shape[i] = int(d)
			// int64 accumulation with a per-step cap: the product can never
			// overflow, since each factor is ≤ 2²⁸ and the running product is
			// rejected the moment it crosses the cap.
			if vol *= int64(d); vol > maxCheckpointVolume {
				return fmt.Errorf("nn: checkpoint param %q volume exceeds limit %d elements", name, maxCheckpointVolume)
			}
		}
		want := p.W.Shape()
		if len(shape) != len(want) {
			return fmt.Errorf("nn: checkpoint param %q shape %v incompatible with model shape %v",
				name, shape, want)
		}
		for i, d := range shape {
			if d != want[i] {
				return fmt.Errorf("nn: checkpoint param %q shape %v incompatible with model shape %v",
					name, shape, want)
			}
		}
		// The volume now equals the model's own parameter size, so this read
		// is bounded by memory the model already owns.
		buf := p.W.Data()
		raw := make([]byte, 4*len(buf))
		if _, err := io.ReadFull(br, raw); err != nil {
			return fmt.Errorf("nn: reading %d values of checkpoint param %q: %w", len(buf), name, err)
		}
		for i := range buf {
			buf[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("nn: trailing data after last checkpoint param")
	}
	return nil
}

// SaveParamsFile writes params to path, creating or truncating it.
func SaveParamsFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveParams(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadParamsFile reads params from path.
func LoadParamsFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxCheckpointString {
		return "", fmt.Errorf("nn: unreasonable string length %d in checkpoint", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
