package nn

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/tensor"
)

func TestLeakyReLUSlope(t *testing.T) {
	l := NewLeakyReLU(0.1)
	x := tensor.FromSlice([]float32{-10, 0, 10}, 1, 3)
	y := l.Forward(x)
	want := []float32{-1, 0, 10}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("leaky fwd: %v", y.Data())
		}
	}
	g := tensor.FromSlice([]float32{1, 1, 1}, 1, 3)
	dx := l.Backward(g)
	// Negative side gets slope; zero input is "not > 0" so also slope.
	if dx.Data()[0] != 0.1 || dx.Data()[2] != 1 {
		t.Fatalf("leaky bwd: %v", dx.Data())
	}
}

func TestLeakyReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewLeakyReLU(0.05)
	x := tensor.New(2, 6)
	x.RandN(rng, 1)
	gradCheck(t, "leaky", l, x)
}

func TestDenseRejectsWrongWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	l := NewDense("d", 4, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input width")
		}
	}()
	l.Forward(tensor.New(1, 5))
}

func TestConcatBranchesSingleBranchIsIdentityComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	conv := NewConv2D("c", 2, 3, 1, 1, 0, rng)
	cb := NewConcatBranches(conv)
	x := tensor.New(1, 2, 4, 4)
	x.RandN(rng, 1)
	y1 := cb.Forward(x)
	y2 := tensor.Conv2D(x, conv.Weight.W, conv.Bias.W, conv.Opts)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("single-branch concat must equal the branch itself")
		}
	}
}

func TestGradAccumulationAcrossBackwardCalls(t *testing.T) {
	// Two backward passes without ZeroGrads must sum gradients — the
	// contract the multi-head training loop relies on.
	rng := rand.New(rand.NewSource(24))
	l := NewDense("d", 3, 2, rng)
	x := tensor.New(1, 3)
	x.RandN(rng, 1)
	g := tensor.New(1, 2)
	g.Fill(1)
	l.Forward(x)
	l.Backward(g)
	once := l.Weight.Grad.Clone()
	l.Forward(x)
	l.Backward(g)
	for i := range once.Data() {
		if math.Abs(float64(l.Weight.Grad.Data()[i]-2*once.Data()[i])) > 1e-5 {
			t.Fatal("gradients must accumulate across Backward calls")
		}
	}
}

func TestSGDLRDecayDisabled(t *testing.T) {
	opt := NewSGD(0.5, 0, 0, 0.1)
	p := newParam("p", 1)
	for i := 0; i < 10; i++ {
		p.Grad.Fill(1)
		opt.Update([]*Param{p})
	}
	if opt.LR != 0.5 {
		t.Fatalf("LR must not decay when DecayEvery=0: %v", opt.LR)
	}
}

func TestSmoothL1NormDividesLoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{2}, 1, 1)
	target := tensor.New(1, 1)
	l1, _ := SmoothL1(pred, target, []float32{1}, 1)
	l2, _ := SmoothL1(pred, target, []float32{1}, 4)
	if math.Abs(l1-4*l2) > 1e-9 {
		t.Fatalf("norm scaling wrong: %v vs %v", l1, l2)
	}
}

func TestSoftmaxCrossEntropyAllIgnored(t *testing.T) {
	x := tensor.New(2, 3)
	loss, grad := SoftmaxCrossEntropy(x, []int{-1, -1})
	if loss != 0 || grad.MaxAbs() != 0 {
		t.Fatal("all-ignored batch must be a no-op")
	}
}

func TestL2PenaltyZeroBeta(t *testing.T) {
	p := newParam("w", 3)
	p.W.Fill(5)
	if L2Penalty([]*Param{p}, 0) != 0 {
		t.Fatal("beta=0 must be free")
	}
	if p.Grad.MaxAbs() != 0 {
		t.Fatal("beta=0 must not touch gradients")
	}
}

func TestDeconvThenConvComposition(t *testing.T) {
	// Sanity: a stride-1 deconv after a stride-1 conv preserves spatial
	// dims (the paper's encoder-decoder contract).
	rng := rand.New(rand.NewSource(25))
	net := NewSequential(
		NewConv2D("e", 1, 3, 3, 1, 1, rng),
		NewDeconv2D("d", 3, 1, 3, 1, 1, rng),
	)
	x := tensor.New(1, 1, 14, 14)
	y := net.Forward(x)
	if y.Dim(2) != 14 || y.Dim(3) != 14 || y.Dim(1) != 1 {
		t.Fatalf("encoder-decoder shape drift: %v", y.Shape())
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	l := NewDropout(0.5, rng)
	l.SetTraining(false)
	x := tensor.New(4, 4)
	x.RandN(rng, 1)
	y := l.Forward(x)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("inference dropout must be identity")
		}
	}
}

func TestDropoutTrainingDropsAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := NewDropout(0.5, rng)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := l.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros < 4500 || zeros > 5500 {
		t.Fatalf("drop rate off: %d/10000", zeros)
	}
	// Expectation preserved: mean(y) ≈ mean(x) = 1.
	if m := y.Sum() / 10000; m < 0.9 || m > 1.1 {
		t.Fatalf("inverted scaling broken: mean %v", m)
	}
	// Backward routes gradients only through survivors, same scaling.
	g := tensor.New(1, 10000)
	g.Fill(1)
	dx := l.Backward(g)
	for i, v := range y.Data() {
		want := float32(0)
		if v != 0 {
			want = 2
		}
		if dx.Data()[i] != want {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestDropoutRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}
