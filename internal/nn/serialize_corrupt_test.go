package nn

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"rhsd/internal/tensor"
)

// ckptParams builds a small fixed parameter set whose values cover the
// float32 corners a checkpoint must round-trip bit-exactly: NaN with a
// payload, ±Inf, negative zero, and a denormal.
func ckptParams() []*Param {
	w := &Param{Name: "conv.w", W: tensor.New(2, 3), Grad: tensor.New(2, 3)}
	b := &Param{Name: "conv.b", W: tensor.New(4), Grad: tensor.New(4)}
	vals := []float32{
		1.5, -2.25,
		math.Float32frombits(0x7fc00abc),        // NaN, nonzero payload
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.Float32frombits(0x80000000),        // -0
	}
	copy(w.W.Data(), vals)
	copy(b.W.Data(), []float32{0, math.Float32frombits(1), 3, -4}) // denormal
	return []*Param{w, b}
}

// freshLike returns zero-valued params with the same names/shapes.
func freshLike(src []*Param) []*Param {
	out := make([]*Param, len(src))
	for i, p := range src {
		out[i] = &Param{
			Name: p.Name,
			W:    tensor.New(p.W.Shape()...),
			Grad: tensor.New(p.W.Shape()...),
		}
	}
	return out
}

func validCheckpoint(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveParams(&buf, ckptParams()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTripBitExact(t *testing.T) {
	src := ckptParams()
	dst := freshLike(src)
	if err := LoadParams(bytes.NewReader(validCheckpoint(t)), dst); err != nil {
		t.Fatal(err)
	}
	for i, p := range src {
		for j, v := range p.W.Data() {
			got := dst[i].W.Data()[j]
			if math.Float32bits(v) != math.Float32bits(got) {
				t.Fatalf("param %q value %d: %x round-tripped to %x",
					p.Name, j, math.Float32bits(v), math.Float32bits(got))
			}
		}
	}
}

// TestCheckpointTruncation loads every proper prefix of a valid
// checkpoint — truncation at every field boundary and mid-field — and
// requires a non-nil error (and, implicitly, no panic) for each.
func TestCheckpointTruncation(t *testing.T) {
	valid := validCheckpoint(t)
	for n := 0; n < len(valid); n++ {
		if err := LoadParams(bytes.NewReader(valid[:n]), freshLike(ckptParams())); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded without error", n, len(valid))
		}
	}
}

// put32 overwrites a little-endian uint32 at off.
func put32(b []byte, off int, v uint32) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

func TestCheckpointCorruption(t *testing.T) {
	valid := validCheckpoint(t)
	// Offsets in the stream written by SaveParams for ckptParams:
	// magic(9) count(4) | namelen(4) "conv.w"(6) rank(4) dims(2×4) data…
	const (
		countOff   = 9
		nameLenOff = countOff + 4
		rankOff    = nameLenOff + 4 + len("conv.w")
		dim0Off    = rankOff + 4
		dim1Off    = dim0Off + 4
	)
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"bad magic", append([]byte{'X'}, valid[1:]...), "magic"},
		{"huge param count", put32(valid, countOff, 1<<31), "params"},
		{"huge name length", put32(valid, nameLenOff, 0xffffffff), "string length"},
		{"huge rank", put32(valid, rankOff, 0xffffffff), "rank"},
		{"zero dim", put32(valid, dim0Off, 0), "out of range"},
		{"huge dim", put32(valid, dim0Off, 0xffffffff), "out of range"},
		{"volume overflow", put32(put32(valid, dim0Off, 1<<20), dim1Off, 1<<20), "volume"},
		{"shape mismatch", put32(put32(valid, dim0Off, 3), dim1Off, 2), "incompatible"},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xde, 0xad), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LoadParams(bytes.NewReader(tc.data), freshLike(ckptParams()))
			if err == nil {
				t.Fatalf("corrupt checkpoint loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckpointNameMismatch(t *testing.T) {
	params := ckptParams()
	params[0].Name = "renamed.w"
	err := LoadParams(bytes.NewReader(validCheckpoint(t)), params)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("name mismatch error = %v", err)
	}
}
