package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rhsd/internal/tensor"
)

// Quantizer owns the int8 inference state of a set of module trees: a
// per-Conv2D calibrated input activation range and, once frozen, a
// per-Conv2D *tensor.QConvPlan (per-output-channel quantized weights
// pre-packed for every usable int8 kernel, plus the dequantization
// epilogue constants).
//
// Lifecycle: Observe one or more calibration inputs through each tree
// (a float32 walk that records every conv's input range), Freeze once,
// then Infer runs the same walk with each calibrated conv replaced by
// tensor.QConv2DInfer. Only Conv2D layers quantize; Deconv2D, pooling,
// activation and concatenation run float32 between quantized convs, so
// every conv consumes float32 inputs and re-quantizes against its own
// calibrated per-tensor range.
//
// Like the layers it walks, a Quantizer serves one inference goroutine
// at a time; scan replicas get their own view via Mirror. The walk
// mirrors Sequential.Infer exactly — including the Conv/Deconv+ReLU
// fusion lookahead — so a Quantizer with no frozen plans reproduces the
// float32 inference path bit for bit.
type Quantizer struct {
	order  []*Conv2D // deterministic walk order, for Freeze and signatures
	ranges map[*Conv2D]*tensor.QuantRange
	plans  map[*Conv2D]*tensor.QConvPlan
	// outs is the quantized walk's equivalent of ConcatBranches'
	// cached inferOuts scratch: allocated on first visit, reused after,
	// holding only workspace tensors — keeps the int8 path inside the
	// steady-state allocation budget.
	outs   map[*ConcatBranches][]*tensor.Tensor
	frozen bool
}

// NewQuantizer returns an empty, uncalibrated Quantizer.
func NewQuantizer() *Quantizer {
	return &Quantizer{
		ranges: make(map[*Conv2D]*tensor.QuantRange),
		plans:  make(map[*Conv2D]*tensor.QConvPlan),
		outs:   make(map[*ConcatBranches][]*tensor.Tensor),
	}
}

// Observe runs the float32 inference walk over l, folding each Conv2D's
// input tensor into that conv's calibration range, and returns the
// layer output (bit-identical to l's own Infer) so trees can be chained
// stage by stage. Call once per calibration sample per tree.
func (q *Quantizer) Observe(l Layer, x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	if q.frozen {
		panic("nn: Quantizer.Observe after Freeze")
	}
	return q.walk(l, x, ws, false)
}

// Freeze quantizes the weights of every observed conv per output
// channel, builds its dequantization plan from the calibrated input
// range, and arms Infer. Convs whose range never saw a finite value are
// left unquantized (they fall back to float32 in Infer).
func (q *Quantizer) Freeze() {
	for _, conv := range q.order {
		r := q.ranges[conv]
		if r == nil || !r.Observed() {
			continue
		}
		k := conv.Opts.Kernel
		kk := conv.In * k * k
		qw := tensor.NewQConvWeights(conv.Weight.W.Data(), conv.Out, kk)
		q.plans[conv] = qw.Plan(r.Params())
	}
	q.frozen = true
}

// Calibrated reports whether Freeze has run and produced at least one
// quantized conv.
func (q *Quantizer) Calibrated() bool { return q.frozen && len(q.plans) > 0 }

// NumQuantized returns the number of convs with a frozen int8 plan.
func (q *Quantizer) NumQuantized() int { return len(q.plans) }

// Infer runs the int8 inference walk over l: calibrated convs execute
// tensor.QConv2DInfer (with the same fused bias+activation epilogue the
// float32 path would use), everything else runs its float32 Infer.
func (q *Quantizer) Infer(l Layer, x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	return q.walk(l, x, ws, true)
}

// WriteSignature writes a deterministic encoding of the calibration
// state — each quantized conv's name and input quantization parameters,
// in walk order — to w. Weight scales are omitted on purpose: they
// derive from the weights, which a weights digest already covers; the
// input ranges derive from the calibration data and are exactly what
// distinguishes two int8 models with equal weights.
func (q *Quantizer) WriteSignature(w io.Writer) {
	var buf [8]byte
	for _, conv := range q.order {
		p := q.plans[conv]
		if p == nil {
			continue
		}
		io.WriteString(w, conv.Weight.Name)
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(p.In.Scale))
		binary.LittleEndian.PutUint32(buf[4:], uint32(p.In.Zero))
		w.Write(buf[:])
	}
}

// Mirror maps q's frozen state onto dst, a structurally identical
// replica of the trees q was calibrated on (src and dst are the
// corresponding lists of roots, e.g. a model's stages). Plans are
// immutable at inference time and weight-derived — a replica whose
// weights were copied from the source model shares them by reference —
// so mirroring costs one tree walk, with no recalibration or repacking.
func (q *Quantizer) Mirror(src, dst []Layer) (*Quantizer, error) {
	if !q.frozen {
		return nil, fmt.Errorf("nn: Mirror of an unfrozen Quantizer")
	}
	var srcConvs, dstConvs []*Conv2D
	for _, l := range src {
		collectConvs(l, &srcConvs)
	}
	for _, l := range dst {
		collectConvs(l, &dstConvs)
	}
	if len(srcConvs) != len(dstConvs) {
		return nil, fmt.Errorf("nn: Mirror conv count mismatch %d vs %d", len(srcConvs), len(dstConvs))
	}
	r := NewQuantizer()
	r.frozen = true
	for i, sc := range srcConvs {
		dc := dstConvs[i]
		if sc.In != dc.In || sc.Out != dc.Out || sc.Opts != dc.Opts {
			return nil, fmt.Errorf("nn: Mirror conv %d geometry mismatch (%q vs %q)",
				i, sc.Weight.Name, dc.Weight.Name)
		}
		if p := q.plans[sc]; p != nil {
			r.order = append(r.order, dc)
			r.plans[dc] = p
		}
	}
	return r, nil
}

// collectConvs appends every Conv2D reachable from l in walk order.
func collectConvs(l Layer, dst *[]*Conv2D) {
	switch t := l.(type) {
	case *Conv2D:
		*dst = append(*dst, t)
	case *Sequential:
		for _, inner := range t.Layers {
			collectConvs(inner, dst)
		}
	case *ConcatBranches:
		for _, b := range t.Branches {
			collectConvs(b, dst)
		}
	}
}

// walk dispatches one layer through the quantization-aware inference
// traversal. quant=false is the calibration pass (float32 compute,
// range taps before each conv); quant=true is the int8 pass.
func (q *Quantizer) walk(l Layer, x *tensor.Tensor, ws *tensor.Workspace, quant bool) *tensor.Tensor {
	switch t := l.(type) {
	case *Sequential:
		return q.walkSeq(t, x, ws, quant)
	case *ConcatBranches:
		return q.walkConcat(t, x, ws, quant)
	case *Conv2D:
		return q.conv(t, x, ws, quant, tensor.Epilogue{Bias: t.Bias.W})
	default:
		return inferLayer(l, x, ws)
	}
}

// walkSeq mirrors Sequential.Infer, including its Conv2D/Deconv2D+ReLU
// fusion lookahead, with conv execution routed through q.conv and
// nested containers routed back through q.walk.
func (q *Quantizer) walkSeq(s *Sequential, x *tensor.Tensor, ws *tensor.Workspace, quant bool) *tensor.Tensor {
	for i := 0; i < len(s.Layers); i++ {
		switch l := s.Layers[i].(type) {
		case *Conv2D:
			ep := tensor.Epilogue{Bias: l.Bias.W}
			if i+1 < len(s.Layers) {
				if r, ok := s.Layers[i+1].(*ReLU); ok {
					ep.Act, ep.Slope = true, r.Slope
					i++
				}
			}
			x = q.conv(l, x, ws, quant, ep)
		case *Deconv2D:
			// Deconvolutions stay float32: the decoder half of the
			// encoder-decoder is three layers on small channel counts,
			// not worth a transposed int8 packing path.
			if i+1 < len(s.Layers) {
				if r, ok := s.Layers[i+1].(*ReLU); ok {
					x = l.inferFused(x, ws, r.Slope)
					i++
					continue
				}
			}
			x = l.Infer(x, ws)
		case *Sequential:
			x = q.walkSeq(l, x, ws, quant)
		case *ConcatBranches:
			x = q.walkConcat(l, x, ws, quant)
		default:
			x = inferLayer(s.Layers[i], x, ws)
		}
	}
	return x
}

// walkConcat mirrors ConcatBranches.Infer with branches routed through
// q.walk. Branch scratch lives on the Quantizer (not the layer) so a
// quantized walk never races the layer's own inferOuts cache.
func (q *Quantizer) walkConcat(l *ConcatBranches, x *tensor.Tensor, ws *tensor.Workspace, quant bool) *tensor.Tensor {
	outs := q.outs[l]
	if cap(outs) < len(l.Branches) {
		outs = make([]*tensor.Tensor, len(l.Branches))
		q.outs[l] = outs
	}
	outs = outs[:len(l.Branches)]
	for i, b := range l.Branches {
		outs[i] = q.walk(b, x, ws, quant)
	}
	return tensor.ConcatChannelsInfer(ws, outs...)
}

// conv executes one convolution under the traversal: on the calibration
// pass it taps the input range then runs float32; on the int8 pass it
// runs the quantized conv when a plan exists, float32 otherwise.
func (q *Quantizer) conv(l *Conv2D, x *tensor.Tensor, ws *tensor.Workspace, quant bool, ep tensor.Epilogue) *tensor.Tensor {
	if quant {
		if plan := q.plans[l]; plan != nil {
			return tensor.QConv2DInfer(ws, x, plan, l.Opts, ep)
		}
		return tensor.Conv2DInfer(ws, x, l.Weight.W, l.Opts, ep)
	}
	q.rangeFor(l).ObserveSlice(x.Data())
	return tensor.Conv2DInfer(ws, x, l.Weight.W, l.Opts, ep)
}

// rangeFor returns the calibration range of conv l, registering it in
// walk order on first sight.
func (q *Quantizer) rangeFor(l *Conv2D) *tensor.QuantRange {
	r := q.ranges[l]
	if r == nil {
		r = new(tensor.QuantRange)
		q.ranges[l] = r
		q.order = append(q.order, l)
	}
	return r
}
