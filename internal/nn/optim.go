package nn

import (
	"math"

	"rhsd/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and step-wise
// learning-rate decay, matching the paper's training schedule: initial
// learning rate 0.002, decayed ×0.1 every DecayEvery steps (§4: "decay ten
// times for each 30000 steps").
type SGD struct {
	LR         float64 // current learning rate
	Momentum   float64 // momentum coefficient (0 disables)
	DecayEvery int     // decay period in steps (0 disables decay)
	DecayRate  float64 // multiplicative factor applied each period

	step     int
	velocity map[*Param]*tensor.Tensor
}

// NewSGD creates an optimizer with the paper's default schedule shape.
func NewSGD(lr, momentum float64, decayEvery int, decayRate float64) *SGD {
	return &SGD{
		LR:         lr,
		Momentum:   momentum,
		DecayEvery: decayEvery,
		DecayRate:  decayRate,
		velocity:   make(map[*Param]*tensor.Tensor),
	}
}

// Step returns the number of completed updates.
func (s *SGD) Step() int { return s.step }

// ClipGradients rescales all gradients so their global L2 norm does not
// exceed maxNorm. It is a training-stability aid for the multi-task loss;
// pass maxNorm <= 0 to disable. Returns the pre-clip norm.
func (s *SGD) ClipGradients(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		sq += p.Grad.SumSquares()
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// Update applies one optimizer step to params and zeroes their gradients.
func (s *SGD) Update(params []*Param) {
	s.step++
	if s.DecayEvery > 0 && s.step%s.DecayEvery == 0 {
		s.LR *= s.DecayRate
	}
	for _, p := range params {
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape()...)
				s.velocity[p] = v
			}
			v.Scale(float32(s.Momentum))
			v.AXPY(float32(-s.LR), p.Grad)
			p.W.Add(v)
		} else {
			p.W.AXPY(float32(-s.LR), p.Grad)
		}
		p.Grad.Zero()
	}
}

// ZeroGrads clears all parameter gradients without updating weights.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}
