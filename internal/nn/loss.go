package nn

import (
	"math"

	"rhsd/internal/tensor"
)

// Softmax computes row-wise softmax probabilities for logits [N, C],
// numerically stabilized by max subtraction.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := logits.Data()[i*c : (i+1)*c]
		dst := out.Data()[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss (Eq. 6 of the
// paper, averaged over samples) between logits [N, C] and integer labels,
// together with dL/dlogits. Entries with label < 0 are ignored (weight 0),
// which implements the paper's clip-pruning rule that "rest of clips do no
// contribution to the network training" (§3.2.1).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	probs := Softmax(logits)
	grad = tensor.New(n, c)
	active := 0
	for _, lab := range labels {
		if lab >= 0 {
			active++
		}
	}
	if active == 0 {
		return 0, grad
	}
	inv := 1.0 / float64(active)
	for i, lab := range labels {
		if lab < 0 {
			continue
		}
		p := float64(probs.At(i, lab))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p) * inv
		for j := 0; j < c; j++ {
			g := float64(probs.At(i, j)) * inv
			if j == lab {
				g -= inv
			}
			grad.Set(grad.At(i, j)+float32(g), i, j)
		}
	}
	return loss, grad
}

// SmoothL1 computes the robust L1 localization loss of Eq. 5:
//
//	l(d) = 0.5 d²      if |d| < 1
//	       |d| - 0.5   otherwise
//
// applied element-wise to pred-target over [N, 4] encoded coordinates, with
// per-row weights (0 disables a row, matching h'_i gating in Eq. 4).
// It returns the weighted sum normalized by norm and dL/dpred.
func SmoothL1(pred, target *tensor.Tensor, rowWeight []float32, norm float64) (loss float64, grad *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: SmoothL1 shape mismatch")
	}
	n := pred.Dim(0)
	c := pred.Size() / n
	if len(rowWeight) != n {
		panic("nn: SmoothL1 weight count mismatch")
	}
	if norm <= 0 {
		norm = 1
	}
	grad = tensor.New(pred.Shape()...)
	inv := 1.0 / norm
	for i := 0; i < n; i++ {
		w := float64(rowWeight[i])
		if w == 0 {
			continue
		}
		for j := 0; j < c; j++ {
			d := float64(pred.Data()[i*c+j] - target.Data()[i*c+j])
			var l, g float64
			if math.Abs(d) < 1 {
				l = 0.5 * d * d
				g = d
			} else {
				l = math.Abs(d) - 0.5
				if d > 0 {
					g = 1
				} else {
					g = -1
				}
			}
			loss += w * l * inv
			grad.Data()[i*c+j] = float32(w * g * inv)
		}
	}
	return loss, grad
}

// L2Penalty returns 0.5·β·Σ‖W‖² over all regularized parameters and adds
// β·W to each parameter's gradient — the regularization term of Eq. 4.
// Parameters flagged NoReg (biases) are skipped.
func L2Penalty(params []*Param, beta float64) float64 {
	if beta == 0 {
		return 0
	}
	var total float64
	for _, p := range params {
		if p.NoReg {
			continue
		}
		total += 0.5 * beta * p.W.SumSquares()
		p.Grad.AXPY(float32(beta), p.W)
	}
	return total
}
