package nn

import (
	"math/rand"

	"rhsd/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability P
// and scales survivors by 1/(1-P) (inverted dropout), so inference needs
// no rescaling. Call SetTraining(false) for evaluation; dropout layers
// default to training mode.
type Dropout struct {
	P float64

	training bool
	rng      *rand.Rand
	mask     []bool
}

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{P: p, training: true, rng: rng}
}

// SetTraining switches between training (drop) and inference (identity).
func (l *Dropout) SetTraining(train bool) { l.training = train }

func (l *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !l.training || l.P == 0 {
		return x
	}
	y := x.Clone()
	if cap(l.mask) < y.Size() {
		l.mask = make([]bool, y.Size())
	}
	l.mask = l.mask[:y.Size()]
	scale := float32(1 / (1 - l.P))
	for i := range y.Data() {
		if l.rng.Float64() < l.P {
			l.mask[i] = true
			y.Data()[i] = 0
		} else {
			l.mask[i] = false
			y.Data()[i] *= scale
		}
	}
	return y
}

func (l *Dropout) Backward(gy *tensor.Tensor) *tensor.Tensor {
	if !l.training || l.P == 0 {
		return gy
	}
	dx := gy.Clone()
	scale := float32(1 / (1 - l.P))
	for i := range dx.Data() {
		if l.mask[i] {
			dx.Data()[i] = 0
		} else {
			dx.Data()[i] *= scale
		}
	}
	return dx
}

func (l *Dropout) Params() []*Param { return nil }
