package nn

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/tensor"
)

// TestInferMatchesForwardAcrossKernels re-proves the Infer ≡ Forward
// contract under every GEMM micro-kernel available on this host, at a
// scale where the packed path (and hence the SIMD kernels) actually
// engages. Forward and Infer both route through the same active kernel,
// so each forced kernel must keep them bit-identical; across kernels of
// one rounding family the network output must itself be bit-stable.
func TestInferMatchesForwardAcrossKernels(t *testing.T) {
	origKernel := tensor.GemmKernel()
	defer tensor.SetGemmKernel(origKernel)

	rng := rand.New(rand.NewSource(17))
	net := NewSequential(
		NewConv2D("c1", 3, 16, 3, 1, 1, rng),
		NewLeakyReLU(0.05),
		NewConv2D("c2", 16, 32, 3, 1, 1, rng), // 32·784·144 ≈ 3.6M flops: packed path
		NewLeakyReLU(0.05),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense("fc", 32*14*14, 5, rng),
	)
	x := tensor.New(1, 3, 28, 28)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}

	perFamily := map[string][]float32{}
	owner := map[string]string{}
	tested := 0
	for _, name := range tensor.GemmKernels() {
		if !tensor.GemmKernelAvailable(name) {
			t.Logf("kernel %s unsupported on this CPU; skipping", name)
			continue
		}
		if _, err := tensor.SetGemmKernel(name); err != nil {
			t.Fatalf("SetGemmKernel(%q): %v", name, err)
		}
		tested++

		want := net.Forward(x)
		ws := tensor.NewWorkspace()
		got := net.Infer(x, ws)
		assertSameTensor(t, "infer under kernel "+name, want, got)

		fam := tensor.GemmKernelFamily(name)
		out := append([]float32(nil), got.Data()...)
		if prevOut, ok := perFamily[fam]; ok {
			for i := range out {
				if math.Float32bits(out[i]) != math.Float32bits(prevOut[i]) {
					t.Fatalf("family %q: kernels %s and %s disagree at output %d: %v vs %v",
						fam, name, owner[fam], i, out[i], prevOut[i])
				}
			}
		} else {
			perFamily[fam] = out
			owner[fam] = name
		}
	}
	if tested == 0 {
		t.Fatal("no GEMM kernels available")
	}
}
