package nn

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/tensor"
)

func TestAdamDefaults(t *testing.T) {
	a := NewAdam(0.001, 0, 0, 0)
	if a.Beta1 != 0.9 || a.Beta2 != 0.999 || a.Epsilon != 1e-8 {
		t.Fatalf("defaults: %+v", a)
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the very first update has magnitude ≈ LR
	// regardless of gradient scale.
	for _, scale := range []float32{0.01, 1, 100} {
		a := NewAdam(0.1, 0, 0, 0)
		p := newParam("p", 1)
		p.Grad.Fill(scale)
		a.Update([]*Param{p})
		if math.Abs(float64(p.W.Data()[0])+0.1) > 1e-3 {
			t.Fatalf("scale %v: first step %v want ≈ -0.1", scale, p.W.Data()[0])
		}
	}
}

func TestAdamZeroesGrads(t *testing.T) {
	a := NewAdam(0.01, 0, 0, 0)
	p := newParam("p", 4)
	p.Grad.Fill(1)
	a.Update([]*Param{p})
	if p.Grad.MaxAbs() != 0 {
		t.Fatal("Update must zero gradients")
	}
	if a.Step() != 1 {
		t.Fatalf("step count %d", a.Step())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = 0.5*(w-3)² from w=0.
	a := NewAdam(0.1, 0, 0, 0)
	p := newParam("w", 1)
	for i := 0; i < 300; i++ {
		p.Grad.Data()[0] = p.W.Data()[0] - 3
		a.Update([]*Param{p})
	}
	if math.Abs(float64(p.W.Data()[0])-3) > 0.05 {
		t.Fatalf("did not converge: %v", p.W.Data()[0])
	}
}

func TestAdamTrainsFasterThanSGDOnIllConditioned(t *testing.T) {
	// Adaptive scaling should handle a badly scaled quadratic better than
	// plain SGD at the same learning rate: f(w) = 0.5*(100 w0² + 0.01 w1²).
	run := func(update func(p *Param)) float64 {
		p := newParam("w", 2)
		p.W.Data()[0], p.W.Data()[1] = 1, 1
		for i := 0; i < 200; i++ {
			p.Grad.Data()[0] = 100 * p.W.Data()[0]
			p.Grad.Data()[1] = 0.01 * p.W.Data()[1]
			update(p)
		}
		return 100*float64(p.W.Data()[0]*p.W.Data()[0]) + 0.01*float64(p.W.Data()[1]*p.W.Data()[1])
	}
	adam := NewAdam(0.05, 0, 0, 0)
	sgd := NewSGD(0.005, 0, 0, 1) // larger LR diverges on the stiff axis
	fAdam := run(func(p *Param) { adam.Update([]*Param{p}) })
	fSGD := run(func(p *Param) { sgd.Update([]*Param{p}) })
	if !(fAdam < fSGD) {
		t.Fatalf("adam %v should beat sgd %v here", fAdam, fSGD)
	}
}

func TestAdamTrainsNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := NewSequential(
		NewDense("fc1", 4, 8, rng),
		NewLeakyReLU(0.05),
		NewDense("fc2", 8, 2, rng),
	)
	opt := NewAdam(0.01, 0, 0, 0)
	var first, last float64
	for step := 0; step < 150; step++ {
		x := tensor.New(8, 4)
		labels := make([]int, 8)
		for i := 0; i < 8; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for j := 0; j < 4; j++ {
				x.Set(float32(rng.NormFloat64())+float32(cls*2), i, j)
			}
		}
		logits := net.Forward(x)
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Update(net.Params())
	}
	if !(last < first*0.5) {
		t.Fatalf("adam training stalled: %v → %v", first, last)
	}
}
