package nn

import (
	"bytes"
	"testing"
)

// FuzzLoadParams drives LoadParams with arbitrary bytes. The property is
// purely defensive: no input may panic, allocate beyond the fixed model
// size, or loop forever — every outcome is either a successful load or a
// descriptive error. Seeds cover the valid stream and the corruption
// classes of the table test so the fuzzer starts at the format's edges.
func FuzzLoadParams(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveParams(&valid, ckptParams()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RHSDCKPT1"))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(put32(valid.Bytes(), 9, 0xffffffff))  // count
	f.Add(put32(valid.Bytes(), 13, 0xffffffff)) // name length
	f.Fuzz(func(t *testing.T, data []byte) {
		params := freshLike(ckptParams())
		_ = LoadParams(bytes.NewReader(data), params) // must not panic
	})
}
