package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rhsd/internal/tensor"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// gradCheck verifies Backward against central finite differences of a
// scalar loss L = 0.5*sum(Forward(x)^2) for both the input and every
// parameter of the layer.
func gradCheck(t *testing.T, name string, layer Layer, x *tensor.Tensor) {
	t.Helper()
	loss := func() float64 {
		y := layer.Forward(x)
		var s float64
		for _, v := range y.Data() {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}
	y := layer.Forward(x)
	ZeroGrads(layer.Params())
	dx := layer.Backward(y.Clone())

	const eps = 1e-2
	check := func(what string, buf []float32, grad []float32, stride int) {
		for i := 0; i < len(buf); i += stride {
			orig := buf[i]
			buf[i] = orig + eps
			lp := loss()
			buf[i] = orig - eps
			lm := loss()
			buf[i] = orig
			num := (lp - lm) / (2 * eps)
			if !almostEq(num, float64(grad[i]), 0.15*(1+math.Abs(num))) {
				t.Fatalf("%s %s grad[%d]: numerical %v analytic %v", name, what, i, num, grad[i])
			}
		}
	}
	check("input", x.Data(), dx.Data(), 1+len(x.Data())/7)
	// Recompute forward/backward so the cached state matches the restored
	// parameters before finite-differencing them.
	layer.Forward(x)
	ZeroGrads(layer.Params())
	layer.Backward(y.Clone())
	for _, p := range layer.Params() {
		check(p.Name, p.W.Data(), p.Grad.Data(), 1+p.W.Size()/7)
	}
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D("c", 2, 3, 3, 1, 1, rng)
	x := tensor.New(1, 2, 5, 5)
	x.RandN(rng, 1)
	gradCheck(t, "conv", l, x)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D("c", 2, 2, 3, 2, 1, rng)
	x := tensor.New(2, 2, 6, 6)
	x.RandN(rng, 1)
	gradCheck(t, "conv-s2", l, x)
}

func TestDeconv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewDeconv2D("d", 2, 2, 3, 2, 1, rng)
	x := tensor.New(1, 2, 4, 4)
	x.RandN(rng, 1)
	gradCheck(t, "deconv", l, x)
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewDense("fc", 6, 4, rng)
	x := tensor.New(3, 6)
	x.RandN(rng, 1)
	gradCheck(t, "dense", l, x)
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 4)
	y := l.Forward(x)
	want := []float32{0, 0, 2, 0}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("relu fwd: %v", y.Data())
		}
	}
	g := tensor.FromSlice([]float32{5, 5, 5, 5}, 1, 4)
	dx := l.Backward(g)
	wantG := []float32{0, 0, 5, 0}
	for i, v := range wantG {
		if dx.Data()[i] != v {
			t.Fatalf("relu bwd: %v", dx.Data())
		}
	}
}

func TestMaxPoolLayerGradientRouting(t *testing.T) {
	l := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := l.Forward(x)
	if y.Size() != 1 || y.Data()[0] != 4 {
		t.Fatalf("pool fwd: %v", y.Data())
	}
	dx := l.Backward(tensor.FromSlice([]float32{7}, 1, 1, 1, 1))
	if dx.At(0, 0, 1, 1) != 7 || dx.Sum() != 7 {
		t.Fatalf("pool bwd: %v", dx.Data())
	}
}

func TestFlattenRoundtrip(t *testing.T) {
	l := NewFlatten()
	x := tensor.New(2, 3, 4, 4)
	y := l.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten: %v", y.Shape())
	}
	dx := l.Backward(y)
	if dx.Rank() != 4 || dx.Dim(3) != 4 {
		t.Fatalf("unflatten: %v", dx.Shape())
	}
}

func TestSequentialComposesAndCollectsParams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSequential(
		NewConv2D("c1", 1, 2, 3, 1, 1, rng),
		NewReLU(),
		NewConv2D("c2", 2, 2, 3, 1, 1, rng),
	)
	if len(s.Params()) != 4 {
		t.Fatalf("want 4 params, got %d", len(s.Params()))
	}
	x := tensor.New(1, 1, 6, 6)
	x.RandN(rng, 1)
	y := s.Forward(x)
	if y.Dim(1) != 2 || y.Dim(2) != 6 {
		t.Fatalf("seq shape: %v", y.Shape())
	}
	dx := s.Backward(y.Clone())
	if !dx.SameShape(x) {
		t.Fatalf("seq backward shape: %v", dx.Shape())
	}
}

func TestConcatBranchesGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewConcatBranches(
		NewSequential(NewConv2D("b1", 2, 2, 1, 1, 0, rng)),
		NewSequential(NewConv2D("b2a", 2, 3, 1, 1, 0, rng), NewReLU(), NewConv2D("b2b", 3, 2, 3, 1, 1, rng)),
	)
	x := tensor.New(1, 2, 4, 4)
	x.RandN(rng, 1)
	y := l.Forward(x)
	if y.Dim(1) != 4 {
		t.Fatalf("concat channels: %v", y.Shape())
	}
	gradCheck(t, "concat", l, x)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(4, 5)
		x.RandN(rng, 3)
		p := Softmax(x)
		for i := 0; i < 4; i++ {
			var s float64
			for j := 0; j < 5; j++ {
				v := float64(p.At(i, j))
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if !almostEq(s, 1, 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	x := tensor.FromSlice([]float32{1000, 1001}, 1, 2)
	p := Softmax(x)
	if math.IsNaN(float64(p.Data()[0])) || math.IsInf(float64(p.Data()[1]), 0) {
		t.Fatalf("softmax overflow: %v", p.Data())
	}
	if p.Data()[1] < p.Data()[0] {
		t.Fatal("softmax ordering lost")
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 2 classes → loss = ln 2.
	x := tensor.New(1, 2)
	loss, grad := SoftmaxCrossEntropy(x, []int{0})
	if !almostEq(loss, math.Ln2, 1e-5) {
		t.Fatalf("loss %v want ln2", loss)
	}
	if !almostEq(float64(grad.At(0, 0)), -0.5, 1e-5) || !almostEq(float64(grad.At(0, 1)), 0.5, 1e-5) {
		t.Fatalf("grad %v", grad.Data())
	}
}

func TestSoftmaxCrossEntropyIgnoresNegativeLabels(t *testing.T) {
	x := tensor.New(3, 2)
	x.Set(10, 1, 0) // the ignored row has extreme logits
	loss, grad := SoftmaxCrossEntropy(x, []int{0, -1, 1})
	if grad.At(1, 0) != 0 || grad.At(1, 1) != 0 {
		t.Fatal("ignored row must have zero gradient")
	}
	if !(loss > 0) {
		t.Fatalf("loss %v", loss)
	}
}

func TestSoftmaxCrossEntropyGradNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(3, 4)
	x.RandN(rng, 1)
	labels := []int{2, 0, 3}
	_, grad := SoftmaxCrossEntropy(x, labels)
	const eps = 1e-3
	for i := 0; i < x.Size(); i++ {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(x, labels)
		x.Data()[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(x, labels)
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if !almostEq(num, float64(grad.Data()[i]), 1e-3) {
			t.Fatalf("CE grad[%d]: numerical %v analytic %v", i, num, grad.Data()[i])
		}
	}
}

func TestSmoothL1ContinuityAtOne(t *testing.T) {
	// 0.5d² and |d|-0.5 must agree at |d| = 1: both are 0.5.
	pred := tensor.FromSlice([]float32{1, -1, 0.999, 1.001}, 4, 1)
	target := tensor.New(4, 1)
	loss, _ := SmoothL1(pred, target, []float32{1, 1, 1, 1}, 1)
	// 0.5 + 0.5 + ~0.499 + ~0.501 ≈ 2.
	if !almostEq(loss, 2, 1e-2) {
		t.Fatalf("smooth L1 near the knee: %v", loss)
	}
}

func TestSmoothL1GradNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pred := tensor.New(3, 4)
	target := tensor.New(3, 4)
	pred.RandN(rng, 2)
	target.RandN(rng, 2)
	w := []float32{1, 0, 2}
	_, grad := SmoothL1(pred, target, w, 3)
	const eps = 1e-3
	for i := 0; i < pred.Size(); i++ {
		orig := pred.Data()[i]
		pred.Data()[i] = orig + eps
		lp, _ := SmoothL1(pred, target, w, 3)
		pred.Data()[i] = orig - eps
		lm, _ := SmoothL1(pred, target, w, 3)
		pred.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if !almostEq(num, float64(grad.Data()[i]), 2e-3) {
			t.Fatalf("smoothL1 grad[%d]: numerical %v analytic %v", i, num, grad.Data()[i])
		}
	}
}

func TestSmoothL1ZeroWeightRowContributesNothing(t *testing.T) {
	pred := tensor.FromSlice([]float32{100, 100}, 2, 1)
	target := tensor.New(2, 1)
	loss, grad := SmoothL1(pred, target, []float32{0, 0}, 1)
	if loss != 0 || grad.Sum() != 0 {
		t.Fatalf("zero-weight rows leaked: loss=%v grad=%v", loss, grad.Data())
	}
}

func TestL2PenaltySkipsBiases(t *testing.T) {
	w := newParam("w", 2)
	w.W.Fill(2)
	b := newParam("b", 2)
	b.W.Fill(3)
	b.NoReg = true
	total := L2Penalty([]*Param{w, b}, 0.5)
	// 0.5 * 0.5 * (4+4) = 2.
	if !almostEq(total, 2, 1e-6) {
		t.Fatalf("L2 penalty %v", total)
	}
	if w.Grad.Data()[0] != 1 { // beta*W = 0.5*2
		t.Fatalf("L2 grad %v", w.Grad.Data())
	}
	if b.Grad.Data()[0] != 0 {
		t.Fatal("bias must be excluded from L2")
	}
}

func TestSGDStepDecaySchedule(t *testing.T) {
	opt := NewSGD(1.0, 0, 2, 0.1)
	p := newParam("p", 1)
	p.W.Fill(0)
	for i := 0; i < 4; i++ {
		p.Grad.Fill(1)
		opt.Update([]*Param{p})
	}
	// Steps: lr=1 (decays to 0.1 at step 2 before... decay applied at start
	// of step when step%2==0): step1 lr=1, step2 lr=0.1, step3 lr=0.1,
	// step4 lr=0.01 → total displacement 1+0.1+0.1+0.01 = 1.21.
	if !almostEq(float64(p.W.Data()[0]), -1.21, 1e-5) {
		t.Fatalf("decay schedule wrong: w=%v lr=%v", p.W.Data()[0], opt.LR)
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	plain := newParam("a", 1)
	mom := newParam("b", 1)
	o1 := NewSGD(0.1, 0, 0, 1)
	o2 := NewSGD(0.1, 0.9, 0, 1)
	for i := 0; i < 5; i++ {
		plain.Grad.Fill(1)
		mom.Grad.Fill(1)
		o1.Update([]*Param{plain})
		o2.Update([]*Param{mom})
	}
	if !(mom.W.Data()[0] < plain.W.Data()[0]) {
		t.Fatalf("momentum should move farther: %v vs %v", mom.W.Data()[0], plain.W.Data()[0])
	}
}

func TestSGDZeroesGradsAfterUpdate(t *testing.T) {
	p := newParam("p", 3)
	p.Grad.Fill(5)
	NewSGD(0.1, 0, 0, 1).Update([]*Param{p})
	if p.Grad.Sum() != 0 {
		t.Fatal("Update must zero gradients")
	}
}

func TestClipGradients(t *testing.T) {
	p := newParam("p", 4)
	p.Grad.Fill(3) // norm = 6
	opt := NewSGD(0.1, 0, 0, 1)
	norm := opt.ClipGradients([]*Param{p}, 3)
	if !almostEq(norm, 6, 1e-6) {
		t.Fatalf("pre-clip norm %v", norm)
	}
	var sq float64
	for _, v := range p.Grad.Data() {
		sq += float64(v) * float64(v)
	}
	if !almostEq(math.Sqrt(sq), 3, 1e-4) {
		t.Fatalf("post-clip norm %v", math.Sqrt(sq))
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewSequential(NewConv2D("c", 1, 2, 3, 1, 1, rng), NewDense("f", 4, 2, rng))
	dst := NewSequential(NewConv2D("c", 1, 2, 3, 1, 1, rng), NewDense("f", 4, 2, rng))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		q := dst.Params()[i]
		for j := range p.W.Data() {
			if p.W.Data()[j] != q.W.Data()[j] {
				t.Fatalf("param %s differs after roundtrip", p.Name)
			}
		}
	}
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewSequential(NewDense("f", 4, 2, rng))
	other := NewSequential(NewDense("g", 4, 2, rng))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("expected name mismatch error")
	}
}

// TestTrainingReducesLoss is the end-to-end sanity check: a small conv net
// must learn to separate two synthetic pattern classes.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewSequential(
		NewConv2D("c1", 1, 4, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense("fc", 4*4*4, 2, rng),
	)
	opt := NewSGD(0.05, 0.9, 0, 1)

	makeBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(8, 1, 8, 8)
		labels := make([]int, 8)
		for i := 0; i < 8; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					var v float32
					if cls == 0 && y%2 == 0 {
						v = 1 // horizontal stripes
					}
					if cls == 1 && xx%2 == 0 {
						v = 1 // vertical stripes
					}
					x.Set(v+float32(rng.NormFloat64()*0.05), i, 0, y, xx)
				}
			}
		}
		return x, labels
	}

	var first, last float64
	for step := 0; step < 40; step++ {
		x, labels := makeBatch()
		logits := net.Forward(x)
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Update(net.Params())
	}
	if !(last < first*0.5) {
		t.Fatalf("training did not converge: first=%v last=%v", first, last)
	}
}
