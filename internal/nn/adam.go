package nn

import (
	"math"

	"rhsd/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with bias
// correction — the optimizer used by the TCAD'18 reference flow this
// repository baselines against, and a useful alternative to SGD for small
// training budgets.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m    map[*Param]*tensor.Tensor // first-moment estimates
	v    map[*Param]*tensor.Tensor // second-moment estimates
}

// NewAdam creates an optimizer with the canonical defaults for any field
// left zero (β1 0.9, β2 0.999, ε 1e-8).
func NewAdam(lr, beta1, beta2, epsilon float64) *Adam {
	if beta1 == 0 {
		beta1 = 0.9
	}
	if beta2 == 0 {
		beta2 = 0.999
	}
	if epsilon == 0 {
		epsilon = 1e-8
	}
	return &Adam{
		LR:      lr,
		Beta1:   beta1,
		Beta2:   beta2,
		Epsilon: epsilon,
		m:       make(map[*Param]*tensor.Tensor),
		v:       make(map[*Param]*tensor.Tensor),
	}
}

// Step returns the number of completed updates.
func (a *Adam) Step() int { return a.step }

// Update applies one Adam step to params and zeroes their gradients.
func (a *Adam) Update(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Shape()...)
		}
		v := a.v[p]
		md, vd := m.Data(), v.Data()
		wd, gd := p.W.Data(), p.Grad.Data()
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for i, g := range gd {
			md[i] = b1*md[i] + (1-b1)*g
			vd[i] = b2*vd[i] + (1-b2)*g*g
			mHat := float64(md[i]) / c1
			vHat := float64(vd[i]) / c2
			wd[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon))
		}
		p.Grad.Zero()
	}
}
