package nn

import (
	"rhsd/internal/tensor"
)

// Inferer is the allocation-free forward path: Infer computes the same
// values as Forward but draws all output and scratch memory from the
// caller's Workspace, caches nothing for Backward and never mutates layer
// state — so a layer may serve Infer calls from one goroutine while its
// clone trains in another. Returned tensors are valid until the
// workspace's next Reset.
//
// Sequential.Infer additionally fuses Conv2D/Deconv2D + ReLU pairs into a
// single output sweep via tensor.Epilogue; the fused sequence performs
// the identical add-then-scale arithmetic, so Infer and Forward agree bit
// for bit (pinned by TestInferMatchesForward).
type Inferer interface {
	Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor
}

// Infer runs the convolution with its bias fused into the output sweep.
func (l *Conv2D) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	return tensor.Conv2DInfer(ws, x, l.Weight.W, l.Opts, tensor.Epilogue{Bias: l.Bias.W})
}

// inferFused additionally folds a trailing leaky ReLU into the sweep.
func (l *Conv2D) inferFused(x *tensor.Tensor, ws *tensor.Workspace, slope float32) *tensor.Tensor {
	return tensor.Conv2DInfer(ws, x, l.Weight.W, l.Opts,
		tensor.Epilogue{Bias: l.Bias.W, Act: true, Slope: slope})
}

// Infer runs the transposed convolution with fused bias.
func (l *Deconv2D) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	return tensor.Deconv2DInfer(ws, x, l.Weight.W, l.Opts, tensor.Epilogue{Bias: l.Bias.W})
}

func (l *Deconv2D) inferFused(x *tensor.Tensor, ws *tensor.Workspace, slope float32) *tensor.Tensor {
	return tensor.Deconv2DInfer(ws, x, l.Weight.W, l.Opts,
		tensor.Epilogue{Bias: l.Bias.W, Act: true, Slope: slope})
}

// Infer pools without recording argmax indices.
func (l *MaxPool2D) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	return tensor.MaxPool2DInfer(ws, x, l.Kernel, l.Stride)
}

// Infer applies the activation into workspace memory, leaving the input
// and the layer's backward mask untouched.
func (l *ReLU) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	y := ws.Tensor(x.Shape()...)
	yd, xd := y.Data(), x.Data()
	for i, v := range xd {
		if v > 0 {
			yd[i] = v
		} else {
			yd[i] = v * l.Slope
		}
	}
	return y
}

// Infer reshapes through a workspace view without caching the input shape
// (Backward is never called on the inference path).
func (l *Flatten) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	n := x.Dim(0)
	return ws.View(x.Data(), n, x.Size()/n)
}

// Infer computes x·W + b into workspace memory. When PackWeights has
// armed the prepacked weight view it multiplies against that —
// bit-identical to the per-call Gemm (tensor.GemmPreB's contract), just
// without repacking the constant W every call.
func (l *Dense) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	n := x.Dim(0)
	y := ws.Tensor(n, l.Out)
	if l.packed != nil {
		tensor.GemmPreBScoped(ws.ProfileScope(), false, n, l.Out, l.In, 1, x.Data(), l.packed, 0, y.Data())
	} else {
		tensor.Gemm(false, false, n, l.Out, l.In, 1, x.Data(), l.Weight.W.Data(), 0, y.Data())
	}
	bd := l.Bias.W.Data()
	for i := 0; i < n; i++ {
		row := y.Data()[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Infer is the identity: dropout is defined to be a no-op at inference
// time, regardless of the layer's training flag.
func (l *Dropout) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	return x
}

// Infer chains the layers' inference paths, fusing each Conv2D/Deconv2D
// with an immediately following ReLU into one kernel with a fused
// bias+activation epilogue. Layers without an Infer method fall back to
// Forward (which allocates and caches — correct, just not free).
func (s *Sequential) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	for i := 0; i < len(s.Layers); i++ {
		switch l := s.Layers[i].(type) {
		case *Conv2D:
			if i+1 < len(s.Layers) {
				if r, ok := s.Layers[i+1].(*ReLU); ok {
					x = l.inferFused(x, ws, r.Slope)
					i++
					continue
				}
			}
			x = l.Infer(x, ws)
		case *Deconv2D:
			if i+1 < len(s.Layers) {
				if r, ok := s.Layers[i+1].(*ReLU); ok {
					x = l.inferFused(x, ws, r.Slope)
					i++
					continue
				}
			}
			x = l.Infer(x, ws)
		default:
			x = inferLayer(s.Layers[i], x, ws)
		}
	}
	return x
}

// Infer runs every branch on x and concatenates along channels. The
// branch-output scratch slice is cached on the layer; it holds only
// workspace tensors and is overwritten on every call, so it is not
// training state.
func (l *ConcatBranches) Infer(x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	if cap(l.inferOuts) < len(l.Branches) {
		l.inferOuts = make([]*tensor.Tensor, len(l.Branches))
	}
	outs := l.inferOuts[:len(l.Branches)]
	for i, b := range l.Branches {
		outs[i] = inferLayer(b, x, ws)
	}
	return tensor.ConcatChannelsInfer(ws, outs...)
}

// inferLayer dispatches to a layer's Infer when it has one, else Forward.
func inferLayer(l Layer, x *tensor.Tensor, ws *tensor.Workspace) *tensor.Tensor {
	if inf, ok := l.(Inferer); ok {
		return inf.Infer(x, ws)
	}
	return l.Forward(x)
}
