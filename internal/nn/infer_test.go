package nn

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
)

func assertSameTensor(t *testing.T, label string, want, got *tensor.Tensor) {
	t.Helper()
	if len(want.Shape()) != len(got.Shape()) {
		t.Fatalf("%s: shape %v vs %v", label, want.Shape(), got.Shape())
	}
	for i, d := range want.Shape() {
		if got.Shape()[i] != d {
			t.Fatalf("%s: shape %v vs %v", label, want.Shape(), got.Shape())
		}
	}
	for i, v := range want.Data() {
		if math.Float32bits(v) != math.Float32bits(got.Data()[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, v, got.Data()[i])
		}
	}
}

// TestInferMatchesForward pins the Infer ≡ Forward contract on a stack
// exercising every fused and unfused inference path: conv+leaky-ReLU
// (fused), deconv+ReLU (fused), bare conv, pooling, inception-style
// branch concat, dropout (identity at inference), flatten and dense.
func TestInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	branchA := NewSequential(
		NewConv2D("ba", 6, 4, 1, 1, 0, rng),
		NewLeakyReLU(0.05),
	)
	branchB := NewSequential(
		NewConv2D("bb", 6, 5, 3, 1, 1, rng),
		NewReLU(),
	)
	drop := NewDropout(0.5, rng)
	drop.SetTraining(false)
	net := NewSequential(
		NewConv2D("c1", 2, 4, 3, 1, 1, rng),
		NewLeakyReLU(0.05),
		NewMaxPool2D(2, 2),
		NewDeconv2D("d1", 4, 6, 2, 2, 0, rng),
		NewReLU(),
		NewConcatBranches(branchA, branchB),
		NewConv2D("c2", 9, 3, 3, 1, 1, rng), // bare conv: unfused epilogue
		drop,
		NewFlatten(),
		NewDense("fc", 3*8*8, 7, rng),
	)

	x := tensor.New(2, 2, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}

	want := net.Forward(x)
	ws := tensor.NewWorkspace()
	for pass := 0; pass < 2; pass++ { // second pass runs on recycled buffers
		ws.Reset()
		got := net.Infer(x, ws)
		assertSameTensor(t, "sequential infer", want, got)
	}

	// The input must come through untouched (ReLU.Infer copies).
	for i, v := range x.Data() {
		if math.IsNaN(float64(v)) {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

// TestInferSteadyStateAllocs checks the zero-allocation property of the
// layer inference path at the nn level: after a warm-up pass, repeated
// Infer calls over a conv/pool/dense stack allocate nothing at all. All
// kernels call their loop bodies directly when the worker pool is
// serial, so not even parallel.For closure headers are created.
func TestInferSteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(
		NewConv2D("c1", 1, 4, 3, 1, 1, rng),
		NewLeakyReLU(0.05),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense("fc", 4*4*4, 3, rng),
	)
	x := tensor.New(1, 1, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	ws := tensor.NewWorkspace()
	net.Infer(x, ws) // warm-up sizes the arena
	allocs := testing.AllocsPerRun(20, func() {
		ws.Reset()
		net.Infer(x, ws)
	})
	if allocs > 0 {
		t.Errorf("steady-state Infer allocated %.0f times per run, want 0", allocs)
	}
}
