// Package nn is a small layer-based neural-network framework with manual
// backpropagation, sufficient to train the R-HSD detector of Chen et al.
// (DAC 2019) and its baselines end-to-end on CPU.
//
// Layers are stateful: Forward caches whatever Backward needs, so a layer
// instance must not be shared between concurrently-trained models. The
// framework covers exactly the operator set the paper uses — convolution,
// deconvolution ("decoder"), max pooling, ReLU, fully-connected heads,
// softmax cross-entropy, smooth L1 — plus the Inception-style multi-branch
// concatenation of §3.1.2.
package nn

import (
	"fmt"
	"math/rand"

	"rhsd/internal/tensor"
)

// Param is a trainable tensor together with its accumulated gradient.
type Param struct {
	Name  string
	W     *tensor.Tensor
	Grad  *tensor.Tensor
	NoReg bool // biases are conventionally excluded from L2 regularization
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is a differentiable module. Forward consumes an activation and
// caches state; Backward consumes dL/d(output) and returns dL/d(input),
// accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(gy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// ---------------------------------------------------------------------------
// Convolution

// Conv2D is a 2-D convolution layer over NCHW tensors.
type Conv2D struct {
	In, Out int
	Opts    tensor.ConvOpts
	Weight  *Param
	Bias    *Param

	x *tensor.Tensor // cached input
}

// NewConv2D creates a He-initialized convolution layer.
func NewConv2D(name string, in, out, kernel, stride, padding int, rng *rand.Rand) *Conv2D {
	l := &Conv2D{
		In:     in,
		Out:    out,
		Opts:   tensor.ConvOpts{Kernel: kernel, Stride: stride, Padding: padding},
		Weight: newParam(name+".w", out, in, kernel, kernel),
		Bias:   newParam(name+".b", out),
	}
	l.Bias.NoReg = true
	l.Weight.W.HeInit(rng, in*kernel*kernel)
	return l
}

func (l *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	return tensor.Conv2D(x, l.Weight.W, l.Bias.W, l.Opts)
}

func (l *Conv2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return tensor.Conv2DBackward(l.x, l.Weight.W, gy, l.Weight.Grad, l.Bias.Grad, l.Opts)
}

func (l *Conv2D) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Deconv2D is a transposed convolution, the decoder half of the paper's
// encoder-decoder feature extractor (§3.1.1).
type Deconv2D struct {
	In, Out int
	Opts    tensor.ConvOpts
	Weight  *Param // [In, Out, K, K]
	Bias    *Param

	x *tensor.Tensor
}

// NewDeconv2D creates a He-initialized transposed-convolution layer.
func NewDeconv2D(name string, in, out, kernel, stride, padding int, rng *rand.Rand) *Deconv2D {
	l := &Deconv2D{
		In:     in,
		Out:    out,
		Opts:   tensor.ConvOpts{Kernel: kernel, Stride: stride, Padding: padding},
		Weight: newParam(name+".w", in, out, kernel, kernel),
		Bias:   newParam(name+".b", out),
	}
	l.Bias.NoReg = true
	l.Weight.W.HeInit(rng, in*kernel*kernel)
	return l
}

func (l *Deconv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	return tensor.Deconv2D(x, l.Weight.W, l.Bias.W, l.Opts)
}

func (l *Deconv2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return tensor.Deconv2DBackward(l.x, l.Weight.W, gy, l.Weight.Grad, l.Bias.Grad, l.Opts)
}

func (l *Deconv2D) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// ---------------------------------------------------------------------------
// Pooling, activation, reshaping

// MaxPool2D is a max-pooling layer.
type MaxPool2D struct {
	Kernel, Stride int

	arg        []int32
	n, c, h, w int
	oh, ow     int
}

// NewMaxPool2D creates a max-pooling layer.
func NewMaxPool2D(kernel, stride int) *MaxPool2D {
	return &MaxPool2D{Kernel: kernel, Stride: stride}
}

func (l *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	s := x.Shape()
	l.n, l.c, l.h, l.w = s[0], s[1], s[2], s[3]
	y, arg := tensor.MaxPool2D(x, l.Kernel, l.Stride)
	l.arg = arg
	l.oh, l.ow = y.Dim(2), y.Dim(3)
	return y
}

func (l *MaxPool2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2DBackward(gy, l.arg, l.n, l.c, l.h, l.w, l.oh, l.ow)
}

func (l *MaxPool2D) Params() []*Param { return nil }

// ReLU is the rectified-linear activation, optionally leaky: negative
// inputs are scaled by Slope instead of zeroed. A small slope prevents the
// "dying ReLU" collapse that small networks trained with momentum are
// prone to.
type ReLU struct {
	Slope float32

	mask []bool
}

// NewReLU creates a plain (slope-0) ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// NewLeakyReLU creates a leaky ReLU with the given negative slope.
func NewLeakyReLU(slope float64) *ReLU { return &ReLU{Slope: float32(slope)} }

func (l *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Clone()
	if cap(l.mask) < y.Size() {
		l.mask = make([]bool, y.Size())
	}
	l.mask = l.mask[:y.Size()]
	for i, v := range y.Data() {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			y.Data()[i] = v * l.Slope
		}
	}
	return y
}

func (l *ReLU) Backward(gy *tensor.Tensor) *tensor.Tensor {
	dx := gy.Clone()
	for i := range dx.Data() {
		if !l.mask[i] {
			dx.Data()[i] *= l.Slope
		}
	}
	return dx
}

func (l *ReLU) Params() []*Param { return nil }

// Flatten reshapes [N, ...] to [N, F], remembering the input shape.
type Flatten struct {
	shape []int
}

// NewFlatten creates a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

func (l *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.shape = append(l.shape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

func (l *Flatten) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return gy.Reshape(l.shape...)
}

func (l *Flatten) Params() []*Param { return nil }

// ---------------------------------------------------------------------------
// Dense

// Dense is a fully-connected layer over [N, In] activations.
type Dense struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out]

	x *tensor.Tensor

	// packed is the prepacked weight view Infer multiplies against
	// (tensor.PackB); nil until PackWeights arms it. It is a derived
	// cache of Weight.W: Backward — the first step of every weight
	// mutation — drops it, and the model-level owner re-arms it at each
	// mutation point (see hsd.Model.packInferWeights, DESIGN §17).
	packed *tensor.PackedB
}

// NewDense creates a He-initialized fully-connected layer.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	l := &Dense{
		In:     in,
		Out:    out,
		Weight: newParam(name+".w", in, out),
		Bias:   newParam(name+".b", out),
	}
	l.Bias.NoReg = true
	l.Weight.W.HeInit(rng, in)
	return l
}

func (l *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Dense(%d→%d) got input %v", l.In, l.Out, x.Shape()))
	}
	l.x = x
	y := tensor.MatMul(x, l.Weight.W)
	n := y.Dim(0)
	for i := 0; i < n; i++ {
		row := y.Data()[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data()[j]
		}
	}
	return y
}

func (l *Dense) Backward(gy *tensor.Tensor) *tensor.Tensor {
	// Training mutates the weights right after this, so any prepacked
	// view is about to go stale.
	l.packed = nil
	// dW += xᵀ·gy ; db += column sums ; dx = gy·Wᵀ
	n := gy.Dim(0)
	dw := tensor.MatMulTransA(l.x, gy)
	l.Weight.Grad.Add(dw)
	for i := 0; i < n; i++ {
		row := gy.Data()[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data()[j] += v
		}
	}
	return tensor.MatMulTransB(gy, l.Weight.W)
}

func (l *Dense) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// PackWeights (re)builds the prepacked weight view Infer uses. Call it
// after any in-place weight mutation (load, clone, optimizer step);
// calling it redundantly is cheap relative to inference but not free,
// so owners batch it at their mutation points rather than per call.
func (l *Dense) PackWeights() {
	l.packed = tensor.PackB(false, l.In, l.Out, l.Weight.W.Data())
}

// InvalidatePackedWeights drops the prepacked view; Infer falls back to
// the per-call Gemm until PackWeights runs again.
func (l *Dense) InvalidatePackedWeights() { l.packed = nil }

// ---------------------------------------------------------------------------
// Composition

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Append adds more layers.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

func (s *Sequential) Backward(gy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gy = s.Layers[i].Backward(gy)
	}
	return gy
}

func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ConcatBranches runs several branch stacks on the same input and
// concatenates their outputs along the channel axis — the feature-fusion
// rule of the paper's Inception modules (§3.1.2). All branches must produce
// equal spatial dimensions.
type ConcatBranches struct {
	Branches []Layer

	outC      []int
	inferOuts []*tensor.Tensor // reusable branch-output scratch for Infer
}

// NewConcatBranches builds a multi-branch concat container.
func NewConcatBranches(branches ...Layer) *ConcatBranches {
	return &ConcatBranches{Branches: branches}
}

func (l *ConcatBranches) Forward(x *tensor.Tensor) *tensor.Tensor {
	outs := make([]*tensor.Tensor, len(l.Branches))
	l.outC = l.outC[:0]
	for i, b := range l.Branches {
		outs[i] = b.Forward(x)
		l.outC = append(l.outC, outs[i].Dim(1))
	}
	return tensor.ConcatChannels(outs...)
}

func (l *ConcatBranches) Backward(gy *tensor.Tensor) *tensor.Tensor {
	parts := tensor.SplitChannels(gy, l.outC...)
	var dx *tensor.Tensor
	for i, b := range l.Branches {
		g := b.Backward(parts[i])
		if dx == nil {
			dx = g
		} else {
			dx.Add(g)
		}
	}
	return dx
}

func (l *ConcatBranches) Params() []*Param {
	var ps []*Param
	for _, b := range l.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}
