package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/tensor"
)

// quantTestNet builds a trunk exercising every construct the quantized
// walk handles: fused conv+ReLU, max pooling, nested Sequential,
// ConcatBranches with conv branches, a strided conv, and a (float32)
// deconv+ReLU pair.
func quantTestNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewConv2D("q.c1", 2, 8, 3, 1, 1, rng), NewLeakyReLU(0.05),
		NewMaxPool2D(2, 2),
		NewSequential(NewConcatBranches(
			NewSequential(NewConv2D("q.b1", 8, 4, 1, 1, 0, rng), NewLeakyReLU(0.05)),
			NewSequential(NewConv2D("q.b2", 8, 4, 3, 1, 1, rng), NewLeakyReLU(0.05)),
		)),
		NewConv2D("q.c2", 8, 6, 3, 2, 1, rng), NewLeakyReLU(0.05),
		NewDeconv2D("q.d1", 6, 4, 3, 1, 1, rng), NewLeakyReLU(0.05),
	)
}

func quantTestInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(1, 2, 16, 16)
	x.RandUniform(rng, 0, 1)
	return x
}

// TestQuantizerUncalibratedMatchesInfer pins the walk structure: with no
// frozen plans every conv runs float32 with the same fused epilogues, so
// the Quantizer's traversal must reproduce Sequential.Infer bit for bit.
func TestQuantizerUncalibratedMatchesInfer(t *testing.T) {
	net := quantTestNet(3)
	x := quantTestInput(4)
	ws := tensor.NewWorkspace()
	want := append([]float32(nil), net.Infer(x, ws).Data()...)

	q := NewQuantizer()
	q.Freeze() // no observations: zero plans, pure float32 walk
	ws2 := tensor.NewWorkspace()
	got := q.Infer(net, x, ws2).Data()
	if len(got) != len(want) {
		t.Fatalf("output size %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: walk %v vs Infer %v", i, got[i], want[i])
		}
	}
	if q.Calibrated() {
		t.Error("Calibrated() true with zero plans")
	}
}

// TestQuantizerInferCloseToFloat calibrates on the exact input and
// checks the int8 walk tracks the float32 walk within a small relative
// error — and that every conv in the tree actually got a plan.
func TestQuantizerInferCloseToFloat(t *testing.T) {
	net := quantTestNet(5)
	x := quantTestInput(6)
	ws := tensor.NewWorkspace()
	want := append([]float32(nil), net.Infer(x, ws).Data()...)

	q := NewQuantizer()
	q.Observe(net, x, ws)
	q.Freeze()
	if got, wantN := q.NumQuantized(), 4; got != wantN {
		t.Fatalf("NumQuantized = %d, want %d", got, wantN)
	}
	got := q.Infer(net, x, ws).Data()

	var rms, refRMS float64
	for i := range want {
		d := float64(got[i]) - float64(want[i])
		rms += d * d
		refRMS += float64(want[i]) * float64(want[i])
	}
	rms = math.Sqrt(rms / float64(len(want)))
	refRMS = math.Sqrt(refRMS / float64(len(want)))
	if refRMS == 0 {
		t.Fatal("degenerate reference output")
	}
	if rms > 0.05*refRMS {
		t.Fatalf("int8 walk RMSE %v vs reference RMS %v (>5%%)", rms, refRMS)
	}
}

// TestQuantizerObserveMatchesInfer checks the calibration pass computes
// the same values as the plain inference path (the taps are read-only).
func TestQuantizerObserveMatchesInfer(t *testing.T) {
	net := quantTestNet(7)
	x := quantTestInput(8)
	ws := tensor.NewWorkspace()
	want := append([]float32(nil), net.Infer(x, ws).Data()...)
	got := NewQuantizer().Observe(net, x, ws).Data()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: observe %v vs Infer %v", i, got[i], want[i])
		}
	}
}

// TestQuantizerMirror checks a mirrored Quantizer drives a structurally
// identical replica to bit-identical int8 outputs.
func TestQuantizerMirror(t *testing.T) {
	net := quantTestNet(9)
	replica := quantTestNet(9) // same seed: identical weights
	x := quantTestInput(10)
	ws := tensor.NewWorkspace()

	q := NewQuantizer()
	q.Observe(net, x, ws)
	q.Freeze()
	want := append([]float32(nil), q.Infer(net, x, ws).Data()...)

	mq, err := q.Mirror([]Layer{net}, []Layer{replica})
	if err != nil {
		t.Fatalf("Mirror: %v", err)
	}
	if mq.NumQuantized() != q.NumQuantized() {
		t.Fatalf("mirrored %d plans, want %d", mq.NumQuantized(), q.NumQuantized())
	}
	got := mq.Infer(replica, x, tensor.NewWorkspace()).Data()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: mirror %v vs source %v", i, got[i], want[i])
		}
	}

	if _, err := q.Mirror([]Layer{net}, []Layer{NewSequential()}); err == nil {
		t.Error("Mirror accepted a structurally different destination")
	}
}

// TestQuantizerSignature checks the calibration signature is
// deterministic and sensitive to the calibration data.
func TestQuantizerSignature(t *testing.T) {
	net := quantTestNet(11)
	ws := tensor.NewWorkspace()
	sig := func(inputSeed int64) []byte {
		q := NewQuantizer()
		q.Observe(net, quantTestInput(inputSeed), ws)
		q.Freeze()
		var b bytes.Buffer
		q.WriteSignature(&b)
		return b.Bytes()
	}
	a1, a2 := sig(21), sig(21)
	if !bytes.Equal(a1, a2) {
		t.Error("signature not deterministic for equal calibration data")
	}
	if len(a1) == 0 {
		t.Error("empty signature for a calibrated quantizer")
	}
	rng := rand.New(rand.NewSource(22))
	big := tensor.New(1, 2, 16, 16)
	big.RandUniform(rng, 0, 50) // very different activation ranges
	q := NewQuantizer()
	q.Observe(net, big, ws)
	q.Freeze()
	var b bytes.Buffer
	q.WriteSignature(&b)
	if bytes.Equal(a1, b.Bytes()) {
		t.Error("signature identical under different calibration ranges")
	}
}
