package layout

import (
	"reflect"
	"testing"
)

func layoutWith(bounds Rect, rects ...Rect) *Layout {
	l := New(bounds)
	for _, r := range rects {
		l.Add(r)
	}
	return l
}

func TestDiffIdenticalLayoutsEmpty(t *testing.T) {
	b := R(0, 0, 1000, 1000)
	a := layoutWith(b, R(10, 10, 50, 50), R(100, 200, 300, 240))
	c := layoutWith(b, R(10, 10, 50, 50), R(100, 200, 300, 240))
	if d := Diff(a, c); len(d) != 0 {
		t.Fatalf("identical layouts diff %v, want empty", d)
	}
}

func TestDiffOrderIndependent(t *testing.T) {
	b := R(0, 0, 1000, 1000)
	a := layoutWith(b, R(10, 10, 50, 50), R(100, 200, 300, 240))
	c := layoutWith(b, R(100, 200, 300, 240), R(10, 10, 50, 50))
	if d := Diff(a, c); len(d) != 0 {
		t.Fatalf("reordered layouts diff %v, want empty", d)
	}
}

func TestDiffAddRemoveMove(t *testing.T) {
	b := R(0, 0, 1000, 1000)
	base := layoutWith(b, R(10, 10, 50, 50))

	added := layoutWith(b, R(10, 10, 50, 50), R(600, 600, 700, 700))
	if d := Diff(base, added); !reflect.DeepEqual(d, []Rect{R(600, 600, 700, 700)}) {
		t.Fatalf("add diff %v", d)
	}
	if d := Diff(added, base); !reflect.DeepEqual(d, []Rect{R(600, 600, 700, 700)}) {
		t.Fatalf("remove diff %v", d)
	}

	// A moved shape dirties both its old and new footprint.
	moved := layoutWith(b, R(14, 10, 54, 50))
	want := []Rect{R(10, 10, 50, 50), R(14, 10, 54, 50)}
	if d := Diff(base, moved); !reflect.DeepEqual(d, want) {
		t.Fatalf("move diff %v, want %v", d, want)
	}
}

func TestDiffDuplicateMultiplicity(t *testing.T) {
	b := R(0, 0, 1000, 1000)
	one := layoutWith(b, R(10, 10, 50, 50))
	two := layoutWith(b, R(10, 10, 50, 50), R(10, 10, 50, 50))
	// Union semantics render these identically, but the multiset contract
	// flags the count change — a false positive that costs one rescan.
	if d := Diff(one, two); !reflect.DeepEqual(d, []Rect{R(10, 10, 50, 50)}) {
		t.Fatalf("duplicate-count diff %v", d)
	}
}

func TestDiffBoundsChangeDirtiesEverything(t *testing.T) {
	a := layoutWith(R(0, 0, 1000, 1000), R(10, 10, 50, 50))
	c := layoutWith(R(0, 0, 1200, 1000), R(10, 10, 50, 50))
	d := Diff(a, c)
	if !reflect.DeepEqual(d, []Rect{R(0, 0, 1200, 1000)}) {
		t.Fatalf("bounds-change diff %v, want whole union", d)
	}
}

func TestDiffNilSides(t *testing.T) {
	if d := Diff(nil, nil); len(d) != 0 {
		t.Fatalf("Diff(nil,nil) = %v", d)
	}
	l := layoutWith(R(0, 0, 100, 100), R(1, 1, 2, 2))
	if d := Diff(nil, l); !reflect.DeepEqual(d, []Rect{R(0, 0, 100, 100)}) {
		t.Fatalf("Diff(nil,l) = %v", d)
	}
}

func TestDiffCanonicalizesBeforeComparing(t *testing.T) {
	b := R(0, 0, 1000, 1000)
	a := layoutWith(b, R(50, 50, 10, 10)) // Add canonicalizes
	c := layoutWith(b, R(10, 10, 50, 50))
	if d := Diff(a, c); len(d) != 0 {
		t.Fatalf("canonically equal rects diff %v", d)
	}
}

func TestDiffSortedOutput(t *testing.T) {
	b := R(0, 0, 1000, 1000)
	empty := layoutWith(b)
	full := layoutWith(b, R(500, 500, 600, 600), R(10, 10, 50, 50), R(200, 10, 220, 30))
	d := Diff(empty, full)
	want := []Rect{R(10, 10, 50, 50), R(200, 10, 220, 30), R(500, 500, 600, 600)}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("diff order %v, want %v", d, want)
	}
}

func TestAnyDirty(t *testing.T) {
	dirty := []Rect{R(100, 100, 200, 200)}
	if !AnyDirty(dirty, R(150, 150, 400, 400)) {
		t.Fatal("overlapping window not flagged dirty")
	}
	if AnyDirty(dirty, R(200, 100, 300, 200)) {
		t.Fatal("edge-touching (non-overlapping) window flagged dirty")
	}
	if AnyDirty(nil, R(0, 0, 10, 10)) {
		t.Fatal("empty dirty set flagged a window")
	}
}
