package layout

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectCanonAndAccessors(t *testing.T) {
	r := Rect{10, 20, 4, 6}.Canon()
	if r != (Rect{4, 6, 10, 20}) {
		t.Fatalf("canon: %v", r)
	}
	if r.W() != 6 || r.H() != 14 || r.Empty() {
		t.Fatalf("accessors: w=%d h=%d", r.W(), r.H())
	}
	if !(Rect{0, 0, 0, 5}).Empty() {
		t.Fatal("zero-width rect must be empty")
	}
}

func TestOverlaps(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.Overlaps(Rect{5, 5, 15, 15}) {
		t.Fatal("overlapping rects not detected")
	}
	if a.Overlaps(Rect{10, 0, 20, 10}) {
		t.Fatal("edge-touching rects must not overlap (half-open)")
	}
	if a.Overlaps(Rect{20, 20, 30, 30}) {
		t.Fatal("disjoint rects must not overlap")
	}
}

func TestAddIgnoresDegenerate(t *testing.T) {
	l := New(Rect{0, 0, 100, 100})
	l.Add(Rect{5, 5, 5, 50})
	if len(l.Rects) != 0 {
		t.Fatal("degenerate rect must be dropped")
	}
	l.Add(Rect{50, 10, 5, 20}) // reversed x — canonicalized, kept
	if len(l.Rects) != 1 || l.Rects[0].X0 != 5 {
		t.Fatalf("canon add: %v", l.Rects)
	}
}

func TestWindowClipsAndRebases(t *testing.T) {
	l := New(Rect{0, 0, 1000, 1000})
	l.Add(Rect{100, 100, 300, 120})
	l.Add(Rect{900, 900, 990, 990}) // outside window
	w := l.Window(Rect{150, 90, 400, 200})
	if len(w.Rects) != 1 {
		t.Fatalf("window shapes: %v", w.Rects)
	}
	got := w.Rects[0]
	if got != (Rect{0, 10, 150, 30}) {
		t.Fatalf("window rebase: %v", got)
	}
	if w.Bounds != (Rect{0, 0, 250, 110}) {
		t.Fatalf("window bounds: %v", w.Bounds)
	}
}

func TestRasterizeKnownPattern(t *testing.T) {
	l := New(Rect{0, 0, 40, 40})
	l.Add(Rect{0, 0, 20, 40}) // left half metal
	img := l.Rasterize(Rect{0, 0, 40, 40}, 10)
	if img.Dim(1) != 4 || img.Dim(2) != 4 {
		t.Fatalf("raster dims: %v", img.Shape())
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			want := float32(0)
			if x < 2 {
				want = 1
			}
			if img.At(0, y, x) != want {
				t.Fatalf("raster (%d,%d)=%v want %v", y, x, img.At(0, y, x), want)
			}
		}
	}
}

func TestRasterizeTranslationConsistency(t *testing.T) {
	// Shifting both the shape and the window by a pitch multiple must
	// produce an identical raster.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pitch := 8
		l1 := New(Rect{0, 0, 256, 256})
		l2 := New(Rect{0, 0, 512, 512})
		shift := (1 + rng.Intn(10)) * pitch
		for i := 0; i < 5; i++ {
			x0, y0 := rng.Intn(200), rng.Intn(200)
			w, h := 4+rng.Intn(40), 4+rng.Intn(40)
			l1.Add(Rect{x0, y0, x0 + w, y0 + h})
			l2.Add(Rect{x0 + shift, y0 + shift, x0 + w + shift, y0 + h + shift})
		}
		a := l1.Rasterize(Rect{0, 0, 256, 256}, float64(pitch))
		b := l2.Rasterize(Rect{shift, shift, 256 + shift, 256 + shift}, float64(pitch))
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRasterizeValuesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := New(Rect{0, 0, 300, 300})
	for i := 0; i < 20; i++ {
		x0, y0 := rng.Intn(250), rng.Intn(250)
		l.Add(Rect{x0, y0, x0 + 10 + rng.Intn(40), y0 + 10 + rng.Intn(40)})
	}
	img := l.Rasterize(Rect{0, 0, 300, 300}, 5)
	for _, v := range img.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("raster value %v not binary", v)
		}
	}
}

func TestRasterizeOverlapIsUnion(t *testing.T) {
	l := New(Rect{0, 0, 20, 20})
	l.Add(Rect{0, 0, 20, 20})
	l.Add(Rect{5, 5, 15, 15}) // fully inside the first
	img := l.Rasterize(Rect{0, 0, 20, 20}, 10)
	for _, v := range img.Data() {
		if v != 1 {
			t.Fatalf("overlapping shapes must still raster to 1, got %v", v)
		}
	}
}

func TestDensity(t *testing.T) {
	l := New(Rect{0, 0, 100, 100})
	l.Add(Rect{0, 0, 50, 100}) // half covered
	d := l.Density(10)
	if d < 0.45 || d > 0.55 {
		t.Fatalf("density %v want ~0.5", d)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	l := New(Rect{0, 0, 500, 400})
	l.Add(Rect{10, 10, 60, 30})
	l.Add(Rect{100, 50, 140, 300})
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bounds != l.Bounds || len(got.Rects) != len(l.Rects) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range l.Rects {
		if got.Rects[i] != l.Rects[i] {
			t.Fatalf("rect %d: %v vs %v", i, got.Rects[i], l.Rects[i])
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		"RECT 0 0 10 10\n",    // RECT before BOUNDS
		"BOUNDS 0 0 ten 10\n", // non-numeric
		"FOO 0 0 1 1\n",       // unknown record
		"",                    // empty input
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nBOUNDS 0 0 10 10\n# shape\nRECT 1 1 2 2\n"
	l, err := Load(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Rects) != 1 {
		t.Fatalf("rects: %v", l.Rects)
	}
}

func TestSortedRectsDeterministic(t *testing.T) {
	l1 := New(Rect{0, 0, 100, 100})
	l2 := New(Rect{0, 0, 100, 100})
	rs := []Rect{{1, 5, 3, 7}, {0, 2, 4, 4}, {9, 2, 12, 6}}
	for _, r := range rs {
		l1.Add(r)
	}
	for i := len(rs) - 1; i >= 0; i-- {
		l2.Add(rs[i])
	}
	a, b := l1.SortedRects(), l2.SortedRects()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sorted order differs: %v vs %v", a, b)
		}
	}
	if a[0] != (Rect{0, 2, 4, 4}) {
		t.Fatalf("sort key wrong: %v", a)
	}
}

func TestGeomConversion(t *testing.T) {
	g := R(1, 2, 5, 9).Geom()
	if g.X0 != 1 || g.Y1 != 9 || g.W() != 4 || g.H() != 7 {
		t.Fatalf("geom conversion: %v", g)
	}
}

func TestDensityZeroGridDefaults(t *testing.T) {
	l := New(R(0, 0, 100, 100))
	l.Add(R(0, 0, 100, 100))
	if d := l.Density(0); d < 0.99 {
		t.Fatalf("full coverage density %v", d)
	}
}

func TestRasterizePanicsOnBadArgs(t *testing.T) {
	l := New(R(0, 0, 100, 100))
	for _, fn := range []func(){
		func() { l.Rasterize(R(0, 0, 100, 100), 0) },
		func() { l.Rasterize(R(0, 0, 0, 0), 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWindowEmptyIntersection(t *testing.T) {
	l := New(R(0, 0, 100, 100))
	l.Add(R(10, 10, 20, 20))
	w := l.Window(R(50, 50, 90, 90))
	if len(w.Rects) != 0 {
		t.Fatalf("disjoint window picked up %v", w.Rects)
	}
}
