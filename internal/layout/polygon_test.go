package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lShape() Polygon {
	// An L: 100 wide, 100 tall, with the top-right 60×60 notch removed.
	return Polygon{Vertices: []Point{
		{0, 0}, {100, 0}, {100, 40}, {40, 40}, {40, 100}, {0, 100},
	}}
}

func TestPolygonValidate(t *testing.T) {
	if err := lShape().Validate(); err != nil {
		t.Fatalf("valid L rejected: %v", err)
	}
	bad := []Polygon{
		{Vertices: []Point{{0, 0}, {10, 0}, {10, 10}}},                          // too few
		{Vertices: []Point{{0, 0}, {10, 5}, {10, 10}, {0, 10}}},                 // diagonal edge
		{Vertices: []Point{{0, 0}, {5, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 5}}}, // collinear run
		{Vertices: []Point{{0, 0}, {0, 0}, {10, 0}, {10, 10}}},                  // zero edge
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("bad polygon %d accepted", i)
		}
	}
}

func TestDecomposeLShape(t *testing.T) {
	rs, err := lShape().Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// Area must equal 100*40 + 40*60 = 6400.
	area := 0
	for _, r := range rs {
		area += r.W() * r.H()
		if r.Empty() {
			t.Fatalf("degenerate rect %v", r)
		}
	}
	if area != 6400 {
		t.Fatalf("area %d want 6400", area)
	}
	// Non-overlap.
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].Overlaps(rs[j]) {
				t.Fatalf("rects overlap: %v %v", rs[i], rs[j])
			}
		}
	}
}

func TestDecomposeRectangleIsItself(t *testing.T) {
	r := R(3, 5, 20, 17)
	rs, err := RectPolygon(r).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0] != r {
		t.Fatalf("rect decomposition %v want [%v]", rs, r)
	}
}

func TestDecomposeRasterEquivalence(t *testing.T) {
	// Property: rasterizing the decomposition equals a point-in-polygon
	// rasterization of the original.
	p := Polygon{Vertices: []Point{
		{0, 0}, {60, 0}, {60, 20}, {40, 20}, {40, 40}, {80, 40},
		{80, 80}, {20, 80}, {20, 60}, {0, 60},
	}}
	rs, err := p.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	l := New(R(0, 0, 80, 80))
	for _, r := range rs {
		l.Add(r)
	}
	img := l.Rasterize(R(0, 0, 80, 80), 4)
	for y := 0; y < img.Dim(1); y++ {
		for x := 0; x < img.Dim(2); x++ {
			// Pixel centre in nm.
			cx, cy := (float64(x)+0.5)*4, (float64(y)+0.5)*4
			want := float32(0)
			if pointInPolygon(p, cx, cy) {
				want = 1
			}
			if img.At(0, y, x) != want {
				t.Fatalf("pixel (%d,%d): raster %v, polygon %v", y, x, img.At(0, y, x), want)
			}
		}
	}
}

// pointInPolygon is an even-odd ray-casting reference implementation.
func pointInPolygon(p Polygon, x, y float64) bool {
	in := false
	n := len(p.Vertices)
	for i := 0; i < n; i++ {
		a := p.Vertices[i]
		b := p.Vertices[(i+1)%n]
		ay, by := float64(a.Y), float64(b.Y)
		ax, bx := float64(a.X), float64(b.X)
		if (ay > y) != (by > y) {
			xCross := ax + (y-ay)/(by-ay)*(bx-ax)
			if x < xCross {
				in = !in
			}
		}
	}
	return in
}

func TestDecomposeRandomStaircases(t *testing.T) {
	// Property over random staircase polygons: decomposition area equals
	// the shoelace area and rectangles never overlap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := staircase(rng)
		rs, err := p.Decompose()
		if err != nil {
			return false
		}
		area := 0
		for _, r := range rs {
			area += r.W() * r.H()
		}
		if area != shoelace(p) {
			return false
		}
		for i := range rs {
			for j := i + 1; j < len(rs); j++ {
				if rs[i].Overlaps(rs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// staircase builds a monotone staircase polygon with 2..6 random steps.
func staircase(rng *rand.Rand) Polygon {
	steps := 2 + rng.Intn(5)
	xs := make([]int, steps)
	ys := make([]int, steps)
	x, y := 0, 0
	for i := 0; i < steps; i++ {
		x += 5 + rng.Intn(30)
		y += 5 + rng.Intn(30)
		xs[i], ys[i] = x, y
	}
	// Build the boundary: right along the top of each step, then back.
	var v []Point
	v = append(v, Point{0, 0})
	prevY := 0
	for i := 0; i < steps; i++ {
		v = append(v, Point{xs[i], prevY})
		v = append(v, Point{xs[i], ys[i]})
		prevY = ys[i]
	}
	v = append(v, Point{0, prevY})
	return Polygon{Vertices: v}
}

// shoelace computes the polygon area.
func shoelace(p Polygon) int {
	n := len(p.Vertices)
	sum := 0
	for i := 0; i < n; i++ {
		a := p.Vertices[i]
		b := p.Vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

func TestAddPolygon(t *testing.T) {
	l := New(R(0, 0, 200, 200))
	if err := l.AddPolygon(lShape()); err != nil {
		t.Fatal(err)
	}
	if len(l.Rects) == 0 {
		t.Fatal("no rects added")
	}
	if err := l.AddPolygon(Polygon{Vertices: []Point{{0, 0}, {1, 1}, {2, 0}, {1, 2}}}); err == nil {
		t.Fatal("invalid polygon accepted")
	}
}

func TestDecomposeMergesSlabs(t *testing.T) {
	// A plain rectangle expressed with an extra collinear... no — use a
	// plus-shape: the central column spans all three slabs and must merge
	// into one tall rect.
	plus := Polygon{Vertices: []Point{
		{20, 0}, {40, 0}, {40, 20}, {60, 20}, {60, 40}, {40, 40},
		{40, 60}, {20, 60}, {20, 40}, {0, 40}, {0, 20}, {20, 20},
	}}
	rs, err := plus.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal decomposition of a plus is 3 rects; slab merging must reach
	// it (one 20×60 column + two 20×20 side squares).
	if len(rs) != 3 {
		t.Fatalf("plus decomposed into %d rects: %v", len(rs), rs)
	}
}
