package layout

import "sort"

// Diff computes the dirty regions between two layouts: the set of
// rectangles whose presence differs between old and new. It is the input
// to incremental rescanning (hsd.RescanLayoutMegatile): a megatile whose
// halo-inclusive raster window overlaps no dirty rect is guaranteed to
// rasterize to the same bytes under both layouts, so its cached
// detections remain valid.
//
// Semantics:
//
//   - Shapes are compared as a multiset of canonical rects. Adding,
//     removing, or moving a shape dirties exactly the rects involved
//     (the old position and the new one). Reordering Rects or splitting
//     the same geometry into identical rect lists in different order is
//     NOT a difference — Diff is insertion-order independent.
//   - Duplicate rects count: going from two copies of a rect to one is a
//     difference (union semantics make it render identically today, but
//     keeping the multiset contract means Diff never has to reason about
//     coverage, only identity — and a false positive only costs a
//     rescan, never correctness).
//   - A bounds change dirties everything: the union of both bounds is
//     returned as a single rect. Bounds feed window clipping and
//     density, so no per-shape reasoning is sound across a bounds edit.
//
// The returned rects are canonical, deduplicated, sorted by
// (Y0, X0, X1, Y1), and expressed in the shared chip coordinate frame.
// An empty slice means the layouts rasterize identically at any pitch
// over any window. Diff(nil, nil) is empty; a single nil side is treated
// as an empty layout with zero bounds.
func Diff(old, new *Layout) []Rect {
	if old == nil {
		old = &Layout{}
	}
	if new == nil {
		new = &Layout{}
	}
	if old.Bounds.Canon() != new.Bounds.Canon() {
		u := boundsUnion(old.Bounds.Canon(), new.Bounds.Canon())
		if u.Empty() {
			return nil
		}
		return []Rect{u}
	}

	counts := make(map[Rect]int, len(old.Rects)+len(new.Rects))
	for _, r := range old.Rects {
		r = r.Canon()
		if !r.Empty() {
			counts[r]++
		}
	}
	for _, r := range new.Rects {
		r = r.Canon()
		if !r.Empty() {
			counts[r]--
		}
	}
	var dirty []Rect
	for r, n := range counts {
		if n != 0 {
			dirty = append(dirty, r)
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		a, b := dirty[i], dirty[j]
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
	return dirty
}

// boundsUnion returns the smallest rect covering both inputs, ignoring
// an empty side.
func boundsUnion(a, b Rect) Rect {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	return Rect{
		X0: min(a.X0, b.X0),
		Y0: min(a.Y0, b.Y0),
		X1: max(a.X1, b.X1),
		Y1: max(a.Y1, b.Y1),
	}
}

// AnyDirty reports whether any rect in dirty overlaps w. It is the
// invalidation predicate for one megatile: w must be the tile's full
// raster window (halo bands included), so an edit that touches only a
// neighbour-owned halo strip still invalidates this tile — the halo
// bytes feed its forward pass.
func AnyDirty(dirty []Rect, w Rect) bool {
	for _, d := range dirty {
		if d.Overlaps(w) {
			return true
		}
	}
	return false
}
