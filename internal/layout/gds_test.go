package layout

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestGDSRoundtrip(t *testing.T) {
	l := New(R(0, 0, 1000, 800))
	l.Add(R(10, 20, 110, 52))
	l.Add(R(300, 100, 340, 700))
	l.Add(R(0, 0, 1000, 32))
	var buf bytes.Buffer
	if err := l.WriteGDS(&buf, "TOP"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rects) != len(l.Rects) {
		t.Fatalf("rect count %d want %d", len(got.Rects), len(l.Rects))
	}
	for i := range l.Rects {
		if got.Rects[i] != l.Rects[i] {
			t.Fatalf("rect %d: %v want %v", i, got.Rects[i], l.Rects[i])
		}
	}
	// Bounds recomputed as the shapes' bounding box.
	if got.Bounds != (Rect{0, 0, 1000, 700}) {
		t.Fatalf("bounds %v", got.Bounds)
	}
}

func TestGDSDeterministicOutput(t *testing.T) {
	l := New(R(0, 0, 100, 100))
	l.Add(R(1, 2, 3, 4))
	var a, b bytes.Buffer
	if err := l.WriteGDS(&a, ""); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteGDS(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("GDS output must be byte-identical across runs")
	}
}

func TestGDSStreamStructure(t *testing.T) {
	l := New(R(0, 0, 10, 10))
	l.Add(R(0, 0, 4, 4))
	var buf bytes.Buffer
	if err := l.WriteGDS(&buf, "TOP"); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// First record: HEADER (0x0002), length 6, version 600.
	if binary.BigEndian.Uint16(data[0:]) != 6 || binary.BigEndian.Uint16(data[2:]) != gdsHeader {
		t.Fatalf("bad first record: % x", data[:6])
	}
	if binary.BigEndian.Uint16(data[4:]) != 600 {
		t.Fatalf("stream version %d", binary.BigEndian.Uint16(data[4:]))
	}
	// Last record: ENDLIB.
	if binary.BigEndian.Uint16(data[len(data)-2:]) != gdsEndLib {
		t.Fatal("stream must end with ENDLIB")
	}
}

func TestGDSRejectsNonRectangular(t *testing.T) {
	// Hand-build a stream with a triangular boundary.
	var buf bytes.Buffer
	w := func(rtype uint16, payload []byte) {
		binary.Write(&buf, binary.BigEndian, uint16(4+len(payload)))
		binary.Write(&buf, binary.BigEndian, rtype)
		buf.Write(payload)
	}
	w(gdsHeader, []byte{0x02, 0x58})
	xy := make([]byte, 0, 6*8)
	for _, p := range [][2]int32{{0, 0}, {10, 0}, {5, 10}} {
		var b [8]byte
		binary.BigEndian.PutUint32(b[0:], uint32(p[0]))
		binary.BigEndian.PutUint32(b[4:], uint32(p[1]))
		xy = append(xy, b[:]...)
	}
	w(gdsXY, xy)
	w(gdsEndLib, nil)
	if _, err := ReadGDS(&buf); err == nil {
		t.Fatal("triangle boundary must be rejected")
	}
}

func TestGDSRejectsGarbage(t *testing.T) {
	if _, err := ReadGDS(bytes.NewReader([]byte{0, 0, 0, 0, 1, 2, 3})); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadGDS(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must be rejected")
	}
}

func TestGDSEmptyLayout(t *testing.T) {
	l := New(R(0, 0, 100, 100))
	var buf bytes.Buffer
	if err := l.WriteGDS(&buf, "EMPTY"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rects) != 0 {
		t.Fatalf("phantom rects: %v", got.Rects)
	}
}

func TestGDSReal8Encoding(t *testing.T) {
	// 1e-9 in excess-64: verify by decoding back.
	for _, v := range []float64{1e-9, 1e-3, 1.0, 0.5, 1234.5} {
		b := gdsReal8(v)
		got := decodeReal8(b)
		if math.Abs(got-v) > 1e-12*math.Max(1, v) {
			t.Fatalf("real8(%v) decoded to %v", v, got)
		}
	}
	zero := gdsReal8(0)
	if decodeReal8(zero) != 0 {
		t.Fatal("zero encoding")
	}
}

// decodeReal8 is a reference decoder for the GDS excess-64 real format.
func decodeReal8(b []byte) float64 {
	if len(b) != 8 {
		return math.NaN()
	}
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7f) - 64
	var mant float64
	for i := 1; i < 8; i++ {
		mant = mant*256 + float64(b[i])
	}
	mant /= math.Pow(2, 56)
	return sign * mant * math.Pow(16, float64(exp))
}
