package layout

import (
	"fmt"
	"sort"
)

// Rectilinear polygon support. Real mask data is polygonal; detectors and
// the litho proxy consume rectangles, so polygons are decomposed into
// horizontal slabs on insertion. The decomposition is exact for any
// simple rectilinear polygon (axis-aligned edges, no self-intersection).

// Point is a vertex on the nm grid.
type Point struct {
	X, Y int
}

// Polygon is a simple rectilinear polygon given as its vertex ring
// (either orientation, without repeating the first vertex at the end).
type Polygon struct {
	Vertices []Point
}

// Validate checks rectilinearity and basic well-formedness.
func (p Polygon) Validate() error {
	n := len(p.Vertices)
	if n < 4 {
		return fmt.Errorf("layout: polygon needs at least 4 vertices, got %d", n)
	}
	if n%2 != 0 {
		return fmt.Errorf("layout: rectilinear polygon must have an even vertex count, got %d", n)
	}
	for i := 0; i < n; i++ {
		a := p.Vertices[i]
		b := p.Vertices[(i+1)%n]
		if a == b {
			return fmt.Errorf("layout: zero-length edge at vertex %d", i)
		}
		if a.X != b.X && a.Y != b.Y {
			return fmt.Errorf("layout: edge %d–%d is not axis-aligned", i, (i+1)%n)
		}
	}
	// Alternating horizontal/vertical edges.
	for i := 0; i < n; i++ {
		a := p.Vertices[i]
		b := p.Vertices[(i+1)%n]
		c := p.Vertices[(i+2)%n]
		abHoriz := a.Y == b.Y
		bcHoriz := b.Y == c.Y
		if abHoriz == bcHoriz {
			return fmt.Errorf("layout: consecutive parallel edges at vertex %d (merge collinear vertices)", (i+1)%n)
		}
	}
	return nil
}

// BBox returns the polygon's bounding box.
func (p Polygon) BBox() Rect {
	b := Rect{X0: p.Vertices[0].X, Y0: p.Vertices[0].Y, X1: p.Vertices[0].X, Y1: p.Vertices[0].Y}
	for _, v := range p.Vertices[1:] {
		if v.X < b.X0 {
			b.X0 = v.X
		}
		if v.X > b.X1 {
			b.X1 = v.X
		}
		if v.Y < b.Y0 {
			b.Y0 = v.Y
		}
		if v.Y > b.Y1 {
			b.Y1 = v.Y
		}
	}
	return b
}

// Decompose slices the polygon into non-overlapping rectangles using
// horizontal slab decomposition: between each pair of consecutive
// distinct Y coordinates, the polygon's interior is a set of disjoint X
// intervals obtained from the vertical edges crossing the slab.
func (p Polygon) Decompose() ([]Rect, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Vertices)
	// Collect vertical edges and slab boundaries.
	type vedge struct {
		x, y0, y1 int
	}
	var edges []vedge
	ys := make([]int, 0, n)
	for i := 0; i < n; i++ {
		a := p.Vertices[i]
		b := p.Vertices[(i+1)%n]
		if a.X == b.X {
			y0, y1 := a.Y, b.Y
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			edges = append(edges, vedge{x: a.X, y0: y0, y1: y1})
		}
		ys = append(ys, a.Y)
	}
	sort.Ints(ys)
	ys = dedupInts(ys)

	var out []Rect
	for s := 0; s+1 < len(ys); s++ {
		yLo, yHi := ys[s], ys[s+1]
		mid := yLo // any y strictly inside the slab works; use [yLo,yHi) interior test at yLo..
		// Crossing edges: those spanning the whole slab.
		var xs []int
		for _, e := range edges {
			if e.y0 <= mid && e.y1 >= yHi {
				xs = append(xs, e.x)
			}
		}
		sort.Ints(xs)
		if len(xs)%2 != 0 {
			return nil, fmt.Errorf("layout: odd crossing count in slab [%d,%d): self-intersecting polygon?", yLo, yHi)
		}
		for i := 0; i+1 < len(xs); i += 2 {
			out = append(out, Rect{X0: xs[i], Y0: yLo, X1: xs[i+1], Y1: yHi})
		}
	}
	return mergeVertical(out), nil
}

// mergeVertical coalesces vertically adjacent rectangles with identical X
// extents, undoing unnecessary slab splits.
func mergeVertical(rs []Rect) []Rect {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].X0 != rs[j].X0 {
			return rs[i].X0 < rs[j].X0
		}
		if rs[i].X1 != rs[j].X1 {
			return rs[i].X1 < rs[j].X1
		}
		return rs[i].Y0 < rs[j].Y0
	})
	var out []Rect
	for _, r := range rs {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.X0 == r.X0 && last.X1 == r.X1 && last.Y1 == r.Y0 {
				last.Y1 = r.Y1
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// AddPolygon decomposes a rectilinear polygon and adds its rectangles.
func (l *Layout) AddPolygon(p Polygon) error {
	rs, err := p.Decompose()
	if err != nil {
		return err
	}
	for _, r := range rs {
		l.Add(r)
	}
	return nil
}

// RectPolygon returns the 4-vertex polygon of a rectangle, a convenience
// for round-trip tests and GDS interchange.
func RectPolygon(r Rect) Polygon {
	r = r.Canon()
	return Polygon{Vertices: []Point{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}}
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
