package layout

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseCheckedMatchesLoad(t *testing.T) {
	l := New(R(0, 0, 1000, 800))
	l.Add(R(10, 10, 200, 60))
	l.Add(R(300, 100, 350, 700))
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	viaLoad, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	viaChecked, err := ParseChecked(bytes.NewReader(buf.Bytes()), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if viaChecked.Bounds != viaLoad.Bounds || len(viaChecked.Rects) != len(viaLoad.Rects) {
		t.Fatalf("ParseChecked %+v differs from Load %+v", viaChecked, viaLoad)
	}
	for i := range viaLoad.Rects {
		if viaChecked.Rects[i] != viaLoad.Rects[i] {
			t.Fatalf("rect %d: %v vs %v", i, viaChecked.Rects[i], viaLoad.Rects[i])
		}
	}
}

func TestParseCheckedRejections(t *testing.T) {
	cases := []struct {
		name, input, want string
		lim               Limits
	}{
		{"empty input", "", "no BOUNDS", Limits{}},
		{"garbage", "hello world", "line 1", Limits{}},
		{"rect before bounds", "RECT 0 0 1 1", "line 1", Limits{}},
		{"unknown record", "BOUNDS 0 0 9 9\nBLOB 1 2 3 4", "unknown record", Limits{}},
		{"short record", "BOUNDS 0 0 9", "line 1", Limits{}},
		{"empty bounds", "BOUNDS 5 5 5 9", "empty BOUNDS", Limits{}},
		{"oversized bounds", "BOUNDS 0 0 99999 10", "exceed", Limits{MaxDimNM: 1000}},
		{"too many rects", "BOUNDS 0 0 99 99\nRECT 0 0 1 1\nRECT 1 1 2 2\nRECT 2 2 3 3",
			"more than 2 RECT", Limits{MaxRects: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseChecked(strings.NewReader(tc.input), tc.lim)
			if err == nil {
				t.Fatalf("ParseChecked accepted %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadStillAcceptsDegenerateBounds(t *testing.T) {
	// The trusted Load path keeps its historical laxity: empty bounds
	// parse fine (tools construct such layouts mid-pipeline).
	l, err := Load(strings.NewReader("BOUNDS 0 0 0 0"))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Bounds.Empty() {
		t.Fatalf("bounds %v", l.Bounds)
	}
}
