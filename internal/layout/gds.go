package layout

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// GDSII stream-format support, limited to the subset a single-layer
// Manhattan metal layout needs: one library, one structure, BOUNDARY
// elements with rectangular 5-point XY rings. This is enough to exchange
// benchmark regions with commercial layout viewers. All coordinates are
// written in database units of 1 nm (UNITS record: 1e-3 user units per
// db unit, 1e-9 metres per db unit).

// GDS record types (subset).
const (
	gdsHeader   = 0x0002
	gdsBgnLib   = 0x0102
	gdsLibName  = 0x0206
	gdsUnits    = 0x0305
	gdsEndLib   = 0x0400
	gdsBgnStr   = 0x0502
	gdsStrName  = 0x0606
	gdsEndStr   = 0x0700
	gdsBoundary = 0x0800
	gdsLayer    = 0x0D02
	gdsDatatype = 0x0E02
	gdsXY       = 0x1003
	gdsEndEl    = 0x1100
)

// gdsLayerNumber is the layer all shapes are written to.
const gdsLayerNumber = 10

// WriteGDS serializes the layout as a GDSII stream with one structure
// named structName (default "TOP" when empty).
func (l *Layout) WriteGDS(w io.Writer, structName string) error {
	if structName == "" {
		structName = "TOP"
	}
	bw := bufio.NewWriter(w)
	now := time.Date(2019, 6, 2, 0, 0, 0, 0, time.UTC) // DAC'19; fixed for determinism
	ts := gdsTimestamp(now)

	rec := func(rtype uint16, payload []byte) error {
		length := uint16(4 + len(payload))
		if err := binary.Write(bw, binary.BigEndian, length); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, rtype); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	i16 := func(vs ...int16) []byte {
		b := make([]byte, 2*len(vs))
		for i, v := range vs {
			binary.BigEndian.PutUint16(b[2*i:], uint16(v))
		}
		return b
	}
	i32 := func(vs ...int32) []byte {
		b := make([]byte, 4*len(vs))
		for i, v := range vs {
			binary.BigEndian.PutUint32(b[4*i:], uint32(v))
		}
		return b
	}

	if err := rec(gdsHeader, i16(600)); err != nil { // stream version 6
		return err
	}
	if err := rec(gdsBgnLib, append(ts, ts...)); err != nil {
		return err
	}
	if err := rec(gdsLibName, gdsString("RHSD")); err != nil {
		return err
	}
	units := append(gdsReal8(1e-3), gdsReal8(1e-9)...)
	if err := rec(gdsUnits, units); err != nil {
		return err
	}
	if err := rec(gdsBgnStr, append(ts, ts...)); err != nil {
		return err
	}
	if err := rec(gdsStrName, gdsString(structName)); err != nil {
		return err
	}
	for _, r := range l.Rects {
		if err := rec(gdsBoundary, nil); err != nil {
			return err
		}
		if err := rec(gdsLayer, i16(gdsLayerNumber)); err != nil {
			return err
		}
		if err := rec(gdsDatatype, i16(0)); err != nil {
			return err
		}
		// Closed 5-point rectangle ring, counter-clockwise.
		xy := i32(
			int32(r.X0), int32(r.Y0),
			int32(r.X1), int32(r.Y0),
			int32(r.X1), int32(r.Y1),
			int32(r.X0), int32(r.Y1),
			int32(r.X0), int32(r.Y0),
		)
		if err := rec(gdsXY, xy); err != nil {
			return err
		}
		if err := rec(gdsEndEl, nil); err != nil {
			return err
		}
	}
	if err := rec(gdsEndStr, nil); err != nil {
		return err
	}
	if err := rec(gdsEndLib, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadGDS parses a GDSII stream written by WriteGDS (or any stream whose
// BOUNDARY elements are axis-aligned rectangles). Non-rectangular
// boundaries are rejected with an error; unknown records are skipped.
// The layout bounds are the bounding box of all shapes.
func ReadGDS(r io.Reader) (*Layout, error) {
	br := bufio.NewReader(r)
	var rects []Rect
	sawHeader := false
	for {
		var length uint16
		if err := binary.Read(br, binary.BigEndian, &length); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		var rtype uint16
		if err := binary.Read(br, binary.BigEndian, &rtype); err != nil {
			return nil, err
		}
		if length < 4 {
			return nil, fmt.Errorf("layout: corrupt GDS record length %d", length)
		}
		payload := make([]byte, length-4)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, err
		}
		switch rtype {
		case gdsHeader:
			sawHeader = true
		case gdsXY:
			if len(payload)%8 != 0 {
				return nil, fmt.Errorf("layout: odd GDS XY payload %d bytes", len(payload))
			}
			n := len(payload) / 8
			xs := make([]int32, n)
			ys := make([]int32, n)
			for i := 0; i < n; i++ {
				xs[i] = int32(binary.BigEndian.Uint32(payload[8*i:]))
				ys[i] = int32(binary.BigEndian.Uint32(payload[8*i+4:]))
			}
			rect, err := ringToRect(xs, ys)
			if err != nil {
				return nil, err
			}
			rects = append(rects, rect)
		case gdsEndLib:
			if !sawHeader {
				return nil, fmt.Errorf("layout: GDS stream missing HEADER")
			}
			return layoutFromRects(rects), nil
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("layout: not a GDS stream")
	}
	return layoutFromRects(rects), nil
}

func layoutFromRects(rects []Rect) *Layout {
	if len(rects) == 0 {
		return New(Rect{})
	}
	b := rects[0]
	for _, r := range rects[1:] {
		if r.X0 < b.X0 {
			b.X0 = r.X0
		}
		if r.Y0 < b.Y0 {
			b.Y0 = r.Y0
		}
		if r.X1 > b.X1 {
			b.X1 = r.X1
		}
		if r.Y1 > b.Y1 {
			b.Y1 = r.Y1
		}
	}
	l := New(b)
	for _, r := range rects {
		l.Add(r)
	}
	return l
}

// ringToRect validates that a 5-point closed ring (or 4 distinct corners)
// is an axis-aligned rectangle and returns it.
func ringToRect(xs, ys []int32) (Rect, error) {
	n := len(xs)
	if n == 5 && xs[0] == xs[4] && ys[0] == ys[4] {
		n = 4
	}
	if n != 4 {
		return Rect{}, fmt.Errorf("layout: GDS boundary with %d points is not a rectangle", len(xs))
	}
	minX, minY := xs[0], ys[0]
	maxX, maxY := xs[0], ys[0]
	for i := 1; i < n; i++ {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	// Every vertex must sit on a corner of the bounding box.
	for i := 0; i < n; i++ {
		if (xs[i] != minX && xs[i] != maxX) || (ys[i] != minY && ys[i] != maxY) {
			return Rect{}, fmt.Errorf("layout: GDS boundary is not axis-aligned rectangular")
		}
	}
	return Rect{X0: int(minX), Y0: int(minY), X1: int(maxX), Y1: int(maxY)}, nil
}

// gdsString pads to even length as the stream format requires.
func gdsString(s string) []byte {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0)
	}
	return b
}

// gdsTimestamp encodes a BGNLIB/BGNSTR time as six int16s.
func gdsTimestamp(t time.Time) []byte {
	b := make([]byte, 12)
	vals := []int{t.Year(), int(t.Month()), t.Day(), t.Hour(), t.Minute(), t.Second()}
	for i, v := range vals {
		binary.BigEndian.PutUint16(b[2*i:], uint16(v))
	}
	return b
}

// gdsReal8 encodes an 8-byte GDS excess-64 real.
func gdsReal8(v float64) []byte {
	b := make([]byte, 8)
	if v == 0 {
		return b
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	mant := uint64(v * math.Pow(2, 56))
	b[0] = sign | byte(exp+64)
	for i := 1; i < 8; i++ {
		b[i] = byte(mant >> uint(8*(7-i)))
	}
	return b
}
