// Package layout models Manhattan VLSI layout geometry — the metal-layer
// rectangles a hotspot detector consumes — together with rasterization to
// image tensors and window/clip extraction.
//
// Coordinates are integer nanometres on a design grid. The raster
// convention maps layout x to image columns and layout y to image rows, at
// a caller-chosen pitch of nanometres per pixel, so a 256×256 image at
// 10 nm/px covers a 2.56 µm square region as in the paper's setup (§4).
package layout

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"rhsd/internal/geom"
	"rhsd/internal/tensor"
)

// rasterizedPixels counts every pixel allocated by Rasterize since the
// last reset, across all goroutines. It instruments redundant-raster
// regressions: a full-chip scan that re-rasterizes overlap strips per
// tile shows up as a pixel count well above the window area, while the
// megatile scan stays within window area + seam overlap (pinned by
// TestMegatileRasterizesWindowOnce in internal/hsd).
var rasterizedPixels atomic.Int64

// RasterizedPixels reports the pixels rasterized since the last reset.
func RasterizedPixels() int64 { return rasterizedPixels.Load() }

// ResetRasterizedPixels zeroes the rasterized-pixel counter.
func ResetRasterizedPixels() { rasterizedPixels.Store(0) }

// Rect is an axis-aligned rectangle on the nanometre grid, spanning
// [X0,X1) × [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a Rect.
func R(x0, y0, x1, y1 int) Rect { return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// Canon returns r with coordinates ordered so X0<=X1 and Y0<=Y1.
func (r Rect) Canon() Rect {
	if r.X0 > r.X1 {
		r.X0, r.X1 = r.X1, r.X0
	}
	if r.Y0 > r.Y1 {
		r.Y0, r.Y1 = r.Y1, r.Y0
	}
	return r
}

// W returns the width in nm.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the height in nm.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Empty reports whether r has no interior.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Overlaps reports whether r and o share interior area.
func (r Rect) Overlaps(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Geom converts to a float rectangle.
func (r Rect) Geom() geom.Rect {
	return geom.Rect{X0: float64(r.X0), Y0: float64(r.Y0), X1: float64(r.X1), Y1: float64(r.Y1)}
}

// Layout is a single-layer Manhattan layout: a bag of metal rectangles
// within a bounding die area.
type Layout struct {
	// Bounds is the die (or region) extent in nm.
	Bounds Rect
	// Rects are the metal shapes. Overlapping rectangles are allowed and
	// union semantics apply (as in real mask data).
	Rects []Rect
}

// New creates an empty layout with the given bounds.
func New(bounds Rect) *Layout {
	return &Layout{Bounds: bounds.Canon()}
}

// Add appends a shape (canonicalized). Degenerate rectangles are ignored.
func (l *Layout) Add(r Rect) {
	r = r.Canon()
	if r.Empty() {
		return
	}
	l.Rects = append(l.Rects, r)
}

// Window returns the shapes intersecting the window w, clipped to it and
// re-expressed in window-relative coordinates.
func (l *Layout) Window(w Rect) *Layout {
	w = w.Canon()
	out := New(Rect{0, 0, w.W(), w.H()})
	for _, r := range l.Rects {
		if !r.Overlaps(w) {
			continue
		}
		c := Rect{
			X0: max(r.X0, w.X0) - w.X0,
			Y0: max(r.Y0, w.Y0) - w.Y0,
			X1: min(r.X1, w.X1) - w.X0,
			Y1: min(r.Y1, w.Y1) - w.Y0,
		}
		out.Add(c)
	}
	return out
}

// Density returns the fraction of the bounding area covered by metal,
// computed on a coarse scan grid. It is used by the synthetic benchmark
// generator to verify case statistics.
func (l *Layout) Density(gridNM int) float64 {
	if gridNM <= 0 {
		gridNM = 1
	}
	w := (l.Bounds.W() + gridNM - 1) / gridNM
	h := (l.Bounds.H() + gridNM - 1) / gridNM
	if w == 0 || h == 0 {
		return 0
	}
	img := l.Rasterize(l.Bounds, float64(gridNM))
	return img.Sum() / float64(w*h)
}

// Rasterize renders the shapes inside window into a [1, H, W] tensor with
// value 1 for metal and 0 for space, at pitch nm per pixel. A pixel is
// metal when its centre lies inside any shape, which makes the raster
// translation-consistent for shifts that are multiples of the pitch.
func (l *Layout) Rasterize(window Rect, pitch float64) *tensor.Tensor {
	window = window.Canon()
	if pitch <= 0 {
		panic("layout: Rasterize requires positive pitch")
	}
	wpx := int(float64(window.W())/pitch + 0.5)
	hpx := int(float64(window.H())/pitch + 0.5)
	if wpx <= 0 || hpx <= 0 {
		panic(fmt.Sprintf("layout: window %v too small for pitch %v", window, pitch))
	}
	rasterizedPixels.Add(int64(wpx) * int64(hpx))
	img := tensor.New(1, hpx, wpx)
	data := img.Data()
	for _, r := range l.Rects {
		if !r.Overlaps(window) {
			continue
		}
		// Pixel p's centre sits at (p+0.5)*pitch window-relative; the pixel
		// is metal when r0 <= centre < r1, i.e. p in
		// [ceil(r0/pitch - 0.5), ceil(r1/pitch - 0.5)).
		y0 := pixelLo(float64(r.Y0-window.Y0), pitch)
		y1 := pixelLo(float64(r.Y1-window.Y0), pitch)
		x0 := pixelLo(float64(r.X0-window.X0), pitch)
		x1 := pixelLo(float64(r.X1-window.X0), pitch)
		y0, y1 = clampRange(y0, y1, hpx)
		x0, x1 = clampRange(x0, x1, wpx)
		for y := y0; y < y1; y++ {
			row := data[y*wpx : (y+1)*wpx]
			for x := x0; x < x1; x++ {
				row[x] = 1
			}
		}
	}
	return img
}

// pixelLo returns the first pixel whose centre (p+0.5)*pitch >= coord.
func pixelLo(coord, pitch float64) int {
	return int(math.Ceil(coord/pitch - 0.5))
}

func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Save writes the layout in a simple line-oriented text format:
//
//	BOUNDS x0 y0 x1 y1
//	RECT x0 y0 x1 y1
//	...
func (l *Layout) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "BOUNDS %d %d %d %d\n",
		l.Bounds.X0, l.Bounds.Y0, l.Bounds.X1, l.Bounds.Y1); err != nil {
		return err
	}
	for _, r := range l.Rects {
		if _, err := fmt.Fprintf(bw, "RECT %d %d %d %d\n", r.X0, r.Y0, r.X1, r.Y1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses the format written by Save. It trusts its input: no size
// limits are applied, and a syntactically valid but degenerate layout
// (e.g. empty bounds) is returned as-is. Serving paths that read layouts
// from the network use ParseChecked instead.
func Load(r io.Reader) (*Layout, error) {
	return parse(r, Limits{})
}

// Limits bound what ParseChecked accepts from an untrusted source. The
// zero value of a field means "use the DefaultLimits value"; Load parses
// with no limits at all.
type Limits struct {
	// MaxRects caps the RECT record count; parsing stops with an error as
	// soon as the cap is crossed, before the extra records are stored.
	MaxRects int
	// MaxDimNM caps the bounds width and height. Scan memory downstream
	// grows with (dim/region)² tile descriptors, so a daemon must bound
	// the die size a request may declare.
	MaxDimNM int
}

// DefaultLimits are the ParseChecked bounds used when a Limits field is
// zero: 1M rectangles and ~2 mm of die per axis — generous for a region
// detection request, far below anything that could exhaust memory.
func DefaultLimits() Limits {
	return Limits{MaxRects: 1 << 20, MaxDimNM: 1 << 21}
}

func (lim Limits) withDefaults() Limits {
	d := DefaultLimits()
	if lim.MaxRects <= 0 {
		lim.MaxRects = d.MaxRects
	}
	if lim.MaxDimNM <= 0 {
		lim.MaxDimNM = d.MaxDimNM
	}
	return lim
}

// ParseChecked parses the Save format from an untrusted reader with the
// given limits (zero fields take DefaultLimits) and validates the result
// for consumption by the detection stack: bounds must be non-empty and no
// larger than lim.MaxDimNM per axis, and at most lim.MaxRects shapes are
// accepted. Violations and syntax errors return descriptive errors;
// ParseChecked never panics.
func ParseChecked(r io.Reader, lim Limits) (*Layout, error) {
	return parse(r, lim.withDefaults())
}

// parse is the shared scan loop; a zero Limits field disables that check.
func parse(r io.Reader, lim Limits) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var l *Layout
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || text[0] == '#' {
			continue
		}
		var kind string
		var x0, y0, x1, y1 int
		if _, err := fmt.Sscanf(text, "%s %d %d %d %d", &kind, &x0, &y0, &x1, &y1); err != nil {
			// A failed read (e.g. a body-size limit) leaves the scanner
			// holding a partial final line; report the reader's error, not
			// the syntax error of the truncated fragment.
			if serr := sc.Err(); serr != nil {
				return nil, fmt.Errorf("layout: reading input: %w", serr)
			}
			return nil, fmt.Errorf("layout: line %d: %w", line, err)
		}
		switch kind {
		case "BOUNDS":
			b := Rect{x0, y0, x1, y1}.Canon()
			if lim.MaxDimNM > 0 {
				if b.Empty() {
					return nil, fmt.Errorf("layout: line %d: empty BOUNDS %v", line, b)
				}
				if b.W() > lim.MaxDimNM || b.H() > lim.MaxDimNM {
					return nil, fmt.Errorf("layout: line %d: BOUNDS %d×%d nm exceed the %d nm limit",
						line, b.W(), b.H(), lim.MaxDimNM)
				}
			}
			l = New(b)
		case "RECT":
			if l == nil {
				return nil, fmt.Errorf("layout: line %d: RECT before BOUNDS", line)
			}
			if lim.MaxRects > 0 && len(l.Rects) >= lim.MaxRects {
				return nil, fmt.Errorf("layout: line %d: more than %d RECT records", line, lim.MaxRects)
			}
			l.Add(Rect{x0, y0, x1, y1})
		default:
			return nil, fmt.Errorf("layout: line %d: unknown record %q", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("layout: reading input: %w", err)
	}
	if l == nil {
		return nil, fmt.Errorf("layout: no BOUNDS record found")
	}
	return l, nil
}

// SortedRects returns a copy of the shapes sorted by (Y0, X0, X1, Y1),
// giving deterministic iteration independent of insertion order.
func (l *Layout) SortedRects() []Rect {
	rs := append([]Rect(nil), l.Rects...)
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
	return rs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
