// Package viz renders layouts, ground-truth hotspots and detector output
// to PNG images — the machinery behind Figure 9's qualitative comparison
// (ground truth vs TCAD'18 vs ours: detected hotspots, missed hotspots and
// false alarms).
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/metrics"
)

// Palette used by RenderRegion; matching the paper's Figure 9 semantics.
var (
	ColorBackground = color.RGBA{250, 250, 250, 255}
	ColorMetal      = color.RGBA{170, 190, 215, 255}
	ColorDetected   = color.RGBA{30, 140, 60, 255}  // detected hotspot clip
	ColorMissed     = color.RGBA{220, 40, 40, 255}  // missed ground truth
	ColorFalse      = color.RGBA{240, 160, 20, 255} // false alarm clip
	ColorGT         = color.RGBA{60, 60, 200, 255}  // ground-truth marker
)

// Canvas draws layout-space geometry into an RGBA image.
type Canvas struct {
	img   *image.RGBA
	scale float64 // pixels per nm
}

// NewCanvas creates a canvas for a square region of regionNM nanometres
// rendered at sizePx pixels.
func NewCanvas(regionNM float64, sizePx int) *Canvas {
	img := image.NewRGBA(image.Rect(0, 0, sizePx, sizePx))
	for y := 0; y < sizePx; y++ {
		for x := 0; x < sizePx; x++ {
			img.Set(x, y, ColorBackground)
		}
	}
	return &Canvas{img: img, scale: float64(sizePx) / regionNM}
}

// FillRect fills a layout-space rectangle (nm).
func (c *Canvas) FillRect(r geom.Rect, col color.Color) {
	x0, y0 := c.toPx(r.X0), c.toPx(r.Y0)
	x1, y1 := c.toPx(r.X1), c.toPx(r.Y1)
	b := c.img.Bounds()
	for y := max(y0, 0); y < min(y1, b.Max.Y); y++ {
		for x := max(x0, 0); x < min(x1, b.Max.X); x++ {
			c.img.Set(x, y, col)
		}
	}
}

// StrokeRect outlines a layout-space rectangle (nm) with the given pixel
// line width.
func (c *Canvas) StrokeRect(r geom.Rect, col color.Color, width int) {
	x0, y0 := c.toPx(r.X0), c.toPx(r.Y0)
	x1, y1 := c.toPx(r.X1), c.toPx(r.Y1)
	for w := 0; w < width; w++ {
		c.hline(x0, x1, y0+w, col)
		c.hline(x0, x1, y1-1-w, col)
		c.vline(y0, y1, x0+w, col)
		c.vline(y0, y1, x1-1-w, col)
	}
}

// Cross draws an ×-style marker centred at (cx, cy) nm.
func (c *Canvas) Cross(cx, cy float64, sizePx int, col color.Color) {
	px, py := c.toPx(cx), c.toPx(cy)
	b := c.img.Bounds()
	for d := -sizePx; d <= sizePx; d++ {
		for _, p := range [2][2]int{{px + d, py + d}, {px + d, py - d}} {
			if p[0] >= 0 && p[0] < b.Max.X && p[1] >= 0 && p[1] < b.Max.Y {
				c.img.Set(p[0], p[1], col)
			}
		}
	}
}

func (c *Canvas) hline(x0, x1, y int, col color.Color) {
	b := c.img.Bounds()
	if y < 0 || y >= b.Max.Y {
		return
	}
	for x := max(x0, 0); x < min(x1, b.Max.X); x++ {
		c.img.Set(x, y, col)
	}
}

func (c *Canvas) vline(y0, y1, x int, col color.Color) {
	b := c.img.Bounds()
	if x < 0 || x >= b.Max.X {
		return
	}
	for y := max(y0, 0); y < min(y1, b.Max.Y); y++ {
		c.img.Set(x, y, col)
	}
}

func (c *Canvas) toPx(nm float64) int { return int(nm * c.scale) }

// Encode writes the canvas as PNG.
func (c *Canvas) Encode(w io.Writer) error { return png.Encode(w, c.img) }

// SaveFile writes the canvas to a PNG file.
func (c *Canvas) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Image exposes the underlying image (for tests).
func (c *Canvas) Image() *image.RGBA { return c.img }

// RenderRegion draws one region in Figure 9 style: metal geometry, then
// each detection outlined green (covers a hotspot) or orange (false
// alarm), missed ground truths crossed red, detected ground truths marked
// blue.
func RenderRegion(l *layout.Layout, gt [][2]float64, dets []metrics.Detection, sizePx int) *Canvas {
	regionNM := float64(l.Bounds.X1 - l.Bounds.X0)
	c := NewCanvas(regionNM, sizePx)
	for _, r := range l.Rects {
		c.FillRect(r.Geom(), ColorMetal)
	}
	covered := make([]bool, len(gt))
	for _, d := range dets {
		core := d.Clip.Core()
		hit := false
		for i, p := range gt {
			if core.Contains(p[0], p[1]) {
				covered[i] = true
				hit = true
			}
		}
		if hit {
			c.StrokeRect(d.Clip, ColorDetected, 2)
		} else {
			c.StrokeRect(d.Clip, ColorFalse, 2)
		}
	}
	for i, p := range gt {
		if covered[i] {
			c.Cross(p[0], p[1], 4, ColorGT)
		} else {
			c.Cross(p[0], p[1], 6, ColorMissed)
		}
	}
	return c
}

// RenderRegionTitled renders a region panel with a title caption and the
// colour legend — the publication-style variant of RenderRegion.
func RenderRegionTitled(l *layout.Layout, gt [][2]float64, dets []metrics.Detection,
	sizePx int, title string) *Canvas {
	c := RenderRegion(l, gt, dets, sizePx)
	c.Text(4, 4, title, 2, color.RGBA{30, 30, 30, 255})
	c.Legend()
	return c
}

// SaveComparison writes one PNG per named detector result, prefixed with
// the region tag, into dir. Filenames are "<tag>_<name>.png".
func SaveComparison(dir, tag string, l *layout.Layout, gt [][2]float64,
	results map[string][]metrics.Detection, sizePx int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, dets := range results {
		c := RenderRegionTitled(l, gt, dets, sizePx, tag+" "+name)
		path := fmt.Sprintf("%s/%s_%s.png", dir, tag, name)
		if err := c.SaveFile(path); err != nil {
			return err
		}
	}
	return nil
}
