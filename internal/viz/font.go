package viz

import (
	"image/color"
	"strings"
)

// A minimal 5×7 bitmap font covering the characters the detection panels
// need (digits, upper-case letters, and a little punctuation), so the
// PNGs are self-describing without external font dependencies. Each glyph
// is seven strings of five cells; '#' marks an inked pixel.

var font5x7 = map[rune][7]string{
	'0': {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "},
	'1': {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
	'2': {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},
	'3': {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "},
	'4': {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},
	'5': {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},
	'6': {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "},
	'7': {"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "},
	'8': {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},
	'9': {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "},
	'A': {" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"},
	'B': {"#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "},
	'C': {" ### ", "#   #", "#    ", "#    ", "#    ", "#   #", " ### "},
	'D': {"#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "},
	'E': {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"},
	'F': {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#    "},
	'G': {" ### ", "#   #", "#    ", "# ###", "#   #", "#   #", " ### "},
	'H': {"#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"},
	'I': {" ### ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
	'K': {"#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"},
	'L': {"#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"},
	'M': {"#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"},
	'N': {"#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"},
	'O': {" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "},
	'P': {"#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "},
	'R': {"#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"},
	'S': {" ####", "#    ", "#    ", " ### ", "    #", "    #", "#### "},
	'T': {"#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "},
	'U': {"#   #", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "},
	'V': {"#   #", "#   #", "#   #", "#   #", "#   #", " # # ", "  #  "},
	'W': {"#   #", "#   #", "#   #", "# # #", "# # #", "## ##", "#   #"},
	'X': {"#   #", "#   #", " # # ", "  #  ", " # # ", "#   #", "#   #"},
	'Y': {"#   #", "#   #", " # # ", "  #  ", "  #  ", "  #  ", "  #  "},
	'Z': {"#####", "    #", "   # ", "  #  ", " #   ", "#    ", "#####"},
	'.': {"     ", "     ", "     ", "     ", "     ", "  ## ", "  ## "},
	':': {"     ", "  ## ", "  ## ", "     ", "  ## ", "  ## ", "     "},
	'%': {"##   ", "##  #", "   # ", "  #  ", " #   ", "#  ##", "   ##"},
	'/': {"    #", "    #", "   # ", "  #  ", " #   ", "#    ", "#    "},
	'-': {"     ", "     ", "     ", "#####", "     ", "     ", "     "},
	'=': {"     ", "     ", "#####", "     ", "#####", "     ", "     "},
	' ': {"     ", "     ", "     ", "     ", "     ", "     ", "     "},
}

// GlyphSize returns the font cell dimensions (width, height) excluding
// the one-pixel letter spacing Text adds.
func GlyphSize() (w, h int) { return 5, 7 }

// Text draws s (upper-cased; unknown runes render as blanks) with its
// top-left corner at pixel (px, py) at the given integer scale.
func (c *Canvas) Text(px, py int, s string, scale int, col color.Color) {
	if scale < 1 {
		scale = 1
	}
	x := px
	for _, r := range strings.ToUpper(s) {
		glyph, ok := font5x7[r]
		if !ok {
			glyph = font5x7[' ']
		}
		for gy, row := range glyph {
			for gx, cell := range row {
				if cell != '#' {
					continue
				}
				for sy := 0; sy < scale; sy++ {
					for sx := 0; sx < scale; sx++ {
						xx := x + gx*scale + sx
						yy := py + gy*scale + sy
						if xx >= 0 && xx < c.img.Bounds().Max.X && yy >= 0 && yy < c.img.Bounds().Max.Y {
							c.img.Set(xx, yy, col)
						}
					}
				}
			}
		}
		x += 6 * scale // 5-cell glyph + 1-cell spacing
	}
}

// Legend draws the standard Figure-9 colour key along the bottom edge.
func (c *Canvas) Legend() {
	b := c.img.Bounds()
	y := b.Max.Y - 12
	entries := []struct {
		col   color.RGBA
		label string
	}{
		{ColorDetected, "HIT"},
		{ColorFalse, "FA"},
		{ColorMissed, "MISS"},
	}
	x := 4
	for _, e := range entries {
		for dy := 0; dy < 7; dy++ {
			for dx := 0; dx < 7; dx++ {
				if x+dx < b.Max.X && y+dy < b.Max.Y {
					c.img.Set(x+dx, y+dy, e.col)
				}
			}
		}
		c.Text(x+9, y, e.label, 1, color.RGBA{30, 30, 30, 255})
		x += 9 + 6*len(e.label) + 10
	}
}
