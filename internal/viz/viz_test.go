package viz

import (
	"bytes"
	"image/color"
	"image/png"
	"os"
	"testing"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/metrics"
)

func TestCanvasEncodesValidPNG(t *testing.T) {
	c := NewCanvas(768, 128)
	c.FillRect(geom.Rect{X0: 100, Y0: 100, X1: 400, Y1: 200}, ColorMetal)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 128 {
		t.Fatalf("decoded size %v", img.Bounds())
	}
}

func TestFillRectScalesNMToPixels(t *testing.T) {
	c := NewCanvas(100, 100) // 1 px per nm
	c.FillRect(geom.Rect{X0: 10, Y0: 20, X1: 30, Y1: 40}, ColorMetal)
	r, g, b, _ := c.Image().At(15, 25).RGBA()
	mr, mg, mb, _ := ColorMetal.RGBA()
	if r != mr || g != mg || b != mb {
		t.Fatal("fill missed expected pixel")
	}
	br, _, _, _ := c.Image().At(5, 5).RGBA()
	wr, _, _, _ := ColorBackground.RGBA()
	if br != wr {
		t.Fatal("fill leaked outside rect")
	}
}

func TestStrokeAndCrossClampToBounds(t *testing.T) {
	c := NewCanvas(100, 50)
	// Off-canvas geometry must not panic.
	c.StrokeRect(geom.Rect{X0: -50, Y0: -50, X1: 200, Y1: 200}, ColorDetected, 3)
	c.Cross(-10, -10, 5, ColorMissed)
	c.Cross(99, 99, 8, ColorMissed)
}

func TestRenderRegionColorsOutcomes(t *testing.T) {
	l := layout.New(layout.R(0, 0, 100, 100))
	l.Add(layout.R(10, 10, 90, 20))
	gt := [][2]float64{{50, 50}, {20, 80}}
	dets := []metrics.Detection{
		{Clip: geom.RectCWH(50, 50, 30, 30), Score: 0.9}, // covers gt[0]
		{Clip: geom.RectCWH(80, 20, 30, 30), Score: 0.8}, // false alarm
	}
	c := RenderRegion(l, gt, dets, 100)
	// Detected clip outline is green at its top edge.
	gr, gg, gb, _ := ColorDetected.RGBA()
	r, g, b, _ := c.Image().At(50, 35).RGBA()
	if r != gr || g != gg || b != gb {
		t.Fatalf("expected detected outline at (50,35): got %v,%v,%v", r, g, b)
	}
	// gt[1] is missed: a red cross centre.
	mr, mg, mb, _ := ColorMissed.RGBA()
	r, g, b, _ = c.Image().At(20, 80).RGBA()
	if r != mr || g != mg || b != mb {
		t.Fatal("expected missed-hotspot marker")
	}
}

func TestSaveComparisonWritesFiles(t *testing.T) {
	dir := t.TempDir()
	l := layout.New(layout.R(0, 0, 100, 100))
	gt := [][2]float64{{50, 50}}
	err := SaveComparison(dir, "case2", l, gt, map[string][]metrics.Detection{
		"ours":   {{Clip: geom.RectCWH(50, 50, 30, 30), Score: 1}},
		"tcad18": nil,
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"case2_ours.png", "case2_tcad18.png"} {
		if _, err := os.Stat(dir + "/" + name); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestTextRendersInk(t *testing.T) {
	c := NewCanvas(100, 100)
	black := color.RGBA{0, 0, 0, 255}
	c.Text(10, 10, "A1", 1, black)
	// Count inked pixels; 'A' and '1' together must ink a plausible count.
	inked := 0
	for y := 10; y < 17; y++ {
		for x := 10; x < 22; x++ {
			r, g, b, _ := c.Image().At(x, y).RGBA()
			br, bg, bb, _ := black.RGBA()
			if r == br && g == bg && b == bb {
				inked++
			}
		}
	}
	if inked < 15 {
		t.Fatalf("text barely rendered: %d pixels", inked)
	}
}

func TestTextScaleAndClipping(t *testing.T) {
	c := NewCanvas(100, 40)
	// Off-canvas text and large scale must not panic.
	c.Text(-10, -10, "CLIP", 3, color.RGBA{0, 0, 0, 255})
	c.Text(95, 35, "EDGE", 2, color.RGBA{0, 0, 0, 255})
	// Unknown runes render blank, not panic.
	c.Text(2, 2, "héllo?", 1, color.RGBA{0, 0, 0, 255})
}

func TestGlyphCoverage(t *testing.T) {
	w, h := GlyphSize()
	if w != 5 || h != 7 {
		t.Fatalf("glyph size %dx%d", w, h)
	}
	for r, glyph := range font5x7 {
		if len(glyph) != 7 {
			t.Fatalf("glyph %q has %d rows", r, len(glyph))
		}
		for i, row := range glyph {
			if len(row) != 5 {
				t.Fatalf("glyph %q row %d has width %d", r, i, len(row))
			}
		}
	}
	// The character set needed by the panels is present.
	for _, r := range "0123456789ABCDEFGHIKLMNOPRSTUVWXYZ.:%/-= " {
		if _, ok := font5x7[r]; !ok {
			t.Fatalf("missing glyph %q", r)
		}
	}
}

func TestLegendDraws(t *testing.T) {
	c := NewCanvas(300, 200)
	c.Legend()
	// The first legend swatch is the detected colour at (4, H-12).
	r, g, b, _ := c.Image().At(5, 200-11).RGBA()
	dr, dg, db, _ := ColorDetected.RGBA()
	if r != dr || g != dg || b != db {
		t.Fatal("legend swatch missing")
	}
}
