// Package metrics implements the paper's evaluation protocol (§2,
// Definitions 1–2) and the result-table machinery that regenerates
// Table 1 and Figure 10.
//
//   - Accuracy: the ratio of ground-truth hotspots that are correctly
//     detected. A hotspot counts as detected when it lies inside the core
//     region (middle third) of some clip the detector marked as hotspot.
//   - False alarm: the number of detected clips whose core contains no
//     ground-truth hotspot.
//
// This package scores detector QUALITY offline. Runtime observability —
// counters, latency histograms and the Prometheus exposition served by
// the daemon — lives in internal/telemetry. See DESIGN.md §13.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rhsd/internal/geom"
)

// Detection is one clip a detector reported, with its confidence score.
type Detection struct {
	Clip  geom.Rect
	Score float64
}

// Outcome accumulates evaluation counts over one or more regions.
type Outcome struct {
	GroundTruth int // total ground-truth hotspots
	Detected    int // ground-truth hotspots covered by some detection core
	FalseAlarms int // detections whose core covers no ground truth
	Elapsed     time.Duration
}

// Accuracy returns Detected/GroundTruth (1 when there is no ground truth,
// since there was nothing to miss).
func (o Outcome) Accuracy() float64 {
	if o.GroundTruth == 0 {
		return 1
	}
	return float64(o.Detected) / float64(o.GroundTruth)
}

// Add merges another outcome into o.
func (o *Outcome) Add(other Outcome) {
	o.GroundTruth += other.GroundTruth
	o.Detected += other.Detected
	o.FalseAlarms += other.FalseAlarms
	o.Elapsed += other.Elapsed
}

// Evaluate scores a region's detections against ground-truth hotspot
// points, both in the same coordinate frame. Each ground-truth point is
// detected if any detection's core contains it; each detection is a false
// alarm if its core contains no ground-truth point.
func Evaluate(dets []Detection, gt [][2]float64) Outcome {
	var o Outcome
	o.GroundTruth = len(gt)
	covered := make([]bool, len(gt))
	for _, d := range dets {
		core := d.Clip.Core()
		hit := false
		for i, p := range gt {
			if core.Contains(p[0], p[1]) {
				covered[i] = true
				hit = true
			}
		}
		if !hit {
			o.FalseAlarms++
		}
	}
	for _, c := range covered {
		if c {
			o.Detected++
		}
	}
	return o
}

// Row is one line of a comparison table: a detector's outcome on a case.
type Row struct {
	Bench    string
	Detector string
	Outcome  Outcome
}

// Table collects rows and renders the paper's Table-1 layout: one row per
// benchmark, one column group (Accu %, FA, Time s) per detector, followed
// by Average and Ratio rows.
type Table struct {
	Detectors []string
	Rows      []Row
}

// AddRow appends one measurement.
func (t *Table) AddRow(bench, detector string, o Outcome) {
	t.Rows = append(t.Rows, Row{Bench: bench, Detector: detector, Outcome: o})
}

// benches returns benchmark names in first-seen order.
func (t *Table) benches() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range t.Rows {
		if !seen[r.Bench] {
			seen[r.Bench] = true
			out = append(out, r.Bench)
		}
	}
	return out
}

func (t *Table) get(bench, det string) (Outcome, bool) {
	for _, r := range t.Rows {
		if r.Bench == bench && r.Detector == det {
			return r.Outcome, true
		}
	}
	return Outcome{}, false
}

// Averages returns per-detector mean accuracy, mean false alarms and mean
// time over all benchmarks that have a measurement.
func (t *Table) Averages() map[string][3]float64 {
	out := map[string][3]float64{}
	for _, det := range t.Detectors {
		var acc, fa, sec float64
		n := 0
		for _, b := range t.benches() {
			if o, ok := t.get(b, det); ok {
				acc += o.Accuracy() * 100
				fa += float64(o.FalseAlarms)
				sec += o.Elapsed.Seconds()
				n++
			}
		}
		if n > 0 {
			out[det] = [3]float64{acc / float64(n), fa / float64(n), sec / float64(n)}
		}
	}
	return out
}

// Render writes the table in the paper's format, using baseline as the
// reference detector for the Ratio row.
func (t *Table) Render(baseline string) string {
	var b strings.Builder
	benches := t.benches()
	fmt.Fprintf(&b, "%-8s", "Bench")
	for _, det := range t.Detectors {
		fmt.Fprintf(&b, " | %-28s", det)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s", "")
	for range t.Detectors {
		fmt.Fprintf(&b, " | %8s %8s %10s", "Accu(%)", "FA", "Time(s)")
	}
	b.WriteByte('\n')
	for _, bench := range benches {
		fmt.Fprintf(&b, "%-8s", bench)
		for _, det := range t.Detectors {
			if o, ok := t.get(bench, det); ok {
				fmt.Fprintf(&b, " | %8.2f %8d %10.3f", o.Accuracy()*100, o.FalseAlarms, o.Elapsed.Seconds())
			} else {
				fmt.Fprintf(&b, " | %8s %8s %10s", "-", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	avgs := t.Averages()
	fmt.Fprintf(&b, "%-8s", "Average")
	for _, det := range t.Detectors {
		a := avgs[det]
		fmt.Fprintf(&b, " | %8.2f %8.1f %10.3f", a[0], a[1], a[2])
	}
	b.WriteByte('\n')
	if base, ok := avgs[baseline]; ok {
		fmt.Fprintf(&b, "%-8s", "Ratio")
		for _, det := range t.Detectors {
			a := avgs[det]
			fmt.Fprintf(&b, " | %8.2f %8.2f %10.2f",
				safeRatio(a[0], base[0]), safeRatio(a[1], base[1]), safeRatio(a[2], base[2]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values for downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("bench,detector,accuracy_pct,false_alarms,time_s\n")
	rows := append([]Row(nil), t.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Bench != rows[j].Bench {
			return rows[i].Bench < rows[j].Bench
		}
		return rows[i].Detector < rows[j].Detector
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%.2f,%d,%.3f\n",
			r.Bench, r.Detector, r.Outcome.Accuracy()*100, r.Outcome.FalseAlarms, r.Outcome.Elapsed.Seconds())
	}
	return b.String()
}

func safeRatio(a, base float64) float64 {
	if base == 0 {
		return 0
	}
	return a / base
}
