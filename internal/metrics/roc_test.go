package metrics

import (
	"math"
	"strings"
	"testing"

	"rhsd/internal/geom"
)

func rocFixture() []RegionResult {
	return []RegionResult{
		{
			Dets: []Detection{
				{Clip: geom.RectCWH(50, 50, 30, 30), Score: 0.9},   // true hit
				{Clip: geom.RectCWH(200, 200, 30, 30), Score: 0.6}, // false alarm
				{Clip: geom.RectCWH(120, 50, 30, 30), Score: 0.3},  // true hit (weak)
				{Clip: geom.RectCWH(300, 300, 30, 30), Score: 0.2}, // false alarm (weak)
			},
			GT: [][2]float64{{50, 50}, {120, 50}},
		},
	}
}

func TestROCMonotoneInThreshold(t *testing.T) {
	pts := ROC(rocFixture(), []float64{0.1, 0.25, 0.5, 0.7, 0.95})
	for i := 1; i < len(pts); i++ {
		if pts[i].Threshold < pts[i-1].Threshold {
			t.Fatal("points must come back sorted by threshold")
		}
		// Raising the threshold can only drop detections: accuracy and FA
		// are both non-increasing.
		if pts[i].Accuracy > pts[i-1].Accuracy+1e-12 {
			t.Fatalf("accuracy increased with threshold: %+v", pts)
		}
		if pts[i].FalseAlarms > pts[i-1].FalseAlarms {
			t.Fatalf("false alarms increased with threshold: %+v", pts)
		}
	}
}

func TestROCKnownPoints(t *testing.T) {
	pts := ROC(rocFixture(), []float64{0.1, 0.5, 0.95})
	// t=0.1: all detections → acc 1.0, FA 2.
	if pts[0].Accuracy != 1 || pts[0].FalseAlarms != 2 {
		t.Fatalf("t=0.1: %+v", pts[0])
	}
	// t=0.5: scores {0.9, 0.6} → one hit, one FA → acc 0.5, FA 1.
	if pts[1].Accuracy != 0.5 || pts[1].FalseAlarms != 1 {
		t.Fatalf("t=0.5: %+v", pts[1])
	}
	// t=0.95: nothing → acc 0, FA 0.
	if pts[2].Accuracy != 0 || pts[2].FalseAlarms != 0 {
		t.Fatalf("t=0.95: %+v", pts[2])
	}
}

func TestDefaultThresholds(t *testing.T) {
	ts := DefaultThresholds(10)
	if len(ts) != 10 || ts[0] != 0 || math.Abs(ts[9]-0.9) > 1e-12 {
		t.Fatalf("thresholds: %v", ts)
	}
	if len(DefaultThresholds(0)) != 2 {
		t.Fatal("minimum sweep size not enforced")
	}
}

func TestAUACProperties(t *testing.T) {
	pts := ROC(rocFixture(), DefaultThresholds(20))
	a := AUAC(pts)
	if a <= 0 || a > 1 {
		t.Fatalf("AUAC out of range: %v", a)
	}
	// A strictly better curve (same FAs, higher accuracy) has higher AUAC.
	better := append([]ROCPoint(nil), pts...)
	for i := range better {
		better[i].Accuracy = math.Min(1, better[i].Accuracy+0.2)
	}
	if AUAC(better) <= a {
		t.Fatal("dominating curve must have larger AUAC")
	}
	if AUAC([]ROCPoint{{Accuracy: 1, FalseAlarms: 0}}) != 0 {
		t.Fatal("degenerate zero-FA curve must return 0")
	}
}

func TestRenderROC(t *testing.T) {
	s := RenderROC(ROC(rocFixture(), []float64{0.5}))
	if !strings.Contains(s, "threshold") || !strings.Contains(s, "0.50") {
		t.Fatalf("render:\n%s", s)
	}
}
