package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// The accuracy/false-alarm trade-off of a hotspot detector is controlled
// by its score threshold; the paper's related work (LithoROC, Ye et al.,
// ASPDAC'19) argues for evaluating the whole operating curve rather than
// one point. RegionResult and ROC implement that extended evaluation:
// sweep the threshold over a region set's scored detections and report
// one (accuracy, false alarm) operating point per threshold.

// RegionResult pairs one region's scored detections with its ground
// truth, both in the same coordinate frame.
type RegionResult struct {
	Dets []Detection
	GT   [][2]float64
}

// ROCPoint is one operating point of the accuracy / false-alarm curve.
type ROCPoint struct {
	Threshold   float64
	Accuracy    float64 // fraction of ground truth detected
	FalseAlarms int     // total false alarms across regions
}

// ROC sweeps the given thresholds (sorted ascending internally) over the
// region results. Detections below a threshold are dropped before the
// standard core-coverage evaluation.
func ROC(results []RegionResult, thresholds []float64) []ROCPoint {
	ts := append([]float64(nil), thresholds...)
	sort.Float64s(ts)
	out := make([]ROCPoint, 0, len(ts))
	for _, t := range ts {
		var total Outcome
		for _, r := range results {
			kept := r.Dets[:0:0]
			for _, d := range r.Dets {
				if d.Score >= t {
					kept = append(kept, d)
				}
			}
			total.Add(Evaluate(kept, r.GT))
		}
		out = append(out, ROCPoint{Threshold: t, Accuracy: total.Accuracy(), FalseAlarms: total.FalseAlarms})
	}
	return out
}

// DefaultThresholds returns an evenly spaced threshold sweep over (0, 1).
func DefaultThresholds(n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n)
	}
	return out
}

// AUAC integrates accuracy over the normalized false-alarm axis
// (trapezoidal, FA normalized by its maximum over the curve) — a single
// scalar summary of the operating curve; higher is better. Returns 0 for
// degenerate curves with no false alarms anywhere.
func AUAC(points []ROCPoint) float64 {
	ps := append([]ROCPoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].FalseAlarms < ps[j].FalseAlarms })
	maxFA := ps[len(ps)-1].FalseAlarms
	if maxFA == 0 {
		return 0
	}
	var area float64
	for i := 1; i < len(ps); i++ {
		dx := float64(ps[i].FalseAlarms-ps[i-1].FalseAlarms) / float64(maxFA)
		area += dx * (ps[i].Accuracy + ps[i-1].Accuracy) / 2
	}
	return area
}

// RenderROC prints the curve as aligned text.
func RenderROC(points []ROCPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %12s\n", "threshold", "accuracy", "false alarms")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f %10.3f %12d\n", p.Threshold, p.Accuracy, p.FalseAlarms)
	}
	return b.String()
}
