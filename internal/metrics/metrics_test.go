package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"rhsd/internal/geom"
)

func det(cx, cy, size, score float64) Detection {
	return Detection{Clip: geom.RectCWH(cx, cy, size, size), Score: score}
}

func TestEvaluatePerfectDetection(t *testing.T) {
	gt := [][2]float64{{50, 50}, {200, 200}}
	dets := []Detection{det(50, 50, 60, 0.9), det(200, 200, 60, 0.8)}
	o := Evaluate(dets, gt)
	if o.Detected != 2 || o.FalseAlarms != 0 || o.Accuracy() != 1 {
		t.Fatalf("perfect: %+v", o)
	}
}

func TestEvaluateCoreRuleNotWholeClip(t *testing.T) {
	// A hotspot inside the clip but outside the middle-third core must NOT
	// count as detected (§2: correct detection requires the core region).
	gt := [][2]float64{{28, 50}} // clip spans [20,80], core is [40,60]
	dets := []Detection{det(50, 50, 60, 0.9)}
	o := Evaluate(dets, gt)
	if o.Detected != 0 {
		t.Fatalf("core rule violated: %+v", o)
	}
	// ... and that detection is then a false alarm.
	if o.FalseAlarms != 1 {
		t.Fatalf("uncovering detection should be FA: %+v", o)
	}
}

func TestEvaluateFalseAlarmCounting(t *testing.T) {
	gt := [][2]float64{{50, 50}}
	dets := []Detection{
		det(50, 50, 60, 0.9),   // hit
		det(300, 300, 60, 0.8), // FA
		det(400, 100, 60, 0.7), // FA
	}
	o := Evaluate(dets, gt)
	if o.Detected != 1 || o.FalseAlarms != 2 {
		t.Fatalf("%+v", o)
	}
}

func TestEvaluateDuplicateDetectionsCountOnce(t *testing.T) {
	gt := [][2]float64{{50, 50}}
	dets := []Detection{det(50, 50, 60, 0.9), det(52, 50, 60, 0.85)}
	o := Evaluate(dets, gt)
	if o.Detected != 1 {
		t.Fatalf("hotspot double-counted: %+v", o)
	}
	if o.FalseAlarms != 0 {
		t.Fatalf("both clips cover the hotspot, neither is FA: %+v", o)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	o := Evaluate(nil, nil)
	if o.Accuracy() != 1 || o.FalseAlarms != 0 {
		t.Fatalf("vacuous case: %+v", o)
	}
	o2 := Evaluate(nil, [][2]float64{{1, 1}})
	if o2.Accuracy() != 0 {
		t.Fatalf("missed everything: %v", o2.Accuracy())
	}
}

func TestOutcomeAdd(t *testing.T) {
	a := Outcome{GroundTruth: 2, Detected: 1, FalseAlarms: 3, Elapsed: time.Second}
	b := Outcome{GroundTruth: 4, Detected: 4, FalseAlarms: 1, Elapsed: 2 * time.Second}
	a.Add(b)
	if a.GroundTruth != 6 || a.Detected != 5 || a.FalseAlarms != 4 || a.Elapsed != 3*time.Second {
		t.Fatalf("%+v", a)
	}
	if math.Abs(a.Accuracy()-5.0/6.0) > 1e-12 {
		t.Fatalf("accuracy %v", a.Accuracy())
	}
}

func buildTable() *Table {
	tbl := &Table{Detectors: []string{"TCAD18", "Ours"}}
	tbl.AddRow("Case2", "TCAD18", Outcome{GroundTruth: 10, Detected: 8, FalseAlarms: 48, Elapsed: 60 * time.Second})
	tbl.AddRow("Case2", "Ours", Outcome{GroundTruth: 10, Detected: 9, FalseAlarms: 17, Elapsed: 2 * time.Second})
	tbl.AddRow("Case3", "TCAD18", Outcome{GroundTruth: 20, Detected: 18, FalseAlarms: 263, Elapsed: 265 * time.Second})
	tbl.AddRow("Case3", "Ours", Outcome{GroundTruth: 20, Detected: 19, FalseAlarms: 34, Elapsed: 10 * time.Second})
	return tbl
}

func TestTableAverages(t *testing.T) {
	tbl := buildTable()
	avg := tbl.Averages()
	ours := avg["Ours"]
	// Accuracy: (90 + 95)/2 = 92.5 ; FA: (17+34)/2 = 25.5 ; time (2+10)/2 = 6.
	if math.Abs(ours[0]-92.5) > 1e-9 || math.Abs(ours[1]-25.5) > 1e-9 || math.Abs(ours[2]-6) > 1e-9 {
		t.Fatalf("averages: %v", ours)
	}
}

func TestTableRenderContainsSections(t *testing.T) {
	s := buildTable().Render("TCAD18")
	for _, want := range []string{"Case2", "Case3", "Average", "Ratio", "TCAD18", "Ours"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	// Ratio of the baseline against itself is 1.00 for all three metrics.
	ratioLine := ""
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "Ratio") {
			ratioLine = line
		}
	}
	if !strings.Contains(ratioLine, "1.00") {
		t.Fatalf("baseline self-ratio missing: %s", ratioLine)
	}
}

func TestTableCSV(t *testing.T) {
	s := buildTable().CSV()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("csv lines: %d\n%s", len(lines), s)
	}
	if lines[0] != "bench,detector,accuracy_pct,false_alarms,time_s" {
		t.Fatalf("csv header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Case2,Ours,90.00,17,") {
		t.Fatalf("csv sorted row: %s", lines[1])
	}
}

func TestTableMissingCellRendersDash(t *testing.T) {
	tbl := &Table{Detectors: []string{"A", "B"}}
	tbl.AddRow("Case2", "A", Outcome{GroundTruth: 1, Detected: 1})
	s := tbl.Render("A")
	if !strings.Contains(s, "-") {
		t.Fatalf("missing cell should render '-':\n%s", s)
	}
}

func TestTableDetectorsOrderPreservedInRender(t *testing.T) {
	tbl := &Table{Detectors: []string{"Zeta", "Alpha"}}
	tbl.AddRow("Case2", "Zeta", Outcome{GroundTruth: 1, Detected: 1})
	tbl.AddRow("Case2", "Alpha", Outcome{GroundTruth: 1, Detected: 1})
	s := tbl.Render("Zeta")
	if strings.Index(s, "Zeta") > strings.Index(s, "Alpha") {
		t.Fatal("detector column order must follow Detectors, not insertion or alphabet")
	}
}

func TestEvaluateScoresAreIgnoredForMatching(t *testing.T) {
	// Matching is geometric; a low-score detection still counts (the
	// caller thresholds before Evaluate).
	gt := [][2]float64{{10, 10}}
	o := Evaluate([]Detection{det(10, 10, 30, 0.0001)}, gt)
	if o.Detected != 1 {
		t.Fatal("score must not affect matching")
	}
}

func TestOutcomeAccuracyBounds(t *testing.T) {
	o := Outcome{GroundTruth: 4, Detected: 4}
	if o.Accuracy() != 1 {
		t.Fatal("full recall must be 1")
	}
	o.Detected = 0
	if o.Accuracy() != 0 {
		t.Fatal("zero recall must be 0")
	}
}
