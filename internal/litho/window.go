package litho

import (
	"fmt"
	"math"

	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

// Process-window analysis utilities: beyond the pass/fail hotspot check,
// these quantify *how much* dose and focus margin a pattern has — the
// standard way DFM teams rank pattern robustness, and a natural extension
// of the paper's "under a given process window" labelling.

// Corner is one (dose, defocus) evaluation condition.
type Corner struct {
	Dose    float64 // relative to nominal (1.0)
	Defocus float64 // additional blur sigma in nm (0 = best focus)
}

// Corners enumerates the 2×2 extreme corners of a dose-latitude ×
// defocus window plus the nominal condition.
func Corners(doseLatitude, defocusNM float64) []Corner {
	return []Corner{
		{Dose: 1, Defocus: 0},
		{Dose: 1 - doseLatitude, Defocus: 0},
		{Dose: 1 + doseLatitude, Defocus: 0},
		{Dose: 1 - doseLatitude, Defocus: defocusNM},
		{Dose: 1 + doseLatitude, Defocus: defocusNM},
	}
}

// AerialAt computes the aerial image under a given defocus: the effective
// point-spread sigma grows in quadrature with the defocus blur.
func (m Model) AerialAt(mask *tensor.Tensor, defocusNM float64) *tensor.Tensor {
	eff := m
	if defocusNM > 0 {
		eff.SigmaNM = hypot(m.SigmaNM, defocusNM)
	}
	return eff.Aerial(mask)
}

// failFieldAt computes the per-pixel medial failure field of a mask
// raster under one process corner (0 = ok, 1 = open, 2 = bridge).
func (m Model) failFieldAt(mask *tensor.Tensor, c Corner) []uint8 {
	aerial := m.AerialAt(mask, c.Defocus)
	h, w := mask.Dim(1), mask.Dim(2)
	metal := make([]bool, h*w)
	for i, v := range mask.Data() {
		metal[i] = v >= 0.5
	}
	dMetal := distanceTransform(metal, h, w, false)
	dSpace := distanceTransform(metal, h, w, true)
	fail := make([]uint8, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			a := float64(aerial.Data()[i])
			if metal[i] {
				if a*c.Dose < m.Threshold && localMax(dMetal, h, w, y, x) {
					fail[i] = 1
				}
			} else if a*c.Dose >= m.Threshold && localMax(dSpace, h, w, y, x) {
				fail[i] = 2
			}
		}
	}
	return fail
}

// HotspotsAt clusters the failures of one process corner exactly like
// Simulate does (including the MinClusterPx noise filter).
func (m Model) HotspotsAt(mask *tensor.Tensor, c Corner) []Hotspot {
	return m.cluster(m.failFieldAt(mask, c), mask.Dim(1), mask.Dim(2))
}

// FailPixelsAt counts the raw failing medial pixels of a mask raster
// under one process corner, before noise clustering.
func (m Model) FailPixelsAt(mask *tensor.Tensor, c Corner) int {
	count := 0
	for _, f := range m.failFieldAt(mask, c) {
		if f != 0 {
			count++
		}
	}
	return count
}

// DoseMargin estimates, by bisection, the largest symmetric dose latitude
// (in [0, maxLatitude]) under which the layout window prints without any
// medial failure at best focus. Larger margin = more robust pattern.
func (m Model) DoseMargin(l *layout.Layout, window layout.Rect, maxLatitude float64) float64 {
	mask := l.Rasterize(window, m.PitchNM)
	// Consistent with SimulateRaster: only noise-filtered failure
	// clusters count against the margin.
	fails := func(lat float64) bool {
		return len(m.HotspotsAt(mask, Corner{Dose: 1 - lat})) > 0 ||
			len(m.HotspotsAt(mask, Corner{Dose: 1 + lat})) > 0
	}
	if fails(0) {
		return 0
	}
	lo, hi := 0.0, maxLatitude
	if !fails(hi) {
		return maxLatitude
	}
	for i := 0; i < 20; i++ {
		mid := (lo + hi) / 2
		if fails(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// WindowReport summarizes a window's robustness across corners.
type WindowReport struct {
	FailPerCorner []int
	DoseMargin    float64
}

// AnalyzeWindow runs the full corner set plus the dose-margin search.
func (m Model) AnalyzeWindow(l *layout.Layout, window layout.Rect, defocusNM float64) WindowReport {
	mask := l.Rasterize(window, m.PitchNM)
	var rep WindowReport
	for _, c := range Corners(m.DoseLatitude, defocusNM) {
		rep.FailPerCorner = append(rep.FailPerCorner, m.FailPixelsAt(mask, c))
	}
	rep.DoseMargin = m.DoseMargin(l, window, 0.5)
	return rep
}

func (r WindowReport) String() string {
	return fmt.Sprintf("fails per corner %v, dose margin %.3f", r.FailPerCorner, r.DoseMargin)
}

func hypot(a, b float64) float64 { return math.Hypot(a, b) }
