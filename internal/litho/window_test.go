package litho

import (
	"testing"

	"rhsd/internal/layout"
)

func TestCornersEnumeration(t *testing.T) {
	cs := Corners(0.1, 20)
	if len(cs) != 5 {
		t.Fatalf("corners: %d", len(cs))
	}
	if cs[0].Dose != 1 || cs[0].Defocus != 0 {
		t.Fatal("first corner must be nominal")
	}
	seen := map[Corner]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate corner %+v", c)
		}
		seen[c] = true
	}
}

func TestDefocusWeakensAerial(t *testing.T) {
	m := DefaultModel()
	l := isolatedNarrowLine()
	mask := l.Rasterize(layout.R(0, 0, 512, 512), m.PitchNM)
	sharp := m.AerialAt(mask, 0)
	blurred := m.AerialAt(mask, 30)
	// Peak intensity on the line centre can only drop with defocus.
	var pSharp, pBlur float32
	for i, v := range sharp.Data() {
		if v > pSharp {
			pSharp = v
		}
		if blurred.Data()[i] > pBlur {
			pBlur = blurred.Data()[i]
		}
	}
	if pBlur > pSharp {
		t.Fatalf("defocus increased peak intensity: %v vs %v", pBlur, pSharp)
	}
}

func TestFailPixelsMonotoneInDefocus(t *testing.T) {
	m := DefaultModel()
	l := isolatedNarrowLine()
	mask := l.Rasterize(layout.R(0, 0, 512, 512), m.PitchNM)
	atFocus := m.FailPixelsAt(mask, Corner{Dose: 1 - m.DoseLatitude})
	defocused := m.FailPixelsAt(mask, Corner{Dose: 1 - m.DoseLatitude, Defocus: 25})
	if defocused < atFocus {
		t.Fatalf("defocus reduced failures: %d vs %d", defocused, atFocus)
	}
}

func TestDoseMarginOrdersPatterns(t *testing.T) {
	m := DefaultModel()
	clean := relaxedWidePattern()
	risky := tightPairPattern()
	w := layout.R(0, 0, 512, 512)
	mClean := m.DoseMargin(clean, w, 0.5)
	mRisky := m.DoseMargin(risky, w, 0.5)
	if !(mClean > mRisky) {
		t.Fatalf("clean pattern must have larger dose margin: %v vs %v", mClean, mRisky)
	}
	if mRisky != 0 {
		// A pattern that bridges inside the default window has no margin
		// at all only if it fails at nominal; at minimum it must be small.
		if mRisky > 0.2 {
			t.Fatalf("risky margin suspiciously large: %v", mRisky)
		}
	}
}

func TestDoseMarginBounds(t *testing.T) {
	m := DefaultModel()
	clean := relaxedWidePattern()
	w := layout.R(0, 0, 512, 512)
	margin := m.DoseMargin(clean, w, 0.25)
	if margin < 0 || margin > 0.25 {
		t.Fatalf("margin %v out of [0, 0.25]", margin)
	}
}

func TestAnalyzeWindowReport(t *testing.T) {
	m := DefaultModel()
	rep := m.AnalyzeWindow(tightPairPattern(), layout.R(0, 0, 512, 512), 20)
	if len(rep.FailPerCorner) != 5 {
		t.Fatalf("corner count %d", len(rep.FailPerCorner))
	}
	// Nominal dose should fail less than or equal to the worst corner.
	worst := 0
	for _, f := range rep.FailPerCorner {
		if f > worst {
			worst = f
		}
	}
	if rep.FailPerCorner[0] > worst {
		t.Fatal("nominal worse than worst corner")
	}
	if rep.String() == "" {
		t.Fatal("report must render")
	}
}
