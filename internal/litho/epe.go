package litho

import (
	"fmt"
	"math"

	"rhsd/internal/tensor"
)

// Edge-placement-error (EPE) metrology: how far the printed contour lands
// from the drawn contour. Hotspot detectors consume the pass/fail labels,
// but EPE statistics are the quantitative bridge between the proxy
// simulator and real OPC verification flows, and they power the tests
// that keep the proxy physically sensible (EPE grows with dose error and
// defocus).

// EPEStats summarizes the contour displacement of a print against the
// intended mask.
type EPEStats struct {
	MeanNM float64 // mean |EPE| over intended edge pixels
	MaxNM  float64 // worst-case |EPE|
	Edges  int     // number of intended edge pixels measured
	// Unmatched counts intended edge pixels with no printed contour within
	// the search radius (e.g. a feature that vanished entirely).
	Unmatched int
}

// EPE measures edge placement error between an intended binary mask and a
// printed binary image of the same shape [1, H, W]. For every boundary
// pixel of the intended mask, the L1 distance to the nearest printed
// boundary pixel is taken as that edge's |EPE|; pixels farther than
// maxSearchPx are counted as unmatched instead of skewing the mean.
func (m Model) EPE(mask, printed *tensor.Tensor, maxSearchPx int) EPEStats {
	if !mask.SameShape(printed) {
		panic(fmt.Sprintf("litho: EPE shape mismatch %v vs %v", mask.Shape(), printed.Shape()))
	}
	h, w := mask.Dim(1), mask.Dim(2)
	maskB := binarize(mask)
	printB := binarize(printed)
	printEdge := boundary(printB, h, w)
	// Distance to the printed contour.
	dist := distanceToSet(printEdge, h, w)

	var stats EPEStats
	var sum float64
	maskEdge := boundary(maskB, h, w)
	for i, isEdge := range maskEdge {
		if !isEdge {
			continue
		}
		d := int(dist[i])
		if d > maxSearchPx {
			stats.Unmatched++
			continue
		}
		stats.Edges++
		e := float64(d) * m.PitchNM
		sum += e
		if e > stats.MaxNM {
			stats.MaxNM = e
		}
	}
	if stats.Edges > 0 {
		stats.MeanNM = sum / float64(stats.Edges)
	} else {
		stats.MeanNM = math.NaN()
	}
	return stats
}

// EPEAtDose is a convenience wrapper: print the mask's aerial image at the
// given dose and measure EPE against the mask itself.
func (m Model) EPEAtDose(mask *tensor.Tensor, dose float64, maxSearchPx int) EPEStats {
	printed := m.Print(m.Aerial(mask), dose)
	return m.EPE(mask, printed, maxSearchPx)
}

func binarize(t *tensor.Tensor) []bool {
	out := make([]bool, t.Size())
	for i, v := range t.Data() {
		out[i] = v >= 0.5
	}
	return out
}

// boundary marks pixels whose 4-neighbourhood crosses the phase edge
// (either side of the contour).
func boundary(b []bool, h, w int) []bool {
	out := make([]bool, len(b))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if !b[i] {
				continue
			}
			if (x > 0 && !b[i-1]) || (x < w-1 && !b[i+1]) ||
				(y > 0 && !b[i-w]) || (y < h-1 && !b[i+w]) {
				out[i] = true
			}
		}
	}
	return out
}

// distanceToSet computes the L1 distance of every pixel to the nearest
// marked pixel (infinity-like when the set is empty).
func distanceToSet(set []bool, h, w int) []int32 {
	const inf = int32(1 << 30)
	d := make([]int32, h*w)
	for i := range d {
		if set[i] {
			d[i] = 0
		} else {
			d[i] = inf
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if x > 0 && d[i-1]+1 < d[i] {
				d[i] = d[i-1] + 1
			}
			if y > 0 && d[i-w]+1 < d[i] {
				d[i] = d[i-w] + 1
			}
		}
	}
	for y := h - 1; y >= 0; y-- {
		for x := w - 1; x >= 0; x-- {
			i := y*w + x
			if x < w-1 && d[i+1]+1 < d[i] {
				d[i] = d[i+1] + 1
			}
			if y < h-1 && d[i+w]+1 < d[i] {
				d[i] = d[i+w] + 1
			}
		}
	}
	return d
}
