// Package litho implements the lithography-simulation proxy used to label
// ground-truth hotspots in the synthetic benchmarks.
//
// The paper labels hotspots "according to the results of industrial 7nm
// metal layer EUV lithography simulation under a given process window"
// (§4). That simulator is proprietary, so this package substitutes the
// standard teaching model of optical lithography:
//
//   - the mask raster is convolved with a Gaussian point-spread function
//     (a one-kernel approximation of the partially-coherent aerial image),
//   - a constant-threshold resist model decides what prints,
//   - the print is evaluated at the corners of a dose process window.
//
// A location is a hotspot when the intended pattern fails at a window
// corner: intended metal that does not print at minimum dose (an open /
// necking failure) or intended space that prints at maximum dose (a
// bridging failure). Failing pixels are clustered into connected
// components and reported as hotspot locations. Because failures emerge
// from the optics of the *neighbourhood* — tight spaces, isolated narrow
// lines, line-end gaps — the labels correlate with pattern geometry
// exactly the way real lithographic hotspots do, which is the property a
// learned detector needs.
package litho

import (
	"math"
	"sort"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

// Model holds the proxy-simulator parameters. All lengths are nanometres.
type Model struct {
	// PitchNM is the raster resolution (nm per pixel).
	PitchNM float64
	// SigmaNM is the Gaussian point-spread radius. Larger sigma = worse
	// optics = more neighbourhood interaction.
	SigmaNM float64
	// Threshold is the resist print threshold on the normalized aerial
	// image (intended metal rasters to intensity 1 before blurring).
	Threshold float64
	// DoseLatitude is the half-width of the dose process window, e.g. 0.1
	// evaluates printing at 90% and 110% nominal dose.
	DoseLatitude float64
	// MinClusterPx discards failing clusters smaller than this pixel
	// count as simulation noise.
	MinClusterPx int
}

// DefaultModel returns parameters tuned for the synthetic benchmarks:
// at 4 nm/px with a 14 nm PSF, ~28 nm lines at tight pitch begin to fail
// while relaxed-pitch patterns print cleanly.
func DefaultModel() Model {
	return Model{
		PitchNM:      4,
		SigmaNM:      14,
		Threshold:    0.46,
		DoseLatitude: 0.12,
		MinClusterPx: 3,
	}
}

// Hotspot is one process weak point found by simulation.
type Hotspot struct {
	// Center is the failure centroid in layout coordinates (nm), relative
	// to the simulated window's origin.
	Center geom.Rect
	// Kind distinguishes the failure mechanism.
	Kind FailKind
	// Pixels is the size of the failing cluster.
	Pixels int
}

// FailKind is the lithographic failure mechanism.
type FailKind int

// Failure mechanisms reported by the simulator.
const (
	// FailOpen marks intended metal that does not print at minimum dose.
	FailOpen FailKind = iota
	// FailBridge marks intended space that prints at maximum dose.
	FailBridge
)

func (k FailKind) String() string {
	if k == FailOpen {
		return "open"
	}
	return "bridge"
}

// Aerial computes the normalized aerial image of a binary mask raster
// [1, H, W] by separable Gaussian convolution with replicate padding (so a
// window edge does not fake an open failure).
func (m Model) Aerial(mask *tensor.Tensor) *tensor.Tensor {
	sigmaPx := m.SigmaNM / m.PitchNM
	k := gaussKernel(sigmaPx)
	return blurSeparable(mask, k)
}

// gaussKernel builds a normalized 1-D Gaussian of radius ceil(3σ).
func gaussKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// blurSeparable applies the kernel along rows then columns with replicate
// boundary handling.
func blurSeparable(img *tensor.Tensor, k []float64) *tensor.Tensor {
	h, w := img.Dim(1), img.Dim(2)
	r := len(k) / 2
	tmp := tensor.New(1, h, w)
	out := tensor.New(1, h, w)
	src := img.Data()
	// Horizontal pass.
	for y := 0; y < h; y++ {
		row := src[y*w : (y+1)*w]
		dst := tmp.Data()[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			var s float64
			for i := -r; i <= r; i++ {
				xx := x + i
				if xx < 0 {
					xx = 0
				} else if xx >= w {
					xx = w - 1
				}
				s += k[i+r] * float64(row[xx])
			}
			dst[x] = float32(s)
		}
	}
	// Vertical pass.
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			var s float64
			for i := -r; i <= r; i++ {
				yy := y + i
				if yy < 0 {
					yy = 0
				} else if yy >= h {
					yy = h - 1
				}
				s += k[i+r] * float64(tmp.Data()[yy*w+x])
			}
			out.Data()[y*w+x] = float32(s)
		}
	}
	return out
}

// Print thresholds an aerial image at the given dose: a pixel prints when
// intensity*dose >= Threshold.
func (m Model) Print(aerial *tensor.Tensor, dose float64) *tensor.Tensor {
	out := tensor.New(aerial.Shape()...)
	thr := float32(m.Threshold)
	for i, v := range aerial.Data() {
		if v*float32(dose) >= thr {
			out.Data()[i] = 1
		}
	}
	return out
}

// Simulate rasterizes window of l, runs the process-window check and
// returns the hotspots found. Hotspot coordinates are in nm relative to
// the window origin.
func (m Model) Simulate(l *layout.Layout, window layout.Rect) []Hotspot {
	mask := l.Rasterize(window, m.PitchNM)
	return m.SimulateRaster(mask)
}

// SimulateRaster runs the process-window check directly on a binary mask
// raster [1, H, W]. Coordinates in the result are nm, assuming the raster
// starts at the origin.
//
// Failures are evaluated on the pattern's medial pixels rather than per
// pixel, the raster analogue of a critical-dimension check: the ordinary
// edge-placement error that rounds every printed corner is not a hotspot,
// but a feature whose *centreline* fails to print (open) or a space whose
// *midline* prints (bridge) is a genuine process weak point.
func (m Model) SimulateRaster(mask *tensor.Tensor) []Hotspot {
	aerial := m.Aerial(mask)
	h, w := mask.Dim(1), mask.Dim(2)
	minDose := 1 - m.DoseLatitude
	maxDose := 1 + m.DoseLatitude

	metal := make([]bool, h*w)
	for i, v := range mask.Data() {
		metal[i] = v >= 0.5
	}
	dMetal := distanceTransform(metal, h, w, false)
	dSpace := distanceTransform(metal, h, w, true)

	// fail[i]: 0 = ok, 1 = open, 2 = bridge.
	fail := make([]uint8, h*w)
	thr := m.Threshold
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			a := float64(aerial.Data()[i])
			if metal[i] {
				if a*minDose < thr && localMax(dMetal, h, w, y, x) {
					fail[i] = 1
				}
			} else {
				if a*maxDose >= thr && localMax(dSpace, h, w, y, x) {
					fail[i] = 2
				}
			}
		}
	}
	return m.cluster(fail, h, w)
}

// distanceTransform returns the city-block (L1) distance of every pixel in
// the selected phase (metal when invert=false, space when invert=true) to
// the nearest pixel of the opposite phase. Pixels of the opposite phase
// get distance 0.
func distanceTransform(metal []bool, h, w int, invert bool) []int32 {
	const inf = int32(1 << 30)
	d := make([]int32, h*w)
	in := func(i int) bool {
		if invert {
			return !metal[i]
		}
		return metal[i]
	}
	for i := range d {
		if in(i) {
			d[i] = inf
		}
	}
	// Forward pass. Border pixels of the phase are distance 1 from the
	// implicit outside, which we treat as the same phase (replicate), so
	// only real internal boundaries generate distance sources.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if d[i] == 0 {
				continue
			}
			if x > 0 && d[i-1]+1 < d[i] {
				d[i] = d[i-1] + 1
			}
			if y > 0 && d[i-w]+1 < d[i] {
				d[i] = d[i-w] + 1
			}
		}
	}
	for y := h - 1; y >= 0; y-- {
		for x := w - 1; x >= 0; x-- {
			i := y*w + x
			if d[i] == 0 {
				continue
			}
			if x < w-1 && d[i+1]+1 < d[i] {
				d[i] = d[i+1] + 1
			}
			if y < h-1 && d[i+w]+1 < d[i] {
				d[i] = d[i+w] + 1
			}
		}
	}
	return d
}

// localMax reports whether pixel (y,x) is a 4-neighbourhood local maximum
// (plateaus count) of the distance field — a medial pixel of its phase.
func localMax(d []int32, h, w, y, x int) bool {
	v := d[y*w+x]
	if v == 0 {
		return false
	}
	if x > 0 && d[y*w+x-1] > v {
		return false
	}
	if x < w-1 && d[y*w+x+1] > v {
		return false
	}
	if y > 0 && d[(y-1)*w+x] > v {
		return false
	}
	if y < h-1 && d[(y+1)*w+x] > v {
		return false
	}
	return true
}

// cluster groups 4-connected failing pixels of the same kind into
// hotspots.
func (m Model) cluster(fail []uint8, h, w int) []Hotspot {
	seen := make([]bool, len(fail))
	var out []Hotspot
	var stack []int
	for start, f := range fail {
		if f == 0 || seen[start] {
			continue
		}
		kind := f
		stack = append(stack[:0], start)
		seen[start] = true
		var sumX, sumY float64
		minX, minY, maxX, maxY := w, h, -1, -1
		count := 0
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			y, x := p/w, p%w
			sumX += float64(x)
			sumY += float64(y)
			count++
			if x < minX {
				minX = x
			}
			if y < minY {
				minY = y
			}
			if x > maxX {
				maxX = x
			}
			if y > maxY {
				maxY = y
			}
			for _, q := range [4]int{p - 1, p + 1, p - w, p + w} {
				if q < 0 || q >= len(fail) || seen[q] || fail[q] != kind {
					continue
				}
				// Do not wrap across row boundaries.
				if (q == p-1 && x == 0) || (q == p+1 && x == w-1) {
					continue
				}
				seen[q] = true
				stack = append(stack, q)
			}
		}
		if count < m.MinClusterPx {
			continue
		}
		k := FailOpen
		if kind == 2 {
			k = FailBridge
		}
		cx := (sumX/float64(count) + 0.5) * m.PitchNM
		cy := (sumY/float64(count) + 0.5) * m.PitchNM
		out = append(out, Hotspot{
			Center: geom.Rect{
				X0: float64(minX) * m.PitchNM,
				Y0: float64(minY) * m.PitchNM,
				X1: float64(maxX+1) * m.PitchNM,
				Y1: float64(maxY+1) * m.PitchNM,
			},
			Kind:   k,
			Pixels: count,
		})
		// Recenter the bounding rect on the centroid for stable cores.
		last := &out[len(out)-1]
		wd, ht := last.Center.W(), last.Center.H()
		last.Center = geom.RectCWH(cx, cy, wd, ht)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Center, out[j].Center
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		return a.X0 < b.X0
	})
	return out
}

// HotspotPoints reduces hotspots to their centre points (cx, cy) in nm —
// the "process weak point" locations a detector must cover with a clip
// core.
func HotspotPoints(hs []Hotspot) [][2]float64 {
	pts := make([][2]float64, len(hs))
	for i, h := range hs {
		pts[i] = [2]float64{h.Center.CX(), h.Center.CY()}
	}
	return pts
}
