package litho

import (
	"math"
	"testing"
	"testing/quick"

	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

func TestGaussKernelNormalizedAndSymmetric(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5, 4} {
		k := gaussKernel(sigma)
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sigma %v: kernel sum %v", sigma, sum)
		}
		for i := range k {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Fatalf("sigma %v: kernel asymmetric", sigma)
			}
		}
		// Peak at centre.
		if k[len(k)/2] < k[0] {
			t.Fatalf("sigma %v: kernel not peaked", sigma)
		}
	}
}

func TestGaussKernelDegenerateSigma(t *testing.T) {
	k := gaussKernel(0)
	if len(k) != 1 || k[0] != 1 {
		t.Fatalf("zero sigma should be identity: %v", k)
	}
}

func TestAerialPreservesMassAndRange(t *testing.T) {
	m := DefaultModel()
	mask := tensor.New(1, 32, 32)
	for y := 10; y < 22; y++ {
		for x := 10; x < 22; x++ {
			mask.Set(1, 0, y, x)
		}
	}
	a := m.Aerial(mask)
	for _, v := range a.Data() {
		if v < 0 || v > 1.0001 {
			t.Fatalf("aerial intensity %v out of [0,1]", v)
		}
	}
	// Blur spreads but interior of a large pad stays bright.
	if a.At(0, 16, 16) < 0.8 {
		t.Fatalf("pad centre too dim: %v", a.At(0, 16, 16))
	}
	if a.At(0, 0, 0) > 0.2 {
		t.Fatalf("far corner too bright: %v", a.At(0, 0, 0))
	}
}

func TestPrintMonotoneInDose(t *testing.T) {
	m := DefaultModel()
	f := func(seed int64) bool {
		mask := tensor.New(1, 16, 16)
		// Deterministic pseudo-pattern from the seed.
		s := uint64(seed)
		for i := range mask.Data() {
			s = s*6364136223846793005 + 1442695040888963407
			if s>>60 < 6 {
				mask.Data()[i] = 1
			}
		}
		a := m.Aerial(mask)
		lo := m.Print(a, 0.9)
		hi := m.Print(a, 1.1)
		// Everything printed at low dose must also print at high dose.
		for i := range lo.Data() {
			if lo.Data()[i] == 1 && hi.Data()[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// isolatedNarrowLine builds a layout with one sub-resolution line that must
// fail open, far from anything else.
func isolatedNarrowLine() *layout.Layout {
	l := layout.New(layout.R(0, 0, 512, 512))
	l.Add(layout.R(240, 100, 252, 400)) // 12 nm line, σ=14 nm optics
	return l
}

// relaxedWidePattern builds a layout that prints cleanly: wide lines, wide
// spaces.
func relaxedWidePattern() *layout.Layout {
	l := layout.New(layout.R(0, 0, 512, 512))
	for i := 0; i < 3; i++ {
		x := 60 + i*160
		l.Add(layout.R(x, 60, x+80, 452))
	}
	return l
}

// tightPairPattern builds two lines separated by a sub-resolution space
// that must bridge.
func tightPairPattern() *layout.Layout {
	l := layout.New(layout.R(0, 0, 512, 512))
	l.Add(layout.R(180, 100, 248, 400))
	l.Add(layout.R(258, 100, 326, 400)) // 10 nm space
	return l
}

func TestSimulateFindsOpenOnNarrowLine(t *testing.T) {
	m := DefaultModel()
	hs := m.Simulate(isolatedNarrowLine(), layout.R(0, 0, 512, 512))
	if len(hs) == 0 {
		t.Fatal("narrow line should fail open")
	}
	foundOpen := false
	for _, h := range hs {
		if h.Kind == FailOpen {
			foundOpen = true
			// The failure must sit on the line (x ≈ 246).
			if h.Center.CX() < 200 || h.Center.CX() > 290 {
				t.Fatalf("open failure at unexpected x: %v", h.Center)
			}
		}
	}
	if !foundOpen {
		t.Fatalf("no open failure among %v", hs)
	}
}

func TestSimulateFindsBridgeOnTightSpace(t *testing.T) {
	m := DefaultModel()
	hs := m.Simulate(tightPairPattern(), layout.R(0, 0, 512, 512))
	foundBridge := false
	for _, h := range hs {
		if h.Kind == FailBridge {
			foundBridge = true
			if h.Center.CX() < 240 || h.Center.CX() > 270 {
				t.Fatalf("bridge at unexpected x: %v", h.Center)
			}
		}
	}
	if !foundBridge {
		t.Fatalf("no bridge failure among %v", hs)
	}
}

func TestSimulateCleanOnRelaxedPattern(t *testing.T) {
	m := DefaultModel()
	hs := m.Simulate(relaxedWidePattern(), layout.R(0, 0, 512, 512))
	if len(hs) != 0 {
		t.Fatalf("relaxed pattern should be hotspot-free, got %v", hs)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := DefaultModel()
	l := tightPairPattern()
	a := m.Simulate(l, layout.R(0, 0, 512, 512))
	b := m.Simulate(l, layout.R(0, 0, 512, 512))
	if len(a) != len(b) {
		t.Fatal("non-deterministic hotspot count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic hotspot %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWiderProcessWindowFindsMoreHotspots(t *testing.T) {
	// Monotonicity: a stricter (wider) dose window can only add failures.
	narrow := DefaultModel()
	narrow.DoseLatitude = 0.05
	wide := DefaultModel()
	wide.DoseLatitude = 0.20
	l := layout.New(layout.R(0, 0, 512, 512))
	// Marginal geometry: a moderately narrow line.
	l.Add(layout.R(200, 100, 226, 400))
	l.Add(layout.R(260, 100, 300, 400))
	nN := countFailPixels(narrow, l)
	nW := countFailPixels(wide, l)
	if nW < nN {
		t.Fatalf("wider window found fewer failing pixels: %d vs %d", nW, nN)
	}
}

func countFailPixels(m Model, l *layout.Layout) int {
	hs := m.Simulate(l, l.Bounds)
	total := 0
	for _, h := range hs {
		total += h.Pixels
	}
	return total
}

func TestMinClusterFiltersNoise(t *testing.T) {
	strict := DefaultModel()
	strict.MinClusterPx = 1 << 30 // absurd: filters everything
	hs := strict.Simulate(isolatedNarrowLine(), layout.R(0, 0, 512, 512))
	if len(hs) != 0 {
		t.Fatalf("MinClusterPx filter not applied: %v", hs)
	}
}

func TestHotspotPoints(t *testing.T) {
	m := DefaultModel()
	hs := m.Simulate(tightPairPattern(), layout.R(0, 0, 512, 512))
	pts := HotspotPoints(hs)
	if len(pts) != len(hs) {
		t.Fatal("point count mismatch")
	}
	for i := range pts {
		if pts[i][0] != hs[i].Center.CX() || pts[i][1] != hs[i].Center.CY() {
			t.Fatal("point/center mismatch")
		}
	}
}

func TestClusterDoesNotWrapRows(t *testing.T) {
	// Two failing pixels at the end of one row and the start of the next
	// are not 4-connected; they must form two clusters.
	m := Model{PitchNM: 1, MinClusterPx: 1}
	w, h := 8, 4
	fail := make([]uint8, w*h)
	fail[1*w+(w-1)] = 1 // (y=1, x=7)
	fail[2*w+0] = 1     // (y=2, x=0)
	got := m.cluster(fail, h, w)
	if len(got) != 2 {
		t.Fatalf("row wrap: want 2 clusters, got %d", len(got))
	}
}
