package litho

import (
	"math"
	"testing"

	"rhsd/internal/tensor"
)

// squareMask builds a [1,n,n] mask with a centred square of the given
// half-size.
func squareMask(n, half int) *tensor.Tensor {
	m := tensor.New(1, n, n)
	for y := n/2 - half; y < n/2+half; y++ {
		for x := n/2 - half; x < n/2+half; x++ {
			m.Set(1, 0, y, x)
		}
	}
	return m
}

func TestEPEIdenticalContoursIsZero(t *testing.T) {
	m := DefaultModel()
	mask := squareMask(32, 8)
	st := m.EPE(mask, mask.Clone(), 10)
	if st.MeanNM != 0 || st.MaxNM != 0 {
		t.Fatalf("self-EPE must be zero: %+v", st)
	}
	if st.Edges == 0 || st.Unmatched != 0 {
		t.Fatalf("edge accounting: %+v", st)
	}
}

func TestEPEUniformShrinkIsOnePixel(t *testing.T) {
	m := DefaultModel()
	mask := squareMask(32, 8)
	printed := squareMask(32, 7) // uniformly eroded by 1 px
	st := m.EPE(mask, printed, 10)
	if math.Abs(st.MeanNM-m.PitchNM) > 0.35*m.PitchNM {
		t.Fatalf("1-px erosion should give EPE ≈ %v nm, got %+v", m.PitchNM, st)
	}
}

func TestEPEVanishedFeatureIsUnmatched(t *testing.T) {
	m := DefaultModel()
	mask := squareMask(64, 6)
	printed := tensor.New(1, 64, 64) // nothing printed
	st := m.EPE(mask, printed, 3)
	if st.Unmatched == 0 {
		t.Fatalf("vanished feature must be unmatched: %+v", st)
	}
	if !math.IsNaN(st.MeanNM) && st.Edges > 0 {
		t.Fatalf("no matched edges expected: %+v", st)
	}
}

func TestEPEGrowsWithDoseError(t *testing.T) {
	m := DefaultModel()
	// A printable isolated line.
	l := relaxedWidePattern()
	mask := l.Rasterize(l.Bounds, m.PitchNM)
	nominal := m.EPEAtDose(mask, 1.0, 20)
	under := m.EPEAtDose(mask, 0.8, 20)
	over := m.EPEAtDose(mask, 1.25, 20)
	if !(under.MeanNM >= nominal.MeanNM) {
		t.Fatalf("underdose EPE %v should exceed nominal %v", under.MeanNM, nominal.MeanNM)
	}
	if !(over.MeanNM >= nominal.MeanNM) {
		t.Fatalf("overdose EPE %v should exceed nominal %v", over.MeanNM, nominal.MeanNM)
	}
}

func TestEPEShapeMismatchPanics(t *testing.T) {
	m := DefaultModel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.EPE(tensor.New(1, 8, 8), tensor.New(1, 9, 9), 3)
}
