// Package guard is the repo's panic-to-error boundary. The compute
// kernels (tensor, nn, hsd) keep zero-cost panic contracts on their hot
// paths — shape checks compile to a compare and a static panic, with no
// error plumbing through the inner loops. Long-running callers (the
// rhsd-serve daemon, the *Checked public wrappers) cannot afford a panic
// tearing the process down, so they run kernel entry points through
// guard.Run, which converts any panic into a typed *PanicError carrying
// the recovered value and the goroutine stack captured at the recovery
// point.
//
// The contract is one recover per boundary crossing: internal code never
// recovers, public checked wrappers recover exactly once, and everything
// in between propagates freely — so a stack in a PanicError always points
// at the kernel that raised it.
package guard

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at a guard boundary.
type PanicError struct {
	// Value is the value the kernel panicked with.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

// Error formats the panic value without the stack; callers that want the
// stack for logs read e.Stack explicitly so error strings stay bounded.
func (e *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run invokes fn and returns nil on normal completion, or a *PanicError
// if fn panicked. A nil-value panic (panic(nil)) is reported too, as Go
// runtimes since 1.21 convert it to a *runtime.PanicNilError.
func Run(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}
