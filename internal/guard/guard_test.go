package guard

import (
	"errors"
	"strings"
	"testing"
)

func TestRunNoPanic(t *testing.T) {
	ran := false
	if err := Run(func() { ran = true }); err != nil {
		t.Fatalf("Run returned %v for a clean fn", err)
	}
	if !ran {
		t.Fatal("Run did not invoke fn")
	}
}

func TestRunConvertsPanic(t *testing.T) {
	err := Run(func() { panic("kernel shape mismatch") })
	if err == nil {
		t.Fatal("Run returned nil for a panicking fn")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if pe.Value != "kernel shape mismatch" {
		t.Fatalf("recovered value %v", pe.Value)
	}
	if !strings.Contains(err.Error(), "kernel shape mismatch") {
		t.Fatalf("error string %q does not mention the panic value", err.Error())
	}
	if !strings.Contains(string(pe.Stack), "guard.Run") {
		t.Fatalf("stack does not cover the boundary:\n%s", pe.Stack)
	}
}

func TestRunUnwrapsErrorPanics(t *testing.T) {
	sentinel := errors.New("inner failure")
	err := Run(func() { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is cannot reach the panicked error through %v", err)
	}
	if pe := (*PanicError)(nil); !errors.As(err, &pe) || pe.Unwrap() != sentinel {
		t.Fatalf("Unwrap did not expose the panicked error")
	}
}

func TestRunNonErrorUnwrapIsNil(t *testing.T) {
	err := Run(func() { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if pe.Unwrap() != nil {
		t.Fatalf("Unwrap of a non-error panic value = %v, want nil", pe.Unwrap())
	}
}

func TestRunRuntimePanic(t *testing.T) {
	err := Run(func() {
		var p *int
		_ = *p // nil dereference: a runtime panic, not a kernel panic
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("runtime panic not converted: %v", err)
	}
}
