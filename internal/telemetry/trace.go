package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Request-scoped tracing: a span tree per scan request plus a fixed-size
// ring of the last N completed traces (the "flight recorder").
//
// The design contract mirrors the rest of this package: when tracing is
// not armed every instrumented site sees a nil *Trace/*TraceSpan and
// pays a nil check, nothing else — no clock read, no allocation. When
// armed, span structs are recycled through a freelist owned by the
// recorder (spans of an evicted trace become the spans of a future
// one), timestamps are monotonic offsets from the trace start, and both
// the span count per trace and the child count per span are bounded
// with explicit drop counters so a pathological request cannot grow
// without limit.
//
// Concurrency: a trace is mutated under its own mutex (megatile spans
// start and end concurrently from scan workers), the recorder ring and
// span freelist under the recorder's mutex. Lock order is trace →
// recorder; nothing takes them in the other order. Completed traces are
// immutable — every mutating entry point checks t.done — so ring reads
// only need the recorder lock. Span handles must not be used after the
// owning trace completes: completion is what returns spans to the
// freelist's reach, and our callers (serve, hsd) clear their trace
// references before calling Complete.

// Default bounds for traces held by a FlightRecorder.
const (
	// DefaultMaxSpans bounds the total spans in one trace. A full-chip
	// megatile scan at factor 8 is 64 megatile spans × ~10 stage spans;
	// per-tile scans of large chips are the only workload that hits the
	// cap, and they record the overflow in DroppedSpans.
	DefaultMaxSpans = 8192
	// DefaultMaxChildren bounds the children of a single span.
	DefaultMaxChildren = 512
)

// spanOpen marks a span whose End has not run yet.
const spanOpen int64 = -1

// TraceAttr is one key/value annotation on a span. Val carries numeric
// attributes; Str, when non-empty, takes precedence (string attribute).
type TraceAttr struct {
	Key string
	Val int64
	Str string
}

// MarshalJSON renders the attribute as a single-key object — {"worker":3}
// or {"cache":"hit"} — with the value typed as number or string.
func (a TraceAttr) MarshalJSON() ([]byte, error) {
	if a.Str != "" {
		return []byte(fmt.Sprintf("{%q:%q}", a.Key, a.Str)), nil
	}
	return []byte(fmt.Sprintf("{%q:%d}", a.Key, a.Val)), nil
}

// UnmarshalJSON parses the single-key object form MarshalJSON emits, so
// clients (and the serve selftest) can round-trip TraceData.
func (a *TraceAttr) UnmarshalJSON(b []byte) error {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for k, v := range m {
		a.Key = k
		switch val := v.(type) {
		case string:
			a.Str = val
		case float64:
			a.Val = int64(val)
		}
	}
	return nil
}

// TraceSpan is one node of a trace's span tree. Spans are pooled: the
// struct and its children/attrs slices are recycled when the owning
// trace is evicted from the flight recorder, so steady-state tracing
// stops allocating once the pool has warmed to the workload's shape.
type TraceSpan struct {
	t        *Trace
	name     string
	startNs  int64
	endNs    int64
	parent   *TraceSpan
	children []*TraceSpan
	dropped  int64
	attrs    []TraceAttr
	freeNext *TraceSpan
}

// SetAttr attaches a numeric attribute. Nil-safe; no-op after the
// owning trace completes.
func (s *TraceSpan) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		s.attrs = append(s.attrs, TraceAttr{Key: key, Val: v})
	}
	t.mu.Unlock()
}

// SetAttrStr attaches a string attribute. Nil-safe. val should be a
// constant or an already-materialized string: the span retains it.
func (s *TraceSpan) SetAttrStr(key, val string) {
	if s == nil {
		return
	}
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		s.attrs = append(s.attrs, TraceAttr{Key: key, Str: val})
	}
	t.mu.Unlock()
}

// Trace is the span tree for one request. All methods are nil-safe so
// untraced requests thread a nil *Trace through the same code path.
type Trace struct {
	rec       *FlightRecorder
	traceID   [16]byte
	spanID    [8]byte
	parentID  [8]byte
	hasParent bool
	reqID     string
	start     time.Time
	seq       uint64

	mu      sync.Mutex
	root    *TraceSpan
	nspans  int
	dropped int64
	done    bool
}

// clockNs returns the monotonic offset from the trace start.
func (t *Trace) clockNs() int64 { return int64(time.Since(t.start)) }

// Root returns the root span (the request span). Nil-safe.
func (t *Trace) Root() *TraceSpan {
	if t == nil {
		return nil
	}
	return t.root
}

// RequestID returns the request id the trace was started with.
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.reqID
}

// TraceID returns the 32-hex-digit W3C trace id, or "" on a nil trace.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return hex.EncodeToString(t.traceID[:])
}

// TraceParent renders the outbound W3C traceparent header for this
// trace: version 00, this process's root span id, sampled flag set.
func (t *Trace) TraceParent() string {
	if t == nil {
		return ""
	}
	return FormatTraceParent(t.traceID, t.spanID)
}

// StartSpan opens a child span under parent. A nil trace, a nil parent
// (which means the intended parent was itself dropped), a completed
// trace, or an exhausted span budget all return nil; child spans of a
// nil span are dropped with it, so truncation prunes whole subtrees and
// the drop counters record how much is missing.
func (t *Trace) StartSpan(parent *TraceSpan, name string) *TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	if parent == nil {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	if t.nspans >= t.rec.maxSpans || len(parent.children) >= t.rec.maxChildren {
		parent.dropped++
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	s := t.rec.spanGet()
	s.t = t
	s.name = name
	s.startNs = t.clockNs()
	s.endNs = spanOpen
	s.parent = parent
	parent.children = append(parent.children, s)
	t.nspans++
	t.mu.Unlock()
	return s
}

// EndSpan closes a span at the current monotonic offset. Nil-safe and
// idempotent; no-op after the trace completes (Complete closes any
// still-open spans itself).
func (t *Trace) EndSpan(s *TraceSpan) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if !t.done && s.endNs == spanOpen {
		s.endNs = t.clockNs()
	}
	t.mu.Unlock()
}

// Complete freezes the trace and hands it to the flight recorder's
// ring. Open spans (a timed-out request abandons its scan span) are
// closed at the completion instant. After Complete the trace is
// immutable and span handles into it must not be used. Nil-safe and
// idempotent.
func (t *Trace) Complete() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	now := t.clockNs()
	closeOpenSpans(t.root, now)
	t.mu.Unlock()
	t.rec.complete(t)
}

func closeOpenSpans(s *TraceSpan, now int64) {
	if s.endNs == spanOpen {
		s.endNs = now
	}
	for _, c := range s.children {
		closeOpenSpans(c, now)
	}
}

// FlightRecorder retains the last N completed traces in a ring,
// oldest first, recycling the evicted trace's spans through a freelist.
type FlightRecorder struct {
	maxTraces   int
	maxSpans    int
	maxChildren int

	mu   sync.Mutex
	ring []*Trace
	free *TraceSpan
	seq  uint64
}

// NewFlightRecorder creates a recorder retaining the last n completed
// traces (n < 1 is clamped to 1) with the default span bounds.
func NewFlightRecorder(n int) *FlightRecorder {
	return NewFlightRecorderLimits(n, DefaultMaxSpans, DefaultMaxChildren)
}

// NewFlightRecorderLimits is NewFlightRecorder with explicit per-trace
// span and per-span child bounds (mainly for tests of the bounds).
func NewFlightRecorderLimits(n, maxSpans, maxChildren int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	if maxSpans < 1 {
		maxSpans = 1
	}
	if maxChildren < 1 {
		maxChildren = 1
	}
	return &FlightRecorder{
		maxTraces:   n,
		maxSpans:    maxSpans,
		maxChildren: maxChildren,
		ring:        make([]*Trace, 0, n),
	}
}

// Cap returns the number of traces the recorder retains.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.maxTraces
}

// StartTrace begins a new trace whose root span is named name. reqID is
// the serving request id (used as an alternate lookup key), and
// traceparent, when it parses as a W3C traceparent header, donates the
// inbound trace id and parent span id so a coordinator→worker hop
// shares one trace id. A nil recorder returns a nil trace, which every
// Trace/TraceSpan method accepts as "tracing off".
func (r *FlightRecorder) StartTrace(name, reqID, traceparent string) *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{rec: r, reqID: reqID, start: time.Now()}
	if tid, sid, ok := ParseTraceParent(traceparent); ok {
		t.traceID = tid
		t.parentID = sid
		t.hasParent = true
		randBytes(t.spanID[:])
	} else {
		randBytes(t.traceID[:])
		randBytes(t.spanID[:])
	}
	root := r.spanGet()
	root.t = t
	root.name = name
	root.startNs = 0
	root.endNs = spanOpen
	t.root = root
	t.nspans = 1
	return t
}

// randBytes fills b from crypto/rand, falling back to a non-zero
// constant pattern if the system randomness source fails (ids must be
// non-zero to be valid traceparent material).
func randBytes(b []byte) {
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = byte(0xa5 ^ i)
		}
	}
}

// spanGet pops a span from the freelist or allocates a fresh one.
func (r *FlightRecorder) spanGet() *TraceSpan {
	r.mu.Lock()
	s := r.free
	if s != nil {
		r.free = s.freeNext
	}
	r.mu.Unlock()
	if s == nil {
		return &TraceSpan{}
	}
	s.freeNext = nil
	return s
}

// complete appends a finished trace to the ring, evicting (and
// recycling the spans of) the oldest trace beyond the retention cap.
func (r *FlightRecorder) complete(t *Trace) {
	r.mu.Lock()
	r.seq++
	t.seq = r.seq
	r.ring = append(r.ring, t)
	for len(r.ring) > r.maxTraces {
		old := r.ring[0]
		copy(r.ring, r.ring[1:])
		r.ring[len(r.ring)-1] = nil
		r.ring = r.ring[:len(r.ring)-1]
		r.recycleLocked(old.root)
		old.root = nil
	}
	r.mu.Unlock()
}

// recycleLocked pushes a span subtree onto the freelist, clearing
// identity but keeping slice capacity so reuse does not allocate.
// Caller holds r.mu; the evicted trace is done, so no other goroutine
// can reach these spans through legal API use.
func (r *FlightRecorder) recycleLocked(s *TraceSpan) {
	for _, c := range s.children {
		r.recycleLocked(c)
	}
	s.t = nil
	s.name = ""
	s.parent = nil
	s.children = s.children[:0]
	s.attrs = s.attrs[:0]
	s.dropped = 0
	s.freeNext = r.free
	r.free = s
}

// TraceSummary is one row of the recorder listing.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	RequestID  string    `json:"request_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Spans      int       `json:"spans"`
	Dropped    int64     `json:"dropped_spans,omitempty"`
	Seq        uint64    `json:"seq"`
}

// Traces lists retained traces, newest first.
func (r *FlightRecorder) Traces() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		t := r.ring[i]
		out = append(out, TraceSummary{
			TraceID:    hex.EncodeToString(t.traceID[:]),
			RequestID:  t.reqID,
			Name:       t.root.name,
			Start:      t.start,
			DurationNs: t.root.endNs,
			Spans:      t.nspans,
			Dropped:    t.dropped,
			Seq:        t.seq,
		})
	}
	return out
}

// Trace fetches one retained trace by trace id (32 hex digits) or by
// request id.
func (r *FlightRecorder) Trace(id string) (TraceData, bool) {
	if r == nil {
		return TraceData{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.ring) - 1; i >= 0; i-- {
		t := r.ring[i]
		if hex.EncodeToString(t.traceID[:]) == id || t.reqID == id {
			return t.snapshotLocked(), true
		}
	}
	return TraceData{}, false
}

// SpanData is a deep-copied, render-ready span.
type SpanData struct {
	Name            string      `json:"name"`
	StartNs         int64       `json:"start_ns"`
	DurationNs      int64       `json:"duration_ns"`
	Attrs           []TraceAttr `json:"attrs,omitempty"`
	DroppedChildren int64       `json:"dropped_children,omitempty"`
	Children        []SpanData  `json:"children,omitempty"`
}

// TraceData is a deep-copied, render-ready trace. It shares no memory
// with the recorder's pooled spans, so it stays valid after the trace
// is evicted and its spans are reused.
type TraceData struct {
	TraceID      string    `json:"trace_id"`
	SpanID       string    `json:"span_id"`
	ParentSpanID string    `json:"parent_span_id,omitempty"`
	RequestID    string    `json:"request_id"`
	Start        time.Time `json:"start"`
	DurationNs   int64     `json:"duration_ns"`
	Spans        int       `json:"spans"`
	DroppedSpans int64     `json:"dropped_spans,omitempty"`
	Complete     bool      `json:"complete"`
	Root         SpanData  `json:"root"`
}

// Snapshot deep-copies the trace's current state. Valid on a live
// trace (slow-scan logging snapshots before Complete) and on a nil
// trace (zero value).
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Trace) snapshotLocked() TraceData {
	d := TraceData{
		TraceID:      hex.EncodeToString(t.traceID[:]),
		SpanID:       hex.EncodeToString(t.spanID[:]),
		RequestID:    t.reqID,
		Start:        t.start,
		Spans:        t.nspans,
		DroppedSpans: t.dropped,
		Complete:     t.done,
		Root:         copySpan(t.root, t.clockNs()),
	}
	if t.hasParent {
		d.ParentSpanID = hex.EncodeToString(t.parentID[:])
	}
	d.DurationNs = d.Root.DurationNs
	return d
}

// copySpan deep-copies one span; open spans report their duration as
// elapsed-so-far at the snapshot instant.
func copySpan(s *TraceSpan, now int64) SpanData {
	end := s.endNs
	if end == spanOpen {
		end = now
	}
	d := SpanData{
		Name:            s.name,
		StartNs:         s.startNs,
		DurationNs:      end - s.startNs,
		DroppedChildren: s.dropped,
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]TraceAttr(nil), s.attrs...)
	}
	if len(s.children) > 0 {
		d.Children = make([]SpanData, len(s.children))
		for i, c := range s.children {
			d.Children[i] = copySpan(c, now)
		}
	}
	return d
}

// RenderText writes the trace as an aligned tree: start offset and
// duration in fixed-width millisecond columns, then the indented span
// name and its attributes.
func (d TraceData) RenderText(w io.Writer) {
	state := "live"
	if d.Complete {
		state = "complete"
	}
	fmt.Fprintf(w, "trace %s  request %s  %s  spans %d", d.TraceID, d.RequestID, state, d.Spans)
	if d.DroppedSpans > 0 {
		fmt.Fprintf(w, " (+%d dropped)", d.DroppedSpans)
	}
	if d.ParentSpanID != "" {
		fmt.Fprintf(w, "  parent-span %s", d.ParentSpanID)
	}
	fmt.Fprintf(w, "\n")
	renderSpan(w, d.Root, 0)
}

func renderSpan(w io.Writer, s SpanData, depth int) {
	fmt.Fprintf(w, "%11.3fms %11.3fms  ", float64(s.StartNs)/1e6, float64(s.DurationNs)/1e6)
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	io.WriteString(w, s.Name)
	for _, a := range s.Attrs {
		if a.Str != "" {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(w, " %s=%d", a.Key, a.Val)
		}
	}
	if s.DroppedChildren > 0 {
		fmt.Fprintf(w, " [+%d children dropped]", s.DroppedChildren)
	}
	io.WriteString(w, "\n")
	for _, c := range s.Children {
		renderSpan(w, c, depth+1)
	}
}

// ParseTraceParent parses a W3C traceparent header
// (00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>).
// Only version 00 is accepted; all-zero trace or span ids are invalid
// per the spec.
func ParseTraceParent(h string) (traceID [16]byte, spanID [8]byte, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return traceID, spanID, false
	}
	if _, err := hex.Decode(traceID[:], []byte(h[3:35])); err != nil {
		return traceID, spanID, false
	}
	if _, err := hex.Decode(spanID[:], []byte(h[36:52])); err != nil {
		return traceID, spanID, false
	}
	if !isHex(h[53]) || !isHex(h[54]) {
		return traceID, spanID, false
	}
	if allZero(traceID[:]) || allZero(spanID[:]) {
		return traceID, spanID, false
	}
	return traceID, spanID, true
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// FormatTraceParent renders a version-00 traceparent with the sampled
// flag set.
func FormatTraceParent(traceID [16]byte, spanID [8]byte) string {
	return "00-" + hex.EncodeToString(traceID[:]) + "-" + hex.EncodeToString(spanID[:]) + "-01"
}

// traceCtxKey keys the request trace in a context.
type traceCtxKey struct{}

// ContextWithTrace attaches the trace to ctx. A nil trace returns ctx
// unchanged so the untraced path adds no context allocation.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the trace attached by ContextWithTrace, or
// nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
