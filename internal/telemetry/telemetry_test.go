package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact Prometheus text output for a
// registry covering every metric kind, label shapes, float formatting
// and the cumulative histogram encoding. The format is a wire contract
// (scrapers parse it), so this is a byte-for-byte comparison.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rhsd_requests_total", "Total requests.", "")
	cs := r.NewCounter("rhsd_responses_total", "Responses by class.", `class="ok"`)
	ce := r.NewCounter("rhsd_responses_total", "Responses by class.", `class="error"`)
	g := r.NewGauge("rhsd_pool_busy_workers", "Workers currently running.", "")
	r.NewGaugeFunc("rhsd_workspace_bytes", "Retained workspace bytes.", "", func() int64 { return 4096 })
	h := r.NewHistogram("rhsd_request_seconds", "Request latency.", `stage="detect"`, []float64{0.25, 0.5, 1})

	c.Add(41)
	c.Inc()
	cs.Add(3)
	ce.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(0.1)  // le 0.25
	h.Observe(0.25) // le 0.25: bounds are inclusive
	h.Observe(0.75) // le 1
	h.Observe(2)    // +Inf

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rhsd_requests_total Total requests.
# TYPE rhsd_requests_total counter
rhsd_requests_total 42
# HELP rhsd_responses_total Responses by class.
# TYPE rhsd_responses_total counter
rhsd_responses_total{class="ok"} 3
rhsd_responses_total{class="error"} 1
# HELP rhsd_pool_busy_workers Workers currently running.
# TYPE rhsd_pool_busy_workers gauge
rhsd_pool_busy_workers 5
# HELP rhsd_workspace_bytes Retained workspace bytes.
# TYPE rhsd_workspace_bytes gauge
rhsd_workspace_bytes 4096
# HELP rhsd_request_seconds Request latency.
# TYPE rhsd_request_seconds histogram
rhsd_request_seconds_bucket{stage="detect",le="0.25"} 2
rhsd_request_seconds_bucket{stage="detect",le="0.5"} 2
rhsd_request_seconds_bucket{stage="detect",le="1"} 3
rhsd_request_seconds_bucket{stage="detect",le="+Inf"} 4
rhsd_request_seconds_sum{stage="detect"} 3.1
rhsd_request_seconds_count{stage="detect"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound bucket
// assignment at and around every boundary.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	cases := []struct {
		v      float64
		bucket int // index into counts; len(bounds) = +Inf
	}{
		{0, 0},
		{0.0009999, 0},
		{0.001, 0}, // le is inclusive
		{0.0010001, 1},
		{0.01, 1},
		{0.05, 2},
		{0.1, 2},
		{0.2, 3},
		{1, 3},
		{1.0000001, 4},
		{math.Inf(1), 4},
	}
	for _, tc := range cases {
		h := newHistogram("", bounds)
		h.Observe(tc.v)
		for i := 0; i <= len(bounds); i++ {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.BucketCount(i); got != want {
				t.Errorf("Observe(%v): bucket %d count %d, want %d", tc.v, i, got, want)
			}
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%v): count %d", tc.v, h.Count())
		}
	}
}

// TestConcurrentExactness hammers one counter, gauge and histogram from
// many goroutines and asserts exact totals afterwards: N writers × M
// observations must produce exactly N×M counts, an exact sum, and bucket
// counts that add up — under -race this also proves the implementation
// is lock- and data-race-free.
func TestConcurrentExactness(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	r := NewRegistry()
	c := r.NewCounter("c_total", "", "")
	g := r.NewGauge("g", "", "")
	h := r.NewHistogram("h_seconds", "", "", []float64{1, 2, 3})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				// Cycle through every bucket including +Inf; values are
				// 0.5, 1.5, 2.5, 3.5 so sums stay exact in float64.
				h.Observe(float64(i%4) + 0.5)
			}
		}(w)
	}
	wg.Wait()

	const total = writers * perWriter
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var bucketSum int64
	for i := 0; i <= 3; i++ {
		if got := h.BucketCount(i); got != total/4 {
			t.Errorf("bucket %d = %d, want %d", i, got, total/4)
		}
		bucketSum += h.BucketCount(i)
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
	// Each group of 4 observations sums to 0.5+1.5+2.5+3.5 = 8.
	if want := float64(total) / 4 * 8; h.Sum() != want {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Max() != 3.5 {
		t.Errorf("max = %v, want 3.5", h.Max())
	}
}

// TestHistogramMaxCAS exercises the monotone max under concurrent
// writers pushing interleaved ascending/descending sequences: the final
// max must be the global maximum regardless of interleaving.
func TestHistogramMaxCAS(t *testing.T) {
	h := newHistogram("", []float64{1e9})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if w%2 == 0 {
					h.Observe(float64(i))
				} else {
					h.Observe(float64(2000 - i))
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Max() != 2000 {
		t.Errorf("max = %v, want 2000", h.Max())
	}
}

// TestHotPathAllocs pins the zero-allocation contract of the observation
// hot path — the property that lets the hsd AllocsPerRun guards stay
// green with telemetry enabled.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "", "")
	g := r.NewGauge("g", "", "")
	h := r.NewHistogram("h_seconds", "", "", ExpBuckets(0.0001, 2.5, 12))
	start := time.Now()
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(123)
		h.Observe(0.005)
		sp := StartSpan(h, "stage")
		sp.End()
		h.ObserveSince(start)
	}); allocs != 0 {
		t.Errorf("hot path allocated %.0f times per run, want 0", allocs)
	}
}

// TestHandler checks the scrape endpoint: content type and body match
// WriteTo.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.", "").Add(5)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 5\n") {
		t.Errorf("body %q", rec.Body.String())
	}
}

// TestRegistrationPanics pins the programming-error diagnostics:
// duplicate series, kind conflicts, invalid names and bad buckets all
// fail loudly at build time rather than corrupting the exposition.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("a_total", "", `k="v"`)
	mustPanic("duplicate series", func() { r.NewCounter("a_total", "", `k="v"`) })
	mustPanic("kind conflict", func() { r.NewGauge("a_total", "", "") })
	mustPanic("invalid name", func() { r.NewCounter("0bad", "", "") })
	mustPanic("empty buckets", func() { r.NewHistogram("h", "", "", nil) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h2", "", "", []float64{1, 1}) })
	mustPanic("bad ExpBuckets", func() { ExpBuckets(0, 2, 3) })
	// Distinct labels under one family is the supported vector form.
	r.NewCounter("a_total", "", `k="w"`)
}

// TestExpBuckets sanity-checks the generator histograms are built from.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(b) != len(want) {
		t.Fatalf("len %d", len(b))
	}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}
