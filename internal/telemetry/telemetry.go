// Package telemetry is the repo's runtime observability core: atomic
// counters, gauges and fixed-bucket histograms collected in a Registry
// that exposes the Prometheus text format (WriteTo / Handler), plus
// lightweight Span timers that double as runtime/trace regions.
//
// Not to be confused with internal/metrics, which implements the
// *paper's evaluation protocol* (accuracy / false-alarm counting for
// Table 1). telemetry is about operating the detector — where a forward
// pass spends its time, how loaded the worker pool is, what a serving
// daemon is doing — not about scoring it against ground truth.
//
// Design constraints, in priority order:
//
//   - Zero-allocation hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations on preallocated
//     state; Span is a value type. Instruments are created once at
//     model/server build time, never per observation, so the
//     zero-allocation inference path in internal/hsd keeps its
//     AllocsPerRun guarantee with telemetry enabled.
//   - No dependencies. The package uses only the standard library, and
//     nothing heavier than net/http (for the scrape handler).
//   - Exact counting. Every observation lands in exactly one bucket and
//     bumps count and sum exactly once, so after writers quiesce the
//     exposition reflects every observation (the concurrent hammer test
//     pins this under -race). A scrape racing live writers may see a
//     histogram whose count, sum and buckets are from slightly different
//     instants; each individual value is still exact.
//
// Metric identity is name plus a preformatted label string (e.g.
// `stage="backbone"`). Series registered under the same family name
// share one HELP/TYPE header and must agree on kind; duplicate
// name+labels panics at registration time — instruments are built at
// startup, so a collision is a programming error, not a runtime
// condition.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is a programming error; it is not checked on
// the hot path, but the exposition will violate Prometheus counter
// semantics.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 metric that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind tags a family with its Prometheus TYPE.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one exposable time series (a metric with a fixed label set).
type series interface {
	// labelsKey returns the preformatted label string identifying the
	// series within its family ("" for unlabelled).
	labelsKey() string
	// expose appends the series' exposition lines for family name.
	expose(buf []byte, name string) []byte
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []series
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format. Registration (the New* methods) locks;
// observation never does. The zero Registry is not usable — create with
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds s under name, creating the family on first use and
// enforcing kind agreement and name+labels uniqueness.
func (r *Registry) register(name, help string, k kind, s series) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.kind, k))
	}
	for _, existing := range f.series {
		if existing.labelsKey() == s.labelsKey() {
			panic(fmt.Sprintf("telemetry: duplicate metric %s{%s}", name, s.labelsKey()))
		}
	}
	f.series = append(f.series, s)
}

// validName checks the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// counterSeries / gaugeSeries wrap the value types with their identity.
type counterSeries struct {
	c      *Counter
	labels string
}

func (s *counterSeries) labelsKey() string { return s.labels }
func (s *counterSeries) expose(buf []byte, name string) []byte {
	buf = appendSample(buf, name, "", s.labels, float64(s.c.Value()))
	return buf
}

type gaugeSeries struct {
	g      *Gauge
	labels string
}

func (s *gaugeSeries) labelsKey() string { return s.labels }
func (s *gaugeSeries) expose(buf []byte, name string) []byte {
	buf = appendSample(buf, name, "", s.labels, float64(s.g.Value()))
	return buf
}

// gaugeFuncSeries reads its value at scrape time. fn must be safe to
// call from the scrape goroutine (typically it reads atomics).
type gaugeFuncSeries struct {
	fn     func() int64
	labels string
}

func (s *gaugeFuncSeries) labelsKey() string { return s.labels }
func (s *gaugeFuncSeries) expose(buf []byte, name string) []byte {
	buf = appendSample(buf, name, "", s.labels, float64(s.fn()))
	return buf
}

// counterFuncSeries is gaugeFuncSeries with counter TYPE semantics: the
// value is read at scrape time from fn, which must be monotone
// non-decreasing (typically an atomic maintained by the instrumented
// component itself, e.g. scancache's hit counters).
type counterFuncSeries struct {
	fn     func() int64
	labels string
}

func (s *counterFuncSeries) labelsKey() string { return s.labels }
func (s *counterFuncSeries) expose(buf []byte, name string) []byte {
	buf = appendSample(buf, name, "", s.labels, float64(s.fn()))
	return buf
}

// NewCounter registers and returns a counter. labels is a preformatted
// Prometheus label body (`stage="backbone"`) or "" for none.
func (r *Registry) NewCounter(name, help, labels string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &counterSeries{c: c, labels: labels})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &gaugeSeries{g: g, labels: labels})
	return g
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn runs on the scrape goroutine and must be race-free against
// the rest of the process (read atomics, not mutable structures).
func (r *Registry) NewGaugeFunc(name, help, labels string, fn func() int64) {
	r.register(name, help, kindGauge, &gaugeFuncSeries{fn: fn, labels: labels})
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time. Use when a component maintains its own atomic counts
// (they predate, or are shared across, registries) and the exposition
// should still carry counter TYPE semantics; fn must be monotone
// non-decreasing and race-free like a NewGaugeFunc callback.
func (r *Registry) NewCounterFunc(name, help, labels string, fn func() int64) {
	r.register(name, help, kindCounter, &counterFuncSeries{fn: fn, labels: labels})
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing; a final +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help, labels string, buckets []float64) *Histogram {
	h := newHistogram(labels, buckets)
	r.register(name, help, kindHistogram, h)
	return h
}

// WriteTo renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; series within a family in registration order too, so output is
// deterministic for a fixed registration sequence.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var buf []byte
	for _, f := range fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, string(f.kind)...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			buf = s.expose(buf, f.name)
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// appendSample appends one `name[suffix]{labels[,extra]} value` line.
func appendSample(buf []byte, name, suffix, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendFloat(buf, v)
	buf = append(buf, '\n')
	return buf
}

// appendFloat renders v the way Prometheus clients conventionally do:
// shortest round-trip representation, integers without an exponent.
func appendFloat(buf []byte, v float64) []byte {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and multiplying by factor — the standard way to cover several
// orders of magnitude of latency with a fixed bucket count.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}
