package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// completeTrace builds a small but realistic trace: root → scan → two
// megatile spans with attrs and a stage child each.
func completeTrace(r *FlightRecorder, reqID string) *Trace {
	tr := r.StartTrace("detect", reqID, "")
	scan := tr.StartSpan(tr.Root(), "scan")
	for i := 0; i < 2; i++ {
		mt := tr.StartSpan(scan, "megatile")
		mt.SetAttr("worker", int64(i))
		mt.SetAttrStr("cache", "miss")
		st := tr.StartSpan(mt, "backbone")
		tr.EndSpan(st)
		tr.EndSpan(mt)
	}
	tr.EndSpan(scan)
	tr.Complete()
	return tr
}

func TestFlightRecorderRingOrder(t *testing.T) {
	const cap = 4
	r := NewFlightRecorder(cap)
	var ids []string
	for i := 0; i < cap+3; i++ {
		tr := completeTrace(r, fmt.Sprintf("req-%d", i))
		ids = append(ids, tr.TraceID())
	}
	got := r.Traces()
	if len(got) != cap {
		t.Fatalf("retained %d traces, want %d", len(got), cap)
	}
	// Newest first, and exactly the last cap completions retained.
	for i, s := range got {
		wantReq := fmt.Sprintf("req-%d", cap+3-1-i)
		if s.RequestID != wantReq {
			t.Errorf("slot %d: request %q, want %q", i, s.RequestID, wantReq)
		}
		if i > 0 && got[i-1].Seq <= s.Seq {
			t.Errorf("slot %d: seq %d not decreasing (prev %d)", i, s.Seq, got[i-1].Seq)
		}
	}
	// Evicted traces are gone; retained ones resolve by both keys.
	if _, ok := r.Trace(ids[0]); ok {
		t.Error("oldest trace still retrievable after eviction")
	}
	if _, ok := r.Trace(ids[len(ids)-1]); !ok {
		t.Error("newest trace not retrievable by trace id")
	}
	if _, ok := r.Trace("req-6"); !ok {
		t.Error("newest trace not retrievable by request id")
	}
}

func TestTraceTreeShapeAndSnapshot(t *testing.T) {
	r := NewFlightRecorder(2)
	tr := completeTrace(r, "req-1")
	data, ok := r.Trace(tr.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if !data.Complete || data.Spans != 6 {
		t.Fatalf("complete=%v spans=%d, want complete with 6 spans", data.Complete, data.Spans)
	}
	if data.Root.Name != "detect" || len(data.Root.Children) != 1 {
		t.Fatalf("root %q with %d children, want detect with 1", data.Root.Name, len(data.Root.Children))
	}
	scan := data.Root.Children[0]
	if scan.Name != "scan" || len(scan.Children) != 2 {
		t.Fatalf("scan span %q with %d children, want 2 megatiles", scan.Name, len(scan.Children))
	}
	for _, mt := range scan.Children {
		if len(mt.Attrs) != 2 || mt.Attrs[0].Key != "worker" || mt.Attrs[1].Str != "miss" {
			t.Fatalf("megatile attrs %+v, want worker + cache=miss", mt.Attrs)
		}
		if len(mt.Children) != 1 || mt.Children[0].Name != "backbone" {
			t.Fatalf("megatile children %+v, want one backbone stage", mt.Children)
		}
		// Children must nest inside their parent's interval.
		st := mt.Children[0]
		if st.StartNs < mt.StartNs || st.StartNs+st.DurationNs > mt.StartNs+mt.DurationNs {
			t.Errorf("stage [%d,+%d] outside megatile [%d,+%d]",
				st.StartNs, st.DurationNs, mt.StartNs, mt.DurationNs)
		}
	}
}

// TestSnapshotSurvivesEviction pins the aliasing contract of the span
// pool: a TraceData snapshot shares no memory with pooled spans, so it
// must stay intact after its trace is evicted and its spans recycled
// into new traces that overwrite every field.
func TestSnapshotSurvivesEviction(t *testing.T) {
	r := NewFlightRecorder(1)
	tr := completeTrace(r, "victim")
	data, ok := r.Trace(tr.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	blob, _ := json.Marshal(data)
	// Evict and aggressively reuse the pooled spans.
	for i := 0; i < 10; i++ {
		next := r.StartTrace("other", "other", "")
		sp := next.StartSpan(next.Root(), "overwrite")
		sp.SetAttr("x", 999)
		sp.SetAttrStr("cache", "hit")
		next.EndSpan(sp)
		next.Complete()
	}
	blob2, _ := json.Marshal(data)
	if string(blob) != string(blob2) {
		t.Fatalf("snapshot mutated by span recycling:\nbefore %s\nafter  %s", blob, blob2)
	}
}

func TestSpanBudgets(t *testing.T) {
	// maxChildren: the third child of root is dropped, and so is its
	// entire would-be subtree.
	r := NewFlightRecorderLimits(1, 100, 2)
	tr := r.StartTrace("detect", "req", "")
	for i := 0; i < 5; i++ {
		c := tr.StartSpan(tr.Root(), "child")
		// Children of a dropped span are dropped with it.
		tr.EndSpan(tr.StartSpan(c, "grandchild"))
		tr.EndSpan(c)
	}
	tr.Complete()
	data, _ := r.Trace(tr.TraceID())
	if len(data.Root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (budget)", len(data.Root.Children))
	}
	if data.Root.DroppedChildren != 3 {
		t.Fatalf("root dropped_children %d, want 3", data.Root.DroppedChildren)
	}
	// 3 dropped children + their 3 dropped grandchildren.
	if data.DroppedSpans != 6 {
		t.Fatalf("dropped_spans %d, want 6", data.DroppedSpans)
	}

	// maxSpans: the total span budget truncates the tree.
	r = NewFlightRecorderLimits(1, 3, 100)
	tr = r.StartTrace("detect", "req", "")
	for i := 0; i < 5; i++ {
		tr.EndSpan(tr.StartSpan(tr.Root(), "child"))
	}
	tr.Complete()
	data, _ = r.Trace(tr.TraceID())
	if data.Spans != 3 || data.DroppedSpans != 3 {
		t.Fatalf("spans=%d dropped=%d, want 3 retained (incl. root) and 3 dropped",
			data.Spans, data.DroppedSpans)
	}
}

func TestSpanOpsAfterCompleteAreNoOps(t *testing.T) {
	r := NewFlightRecorder(2)
	tr := r.StartTrace("detect", "req", "")
	sp := tr.StartSpan(tr.Root(), "scan")
	tr.Complete()
	// All of these must be silent no-ops on a completed trace.
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	tr.EndSpan(sp)
	if s := tr.StartSpan(tr.Root(), "late"); s != nil {
		t.Fatal("StartSpan on a completed trace returned a live span")
	}
	tr.Complete() // idempotent
	data, _ := r.Trace(tr.TraceID())
	if len(data.Root.Children) != 1 || len(data.Root.Children[0].Attrs) != 0 {
		t.Fatalf("post-complete ops mutated the trace: %+v", data.Root)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.TraceID() != "" || tr.RequestID() != "" || tr.TraceParent() != "" {
		t.Fatal("nil trace identity not empty")
	}
	sp := tr.StartSpan(tr.Root(), "x")
	if sp != nil {
		t.Fatal("nil trace returned a span")
	}
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	tr.EndSpan(sp)
	tr.Complete()
	if d := tr.Snapshot(); d.Spans != 0 {
		t.Fatal("nil trace snapshot not zero")
	}
	var r *FlightRecorder
	if r.StartTrace("x", "y", "") != nil || r.Cap() != 0 || r.Traces() != nil {
		t.Fatal("nil recorder not inert")
	}
	if _, ok := r.Trace("id"); ok {
		t.Fatal("nil recorder resolved a trace")
	}
}

// TestTraceHammer drives the recorder the way a busy pool does —
// concurrent requests, each fanning megatile spans across workers,
// completing into a small ring while readers list and fetch — and
// checks no trace comes out torn. Run under -race this is the pinning
// test for the locking design.
func TestTraceHammer(t *testing.T) {
	const (
		requests = 64
		perTrace = 16
		ringCap  = 4
	)
	r := NewFlightRecorder(ringCap)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: continuously list and deep-fetch whatever is retained.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Traces() {
					if data, ok := r.Trace(s.TraceID); ok {
						if !data.Complete {
							t.Error("retained trace not complete")
							return
						}
						// A torn trace would show open spans or a
						// child outside its parent's interval.
						checkSpanNesting(t, data.Root)
					}
				}
			}
		}()
	}
	// Writers: requests × concurrent megatile spans.
	sem := make(chan struct{}, 8)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			tr := r.StartTrace("detect", fmt.Sprintf("req-%d", i), "")
			scan := tr.StartSpan(tr.Root(), "scan")
			var mg sync.WaitGroup
			for w := 0; w < perTrace; w++ {
				mg.Add(1)
				go func(w int) {
					defer mg.Done()
					mt := tr.StartSpan(scan, "megatile")
					mt.SetAttr("worker", int64(w))
					mt.SetAttrStr("cache", "miss")
					st := tr.StartSpan(mt, "backbone")
					tr.EndSpan(st)
					tr.EndSpan(mt)
				}(w)
			}
			mg.Wait()
			tr.EndSpan(scan)
			tr.Complete()
		}(i)
	}
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	close(stop)
	wg.Wait()
	if got := len(r.Traces()); got != ringCap {
		t.Fatalf("retained %d traces, want %d", got, ringCap)
	}
	for _, s := range r.Traces() {
		if s.Spans != 2+2*perTrace {
			t.Errorf("trace %s: %d spans, want %d", s.TraceID, s.Spans, 2+2*perTrace)
		}
	}
}

func checkSpanNesting(t *testing.T, s SpanData) {
	for _, c := range s.Children {
		if c.StartNs < s.StartNs || c.StartNs+c.DurationNs > s.StartNs+s.DurationNs {
			t.Errorf("span %q [%d,+%d] outside parent %q [%d,+%d]",
				c.Name, c.StartNs, c.DurationNs, s.Name, s.StartNs, s.DurationNs)
		}
		checkSpanNesting(t, c)
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	r := NewFlightRecorder(1)
	tr := r.StartTrace("detect", "req", "")
	hdr := tr.TraceParent()
	tid, sid, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", hdr)
	}
	if FormatTraceParent(tid, sid) != hdr {
		t.Fatalf("round trip changed the header: %q", hdr)
	}

	// An inbound header donates trace id and parent span id.
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr2 := r.StartTrace("detect", "req2", inbound)
	if tr2.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("inbound trace id not adopted: %s", tr2.TraceID())
	}
	tr2.Complete()
	data, _ := r.Trace("req2")
	if data.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("parent span id %q, want the inbound one", data.ParentSpanID)
	}
	if data.SpanID == "00f067aa0ba902b7" {
		t.Fatal("own span id must differ from the inbound parent")
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // no flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version 01
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01",   // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",   // non-hex flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // too long
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceParent(h); ok {
			t.Errorf("ParseTraceParent(%q) accepted a malformed header", h)
		}
	}
}

func TestRenderText(t *testing.T) {
	r := NewFlightRecorder(1)
	tr := completeTrace(r, "req-9")
	data, _ := r.Trace(tr.TraceID())
	var sb strings.Builder
	data.RenderText(&sb)
	out := sb.String()
	for _, want := range []string{
		"trace " + tr.TraceID(), "request req-9", "complete", "spans 6",
		"detect", "scan", "megatile", "backbone", "worker=0", "cache=miss",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+6 {
		t.Errorf("rendering has %d lines, want header + 6 spans:\n%s", len(lines), out)
	}
}

func TestTraceAttrJSONRoundTrip(t *testing.T) {
	in := []TraceAttr{{Key: "worker", Val: 3}, {Key: "cache", Str: "hit"}}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `[{"worker":3},{"cache":"hit"}]` {
		t.Fatalf("marshal: %s", blob)
	}
	var out []TraceAttr
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestContextTrace(t *testing.T) {
	ctx := context.Background()
	if ContextWithTrace(ctx, nil) != ctx {
		t.Fatal("nil trace must not wrap the context")
	}
	if TraceFromContext(ctx) != nil {
		t.Fatal("empty context returned a trace")
	}
	tr := NewFlightRecorder(1).StartTrace("x", "y", "")
	if TraceFromContext(ContextWithTrace(ctx, tr)) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

// TestTraceDurations sanity-checks the monotonic clock: a span that
// sleeps reports at least that long, and the trace duration covers it.
func TestTraceDurations(t *testing.T) {
	r := NewFlightRecorder(1)
	tr := r.StartTrace("detect", "req", "")
	sp := tr.StartSpan(tr.Root(), "sleep")
	time.Sleep(5 * time.Millisecond)
	tr.EndSpan(sp)
	tr.Complete()
	data, _ := r.Trace(tr.TraceID())
	if got := data.Root.Children[0].DurationNs; got < int64(4*time.Millisecond) {
		t.Fatalf("slept span lasted %dns, want >= 4ms", got)
	}
	if data.DurationNs < data.Root.Children[0].DurationNs {
		t.Fatalf("trace %dns shorter than its child %dns",
			data.DurationNs, data.Root.Children[0].DurationNs)
	}
}
