package telemetry

import (
	"context"
	"runtime/trace"
	"time"
)

// Span times one pipeline stage. It is a value type so starting and
// ending a span allocates nothing; the cost when both telemetry and
// execution tracing are disabled is two branches.
//
// A Span does double duty as a runtime/trace annotation: when the
// process is tracing (rhsd-detect/rhsd-bench -trace), every span opens a
// trace.Region of the same name, so the stage breakdown that feeds the
// Prometheus histograms is visible on the exact same boundaries in
// `go tool trace`.
type Span struct {
	h      *Histogram
	start  time.Time
	region *trace.Region
	tr     *Trace
	ts     *TraceSpan
}

// StartSpan begins a span recording into h (nil h records nothing) and,
// if execution tracing is active, opens a trace region named name. name
// should be a constant so tracing stays allocation-free when disabled.
func StartSpan(h *Histogram, name string) Span {
	var s Span
	if trace.IsEnabled() {
		s.region = trace.StartRegion(context.Background(), name)
	}
	if h != nil {
		s.h = h
		s.start = time.Now()
	}
	return s
}

// StartSpanTraced is StartSpan that additionally opens a request-trace
// child span under parent when tr is non-nil, so one stage boundary
// feeds the Prometheus histogram, the runtime/trace region and the
// flight-recorder tree from a single pair of clock reads. With tr nil
// it is exactly StartSpan (still a value, still zero allocations).
func StartSpanTraced(h *Histogram, name string, tr *Trace, parent *TraceSpan) Span {
	s := StartSpan(h, name)
	if tr != nil {
		s.tr = tr
		s.ts = tr.StartSpan(parent, name)
	}
	return s
}

// End completes the span: the elapsed seconds are observed into the
// histogram and the trace region (if any) is closed. End on a zero Span
// is a no-op, so callers can time optional stages unconditionally.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
	if s.region != nil {
		s.region.End()
	}
	if s.tr != nil {
		s.tr.EndSpan(s.ts)
	}
}
