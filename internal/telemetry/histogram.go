package telemetry

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency/size histogram. Buckets are chosen
// at construction; Observe is a handful of atomic operations with no
// allocation and no locks, so it is safe on the inference hot path.
//
// Beyond the standard Prometheus histogram series (cumulative buckets,
// _sum, _count), a Histogram tracks the maximum observed value with a
// compare-and-swap loop — the lossless replacement for the ad-hoc
// read-modify-write max counters the serving daemon used to keep, and
// the number /statusz reports as latency_max_ms.
type Histogram struct {
	labels string
	upper  []float64 // bucket upper bounds, strictly increasing
	le     []string  // preformatted le label values, including "+Inf"

	counts  []atomic.Int64 // per-bucket (non-cumulative), len(upper)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the maximum observation
}

func newHistogram(labels string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets must be strictly increasing")
		}
	}
	h := &Histogram{
		labels: labels,
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	h.le = make([]string, len(buckets)+1)
	for i, ub := range h.upper {
		h.le[i] = strconv.FormatFloat(ub, 'g', -1, 64)
	}
	h.le[len(buckets)] = "+Inf"
	return h
}

// Observe records one value: the first bucket with v <= upper bound
// (Prometheus le is inclusive), count, sum, and the CAS max.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, s) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds — the
// unit every *_seconds histogram in this repo uses.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the maximum observed value, or 0 before any observation.
// Observations are expected to be non-negative (durations, sizes); a
// negative observation smaller than every later one is not reported.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(bounds) addresses the +Inf overflow bucket. Test hook.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

func (h *Histogram) labelsKey() string { return h.labels }

// expose renders the cumulative bucket series, sum and count.
func (h *Histogram) expose(buf []byte, name string) []byte {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		buf = append(buf, name...)
		buf = append(buf, "_bucket{"...)
		if h.labels != "" {
			buf = append(buf, h.labels...)
			buf = append(buf, ',')
		}
		buf = append(buf, `le="`...)
		buf = append(buf, h.le[i]...)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = appendSample(buf, name, "_sum", h.labels, h.Sum())
	buf = appendSample(buf, name, "_count", h.labels, float64(h.Count()))
	return buf
}
