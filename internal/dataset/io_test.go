package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteLoadSplitRoundtrip(t *testing.T) {
	spec := CaseSpecs(768)[0]
	ds := Generate(spec, testModel(), 3, 2)
	root := t.TempDir()
	if err := WriteDataset(root, ds); err != nil {
		t.Fatal(err)
	}

	train, err := LoadSplit(filepath.Join(root, ds.Name, "train"))
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 3 {
		t.Fatalf("train regions %d", len(train))
	}
	test, err := LoadSplit(filepath.Join(root, ds.Name, "test"))
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 2 {
		t.Fatalf("test regions %d", len(test))
	}
	for i, r := range train {
		orig := ds.Train[i]
		if len(r.Layout.Rects) != len(orig.Layout.Rects) {
			t.Fatalf("region %d geometry count differs", i)
		}
		if len(r.Hotspot) != len(orig.Hotspots) {
			t.Fatalf("region %d hotspot count differs: %d vs %d",
				i, len(r.Hotspot), len(orig.Hotspots))
		}
		for j, p := range r.Hotspot {
			// CSV stores one decimal of nm precision.
			if abs(p[0]-orig.Hotspots[j].Center.CX()) > 0.06 ||
				abs(p[1]-orig.Hotspots[j].Center.CY()) > 0.06 {
				t.Fatalf("region %d hotspot %d drifted: %v", i, j, p)
			}
		}
	}
}

func TestLoadSplitMissingDir(t *testing.T) {
	if _, err := LoadSplit(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing split must error")
	}
}

func TestLoadHotspotsCSVMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hotspots.csv")
	for _, body := range []string{
		"region,cx_nm,cy_nm,kind\nbad line\n",
		"region,cx_nm,cy_nm,kind\nr.layout,abc,2,open\n",
	} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadHotspotsCSV(path); err == nil {
			t.Fatalf("malformed csv accepted: %q", body)
		}
	}
}

func TestLoadHotspotsCSVSkipsBlankLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hotspots.csv")
	body := "region,cx_nm,cy_nm,kind\nr.layout,10.0,20.0,open\n\nr.layout,30.0,40.0,bridge\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHotspotsCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got["r.layout"]) != 2 {
		t.Fatalf("points: %v", got)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
