package dataset

import (
	"math/rand"
	"testing"

	"rhsd/internal/litho"
)

func testModel() litho.Model { return litho.DefaultModel() }

func TestGenerateDeterministic(t *testing.T) {
	spec := CaseSpecs(768)[0]
	a := Generate(spec, testModel(), 2, 2)
	b := Generate(spec, testModel(), 2, 2)
	if len(a.Train) != 2 || len(a.Test) != 2 {
		t.Fatalf("split sizes: %d/%d", len(a.Train), len(a.Test))
	}
	for i := range a.Train {
		ra, rb := a.Train[i], b.Train[i]
		if len(ra.Layout.Rects) != len(rb.Layout.Rects) {
			t.Fatalf("region %d geometry differs", i)
		}
		if len(ra.Hotspots) != len(rb.Hotspots) {
			t.Fatalf("region %d labels differ", i)
		}
	}
}

func TestGenerateGeometryInBounds(t *testing.T) {
	spec := CaseSpecs(768)[1]
	d := Generate(spec, testModel(), 3, 0)
	for _, r := range d.Train {
		b := r.Layout.Bounds
		if b.W() != 768 || b.H() != 768 {
			t.Fatalf("region bounds %v", b)
		}
		for _, rc := range r.Layout.Rects {
			// Motifs may poke slightly past bounds by construction margin;
			// they must at least overlap the region.
			if !rc.Overlaps(b) {
				t.Fatalf("rect %v completely outside bounds %v", rc, b)
			}
		}
	}
}

func TestHotspotsWithinRegion(t *testing.T) {
	for _, spec := range CaseSpecs(768) {
		d := Generate(spec, testModel(), 4, 0)
		for _, r := range d.Train {
			for _, h := range r.Hotspots {
				cx, cy := h.Center.CX(), h.Center.CY()
				if cx < 0 || cy < 0 || cx > 768 || cy > 768 {
					t.Fatalf("%s: hotspot outside region: %v", spec.Name, h.Center)
				}
			}
		}
	}
}

func TestCasesProduceHotspots(t *testing.T) {
	// Every case must yield a non-trivial number of hotspots over a few
	// regions — otherwise there is nothing to train on.
	for _, spec := range CaseSpecs(768) {
		d := Generate(spec, testModel(), 6, 6)
		st := ComputeStats(append(append([]*Region{}, d.Train...), d.Test...))
		if st.Hotspots < 3 {
			t.Fatalf("%s: too few hotspots: %v", spec.Name, st)
		}
	}
}

func TestCasesAreStatisticallyDistinct(t *testing.T) {
	specs := CaseSpecs(768)
	m := testModel()
	density := make([]float64, len(specs))
	for i, spec := range specs {
		d := Generate(spec, m, 4, 0)
		var sum float64
		for _, r := range d.Train {
			sum += r.Layout.Density(8)
		}
		density[i] = sum / float64(len(d.Train))
	}
	// Case4 is the sparsest by construction.
	if !(density[2] < density[0]) || !(density[2] < density[1]) {
		t.Fatalf("density ordering unexpected: %v", density)
	}
}

func TestGTClipsCentredOnHotspots(t *testing.T) {
	spec := CaseSpecs(768)[0]
	d := Generate(spec, testModel(), 4, 0)
	for _, r := range d.Train {
		clips := r.GTClips(200)
		if len(clips) != len(r.Hotspots) {
			t.Fatal("clip count mismatch")
		}
		for i, c := range clips {
			if c.W() != 200 || c.H() != 200 {
				t.Fatalf("clip size %v", c)
			}
			h := r.Hotspots[i]
			if c.CX() != h.Center.CX() || c.CY() != h.Center.CY() {
				t.Fatal("clip not centred on hotspot")
			}
			// The hotspot point must be inside the clip core.
			if !c.Core().Contains(h.Center.CX(), h.Center.CY()) {
				t.Fatal("hotspot outside clip core")
			}
		}
	}
}

func TestPoissonishMeanRoughlyCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 4000
	var sum int
	for i := 0; i < n; i++ {
		sum += poissonish(rng, 2.5)
	}
	mean := float64(sum) / n
	if mean < 2.2 || mean > 2.8 {
		t.Fatalf("poisson mean %v want ≈2.5", mean)
	}
	if poissonish(rng, 0) != 0 {
		t.Fatal("zero mean must give zero")
	}
}

func TestComputeStats(t *testing.T) {
	spec := CaseSpecs(768)[2]
	d := Generate(spec, testModel(), 3, 0)
	st := ComputeStats(d.Train)
	if st.Regions != 3 {
		t.Fatalf("regions %d", st.Regions)
	}
	total := 0
	for _, v := range st.PerKind {
		total += v
	}
	if total != st.Hotspots {
		t.Fatalf("per-kind sum %d != total %d", total, st.Hotspots)
	}
}

func TestVerticalCaseOrientation(t *testing.T) {
	spec := CaseSpecs(768)[2] // Case4 is vertical
	if !spec.Vertical {
		t.Skip("spec layout changed")
	}
	d := Generate(spec, testModel(), 2, 0)
	tall, wide := 0, 0
	for _, r := range d.Train {
		for _, rc := range r.Layout.Rects {
			if rc.H() > rc.W() {
				tall++
			} else {
				wide++
			}
		}
	}
	if tall <= wide {
		t.Fatalf("vertical case should be dominated by tall shapes: tall=%d wide=%d", tall, wide)
	}
}
