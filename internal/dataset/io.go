package dataset

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rhsd/internal/layout"
)

// Disk format shared by rhsd-gendata, rhsd-train and user-supplied data:
//
//	<root>/<CaseName>/<split>/region_NNN.layout   (text BOUNDS/RECT records)
//	<root>/<CaseName>/<split>/hotspots.csv        (region,cx_nm,cy_nm,kind)
//
// where <split> is "train" or "test". Hotspot coordinates are
// region-relative nanometres.

// WriteSplit stores one split of a case under dir.
func WriteSplit(dir string, regions []*Region) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gt, err := os.Create(filepath.Join(dir, "hotspots.csv"))
	if err != nil {
		return err
	}
	defer gt.Close()
	if _, err := fmt.Fprintln(gt, "region,cx_nm,cy_nm,kind"); err != nil {
		return err
	}
	for i, r := range regions {
		name := fmt.Sprintf("region_%03d.layout", i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := r.Layout.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		for _, h := range r.Hotspots {
			if _, err := fmt.Fprintf(gt, "%s,%.1f,%.1f,%s\n",
				name, h.Center.CX(), h.Center.CY(), h.Kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteDataset stores a full case (train and test splits) under root.
func WriteDataset(root string, d *Dataset) error {
	if err := WriteSplit(filepath.Join(root, d.Name, "train"), d.Train); err != nil {
		return err
	}
	return WriteSplit(filepath.Join(root, d.Name, "test"), d.Test)
}

// LoadedRegion pairs a region's geometry with its labelled hotspot points
// as read from disk (the failure-kind metadata collapses to points, which
// is all the detectors consume).
type LoadedRegion struct {
	Name    string
	Layout  *layout.Layout
	Hotspot [][2]float64
}

// LoadSplit reads one split directory written by WriteSplit.
func LoadSplit(dir string) ([]LoadedRegion, error) {
	gt, err := LoadHotspotsCSV(filepath.Join(dir, "hotspots.csv"))
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".layout") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]LoadedRegion, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		l, err := layout.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, LoadedRegion{Name: name, Layout: l, Hotspot: gt[name]})
	}
	return out, nil
}

// LoadHotspotsCSV parses a hotspots.csv into per-region point lists.
func LoadHotspotsCSV(path string) (map[string][][2]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][][2]float64{}
	sc := bufio.NewScanner(f)
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if first {
			first = false
			continue
		}
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 3 {
			return nil, fmt.Errorf("%s:%d: malformed line %q", path, line, text)
		}
		cx, err1 := strconv.ParseFloat(parts[1], 64)
		cy, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad coordinates in %q", path, line, text)
		}
		out[parts[0]] = append(out[parts[0]], [2]float64{cx, cy})
	}
	return out, sc.Err()
}
