// Package dataset synthesizes the benchmark suite used to evaluate the
// detectors. The paper evaluates on three designs from the ICCAD 2016 CAD
// contest — proprietary EUV metal-layer layouts labelled by industrial
// lithography simulation — so this package substitutes statistically
// distinct synthetic "cases" labelled by the litho proxy in
// internal/litho.
//
// Each case is a set of independently generated layout regions sharing the
// case's pattern statistics (wire orientation, pitch, density, risky-motif
// mix). Like the paper (§4), each case is split into a training half and a
// testing half, and the training halves of all cases are merged to train a
// single model.
//
// Regions contain mostly clean routing plus sparse "risky" motifs —
// sub-resolution widths, tight parallel gaps, line-end tip gaps — whose
// printability failure under the process window produces the ground-truth
// hotspots. Decoy motifs that look aggressive but print cleanly are also
// inserted so that false-alarm behaviour is measurable.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/litho"
)

// Spec describes the pattern statistics of one benchmark case.
type Spec struct {
	Name string
	Seed int64
	// RegionNM is the side length of each square region in nm.
	RegionNM int
	// Vertical selects wire orientation; Mixed overlays both orientations
	// in alternating bands.
	Vertical bool
	Mixed    bool
	// WireWidthNM / WireSpaceNM define the safe routing pitch.
	WireWidthNM int
	WireSpaceNM int
	// TrackDensity is the probability a routing track is populated.
	TrackDensity float64
	// RiskPerRegion is the expected number of risky motifs per region.
	RiskPerRegion float64
	// DecoyPerRegion is the expected number of aggressive-but-printable
	// decoy motifs per region.
	DecoyPerRegion float64
}

// Region is one benchmark sample: layout geometry plus simulator-labelled
// ground truth.
type Region struct {
	// Layout holds region-relative geometry with bounds [0,RegionNM)².
	Layout *layout.Layout
	// Hotspots are ground-truth process weak points from litho simulation,
	// in nm relative to the region origin.
	Hotspots []litho.Hotspot
}

// HotspotPoints returns the ground-truth weak-point centres.
func (r *Region) HotspotPoints() [][2]float64 { return litho.HotspotPoints(r.Hotspots) }

// GTClips returns ground-truth hotspot clips of the given size centred on
// each weak point — the regression targets for region-based detection.
func (r *Region) GTClips(clipNM float64) []geom.Rect {
	out := make([]geom.Rect, len(r.Hotspots))
	for i, h := range r.Hotspots {
		out[i] = geom.RectCWH(h.Center.CX(), h.Center.CY(), clipNM, clipNM)
	}
	return out
}

// Dataset is a benchmark case with its train/test split.
type Dataset struct {
	Name  string
	Spec  Spec
	Train []*Region
	Test  []*Region
}

// CaseSpecs returns the three benchmark cases (analogues of ICCAD-2016
// Case2/3/4 — the contest's Case1 has no lithography defects and is
// excluded, as in the paper). regionNM scales the region size so callers
// can trade fidelity for runtime.
func CaseSpecs(regionNM int) []Spec {
	return []Spec{
		{
			// Case2 analogue: dense unidirectional horizontal metal,
			// few but subtle hotspots.
			Name: "Case2", Seed: 20001, RegionNM: regionNM,
			WireWidthNM: 32, WireSpaceNM: 48,
			TrackDensity: 0.78, RiskPerRegion: 2.0, DecoyPerRegion: 3.0,
		},
		{
			// Case3 analogue: mixed-orientation routing, highest hotspot
			// density.
			Name: "Case3", Seed: 30001, RegionNM: regionNM, Mixed: true,
			WireWidthNM: 30, WireSpaceNM: 42,
			TrackDensity: 0.70, RiskPerRegion: 3.5, DecoyPerRegion: 2.0,
		},
		{
			// Case4 analogue: sparser vertical metal with clustered risky
			// geometry.
			Name: "Case4", Seed: 40001, RegionNM: regionNM, Vertical: true,
			WireWidthNM: 34, WireSpaceNM: 56,
			TrackDensity: 0.55, RiskPerRegion: 2.5, DecoyPerRegion: 2.5,
		},
	}
}

// Generate builds a benchmark case with nTrain training and nTest testing
// regions, labelling every region with the litho model. Generation is
// deterministic in spec.Seed.
func Generate(spec Spec, m litho.Model, nTrain, nTest int) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Dataset{Name: spec.Name, Spec: spec}
	for i := 0; i < nTrain+nTest; i++ {
		r := genRegion(spec, rng, m)
		if i < nTrain {
			d.Train = append(d.Train, r)
		} else {
			d.Test = append(d.Test, r)
		}
	}
	return d
}

// genRegion draws one region from the case distribution and labels it.
func genRegion(spec Spec, rng *rand.Rand, m litho.Model) *Region {
	l := layout.New(layout.R(0, 0, spec.RegionNM, spec.RegionNM))
	switch {
	case spec.Mixed:
		// Alternating horizontal/vertical bands.
		band := spec.RegionNM / 2
		fillTracks(l, rng, spec, false, layout.R(0, 0, spec.RegionNM, band))
		fillTracks(l, rng, spec, true, layout.R(0, band, spec.RegionNM, spec.RegionNM))
	case spec.Vertical:
		fillTracks(l, rng, spec, true, l.Bounds)
	default:
		fillTracks(l, rng, spec, false, l.Bounds)
	}

	nRisk := poissonish(rng, spec.RiskPerRegion)
	for i := 0; i < nRisk; i++ {
		addRiskyMotif(l, rng, spec)
	}
	nDecoy := poissonish(rng, spec.DecoyPerRegion)
	for i := 0; i < nDecoy; i++ {
		addDecoyMotif(l, rng, spec)
	}

	hs := m.Simulate(l, l.Bounds)
	return &Region{Layout: l, Hotspots: hs}
}

// poissonish draws a small non-negative count with the given mean using a
// simple inverse-CDF Poisson sampler (mean is always tiny here).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; fine for mean < 20.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 64 {
			return k
		}
	}
}

// fillTracks populates routing tracks within the band with randomly broken
// wire segments at the case's safe pitch.
func fillTracks(l *layout.Layout, rng *rand.Rand, spec Spec, vertical bool, band layout.Rect) {
	pitch := spec.WireWidthNM + spec.WireSpaceNM
	var span, breadth int
	if vertical {
		span = band.H()
		breadth = band.W()
	} else {
		span = band.W()
		breadth = band.H()
	}
	for t := spec.WireSpaceNM; t+spec.WireWidthNM <= breadth; t += pitch {
		if rng.Float64() > spec.TrackDensity {
			continue
		}
		// Break the track into 1–3 segments with gaps.
		pos := 0
		for pos < span {
			segLen := span/3 + rng.Intn(span/2+1)
			end := pos + segLen
			if end > span {
				end = span
			}
			if end-pos >= 3*spec.WireWidthNM {
				if vertical {
					l.Add(layout.R(band.X0+t, band.Y0+pos, band.X0+t+spec.WireWidthNM, band.Y0+end))
				} else {
					l.Add(layout.R(band.X0+pos, band.Y0+t, band.X0+end, band.Y0+t+spec.WireWidthNM))
				}
			}
			pos = end + 2*spec.WireSpaceNM + rng.Intn(spec.WireSpaceNM+1)
		}
	}
}

// addRiskyMotif inserts one lithographically aggressive pattern at a
// random location. The three motif families mirror classic metal-layer
// weak points: sub-resolution necks, tight parallel runs and tip-to-tip
// line ends.
func addRiskyMotif(l *layout.Layout, rng *rand.Rand, spec Spec) {
	margin := 4 * (spec.WireWidthNM + spec.WireSpaceNM)
	if spec.RegionNM <= 2*margin {
		return
	}
	cx := margin + rng.Intn(spec.RegionNM-2*margin)
	cy := margin + rng.Intn(spec.RegionNM-2*margin)
	length := 120 + rng.Intn(120)
	switch rng.Intn(3) {
	case 0:
		// Isolated sub-resolution line: fails open at min dose.
		wd := 12 + rng.Intn(4)
		l.Add(layout.R(cx, cy, cx+wd, cy+length))
	case 1:
		// Tight parallel pair: bridges at max dose.
		wd := spec.WireWidthNM
		gap := 10 + rng.Intn(4)
		l.Add(layout.R(cx, cy, cx+wd, cy+length))
		l.Add(layout.R(cx+wd+gap, cy, cx+2*wd+gap, cy+length))
	default:
		// Tip-to-tip gap flanked by parallel neighbours: the flare of the
		// neighbours bridges the tiny gap.
		wd := spec.WireWidthNM
		gap := 12 + rng.Intn(6)
		half := length / 2
		l.Add(layout.R(cx, cy, cx+wd, cy+half))
		l.Add(layout.R(cx, cy+half+gap, cx+wd, cy+length+gap))
		l.Add(layout.R(cx-wd-14, cy, cx-14, cy+length+gap))
		l.Add(layout.R(cx+wd+14, cy, cx+2*wd+14, cy+length+gap))
	}
}

// addDecoyMotif inserts a pattern that *looks* aggressive (dense, jogged)
// but prints within the process window — the source of potential false
// alarms.
func addDecoyMotif(l *layout.Layout, rng *rand.Rand, spec Spec) {
	margin := 4 * (spec.WireWidthNM + spec.WireSpaceNM)
	if spec.RegionNM <= 2*margin {
		return
	}
	cx := margin + rng.Intn(spec.RegionNM-2*margin)
	cy := margin + rng.Intn(spec.RegionNM-2*margin)
	length := 100 + rng.Intn(100)
	wd := spec.WireWidthNM
	switch rng.Intn(3) {
	case 0:
		// Comb: dense but at a printable pitch.
		gap := spec.WireSpaceNM - 8
		for i := 0; i < 3; i++ {
			x := cx + i*(wd+gap)
			l.Add(layout.R(x, cy, x+wd, cy+length))
		}
	case 1:
		// Jogged wire (an L/Z shape).
		l.Add(layout.R(cx, cy, cx+wd, cy+length/2))
		l.Add(layout.R(cx, cy+length/2-wd, cx+length/2, cy+length/2))
		l.Add(layout.R(cx+length/2-wd, cy+length/2-wd, cx+length/2, cy+length))
	default:
		// Wide tip-to-tip gap: safely printable.
		gap := 3 * spec.WireSpaceNM
		l.Add(layout.R(cx, cy, cx+wd, cy+length))
		l.Add(layout.R(cx, cy+length+gap, cx+wd, cy+2*length+gap))
	}
}

// Stats summarizes a dataset for reporting.
type Stats struct {
	Regions  int
	Hotspots int
	PerKind  map[string]int
}

// ComputeStats tallies regions and hotspots over a region set.
func ComputeStats(regions []*Region) Stats {
	s := Stats{PerKind: map[string]int{}}
	for _, r := range regions {
		s.Regions++
		s.Hotspots += len(r.Hotspots)
		for _, h := range r.Hotspots {
			s.PerKind[h.Kind.String()]++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%d regions, %d hotspots (%v)", s.Regions, s.Hotspots, s.PerKind)
}
