package hsd

import (
	"math"
	"math/rand"

	"rhsd/internal/geom"
)

// AnchorSet is the fixed grid of candidate clips ("a group of 12 clips
// with different aspect ratios" per feature-map pixel, §3.2). Anchors are
// stored in row-major feature order with the per-cell group contiguous, so
// anchor index = (y*W + x)*A + a matches the head tensors' channel layout.
type AnchorSet struct {
	Boxes   []geom.Rect // anchor clips in input-pixel coordinates
	PerCell int
	FeatH   int
	FeatW   int
}

// GenerateAnchors enumerates the anchor grid for the configuration's
// nominal InputSize×InputSize region.
func GenerateAnchors(c Config) *AnchorSet {
	return GenerateAnchorsSized(c, c.FeatureSize(), c.FeatureSize())
}

// GenerateAnchorsSized enumerates the anchor grid for an arbitrary
// feature-map extent fh×fw — the grid a shape-polymorphic forward pass
// over an fh·8 × fw·8 raster emits. Each feature cell centres its group at
// (x+0.5, y+0.5)*stride; group member sizes are ClipPx × scale with
// width/height skewed by the aspect ratio at constant area, the standard
// region-proposal parameterization. Because cell geometry depends only on
// the cell's own coordinates, the sized grid restricted to any sub-window
// is a translate of the nominal grid — the property the megatile scan's
// interior-equivalence relies on.
func GenerateAnchorsSized(c Config, fh, fw int) *AnchorSet {
	per := c.AnchorsPerCell()
	s := &AnchorSet{PerCell: per, FeatH: fh, FeatW: fw}
	s.Boxes = make([]geom.Rect, 0, fh*fw*per)
	for y := 0; y < fh; y++ {
		cy := (float64(y) + 0.5) * FeatureStride
		for x := 0; x < fw; x++ {
			cx := (float64(x) + 0.5) * FeatureStride
			for _, scale := range c.Scales {
				base := c.ClipPx * scale
				for _, ar := range c.AspectRatios {
					// ar = h/w with area preserved: w = base/sqrt(ar),
					// h = base*sqrt(ar).
					r := math.Sqrt(ar)
					w := base / r
					h := base * r
					s.Boxes = append(s.Boxes, geom.RectCWH(cx, cy, w, h))
				}
			}
		}
	}
	return s
}

// Len returns the total number of anchors.
func (s *AnchorSet) Len() int { return len(s.Boxes) }

// AnchorTargets is the training assignment produced by the clip-pruning
// rules of §3.2.1.
type AnchorTargets struct {
	// Label per anchor: 1 positive, 0 negative, -1 ignored ("rest of
	// clips do no contribution to the network training").
	Label []int8
	// MatchedGT is the index of the ground-truth clip a positive anchor
	// regresses to (undefined for non-positives).
	MatchedGT []int32
	// Reg is the Eq. 3 encoding of the matched ground truth against each
	// positive anchor.
	Reg []geom.BoxEncoding
}

// AssignTargets applies the pruning rules against ground-truth clips (in
// input-pixel coordinates):
//
//   - IoU ≥ PositiveIoU with any ground truth → positive;
//   - the highest-IoU anchor for each ground truth → positive (so every
//     hotspot owns at least one anchor even if none clears the bar);
//   - max IoU ≤ NegativeIoU → negative;
//   - everything else → ignored.
func AssignTargets(s *AnchorSet, gt []geom.Rect, c Config) *AnchorTargets {
	n := s.Len()
	t := &AnchorTargets{
		Label:     make([]int8, n),
		MatchedGT: make([]int32, n),
		Reg:       make([]geom.BoxEncoding, n),
	}
	if len(gt) == 0 {
		// No hotspots: every anchor is a clean negative.
		return t
	}
	bestIoU := make([]float64, n)
	bestGT := make([]int32, n)
	iou := make([][]float64, len(gt))
	for g := range gt {
		iou[g] = make([]float64, n)
	}
	for i, a := range s.Boxes {
		for g, box := range gt {
			v := geom.IoU(a, box)
			iou[g][i] = v
			if v > bestIoU[i] {
				bestIoU[i] = v
				bestGT[i] = int32(g)
			}
		}
	}
	for i := range s.Boxes {
		switch {
		case bestIoU[i] >= c.PositiveIoU:
			t.Label[i] = 1
		case bestIoU[i] <= c.NegativeIoU:
			t.Label[i] = 0
		default:
			t.Label[i] = -1
		}
		t.MatchedGT[i] = bestGT[i]
	}
	// Rule 2: each ground truth's highest-IoU anchor is positive
	// regardless of the 0.7 bar. When two ground truths would claim the
	// same anchor, the later one takes its best *unclaimed* anchor so
	// every hotspot owns at least one positive sample.
	claimed := make(map[int32]bool)
	for g := range gt {
		best, bestV := int32(-1), 0.0
		for i := 0; i < n; i++ {
			if claimed[int32(i)] {
				continue
			}
			if v := iou[g][i]; v > bestV {
				bestV = v
				best = int32(i)
			}
		}
		if best >= 0 {
			claimed[best] = true
			t.Label[best] = 1
			t.MatchedGT[best] = int32(g)
		}
	}
	for i := range s.Boxes {
		if t.Label[i] == 1 {
			t.Reg[i] = geom.Encode(gt[t.MatchedGT[i]], s.Boxes[i])
		}
	}
	return t
}

// SampleBatch selects up to c.BatchAnchors anchor indices for the
// classification loss, preferring a balanced positive/negative mix (the
// standard remedy for the extreme anchor imbalance; cf. the biased-
// learning discussion the paper inherits from [15,16]). All positives are
// kept up to half the budget; negatives fill the rest.
func (t *AnchorTargets) SampleBatch(rng *rand.Rand, budget int) []int {
	if budget <= 0 {
		budget = 64
	}
	var pos, neg []int
	for i, l := range t.Label {
		switch l {
		case 1:
			pos = append(pos, i)
		case 0:
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	maxPos := budget / 2
	if len(pos) > maxPos {
		pos = pos[:maxPos]
	}
	rest := budget - len(pos)
	if len(neg) > rest {
		neg = neg[:rest]
	}
	out := append(append([]int{}, pos...), neg...)
	return out
}

// CoverageReport summarizes how well the anchor grid covers a set of
// ground-truth clips — the diagnostic behind anchor-setting choices
// ("clips with single aspect ratio and scale may lead to bad
// performance", §3.2).
type CoverageReport struct {
	// GT is the number of ground-truth clips examined.
	GT int
	// AboveBar counts ground truths whose best anchor IoU reaches the
	// positive threshold outright.
	AboveBar int
	// MeanBestIoU is the mean of per-GT best anchor IoU.
	MeanBestIoU float64
}

// Coverage computes the anchor-coverage report for ground-truth clips in
// input-pixel coordinates.
func (s *AnchorSet) Coverage(gt []geom.Rect, positiveIoU float64) CoverageReport {
	rep := CoverageReport{GT: len(gt)}
	if len(gt) == 0 {
		return rep
	}
	var sum float64
	for _, box := range gt {
		best := 0.0
		for _, a := range s.Boxes {
			if iou := geom.IoU(a, box); iou > best {
				best = iou
			}
		}
		sum += best
		if best >= positiveIoU {
			rep.AboveBar++
		}
	}
	rep.MeanBestIoU = sum / float64(len(gt))
	return rep
}
