package hsd

import (
	"sort"

	"rhsd/internal/geom"
)

// ScoredClip is a candidate clip with its hotspot classification score.
type ScoredClip struct {
	Clip  geom.Rect
	Score float64
}

// HNMS implements hotspot non-maximum suppression (Algorithm 1): clips are
// sorted by descending classification score and a clip is removed when the
// IoU of its *core region* with a higher-scoring survivor exceeds the
// threshold. Keying on cores instead of whole clips preserves clips whose
// outer rings overlap but whose hotspot cores are distinct (Figure 5).
// The input slice is not modified; survivors are returned sorted by
// descending score.
func HNMS(clips []ScoredClip, threshold float64) []ScoredClip {
	return nms(clips, threshold, geom.CoreIoU)
}

// ConventionalNMS is the classic whole-clip-IoU suppression used by the
// generic Faster R-CNN and SSD baselines.
func ConventionalNMS(clips []ScoredClip, threshold float64) []ScoredClip {
	return nms(clips, threshold, geom.IoU)
}

func nms(clips []ScoredClip, threshold float64, overlap func(a, b geom.Rect) float64) []ScoredClip {
	sorted := append([]ScoredClip(nil), clips...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	removed := make([]bool, len(sorted))
	// Disjoint clips (and therefore their cores) have overlap exactly 0,
	// so for the usual non-negative thresholds the expensive IoU can be
	// skipped without changing any suppression decision. Megatile scans
	// push O(area)-scaled candidate sets through this O(n·kept) loop;
	// the quick reject keeps the pair cost at four comparisons.
	quick := threshold >= 0
	var out []ScoredClip
	for i := range sorted {
		if removed[i] {
			continue
		}
		out = append(out, sorted[i])
		for j := i + 1; j < len(sorted); j++ {
			if removed[j] {
				continue
			}
			if quick && sorted[i].Clip.Disjoint(sorted[j].Clip) {
				continue
			}
			if overlap(sorted[i].Clip, sorted[j].Clip) > threshold {
				removed[j] = true
			}
		}
	}
	return out
}

// TopK returns the k highest-scoring clips (all of them when k <= 0 or
// k >= len).
func TopK(clips []ScoredClip, k int) []ScoredClip {
	sorted := append([]ScoredClip(nil), clips...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	if k > 0 && k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}
