package hsd

import (
	"sync"
	"testing"

	"rhsd/internal/layout"
)

// This file is the differential harness for the content-addressed scan
// cache and the incremental rescan: every test reduces to "scan the same
// layout cold, cached and incrementally, and require bit-identical
// detections". The cold path (no cache attached) is the oracle; the
// cached and incremental paths must never be distinguishable from it —
// under trained and untrained weights, across worker counts, at seams,
// and under near-collision layout edits (sub-pixel translations,
// mirrored cells, halo-only changes) engineered to punish any key that
// hashes less than the exact raster bytes.

// quadGeometry returns the window holding exactly 2×2 factor-1 megatiles
// at design overlap, plus the spec, in nm.
func quadGeometry(c Config) (win layout.Rect, spec MegatileSpec) {
	spec = c.Megatile(1)
	w := 2*spec.RegionNM - spec.OverlapNM
	return layout.R(0, 0, w, w), spec
}

// quadLayout builds a 2×2-megatile layout with stripes and one blob in
// each megatile's exclusive interior, positioned so all four megatile
// rasters are byte-distinct (each blob sits at a different tile-relative
// offset).
func quadLayout(c Config) (*layout.Layout, layout.Rect) {
	win, spec := quadGeometry(c)
	r := spec.RegionNM
	w := win.X1
	l := layout.New(win)
	addStripes(l, c)
	lo, hi := r/4, w-r/4
	plantBlob(l, lo, lo, c)
	plantBlob(l, hi, lo, c)
	plantBlob(l, lo, hi, c)
	plantBlob(l, hi, hi, c)
	return l, win
}

// coldThenWarm scans l cold (cache detached) and then twice through the
// given cache, asserting all three results bit-identical and returning
// the cold result. The second cached scan is the all-hits pass.
func coldThenWarm(t *testing.T, m *Model, cache *DetCache, l *layout.Layout, win layout.Rect, factor int, label string) []Detection {
	t.Helper()
	m.SetScanCache(nil)
	cold := m.DetectLayoutMegatile(l, win, factor)
	m.SetScanCache(cache)
	fill := m.DetectLayoutMegatile(l, win, factor)
	warm := m.DetectLayoutMegatile(l, win, factor)
	m.SetScanCache(nil)
	assertSameDetections(t, label+": cold vs cache-fill", cold, fill)
	assertSameDetections(t, label+": cold vs warm", cold, warm)
	return cold
}

func TestCachedScanBitIdenticalUntrained(t *testing.T) {
	m := parityModel(t)
	cache := NewDetCache(0)
	l, win := quadLayout(m.Config)
	cold := coldThenWarm(t, m, cache, l, win, 1, "untrained")
	if len(cold) == 0 {
		t.Log("untrained model reported no detections; identity still pinned on empty results")
	}
	st := cache.Stats()
	if st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (one per byte-distinct megatile)", st.Misses)
	}
	if st.Hits != 4 {
		t.Fatalf("hits = %d, want 4 (the warm pass)", st.Hits)
	}
}

func TestCachedScanBitIdenticalAcrossWorkerCounts(t *testing.T) {
	m := parityModel(t)
	cache := NewDetCache(0)
	l, win := quadLayout(m.Config)
	m.SetScanCache(nil)
	cold := detectAtWorkers(1, func() []Detection { return m.DetectLayoutMegatile(l, win, 1) })
	m.SetScanCache(cache)
	defer m.SetScanCache(nil)
	for _, workers := range []int{1, 8} {
		got := detectAtWorkers(workers, func() []Detection { return m.DetectLayoutMegatile(l, win, 1) })
		assertSameDetections(t, "cached scan at workers", cold, got)
	}
}

func TestCachedScanBitIdenticalTrainedAtSeam(t *testing.T) {
	m := trainedScanModel(t)
	c := m.Config
	size, seam := twoMegatileWindow(c)
	p := int(c.PitchNM)
	l := layout.New(layout.R(0, 0, size, size))
	addStripes(l, c)
	// One hotspot straddling the vertical seam, one in a megatile
	// interior — the seam clip is kept by both megatiles (slack band) and
	// collapsed by the merge, which must behave identically when one side
	// is a cache hit and the other a fresh pass.
	seamCx := (int(seam) / p) * p
	plantBlob(l, seamCx, size/4, c)
	plantBlob(l, size/4, 3*size/4, c)
	cache := NewDetCache(0)
	defer m.SetScanCache(nil)
	cold := coldThenWarm(t, m, cache, l, layout.R(0, 0, size, size), 2, "trained seam")
	if len(detsAt(cold, float64(seamCx), float64(size/4))) == 0 {
		t.Fatalf("trained model missed the seam hotspot; differential result vacuous")
	}
}

func TestIncrementalRescanBitIdentical(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	l, win := quadLayout(c)
	_, spec := quadGeometry(c)
	r := spec.RegionNM
	w := win.X1

	res := m.ScanLayoutMegatile(l, win, 1)
	if res.TilesScanned != 4 || res.TilesReused != 0 {
		t.Fatalf("cold scan counted %d scanned / %d reused", res.TilesScanned, res.TilesReused)
	}

	// Edit strictly inside the bottom-right megatile's exclusive
	// interior: one new blob, clear of every overlap strip.
	edited := layout.New(win)
	edited.Rects = append(edited.Rects, l.Rects...)
	plantBlob(edited, w-r/2, w-r/2, c)

	dirty := layout.Diff(l, edited)
	if len(dirty) != 1 {
		t.Fatalf("diff %v, want the one added blob", dirty)
	}
	inc := m.RescanLayoutMegatile(res, edited, dirty)
	if inc.TilesScanned != 1 || inc.TilesReused != 3 {
		t.Fatalf("rescan counted %d scanned / %d reused, want 1 / 3", inc.TilesScanned, inc.TilesReused)
	}
	cold := m.DetectLayoutMegatile(edited, win, 1)
	assertSameDetections(t, "incremental vs cold", cold, inc.Detections)

	// The rescan result must itself seed further rescans.
	inc2 := m.RescanLayoutMegatile(inc, edited, nil)
	assertSameDetections(t, "rescan of rescan", cold, inc2.Detections)
}

func TestEmptyDiffRasterizesNothing(t *testing.T) {
	m := parityModel(t)
	l, win := quadLayout(m.Config)
	res := m.ScanLayoutMegatile(l, win, 1)

	layout.ResetRasterizedPixels()
	same := m.RescanLayoutMegatile(res, l, layout.Diff(l, l))
	if px := layout.RasterizedPixels(); px != 0 {
		t.Fatalf("empty diff rasterized %d pixels, want 0", px)
	}
	if same.TilesScanned != 0 || same.TilesReused != 4 {
		t.Fatalf("empty diff scanned %d / reused %d, want 0 / 4", same.TilesScanned, same.TilesReused)
	}
	assertSameDetections(t, "empty diff", res.Detections, same.Detections)
}

func TestDirtyRectOnSeamInvalidatesBothTiles(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	l, win := quadLayout(c)
	_, spec := quadGeometry(c)
	res := m.ScanLayoutMegatile(l, win, 1)

	// A rect straddling the vertical ownership boundary (which runs
	// through the middle of the overlap strip — the slack-band seam) is
	// inside BOTH adjacent megatiles' rasters, so both columns must
	// rescan: 4 of 4 tiles when it spans the window height... keep it
	// short so only the top row's two tiles see it.
	seamX := spec.StrideNM + spec.OverlapNM/2
	p := int(c.PitchNM)
	edited := layout.New(win)
	edited.Rects = append(edited.Rects, l.Rects...)
	edited.Add(layout.R(seamX-p, spec.RegionNM/4, seamX+p, spec.RegionNM/4+p))

	dirty := layout.Diff(l, edited)
	inc := m.RescanLayoutMegatile(res, edited, dirty)
	if inc.TilesScanned != 2 || inc.TilesReused != 2 {
		t.Fatalf("seam edit scanned %d / reused %d, want 2 / 2", inc.TilesScanned, inc.TilesReused)
	}
	assertSameDetections(t, "seam edit", m.DetectLayoutMegatile(edited, win, 1), inc.Detections)
}

func TestDirtyRectInHaloInvalidatesOwningTile(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	l, win := quadLayout(c)
	_, spec := quadGeometry(c)
	res := m.ScanLayoutMegatile(l, win, 1)

	// An edit in the overlap strip is halo context for both adjacent
	// megatiles even when it sits past one side's ownership boundary: the
	// right tile OWNS clips there, and the left tile's raster still
	// contains the bytes. Both must be invalidated — a scheme that only
	// invalidated the owner would serve the left tile a stale raster's
	// detections near its edge.
	p := int(c.PitchNM)
	// Just inside the left tile's raster edge: x in [RegionNM - pitch,
	// RegionNM), squarely past the seam midpoint, owned by the right tile.
	edited := layout.New(win)
	edited.Rects = append(edited.Rects, l.Rects...)
	edited.Add(layout.R(spec.RegionNM-p, spec.RegionNM/4, spec.RegionNM, spec.RegionNM/4+p))

	inc := m.RescanLayoutMegatile(res, edited, layout.Diff(l, edited))
	if inc.TilesScanned != 2 || inc.TilesReused != 2 {
		t.Fatalf("halo edit scanned %d / reused %d, want 2 / 2", inc.TilesScanned, inc.TilesReused)
	}
	assertSameDetections(t, "halo edit", m.DetectLayoutMegatile(edited, win, 1), inc.Detections)

	// Control: an edit in a megatile's exclusive interior (outside every
	// overlap strip) invalidates exactly that tile.
	interior := layout.New(win)
	interior.Rects = append(interior.Rects, l.Rects...)
	interior.Add(layout.R(spec.RegionNM/2, spec.RegionNM/2, spec.RegionNM/2+p, spec.RegionNM/2+p))
	inc2 := m.RescanLayoutMegatile(res, interior, layout.Diff(l, interior))
	if inc2.TilesScanned != 1 || inc2.TilesReused != 3 {
		t.Fatalf("interior edit scanned %d / reused %d, want 1 / 3", inc2.TilesScanned, inc2.TilesReused)
	}
	assertSameDetections(t, "interior edit", m.DetectLayoutMegatile(interior, win, 1), inc2.Detections)
}

func TestWeightChangeInvalidatesRescan(t *testing.T) {
	m := parityModel(t)
	l, win := quadLayout(m.Config)
	res := m.ScanLayoutMegatile(l, win, 1)

	// Mutate one weight the way a training step or Load would; the rescan
	// must notice (fresh version hash) and degrade to a full scan even
	// with an empty diff — stale per-tile results are as wrong as stale
	// cache entries.
	w := m.Params()[0].W.Data()
	w[0] += 0.25
	inc := m.RescanLayoutMegatile(res, l, nil)
	if inc.TilesScanned != 4 || inc.TilesReused != 0 {
		t.Fatalf("post-weight-change rescan scanned %d / reused %d, want 4 / 0", inc.TilesScanned, inc.TilesReused)
	}
	assertSameDetections(t, "post-weight-change", m.DetectLayoutMegatile(l, win, 1), inc.Detections)
}

// TestAdversarialNearCollisions scans near-identical layout pairs through
// one shared cache and requires each warm scan bit-identical to its cold
// scan. Every variant is engineered to collide under a sloppier key:
// sub-pixel translation (same shapes, shifted under the pixel-centre
// sampling), mirrored cells (same rect multiset geometry statistics),
// and halo-only edits (identical owned interiors, different halo bytes).
func TestAdversarialNearCollisions(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	base, win := quadLayout(c)
	_, spec := quadGeometry(c)
	p := int(c.PitchNM)
	w := win.X1

	variants := map[string]*layout.Layout{}

	subpx := layout.New(win)
	for _, r := range base.Rects {
		subpx.Add(layout.R(r.X0+p/2, r.Y0, r.X1+p/2, r.Y1))
	}
	variants["subpixel translate"] = subpx

	mirror := layout.New(win)
	for _, r := range base.Rects {
		mirror.Add(layout.R(w-r.X1, r.Y0, w-r.X0, r.Y1))
	}
	variants["mirrored cells"] = mirror

	haloEdit := layout.New(win)
	haloEdit.Rects = append(haloEdit.Rects, base.Rects...)
	haloEdit.Add(layout.R(spec.StrideNM, spec.RegionNM/2, spec.StrideNM+p, spec.RegionNM/2+p))
	variants["halo-only edit"] = haloEdit

	cache := NewDetCache(0)
	defer m.SetScanCache(nil)
	coldThenWarm(t, m, cache, base, win, 1, "base")
	for name, v := range variants {
		coldThenWarm(t, m, cache, v, win, 1, name)
	}
}

// TestCacheConcurrencyHammer (satellite: run with -race) drives one
// shared cache from several goroutines, each scanning through its own
// model clone, and then checks the books exactly: the four distinct
// megatile rasters produce exactly four misses ever, every post-warm
// lookup is a hit, and every goroutine's detections are bit-identical to
// the reference — torn or aliased Detection slices would differ (and
// trip the race detector).
func TestCacheConcurrencyHammer(t *testing.T) {
	base := parityModel(t)
	cache := NewDetCache(0)
	l, win := quadLayout(base.Config)
	base.SetScanWorkers(1)
	base.SetScanCache(cache)
	defer base.SetScanCache(nil)

	ref := base.DetectLayoutMegatile(l, win, 1)
	if st := cache.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("warm scan stats %+v, want 4 misses / 0 hits", st)
	}

	const goroutines, repeats = 3, 2
	results := make([][][]Detection, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		mg, err := base.Clone() // inherits the shared cache
		if err != nil {
			t.Fatal(err)
		}
		mg.SetScanWorkers(1)
		go func(g int, mg *Model) {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				results[g] = append(results[g], mg.DetectLayoutMegatile(l, win, 1))
			}
		}(g, mg)
	}
	wg.Wait()

	for g := range results {
		for i, got := range results[g] {
			if len(got) != len(ref) {
				t.Fatalf("goroutine %d scan %d: %d detections, want %d", g, i, len(got), len(ref))
			}
			for j := range got {
				if got[j] != ref[j] {
					t.Fatalf("goroutine %d scan %d detection %d: %+v, want %+v", g, i, j, got[j], ref[j])
				}
			}
		}
	}
	st := cache.Stats()
	if st.Misses != 4 {
		t.Fatalf("misses grew to %d; identical rasters recomputed", st.Misses)
	}
	wantHits := int64(goroutines * repeats * 4)
	if st.Hits != wantHits || st.Shared != 0 {
		t.Fatalf("hits %d / shared %d, want exactly %d / 0 (every post-warm lookup hits)", st.Hits, st.Shared, wantHits)
	}
}
