package hsd

import (
	"math/rand"
	"testing"

	"rhsd/internal/geom"
)

// randomClipSet builds a clip population with pairwise-distinct scores so
// the descending-score order (and therefore the NMS result) is unique and
// permutation comparisons are exact.
func randomClipSet(rng *rand.Rand, n int) []ScoredClip {
	clips := make([]ScoredClip, n)
	for i := range clips {
		clips[i] = ScoredClip{
			Clip: geom.RectCWH(rng.Float64()*100, rng.Float64()*100,
				8+rng.Float64()*40, 8+rng.Float64()*40),
			// Distinct scores: a strictly decreasing base plus jitter that
			// cannot cross the 1e-3 spacing.
			Score: 1 - float64(i)*1e-3 - rng.Float64()*1e-4,
		}
	}
	return clips
}

func sameClips(a, b []ScoredClip) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHNMSPermutationInvariance: Algorithm 1 is defined on the
// score-sorted population, so any input ordering must give the same
// survivors in the same order.
func TestHNMSPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		clips := randomClipSet(rng, 40+trial)
		ref := HNMS(clips, 0.7)
		for p := 0; p < 10; p++ {
			perm := append([]ScoredClip(nil), clips...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			got := HNMS(perm, 0.7)
			if !sameClips(ref, got) {
				t.Fatalf("trial %d perm %d: HNMS output depends on input order\nref %v\ngot %v",
					trial, p, ref, got)
			}
		}
	}
}

// TestHNMSSurvivorsCoreDisjoint: no two survivors may share a core-region
// IoU above the suppression threshold (the defining property of Alg. 1).
func TestHNMSSurvivorsCoreDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	const threshold = 0.7
	for trial := 0; trial < 30; trial++ {
		clips := randomClipSet(rng, 60)
		kept := HNMS(clips, threshold)
		for i := range kept {
			for j := i + 1; j < len(kept); j++ {
				if iou := geom.CoreIoU(kept[i].Clip, kept[j].Clip); iou > threshold {
					t.Fatalf("trial %d: survivors %d and %d have core IoU %.3f > %.2f",
						trial, i, j, iou, threshold)
				}
			}
		}
	}
}

// TestHNMSStructuralProperties: survivors are a subset of the input,
// sorted by strictly descending score, and always include the top-scoring
// clip; every suppressed clip overlaps some higher-scoring survivor.
func TestHNMSStructuralProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const threshold = 0.7
	for trial := 0; trial < 20; trial++ {
		clips := randomClipSet(rng, 50)
		kept := HNMS(clips, threshold)
		if len(clips) > 0 && len(kept) == 0 {
			t.Fatal("HNMS dropped every clip")
		}
		inInput := make(map[ScoredClip]bool, len(clips))
		var best ScoredClip
		for i, c := range clips {
			inInput[c] = true
			if i == 0 || c.Score > best.Score {
				best = c
			}
		}
		if len(kept) > 0 && kept[0] != best {
			t.Fatalf("highest-scoring clip not kept first: got %+v want %+v", kept[0], best)
		}
		keptSet := make(map[ScoredClip]bool, len(kept))
		for i, k := range kept {
			if !inInput[k] {
				t.Fatalf("survivor %+v not in input", k)
			}
			if i > 0 && kept[i-1].Score <= k.Score {
				t.Fatalf("survivors not strictly descending at %d: %v then %v", i, kept[i-1].Score, k.Score)
			}
			keptSet[k] = true
		}
		for _, c := range clips {
			if keptSet[c] {
				continue
			}
			suppressed := false
			for _, k := range kept {
				if k.Score > c.Score && geom.CoreIoU(k.Clip, c.Clip) > threshold {
					suppressed = true
					break
				}
			}
			if !suppressed {
				t.Fatalf("clip %+v removed without a suppressing survivor", c)
			}
		}
	}
}

// TestHNMSInputNotMutated: the input slice order must survive the call
// (the doc promises the input is not modified).
func TestHNMSInputNotMutated(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	clips := randomClipSet(rng, 30)
	before := append([]ScoredClip(nil), clips...)
	HNMS(clips, 0.7)
	if !sameClips(before, clips) {
		t.Fatal("HNMS mutated its input slice")
	}
}

// TestConventionalNMSWholeClipDisjoint mirrors the core-IoU property for
// the whole-clip baseline suppression.
func TestConventionalNMSWholeClipDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	const threshold = 0.7
	for trial := 0; trial < 20; trial++ {
		clips := randomClipSet(rng, 60)
		kept := ConventionalNMS(clips, threshold)
		for i := range kept {
			for j := i + 1; j < len(kept); j++ {
				if iou := geom.IoU(kept[i].Clip, kept[j].Clip); iou > threshold {
					t.Fatalf("trial %d: survivors %d and %d have IoU %.3f > %.2f",
						trial, i, j, iou, threshold)
				}
			}
		}
	}
}
