package hsd

import (
	"testing"

	"rhsd/internal/layout"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// tracedScanLayout builds the standard two-megatile test chip.
func tracedScanLayout(c Config) *layout.Layout {
	W, _ := twoMegatileWindow(c)
	l := layout.New(layout.R(0, 0, W, W))
	addStripes(l, c)
	plantBlob(l, 400, 400, c)
	plantBlob(l, 2250, 2250, c)
	return l
}

// attrMap flattens a span's attributes for assertions. Duplicate keys
// keep the last value.
func attrMap(sp telemetry.SpanData) map[string]telemetry.TraceAttr {
	out := make(map[string]telemetry.TraceAttr, len(sp.Attrs))
	for _, a := range sp.Attrs {
		out[a.Key] = a
	}
	return out
}

// TestScanTraceTree pins the shape of a traced megatile scan: root →
// scan span (factor + megatile count) → one megatile span per tile
// carrying worker, grid position, cache outcome and per-stage tensor
// time, each with pipeline stage children nested inside its interval.
func TestScanTraceTree(t *testing.T) {
	c := TinyConfig()
	c.UseRefine = false
	c.ScoreThreshold = 0.45
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	l := tracedScanLayout(c)

	prev := tensor.SetProfiling(true)
	defer tensor.SetProfiling(prev)
	rec := telemetry.NewFlightRecorder(2)
	tr := rec.StartTrace("detect", "test", "")
	m.SetTrace(tr, tr.Root())
	res := m.ScanLayoutMegatile(l, l.Bounds, 2)
	m.SetTrace(nil, nil)
	tr.Complete()

	data, ok := rec.Trace(tr.TraceID())
	if !ok {
		t.Fatal("scan trace not retained")
	}
	if !data.Complete || data.DroppedSpans != 0 {
		t.Fatalf("complete=%v dropped=%d, want a complete un-truncated trace",
			data.Complete, data.DroppedSpans)
	}
	if len(data.Root.Children) != 1 || data.Root.Children[0].Name != "scan" {
		t.Fatalf("root children %+v, want exactly one scan span", data.Root.Children)
	}
	scan := data.Root.Children[0]
	attrs := attrMap(scan)
	if attrs["factor"].Val != 2 || attrs["megatiles"].Val != 4 {
		t.Fatalf("scan attrs %+v, want factor=2 megatiles=4", scan.Attrs)
	}
	// The scan span parents the megatile work items plus the post-scan
	// merge stages (h-NMS runs inside the scan boundary).
	var megatiles []telemetry.SpanData
	for _, c := range scan.Children {
		if c.Name == "megatile" {
			megatiles = append(megatiles, c)
		}
	}
	if len(megatiles) != 4 {
		t.Fatalf("scan has %d megatile spans (children %+v), want 4", len(megatiles), scan.Children)
	}
	seen := map[[2]int64]bool{}
	for _, mt := range megatiles {
		a := attrMap(mt)
		for _, key := range []string{"worker", "ix", "iy", "x_nm", "y_nm"} {
			if _, ok := a[key]; !ok {
				t.Fatalf("megatile span lacks %q: %+v", key, mt.Attrs)
			}
		}
		seen[[2]int64{a["ix"].Val, a["iy"].Val}] = true
		// No cache attached: every lookup outcome is "none".
		if a["cache"].Str != "none" {
			t.Fatalf("megatile cache attr %q, want none without a cache", a["cache"].Str)
		}
		// The forward pass must have attributed tensor stage time to
		// this span (some gemm flavor always runs).
		if a["gemm_packed_ns"].Val+a["gemm_rows_ns"].Val <= 0 {
			t.Fatalf("megatile span lacks gemm time: %+v", mt.Attrs)
		}
		if len(mt.Children) == 0 {
			t.Fatal("megatile span has no stage children")
		}
		for _, st := range mt.Children {
			if st.StartNs < mt.StartNs || st.StartNs+st.DurationNs > mt.StartNs+mt.DurationNs {
				t.Fatalf("stage %q [%d,+%d] outside megatile [%d,+%d]",
					st.Name, st.StartNs, st.DurationNs, mt.StartNs, mt.DurationNs)
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("megatile grid positions %v, want 4 distinct", seen)
	}

	// An all-reused incremental rescan opens a rescan span instead, with
	// the reuse accounting and no megatile children (nothing dirty).
	tr2 := rec.StartTrace("detect", "test-rescan", "")
	m.SetTrace(tr2, tr2.Root())
	res2 := m.RescanLayoutMegatile(res, l, nil)
	m.SetTrace(nil, nil)
	tr2.Complete()
	if res2.TilesReused != 4 {
		t.Fatalf("rescan reused %d tiles, want 4", res2.TilesReused)
	}
	data2, _ := rec.Trace("test-rescan")
	if len(data2.Root.Children) != 1 || data2.Root.Children[0].Name != "rescan" {
		t.Fatalf("rescan root children %+v, want one rescan span", data2.Root.Children)
	}
	ra := attrMap(data2.Root.Children[0])
	if ra["megatiles_reused"].Val != 4 || ra["megatiles_dirty"].Val != 0 {
		t.Fatalf("rescan attrs %+v, want 4 reused / 0 dirty", data2.Root.Children[0].Attrs)
	}
}

// TestPerTileScanTrace covers the legacy per-tile path: tile spans with
// positions under the scan span.
func TestPerTileScanTrace(t *testing.T) {
	c := TinyConfig()
	c.UseRefine = false
	c.ScoreThreshold = 0.45
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	regionNM := c.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM, regionNM))
	addStripes(l, c)

	rec := telemetry.NewFlightRecorder(1)
	tr := rec.StartTrace("detect", "tiles", "")
	m.SetTrace(tr, tr.Root())
	m.DetectLayout(l, l.Bounds)
	m.SetTrace(nil, nil)
	tr.Complete()

	data, _ := rec.Trace("tiles")
	if len(data.Root.Children) != 1 || data.Root.Children[0].Name != "scan" {
		t.Fatalf("root children %+v, want one scan span", data.Root.Children)
	}
	scan := data.Root.Children[0]
	var tiles []telemetry.SpanData
	for _, c := range scan.Children {
		if c.Name == "tile" {
			tiles = append(tiles, c)
		}
	}
	if want := attrMap(scan)["tiles"].Val; int64(len(tiles)) != want || want < 2 {
		t.Fatalf("scan %+v with %d tile spans, want the advertised %d (>= 2)",
			scan.Attrs, len(tiles), want)
	}
	for _, tile := range tiles {
		a := attrMap(tile)
		if _, ok := a["x_nm"]; !ok {
			t.Fatalf("tile span lacks x_nm: %+v", tile.Attrs)
		}
	}
}

// TestProfileScopeParity pins the attribution contract of
// tensor.ProfileScope: every instrumented site adds the identical
// elapsed value to the global profile and to the active span's scope,
// so the per-span *_ns attributes summed over all megatile spans equal
// the global snapshot delta exactly — no tensor time in a traced scan
// escapes span attribution.
func TestProfileScopeParity(t *testing.T) {
	c := TinyConfig()
	c.UseRefine = false
	c.ScoreThreshold = 0.45
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	l := tracedScanLayout(c)

	prev := tensor.SetProfiling(true)
	defer tensor.SetProfiling(prev)
	rec := telemetry.NewFlightRecorder(1)

	// Warm up first (workspace sizing allocates; irrelevant here), then
	// measure one traced scan against a clean global profile. Serial
	// workers keep the global counters exclusively ours.
	detectAtWorkers(1, func() int {
		m.ScanLayoutMegatile(l, l.Bounds, 2)
		tensor.ResetProfile()
		tr := rec.StartTrace("detect", "parity", "")
		m.SetTrace(tr, tr.Root())
		m.ScanLayoutMegatile(l, l.Bounds, 2)
		m.SetTrace(nil, nil)
		tr.Complete()
		return 0
	})

	global := tensor.ProfileSnapshot()
	data, _ := rec.Trace("parity")
	spanSums := map[string]int64{}
	for _, mt := range data.Root.Children[0].Children {
		for _, a := range mt.Attrs {
			spanSums[a.Key] += a.Val
		}
	}
	checked := 0
	for _, e := range global {
		key := e.Stage + "_ns"
		if spanSums[key] != e.Ns {
			t.Errorf("stage %s: span sum %d ns != global %d ns", e.Stage, spanSums[key], e.Ns)
		}
		if e.Ns > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no tensor stage recorded any time — the parity check is vacuous")
	}
}
