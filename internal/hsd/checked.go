package hsd

import (
	"errors"
	"fmt"

	"rhsd/internal/guard"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

// This file is the package's panic-free boundary. The detection kernels
// keep zero-cost panic contracts (shape checks compile to a compare and a
// static panic, nothing is plumbed through the hot loops); the *Checked
// wrappers validate the inputs a caller can plausibly get wrong up front
// with descriptive errors, then run the kernel through guard.Run so any
// remaining panic — a bug, a corrupt model, an unforeseen input — comes
// back as a *guard.PanicError instead of tearing down a long-running
// process. rhsd-serve is built entirely on these wrappers.

// ErrBadInput tags validation failures of the checked detection API so
// servers can map them to 4xx responses (errors.Is).
var ErrBadInput = errors.New("invalid detection input")

func badInputf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrBadInput)...)
}

// validateRaster mirrors the InferBase shape contract as an error.
func validateRaster(x *tensor.Tensor) error {
	if x == nil {
		return badInputf("hsd: nil input raster")
	}
	if x.Rank() != 4 || x.Dim(0) != 1 || x.Dim(1) != InputChannels ||
		x.Dim(2) <= 0 || x.Dim(2)%FeatureStride != 0 ||
		x.Dim(3) <= 0 || x.Dim(3)%FeatureStride != 0 {
		return badInputf("hsd: input raster shape %v, want [1 %d H W] with H, W positive multiples of %d",
			x.Shape(), InputChannels, FeatureStride)
	}
	return nil
}

// validateWindow checks a scan request's layout and window.
func validateWindow(l *layout.Layout, window layout.Rect) error {
	if l == nil {
		return badInputf("hsd: nil layout")
	}
	if window.Canon().Empty() {
		return badInputf("hsd: empty scan window %v", window)
	}
	return nil
}

// DetectChecked is Detect behind the error boundary: invalid rasters
// return an ErrBadInput-tagged error, and any panic from the inference
// stack is converted into a *guard.PanicError. Valid inputs produce
// bit-identical results to Detect.
func (m *Model) DetectChecked(x *tensor.Tensor) (dets []Detection, err error) {
	if err := validateRaster(x); err != nil {
		return nil, err
	}
	if err := guard.Run(func() { dets = m.Detect(x) }); err != nil {
		return nil, err
	}
	return dets, nil
}

// DetectLayoutChecked is DetectLayout behind the error boundary.
func (m *Model) DetectLayoutChecked(l *layout.Layout, window layout.Rect) (dets []Detection, err error) {
	if err := validateWindow(l, window); err != nil {
		return nil, err
	}
	if err := guard.Run(func() { dets = m.DetectLayout(l, window) }); err != nil {
		return nil, err
	}
	return dets, nil
}

// DetectLayoutMegatileChecked is DetectLayoutMegatile behind the error
// boundary. Any factor is accepted (the kernel clamps it); layout and
// window are validated like DetectLayoutChecked.
func (m *Model) DetectLayoutMegatileChecked(l *layout.Layout, window layout.Rect, factor int) (dets []Detection, err error) {
	if err := validateWindow(l, window); err != nil {
		return nil, err
	}
	if err := guard.Run(func() { dets = m.DetectLayoutMegatile(l, window, factor) }); err != nil {
		return nil, err
	}
	return dets, nil
}

// ScanLayoutMegatileChecked is ScanLayoutMegatile behind the error
// boundary, validated like DetectLayoutMegatileChecked.
func (m *Model) ScanLayoutMegatileChecked(l *layout.Layout, window layout.Rect, factor int) (res *ScanResult, err error) {
	if err := validateWindow(l, window); err != nil {
		return nil, err
	}
	if err := guard.Run(func() { res = m.ScanLayoutMegatile(l, window, factor) }); err != nil {
		return nil, err
	}
	return res, nil
}

// RescanLayoutMegatileChecked is RescanLayoutMegatile behind the error
// boundary. A prev without retained scan state (nil, or from a
// detect-only path) is an ErrBadInput error rather than a panic.
func (m *Model) RescanLayoutMegatileChecked(prev *ScanResult, l *layout.Layout, dirty []layout.Rect) (res *ScanResult, err error) {
	if prev == nil || prev.perTile == nil {
		return nil, badInputf("hsd: rescan needs a ScanResult from ScanLayoutMegatile")
	}
	if l == nil {
		return nil, badInputf("hsd: nil layout")
	}
	if err := guard.Run(func() { res = m.RescanLayoutMegatile(prev, l, dirty) }); err != nil {
		return nil, err
	}
	return res, nil
}

// LoadChecked restores model parameters from a checkpoint like Load, with
// the additional guarantee that a corrupt file can only produce an error,
// never a panic — nn.LoadParams validates every untrusted header field,
// and this boundary catches anything it might still miss.
func (m *Model) LoadChecked(path string) error {
	var inner error
	if err := guard.Run(func() { inner = m.Load(path) }); err != nil {
		return fmt.Errorf("hsd: loading checkpoint %q: %w", path, err)
	}
	if inner != nil {
		return fmt.Errorf("hsd: loading checkpoint %q: %w", path, inner)
	}
	return nil
}
