package hsd

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// Detection is one reported hotspot clip in the caller's coordinate frame.
type Detection struct {
	Clip  geom.Rect
	Score float64
}

// detectScratch is the model's reusable non-tensor detection state. All
// slices grow to the high-water mark of the pipeline and are recycled
// every Detect call, so steady-state detection allocates only the
// returned []Detection. The embedded BaseOutput is rewritten by each
// InferBase call.
type detectScratch struct {
	base    BaseOutput
	cand    []ScoredClip // decoded anchor candidates
	topk    []ScoredClip // pre-NMS top-K working copy
	sorted  []ScoredClip // nmsInto sort buffer
	kept    []ScoredClip // nmsInto survivors
	scored  []ScoredClip // refined, thresholded clips
	removed []bool       // nmsInto suppression marks
	rois    []geom.Rect  // cascade RoIs (current)
	next    []geom.Rect  // cascade RoIs (next iteration)
}

// topKInto copies clips into dst, sorts them by descending score (stable,
// matching TopK) and truncates to k. The returned slice aliases dst.
func topKInto(dst []ScoredClip, clips []ScoredClip, k int) []ScoredClip {
	dst = append(dst[:0], clips...)
	slices.SortStableFunc(dst, func(a, b ScoredClip) int { return cmp.Compare(b.Score, a.Score) })
	if k > 0 && k < len(dst) {
		dst = dst[:k]
	}
	return dst
}

// nmsInto is the scratch-backed counterpart of Model.nms: identical
// ordering and suppression semantics, but sort, survivor and removal
// buffers all come from s. The returned slice aliases s.kept and is valid
// until the next nmsInto call on the same scratch.
func (m *Model) nmsInto(s *detectScratch, clips []ScoredClip) []ScoredClip {
	overlap := geom.CoreIoU
	if m.Config.ConventionalNMS {
		overlap = geom.IoU
	}
	threshold := m.Config.NMSThreshold
	s.sorted = append(s.sorted[:0], clips...)
	sorted := s.sorted
	slices.SortStableFunc(sorted, func(a, b ScoredClip) int { return cmp.Compare(b.Score, a.Score) })
	if cap(s.removed) < len(sorted) {
		s.removed = make([]bool, len(sorted))
	}
	removed := s.removed[:len(sorted)]
	for i := range removed {
		removed[i] = false
	}
	s.kept = s.kept[:0]
	// Same disjointness quick-reject as the allocating nms: suppression
	// decisions are unchanged for non-negative thresholds.
	quick := threshold >= 0
	for i := range sorted {
		if removed[i] {
			continue
		}
		s.kept = append(s.kept, sorted[i])
		for j := i + 1; j < len(sorted); j++ {
			if removed[j] {
				continue
			}
			if quick && sorted[i].Clip.Disjoint(sorted[j].Clip) {
				continue
			}
			if overlap(sorted[i].Clip, sorted[j].Clip) > threshold {
				removed[j] = true
			}
		}
	}
	return s.kept
}

// proposalsInto is the scratch-backed counterpart of Proposals, used by
// the detection path. It decodes the CPN output over the given anchor
// grid, bounded by the w×h pixel extent of the raster that produced out.
// The pre-NMS top-K and proposal-count budgets scale with the grid's cell
// count relative to the nominal grid, so a megatile keeps the same
// proposal density per unit area as a per-tile scan; at the nominal size
// both scale factors are exactly 1 and the behaviour is unchanged. The
// returned slice aliases scratch buffers and is valid until the next
// proposalsInto/nmsInto call.
func (m *Model) proposalsInto(s *detectScratch, set *AnchorSet, out *BaseOutput, w, h int) []ScoredClip {
	c := m.Config
	sp := m.stageSpan(StagePruning)
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(w), Y1: float64(h)}
	base := c.FeatureSize() * c.FeatureSize()
	ratio := (set.FeatH*set.FeatW + base - 1) / base
	s.cand = s.cand[:0]
	for i, anchor := range set.Boxes {
		l0, l1 := anchorLogits(set, out.ClsMap, i)
		score := sigmoidDiff(l1, l0)
		box := geom.Decode(anchorReg(set, out.RegMap, i), anchor).Clip(bounds)
		if box.W() < 2 || box.H() < 2 {
			continue
		}
		s.cand = append(s.cand, ScoredClip{Clip: box, Score: score})
	}
	s.topk = topKInto(s.topk, s.cand, preNMSTopK*ratio)
	sp.End()
	sp = m.stageSpan(StageHNMS)
	kept := m.nmsInto(s, s.topk)
	sp.End()
	if ins := m.ins; ins != nil {
		ins.ProposalsSuppressed.Add(int64(len(s.topk) - len(kept)))
	}
	// kept is already in descending score order, so the final TopK is a
	// prefix — same result as Proposals' trailing TopK call.
	if pc := c.ProposalCount * ratio; c.ProposalCount > 0 && pc < len(kept) {
		kept = kept[:pc]
	}
	if ins := m.ins; ins != nil {
		ins.ProposalsKept.Add(int64(len(kept)))
	}
	return kept
}

// Detect runs one-pass region-based detection on an input raster
// [1,2,H,W] (H, W positive multiples of FeatureStride) and returns final
// hotspot clips in input-pixel coordinates.
//
// With refinement enabled this is the full two-stage flow of Figure 8:
// the clip proposal network localizes candidates, then the 2nd
// classification re-scores each candidate and the 2nd regression fine-
// tunes its clip. Without refinement ("w/o. Refine") the proposals are
// reported directly, thresholded on the 1st-stage score.
//
// Detect is shape-polymorphic: the backbone and heads are fully
// convolutional, the anchor grid is generated (and cached) per
// feature-map extent, and refinement RoI-pools per proposal from whatever
// feature map exists — so one call can cover a whole megatile of layout.
// Proposal budgets scale with raster area (see proposalsInto).
//
// Detect runs on the model's allocation-free inference path: activations
// come from the per-model workspace (reset on entry), candidate and NMS
// buffers from the model's scratch. Results are bit-identical to the
// training-path ForwardBase/Proposals/RefineForward composition; the
// only steady-state heap allocation is the returned []Detection.
func (m *Model) Detect(x *tensor.Tensor) []Detection {
	c := m.Config
	s := &m.scratch
	ins := m.ins
	if ins != nil {
		ins.DetectPasses.Inc()
	}
	h, w := x.Dim(2), x.Dim(3)
	out := m.InferBase(x)
	set := m.anchorsFor(h/FeatureStride, w/FeatureStride)
	props := m.proposalsInto(s, set, out, w, h)
	if !c.UseRefine {
		var dets []Detection
		for _, p := range props {
			if p.Score >= c.ScoreThreshold {
				dets = append(dets, Detection{Clip: p.Clip, Score: p.Score})
			}
		}
		if ins != nil {
			ins.Detections.Add(int64(len(dets)))
		}
		return dets
	}
	if len(props) == 0 {
		return nil
	}
	spRef := m.stageSpan(StageRefine)
	cur, nxt := s.rois[:0], s.next[:0]
	for _, p := range props {
		cur = append(cur, p.Clip)
	}
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(w), Y1: float64(h)}
	iters := c.RefineIterations
	if iters < 1 {
		iters = 1
	}
	empty := false
	for it := 0; it < iters && !empty; it++ {
		refCls, refReg := m.RefineInfer(out, cur)
		s.scored = s.scored[:0]
		nxt = nxt[:0]
		for i, r := range cur {
			score := sigmoidDiff(refCls.At(i, 1), refCls.At(i, 0))
			enc := geom.BoxEncoding{
				LX: float64(refReg.At(i, 0)),
				LY: float64(refReg.At(i, 1)),
				LW: float64(refReg.At(i, 2)),
				LH: float64(refReg.At(i, 3)),
			}
			box := geom.Decode(enc, r).Clip(bounds)
			if box.W() < 2 || box.H() < 2 {
				continue
			}
			// Intermediate cascade iterations keep every clip alive so a
			// clip can recover once re-centred; the final iteration applies
			// the score threshold.
			if it == iters-1 {
				if score >= c.ScoreThreshold {
					s.scored = append(s.scored, ScoredClip{Clip: box, Score: score})
				}
			} else {
				nxt = append(nxt, box)
			}
		}
		if it < iters-1 {
			if len(nxt) == 0 {
				empty = true
				break
			}
			cur, nxt = nxt, cur
		}
	}
	// Store the (possibly swapped, possibly grown) buffers back so their
	// capacity is kept for the next call.
	s.rois, s.next = cur, nxt
	spRef.End()
	if empty {
		return nil
	}
	sp := m.stageSpan(StageHNMS)
	final := m.nmsInto(s, s.scored)
	sp.End()
	dets := make([]Detection, len(final))
	for i, sc := range final {
		dets[i] = Detection{Clip: sc.Clip, Score: sc.Score}
	}
	if ins != nil {
		ins.Detections.Add(int64(len(dets)))
	}
	return dets
}

// DetectLayout scans an arbitrarily large layout window by tiling it into
// overlapping regions of the model's input size, detecting each tile in
// one forward pass and merging the tile detections with h-NMS. Detections
// are returned in nanometre coordinates relative to the window origin.
//
// Tiles overlap by one clip so hotspots on tile seams are seen centred in
// at least one tile — the region-based analogue of the conventional
// sliding-clip overlap, but with a stride of nearly a full region rather
// than a clip core (the source of the paper's ~45× speedup).
//
// Tiles are scanned concurrently on up to parallel.Workers() goroutines,
// each driving its own model replica (Clone) because layers cache forward
// activations. Per-tile results land in a slice indexed by tile and are
// concatenated in row-major tile order before the final h-NMS, so the
// output is bit-identical to a serial scan for every worker count.
func (m *Model) DetectLayout(l *layout.Layout, window layout.Rect) []Detection {
	c := m.Config
	regionNM := c.RegionNM()
	overlapNM := int(c.ClipNM())
	strideNM := regionNM - overlapNM
	if strideNM <= 0 {
		strideNM = regionNM
	}
	ys := tileOrigins(window.Y0, window.Y1, regionNM, strideNM)
	xs := tileOrigins(window.X0, window.X1, regionNM, strideNM)
	type tile struct{ x, y int }
	tiles := make([]tile, 0, len(ys)*len(xs))
	for _, y := range ys {
		for _, x := range xs {
			tiles = append(tiles, tile{x, y})
		}
	}

	scanTile := func(mw *Model, t tile) []ScoredClip {
		sub := l.Window(layout.R(t.x, t.y, t.x+regionNM, t.y+regionNM))
		raster := MakeSample(sub, nil, c).Raster
		var clips []ScoredClip
		for _, d := range mw.Detect(raster) {
			clipNM := d.Clip.Scale(c.PitchNM).Translate(float64(t.x-window.X0), float64(t.y-window.Y0))
			clips = append(clips, ScoredClip{Clip: clipNM, Score: d.Score})
		}
		return clips
	}

	tr := m.trace
	var scanSpan *telemetry.TraceSpan
	if tr != nil {
		scanSpan = tr.StartSpan(m.tspan, "scan")
		scanSpan.SetAttr("tiles", int64(len(tiles)))
		prev := m.tspan
		m.tspan = scanSpan
		defer func() {
			m.tspan = prev
			tr.EndSpan(scanSpan)
		}()
	}

	perTile := make([][]ScoredClip, len(tiles))
	m.scanReplicated(len(tiles), func(mw *Model, w, i int) {
		t := tiles[i]
		wt := beginWorkTrace(tr, scanSpan, mw, "tile", w)
		wt.span.SetAttr("x_nm", int64(t.x))
		wt.span.SetAttr("y_nm", int64(t.y))
		perTile[i] = scanTile(mw, t)
		wt.end(tr)
	})

	var all []ScoredClip
	for _, clips := range perTile {
		all = append(all, clips...)
	}
	sp := m.stageSpan(StageHNMS)
	merged := m.nms(all)
	sp.End()
	out := make([]Detection, len(merged))
	for i, s := range merged {
		out[i] = Detection{Clip: s.Clip, Score: s.Score}
	}
	if ins := m.ins; ins != nil {
		ins.TilesScanned.Add(int64(len(tiles)))
		ins.WorkspaceBytes.Set(int64(m.TotalWorkspaceFootprint()) * 4)
	}
	return out
}

// scanReplicated runs scan(replica, i) for every work item i in [0, n) on
// up to parallel.Workers() goroutines — capped by SetScanWorkers — each
// driving its own model replica (Clone) because layers and workspaces are
// single-goroutine state. Replicas are cached on the model and reused
// across calls (with their parameters re-synced from m each time, so a
// Load between scans takes effect), which keeps a long-lived model from
// re-building the network and re-growing workspaces on every scan. Work
// items are claimed from a shared counter; callers store per-item results
// in a slice indexed by i so output order — and therefore the final merge
// — is identical for every worker count. scan receives the worker slot w
// driving it (0 = the primary model) so traced scans can attribute each
// work item to the replica that ran it.
func (m *Model) scanReplicated(n int, scan func(mw *Model, w, i int)) {
	workers := parallel.Workers()
	if m.scanWorkers > 0 && m.scanWorkers < workers {
		workers = m.scanWorkers
	}
	if workers > n {
		workers = n
	}
	// Replica construction can fail only on an invalid Config, which m
	// itself already passed; a defensive fallback keeps the scan serial on
	// whatever replicas did build.
	for len(m.replicas) < workers-1 {
		r, err := m.Clone()
		if err != nil {
			break
		}
		m.replicas = append(m.replicas, r)
	}
	replicas := []*Model{m}
	for _, r := range m.replicas {
		if len(replicas) >= workers {
			break
		}
		m.syncReplica(r)
		replicas = append(replicas, r)
	}
	if len(replicas) == 1 {
		for i := 0; i < n; i++ {
			scan(m, 0, i)
		}
		return
	}
	var next int32
	var wg sync.WaitGroup
	wg.Add(len(replicas))
	for w, r := range replicas {
		go func(mw *Model, w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= n {
					return
				}
				scan(mw, w, i)
			}
		}(r, w)
	}
	wg.Wait()
}

// tileOrigins enumerates tile start coordinates covering [lo, hi) with the
// given stride, clamping the final tile so it ends at hi rather than
// overhanging the window (when the window is at least one region wide).
// Non-positive strides are clamped to a full region so a degenerate
// overlap configuration can never loop forever.
func tileOrigins(lo, hi, region, stride int) []int {
	if hi-lo <= region {
		return []int{lo}
	}
	if stride <= 0 {
		stride = region
	}
	var out []int
	for p := lo; ; p += stride {
		if p+region >= hi {
			out = append(out, hi-region)
			return out
		}
		out = append(out, p)
	}
}

// DetectionsNM converts pixel-space detections from Detect into nanometre
// coordinates.
func (m *Model) DetectionsNM(dets []Detection) []Detection {
	out := make([]Detection, len(dets))
	for i, d := range dets {
		out[i] = Detection{Clip: d.Clip.Scale(m.Config.PitchNM), Score: d.Score}
	}
	return out
}
