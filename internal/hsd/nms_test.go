package hsd

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"rhsd/internal/geom"
)

func sc(cx, cy, w, h, score float64) ScoredClip {
	return ScoredClip{Clip: geom.RectCWH(cx, cy, w, h), Score: score}
}

func TestHNMSKeepsDistinctCores(t *testing.T) {
	// The Figure 5 scenario: clips whose bodies overlap strongly but whose
	// cores are distinct. Conventional NMS drops the weaker one, h-NMS
	// keeps both.
	a := ScoredClip{Clip: geom.Rect{X0: 0, Y0: 0, X1: 12, Y1: 12}, Score: 0.9}
	b := ScoredClip{Clip: geom.Rect{X0: 7, Y0: 0, X1: 19, Y1: 12}, Score: 0.5}
	if geom.IoU(a.Clip, b.Clip) < 0.2 {
		t.Fatal("scenario needs body overlap")
	}
	conv := ConventionalNMS([]ScoredClip{a, b}, 0.2)
	if len(conv) != 1 {
		t.Fatalf("conventional NMS should suppress: %d", len(conv))
	}
	hn := HNMS([]ScoredClip{a, b}, 0.2)
	if len(hn) != 2 {
		t.Fatalf("h-NMS must keep both distinct-core clips: %d", len(hn))
	}
}

func TestHNMSSuppressesSameCore(t *testing.T) {
	clips := []ScoredClip{
		sc(50, 50, 20, 20, 0.9),
		sc(51, 50, 20, 20, 0.8), // nearly identical core
		sc(50, 51, 20, 20, 0.7),
	}
	out := HNMS(clips, 0.7)
	if len(out) != 1 || out[0].Score != 0.9 {
		t.Fatalf("same-core clips must collapse to the best: %v", out)
	}
}

func TestHNMSProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		clips := make([]ScoredClip, n)
		for i := range clips {
			clips[i] = sc(rng.Float64()*100, rng.Float64()*100,
				5+rng.Float64()*30, 5+rng.Float64()*30, rng.Float64())
		}
		out := HNMS(clips, 0.7)
		// 1. Output is a subset of the input.
		for _, o := range out {
			found := false
			for _, c := range clips {
				if c == o {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// 2. Sorted by descending score.
		for i := 1; i < len(out); i++ {
			if out[i].Score > out[i-1].Score {
				return false
			}
		}
		// 3. Pairwise core-IoU below threshold.
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if geom.CoreIoU(out[i].Clip, out[j].Clip) > 0.7 {
					return false
				}
			}
		}
		// 4. Idempotence.
		again := HNMS(out, 0.7)
		if len(again) != len(out) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHNMSDoesNotMutateInput(t *testing.T) {
	clips := []ScoredClip{sc(0, 0, 10, 10, 0.1), sc(50, 50, 10, 10, 0.9)}
	HNMS(clips, 0.7)
	if clips[0].Score != 0.1 || clips[1].Score != 0.9 {
		t.Fatal("input order mutated")
	}
}

func TestHNMSEmpty(t *testing.T) {
	if out := HNMS(nil, 0.7); len(out) != 0 {
		t.Fatalf("empty in, empty out: %v", out)
	}
}

func TestTopK(t *testing.T) {
	clips := []ScoredClip{
		sc(0, 0, 10, 10, 0.3),
		sc(0, 0, 10, 10, 0.9),
		sc(0, 0, 10, 10, 0.6),
	}
	top := TopK(clips, 2)
	if len(top) != 2 || top[0].Score != 0.9 || top[1].Score != 0.6 {
		t.Fatalf("topk: %v", top)
	}
	all := TopK(clips, 0)
	if len(all) != 3 {
		t.Fatalf("k<=0 keeps all: %v", all)
	}
	if len(TopK(clips, 10)) != 3 {
		t.Fatal("k beyond len keeps all")
	}
}

// referenceNMS is the unoptimized suppression loop without the
// disjointness quick-reject, kept as the oracle for the optimized path.
func referenceNMS(clips []ScoredClip, threshold float64, overlap func(a, b geom.Rect) float64) []ScoredClip {
	sorted := append([]ScoredClip(nil), clips...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	removed := make([]bool, len(sorted))
	var out []ScoredClip
	for i := range sorted {
		if removed[i] {
			continue
		}
		out = append(out, sorted[i])
		for j := i + 1; j < len(sorted); j++ {
			if removed[j] || overlap(sorted[i].Clip, sorted[j].Clip) <= threshold {
				continue
			}
			removed[j] = true
		}
	}
	return out
}

// TestNMSQuickRejectExact pins that the disjointness quick-reject never
// changes a suppression decision: on dense random candidate sets — many
// disjoint pairs, many barely-overlapping ones — the optimized HNMS and
// ConventionalNMS match the reject-free reference exactly.
func TestNMSQuickRejectExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		clips := make([]ScoredClip, n)
		for i := range clips {
			x := rng.Float64() * 200
			y := rng.Float64() * 200
			w := 4 + rng.Float64()*30
			h := 4 + rng.Float64()*30
			clips[i] = ScoredClip{
				Clip:  geom.Rect{X0: x, Y0: y, X1: x + w, Y1: y + h},
				Score: rng.Float64(),
			}
		}
		for _, th := range []float64{0, 0.3, 0.7} {
			got := HNMS(clips, th)
			want := referenceNMS(clips, th, geom.CoreIoU)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d threshold %v: HNMS diverged from reference (%d vs %d survivors)",
					trial, th, len(got), len(want))
			}
			got = ConventionalNMS(clips, th)
			want = referenceNMS(clips, th, geom.IoU)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d threshold %v: ConventionalNMS diverged from reference", trial, th)
			}
		}
	}
}
