package hsd

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"rhsd/internal/layout"
	"rhsd/internal/parallel"
)

// ---- layout-space synthetic hotspots ----
//
// The raster-space syntheticSample of train_test.go cannot exercise the
// scan paths, which rasterize layouts themselves. These helpers plant a
// hotspot signature as axis-aligned metal on the nanometre grid, so one
// big layout can be scanned per-tile and per-megatile and the planted
// ground truth compared across both.

// plantBlob adds an 11×11-pixel solid metal square centred at (cxNM,
// cyNM) — the layout-space hotspot signature. The square is aligned to
// the pixel grid, so the blob rasters identically under every window
// whose origin is a multiple of the pitch, which is what makes
// cross-scan comparisons meaningful.
func plantBlob(l *layout.Layout, cxNM, cyNM int, c Config) {
	p := int(c.PitchNM)
	l.Add(layout.R(cxNM-5*p, cyNM-5*p, cxNM+6*p, cyNM+6*p))
}

// addStripes lays the sparse background texture: one-pixel-high
// horizontal metal lines every eight pixels across the layout bounds.
func addStripes(l *layout.Layout, c Config) {
	p := int(c.PitchNM)
	for y := l.Bounds.Y0; y < l.Bounds.Y1; y += 8 * p {
		l.Add(layout.R(l.Bounds.X0, y, l.Bounds.X1, y+p))
	}
}

// synthLayoutSampleSized is syntheticSample rebuilt from layout geometry
// at an arbitrary raster size: a px×px layout with background stripes
// and nHot planted blobs, rasterized through the production
// MakeSampleSized path. Mixing sizes across a training set is what
// teaches the model both the per-tile and the megatile raster context
// (DESIGN.md §11).
func synthLayoutSampleSized(rng *rand.Rand, c Config, px, nHot int) Sample {
	p := int(c.PitchNM)
	l := layout.New(layout.R(0, 0, px*p, px*p))
	addStripes(l, c)
	var hs [][2]float64
	for i := 0; i < nHot; i++ {
		// Margin 8 px keeps the blob inside the raster but lets it hug the
		// border the way seam hotspots hug a megatile edge.
		cx := (8 + rng.Intn(px-16)) * p
		cy := (8 + rng.Intn(px-16)) * p
		plantBlob(l, cx, cy, c)
		hs = append(hs, [2]float64{float64(cx), float64(cy)})
	}
	return MakeSampleSized(l, hs, c, px)
}

// scanModel caches one model trained on layout-space synthetic hotspots
// at both the nominal and the factor-2 megatile raster size, shared by
// every megatile test in the package (training dominates their cost;
// detection never mutates results, see
// TestCloneProducesIdenticalDetections).
var scanModel struct {
	once sync.Once
	m    *Model
	err  error
}

func trainedScanModel(t *testing.T) *Model {
	t.Helper()
	if testing.Short() {
		t.Skip("trained-model megatile tests skipped in -short")
	}
	if raceDetectorEnabled {
		t.Skip("training exceeds the -race timeout; megatile concurrency is covered by the random-weight parity tests")
	}
	scanModel.once.Do(func() {
		c := TinyConfig()
		c.TrainSteps = 700
		c.BatchAnchors = 96
		c.ScoreThreshold = 0.15
		// The 700-step toy training is chaotically seed-sensitive: most
		// (seed, numerics) basins give a model that finds the planted
		// blobs with a wide score margin, a few give one that finds
		// almost nothing (the default TinyConfig seed collapsed from 11
		// detections to 1 under an ulp-level change in GEMM summation
		// grouping, and under +300 extra train steps with unchanged
		// numerics). Seed+1 was measured to land in a broad basin — 6/8
		// planted seam blobs found, stable across both row-kernel and
		// packed small-shape GEMM routing — which is what keeps the
		// non-vacuity assertions in the seam tests meaningful.
		c.Seed++
		m, err := NewModel(c)
		if err != nil {
			scanModel.err = err
			return
		}
		rng := rand.New(rand.NewSource(c.Seed))
		var samples []Sample
		for i := 0; i < 3; i++ {
			samples = append(samples, synthLayoutSampleSized(rng, c, c.InputSize, 1+i%2))
		}
		for i := 0; i < 3; i++ {
			samples = append(samples, synthLayoutSampleSized(rng, c, 2*c.InputSize, 2+i%2))
		}
		NewTrainer(m).Run(samples, nil)
		scanModel.m = m
	})
	if scanModel.err != nil {
		t.Fatal(scanModel.err)
	}
	return scanModel.m
}

// detsAt returns the detections whose clip core contains (cx, cy).
func detsAt(dets []Detection, cx, cy float64) []Detection {
	var out []Detection
	for _, d := range dets {
		if d.Clip.Core().Contains(cx, cy) {
			out = append(out, d)
		}
	}
	return out
}

// twoMegatileWindow returns a square window size holding exactly 2×2
// factor-2 megatiles at the design overlap (no clamped ragged tile), so
// the seam geometry is the nominal one: origins {0, StrideNM}, ownership
// boundary at (StrideNM+RegionNM)/2 on each axis.
func twoMegatileWindow(c Config) (size int, seam float64) {
	spec := c.Megatile(2)
	size = 2*spec.RegionNM - spec.OverlapNM
	seam = float64(spec.StrideNM+spec.RegionNM) / 2
	return size, seam
}

// oracleScan is an independent reimplementation of the 2×2 factor-2
// megatile scan, written directly from the DESIGN.md §11 rules rather
// than sharing DetectLayoutMegatile's plumbing: raster each megatile
// window once, detect with a plain single-raster Detect call, translate
// to window coordinates, keep a clip iff its centre falls on the
// megatile's side of the seam midpoint or within the boundary slack band
// around it, then h-NMS the row-major concatenation.
type oracleScan struct {
	final []Detection
	// raw holds each megatile's detections in window coordinates BEFORE
	// ownership filtering, indexed row-major (iy*2+ix) — the evidence for
	// duplicate suppression at seams.
	raw [4][]Detection
}

// oracleKeeps mirrors the expanded-ownership rule for the 2×2 geometry:
// quadrant index 0 keeps centres below seam+slack, index 1 keeps centres
// at or above seam−slack.
func oracleKeeps(v, seam, slack float64, idx int) bool {
	if idx == 0 {
		return v < seam+slack
	}
	return v >= seam-slack
}

func megatileOracle(m *Model, l *layout.Layout) oracleScan {
	c := m.Config
	W, seam := twoMegatileWindow(c)
	slack := float64(c.HaloNM()) / 2
	mega := 2 * c.RegionNM()
	origins := []int{0, W - mega}
	var o oracleScan
	var all []ScoredClip
	for iy, y := range origins {
		for ix, x := range origins {
			sub := l.Window(layout.R(x, y, x+mega, y+mega))
			raster := RegionRaster(sub, c, 2*c.InputSize)
			for _, d := range m.Detect(raster) {
				clip := d.Clip.Scale(c.PitchNM).Translate(float64(x), float64(y))
				o.raw[iy*2+ix] = append(o.raw[iy*2+ix], Detection{Clip: clip, Score: d.Score})
				if oracleKeeps(clip.CX(), seam, slack, ix) && oracleKeeps(clip.CY(), seam, slack, iy) {
					all = append(all, ScoredClip{Clip: clip, Score: d.Score})
				}
			}
		}
	}
	for _, s := range m.nms(all) {
		o.final = append(o.final, Detection{Clip: s.Clip, Score: s.Score})
	}
	return o
}

// TestMegatileInteriorEquivalence is the single-pass parity guard: the
// production megatile scan — with its shared worker pool, per-replica
// workspace reuse across megatiles, window extraction and coordinate
// translation — must reproduce the independent oracle bit-exactly
// (tolerance zero), for untrained weights at a permissive threshold so
// detections land everywhere, interiors included. Equivalence against
// the per-tile scan is exact only in the degenerate one-tile geometry
// (TestMegatileDegenerateWindowsMatchPerTile); at factor ≥ 2 the two
// paths compute interior clips from rasters with different border
// distances, which perturbs features over the network's receptive field
// (the bit-identity caveat of DESIGN.md §11), so cross-path agreement is
// a property of the trained model, not of the scan machinery pinned
// here.
func TestMegatileInteriorEquivalence(t *testing.T) {
	c := TinyConfig()
	// Untrained refine rejects nearly everything; CPN-only scoring keeps
	// sigmoid(~0) ≈ 0.5 candidates, flooding every megatile with
	// detections so the parity covers interiors, strips and seams alike.
	c.UseRefine = false
	c.ScoreThreshold = 0.45
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	W, seam := twoMegatileWindow(c)

	// Interior spots: ≥200 nm from the window border and from the megatile
	// seam lines on both axes (halo is 96 nm at TinyConfig).
	spots := [][2]int{{400, 400}, {2400, 520}, {620, 2350}, {2250, 2250}, {980, 1800}}
	l := layout.New(layout.R(0, 0, W, W))
	addStripes(l, c)
	for _, s := range spots {
		plantBlob(l, s[0], s[1], c)
		for _, v := range s {
			if d := math.Abs(float64(v) - seam); d < 200 {
				t.Fatalf("spot %v is %v nm from seam %v — not interior", s, d, seam)
			}
		}
	}

	mega := detectAtWorkers(1, func() []Detection { return m.DetectLayoutMegatile(l, l.Bounds, 2) })
	oracle := megatileOracle(m, l)
	assertSameDetections(t, "megatile scan vs oracle", oracle.final, mega)

	// Non-vacuity: the comparison must cover seam-free interior clips, not
	// just seam traffic.
	interior := 0
	for _, d := range mega {
		dx := math.Abs(d.Clip.CX() - seam)
		dy := math.Abs(d.Clip.CY() - seam)
		if dx > 200 && dy > 200 {
			interior++
		}
	}
	// The halo-ownership rule must also have done real work: raw megatile
	// outputs whose centre lies past the seam midpoint and the slack band
	// are dropped before the merge, which is what keeps overlap-strip
	// clips single-owner.
	dropped := 0
	slack := float64(c.HaloNM()) / 2
	for q := 0; q < 4; q++ {
		ix, iy := q%2, q/2
		for _, d := range oracle.raw[q] {
			if !oracleKeeps(d.Clip.CX(), seam, slack, ix) || !oracleKeeps(d.Clip.CY(), seam, slack, iy) {
				dropped++
			}
		}
	}
	t.Logf("scan: %d detections, %d interior, %d raw clips dropped by ownership", len(mega), interior, dropped)
	if len(mega) == 0 || interior == 0 {
		t.Fatalf("vacuous parity: %d detections, %d interior — lower the threshold", len(mega), interior)
	}
	if dropped == 0 {
		t.Errorf("ownership filter dropped nothing — the seam-dedup path was not exercised")
	}
}

// TestMegatileSeamHotspotReportedOnce is the seam-dedup regression test:
// hotspots planted exactly on megatile seams and on the seam crossing
// sit inside the overlap strip that two (or four) megatiles both
// rasterize, and the halo-ownership rule plus cross-megatile h-NMS must
// collapse the would-be duplicates so each is reported exactly once.
func TestMegatileSeamHotspotReportedOnce(t *testing.T) {
	m := trainedScanModel(t)
	c := m.Config
	W, seamF := twoMegatileWindow(c)
	seam := int(seamF)

	spots := [][2]int{
		{seam, 400},            // centre exactly on the vertical ownership boundary
		{seam + 60, 1000},      // inside the vertical overlap strip
		{400, seam},            // centre exactly on the horizontal boundary
		{1000, seam + 60},      // inside the horizontal overlap strip
		{seam, seam},           // on the boundary crossing
		{seam + 60, seam + 60}, // inside the strip crossing
		{seam, 2400},           // boundary, lower half
		{2400, seam},           // boundary, right half
	}
	l := layout.New(layout.R(0, 0, W, W))
	addStripes(l, c)
	for _, s := range spots {
		plantBlob(l, s[0], s[1], c)
	}

	mega := detectAtWorkers(1, func() []Detection { return m.DetectLayoutMegatile(l, l.Bounds, 2) })
	oracle := megatileOracle(m, l)
	assertSameDetections(t, "seam scan vs oracle", oracle.final, mega)

	reported := 0
	slack := float64(c.HaloNM()) / 2
	for _, s := range spots {
		cx, cy := float64(s[0]), float64(s[1])
		// The dedup contract: when any megatile detects a seam hotspot with
		// a centre inside its expanded ownership band, the scan reports it
		// — exactly once — no matter how many neighbouring megatiles also
		// detected it inside the overlap strip. (Whether the tiny fixture
		// model detects a given blob at all is a recall property, not a
		// seam property, so all-finders misses are only logged; non-vacuity
		// is asserted below.)
		kept, finders := 0, 0
		for q := 0; q < 4; q++ {
			ds := detsAt(oracle.raw[q], cx, cy)
			if len(ds) > 0 {
				finders++
			}
			for _, d := range ds {
				if oracleKeeps(d.Clip.CX(), seamF, slack, q%2) && oracleKeeps(d.Clip.CY(), seamF, slack, q/2) {
					kept++
				}
			}
		}
		got := detsAt(mega, cx, cy)
		t.Logf("spot %v: %d reports, %d megatiles saw it pre-filter, %d kept by ownership", s, len(got), finders, kept)
		if kept == 0 {
			continue
		}
		reported++
		if len(got) == 0 {
			t.Errorf("spot %v: a megatile detected this seam hotspot inside its ownership band but the scan dropped it", s)
			continue
		}
		// "Exactly once": every report of this hotspot belongs to one
		// cluster — pairwise clip centres within one clip size. A duplicate
		// that survived ownership+NMS would arrive as a second cluster
		// member from the neighbouring megatile; h-NMS guarantees survivors
		// are non-overlapping, so genuine duplicates cannot both persist.
		for i := 0; i < len(got); i++ {
			for j := i + 1; j < len(got); j++ {
				dx := got[i].Clip.CX() - got[j].Clip.CX()
				dy := got[i].Clip.CY() - got[j].Clip.CY()
				if math.Hypot(dx, dy) > c.ClipNM() {
					t.Errorf("spot %v: reported %d times across distinct clusters: %v", s, len(got), got)
				}
			}
		}
	}
	if reported < 2 {
		t.Errorf("only %d seam hotspots were detected by their owning megatile — test is (nearly) vacuous, strengthen the fixture", reported)
	}
}

// TestMegatileDegenerateWindowsMatchPerTile pins the degenerate scan
// geometries bit-exactly: for a window of at most one region the megatile
// scan collapses to the per-tile scan — same single tile, same raster,
// no ownership filtering — so the outputs must be identical floats, for
// any requested factor (the factor cap clamps oversized requests).
func TestMegatileDegenerateWindowsMatchPerTile(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	regionNM := c.RegionNM()
	rng := rand.New(rand.NewSource(11))
	l := layout.New(layout.R(0, 0, regionNM, regionNM))
	for i := 0; i < 60; i++ {
		x := rng.Intn(regionNM - 150)
		y := rng.Intn(regionNM - 150)
		l.Add(layout.R(x, y, x+30+rng.Intn(120), y+30+rng.Intn(120)))
	}
	windows := []layout.Rect{
		l.Bounds, // exactly one region
		layout.R(100, 140, 100+regionNM/2, 140+regionNM/2), // smaller than one region, odd origin
	}
	for _, w := range windows {
		want := m.DetectLayout(l, w)
		for _, factor := range []int{1, 4} {
			got := m.DetectLayoutMegatile(l, w, factor)
			assertSameDetections(t, "degenerate megatile window", want, got)
		}
	}
}

// TestMegatileParityAcrossWorkerCounts extends the bit-identical
// worker-count promise to the megatile scheduler: megatiles are claimed
// from a shared counter but results are merged in megatile order.
func TestMegatileParityAcrossWorkerCounts(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	regionNM := c.RegionNM()
	// Ragged window: clamped final megatiles on both axes.
	big := layout.New(layout.R(0, 0, 3*regionNM+regionNM/3, 2*regionNM+regionNM/5))
	for x := 40; x < big.Bounds.X1-80; x += 150 {
		big.Add(layout.R(x, 30, x+70, big.Bounds.Y1-50))
	}
	serial := detectAtWorkers(1, func() []Detection { return m.DetectLayoutMegatile(big, big.Bounds, 2) })
	par := detectAtWorkers(8, func() []Detection { return m.DetectLayoutMegatile(big, big.Bounds, 2) })
	assertSameDetections(t, "DetectLayoutMegatile", serial, par)
}

// TestMegatileRasterizesWindowOnce is the redundant-raster regression
// guard: the megatile scan rasterizes each layout window exactly once, so
// its total rasterized pixel count is the window area plus only the seam
// overlap strips — strictly less than the per-tile scan, which
// re-rasterizes a one-clip band around every tile.
func TestMegatileRasterizesWindowOnce(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	p := int(c.PitchNM)
	spec := c.Megatile(2)
	W, _ := twoMegatileWindow(c)
	l := layout.New(layout.R(0, 0, W, W))
	addStripes(l, c)

	layout.ResetRasterizedPixels()
	detectAtWorkers(1, func() struct{} { m.DetectLayoutMegatile(l, l.Bounds, 2); return struct{}{} })
	megaPx := layout.RasterizedPixels()

	layout.ResetRasterizedPixels()
	detectAtWorkers(1, func() struct{} { m.DetectLayout(l, l.Bounds); return struct{}{} })
	perTilePx := layout.RasterizedPixels()

	side := int64(W/p + spec.OverlapNM/p) // window side + one seam overlap per axis
	if limit := side * side; megaPx > limit {
		t.Errorf("megatile scan rasterized %d px, want ≤ window + seam overlap = %d", megaPx, limit)
	}
	if megaPx >= perTilePx {
		t.Errorf("megatile scan rasterized %d px, not fewer than per-tile scan's %d", megaPx, perTilePx)
	}
	t.Logf("window %d px², megatile %d px, per-tile %d px", (W/p)*(W/p), megaPx, perTilePx)
}

// TestAutoMegatileFactor pins the budget policy: a generous budget picks
// a factor bounded by the window, a tiny budget degrades to 1, and the
// chosen factor's predicted footprint fits the budget.
func TestAutoMegatileFactor(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	window := layout.R(0, 0, 8*c.RegionNM(), 8*c.RegionNM())
	if f := m.AutoMegatileFactor(window, 1); f != 1 {
		t.Errorf("zero-budget factor = %d, want 1", f)
	}
	perRegion := int64(m.WorkspaceFootprint()) * 4
	budget := perRegion * 20 // room for 4×4 but not 5×5
	f := m.AutoMegatileFactor(window, budget)
	if f < 2 {
		t.Errorf("factor %d under a %d-region budget, want ≥ 2", f, budget/perRegion)
	}
	if got := perRegion * int64(f) * int64(f); got > budget {
		t.Errorf("factor %d predicts %d bytes, over budget %d", f, got, budget)
	}
	// A small window caps the factor regardless of budget.
	small := layout.R(0, 0, c.RegionNM(), c.RegionNM())
	if f := m.AutoMegatileFactor(small, 1<<40); f != 1 {
		t.Errorf("single-region window factor = %d, want 1", f)
	}
}

// TestTrimWorkspaceAfterMegatile exercises the workspace retention
// story: a megatile pass grows the inference arena to megatile size, and
// TrimWorkspace shrinks it back to the nominal-tile footprint without
// perturbing subsequent detections.
func TestTrimWorkspaceAfterMegatile(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	c := TinyConfig()
	c.UseRefine = false
	c.ScoreThreshold = 0.45
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	s64 := synthLayoutSampleSized(rng, c, c.InputSize, 2)
	s128 := synthLayoutSampleSized(rng, c, 2*c.InputSize, 3)

	before := m.Detect(s64.Raster)
	nominalFP := m.WorkspaceFootprint()
	if nominalFP == 0 {
		t.Fatal("nominal Detect left an empty workspace")
	}

	m.Detect(s128.Raster)
	grownFP := m.WorkspaceFootprint()
	if grownFP <= nominalFP {
		t.Fatalf("megatile Detect did not grow the workspace: %d → %d", nominalFP, grownFP)
	}

	m.TrimWorkspace(nominalFP)
	if fp := m.WorkspaceFootprint(); fp > nominalFP {
		t.Fatalf("TrimWorkspace(%d) left footprint %d", nominalFP, fp)
	}

	// Trim must be invisible to results: the nominal-size scan is
	// bit-identical, and a later megatile pass simply regrows on demand.
	after := m.Detect(s64.Raster)
	assertSameDetections(t, "Detect after TrimWorkspace", before, after)
	m.Detect(s128.Raster)
	if fp := m.WorkspaceFootprint(); fp <= nominalFP {
		t.Fatalf("workspace did not regrow after trim: footprint %d", fp)
	}
}

// TestTrainerMultiScaleSmoke trains briefly on a mixed 64px/128px batch
// stream and requires the joint loss to decrease: the shape-polymorphic
// forward/backward path must be trainable at megatile raster sizes, not
// just nominal regions, for fine-tuning on larger contexts.
func TestTrainerMultiScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	c := TinyConfig()
	c.BatchAnchors = 64
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	samples := []Sample{
		synthLayoutSampleSized(rng, c, c.InputSize, 1),
		synthLayoutSampleSized(rng, c, 2*c.InputSize, 2),
		synthLayoutSampleSized(rng, c, c.InputSize, 2),
		synthLayoutSampleSized(rng, c, 2*c.InputSize, 1),
	}
	tr := NewTrainer(m)
	const steps = 40
	var first, last float64
	for i := 0; i < steps; i++ {
		st := tr.StepBatch([]Sample{samples[i%len(samples)], samples[(i+1)%len(samples)]})
		total := st.Total()
		if math.IsNaN(total) || math.IsInf(total, 0) {
			t.Fatalf("step %d: loss is not finite: %v", i, total)
		}
		if i < 4 {
			first += total
		}
		if i >= steps-4 {
			last += total
		}
	}
	if last >= first {
		t.Errorf("mixed-scale loss did not decrease: first 4 steps avg %.4f, last 4 steps avg %.4f",
			first/4, last/4)
	}
}
