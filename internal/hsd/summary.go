package hsd

import (
	"fmt"
	"strings"
)

// ParamCount returns the total number of trainable scalars in the model.
func (m *Model) ParamCount() int {
	total := 0
	for _, p := range m.Params() {
		total += p.W.Size()
	}
	return total
}

// StageParamCounts breaks the parameter count down by pipeline stage.
func (m *Model) StageParamCounts() map[string]int {
	out := map[string]int{}
	for _, p := range m.Stem.Params() {
		out["extractor"] += p.W.Size()
	}
	for _, p := range m.Backbone.Params() {
		out["extractor"] += p.W.Size()
	}
	for _, p := range m.EncDec.Params() {
		out["extractor"] += p.W.Size()
	}
	for _, p := range m.Inception.Params() {
		out["extractor"] += p.W.Size()
	}
	for _, p := range m.RPNTrunk.Params() {
		out["proposal"] += p.W.Size()
	}
	for _, p := range m.RPNCls.Params() {
		out["proposal"] += p.W.Size()
	}
	for _, p := range m.RPNReg.Params() {
		out["proposal"] += p.W.Size()
	}
	for _, p := range m.RefineTrunk.Params() {
		out["refinement"] += p.W.Size()
	}
	for _, p := range m.RefineFC.Params() {
		out["refinement"] += p.W.Size()
	}
	for _, p := range m.RefineCls.Params() {
		out["refinement"] += p.W.Size()
	}
	for _, p := range m.RefineReg.Params() {
		out["refinement"] += p.W.Size()
	}
	return out
}

// Summary renders a human-readable architecture description.
func (m *Model) Summary() string {
	c := m.Config
	var b strings.Builder
	fmt.Fprintf(&b, "R-HSD model\n")
	fmt.Fprintf(&b, "  input:      %d×%d px (%d channels) @ %.0f nm/px — %d nm region\n",
		c.InputSize, c.InputSize, InputChannels, c.PitchNM, c.RegionNM())
	fmt.Fprintf(&b, "  stem:       conv %v + 2 max-pools (×4 compression)\n", c.StemChannels)
	if c.UseEncDec {
		fmt.Fprintf(&b, "  enc-dec:    3 conv %v + 3 symmetric deconv\n", c.EncChannels)
	} else {
		fmt.Fprintf(&b, "  enc-dec:    disabled (w/o. ED ablation)\n")
	}
	fmt.Fprintf(&b, "  inception:  A A B A A A A, width %d → %d feature channels @ stride %d\n",
		c.InceptionWidth, m.FeatC, FeatureStride)
	fmt.Fprintf(&b, "  proposals:  %d anchors/cell (%d scales × %d ratios), head %d ch, top %d after h-NMS@%.2f\n",
		c.AnchorsPerCell(), len(c.Scales), len(c.AspectRatios), c.HeadChannels,
		c.ProposalCount, c.NMSThreshold)
	if c.UseRefine {
		tap := ""
		if c.UseFineTap {
			tap = " (+ stride-2 fine tap)"
		}
		fmt.Fprintf(&b, "  refinement: RoI %d×%d%s → inception B A A → FC %d → 2nd C&R\n",
			c.RoISize, c.RoISize, tap, c.RefineFC)
	} else {
		fmt.Fprintf(&b, "  refinement: disabled (w/o. Refine ablation)\n")
	}
	counts := m.StageParamCounts()
	fmt.Fprintf(&b, "  parameters: %d total (extractor %d, proposal %d, refinement %d)\n",
		m.ParamCount(), counts["extractor"], counts["proposal"], counts["refinement"])
	return b.String()
}
