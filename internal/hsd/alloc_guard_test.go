package hsd

import (
	"math/rand"
	"testing"

	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
)

// TestDetectSteadyStateAllocs is the allocation regression guard for the
// detection hot path: after a warm-up pass has sized the model's
// workspace and scratch buffers, a Detect call must perform only a small
// fixed number of heap allocations — essentially just the returned
// []Detection slice. Every kernel on the inference path takes a direct
// serial call when the worker pool has one worker, so not even
// parallel.For closure headers are allocated. Before the workspace
// arena, a single pass allocated every activation tensor: thousands of
// allocations and tens of megabytes. Workers are pinned to 1 because
// AllocsPerRun runs under GOMAXPROCS(1) and goroutine spawns would add
// nondeterministic bookkeeping allocations.
func TestDetectSteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)

	m.Detect(x) // warm-up: sizes the workspace arena and scratch

	allocs := testing.AllocsPerRun(10, func() {
		m.Detect(x)
	})
	// Budget: measured exactly 1 for TinyConfig (the returned []Detection
	// slice). 8 leaves headroom for toolchain drift without masking a
	// regression to per-tensor allocation (a single pass used to make
	// thousands).
	const budget = 8
	if allocs > budget {
		t.Errorf("steady-state Detect allocated %.0f times per run, want ≤ %d", allocs, budget)
	}
}

// TestMegatileDetectSteadyStateAllocs extends the allocation guard to the
// megatile shape: after a warm-up pass has grown the workspace to the
// factor-2 raster, repeated megatile-sized Detect calls must stay on the
// zero-allocation path — the megatile scan's per-pass cost is O(1)
// allocations just like the nominal scan's.
func TestMegatileDetectSteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	px := 2 * c.InputSize
	x := tensor.New(1, InputChannels, px, px)
	x.RandUniform(rng, 0, 1)

	m.Detect(x) // warm-up: grows workspace and anchor cache to megatile size

	allocs := testing.AllocsPerRun(10, func() {
		m.Detect(x)
	})
	const budget = 8
	if allocs > budget {
		t.Errorf("steady-state megatile Detect allocated %.0f times per run, want ≤ %d", allocs, budget)
	}
}
