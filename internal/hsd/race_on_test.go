//go:build race

package hsd

// raceDetectorEnabled reports whether this test binary was built with
// -race. The single-goroutine training smoke test is skipped under the
// detector: its ~15× slowdown blows the package timeout while adding no
// concurrency coverage — the parity suites are what exercise every
// parallel kernel under -race.
const raceDetectorEnabled = true
