// Package hsd implements the paper's contribution: the R-HSD region-based
// hotspot detection neural network (Chen et al., DAC 2019). The pipeline
// has the three stages of Figure 2 —
//
//  1. feature extraction: a convolution/pooling stem, a joint
//     encoder-decoder, and an Inception-based extractor (§3.1);
//  2. a clip proposal network emitting 12 candidate clips per feature-map
//     pixel with classification and regression branches (§3.2), trained
//     with the clip-pruning rules of §3.2.1 and deduplicated with hotspot
//     non-maximum suppression (§3.2.2, Alg. 1);
//  3. a refinement stage with RoI pooling and a second classification &
//     regression pass that cuts false alarms (§3.3);
//
// trained end-to-end with the multi-task C&R loss of §3.4 (smooth-L1 +
// cross-entropy + L2 regularization).
package hsd

import (
	"fmt"
)

// Config collects every architectural and training hyperparameter. The
// paper's settings are the defaults of PaperConfig; TinyConfig shrinks the
// spatial and channel dimensions so the full pipeline trains in seconds on
// one CPU core while keeping the architecture shape intact.
type Config struct {
	// --- geometry ---

	// InputSize is the square region raster fed to the network, in pixels
	// (paper: 256 at inference, 224 through the feature-extraction
	// description; the architecture only requires divisibility by the
	// feature stride).
	InputSize int
	// PitchNM converts between layout nanometres and raster pixels
	// (paper: 256 px ↔ 2.56 µm region, i.e. 10 nm/px).
	PitchNM float64
	// ClipPx is the ground-truth clip size in pixels; the anchor base.
	ClipPx float64

	// --- anchors (§3.2: "a group of 12 clips with different aspect
	// ratios are generated" per feature-map pixel) ---

	// AspectRatios are clip height:width ratios (paper: 0.5, 1.0, 2.0).
	AspectRatios []float64
	// Scales multiply ClipPx (paper: 0.25, 0.5, 1.0, 2.0).
	Scales []float64

	// --- architecture ---

	// StemChannels are the three stem convolution widths; two 2×2 max
	// pools between them give the 224→56 compression of §3.1.
	StemChannels [3]int
	// UseEncDec toggles the joint encoder-decoder ("w/o. ED" in Fig. 10
	// removes it).
	UseEncDec bool
	// EncChannels are the three encoder widths; the decoder mirrors them
	// back down to StemChannels[2].
	EncChannels [3]int
	// InceptionWidth is the per-branch channel width of the Inception
	// modules; module outputs are 4 (A) or 3 (B) concatenated branches.
	InceptionWidth int
	// HeadChannels is the 3×3 conv width in the clip proposal network
	// (paper: 512, Fig. 4).
	HeadChannels int
	// RefineFC is the width of the refinement stage's fully-connected
	// layer (2nd C&R, §3.4).
	RefineFC int
	// RoISize is the RoI-pooling output (paper: 7×7, §3.3).
	RoISize int
	// UseRefine toggles the refinement stage ("w/o. Refine" in Fig. 10).
	UseRefine bool
	// UseFineTap feeds the refinement stage a second RoI pooled from the
	// stride-2 stem features alongside the deep stride-8 features. The
	// paper's full-scale network (224 px at 10 nm/px) resolves hotspot
	// geometry in its deep features; shrunk profiles lose that to the
	// pools, and the tap restores it. Off reproduces the paper exactly.
	UseFineTap bool
	// RefineIterations applies the 2nd C&R repeatedly at inference,
	// re-pooling each iteration from the regressed clips (cascade
	// regression, an extension beyond the paper's single pass). Values
	// below 2 reproduce the paper.
	RefineIterations int

	// --- clip pruning (§3.2.1) ---

	// PositiveIoU: anchors with IoU ≥ this against a ground-truth clip
	// are positive samples (paper: 0.7).
	PositiveIoU float64
	// NegativeIoU: anchors with max IoU ≤ this are negative samples
	// (paper: 0.3). Anchors in between are ignored.
	NegativeIoU float64
	// BatchAnchors is the number of anchors sampled per training step for
	// the classification loss, half positive where possible.
	BatchAnchors int

	// --- NMS and proposals ---

	// NMSThreshold is the core-IoU suppression threshold of Alg. 1
	// (paper: 0.7).
	NMSThreshold float64
	// ConventionalNMS replaces h-NMS with whole-clip-IoU suppression — an
	// extended ablation isolating the contribution of Alg. 1 (Figure 5's
	// motivation). False (use h-NMS) reproduces the paper.
	ConventionalNMS bool
	// ProposalCount is the number of top-scoring proposals kept after
	// h-NMS for the refinement stage.
	ProposalCount int
	// ScoreThreshold is the minimum final hotspot probability reported at
	// inference.
	ScoreThreshold float64

	// --- loss (§3.4) and optimization (§4) ---

	// AlphaLoc balances localization vs classification (paper: 2.0).
	AlphaLoc float64
	// L2Beta is the regularization strength β (paper: 0.2; "w/o. L2" in
	// Fig. 10 sets 0).
	L2Beta float64
	// LearningRate, LRDecayEvery, LRDecayRate and Momentum define the SGD
	// schedule (paper: 0.002, ×0.1 every 30000 steps).
	LearningRate float64
	LRDecayEvery int
	LRDecayRate  float64
	Momentum     float64
	// TrainSteps is the number of optimizer steps for Trainer.Run.
	TrainSteps int
	// BatchRegions is the number of regions whose gradients are averaged
	// per optimizer step (paper: batch size 12). 0 or 1 disables batching.
	BatchRegions int
	// GradClip bounds the global gradient norm (0 disables).
	GradClip float64
	// Seed makes weight init and anchor sampling reproducible.
	Seed int64
}

// PaperConfig returns the hyperparameters reported in §4 of the paper at
// full scale. Training this configuration in pure Go on one CPU core is
// possible but slow; it exists as the reference point that TinyConfig and
// the eval profiles shrink from.
func PaperConfig() Config {
	return Config{
		InputSize:      256,
		PitchNM:        10,
		ClipPx:         48,
		AspectRatios:   []float64{0.5, 1.0, 2.0},
		Scales:         []float64{0.25, 0.5, 1.0, 2.0},
		StemChannels:   [3]int{32, 48, 64},
		UseEncDec:      true,
		EncChannels:    [3]int{96, 128, 160},
		InceptionWidth: 64,
		HeadChannels:   512,
		RefineFC:       256,
		RoISize:        7,
		UseRefine:      true,
		UseFineTap:     false, // paper-faithful at full scale

		PositiveIoU:    0.7,
		NegativeIoU:    0.3,
		BatchAnchors:   128,
		NMSThreshold:   0.7,
		ProposalCount:  32,
		ScoreThreshold: 0.5,
		AlphaLoc:       2.0,
		L2Beta:         0.2,
		LearningRate:   0.002,
		LRDecayEvery:   30000,
		LRDecayRate:    0.1,
		Momentum:       0.9,
		TrainSteps:     90000,
		BatchRegions:   12,
		GradClip:       10,
		Seed:           1,
	}
}

// TinyConfig returns a drastically shrunk configuration — same topology,
// small tensors — that trains end-to-end in seconds. Unit tests and the
// benchmark harness build on it.
func TinyConfig() Config {
	c := PaperConfig()
	c.InputSize = 64
	c.PitchNM = 12
	c.ClipPx = 16
	c.StemChannels = [3]int{6, 8, 12}
	c.EncChannels = [3]int{16, 20, 24}
	c.InceptionWidth = 8
	c.HeadChannels = 32
	c.RefineFC = 48
	c.BatchAnchors = 48
	c.ProposalCount = 16
	c.LearningRate = 0.01
	c.LRDecayEvery = 0
	c.TrainSteps = 60
	c.BatchRegions = 1
	c.UseFineTap = true
	// β scales with the learning rate: the paper's 0.2 at lr 0.002 has the
	// same per-step weight decay as 0.04 at lr 0.01; with momentum 0.9 the
	// effective decay is amplified ~10×, so stay well below that.
	c.L2Beta = 0.01
	return c
}

// FeatureStride is the total downsampling factor between input raster and
// feature map: two stem pools (×4) and the stride-2 Inception module B
// (×2).
const FeatureStride = 8

// Validate checks internal consistency and returns a descriptive error.
func (c Config) Validate() error {
	if c.InputSize <= 0 || c.InputSize%FeatureStride != 0 {
		return fmt.Errorf("hsd: InputSize %d must be a positive multiple of %d", c.InputSize, FeatureStride)
	}
	if c.PitchNM <= 0 {
		return fmt.Errorf("hsd: PitchNM must be positive")
	}
	if c.ClipPx <= 0 || c.ClipPx > float64(c.InputSize) {
		return fmt.Errorf("hsd: ClipPx %v out of range for input %d", c.ClipPx, c.InputSize)
	}
	if len(c.AspectRatios) == 0 || len(c.Scales) == 0 {
		return fmt.Errorf("hsd: anchors require at least one aspect ratio and scale")
	}
	if c.PositiveIoU <= c.NegativeIoU {
		return fmt.Errorf("hsd: PositiveIoU %v must exceed NegativeIoU %v", c.PositiveIoU, c.NegativeIoU)
	}
	if c.NMSThreshold <= 0 || c.NMSThreshold > 1 {
		return fmt.Errorf("hsd: NMSThreshold %v out of (0,1]", c.NMSThreshold)
	}
	if c.RoISize <= 0 {
		return fmt.Errorf("hsd: RoISize must be positive")
	}
	return nil
}

// FeatureSize returns the feature-map side length.
func (c Config) FeatureSize() int { return c.InputSize / FeatureStride }

// AnchorsPerCell returns the anchor group size (12 in the paper).
func (c Config) AnchorsPerCell() int { return len(c.AspectRatios) * len(c.Scales) }

// RegionNM returns the physical region size covered by one input raster.
func (c Config) RegionNM() int { return int(float64(c.InputSize) * c.PitchNM) }

// ClipNM returns the ground-truth clip size in nanometres.
func (c Config) ClipNM() float64 { return c.ClipPx * c.PitchNM }

// HaloNM is the megatile seam margin in nanometres: half a clip, the same
// worst-case context the per-tile scan's one-clip overlap guarantees a
// seam hotspot. Adjacent megatiles overlap by two halos and detections
// are owned by the megatile whose edge is at least one halo away from
// their clip centre (DESIGN.md §11). The network's theoretical receptive
// field is wider than this; the halo bounds the *clip-containment*
// margin, while border-induced numeric drift decays over the effective
// receptive field — hence the bit-identity caveat at megatile borders.
func (c Config) HaloNM() int { return (int(c.ClipNM()) + 1) / 2 }
