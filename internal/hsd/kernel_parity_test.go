package hsd

import (
	"math"
	"testing"

	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

// TestDetectLayoutParityAcrossKernels is the scan-level determinism
// contract for the runtime-dispatched GEMM kernels. For every kernel
// available on this host it checks that a full region scan is
// bit-identical at 1 and 8 workers, and that kernels of one rounding
// family (muladd: go/sse; fma: go-fma/avx2/avx512) produce bit-identical
// scans — the per-element accumulation order is geometry-independent, so
// register-tile width must not leak into results. Across families a
// single rounding per multiply-add step legitimately shifts logits —
// and therefore regressed box coordinates — by ulps, so there the
// contract is: identical detection count, clip rectangles and scores
// equal to tight tolerance. The model carries no scan cache here, so no
// kernel can serve another kernel's cached tiles.
func TestDetectLayoutParityAcrossKernels(t *testing.T) {
	origKernel := tensor.GemmKernel()
	defer tensor.SetGemmKernel(origKernel)

	m := parityModel(t)
	c := m.Config
	regionNM := c.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM+regionNM/3, regionNM+regionNM/5))
	for x := 40; x < l.Bounds.X1-80; x += 150 {
		l.Add(layout.R(x, 30, x+70, l.Bounds.Y1-50))
	}

	perFamily := map[string][]Detection{}
	owner := map[string]string{}
	tested := 0
	for _, name := range tensor.GemmKernels() {
		if !tensor.GemmKernelAvailable(name) {
			t.Logf("kernel %s unsupported on this CPU; skipping", name)
			continue
		}
		if _, err := tensor.SetGemmKernel(name); err != nil {
			t.Fatalf("SetGemmKernel(%q): %v", name, err)
		}
		tested++

		serial := detectAtWorkers(1, func() []Detection { return m.DetectLayout(l, l.Bounds) })
		par := detectAtWorkers(8, func() []Detection { return m.DetectLayout(l, l.Bounds) })
		assertSameDetections(t, "kernel "+name, serial, par)

		fam := tensor.GemmKernelFamily(name)
		if prev, ok := perFamily[fam]; ok {
			assertSameDetections(t, "family "+fam+": "+name+" vs "+owner[fam], prev, serial)
		} else {
			perFamily[fam] = serial
			owner[fam] = name
		}
	}
	if tested == 0 {
		t.Fatal("no GEMM kernels available")
	}

	ma, haveMA := perFamily["muladd"]
	fa, haveFA := perFamily["fma"]
	if !haveMA || !haveFA {
		t.Logf("only one rounding family available; cross-family check skipped")
		return
	}
	if len(ma) != len(fa) {
		t.Fatalf("families disagree on detection count: muladd %d vs fma %d", len(ma), len(fa))
	}
	const coordTol = 1e-2 // nm; regressed corners drift ulps, not pixels
	for i := range ma {
		mc, fc := ma[i].Clip, fa[i].Clip
		for _, d := range []float64{mc.X0 - fc.X0, mc.Y0 - fc.Y0, mc.X1 - fc.X1, mc.Y1 - fc.Y1} {
			if math.Abs(d) > coordTol {
				t.Fatalf("detection %d clip drifts %g nm across families: %v vs %v", i, d, mc, fc)
			}
		}
		if diff := math.Abs(ma[i].Score - fa[i].Score); diff > 1e-3 {
			t.Fatalf("detection %d score drifts %g across families: %v vs %v", i, diff, ma[i].Score, fa[i].Score)
		}
	}
}
