package hsd

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/geom"
	"rhsd/internal/tensor"
)

// syntheticSample plants dense "risky" texture patches at hotspot
// locations on a sparse background — a caricature of the real task that a
// working detector must solve quickly.
func syntheticSample(rng *rand.Rand, c Config, nHot int) Sample {
	img := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	// Sparse background stripes.
	for y := 0; y < c.InputSize; y += 8 {
		for x := 0; x < c.InputSize; x++ {
			img.Set(0.5, 0, 0, y, x)
		}
	}
	var gt []geom.Rect
	for i := 0; i < nHot; i++ {
		cx := 12 + rng.Intn(c.InputSize-24)
		cy := 12 + rng.Intn(c.InputSize-24)
		// Dense checkerboard blob ~ the hotspot signature.
		for dy := -5; dy <= 5; dy++ {
			for dx := -5; dx <= 5; dx++ {
				if (dx+dy)%2 == 0 {
					img.Set(1, 0, 0, cy+dy, cx+dx)
				}
			}
		}
		gt = append(gt, geom.RectCWH(float64(cx), float64(cy), c.ClipPx, c.ClipPx))
	}
	return Sample{Raster: img, GT: gt}
}

func TestTrainerStepRunsAndReportsLosses(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	rng := rand.New(rand.NewSource(1))
	st := tr.Step(syntheticSample(rng, c, 2))
	if st.RPNCls <= 0 {
		t.Fatalf("rpn cls loss should be positive at init: %+v", st)
	}
	if st.L2 <= 0 {
		t.Fatalf("L2 penalty should be positive with β>0: %+v", st)
	}
	if st.Total() <= 0 {
		t.Fatalf("total: %+v", st)
	}
}

func TestTrainerStepWithoutRefineSkipsSecondStage(t *testing.T) {
	c := TinyConfig()
	c.UseRefine = false
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	rng := rand.New(rand.NewSource(2))
	st := tr.Step(syntheticSample(rng, c, 1))
	if st.RefineCls != 0 || st.RefineReg != 0 {
		t.Fatalf("refine losses must be zero when disabled: %+v", st)
	}
}

func TestTrainerStepWithoutL2(t *testing.T) {
	c := TinyConfig()
	c.L2Beta = 0
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	rng := rand.New(rand.NewSource(3))
	st := tr.Step(syntheticSample(rng, c, 1))
	if st.L2 != 0 {
		t.Fatalf("L2 must be zero when β=0: %+v", st)
	}
}

func TestTrainerStepEmptyRegion(t *testing.T) {
	// A region without hotspots must still train (pure negatives).
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	img := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	st := tr.Step(Sample{Raster: img})
	if st.RPNCls <= 0 {
		t.Fatalf("negative-only step should still have cls loss: %+v", st)
	}
	if st.RPNReg != 0 {
		t.Fatalf("no positives → no reg loss: %+v", st)
	}
}

// TestEndToEndLearning is the package's central smoke test: a tiny R-HSD
// model trained briefly on planted-hotspot samples must (a) drive the
// training loss down and (b) detect a planted hotspot at inference while
// staying quiet on an empty region.
func TestEndToEndLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	if raceDetectorEnabled {
		t.Skip("single-goroutine training loop adds no race coverage and exceeds the -race timeout")
	}
	c := TinyConfig()
	c.TrainSteps = 700
	c.ScoreThreshold = 0.25
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	rng := rand.New(rand.NewSource(c.Seed))
	samples := make([]Sample, 4)
	for i := range samples {
		samples[i] = syntheticSample(rng, c, 1+i%2)
	}
	hist := tr.Run(samples, nil)
	first := avgTotal(hist[:10])
	last := avgTotal(hist[len(hist)-10:])
	if !(last < first) {
		t.Fatalf("loss did not decrease: first=%v last=%v", first, last)
	}

	// Inference on held-out samples, each with one planted hotspot. Allow
	// one miss: 500 steps is the floor of reliable convergence.
	hits := 0
	for k := 0; k < 3; k++ {
		test := syntheticSample(rng, c, 1)
		for _, d := range m.Detect(test.Raster) {
			if d.Clip.Core().Contains(test.GT[0].CX(), test.GT[0].CY()) {
				hits++
				break
			}
		}
	}
	if hits < 2 {
		t.Fatalf("trained model found only %d/3 held-out hotspots", hits)
	}
}

func avgTotal(h []StepStats) float64 {
	var s float64
	for _, st := range h {
		s += st.Total()
	}
	return s / float64(len(h))
}

func TestRefineTargets(t *testing.T) {
	gt := []geom.Rect{geom.RectCWH(50, 50, 20, 20)}
	rois := []geom.Rect{
		geom.RectCWH(50, 50, 20, 20),   // exact → positive
		geom.RectCWH(52, 50, 20, 20),   // high IoU → positive
		geom.RectCWH(200, 200, 20, 20), // disjoint → negative
	}
	labels, regTgt, regW := refineTargets(rois, gt)
	if labels[0] != 1 || labels[1] != 1 || labels[2] != 0 {
		t.Fatalf("labels %v", labels)
	}
	if regW[2] != 0 {
		t.Fatal("negative RoI must not regress")
	}
	// Exact match regresses to zero deltas.
	for j := 0; j < 4; j++ {
		if regTgt.At(0, j) != 0 {
			t.Fatalf("exact RoI target %v", regTgt.Data()[:4])
		}
	}
}

func TestDetectOnUntrainedModelIsWellFormed(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)
	dets := m.Detect(x)
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(c.InputSize), Y1: float64(c.InputSize)}
	for _, d := range dets {
		if !bounds.ContainsRect(d.Clip) {
			t.Fatalf("detection %v out of bounds", d.Clip)
		}
		if d.Score < c.ScoreThreshold {
			t.Fatalf("detection below threshold leaked: %v", d.Score)
		}
	}
}

func TestCheckpointPreservesDetections(t *testing.T) {
	c := TinyConfig()
	c.TrainSteps = 5
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	rng := rand.New(rand.NewSource(6))
	tr.Run([]Sample{syntheticSample(rng, c, 1)}, nil)

	path := t.TempDir() + "/model.ckpt"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(path); err != nil {
		t.Fatal(err)
	}
	x := syntheticSample(rng, c, 1).Raster
	a := m.Detect(x)
	b := m2.Detect(x)
	if len(a) != len(b) {
		t.Fatalf("detection count differs after reload: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStepBatchMatchesAveragedGradients(t *testing.T) {
	// A batch step with two identical samples must move weights exactly
	// like a single-sample step (gradient averaging is exact for
	// duplicated inputs, since anchor sampling is the only stochastic
	// part and we pin it by seeding two trainers identically).
	c := TinyConfig()
	c.L2Beta = 0
	c.GradClip = 0
	c.Momentum = 0
	rng := rand.New(rand.NewSource(9))
	s := syntheticSample(rng, c, 1)

	m1, _ := NewModel(c)
	m2, _ := NewModel(c)
	t1 := NewTrainer(m1)
	t2 := NewTrainer(m2)
	st1 := t1.Step(s)
	st2 := t2.StepBatch([]Sample{s, s})
	// Loss reporting averages over the batch.
	if math.Abs(st1.RPNCls-st2.RPNCls) > 0.05*(1+st1.RPNCls) {
		t.Fatalf("batch loss drifted: %v vs %v", st1.RPNCls, st2.RPNCls)
	}
	// Weights after the update agree closely (anchor subsampling differs
	// between the two trainer RNG streams, so allow slack on params but
	// verify the scale).
	p1 := m1.Params()[0].W
	p2 := m2.Params()[0].W
	var diff, norm float64
	for i := range p1.Data() {
		d := float64(p1.Data()[i] - p2.Data()[i])
		diff += d * d
		norm += float64(p1.Data()[i]) * float64(p1.Data()[i])
	}
	if diff > 0.05*norm {
		t.Fatalf("batch update diverged: rel %v", diff/norm)
	}
}

func TestRunWithBatchRegions(t *testing.T) {
	c := TinyConfig()
	c.TrainSteps = 3
	c.BatchRegions = 2
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(m)
	rng := rand.New(rand.NewSource(10))
	hist := tr.Run([]Sample{syntheticSample(rng, c, 1), syntheticSample(rng, c, 1)}, nil)
	if len(hist) != 3 {
		t.Fatalf("history %d", len(hist))
	}
	if tr.Opt.Step() != 3 {
		t.Fatalf("optimizer steps %d want 3 (one per batch)", tr.Opt.Step())
	}
}
