package hsd

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rhsd/internal/guard"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

func TestDetectCheckedValidatesRaster(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	bad := []*tensor.Tensor{
		nil,
		tensor.New(c.InputSize, c.InputSize),                       // wrong rank
		tensor.New(2, InputChannels, c.InputSize, c.InputSize),     // batch > 1
		tensor.New(1, 3, c.InputSize, c.InputSize),                 // wrong channels
		tensor.New(1, InputChannels, c.InputSize-1, c.InputSize),   // not 8k
		tensor.New(1, InputChannels, c.InputSize, c.InputSize-1),   // not 8k
	}
	for i, x := range bad {
		dets, err := m.DetectChecked(x)
		if err == nil || !errors.Is(err, ErrBadInput) {
			t.Fatalf("case %d: err = %v, want ErrBadInput", i, err)
		}
		if dets != nil {
			t.Fatalf("case %d: detections returned alongside error", i)
		}
	}
}

func TestDetectCheckedMatchesDetect(t *testing.T) {
	m := parityModel(t)
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(1, InputChannels, m.Config.InputSize, m.Config.InputSize)
	x.RandUniform(rng, 0, 1)
	want := m.Detect(x)
	got, err := m.DetectChecked(x)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, "DetectChecked", want, got)
}

func TestDetectLayoutCheckedValidates(t *testing.T) {
	m := parityModel(t)
	if _, err := m.DetectLayoutChecked(nil, layout.R(0, 0, 100, 100)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil layout: err = %v", err)
	}
	l := layout.New(layout.R(0, 0, 100, 100))
	if _, err := m.DetectLayoutChecked(l, layout.R(5, 5, 5, 9)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty window: err = %v", err)
	}
	if _, err := m.DetectLayoutMegatileChecked(nil, layout.R(0, 0, 100, 100), 2); !errors.Is(err, ErrBadInput) {
		t.Fatalf("megatile nil layout: err = %v", err)
	}
}

func TestDetectCheckedConvertsPanics(t *testing.T) {
	m := parityModel(t)
	// Corrupt internal state so the kernel panics (nil anchor set): the
	// boundary must return a *guard.PanicError, not crash the test binary.
	m.Anchors = nil
	x := tensor.New(1, InputChannels, m.Config.InputSize, m.Config.InputSize)
	_, err := m.DetectChecked(x)
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *guard.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
}

func TestLoadCheckedErrors(t *testing.T) {
	m := parityModel(t)
	if err := m.LoadChecked(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing checkpoint loaded without error")
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt.ckpt")
	if err := os.WriteFile(corrupt, []byte("RHSDCKPT1\xff\xff\xff\xff garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadChecked(corrupt); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}

func TestLoadCheckedRoundTrip(t *testing.T) {
	m := parityModel(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2 := parityModel(t)
	if err := m2.LoadChecked(path); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	x := tensor.New(1, InputChannels, m.Config.InputSize, m.Config.InputSize)
	x.RandUniform(rng, 0, 1)
	assertSameDetections(t, "LoadChecked round trip", m.Detect(x), m2.Detect(x))
}

// scanLayout builds the ragged multi-region layout the parity tests use.
func scanLayout(c Config) *layout.Layout {
	regionNM := c.RegionNM()
	l := layout.New(layout.R(0, 0, 2*regionNM+regionNM/3, 2*regionNM+regionNM/5))
	for x := 40; x < l.Bounds.X1-80; x += 150 {
		l.Add(layout.R(x, 30, x+70, l.Bounds.Y1-50))
	}
	return l
}

func TestScanWorkersCapParity(t *testing.T) {
	m := parityModel(t)
	l := scanLayout(m.Config)
	full := detectAtWorkers(8, func() []Detection { return m.DetectLayout(l, l.Bounds) })

	capped := parityModel(t)
	capped.SetScanWorkers(1)
	serial := detectAtWorkers(8, func() []Detection { return capped.DetectLayout(l, l.Bounds) })
	assertSameDetections(t, "scanWorkers=1", full, serial)

	capped.SetScanWorkers(2)
	two := detectAtWorkers(8, func() []Detection { return capped.DetectLayout(l, l.Bounds) })
	assertSameDetections(t, "scanWorkers=2", full, two)

	capped.SetScanWorkers(0) // back to the default
	def := detectAtWorkers(8, func() []Detection { return capped.DetectLayout(l, l.Bounds) })
	assertSameDetections(t, "scanWorkers reset", full, def)
}

func TestCachedReplicasResyncAfterLoad(t *testing.T) {
	// Scan once (populating the replica cache), then load different
	// weights and scan again: the cached replicas must serve the new
	// weights, bit-identical to a fresh model.
	c := TinyConfig()
	c.Seed = 99 // different weights than parityModel
	other, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.ckpt")
	if err := other.Save(path); err != nil {
		t.Fatal(err)
	}

	m := parityModel(t)
	l := scanLayout(m.Config)
	detectAtWorkers(4, func() []Detection { return m.DetectLayout(l, l.Bounds) }) // warm the cache
	if err := m.LoadChecked(path); err != nil {
		t.Fatal(err)
	}
	got := detectAtWorkers(4, func() []Detection { return m.DetectLayout(l, l.Bounds) })
	want := detectAtWorkers(4, func() []Detection { return other.DetectLayout(l, l.Bounds) })
	assertSameDetections(t, "replica resync", want, got)
}

func TestTrimWorkspaceCascadesToReplicas(t *testing.T) {
	m := parityModel(t)
	l := scanLayout(m.Config)
	detectAtWorkers(4, func() []Detection { return m.DetectLayout(l, l.Bounds) })
	if m.TotalWorkspaceFootprint() <= m.WorkspaceFootprint() {
		t.Skip("no replicas were cached (single-CPU run)")
	}
	m.TrimWorkspace(0)
	if got := m.TotalWorkspaceFootprint(); got != 0 {
		t.Fatalf("TotalWorkspaceFootprint = %d after full trim", got)
	}
}
