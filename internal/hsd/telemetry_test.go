package hsd

import (
	"math/rand"
	"strings"
	"testing"

	"rhsd/internal/parallel"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// TestDetectRecordsStageTelemetry checks that one Detect pass lands one
// observation in every active stage histogram and that the scan counters
// stay coherent (kept + suppressed = candidates entering h-NMS, one pass
// counted, detections counted exactly).
func TestDetectRecordsStageTelemetry(t *testing.T) {
	c := TinyConfig()
	c.ScoreThreshold = 0.2 // untrained weights must still report something
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ins := NewInstruments(reg)
	m.SetInstruments(ins)

	rng := rand.New(rand.NewSource(31))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)
	dets := m.Detect(x)

	if got := ins.DetectPasses.Value(); got != 1 {
		t.Errorf("detect passes = %d, want 1", got)
	}
	if got := ins.Detections.Value(); got != int64(len(dets)) {
		t.Errorf("detections counter = %d, want %d", got, len(dets))
	}
	for st := Stage(0); st < numStages; st++ {
		h := ins.StageHistogram(st)
		want := int64(1)
		switch st {
		case StageHNMS:
			// h-NMS runs inside proposal filtering and again on the
			// refined clips.
			want = 2
		case StageEncDec:
			if !c.UseEncDec {
				want = 0
			}
		case StageRefine:
			if !c.UseRefine {
				want = 0
			}
		}
		if got := h.Count(); got != want {
			t.Errorf("stage %s: %d observations, want %d", stageNames[st], got, want)
		}
		if h.Sum() < 0 {
			t.Errorf("stage %s: negative elapsed sum %v", stageNames[st], h.Sum())
		}
	}
	kept, supp := ins.ProposalsKept.Value(), ins.ProposalsSuppressed.Value()
	if kept <= 0 {
		t.Errorf("proposals kept = %d, want > 0", kept)
	}
	if supp < 0 {
		t.Errorf("proposals suppressed = %d", supp)
	}
}

// TestLayoutScanTelemetry checks the scan-level series: tile/megatile
// work-item counters and the workspace gauge, and that replicas created
// by the parallel scan aggregate into the parent's instruments rather
// than dropping observations.
func TestLayoutScanTelemetry(t *testing.T) {
	c := TinyConfig()
	c.ScoreThreshold = 0.2
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ins := NewInstruments(reg)
	m.SetInstruments(ins)

	l := scanLayout(c)
	m.DetectLayoutMegatile(l, l.Bounds, 2)
	if got := ins.MegatilesScanned.Value(); got < 1 {
		t.Errorf("megatiles scanned = %d, want >= 1", got)
	}
	mt := ins.MegatilesScanned.Value()
	if passes := ins.DetectPasses.Value(); passes != mt {
		t.Errorf("detect passes = %d, want %d (one per megatile)", passes, mt)
	}
	if ws := ins.WorkspaceBytes.Value(); ws <= 0 {
		t.Errorf("workspace gauge = %d after a scan", ws)
	}

	m.DetectLayout(l, l.Bounds)
	if got := ins.TilesScanned.Value(); got < 4 {
		t.Errorf("tiles scanned = %d, want >= 4 for a 2×2-region layout", got)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"rhsd_detect_stage_seconds_bucket", "rhsd_scan_tiles_total",
		"rhsd_detect_proposals_total", "rhsd_workspace_bytes",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}

// TestDetectTelemetryAllocs extends the steady-state allocation guard to
// the instrumented path: with a telemetry bundle attached, Detect must
// stay within the same allocation budget as with telemetry disabled —
// the whole point of the preallocated atomic instruments.
func TestDetectTelemetryAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInstruments(NewInstruments(telemetry.NewRegistry()))
	rng := rand.New(rand.NewSource(23))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)

	m.Detect(x) // warm-up: sizes the workspace arena and scratch

	allocs := testing.AllocsPerRun(10, func() {
		m.Detect(x)
	})
	// Same budget as the uninstrumented guard in alloc_guard_test.go:
	// telemetry must be free in allocation terms.
	const budget = 8
	if allocs > budget {
		t.Errorf("instrumented Detect allocated %.0f times per run, want ≤ %d", allocs, budget)
	}
}

// BenchmarkDetectRegionTelemetry is BenchmarkDetectRegion with a live
// telemetry bundle — diffing the two pins the instrumentation overhead
// (the rhsd-bench -exp obs guard automates the comparison).
func BenchmarkDetectRegionTelemetry(b *testing.B) {
	m, x := benchDetectSetup(b)
	prev := m.Instruments()
	m.SetInstruments(NewInstruments(telemetry.NewRegistry()))
	defer m.SetInstruments(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(x)
	}
}
