package hsd

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/geom"
	"rhsd/internal/tensor"
)

func TestRoIPoolFixedOutputSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	feat := tensor.New(1, 3, 8, 8)
	feat.RandN(rng, 1)
	p := NewRoIPool(7, 8) // stride 8: input coords are 8× feature coords
	rois := []geom.Rect{
		geom.RectCWH(32, 32, 40, 40),
		geom.RectCWH(16, 48, 16, 64), // non-square
		geom.RectCWH(8, 8, 12, 12),   // small
	}
	out := p.Forward(feat, rois)
	if out.Dim(0) != 3 || out.Dim(1) != 3 || out.Dim(2) != 7 || out.Dim(3) != 7 {
		t.Fatalf("pooled shape %v", out.Shape())
	}
}

func TestRoIPoolMaxSemantics(t *testing.T) {
	feat := tensor.New(1, 1, 4, 4)
	feat.Set(5, 0, 0, 1, 2)
	feat.Set(3, 0, 0, 3, 3)
	p := NewRoIPool(1, 1) // stride 1, 1×1 output: plain max over the RoI
	out := p.Forward(feat, []geom.Rect{{X0: 0, Y0: 0, X1: 4, Y1: 4}})
	if out.At(0, 0, 0, 0) != 5 {
		t.Fatalf("roi max %v want 5", out.At(0, 0, 0, 0))
	}
}

func TestRoIPoolBackwardRoutesToArgmax(t *testing.T) {
	feat := tensor.New(1, 1, 4, 4)
	feat.Set(5, 0, 0, 1, 2)
	p := NewRoIPool(1, 1)
	p.Forward(feat, []geom.Rect{{X0: 0, Y0: 0, X1: 4, Y1: 4}})
	gy := tensor.New(1, 1, 1, 1)
	gy.Fill(7)
	dx := p.Backward(gy)
	if dx.At(0, 0, 1, 2) != 7 {
		t.Fatalf("grad not routed: %v", dx.Data())
	}
	if dx.Sum() != 7 {
		t.Fatalf("grad leaked: sum %v", dx.Sum())
	}
}

func TestRoIPoolOverlappingRoIsAccumulateGrad(t *testing.T) {
	feat := tensor.New(1, 1, 4, 4)
	feat.Set(9, 0, 0, 2, 2)
	p := NewRoIPool(1, 1)
	full := geom.Rect{X0: 0, Y0: 0, X1: 4, Y1: 4}
	p.Forward(feat, []geom.Rect{full, full})
	gy := tensor.New(2, 1, 1, 1)
	gy.Fill(1)
	dx := p.Backward(gy)
	if dx.At(0, 0, 2, 2) != 2 {
		t.Fatalf("overlapping RoI grads must accumulate: %v", dx.At(0, 0, 2, 2))
	}
}

func TestRoIPoolClampsOutOfBoundsRoI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	feat := tensor.New(1, 2, 8, 8)
	feat.RandN(rng, 1)
	p := NewRoIPool(7, 8)
	// RoI partially outside the 64×64 input extent.
	out := p.Forward(feat, []geom.Rect{geom.RectCWH(0, 0, 64, 64)})
	for _, v := range out.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("clamping failed: non-finite output")
		}
	}
	// Degenerate RoI entirely outside: must not panic, produces zeros.
	out2 := p.Forward(feat, []geom.Rect{geom.RectCWH(-100, -100, 4, 4)})
	if out2.MaxAbs() != 0 {
		t.Fatalf("fully-outside RoI should pool to zero, got %v", out2.MaxAbs())
	}
	// And backward with no argmax entries is a no-op.
	gy := tensor.New(1, 2, 7, 7)
	gy.Fill(1)
	dx := p.Backward(gy)
	if dx.MaxAbs() != 0 {
		t.Fatal("gradient appeared from empty bins")
	}
}

func TestRoIPoolBinPartitionCoversRoI(t *testing.T) {
	// Pooling a constant feature map must give the constant everywhere:
	// every bin sees at least one pixel.
	feat := tensor.New(1, 1, 8, 8)
	feat.Fill(3)
	p := NewRoIPool(7, 8)
	out := p.Forward(feat, []geom.Rect{geom.RectCWH(32, 32, 30, 17)})
	for _, v := range out.Data() {
		if v != 3 {
			t.Fatalf("empty bin in RoI partition: %v", out.Data())
		}
	}
}
