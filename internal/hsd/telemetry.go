package hsd

import (
	"rhsd/internal/telemetry"
)

// Stage identifies one timed section of the detection pipeline, in the
// order the paper presents them: the feature-extraction backbone (§3.1),
// the joint encoder-decoder (§3.1.1), the inception chain (Figure 3),
// the clip proposal network heads (§3.2), proposal decoding and pruning
// (§3.2.1), hotspot NMS (§3.2.2, Alg. 1), and RoI refinement (§3.3).
type Stage int

const (
	StageBackbone Stage = iota
	StageEncDec
	StageInception
	StageCPN
	StagePruning
	StageHNMS
	StageRefine
	numStages
)

// stageNames are the `stage` label values on rhsd_detect_stage_seconds
// and the runtime/trace region names — constants, so span setup stays
// allocation-free.
var stageNames = [numStages]string{
	"backbone", "encdec", "inception", "cpn", "pruning", "hnms", "refine",
}

// stageLabels are the preformatted Prometheus label bodies.
var stageLabels = [numStages]string{
	`stage="backbone"`, `stage="encdec"`, `stage="inception"`, `stage="cpn"`,
	`stage="pruning"`, `stage="hnms"`, `stage="refine"`,
}

// StageBuckets spans 100µs–25s: TinyConfig stages sit in the lowest
// buckets, a paper-scale 224-px pass in the middle, and a large megatile
// forward pass near the top.
var StageBuckets = telemetry.ExpBuckets(0.0001, 2.5, 14)

// Instruments is the preallocated telemetry bundle one Model (and all
// its clones and scan replicas) records into. Build one per Registry
// with NewInstruments at startup and attach it with Model.SetInstruments;
// every field is safe for concurrent writers, and every observation on
// the detection hot path is allocation-free (the AllocsPerRun guards run
// with instruments attached).
type Instruments struct {
	// DetectPasses counts forward passes through Detect — one per region
	// in a per-tile scan, one per megatile in a megatile scan.
	DetectPasses *telemetry.Counter
	// TilesScanned / MegatilesScanned count scan work items by kind
	// (rhsd_scan_tiles_total{kind="tile"|"megatile"}); MegatilesReused
	// counts megatiles an incremental rescan served from retained results
	// without re-rasterizing (kind="megatile_reused").
	TilesScanned     *telemetry.Counter
	MegatilesScanned *telemetry.Counter
	MegatilesReused  *telemetry.Counter
	// ProposalsKept / ProposalsSuppressed count CPN proposals surviving
	// or removed by pruning + h-NMS
	// (rhsd_detect_proposals_total{fate="kept"|"suppressed"}).
	ProposalsKept       *telemetry.Counter
	ProposalsSuppressed *telemetry.Counter
	// Detections counts final reported hotspot clips.
	Detections *telemetry.Counter
	// WorkspaceBytes is the inference-workspace footprint (bytes, summed
	// over scan replicas) as of the last layout scan on the instrumented
	// model.
	WorkspaceBytes *telemetry.Gauge

	stages [numStages]*telemetry.Histogram
}

// NewInstruments builds the detection metric set on reg. Metric names
// are part of the operational contract documented in DESIGN.md §13;
// registering twice on one registry panics (duplicate series).
func NewInstruments(reg *telemetry.Registry) *Instruments {
	ins := &Instruments{
		DetectPasses: reg.NewCounter("rhsd_detect_passes_total",
			"Forward detection passes (one per tile or megatile).", ""),
		TilesScanned: reg.NewCounter("rhsd_scan_tiles_total",
			"Scan work items by kind.", `kind="tile"`),
		MegatilesScanned: reg.NewCounter("rhsd_scan_tiles_total",
			"Scan work items by kind.", `kind="megatile"`),
		MegatilesReused: reg.NewCounter("rhsd_scan_tiles_total",
			"Scan work items by kind.", `kind="megatile_reused"`),
		ProposalsKept: reg.NewCounter("rhsd_detect_proposals_total",
			"CPN proposals by fate after pruning and h-NMS.", `fate="kept"`),
		ProposalsSuppressed: reg.NewCounter("rhsd_detect_proposals_total",
			"CPN proposals by fate after pruning and h-NMS.", `fate="suppressed"`),
		Detections: reg.NewCounter("rhsd_detect_detections_total",
			"Final reported hotspot clips.", ""),
		WorkspaceBytes: reg.NewGauge("rhsd_workspace_bytes",
			"Inference workspace footprint after the last layout scan.", ""),
	}
	for st := Stage(0); st < numStages; st++ {
		ins.stages[st] = reg.NewHistogram("rhsd_detect_stage_seconds",
			"Wall time per detection pipeline stage.", stageLabels[st], StageBuckets)
	}
	return ins
}

// StageHistogram returns the latency histogram of one pipeline stage.
func (ins *Instruments) StageHistogram(st Stage) *telemetry.Histogram {
	return ins.stages[st]
}

// SetInstruments attaches (or, with nil, detaches) a telemetry bundle.
// The bundle is propagated to cached scan replicas and inherited by
// future Clone calls, so pooled serving workers and tile-scan replicas
// all aggregate into the same series.
func (m *Model) SetInstruments(ins *Instruments) {
	m.ins = ins
	for _, r := range m.replicas {
		r.SetInstruments(ins)
	}
}

// Instruments returns the attached telemetry bundle, nil if disabled.
func (m *Model) Instruments() *Instruments { return m.ins }

// stageSpan starts a stage timer. With no instruments attached and no
// execution trace running this is two branches and no allocation; with
// instruments it records into the stage histogram, and under
// rhsd-detect/rhsd-bench -trace it additionally opens a same-named
// runtime/trace region so `go tool trace` shows the exact histogram
// boundaries.
// When a request trace is attached (SetTrace), the same boundary also
// opens a child span in the flight-recorder tree under the model's
// current parent span.
func (m *Model) stageSpan(st Stage) telemetry.Span {
	var h *telemetry.Histogram
	if ins := m.ins; ins != nil {
		h = ins.stages[st]
	}
	if m.trace != nil {
		return telemetry.StartSpanTraced(h, stageNames[st], m.trace, m.tspan)
	}
	return telemetry.StartSpan(h, stageNames[st])
}
