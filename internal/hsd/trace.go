package hsd

import (
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// Request-trace glue for the detection pipeline: SetTrace attaches a
// flight-recorder trace to a model for the duration of one request, and
// workTrace hands worker replicas a per-megatile (or per-tile) span for
// exactly one work item. With no trace attached every hook below is a
// nil check, preserving the zero-allocation steady state (pinned by the
// alloc guards and the `-exp obs` gate).

// SetTrace attaches (or, with nil, detaches) the request trace: stage
// spans opened by this model parent under parent, and layout scans add
// their scan/megatile span tree beneath it. The caller owns the
// trace's lifecycle — detach before completing the trace, since span
// handles must not be used after Trace.Complete. Unlike instruments the
// trace deliberately does not propagate to scan replicas; see the
// Model.trace field comment.
func (m *Model) SetTrace(tr *telemetry.Trace, parent *telemetry.TraceSpan) {
	m.trace = tr
	m.tspan = parent
}

// profAttrKeys are the span attribute names for per-span tensor stage
// time, index-aligned with tensor.ProfileScope.Snapshot order. Constant
// strings so snapshotting a scope into a span never builds keys.
var profAttrKeys = [...]string{
	"gemm_rows_ns",
	"gemm_packed_ns",
	"qgemm_ns",
	"im2col_ns",
	"quantize_ns",
}

// workTrace is the restore state for one traced work item on a worker
// replica. The zero value (untraced scan) ends as a no-op.
type workTrace struct {
	mw        *Model
	span      *telemetry.TraceSpan
	prevTrace *telemetry.Trace
	prevSpan  *telemetry.TraceSpan
	prevScope *tensor.ProfileScope
	scope     *tensor.ProfileScope
}

// beginWorkTrace opens a span named name under parent for one work item
// and prepares replica mw to attribute to it: mw's stage spans parent
// under the new span, and mw's workspace gets a reset profile scope so
// tensor stage time lands on this span. tr and parent are passed as
// explicit values — not read from m — because the primary model is
// itself one of the scan workers, and reading m's trace fields from
// sibling goroutines would race with this function's restore writes.
func beginWorkTrace(tr *telemetry.Trace, parent *telemetry.TraceSpan, mw *Model, name string, worker int) workTrace {
	if tr == nil {
		return workTrace{}
	}
	sp := tr.StartSpan(parent, name)
	wt := workTrace{
		mw:        mw,
		span:      sp,
		prevTrace: mw.trace,
		prevSpan:  mw.tspan,
		prevScope: mw.ws.ProfileScope(),
	}
	mw.trace, mw.tspan = tr, sp
	if sp != nil {
		sp.SetAttr("worker", int64(worker))
		if mw.profScope == nil {
			mw.profScope = &tensor.ProfileScope{}
		}
		mw.profScope.Reset()
		mw.ws.SetProfileScope(mw.profScope)
		wt.scope = mw.profScope
	}
	return wt
}

// end restores the replica and closes the work span, first copying the
// profile scope's non-zero stages onto it as *_ns attributes.
func (wt workTrace) end(tr *telemetry.Trace) {
	if wt.mw == nil {
		return
	}
	wt.mw.ws.SetProfileScope(wt.prevScope)
	wt.mw.trace, wt.mw.tspan = wt.prevTrace, wt.prevSpan
	if wt.scope != nil {
		for i, e := range wt.scope.Snapshot() {
			if e.Calls > 0 && i < len(profAttrKeys) {
				wt.span.SetAttr(profAttrKeys[i], e.Ns)
			}
		}
	}
	tr.EndSpan(wt.span)
}
