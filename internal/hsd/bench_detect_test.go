package hsd

import (
	"math/rand"
	"sync"
	"testing"

	"rhsd/internal/tensor"
)

// benchDetectState builds the full-scale detection benchmark fixture
// once: the paper's network at a 224×224 region (§3.1's feature-
// extraction description) with the default 3×4 = 12 anchors per cell.
var benchDetectState struct {
	once   sync.Once
	model  *Model
	raster *tensor.Tensor
	err    error
}

func benchDetectSetup(b *testing.B) (*Model, *tensor.Tensor) {
	benchDetectState.once.Do(func() {
		c := PaperConfig()
		c.InputSize = 224
		benchDetectState.model, benchDetectState.err = NewModel(c)
		if benchDetectState.err != nil {
			return
		}
		rng := rand.New(rand.NewSource(7))
		x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
		x.RandUniform(rng, 0, 1)
		benchDetectState.raster = x
	})
	if benchDetectState.err != nil {
		b.Fatal(benchDetectState.err)
	}
	return benchDetectState.model, benchDetectState.raster
}

// BenchmarkDetectRegion measures one full-region detection pass at the
// paper's scale — the number the speed claims of Table 1 are about, and
// the hot path the parallel worker pool accelerates.
func BenchmarkDetectRegion(b *testing.B) {
	m, x := benchDetectSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(x)
	}
}

// BenchmarkDetectRegionTiny is the same pass at the test-scale TinyConfig,
// cheap enough for quick comparisons while iterating on the kernels.
func BenchmarkDetectRegionTiny(b *testing.B) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(x)
	}
}
