package hsd

import (
	"rhsd/internal/layout"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// This file implements the megatile scan: instead of rasterizing and
// inferring every InputSize tile independently — recomputing backbone
// features in every overlap band and paying per-tile dispatch, anchor
// decode and rasterization overhead — the layout is cut into megatiles of
// Factor×Factor regions, each rasterized once and pushed through a single
// fully-convolutional forward pass whose CPN output covers Factor² tiles'
// worth of layout. Megatiles are the unit of work for the parallel scan;
// seams are handled by a halo-ownership rule (see seamBoundaries) plus the
// cross-megatile h-NMS merge. DESIGN.md §11 documents the halo math and
// the bit-identity caveat at megatile borders.

// MegatileSpec describes the scan geometry for one megatile factor.
type MegatileSpec struct {
	// Factor is the number of nominal regions per megatile side.
	Factor int
	// PxSize is the megatile raster side in pixels (Factor × InputSize).
	PxSize int
	// RegionNM is the physical megatile side (Factor × Config.RegionNM).
	RegionNM int
	// OverlapNM is the seam overlap between adjacent megatiles: twice the
	// halo, so a clip owned by either neighbour sits at least one halo
	// from the edge of the megatile that computed it.
	OverlapNM int
	// StrideNM is the scan stride (RegionNM − OverlapNM).
	StrideNM int
}

// Megatile returns the scan geometry for the given factor (clamped to at
// least 1).
func (c Config) Megatile(factor int) MegatileSpec {
	if factor < 1 {
		factor = 1
	}
	spec := MegatileSpec{
		Factor:    factor,
		PxSize:    factor * c.InputSize,
		RegionNM:  factor * c.RegionNM(),
		OverlapNM: 2 * c.HaloNM(),
	}
	spec.StrideNM = spec.RegionNM - spec.OverlapNM
	if spec.StrideNM <= 0 {
		spec.StrideNM = spec.RegionNM
	}
	return spec
}

// megatileFactorCap clamps a requested factor so one megatile is no
// larger than the scan window needs: scanning a half-region window with a
// 4× megatile would spend 98% of the raster on padding.
func megatileFactorCap(c Config, window layout.Rect, factor int) int {
	maxDim := window.W()
	if window.H() > maxDim {
		maxDim = window.H()
	}
	fit := (maxDim + c.RegionNM() - 1) / c.RegionNM()
	if fit < 1 {
		fit = 1
	}
	if factor > fit {
		factor = fit
	}
	if factor < 1 {
		factor = 1
	}
	return factor
}

// seamBoundaries returns the ownership boundaries between consecutive
// megatiles along one axis: the midpoint of each overlap strip. A clip
// centre v is owned by megatile i when boundaries[i-1] <= v <
// boundaries[i] (with virtual ±∞ at the window ends), so every centre has
// exactly one owner. Because the overlap is two halos wide, the owner
// sees its clip at least one halo away from the megatile edge that
// truncated its context.
func seamBoundaries(origins []int, region int) []float64 {
	b := make([]float64, len(origins)-1)
	for i := range b {
		b[i] = float64(origins[i+1]+origins[i]+region) / 2
	}
	return b
}

// ownershipSlackNM is the tolerance band around each seam boundary,
// in which BOTH adjacent megatiles keep their detections. Strict
// half-open ownership of the clip centre can silently drop a hotspot
// sitting exactly on a boundary: the two megatiles compute its centre
// from rasters with different borders, and when regression jitter puts
// each centre on the *other* side of the boundary, both disclaim it.
// Within the slack band the duplicates are instead kept and collapsed by
// the cross-megatile h-NMS (their core IoU is far above the suppression
// threshold), so a boundary hotspot is reported exactly once as long as
// the two localizations differ by less than half a halo — a quarter
// clip, well above observed cross-context jitter of one or two pixels.
func ownershipSlackNM(c Config) float64 { return float64(c.HaloNM()) / 2 }

// keptBy reports whether coordinate v belongs to megatile i's expanded
// ownership interval [boundaries[i-1]-slack, boundaries[i]+slack), with
// virtual ±∞ at the window ends.
func keptBy(boundaries []float64, v float64, i int, slack float64) bool {
	if i > 0 && v < boundaries[i-1]-slack {
		return false
	}
	if i < len(boundaries) && v >= boundaries[i]+slack {
		return false
	}
	return true
}

// RegionRaster rasterizes a layout's bounds into the detector's
// two-channel input tensor of px×px pixels — MakeSample's raster step
// generalized to megatile sizes. Each layout window is rasterized exactly
// once per megatile; the per-tile scan's re-rasterization of every
// one-clip overlap strip is what this path eliminates.
func RegionRaster(l *layout.Layout, c Config, px int) *tensor.Tensor {
	raster := l.Rasterize(l.Bounds, c.PitchNM)
	img := tensor.New(1, InputChannels, px, px)
	// The raster may deviate by a pixel from px when region and pitch
	// don't divide exactly; copy the overlap. The second channel is
	// initialized to 1 (all space) and overwritten where metal rasters.
	for i := px * px; i < 2*px*px; i++ {
		img.Data()[i] = 1
	}
	h, w := raster.Dim(1), raster.Dim(2)
	for y := 0; y < minInt(h, px); y++ {
		for x := 0; x < minInt(w, px); x++ {
			v := raster.At(0, y, x)
			img.Set(v, 0, 0, y, x)
			img.Set(1-v, 0, 1, y, x)
		}
	}
	return img
}

// ScanResult is one megatile scan's output plus the state an incremental
// rescan needs: the scan geometry and the per-megatile post-ownership
// detections, each valid for exactly the raster its megatile consumed.
// Treat a ScanResult as immutable once returned — RescanLayoutMegatile
// shares clean tiles' slices between the previous and next result.
type ScanResult struct {
	// Detections is the merged scan output in nanometre coordinates
	// relative to the scan window origin (what DetectLayoutMegatile
	// returns).
	Detections []Detection
	// TilesScanned and TilesReused count this scan's megatiles by fate;
	// a cold scan has TilesReused == 0. Reuse here means the incremental
	// clean-tile path — cache hits inside scanned tiles are counted by
	// the cache's own telemetry, not per ScanResult.
	TilesScanned, TilesReused int

	window  layout.Rect
	spec    MegatileSpec
	xs, ys  []int
	perTile [][]ScoredClip // post-ownership, window-relative nm clips
	version [32]byte       // weights version the scan ran under
}

// Window returns the scan window (canonical) this result covers.
func (r *ScanResult) Window() layout.Rect { return r.window }

// Factor returns the effective (clamped) megatile factor used.
func (r *ScanResult) Factor() int { return r.spec.Factor }

// megatile identifies one scan work item: its nm origin and grid index.
type megatile struct{ x, y, ix, iy int }

// tileRect returns the megatile's full raster footprint in chip
// coordinates. The overlap strips — the halo bands — are inside this
// rect by construction, so overlap against it is the complete
// invalidation predicate for incremental rescans: no edit outside the
// rect can change any byte of the megatile's raster.
func (t megatile) tileRect(spec MegatileSpec) layout.Rect {
	return layout.R(t.x, t.y, t.x+spec.RegionNM, t.y+spec.RegionNM)
}

// megatileGrid lays out the scan geometry for a window: megatile
// origins, seam ownership boundaries and the row-major work list.
func megatileGrid(spec MegatileSpec, window layout.Rect) (xs, ys []int, xb, yb []float64, tiles []megatile) {
	ys = tileOrigins(window.Y0, window.Y1, spec.RegionNM, spec.StrideNM)
	xs = tileOrigins(window.X0, window.X1, spec.RegionNM, spec.StrideNM)
	yb = seamBoundaries(ys, spec.RegionNM)
	xb = seamBoundaries(xs, spec.RegionNM)
	tiles = make([]megatile, 0, len(ys)*len(xs))
	for iy, y := range ys {
		for ix, x := range xs {
			tiles = append(tiles, megatile{x, y, ix, iy})
		}
	}
	return xs, ys, xb, yb, tiles
}

// scanOneMegatile rasterizes one megatile, runs the forward pass (through
// the cache when useCache), applies the halo-ownership filter and returns
// the surviving clips in window-relative nanometre coordinates. sp, when
// non-nil, is the request-trace span for this megatile; it receives the
// tile coordinates and the cache outcome as attributes.
func (m *Model) scanOneMegatile(mw *Model, l *layout.Layout, t megatile, spec MegatileSpec,
	window layout.Rect, xb, yb []float64, version [32]byte, useCache bool, sp *telemetry.TraceSpan) []ScoredClip {
	c := m.Config
	sub := l.Window(t.tileRect(spec))
	raster := RegionRaster(sub, c, spec.PxSize)
	var clips []ScoredClip
	slack := ownershipSlackNM(c)
	dets, outcome := m.cachedDetect(mw, raster, version, useCache)
	if sp != nil {
		sp.SetAttr("ix", int64(t.ix))
		sp.SetAttr("iy", int64(t.iy))
		sp.SetAttr("x_nm", int64(t.x))
		sp.SetAttr("y_nm", int64(t.y))
		sp.SetAttrStr("cache", outcome.String())
	}
	for _, d := range dets {
		scaled := d.Clip.Scale(c.PitchNM)
		clipNM := scaled.Translate(float64(t.x), float64(t.y))
		// Halo ownership: clips centred past the overlap midpoint (plus
		// the boundary slack band) are deferred to the neighbouring
		// megatile, which computes them with at least a halo of real
		// context on every side; in-band duplicates are collapsed by the
		// final h-NMS.
		if !keptBy(xb, clipNM.CX(), t.ix, slack) || !keptBy(yb, clipNM.CY(), t.iy, slack) {
			continue
		}
		// Window-relative coordinates are produced with ONE float add per
		// axis from the exact integer offset t.x−window.X0, matching the
		// per-tile path (detect.go) to the bit. Translating the
		// chip-absolute clipNM by −window.X0 instead would round twice
		// ((clip+t.x)+(−window.X0) vs clip+(t.x−window.X0)) and drift an
		// ulp apart from the per-tile scan on odd-origin windows.
		clipWin := scaled.Translate(float64(t.x-window.X0), float64(t.y-window.Y0))
		clips = append(clips, ScoredClip{Clip: clipWin, Score: d.Score})
	}
	return clips
}

// mergeMegatiles concatenates per-megatile clips in row-major order and
// applies the cross-megatile h-NMS — the merge is identical whether a
// tile's clips came from a forward pass, a cache hit or an incremental
// reuse, which is what makes all three paths bit-identical.
func (m *Model) mergeMegatiles(perTile [][]ScoredClip) []Detection {
	var all []ScoredClip
	for _, clips := range perTile {
		all = append(all, clips...)
	}
	sp := m.stageSpan(StageHNMS)
	merged := m.nms(all)
	sp.End()
	out := make([]Detection, len(merged))
	for i, s := range merged {
		out[i] = Detection{Clip: s.Clip, Score: s.Score}
	}
	return out
}

// scanMegatiles is the shared full-scan core behind DetectLayoutMegatile
// and ScanLayoutMegatile, filling res in place. retain keeps the per-tile
// state (and always computes the weights version) so the result can seed
// an incremental rescan; the plain detect path skips both, keeping its
// steady-state allocation profile.
func (m *Model) scanMegatiles(res *ScanResult, l *layout.Layout, window layout.Rect, factor int, retain bool) {
	c := m.Config
	window = window.Canon()
	spec := c.Megatile(megatileFactorCap(c, window, factor))
	xs, ys, xb, yb, tiles := megatileGrid(spec, window)

	var version [32]byte
	useCache := m.cache != nil
	if useCache || retain {
		version = m.WeightsVersion()
	}

	tr := m.trace
	var scanSpan *telemetry.TraceSpan
	if tr != nil {
		scanSpan = tr.StartSpan(m.tspan, "scan")
		scanSpan.SetAttr("factor", int64(spec.Factor))
		scanSpan.SetAttr("megatiles", int64(len(tiles)))
		prev := m.tspan
		m.tspan = scanSpan
		defer func() {
			m.tspan = prev
			tr.EndSpan(scanSpan)
		}()
	}

	perTile := make([][]ScoredClip, len(tiles))
	m.scanReplicated(len(tiles), func(mw *Model, w, i int) {
		wt := beginWorkTrace(tr, scanSpan, mw, "megatile", w)
		perTile[i] = m.scanOneMegatile(mw, l, tiles[i], spec, window, xb, yb, version, useCache, wt.span)
		wt.end(tr)
	})

	res.Detections = m.mergeMegatiles(perTile)
	res.TilesScanned = len(tiles)
	res.TilesReused = 0
	res.window = window
	res.spec = spec
	res.version = version
	if retain {
		res.xs, res.ys = xs, ys
		res.perTile = perTile
	}
	if ins := m.ins; ins != nil {
		ins.MegatilesScanned.Add(int64(len(tiles)))
		ins.WorkspaceBytes.Set(int64(m.TotalWorkspaceFootprint()) * 4)
	}
}

// DetectLayoutMegatile scans an arbitrarily large layout window in
// megatiles of factor×factor regions: each megatile is rasterized once
// and detected in a single shape-polymorphic forward pass, then
// detections are filtered by the halo-ownership rule (a clip whose centre
// falls inside the seam overlap past the midpoint — beyond the boundary
// slack band, see ownershipSlackNM — is deferred to the neighbouring
// megatile that sees it with more context) and merged with cross-megatile
// h-NMS. Detections are returned in nanometre coordinates relative to the
// window origin.
//
// Megatiles — not tiles — are the unit of work for the parallel scan:
// each of up to parallel.Workers() goroutines drives its own model
// replica whose workspace grows to the megatile shape. Per-megatile
// results land in a slice indexed by megatile and are concatenated in
// row-major order before the final h-NMS, so the output is bit-identical
// to a serial scan for every worker count.
//
// With a cache attached (SetScanCache) each megatile's forward pass is
// looked up by raster content first; the merge is unchanged, so cached
// and cold scans are bit-identical (pinned by the differential suite in
// cache_diff_test.go).
//
// factor < 1 requests 1; factors larger than the window needs are clamped
// (so DetectLayoutMegatile on a sub-region window degrades gracefully to
// the per-region scan). Interior detections match the per-tile
// DetectLayout up to border effects attenuated over the halo; seams of
// the per-tile grid do not exist inside a megatile at all — the paper's
// region-over-clip argument applied one level up.
func (m *Model) DetectLayoutMegatile(l *layout.Layout, window layout.Rect, factor int) []Detection {
	var res ScanResult
	m.scanMegatiles(&res, l, window, factor, false)
	return res.Detections
}

// ScanLayoutMegatile is DetectLayoutMegatile returning the full scan
// state: identical detections, plus the per-megatile results and scan
// geometry an incremental rescan needs. Callers that re-scan evolving
// layouts (the serving daemon's /detect?since= path, DFM loops) keep the
// ScanResult and feed it to RescanLayoutMegatile with the next revision's
// dirty rects.
func (m *Model) ScanLayoutMegatile(l *layout.Layout, window layout.Rect, factor int) *ScanResult {
	res := &ScanResult{}
	m.scanMegatiles(res, l, window, factor, true)
	return res
}

// RescanLayoutMegatile re-scans a layout after an edit, reusing every
// megatile of prev whose raster cannot have changed: a megatile is
// re-rasterized (and re-detected, through the cache when attached) only
// when its full raster footprint — halo bands included, see tileRect —
// overlaps a dirty rect. dirty is the changed-region set from
// layout.Diff(oldLayout, newLayout); l is the NEW layout. The scan window
// and factor are prev's.
//
// Reused megatiles contribute their retained post-ownership clips to the
// same row-major merge a cold scan performs, so the result is
// bit-identical to ScanLayoutMegatile(l, prev.Window(), prev.Factor())
// whenever dirty covers the actual layout difference (the differential
// suite pins this; layout.Diff guarantees it by construction). An empty
// dirty set rasterizes zero megatiles.
//
// The weights version is re-hashed on every rescan: if the model was
// re-trained or re-loaded since prev, nothing is reusable and the call
// degrades to a full scan. prev must come from ScanLayoutMegatile or
// RescanLayoutMegatile (detect-only results retain no per-tile state).
func (m *Model) RescanLayoutMegatile(prev *ScanResult, l *layout.Layout, dirty []layout.Rect) *ScanResult {
	if prev == nil || prev.perTile == nil {
		panic("hsd: RescanLayoutMegatile needs a ScanResult from ScanLayoutMegatile")
	}
	version := m.WeightsVersion()
	if version != prev.version {
		return m.ScanLayoutMegatile(l, prev.window, prev.spec.Factor)
	}
	spec, window := prev.spec, prev.window
	_, _, xb, yb, tiles := megatileGrid(spec, window)

	res := &ScanResult{
		window:  window,
		spec:    spec,
		xs:      prev.xs,
		ys:      prev.ys,
		version: version,
		perTile: make([][]ScoredClip, len(tiles)),
	}
	dirtyIdx := make([]int, 0, len(tiles))
	for i, t := range tiles {
		if layout.AnyDirty(dirty, t.tileRect(spec)) {
			dirtyIdx = append(dirtyIdx, i)
		} else {
			res.perTile[i] = prev.perTile[i]
		}
	}
	useCache := m.cache != nil
	tr := m.trace
	var scanSpan *telemetry.TraceSpan
	if tr != nil {
		scanSpan = tr.StartSpan(m.tspan, "rescan")
		scanSpan.SetAttr("factor", int64(spec.Factor))
		scanSpan.SetAttr("megatiles_dirty", int64(len(dirtyIdx)))
		scanSpan.SetAttr("megatiles_reused", int64(len(tiles)-len(dirtyIdx)))
		prev := m.tspan
		m.tspan = scanSpan
		defer func() {
			m.tspan = prev
			tr.EndSpan(scanSpan)
		}()
	}
	m.scanReplicated(len(dirtyIdx), func(mw *Model, w, j int) {
		i := dirtyIdx[j]
		wt := beginWorkTrace(tr, scanSpan, mw, "megatile", w)
		res.perTile[i] = m.scanOneMegatile(mw, l, tiles[i], spec, window, xb, yb, version, useCache, wt.span)
		wt.end(tr)
	})

	res.Detections = m.mergeMegatiles(res.perTile)
	res.TilesScanned = len(dirtyIdx)
	res.TilesReused = len(tiles) - len(dirtyIdx)
	if ins := m.ins; ins != nil {
		ins.MegatilesScanned.Add(int64(len(dirtyIdx)))
		ins.MegatilesReused.Add(int64(res.TilesReused))
		ins.WorkspaceBytes.Set(int64(m.TotalWorkspaceFootprint()) * 4)
	}
	return res
}

// AutoMegatileFactor picks the largest megatile factor whose predicted
// inference workspace fits budgetBytes, capped by what the window needs.
// It measures the factor-1 footprint with one warm-up pass on an empty
// region (activation memory is linear in raster area, so factor f costs
// ≈ f² of that), which also leaves the model's workspace and anchor cache
// warm for the scan itself.
func (m *Model) AutoMegatileFactor(window layout.Rect, budgetBytes int64) int {
	c := m.Config
	window = window.Canon()
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	for i := c.InputSize * c.InputSize; i < 2*c.InputSize*c.InputSize; i++ {
		x.Data()[i] = 1 // all space, matching an empty region's raster
	}
	m.Detect(x)
	perRegion := int64(m.WorkspaceFootprint()) * 4 // float32 bytes
	if perRegion <= 0 {
		return 1
	}
	factor := 1
	fit := megatileFactorCap(c, window, 1<<20)
	for factor < fit && perRegion*int64(factor+1)*int64(factor+1) <= budgetBytes {
		factor++
	}
	return factor
}
