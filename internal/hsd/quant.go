package hsd

import (
	"errors"
	"fmt"

	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// Numeric precision of the detection trunk. The default is float32;
// int8 must be armed by CalibrateInt8 before it can be selected.
const (
	PrecisionFP32 = "fp32"
	PrecisionInt8 = "int8"
)

// quantRoots lists the stages the int8 path covers: the convolutional
// trunk from the stem through the inception chain. The CPN heads and
// the refinement stage stay float32 — their outputs are scores and box
// offsets, where quantization error moves detections directly rather
// than washing out across channels.
func (m *Model) quantRoots() []nn.Layer {
	return []nn.Layer{m.Stem, m.Backbone, m.EncDec, m.Inception}
}

// CalibrateInt8 calibrates the int8 trunk on the given rasters
// (typically oracle-labeled clip regions drawn from training layouts —
// see eval.CalibrationRasters): each raster runs a float32 pass that
// records every trunk conv's input activation range, then the trunk
// weights are quantized per output channel and the dequantization plans
// frozen. Calibration does not switch the model to int8; call
// SetPrecision(PrecisionInt8) after. Re-calibrating replaces the
// previous state. The model's weights must not change afterwards (Load
// or a training step invalidates the plans); recalibrate after any
// weight mutation.
func (m *Model) CalibrateInt8(rasters []*tensor.Tensor) error {
	if len(rasters) == 0 {
		return errors.New("hsd: CalibrateInt8 needs at least one calibration raster")
	}
	q := nn.NewQuantizer()
	for _, x := range rasters {
		if x.Rank() != 4 || x.Dim(0) != 1 || x.Dim(1) != InputChannels ||
			x.Dim(2) <= 0 || x.Dim(2)%FeatureStride != 0 ||
			x.Dim(3) <= 0 || x.Dim(3)%FeatureStride != 0 {
			return fmt.Errorf("hsd: calibration raster %v, want [1 %d 8k 8k]",
				x.Shape(), InputChannels)
		}
		m.ws.Reset()
		out := q.Observe(m.Stem, x, m.ws)
		out = q.Observe(m.Backbone, out, m.ws)
		out = q.Observe(m.EncDec, out, m.ws)
		q.Observe(m.Inception, out, m.ws)
	}
	q.Freeze()
	if !q.Calibrated() {
		return errors.New("hsd: calibration produced no quantized convolutions")
	}
	m.quant = q
	return nil
}

// SetPrecision selects the trunk's numeric path: PrecisionFP32 (or "")
// restores float32, PrecisionInt8 requires a prior CalibrateInt8.
// Cached scan replicas pick the change up at their next sync.
func (m *Model) SetPrecision(p string) error {
	switch p {
	case "", PrecisionFP32:
		m.precision = PrecisionFP32
	case PrecisionInt8:
		if m.quant == nil || !m.quant.Calibrated() {
			return errors.New("hsd: int8 precision requires CalibrateInt8 first")
		}
		m.precision = PrecisionInt8
	default:
		return fmt.Errorf("hsd: unknown precision %q (want %q or %q)", p, PrecisionFP32, PrecisionInt8)
	}
	return nil
}

// Precision returns the trunk's active numeric path.
func (m *Model) Precision() string {
	if m.precision == "" {
		return PrecisionFP32
	}
	return m.precision
}

// Int8Calibrated reports whether the int8 path is armed (CalibrateInt8
// has run), regardless of the currently selected precision.
func (m *Model) Int8Calibrated() bool { return m.quant != nil && m.quant.Calibrated() }

// stageInfer runs one trunk stage on the active numeric path.
func (m *Model) stageInfer(s *nn.Sequential, x *tensor.Tensor) *tensor.Tensor {
	if m.precision == PrecisionInt8 && m.quant != nil {
		return m.quant.Infer(s, x, m.ws)
	}
	return s.Infer(x, m.ws)
}

// adoptQuantFrom mirrors src's precision and calibration state onto m,
// a structurally identical replica whose weights were copied from src.
// Quantized plans are immutable at inference time and are shared by
// reference; only the conv-pointer mapping is rebuilt.
func (m *Model) adoptQuantFrom(src *Model) error {
	m.precision = src.precision
	if src.quant == nil {
		m.quant = nil
		return nil
	}
	q, err := src.quant.Mirror(src.quantRoots(), m.quantRoots())
	if err != nil {
		return err
	}
	m.quant = q
	return nil
}
