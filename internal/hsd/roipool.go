package hsd

import (
	"math"

	"rhsd/internal/geom"
	"rhsd/internal/tensor"
)

// RoIPool implements Region-of-Interest pooling (§3.3, Figure 7): each
// proposal clip, given in input-pixel coordinates, is scaled down to the
// feature map, divided into Size×Size bins and max-pooled per bin,
// producing a fixed-size tensor per proposal regardless of clip shape —
// "which reserves the whole feature information and makes further hotspot
// classification and regression feasible".
type RoIPool struct {
	Size   int     // output spatial size (paper: 7)
	Stride float64 // feature stride (input px per feature px)

	feat *tensor.Tensor // cached feature map [1, C, H, W]
	arg  []int32        // argmax flat index into the feature plane, or -1
}

// NewRoIPool constructs a pooling module.
func NewRoIPool(size int, stride float64) *RoIPool {
	return &RoIPool{Size: size, Stride: stride}
}

// Forward pools each RoI from feat [1, C, H, W] into [R, C, Size, Size].
// Empty bins (possible for degenerate RoIs) produce 0 with no gradient.
func (p *RoIPool) Forward(feat *tensor.Tensor, rois []geom.Rect) *tensor.Tensor {
	c, h, w := feat.Dim(1), feat.Dim(2), feat.Dim(3)
	p.feat = feat
	out := tensor.New(len(rois), c, p.Size, p.Size)
	p.arg = make([]int32, out.Size())
	for i := range p.arg {
		p.arg[i] = -1
	}
	oi := 0
	for _, roi := range rois {
		// Scale the clip from input coordinates onto the feature map.
		fx0 := roi.X0 / p.Stride
		fy0 := roi.Y0 / p.Stride
		fx1 := roi.X1 / p.Stride
		fy1 := roi.Y1 / p.Stride
		// Clamp to the feature extent.
		fx0 = clampF(fx0, 0, float64(w))
		fx1 = clampF(fx1, 0, float64(w))
		fy0 = clampF(fy0, 0, float64(h))
		fy1 = clampF(fy1, 0, float64(h))
		if fx1-fx0 <= 0 || fy1-fy0 <= 0 {
			// The RoI lies entirely outside the feature extent: emit zeros
			// with no gradient.
			oi += c * p.Size * p.Size
			continue
		}
		bw := (fx1 - fx0) / float64(p.Size)
		bh := (fy1 - fy0) / float64(p.Size)
		for ch := 0; ch < c; ch++ {
			plane := feat.Data()[ch*h*w : (ch+1)*h*w]
			for by := 0; by < p.Size; by++ {
				y0 := int(math.Floor(fy0 + float64(by)*bh))
				y1 := int(math.Ceil(fy0 + float64(by+1)*bh))
				y0, y1 = clampBin(y0, y1, h)
				for bx := 0; bx < p.Size; bx++ {
					x0 := int(math.Floor(fx0 + float64(bx)*bw))
					x1 := int(math.Ceil(fx0 + float64(bx+1)*bw))
					x0, x1 = clampBin(x0, x1, w)
					best := float32(math.Inf(-1))
					bestIdx := int32(-1)
					for y := y0; y < y1; y++ {
						for x := x0; x < x1; x++ {
							if v := plane[y*w+x]; v > best {
								best = v
								bestIdx = int32(ch*h*w + y*w + x)
							}
						}
					}
					if bestIdx >= 0 {
						out.Data()[oi] = best
						p.arg[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return out
}

// Infer pools each RoI into workspace memory without recording argmax
// indices or caching the feature map — the allocation-free counterpart
// of Forward for the detection path. Values are bit-identical to
// Forward's output.
func (p *RoIPool) Infer(ws *tensor.Workspace, feat *tensor.Tensor, rois []geom.Rect) *tensor.Tensor {
	c, h, w := feat.Dim(1), feat.Dim(2), feat.Dim(3)
	// Zeroed output: degenerate bins and out-of-extent RoIs rely on it.
	out := ws.ZeroTensor(len(rois), c, p.Size, p.Size)
	oi := 0
	for _, roi := range rois {
		fx0 := clampF(roi.X0/p.Stride, 0, float64(w))
		fx1 := clampF(roi.X1/p.Stride, 0, float64(w))
		fy0 := clampF(roi.Y0/p.Stride, 0, float64(h))
		fy1 := clampF(roi.Y1/p.Stride, 0, float64(h))
		if fx1-fx0 <= 0 || fy1-fy0 <= 0 {
			oi += c * p.Size * p.Size
			continue
		}
		bw := (fx1 - fx0) / float64(p.Size)
		bh := (fy1 - fy0) / float64(p.Size)
		for ch := 0; ch < c; ch++ {
			plane := feat.Data()[ch*h*w : (ch+1)*h*w]
			for by := 0; by < p.Size; by++ {
				y0 := int(math.Floor(fy0 + float64(by)*bh))
				y1 := int(math.Ceil(fy0 + float64(by+1)*bh))
				y0, y1 = clampBin(y0, y1, h)
				for bx := 0; bx < p.Size; bx++ {
					x0 := int(math.Floor(fx0 + float64(bx)*bw))
					x1 := int(math.Ceil(fx0 + float64(bx+1)*bw))
					x0, x1 = clampBin(x0, x1, w)
					best := float32(math.Inf(-1))
					found := false
					for y := y0; y < y1; y++ {
						for x := x0; x < x1; x++ {
							if v := plane[y*w+x]; v > best {
								best = v
								found = true
							}
						}
					}
					if found {
						out.Data()[oi] = best
					}
					oi++
				}
			}
		}
	}
	return out
}

// Backward scatters the pooled gradient [R, C, Size, Size] back onto the
// feature map, accumulating where RoIs overlap.
func (p *RoIPool) Backward(gy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.feat.Shape()...)
	for i, a := range p.arg {
		if a >= 0 {
			dx.Data()[a] += gy.Data()[i]
		}
	}
	return dx
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampBin clamps a bin to the plane and guarantees at least one pixel
// when the RoI has any extent at all in range.
func clampBin(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi <= lo {
		if lo >= n {
			lo = n - 1
		}
		hi = lo + 1
		if hi > n {
			return 0, 0
		}
	}
	return lo, hi
}
