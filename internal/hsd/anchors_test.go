package hsd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rhsd/internal/geom"
)

func tinyCfg() Config { return TinyConfig() }

func TestGenerateAnchorsCountAndLayout(t *testing.T) {
	c := tinyCfg()
	s := GenerateAnchors(c)
	want := c.FeatureSize() * c.FeatureSize() * c.AnchorsPerCell()
	if s.Len() != want {
		t.Fatalf("anchor count %d want %d", s.Len(), want)
	}
	if c.AnchorsPerCell() != 12 {
		t.Fatalf("paper prescribes 12 anchors per cell, got %d", c.AnchorsPerCell())
	}
	// First cell's anchors are centred at (stride/2, stride/2).
	for a := 0; a < s.PerCell; a++ {
		b := s.Boxes[a]
		if math.Abs(b.CX()-FeatureStride/2) > 1e-9 || math.Abs(b.CY()-FeatureStride/2) > 1e-9 {
			t.Fatalf("anchor %d not centred on cell: %v", a, b)
		}
	}
	// Index layout: anchor (y*W+x)*A + a sits at cell (x,y).
	x, y := 3, 2
	idx := (y*s.FeatW+x)*s.PerCell + 5
	b := s.Boxes[idx]
	wantCX := (float64(x) + 0.5) * FeatureStride
	wantCY := (float64(y) + 0.5) * FeatureStride
	if math.Abs(b.CX()-wantCX) > 1e-9 || math.Abs(b.CY()-wantCY) > 1e-9 {
		t.Fatalf("anchor layout broken: %v at (%v,%v)", b, wantCX, wantCY)
	}
}

func TestAnchorAspectRatiosPreserveArea(t *testing.T) {
	c := tinyCfg()
	s := GenerateAnchors(c)
	// Within one scale group, all aspect ratios share the same area.
	for g := 0; g < len(c.Scales); g++ {
		base := s.Boxes[g*len(c.AspectRatios)]
		area0 := base.Area()
		for r := 1; r < len(c.AspectRatios); r++ {
			a := s.Boxes[g*len(c.AspectRatios)+r].Area()
			if math.Abs(a-area0) > 1e-6*area0 {
				t.Fatalf("scale group %d: areas differ: %v vs %v", g, a, area0)
			}
		}
	}
	// Ratio h/w matches the configured aspect.
	for r, ar := range c.AspectRatios {
		b := s.Boxes[r]
		got := b.H() / b.W()
		if math.Abs(got-ar) > 1e-9 {
			t.Fatalf("aspect %v got %v", ar, got)
		}
	}
}

func TestAssignTargetsPruningRules(t *testing.T) {
	c := tinyCfg()
	s := GenerateAnchors(c)
	// Ground truth exactly equal to one anchor: that anchor is positive.
	gtIdx := (3*s.FeatW+4)*s.PerCell + 3 // scale 1.0? index 3 = scale[1],ar[0]
	gt := []geom.Rect{s.Boxes[gtIdx]}
	targets := AssignTargets(s, gt, c)
	if targets.Label[gtIdx] != 1 {
		t.Fatalf("identical anchor must be positive, got %d", targets.Label[gtIdx])
	}
	// Its regression target is the zero encoding.
	e := targets.Reg[gtIdx]
	if e.LX != 0 || e.LY != 0 || e.LW != 0 || e.LH != 0 {
		t.Fatalf("self-match encoding should be zero: %+v", e)
	}
	// A far-away anchor is negative.
	farIdx := 0
	if geom.IoU(s.Boxes[farIdx], gt[0]) != 0 {
		t.Skip("layout changed; pick another far anchor")
	}
	if targets.Label[farIdx] != 0 {
		t.Fatalf("disjoint anchor must be negative, got %d", targets.Label[farIdx])
	}
}

func TestAssignTargetsEveryGTGetsAnAnchor(t *testing.T) {
	// Property: for random GT clips (even at awkward sizes/positions where
	// no anchor reaches the 0.7 bar), at least one positive anchor must
	// point at each GT — pruning rule 2.
	c := tinyCfg()
	s := GenerateAnchors(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var gt []geom.Rect
		for i := 0; i < 1+rng.Intn(3); i++ {
			cx := 8 + rng.Float64()*float64(c.InputSize-16)
			cy := 8 + rng.Float64()*float64(c.InputSize-16)
			w := 6 + rng.Float64()*24
			h := 6 + rng.Float64()*24
			gt = append(gt, geom.RectCWH(cx, cy, w, h))
		}
		targets := AssignTargets(s, gt, c)
		matched := make([]bool, len(gt))
		for i, l := range targets.Label {
			if l == 1 {
				matched[targets.MatchedGT[i]] = true
			}
		}
		for _, m := range matched {
			if !m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignTargetsNoGTAllNegative(t *testing.T) {
	c := tinyCfg()
	s := GenerateAnchors(c)
	targets := AssignTargets(s, nil, c)
	for i, l := range targets.Label {
		if l != 0 {
			t.Fatalf("anchor %d label %d, want all negative without GT", i, l)
		}
	}
}

func TestAssignTargetsIgnoreBand(t *testing.T) {
	// An anchor with IoU strictly between the thresholds is ignored.
	c := tinyCfg()
	s := GenerateAnchors(c)
	gt := []geom.Rect{s.Boxes[100].Translate(3, 0)} // partial overlap with anchor 100
	iou := geom.IoU(s.Boxes[100], gt[0])
	if iou <= c.NegativeIoU || iou >= c.PositiveIoU {
		t.Skipf("shifted IoU %v fell outside the ignore band; adjust shift", iou)
	}
	targets := AssignTargets(s, gt, c)
	// Anchor 100 overlaps in the band; unless it is the global best for
	// this GT (rule 2) it must be ignored. The exactly-matching anchor
	// translated wins best-IoU here, so check the label is not 0.
	if targets.Label[100] == 0 {
		t.Fatalf("band anchor labelled negative (IoU=%v)", iou)
	}
}

func TestSampleBatchBalance(t *testing.T) {
	targets := &AnchorTargets{Label: make([]int8, 1000)}
	for i := 0; i < 10; i++ {
		targets.Label[i] = 1
	}
	for i := 10; i < 500; i++ {
		targets.Label[i] = 0
	}
	for i := 500; i < 1000; i++ {
		targets.Label[i] = -1
	}
	rng := rand.New(rand.NewSource(1))
	batch := targets.SampleBatch(rng, 64)
	if len(batch) != 64 {
		t.Fatalf("batch size %d", len(batch))
	}
	pos, neg := 0, 0
	for _, i := range batch {
		switch targets.Label[i] {
		case 1:
			pos++
		case 0:
			neg++
		case -1:
			t.Fatal("ignored anchor sampled")
		}
	}
	if pos != 10 || neg != 54 {
		t.Fatalf("pos=%d neg=%d", pos, neg)
	}
}

func TestSampleBatchCapsPositives(t *testing.T) {
	targets := &AnchorTargets{Label: make([]int8, 200)}
	for i := range targets.Label {
		targets.Label[i] = 1
	}
	rng := rand.New(rand.NewSource(2))
	batch := targets.SampleBatch(rng, 32)
	if len(batch) != 16 { // half the budget; no negatives exist
		t.Fatalf("batch %d want 16", len(batch))
	}
}

func TestAnchorCoverage(t *testing.T) {
	c := tinyCfg()
	s := GenerateAnchors(c)
	// Clips identical to anchors: full coverage.
	gt := []geom.Rect{s.Boxes[40], s.Boxes[200]}
	rep := s.Coverage(gt, c.PositiveIoU)
	if rep.GT != 2 || rep.AboveBar != 2 || rep.MeanBestIoU < 0.999 {
		t.Fatalf("exact clips should be fully covered: %+v", rep)
	}
	// The 12-anchor group must cover varied shapes better than a single
	// square anchor per cell — the §3.2 design argument.
	single := c
	single.Scales = []float64{1}
	single.AspectRatios = []float64{1}
	sSingle := GenerateAnchors(single)
	rng := rand.New(rand.NewSource(17))
	var varied []geom.Rect
	for i := 0; i < 30; i++ {
		cx := 8 + rng.Float64()*float64(c.InputSize-16)
		cy := 8 + rng.Float64()*float64(c.InputSize-16)
		w := 5 + rng.Float64()*28
		h := 5 + rng.Float64()*28
		varied = append(varied, geom.RectCWH(cx, cy, w, h))
	}
	full := s.Coverage(varied, c.PositiveIoU)
	one := sSingle.Coverage(varied, c.PositiveIoU)
	if !(full.MeanBestIoU > one.MeanBestIoU) {
		t.Fatalf("12-anchor coverage %v should beat single-anchor %v",
			full.MeanBestIoU, one.MeanBestIoU)
	}
	empty := s.Coverage(nil, 0.7)
	if empty.GT != 0 || empty.MeanBestIoU != 0 {
		t.Fatalf("empty coverage: %+v", empty)
	}
}
