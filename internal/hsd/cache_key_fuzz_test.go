package hsd

import (
	"testing"

	"rhsd/internal/tensor"
)

// rasterFromBytes fills an h×w two-channel raster from fuzz data,
// cycling through data when it is shorter than the raster. Values are
// quantized to the [0,1] 1/255 grid like a real metal/space raster.
func rasterFromBytes(data []byte, h, w int) *tensor.Tensor {
	x := tensor.New(1, InputChannels, h, w)
	d := x.Data()
	for i := range d {
		b := byte(0)
		if len(data) > 0 {
			b = data[i%len(data)]
		}
		d[i] = float32(b) / 255
	}
	return x
}

// FuzzCacheKey pins the content-addressing contract of RasterKey:
// byte-equal raster content (same shape, same floats, same weights
// version) hashes to the same key, and ANY single-cell flip — metal
// channel, space channel, halo band or interior — changes it. A
// canonicalization step that normalized, truncated or subsampled the
// raster before hashing would fail the flip direction; a key that mixed
// in tile position would fail the equality direction.
func FuzzCacheKey(f *testing.F) {
	f.Add([]byte{0}, uint16(0), false)
	f.Add([]byte{1, 2, 3, 4, 255, 0, 128}, uint16(9), false)
	f.Add([]byte("halo bytes are part of the key"), uint16(127), true)
	f.Fuzz(func(t *testing.T, data []byte, flip uint16, otherVersion bool) {
		const h, w = 8, 16 // one FeatureStride cell tall, two wide
		var v1, v2 [32]byte
		v2[0] = 1

		a := rasterFromBytes(data, h, w)
		b := rasterFromBytes(data, h, w)
		keyA := RasterKey(a, v1)
		if keyB := RasterKey(b, v1); keyB != keyA {
			t.Fatalf("byte-equal rasters hashed differently: %x vs %x", keyA, keyB)
		}

		// Key equality must mean byte-equal content: flipping any one
		// cell changes the key.
		i := int(flip) % len(b.Data())
		old := b.Data()[i]
		b.Data()[i] = old + 0.5
		if b.Data()[i] == old { // paranoid: +0.5 can't be absorbed in [0,1]
			t.Skip("flip produced no value change")
		}
		if keyFlipped := RasterKey(b, v1); keyFlipped == keyA {
			t.Fatalf("single-cell flip at %d did not change the key", i)
		}
		b.Data()[i] = old

		// Same content under a different weights version is a different
		// key — a reloaded model must never hit entries its predecessor
		// filled.
		version := v1
		if otherVersion {
			version = v2
		}
		if otherVersion && RasterKey(b, version) == keyA {
			t.Fatal("weights version not part of the key")
		}

		// Same bytes reshaped is different content: a degenerate
		// factor-capped window must not collide with a full-size one.
		reshaped := rasterFromBytes(data, w, h)
		if RasterKey(reshaped, v1) == keyA {
			t.Fatal("shape not part of the key")
		}
	})
}
