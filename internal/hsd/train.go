package hsd

import (
	"math/rand"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// Sample is one training region: an input raster [1, 2, S, S] and its
// ground-truth hotspot clips in input-pixel coordinates. S is the nominal
// InputSize for region samples, but any multiple of FeatureStride is
// trainable — mixing megatile-sized samples in (MakeSampleSized) teaches
// the network the border-free interior context the megatile scan runs it
// on (multi-scale training).
type Sample struct {
	Raster *tensor.Tensor
	GT     []geom.Rect
}

// InputChannels is the raster depth fed to the network: metal and
// inverted metal. The two polarities matter because max pooling in the
// stem erases thin minority-phase features: a one-pixel space gap inside
// metal (the bridging signature) survives pooling only in the inverted
// channel, and a one-pixel metal neck (the necking signature) only in the
// direct channel.
const InputChannels = 2

// MakeSample rasterizes a layout region and converts ground-truth hotspot
// points (region-relative nm) into pixel-space clips of size ClipPx. The
// raster build is RegionRaster at the nominal InputSize.
func MakeSample(l *layout.Layout, hotspotsNM [][2]float64, c Config) Sample {
	return MakeSampleSized(l, hotspotsNM, c, c.InputSize)
}

// MakeSampleSized is MakeSample at an arbitrary raster size (a positive
// multiple of FeatureStride) — the sample builder for multi-scale
// training on megatile-shaped windows.
func MakeSampleSized(l *layout.Layout, hotspotsNM [][2]float64, c Config, px int) Sample {
	img := RegionRaster(l, c, px)
	gt := make([]geom.Rect, 0, len(hotspotsNM))
	for _, p := range hotspotsNM {
		gt = append(gt, geom.RectCWH(p[0]/c.PitchNM, p[1]/c.PitchNM, c.ClipPx, c.ClipPx))
	}
	return Sample{Raster: img, GT: gt}
}

// Flip mirrors a sample horizontally and/or vertically — the only data
// augmentation that is exactly label-preserving for lithography (optics
// are mirror-symmetric).
func Flip(s Sample, horizontal, vertical bool) Sample {
	ch := s.Raster.Dim(1)
	size := s.Raster.Dim(2)
	img := tensor.New(1, ch, size, size)
	for c := 0; c < ch; c++ {
		for y := 0; y < size; y++ {
			sy := y
			if vertical {
				sy = size - 1 - y
			}
			for x := 0; x < size; x++ {
				sx := x
				if horizontal {
					sx = size - 1 - x
				}
				img.Set(s.Raster.At(0, c, sy, sx), 0, c, y, x)
			}
		}
	}
	fs := float64(size)
	gt := make([]geom.Rect, len(s.GT))
	for i, r := range s.GT {
		nr := r
		if horizontal {
			nr.X0, nr.X1 = fs-r.X1, fs-r.X0
		}
		if vertical {
			nr.Y0, nr.Y1 = fs-r.Y1, fs-r.Y0
		}
		gt[i] = nr
	}
	return Sample{Raster: img, GT: gt}
}

// StepStats reports the loss decomposition of one training step (the
// terms of Eq. 4 for both C&R stages).
type StepStats struct {
	RPNCls    float64
	RPNReg    float64
	RefineCls float64
	RefineReg float64
	L2        float64
}

// Total returns the full multi-task objective value.
func (s StepStats) Total() float64 {
	return s.RPNCls + s.RPNReg + s.RefineCls + s.RefineReg + s.L2
}

// Trainer owns the optimization loop for one Model.
type Trainer struct {
	Model *Model
	Opt   *nn.SGD

	rng *rand.Rand
}

// NewTrainer builds a trainer with the configuration's SGD schedule.
func NewTrainer(m *Model) *Trainer {
	c := m.Config
	return &Trainer{
		Model: m,
		Opt:   nn.NewSGD(c.LearningRate, c.Momentum, c.LRDecayEvery, c.LRDecayRate),
		rng:   rand.New(rand.NewSource(c.Seed + 7919)),
	}
}

// Step runs one joint optimization step (forward both stages, multi-task
// loss, backward, SGD update) on a single region sample.
func (t *Trainer) Step(s Sample) StepStats {
	return t.StepBatch([]Sample{s})
}

// StepBatch averages the multi-task gradients over a batch of region
// samples before one SGD update — the paper's batch-size-12 training
// realized by gradient accumulation, which is mathematically equivalent
// to minibatch SGD for this loss.
func (t *Trainer) StepBatch(batch []Sample) StepStats {
	m := t.Model
	c := m.Config
	var stats StepStats
	if len(batch) == 0 {
		return stats
	}
	for _, s := range batch {
		st := t.accumulate(s)
		stats.RPNCls += st.RPNCls / float64(len(batch))
		stats.RPNReg += st.RPNReg / float64(len(batch))
		stats.RefineCls += st.RefineCls / float64(len(batch))
		stats.RefineReg += st.RefineReg / float64(len(batch))
	}
	params := m.Params()
	if len(batch) > 1 {
		inv := float32(1.0 / float64(len(batch)))
		for _, p := range params {
			p.Grad.Scale(inv)
		}
	}
	// Eq. 4's L2 term enters once per update, after averaging the data
	// gradients.
	stats.L2 = nn.L2Penalty(params, c.L2Beta)
	if c.GradClip > 0 {
		t.Opt.ClipGradients(params, c.GradClip)
	}
	t.Opt.Update(params)
	return stats
}

// accumulate runs forward/backward for one sample, adding parameter
// gradients without updating weights.
func (t *Trainer) accumulate(s Sample) StepStats {
	m := t.Model
	c := m.Config
	var stats StepStats

	out := m.ForwardBase(s.Raster)
	set := m.anchorsFor(s.Raster.Dim(2)/FeatureStride, s.Raster.Dim(3)/FeatureStride)
	targets := AssignTargets(set, s.GT, c)
	batch := targets.SampleBatch(t.rng, c.BatchAnchors)

	// --- 1st C&R: classification over the sampled anchors.
	gCls := tensor.New(out.ClsMap.Shape()...)
	gReg := tensor.New(out.RegMap.Shape()...)
	if len(batch) > 0 {
		logits := tensor.New(len(batch), 2)
		labels := make([]int, len(batch))
		for k, i := range batch {
			l0, l1 := anchorLogits(set, out.ClsMap, i)
			logits.Set(l0, k, 0)
			logits.Set(l1, k, 1)
			labels[k] = int(targets.Label[i])
		}
		loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
		stats.RPNCls = loss
		for k, i := range batch {
			scatterCls(set, gCls, i, grad.At(k, 0), grad.At(k, 1))
		}
	}

	// --- 1st C&R: regression over the sampled positive anchors
	// (Eq. 4: the localization term is gated by h'_i).
	var positives []int
	for _, i := range batch {
		if targets.Label[i] == 1 {
			positives = append(positives, i)
		}
	}
	if len(positives) > 0 {
		pred := tensor.New(len(positives), 4)
		tgt := tensor.New(len(positives), 4)
		wts := make([]float32, len(positives))
		for k, i := range positives {
			e := anchorReg(set, out.RegMap, i)
			for j, v := range e.Vec4() {
				pred.Set(float32(v), k, j)
			}
			for j, v := range targets.Reg[i].Vec4() {
				tgt.Set(float32(v), k, j)
			}
			wts[k] = 1
		}
		loss, grad := nn.SmoothL1(pred, tgt, wts, float64(len(positives)))
		loss *= c.AlphaLoc
		grad.Scale(float32(c.AlphaLoc))
		stats.RPNReg = loss
		for k, i := range positives {
			scatterReg(set, gReg, i,
				grad.At(k, 0), grad.At(k, 1), grad.At(k, 2), grad.At(k, 3))
		}
	}

	// --- 2nd C&R on refinement proposals.
	var gFeatRefine, gFineRefine *tensor.Tensor
	if c.UseRefine {
		props := m.Proposals(out)
		rois := make([]geom.Rect, 0, len(props)+len(s.GT))
		for _, p := range props {
			rois = append(rois, p.Clip)
		}
		// Ground-truth clips join the RoI set during training so the 2nd
		// stage always sees positives (standard two-stage practice), plus
		// jittered copies so it learns to refine imperfect localizations
		// rather than only exact ones.
		rois = append(rois, s.GT...)
		for _, g := range s.GT {
			for j := 0; j < 3; j++ {
				dx := (t.rng.Float64() - 0.5) * 0.4 * g.W()
				dy := (t.rng.Float64() - 0.5) * 0.4 * g.H()
				sc := 0.85 + t.rng.Float64()*0.3
				rois = append(rois, geom.RectCWH(g.CX()+dx, g.CY()+dy, g.W()*sc, g.H()*sc))
			}
		}
		if len(rois) > 0 {
			refCls, refReg := m.RefineForward(out, rois)
			labels, regTgt, regW := refineTargets(rois, s.GT)
			balanceRefineNegatives(labels, refCls, t.rng)
			clsLoss, gRefCls := nn.SoftmaxCrossEntropy(refCls, labels)
			regLoss, gRefReg := nn.SmoothL1(refReg, regTgt, regW, float64(maxInt(1, countPos(labels))))
			regLoss *= c.AlphaLoc
			gRefReg.Scale(float32(c.AlphaLoc))
			stats.RefineCls = clsLoss
			stats.RefineReg = regLoss
			gFeatRefine, gFineRefine = m.RefineBackward(gRefCls, gRefReg)
		}
	}

	// --- backward through the shared trunk and stem, merging the RPN and
	// refinement gradients at the deep feature map and the fine tap.
	gTrunk := m.RPNCls.Backward(gCls)
	gTrunk.Add(m.RPNReg.Backward(gReg))
	gFeat := m.RPNTrunk.Backward(gTrunk)
	if gFeatRefine != nil {
		gFeat.Add(gFeatRefine)
	}
	gStemOut := m.Backbone.Backward(m.EncDec.Backward(m.Inception.Backward(gFeat)))
	if gFineRefine != nil {
		gStemOut.Add(gFineRefine)
	}
	m.Stem.Backward(gStemOut)

	return stats
}

// Run trains for Config.TrainSteps optimizer steps, drawing
// Config.BatchRegions samples per step in shuffled order with random
// flips, and returns the per-step loss history.
func (t *Trainer) Run(samples []Sample, progress func(step int, st StepStats)) []StepStats {
	if len(samples) == 0 {
		return nil
	}
	batchSize := t.Model.Config.BatchRegions
	if batchSize < 1 {
		batchSize = 1
	}
	history := make([]StepStats, 0, t.Model.Config.TrainSteps)
	order := t.rng.Perm(len(samples))
	pos := 0
	next := func() Sample {
		if pos == len(order) {
			order = t.rng.Perm(len(samples))
			pos = 0
		}
		s := samples[order[pos]]
		pos++
		if t.rng.Intn(2) == 1 {
			s = Flip(s, t.rng.Intn(2) == 1, t.rng.Intn(2) == 1)
		}
		return s
	}
	batch := make([]Sample, batchSize)
	for step := 0; step < t.Model.Config.TrainSteps; step++ {
		for i := range batch {
			batch[i] = next()
		}
		st := t.StepBatch(batch)
		history = append(history, st)
		if progress != nil {
			progress(step, st)
		}
	}
	// Training dropped the prepacked inference weights (Dense.Backward);
	// re-arm them so post-training inference runs prepacked again.
	t.Model.packInferWeights()
	return history
}

// balanceRefineNegatives caps the negative RoIs entering the 2nd-stage
// classification loss at 3× the positives (minimum 4), dropping a random
// subset of the excess. Without the cap the 2nd stage sees several
// negatives per positive and degenerates into the majority answer.
//
// (Score-ranked online hard-example mining was evaluated here and
// rejected: with ignored easy negatives receiving no gradient, their
// scores drift up to the decision boundary and the classifier collapses
// to a constant output — every example eventually looks "hard".)
func balanceRefineNegatives(labels []int, refCls *tensor.Tensor, rng *rand.Rand) {
	var pos int
	negIdx := make([]int, 0, len(labels))
	for i, l := range labels {
		if l == 1 {
			pos++
		} else if l == 0 {
			negIdx = append(negIdx, i)
		}
	}
	quota := 3 * pos
	if quota < 4 {
		quota = 4
	}
	if len(negIdx) <= quota {
		return
	}
	_ = refCls // kept in the signature for future mining experiments
	rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })
	for _, i := range negIdx[quota:] {
		labels[i] = -1
	}
}

// refineTargets labels each RoI against the ground truth for the 2nd C&R:
// an RoI is positive when its IoU with some ground-truth clip reaches 0.5,
// and positives regress toward their best-matching clip (Eq. 3 encoded
// against the RoI itself).
func refineTargets(rois, gt []geom.Rect) (labels []int, regTgt *tensor.Tensor, regW []float32) {
	labels = make([]int, len(rois))
	regTgt = tensor.New(len(rois), 4)
	regW = make([]float32, len(rois))
	for i, r := range rois {
		best, bestIoU := -1, 0.0
		for g, box := range gt {
			if iou := geom.IoU(r, box); iou > bestIoU {
				bestIoU = iou
				best = g
			}
		}
		if best >= 0 && bestIoU >= 0.5 && r.W() > 0 && r.H() > 0 {
			labels[i] = 1
			regW[i] = 1
			for j, v := range geom.Encode(gt[best], r).Vec4() {
				regTgt.Set(float32(v), i, j)
			}
		}
	}
	return labels, regTgt, regW
}

// scatterCls accumulates an anchor's classification gradient into the cls
// head's gradient map under the given anchor grid.
func scatterCls(set *AnchorSet, g *tensor.Tensor, i int, g0, g1 float32) {
	a := i % set.PerCell
	cell := i / set.PerCell
	y := cell / set.FeatW
	x := cell % set.FeatW
	g.Set(g.At(0, 2*a, y, x)+g0, 0, 2*a, y, x)
	g.Set(g.At(0, 2*a+1, y, x)+g1, 0, 2*a+1, y, x)
}

// scatterReg accumulates an anchor's regression gradient into the reg
// head's gradient map under the given anchor grid.
func scatterReg(set *AnchorSet, g *tensor.Tensor, i int, g0, g1, g2, g3 float32) {
	a := i % set.PerCell
	cell := i / set.PerCell
	y := cell / set.FeatW
	x := cell % set.FeatW
	g.Set(g.At(0, 4*a, y, x)+g0, 0, 4*a, y, x)
	g.Set(g.At(0, 4*a+1, y, x)+g1, 0, 4*a+1, y, x)
	g.Set(g.At(0, 4*a+2, y, x)+g2, 0, 4*a+2, y, x)
	g.Set(g.At(0, 4*a+3, y, x)+g3, 0, 4*a+3, y, x)
}

func countPos(labels []int) int {
	n := 0
	for _, l := range labels {
		if l == 1 {
			n++
		}
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
