package hsd

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	good := TinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("tiny config invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := good
	bad.InputSize = 65
	if bad.Validate() == nil {
		t.Fatal("non-multiple input size must fail")
	}
	bad = good
	bad.PositiveIoU, bad.NegativeIoU = 0.3, 0.7
	if bad.Validate() == nil {
		t.Fatal("inverted IoU thresholds must fail")
	}
	bad = good
	bad.AspectRatios = nil
	if bad.Validate() == nil {
		t.Fatal("empty anchors must fail")
	}
}

func TestPaperConfigMatchesPaperSettings(t *testing.T) {
	c := PaperConfig()
	if c.LearningRate != 0.002 || c.LRDecayEvery != 30000 || c.LRDecayRate != 0.1 {
		t.Fatal("training schedule drifted from §4")
	}
	if c.L2Beta != 0.2 || c.AlphaLoc != 2.0 {
		t.Fatal("loss hyperparameters drifted from §4 (β=0.2, αloc=2.0)")
	}
	if len(c.AspectRatios) != 3 || len(c.Scales) != 4 {
		t.Fatal("anchor settings drifted from §4 (3 ratios × 4 scales)")
	}
	if c.RoISize != 7 || c.NMSThreshold != 0.7 {
		t.Fatal("RoI/NMS settings drifted from §3")
	}
}

func TestModelShapes(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	out := m.ForwardBase(x)
	f := c.FeatureSize()
	if out.Feat.Dim(2) != f || out.Feat.Dim(3) != f {
		t.Fatalf("feature map %v want %dx%d", out.Feat.Shape(), f, f)
	}
	if out.Feat.Dim(1) != m.FeatC {
		t.Fatalf("feature channels %d want %d", out.Feat.Dim(1), m.FeatC)
	}
	per := c.AnchorsPerCell()
	if out.ClsMap.Dim(1) != 2*per {
		t.Fatalf("cls channels %d want %d (2 per clip, Fig. 4)", out.ClsMap.Dim(1), 2*per)
	}
	if out.RegMap.Dim(1) != 4*per {
		t.Fatalf("reg channels %d want %d ([x y w h] per clip, Fig. 4)", out.RegMap.Dim(1), 4*per)
	}
}

func TestModelWithoutEncDecStillRuns(t *testing.T) {
	c := TinyConfig()
	c.UseEncDec = false
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	out := m.ForwardBase(x)
	if out.Feat.Dim(2) != c.FeatureSize() {
		t.Fatalf("w/o ED feature map %v", out.Feat.Shape())
	}
	// Ablation actually removes parameters.
	full, _ := NewModel(TinyConfig())
	if len(m.Params()) >= len(full.Params()) {
		t.Fatal("w/o ED should have fewer parameters")
	}
}

func TestProposalsRespectBoundsAndCount(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)
	out := m.ForwardBase(x)
	props := m.Proposals(out)
	if len(props) == 0 || len(props) > c.ProposalCount {
		t.Fatalf("proposal count %d want 1..%d", len(props), c.ProposalCount)
	}
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(c.InputSize), Y1: float64(c.InputSize)}
	for _, p := range props {
		if !bounds.ContainsRect(p.Clip) {
			t.Fatalf("proposal %v outside input bounds", p.Clip)
		}
		if p.Score < 0 || p.Score > 1 {
			t.Fatalf("score %v out of range", p.Score)
		}
	}
	// Proposals survive h-NMS: pairwise core IoU below threshold.
	for i := range props {
		for j := i + 1; j < len(props); j++ {
			if geom.CoreIoU(props[i].Clip, props[j].Clip) > c.NMSThreshold {
				t.Fatal("proposals violate h-NMS")
			}
		}
	}
}

func TestRefineForwardShapes(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	out := m.ForwardBase(x)
	rois := []geom.Rect{
		geom.RectCWH(32, 32, 16, 16),
		geom.RectCWH(16, 40, 24, 12),
	}
	cls, reg := m.RefineForward(out, rois)
	if cls.Dim(0) != 2 || cls.Dim(1) != 2 {
		t.Fatalf("refine cls shape %v", cls.Shape())
	}
	if reg.Dim(0) != 2 || reg.Dim(1) != 4 {
		t.Fatalf("refine reg shape %v", reg.Shape())
	}
}

func TestMakeSampleConversions(t *testing.T) {
	c := TinyConfig()
	regionNM := c.RegionNM()
	l := layout.New(layout.R(0, 0, regionNM, regionNM))
	l.Add(layout.R(0, 0, regionNM/2, regionNM))
	hs := [][2]float64{{float64(regionNM) / 4, float64(regionNM) / 2}}
	s := MakeSample(l, hs, c)
	if s.Raster.Dim(2) != c.InputSize || s.Raster.Dim(3) != c.InputSize {
		t.Fatalf("raster shape %v", s.Raster.Shape())
	}
	// Left half is metal.
	if s.Raster.At(0, 0, c.InputSize/2, 2) != 1 || s.Raster.At(0, 0, c.InputSize/2, c.InputSize-2) != 0 {
		t.Fatal("raster content wrong")
	}
	if len(s.GT) != 1 {
		t.Fatalf("gt count %d", len(s.GT))
	}
	wantCX := float64(regionNM) / 4 / c.PitchNM
	if math.Abs(s.GT[0].CX()-wantCX) > 1e-9 || s.GT[0].W() != c.ClipPx {
		t.Fatalf("gt clip %v", s.GT[0])
	}
}

func TestFlipPreservesGeometryLabels(t *testing.T) {
	c := TinyConfig()
	s := Sample{Raster: tensor.New(1, InputChannels, c.InputSize, c.InputSize)}
	s.Raster.Set(1, 0, 0, 5, 10)
	s.GT = []geom.Rect{geom.RectCWH(10.5, 5.5, 8, 8)}
	fl := Flip(s, true, false)
	size := float64(c.InputSize)
	if fl.Raster.At(0, 0, 5, c.InputSize-1-10) != 1 {
		t.Fatal("raster flip wrong")
	}
	if math.Abs(fl.GT[0].CX()-(size-10.5)) > 1e-9 || fl.GT[0].CY() != 5.5 {
		t.Fatalf("gt flip wrong: %v", fl.GT[0])
	}
	// Double flip = identity.
	back := Flip(fl, true, false)
	if back.GT[0] != s.GT[0] {
		t.Fatalf("double flip not identity: %v vs %v", back.GT[0], s.GT[0])
	}
	for i, v := range back.Raster.Data() {
		if v != s.Raster.Data()[i] {
			t.Fatal("raster double flip not identity")
		}
	}
}

func TestSigmoidDiff(t *testing.T) {
	if s := sigmoidDiff(0, 0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("equal logits: %v", s)
	}
	if s := sigmoidDiff(100, 0); s < 0.999 {
		t.Fatalf("saturated high: %v", s)
	}
	if s := sigmoidDiff(0, 100); s > 0.001 {
		t.Fatalf("saturated low: %v", s)
	}
	if s := sigmoidDiff(-1000, 1000); s != sigmoidDiff(-40, 40) && (s < 0 || s > 1e-10) {
		t.Fatalf("extreme logits: %v", s)
	}
}

func TestModelSummaryAndParamCounts(t *testing.T) {
	m, err := NewModel(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := m.ParamCount()
	if total <= 0 {
		t.Fatal("no parameters counted")
	}
	counts := m.StageParamCounts()
	sum := counts["extractor"] + counts["proposal"] + counts["refinement"]
	if sum != total {
		t.Fatalf("stage counts %v sum to %d, total %d", counts, sum, total)
	}
	s := m.Summary()
	for _, want := range []string{"R-HSD", "inception", "parameters", "A A B A A A A"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	// Ablations reflect in the summary.
	c := TinyConfig()
	c.UseEncDec = false
	c.UseRefine = false
	m2, _ := NewModel(c)
	s2 := m2.Summary()
	if !strings.Contains(s2, "w/o. ED") || !strings.Contains(s2, "w/o. Refine") {
		t.Fatalf("ablation summary wrong:\n%s", s2)
	}
}

func TestFineTapChangesRefineInputOnly(t *testing.T) {
	with := TinyConfig()
	with.UseFineTap = true
	without := TinyConfig()
	without.UseFineTap = false
	mw, err := NewModel(with)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := NewModel(without)
	if err != nil {
		t.Fatal(err)
	}
	// Same extractor/head parameter count; only the refinement trunk's
	// first module widens.
	cw := mw.StageParamCounts()
	co := mo.StageParamCounts()
	if cw["extractor"] != co["extractor"] || cw["proposal"] != co["proposal"] {
		t.Fatalf("fine tap must not change extractor/proposal params: %v vs %v", cw, co)
	}
	if cw["refinement"] <= co["refinement"] {
		t.Fatal("fine tap should add refinement parameters")
	}
	// Checkpoints are incompatible across the flag — Load must refuse.
	x := tensor.New(1, InputChannels, with.InputSize, with.InputSize)
	mw.ForwardBase(x) // touch to ensure built
	path := t.TempDir() + "/m.ckpt"
	if err := mw.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := mo.Load(path); err == nil {
		t.Fatal("loading a fine-tap checkpoint into a no-tap model must fail")
	}
}

func TestForwardBaseProducesFineFeat(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	out := m.ForwardBase(x)
	if out.FineFeat == nil {
		t.Fatal("fine feature tap missing")
	}
	if out.FineFeat.Dim(2) != c.InputSize/2 || out.FineFeat.Dim(1) != m.FineC {
		t.Fatalf("fine tap shape %v", out.FineFeat.Shape())
	}
}
