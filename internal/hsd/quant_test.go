package hsd

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
)

func quantTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quantTestRasters(c Config, n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]*tensor.Tensor, n)
	for i := range rs {
		rs[i] = tensor.New(1, InputChannels, c.InputSize, c.InputSize)
		rs[i].RandUniform(rng, 0, 1)
	}
	return rs
}

// TestSetPrecisionGate pins the arming contract: int8 is rejected until
// CalibrateInt8 has run, unknown names are rejected always.
func TestSetPrecisionGate(t *testing.T) {
	m := quantTestModel(t)
	if m.Precision() != PrecisionFP32 {
		t.Fatalf("default precision %q, want %q", m.Precision(), PrecisionFP32)
	}
	if err := m.SetPrecision(PrecisionInt8); err == nil {
		t.Fatal("SetPrecision(int8) accepted before calibration")
	}
	if err := m.SetPrecision("fp16"); err == nil {
		t.Fatal("SetPrecision accepted an unknown precision")
	}
	if err := m.CalibrateInt8(nil); err == nil {
		t.Fatal("CalibrateInt8 accepted zero rasters")
	}
	if err := m.CalibrateInt8(quantTestRasters(m.Config, 2, 31)); err != nil {
		t.Fatalf("CalibrateInt8: %v", err)
	}
	if !m.Int8Calibrated() {
		t.Fatal("Int8Calibrated false after successful calibration")
	}
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatalf("SetPrecision(int8): %v", err)
	}
	if m.Precision() != PrecisionInt8 {
		t.Fatalf("precision %q after SetPrecision(int8)", m.Precision())
	}
	if err := m.SetPrecision(""); err != nil {
		t.Fatalf("SetPrecision(\"\"): %v", err)
	}
	if m.Precision() != PrecisionFP32 {
		t.Fatalf("precision %q after SetPrecision(\"\")", m.Precision())
	}
}

// TestInferBaseInt8CloseToFP32 checks the int8 trunk tracks the float32
// trunk: feature-map RMSE within a few percent of the float32 RMS, and
// CPN head outputs (computed in fp32 from the quantized features) finite.
func TestInferBaseInt8CloseToFP32(t *testing.T) {
	m := quantTestModel(t)
	x := quantTestRasters(m.Config, 1, 41)[0]
	want := append([]float32(nil), m.InferBase(x).Feat.Data()...)

	if err := m.CalibrateInt8(quantTestRasters(m.Config, 3, 42)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	out := m.InferBase(x)
	got := out.Feat.Data()
	if len(got) != len(want) {
		t.Fatalf("feature size %d vs %d", len(got), len(want))
	}
	var rms, refRMS float64
	for i := range want {
		d := float64(got[i]) - float64(want[i])
		rms += d * d
		refRMS += float64(want[i]) * float64(want[i])
	}
	rms = math.Sqrt(rms / float64(len(want)))
	refRMS = math.Sqrt(refRMS / float64(len(want)))
	if refRMS == 0 {
		t.Fatal("degenerate fp32 features")
	}
	if rms > 0.06*refRMS {
		t.Fatalf("int8 feature RMSE %v vs fp32 RMS %v (>6%%)", rms, refRMS)
	}
	for _, v := range out.ClsMap.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite CPN logits on the int8 path")
		}
	}
}

// TestWeightsVersionTracksPrecision pins the cache-safety contract: the
// weights version must differ between fp32 and int8, and between two
// int8 states calibrated on different data.
func TestWeightsVersionTracksPrecision(t *testing.T) {
	m := quantTestModel(t)
	vFP32 := m.WeightsVersion()
	if err := m.CalibrateInt8(quantTestRasters(m.Config, 2, 51)); err != nil {
		t.Fatal(err)
	}
	// Calibrated but still fp32: version must be unchanged (the int8
	// state is inert until selected).
	if m.WeightsVersion() != vFP32 {
		t.Fatal("weights version changed by calibration alone")
	}
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	vInt8 := m.WeightsVersion()
	if vInt8 == vFP32 {
		t.Fatal("weights version identical across fp32 and int8")
	}
	// Recalibrate on very different activation ranges: version must move.
	big := quantTestRasters(m.Config, 2, 52)
	for _, r := range big {
		d := r.Data()
		for i := range d {
			d[i] *= 40
		}
	}
	if err := m.CalibrateInt8(big); err != nil {
		t.Fatal(err)
	}
	if m.WeightsVersion() == vInt8 {
		t.Fatal("weights version identical across different calibrations")
	}
}

// TestCloneCarriesInt8 checks clones inherit precision and calibration
// and produce bit-identical int8 features (shared plans, copied weights).
func TestCloneCarriesInt8(t *testing.T) {
	m := quantTestModel(t)
	if err := m.CalibrateInt8(quantTestRasters(m.Config, 2, 61)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	x := quantTestRasters(m.Config, 1, 62)[0]
	want := append([]float32(nil), m.InferBase(x).Feat.Data()...)

	r, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if r.Precision() != PrecisionInt8 {
		t.Fatalf("clone precision %q, want int8", r.Precision())
	}
	got := r.InferBase(x).Feat.Data()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: clone %v vs source %v", i, got[i], want[i])
		}
	}
	if r.WeightsVersion() != m.WeightsVersion() {
		t.Fatal("clone weights version differs from source")
	}
}

// TestDetectInt8SteadyStateAllocs extends the steady-state allocation
// guarantee to the quantized path: after warm-up, an int8 Detect stays
// within the same budget as the float32 guard (the quantized conv draws
// its byte buffers and packed panels from pools).
func TestDetectInt8SteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	m := quantTestModel(t)
	if err := m.CalibrateInt8(quantTestRasters(m.Config, 2, 71)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	x := quantTestRasters(m.Config, 1, 72)[0]
	m.Detect(x) // warm-up: sizes the workspace, scratch and int8 pools

	allocs := testing.AllocsPerRun(10, func() {
		m.Detect(x)
	})
	const budget = 8
	if allocs > budget {
		t.Errorf("steady-state int8 Detect allocated %.0f times per run, want ≤ %d", allocs, budget)
	}
}
