package hsd

import (
	"testing"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/tensor"
)

func TestDetectLayoutTilesLargeWindows(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	// A 2×2-region layout; untrained model — we only validate tiling
	// mechanics: no panic, detections inside the window, nm coordinates.
	regionNM := c.RegionNM()
	big := layout.New(layout.R(0, 0, 2*regionNM, 2*regionNM))
	for x := 40; x < 2*regionNM-40; x += 160 {
		big.Add(layout.R(x, 40, x+64, 2*regionNM-40))
	}
	dets := m.DetectLayout(big, big.Bounds)
	for _, d := range dets {
		if d.Clip.X0 < -1 || d.Clip.Y0 < -1 ||
			d.Clip.X1 > float64(2*regionNM)+1 || d.Clip.Y1 > float64(2*regionNM)+1 {
			t.Fatalf("detection %v outside window", d.Clip)
		}
	}
}

func TestDetectLayoutWindowOffsetsAreRelative(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	regionNM := c.RegionNM()
	// The same geometry placed at two absolute positions; detections are
	// reported relative to the scan window so both must agree.
	l1 := layout.New(layout.R(0, 0, regionNM, regionNM))
	l2 := layout.New(layout.R(regionNM, regionNM, 2*regionNM, 2*regionNM))
	for x := 40; x < regionNM-40; x += 160 {
		l1.Add(layout.R(x, 40, x+64, regionNM-40))
		l2.Add(layout.R(x+regionNM, 40+regionNM, x+64+regionNM, 2*regionNM-40))
	}
	d1 := m.DetectLayout(l1, l1.Bounds)
	d2 := m.DetectLayout(l2, l2.Bounds)
	if len(d1) != len(d2) {
		t.Fatalf("translation changed detection count: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Clip != d2[i].Clip {
			t.Fatalf("window-relative coordinates differ: %v vs %v", d1[i].Clip, d2[i].Clip)
		}
	}
}

func TestDetectionsNMScalesByPitch(t *testing.T) {
	c := TinyConfig()
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	px := []Detection{{Clip: geom.Rect{X0: 8, Y0: 8, X1: 24, Y1: 24}, Score: 0.9}}
	nm := m.DetectionsNM(px)
	if nm[0].Clip.X0 != 8*c.PitchNM || nm[0].Clip.X1 != 24*c.PitchNM {
		t.Fatalf("nm conversion wrong: %v", nm[0].Clip)
	}
	if nm[0].Score != 0.9 {
		t.Fatal("score must be preserved")
	}
}

func TestTileOrigins(t *testing.T) {
	cases := []struct {
		lo, hi, region, stride int
		want                   []int
	}{
		{0, 768, 768, 576, []int{0}},            // exactly one region
		{0, 500, 768, 576, []int{0}},            // window smaller than region
		{0, 1536, 768, 576, []int{0, 576, 768}}, // clamped final tile
		{100, 1000, 400, 300, []int{100, 400, 600}},
		// Negative-coordinate windows: origins stay on the window grid.
		{-768, 0, 768, 576, []int{-768}},
		{-1000, 536, 768, 576, []int{-1000, -424, -232}},
		// Degenerate strides clamp to one full region instead of looping.
		{0, 1536, 768, 0, []int{0, 768}},
		{0, 2000, 768, -5, []int{0, 768, 1232}},
	}
	for _, c := range cases {
		got := tileOrigins(c.lo, c.hi, c.region, c.stride)
		if len(got) != len(c.want) {
			t.Fatalf("tileOrigins(%d,%d,%d,%d)=%v want %v", c.lo, c.hi, c.region, c.stride, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("tileOrigins(%d,%d,%d,%d)=%v want %v", c.lo, c.hi, c.region, c.stride, got, c.want)
			}
		}
		// Coverage: every coordinate in [lo,hi) is inside some tile.
		last := got[len(got)-1]
		if c.hi-c.lo > c.region && last+c.region < c.hi {
			t.Fatalf("tiles do not cover window end: %v", got)
		}
	}
}

func TestConventionalNMSAblationFlag(t *testing.T) {
	c := TinyConfig()
	c.ConventionalNMS = true
	c.NMSThreshold = 0.2
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	// Two clips with disjoint cores but high body overlap: h-NMS keeps
	// both, conventional NMS must suppress one.
	clips := []ScoredClip{
		{Clip: geom.Rect{X0: 0, Y0: 0, X1: 12, Y1: 12}, Score: 0.9},
		{Clip: geom.Rect{X0: 7, Y0: 0, X1: 19, Y1: 12}, Score: 0.5},
	}
	kept := m.nms(clips)
	if len(kept) != 1 {
		t.Fatalf("conventional NMS flag not honoured: kept %d", len(kept))
	}
	m.Config.ConventionalNMS = false
	if len(m.nms(clips)) != 2 {
		t.Fatal("h-NMS path broken")
	}
}

func TestCascadeRefinementRuns(t *testing.T) {
	c := TinyConfig()
	c.RefineIterations = 3
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.Fill(0.5)
	dets := m.Detect(x)
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(c.InputSize), Y1: float64(c.InputSize)}
	for _, d := range dets {
		if !bounds.ContainsRect(d.Clip) {
			t.Fatalf("cascade detection %v out of bounds", d.Clip)
		}
	}
	// Single-iteration path still works and matches RefineIterations=0.
	c1 := TinyConfig()
	c1.RefineIterations = 1
	m1, _ := NewModel(c1)
	c0 := TinyConfig()
	m0, _ := NewModel(c0)
	d1 := m1.Detect(x)
	d0 := m0.Detect(x)
	if len(d1) != len(d0) {
		t.Fatalf("iters=1 (%d dets) must equal default (%d dets)", len(d1), len(d0))
	}
}
