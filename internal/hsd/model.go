package hsd

import (
	"fmt"
	"math"
	"math/rand"

	"rhsd/internal/geom"
	"rhsd/internal/nn"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// Model is the R-HSD network: shared feature extractor, clip proposal
// network heads and the refinement stage. A Model is not safe for
// concurrent use (layers cache forward activations).
type Model struct {
	Config Config

	// Stem is the first convolution + pool (stride 2); its output doubles
	// as the fine-scale feature tap for the refinement stage.
	Stem *nn.Sequential
	// The shared extractor continues from the stem in three stages kept
	// as separate containers so the telemetry layer can time each paper
	// stage (§3.1 backbone, §3.1.1 encoder-decoder, Figure 3 inception)
	// on its own histogram. Parameter order — Stem, Backbone, EncDec,
	// Inception — matches the pre-split single-trunk layout exactly, so
	// checkpoints remain interchangeable.
	//
	// Backbone is the rest of the stem: remaining convs + pool, ending
	// at the ×4-compressed feature map the encoder-decoder lifts.
	Backbone *nn.Sequential
	// EncDec is the joint encoder-decoder (empty when Config.UseEncDec
	// is off; an empty Sequential is the identity).
	EncDec *nn.Sequential
	// Inception is the chain A A B A A A A producing the shared feature
	// map [N,FeatC,S/8,S/8].
	Inception *nn.Sequential
	// FeatC is the extractor output channel count; FineC the tap's.
	FeatC int
	FineC int

	// Clip proposal network (Figure 4): a 3×3 trunk conv and two sibling
	// 1×1 heads. Cls emits 2 logits per anchor, Reg emits 4 offsets.
	RPNTrunk *nn.Sequential
	RPNCls   *nn.Conv2D
	RPNReg   *nn.Conv2D

	// Refinement stage (Figure 6): RoI pooling, inception modules B A A,
	// then fully-connected 2nd classification & regression. RoIFine pools
	// the stride-2 stem tap when Config.UseFineTap is set.
	RoI         *RoIPool
	RoIFine     *RoIPool
	RefineTrunk *nn.Sequential
	RefineFC    *nn.Sequential
	RefineCls   *nn.Dense
	RefineReg   *nn.Dense

	Anchors *AnchorSet
	// anchorGrids caches anchor sets for non-nominal feature-map extents
	// (megatile inference), keyed by fh<<32|fw. Like the workspace it is
	// per-model state: replicas fill their own caches, so the megatile
	// scan never shares a mutable map across goroutines.
	anchorGrids map[int64]*AnchorSet
	rng         *rand.Rand

	// ws is the model's inference workspace: every tensor the detection
	// path needs is drawn from this arena and recycled by the Reset at
	// the top of each Detect call, so steady-state inference allocates no
	// tensor memory. Clone() builds a fresh Model and therefore a fresh
	// workspace, which is what keeps DetectLayout's per-replica tile scan
	// race-free.
	ws *tensor.Workspace
	// scratch holds the reusable non-tensor buffers of the detection
	// pipeline (candidate lists, NMS bookkeeping, RoI rectangles).
	scratch detectScratch

	// ins is the model's telemetry bundle (nil = telemetry disabled, the
	// default). Shared by reference with clones and scan replicas so a
	// parallel scan aggregates into one set of series; see SetInstruments.
	ins *Instruments

	// cache is the attached megatile result cache (nil = caching
	// disabled, the default). Shared by reference like ins — the cache is
	// concurrency-safe and content-addressed, so clones and replicas can
	// all consult one instance; see SetScanCache.
	cache *DetCache

	// precision is the trunk's numeric path (PrecisionFP32 default) and
	// quant the armed int8 calibration state, nil until CalibrateInt8.
	// Both propagate to clones and cached scan replicas; quantized plans
	// are immutable at inference time and shared by reference. See
	// quant.go.
	precision string
	quant     *nn.Quantizer

	// scanWorkers caps the goroutines (and replicas) one layout scan may
	// use; 0 means parallel.Workers(). See SetScanWorkers.
	scanWorkers int
	// replicas are cached scan clones, reused across DetectLayout and
	// DetectLayoutMegatile calls so a long-lived model (a serving worker,
	// a CLI scanning many windows) does not reconstruct the network — or
	// regrow per-clone workspaces — on every call. Parameters are synced
	// from m at the start of each scan; see scanReplicated.
	replicas []*Model

	// trace/tspan are the active request trace and the span new stage
	// and scan spans parent under (see SetTrace). Nil — the default —
	// keeps every instrumented site on today's branch-only fast path.
	// Replicas do not inherit them: a worker replica is handed the
	// per-megatile span for exactly one work item at a time (trace.go),
	// so spans parent under the megatile they time, not under whatever
	// the replica scanned last.
	trace *telemetry.Trace
	tspan *telemetry.TraceSpan
	// profScope is the reusable per-work-item tensor profile scope,
	// lazily built the first time this model (as a scan worker) runs a
	// traced work item and reset before each one.
	profScope *tensor.ProfileScope
}

// NewModel builds and initializes an R-HSD network for the configuration.
func NewModel(c Config) (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	m := &Model{Config: c, rng: rng, ws: tensor.NewWorkspace()}

	// --- feature extraction stem: 3 convs + 2 max pools, ×4 compression
	// ("compress the feature map size from 224×224 to 56×56", §3.1). The
	// first conv+pool block is kept separate so its stride-2 output can
	// feed the refinement stage's fine-scale tap.
	s := c.StemChannels
	m.Stem = nn.NewSequential(
		nn.NewConv2D("stem1", InputChannels, s[0], 3, 1, 1, rng),
		act(),
		nn.NewMaxPool2D(2, 2),
	)
	m.FineC = s[0]
	m.Backbone = nn.NewSequential(
		nn.NewConv2D("stem2", s[0], s[1], 3, 1, 1, rng),
		act(),
		nn.NewConv2D("stem3", s[1], s[2], 3, 1, 1, rng),
		act(),
		nn.NewMaxPool2D(2, 2),
	)

	// --- joint encoder-decoder (§3.1.1): three convolutions lift the
	// features into a higher-dimensional latent space, three symmetric
	// 3×3 deconvolutions bring them back to the stem width. Spatial size
	// is preserved; the lift is in channels, per the paper's description.
	m.EncDec = nn.NewSequential()
	if c.UseEncDec {
		e := c.EncChannels
		m.EncDec.Append(
			nn.NewConv2D("enc1", s[2], e[0], 3, 1, 1, rng),
			act(),
			nn.NewConv2D("enc2", e[0], e[1], 3, 1, 1, rng),
			act(),
			nn.NewConv2D("enc3", e[1], e[2], 3, 1, 1, rng),
			act(),
			nn.NewDeconv2D("dec1", e[2], e[1], 3, 1, 1, rng),
			act(),
			nn.NewDeconv2D("dec2", e[1], e[0], 3, 1, 1, rng),
			act(),
			nn.NewDeconv2D("dec3", e[0], s[2], 3, 1, 1, rng),
			act(),
		)
	}

	// --- inception chain A A B A A A A (Figure 3). Module A: stride 1,
	// four branches; module B: stride 2, three branches ("the out feature
	// map half than the input").
	w := c.InceptionWidth
	chain := []struct {
		kind string
		name string
	}{
		{"A", "incA1"}, {"A", "incA2"}, {"B", "incB"},
		{"A", "incA3"}, {"A", "incA4"}, {"A", "incA5"}, {"A", "incA6"},
	}
	m.Inception = nn.NewSequential()
	inCh := s[2]
	for _, mod := range chain {
		if mod.kind == "A" {
			m.Inception.Append(inceptionA(mod.name, inCh, w, rng))
			inCh = 4 * w
		} else {
			m.Inception.Append(inceptionB(mod.name, inCh, w, rng))
			inCh = 3 * w
		}
	}
	m.FeatC = inCh

	// --- clip proposal network heads.
	per := c.AnchorsPerCell()
	m.RPNTrunk = nn.NewSequential(
		nn.NewConv2D("rpn.trunk", m.FeatC, c.HeadChannels, 3, 1, 1, rng),
		act(),
	)
	m.RPNCls = nn.NewConv2D("rpn.cls", c.HeadChannels, 2*per, 1, 1, 0, rng)
	m.RPNReg = nn.NewConv2D("rpn.reg", c.HeadChannels, 4*per, 1, 1, 0, rng)

	// --- refinement stage.
	m.RoI = NewRoIPool(c.RoISize, FeatureStride)
	refineIn := m.FeatC
	if c.UseFineTap {
		m.RoIFine = NewRoIPool(c.RoISize, 2)
		refineIn += m.FineC
	}
	m.RefineTrunk = nn.NewSequential(
		inceptionB("ref.incB", refineIn, w, rng),
		inceptionA("ref.incA1", 3*w, w, rng),
		inceptionA("ref.incA2", 4*w, w, rng),
	)
	refSpatial := (c.RoISize + 1) / 2 // module B halves 7→4
	refIn := 4 * w * refSpatial * refSpatial
	m.RefineFC = nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense("ref.fc", refIn, c.RefineFC, rng),
		act(),
	)
	m.RefineCls = nn.NewDense("ref.cls", c.RefineFC, 2, rng)
	m.RefineReg = nn.NewDense("ref.reg", c.RefineFC, 4, rng)

	m.Anchors = GenerateAnchors(c)
	m.packInferWeights()
	return m, nil
}

// packInferWeights (re)builds the prepacked weight views the dense
// inference layers multiply against (tensor.PackB). The packs are
// derived caches of the parameters, so this must run at every point
// the weights mutate in place — model construction, Load, Clone,
// syncReplica and the end of a training run (Backward drops stale packs
// mid-training; DESIGN §17). That is the same set of points
// WeightsVersion observes fresh weights at, so a cached scan never
// infers against stale panels.
func (m *Model) packInferWeights() {
	for _, l := range m.RefineFC.Layers {
		if d, ok := l.(*nn.Dense); ok {
			d.PackWeights()
		}
	}
	m.RefineCls.PackWeights()
	m.RefineReg.PackWeights()
}

// anchorsFor returns the anchor grid for an fh×fw feature map, generating
// and caching it on first use. The nominal grid is served without a map
// lookup so the fixed-size Detect path stays allocation-free from the
// first call.
func (m *Model) anchorsFor(fh, fw int) *AnchorSet {
	if fh == m.Anchors.FeatH && fw == m.Anchors.FeatW {
		return m.Anchors
	}
	key := int64(fh)<<32 | int64(fw)
	if s, ok := m.anchorGrids[key]; ok {
		return s
	}
	if m.anchorGrids == nil {
		m.anchorGrids = make(map[int64]*AnchorSet)
	}
	s := GenerateAnchorsSized(m.Config, fh, fw)
	m.anchorGrids[key] = s
	return s
}

// WorkspaceFootprint reports the float32 capacity retained by the model's
// inference workspace — the number auto megatile sizing and the Trim
// policy reason about.
func (m *Model) WorkspaceFootprint() int { return m.ws.Footprint() }

// TotalWorkspaceFootprint is WorkspaceFootprint summed over the model and
// its cached scan replicas — the figure a memory dashboard (rhsd-serve
// /statusz) wants, since every replica retains a full scan footprint.
func (m *Model) TotalWorkspaceFootprint() int {
	total := m.WorkspaceFootprint()
	for _, r := range m.replicas {
		total += r.TotalWorkspaceFootprint()
	}
	return total
}

// TrimWorkspace releases retained inference scratch until at most
// maxFloats float32s remain per workspace, recycling live buffers first
// and cascading to cached scan replicas. A model that has served a
// megatile pass keeps megatile-sized buffers alive for the next pass;
// callers that drop back to nominal-size Detect calls — or a serving
// daemon going idle — can trim to a budget and the workspaces regrow on
// demand (see DESIGN.md §10/§11 for the retention policy).
func (m *Model) TrimWorkspace(maxFloats int) {
	m.ws.Reset()
	m.ws.Trim(maxFloats)
	for _, r := range m.replicas {
		r.TrimWorkspace(maxFloats)
	}
}

// SetScanWorkers caps the goroutines — and therefore the cached model
// replicas — one DetectLayout/DetectLayoutMegatile call may use. 0
// restores the default, parallel.Workers(). 1 makes scans run serially on
// m itself with no replicas at all: the configuration a serving pool uses
// so cross-request parallelism comes from pooled clones rather than
// nested per-request fan-out. Shrinking the cap releases the now-excess
// cached replicas.
func (m *Model) SetScanWorkers(n int) {
	if n < 0 {
		n = 0
	}
	m.scanWorkers = n
	if n > 0 && len(m.replicas) > n-1 {
		for i := n - 1; i < len(m.replicas); i++ {
			m.replicas[i] = nil // release for GC
		}
		m.replicas = m.replicas[:n-1]
	}
}

// inceptionA builds module A of Figure 3: four stride-1 branches
// (1×1 | 1×1→3×3 | 1×1→3×3→3×3 | 3×3) concatenated in the channel
// direction. "The aim of the module A is to extract multiple features
// without downsampling the feature map."
func inceptionA(name string, in, w int, rng *rand.Rand) nn.Layer {
	return nn.NewSequential(nn.NewConcatBranches(
		nn.NewSequential(
			nn.NewConv2D(name+".b1.1x1", in, w, 1, 1, 0, rng), act(),
		),
		nn.NewSequential(
			nn.NewConv2D(name+".b2.1x1", in, w, 1, 1, 0, rng), act(),
			nn.NewConv2D(name+".b2.3x3", w, w, 3, 1, 1, rng), act(),
		),
		nn.NewSequential(
			nn.NewConv2D(name+".b3.1x1", in, w, 1, 1, 0, rng), act(),
			nn.NewConv2D(name+".b3.3x3a", w, w, 3, 1, 1, rng), act(),
			nn.NewConv2D(name+".b3.3x3b", w, w, 3, 1, 1, rng), act(),
		),
		nn.NewSequential(
			nn.NewConv2D(name+".b4.3x3", in, w, 3, 1, 1, rng), act(),
		),
	))
}

// inceptionB builds module B of Figure 3: three branches whose final
// convolutions use stride 2, halving the feature map.
func inceptionB(name string, in, w int, rng *rand.Rand) nn.Layer {
	return nn.NewSequential(nn.NewConcatBranches(
		nn.NewSequential(
			nn.NewConv2D(name+".b1.1x1", in, w, 1, 1, 0, rng), act(),
			nn.NewConv2D(name+".b1.3x3s2", w, w, 3, 2, 1, rng), act(),
		),
		nn.NewSequential(
			nn.NewConv2D(name+".b2.1x1", in, w, 1, 1, 0, rng), act(),
			nn.NewConv2D(name+".b2.3x3", w, w, 3, 1, 1, rng), act(),
			nn.NewConv2D(name+".b2.3x3s2", w, w, 3, 2, 1, rng), act(),
		),
		nn.NewSequential(
			nn.NewConv2D(name+".b3.3x3s2", in, w, 3, 2, 1, rng), act(),
		),
	))
}

// Params returns all trainable parameters of every stage.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.Stem.Params()...)
	ps = append(ps, m.Backbone.Params()...)
	ps = append(ps, m.EncDec.Params()...)
	ps = append(ps, m.Inception.Params()...)
	ps = append(ps, m.RPNTrunk.Params()...)
	ps = append(ps, m.RPNCls.Params()...)
	ps = append(ps, m.RPNReg.Params()...)
	ps = append(ps, m.RefineTrunk.Params()...)
	ps = append(ps, m.RefineFC.Params()...)
	ps = append(ps, m.RefineCls.Params()...)
	ps = append(ps, m.RefineReg.Params()...)
	return ps
}

// Clone returns an independent replica: a freshly constructed network of
// the same configuration with every parameter copied bit-for-bit. Layers
// cache forward activations, so a single Model is not safe for concurrent
// use — replicas are how the region-parallel scan in DetectLayout runs
// tiles on multiple goroutines while producing identical outputs.
func (m *Model) Clone() (*Model, error) {
	r, err := NewModel(m.Config)
	if err != nil {
		return nil, err
	}
	src, dst := m.Params(), r.Params()
	if len(src) != len(dst) {
		return nil, fmt.Errorf("hsd: Clone parameter count mismatch %d vs %d", len(src), len(dst))
	}
	for i, p := range src {
		if dst[i].Name != p.Name {
			return nil, fmt.Errorf("hsd: Clone parameter order mismatch %q vs %q", dst[i].Name, p.Name)
		}
		copy(dst[i].W.Data(), p.W.Data())
		copy(dst[i].Grad.Data(), p.Grad.Data())
	}
	// Replicas share the parent's instruments and scan cache: both are
	// safe for concurrent writers, and a parallel scan should aggregate
	// into one set of series — and one content-addressed result set —
	// rather than fragment per replica.
	r.ins = m.ins
	r.cache = m.cache
	if err := r.adoptQuantFrom(m); err != nil {
		return nil, err
	}
	// The in-place parameter copy above invalidated the packs NewModel
	// built from the fresh initialization.
	r.packInferWeights()
	return r, nil
}

// syncReplica copies m's current parameter values into a cached scan
// replica. Only the weights matter for inference; the copy is a tiny
// fraction of a scan's cost and guarantees a replica built before a Load
// or a training step still scans with the model's present weights.
func (m *Model) syncReplica(r *Model) {
	src, dst := m.Params(), r.Params()
	for i, p := range src {
		copy(dst[i].W.Data(), p.W.Data())
	}
	// Precision and calibration ride along with the weights: plans are
	// weight-derived, and the copy above just made the replica's weights
	// equal to m's, so sharing m's plans by reference stays exact. The
	// trees are clones of one configuration, so Mirror cannot fail.
	if err := r.adoptQuantFrom(m); err != nil {
		panic(fmt.Sprintf("hsd: syncReplica quant mirror: %v", err))
	}
	r.packInferWeights()
}

// Save writes all model parameters to a checkpoint file.
func (m *Model) Save(path string) error { return nn.SaveParamsFile(path, m.Params()) }

// Load restores model parameters from a checkpoint written by Save for an
// identically-configured model.
func (m *Model) Load(path string) error {
	if err := nn.LoadParamsFile(path, m.Params()); err != nil {
		return err
	}
	m.packInferWeights()
	return nil
}

// BaseOutput bundles the activations of the shared trunk and RPN heads
// for one region.
type BaseOutput struct {
	Feat     *tensor.Tensor // [1, FeatC, F, F]
	FineFeat *tensor.Tensor // [1, FineC, S/2, S/2] stem tap
	ClsMap   *tensor.Tensor // [1, 2A, F, F]
	RegMap   *tensor.Tensor // [1, 4A, F, F]
}

// ForwardBase runs the extractor and clip proposal network on one input
// raster. Like InferBase it is shape-polymorphic: any [1, 2, H, W] raster
// with H and W positive multiples of FeatureStride is accepted, which is
// what lets a model train on megatile-sized samples (multi-scale
// training) and close the context-distribution gap between the nominal
// region and the megatile scan.
func (m *Model) ForwardBase(x *tensor.Tensor) *BaseOutput {
	if x.Rank() != 4 || x.Dim(0) != 1 || x.Dim(1) != InputChannels ||
		x.Dim(2) <= 0 || x.Dim(2)%FeatureStride != 0 ||
		x.Dim(3) <= 0 || x.Dim(3)%FeatureStride != 0 {
		panic(fmt.Sprintf("hsd: ForwardBase input %v, want [1 %d 8k 8k]",
			x.Shape(), InputChannels))
	}
	fine := m.Stem.Forward(x)
	feat := m.Inception.Forward(m.EncDec.Forward(m.Backbone.Forward(fine)))
	trunk := m.RPNTrunk.Forward(feat)
	return &BaseOutput{
		Feat:     feat,
		FineFeat: fine,
		ClsMap:   m.RPNCls.Forward(trunk),
		RegMap:   m.RPNReg.Forward(trunk),
	}
}

// InferBase is the inference-path ForwardBase: it resets the model's
// workspace and runs the extractor and clip proposal network through the
// allocation-free nn.Inferer path (with conv+activation fusion). The
// returned BaseOutput and its tensors are owned by the model and valid
// only until the next InferBase/Detect call. Values are bit-identical to
// ForwardBase.
//
// Unlike the training path, InferBase is shape-polymorphic: the backbone
// and CPN heads are fully convolutional, so any [1, 2, H, W] raster with
// H and W positive multiples of FeatureStride is accepted — the megatile
// scan feeds it rasters covering many regions at once.
func (m *Model) InferBase(x *tensor.Tensor) *BaseOutput {
	if x.Rank() != 4 || x.Dim(0) != 1 || x.Dim(1) != InputChannels ||
		x.Dim(2) <= 0 || x.Dim(2)%FeatureStride != 0 ||
		x.Dim(3) <= 0 || x.Dim(3)%FeatureStride != 0 {
		panic(fmt.Sprintf("hsd: InferBase input %v, want [1 %d 8k 8k]",
			x.Shape(), InputChannels))
	}
	m.ws.Reset()
	sp := m.stageSpan(StageBackbone)
	fine := m.stageInfer(m.Stem, x)
	feat := m.stageInfer(m.Backbone, fine)
	sp.End()
	sp = m.stageSpan(StageEncDec)
	feat = m.stageInfer(m.EncDec, feat)
	sp.End()
	sp = m.stageSpan(StageInception)
	feat = m.stageInfer(m.Inception, feat)
	sp.End()
	sp = m.stageSpan(StageCPN)
	trunk := m.RPNTrunk.Infer(feat, m.ws)
	b := &m.scratch.base
	b.Feat = feat
	b.FineFeat = fine
	b.ClsMap = m.RPNCls.Infer(trunk, m.ws)
	b.RegMap = m.RPNReg.Infer(trunk, m.ws)
	sp.End()
	return b
}

// anchorLogits gathers the (non-hotspot, hotspot) logits of anchor i from
// the cls map under the given anchor grid. Anchor index layout matches
// GenerateAnchorsSized: i = (y*W + x)*A + a.
func anchorLogits(set *AnchorSet, cls *tensor.Tensor, i int) (float32, float32) {
	a := i % set.PerCell
	cell := i / set.PerCell
	y := cell / set.FeatW
	x := cell % set.FeatW
	return cls.At(0, 2*a, y, x), cls.At(0, 2*a+1, y, x)
}

// anchorReg gathers the 4 regression outputs of anchor i under the given
// anchor grid.
func anchorReg(set *AnchorSet, reg *tensor.Tensor, i int) geom.BoxEncoding {
	a := i % set.PerCell
	cell := i / set.PerCell
	y := cell / set.FeatW
	x := cell % set.FeatW
	return geom.BoxEncoding{
		LX: float64(reg.At(0, 4*a, y, x)),
		LY: float64(reg.At(0, 4*a+1, y, x)),
		LW: float64(reg.At(0, 4*a+2, y, x)),
		LH: float64(reg.At(0, 4*a+3, y, x)),
	}
}

// preNMSTopK bounds the number of candidates entering the O(n²) h-NMS, as
// in standard region-proposal pipelines.
const preNMSTopK = 256

// Proposals decodes, scores, bounds and h-NMS-filters the clip proposal
// network's output into candidate clips in input-pixel coordinates. The
// grid is inferred from the head output's spatial extent, and the pre-NMS
// and proposal budgets scale with its cell count relative to the nominal
// grid (both exactly 1 at the nominal size), so Proposals serves sized
// forward passes and the training loop alike.
func (m *Model) Proposals(out *BaseOutput) []ScoredClip {
	c := m.Config
	fh, fw := out.ClsMap.Dim(2), out.ClsMap.Dim(3)
	set := m.anchorsFor(fh, fw)
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(fw * FeatureStride), Y1: float64(fh * FeatureStride)}
	base := c.FeatureSize() * c.FeatureSize()
	ratio := (fh*fw + base - 1) / base
	cand := make([]ScoredClip, 0, set.Len())
	for i, anchor := range set.Boxes {
		l0, l1 := anchorLogits(set, out.ClsMap, i)
		score := sigmoidDiff(l1, l0)
		box := geom.Decode(anchorReg(set, out.RegMap, i), anchor).Clip(bounds)
		if box.W() < 2 || box.H() < 2 {
			continue
		}
		cand = append(cand, ScoredClip{Clip: box, Score: score})
	}
	kept := m.nms(TopK(cand, preNMSTopK*ratio))
	return TopK(kept, c.ProposalCount*ratio)
}

// nms applies the configured suppression: h-NMS (Alg. 1) by default,
// conventional whole-clip NMS for the ablation.
func (m *Model) nms(clips []ScoredClip) []ScoredClip {
	if m.Config.ConventionalNMS {
		return ConventionalNMS(clips, m.Config.NMSThreshold)
	}
	return HNMS(clips, m.Config.NMSThreshold)
}

// sigmoidDiff converts a two-logit pair into the hotspot probability
// softmax(l1) = σ(l1 − l0).
func sigmoidDiff(l1, l0 float32) float64 {
	d := float64(l1 - l0)
	return 1 / (1 + expNeg(d))
}

func expNeg(x float64) float64 {
	// exp(-x) clamped to avoid overflow for extreme logits.
	if x > 40 {
		return 0
	}
	if x < -40 {
		x = -40
	}
	return math.Exp(-x)
}

// RefineForward runs RoI pooling and the refinement stage on the given
// proposal clips, returning classification logits [R, 2] and regression
// deltas [R, 4] (relative to each proposal per Eq. 3). With UseFineTap
// the pooled deep features are concatenated with features pooled from the
// stride-2 stem tap, restoring the fine-scale signal (thin gaps and
// necks) that max pooling removes from the deep map.
func (m *Model) RefineForward(out *BaseOutput, rois []geom.Rect) (cls, reg *tensor.Tensor) {
	pooled := m.RoI.Forward(out.Feat, rois)
	if m.Config.UseFineTap {
		finePooled := m.RoIFine.Forward(out.FineFeat, rois)
		pooled = tensor.ConcatChannels(pooled, finePooled)
	}
	trunkOut := m.RefineTrunk.Forward(pooled)
	hidden := m.RefineFC.Forward(trunkOut)
	return m.RefineCls.Forward(hidden), m.RefineReg.Forward(hidden)
}

// RefineInfer is the inference-path RefineForward: RoI pooling and the
// refinement stage run on workspace memory with nothing cached for
// Backward. The returned tensors are valid until the workspace's next
// Reset (i.e. the next InferBase/Detect call). Values are bit-identical
// to RefineForward.
func (m *Model) RefineInfer(out *BaseOutput, rois []geom.Rect) (cls, reg *tensor.Tensor) {
	pooled := m.RoI.Infer(m.ws, out.Feat, rois)
	if m.Config.UseFineTap {
		finePooled := m.RoIFine.Infer(m.ws, out.FineFeat, rois)
		pooled = tensor.ConcatChannelsInfer(m.ws, pooled, finePooled)
	}
	trunkOut := m.RefineTrunk.Infer(pooled, m.ws)
	hidden := m.RefineFC.Infer(trunkOut, m.ws)
	return m.RefineCls.Infer(hidden, m.ws), m.RefineReg.Infer(hidden, m.ws)
}

// RefineBackward propagates head gradients back to the shared feature
// maps and accumulates parameter gradients. It returns the gradient for
// the deep feature map and, when the fine tap is active, for the stem
// tap (nil otherwise).
func (m *Model) RefineBackward(gCls, gReg *tensor.Tensor) (gFeat, gFine *tensor.Tensor) {
	gHidden := m.RefineCls.Backward(gCls)
	gHidden.Add(m.RefineReg.Backward(gReg))
	gTrunk := m.RefineFC.Backward(gHidden)
	gPooled := m.RefineTrunk.Backward(gTrunk)
	if m.Config.UseFineTap {
		parts := tensor.SplitChannels(gPooled, m.FeatC, m.FineC)
		return m.RoI.Backward(parts[0]), m.RoIFine.Backward(parts[1])
	}
	return m.RoI.Backward(gPooled), nil
}

// act is the network activation. Leaky ReLU (slope 0.05) rather than plain
// ReLU: the tiny training budgets this package targets cannot recover from
// dying-ReLU collapse, and a small negative slope keeps every unit
// trainable without changing the architecture.
func act() nn.Layer { return nn.NewLeakyReLU(0.05) }
