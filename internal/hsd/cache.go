package hsd

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"rhsd/internal/scancache"
	"rhsd/internal/tensor"
)

// This file wires the content-addressed result cache (internal/scancache)
// into the megatile scan. The cached unit is the output of one
// Detect(raster) call — detections in megatile-local pixel coordinates, a
// pure function of the raster bytes and the model weights — keyed by
// RasterKey over exactly those inputs. Position never enters the key:
// two megatiles anywhere on the chip (or in different requests) that
// rasterize to the same bytes share one forward pass. The halo-dependent
// parts of the scan — ownership filtering and translation to window
// coordinates — are recomputed per tile from the cached detections; they
// are deterministic arithmetic, so a hit is bit-identical to a cold scan
// by construction. DESIGN.md §14 documents the keying and invalidation
// rules.

// DetCache is the cache instantiation the megatile scan uses: raster
// content → detections in megatile-local pixel coordinates.
type DetCache = scancache.Cache[[]Detection]

// detectionBytes is the retained size of one Detection (geom.Rect = four
// float64s, plus the score) charged against the cache byte budget.
const detectionBytes = 5 * 8

// NewDetCache builds a detection result cache bounded to maxBytes
// (<= 0 means unbounded). The copy policy hands every caller its own
// []Detection, so cached results can never be torn by concurrent scans.
func NewDetCache(maxBytes int64) *DetCache {
	return scancache.New(maxBytes,
		func(v []Detection) int64 { return int64(len(v)) * detectionBytes },
		func(v []Detection) []Detection { return append([]Detection(nil), v...) })
}

// SetScanCache attaches (or, with nil, detaches) a megatile result cache.
// The cache is consulted by DetectLayoutMegatile, ScanLayoutMegatile and
// RescanLayoutMegatile before each megatile forward pass; a *DetCache is
// safe for concurrent use, so one cache is typically shared across a
// serving pool's workers (every clone inherits the attachment). Detached
// models scan exactly as before — the nil-cache path adds no work and no
// allocations, preserving the steady-state allocation guarantee.
func (m *Model) SetScanCache(c *DetCache) {
	m.cache = c
	for _, r := range m.replicas {
		r.SetScanCache(c)
	}
}

// ScanCache returns the attached megatile result cache, nil if detached.
func (m *Model) ScanCache() *DetCache { return m.cache }

// WeightsVersion digests everything that, besides the raster, determines
// Detect's output: the configuration and every parameter value, in
// Params() order. It is recomputed on each call rather than cached with
// invalidation hooks — a stale version is the one failure mode of a
// content-addressed cache that produces silently wrong detections (a hit
// under different weights), and no mutation path (Load, a training step,
// direct parameter writes in tests) can outrun a fresh hash. The cost is
// one SHA-256 pass over the parameters per layout scan — not per
// megatile — which is noise next to a single forward pass.
func (m *Model) WeightsVersion() [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "%+v", m.Config)
	// The numeric path is part of the output contract: int8 and fp32
	// results for one raster differ (within the accuracy gate's budget)
	// and must never share a cache entry. The calibration signature —
	// each quantized conv's input scale and zero point — folds in too,
	// since two int8 models with equal weights but different calibration
	// data produce different detections.
	fmt.Fprintf(h, ";precision=%s", m.Precision())
	if m.Precision() == PrecisionInt8 && m.quant != nil {
		m.quant.WriteSignature(h)
	}
	var buf [4096]byte
	n := 0
	for _, p := range m.Params() {
		for _, f := range p.W.Data() {
			binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(f))
			n += 4
			if n == len(buf) {
				h.Write(buf[:])
				n = 0
			}
		}
	}
	h.Write(buf[:n])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// RasterKey is the content address of one megatile forward pass: a
// SHA-256 over the raster's shape, its exact float32 contents (metal and
// space channels, halo bands included — the network consumes halo bytes,
// so two rasters differing only in a halo must not share an entry), and
// the weights version. Tile position deliberately never enters the key.
func RasterKey(raster *tensor.Tensor, version [sha256.Size]byte) scancache.Key {
	h := sha256.New()
	var hdr [8]byte
	for i := 0; i < raster.Rank(); i++ {
		binary.LittleEndian.PutUint64(hdr[:], uint64(raster.Dim(i)))
		h.Write(hdr[:])
	}
	var buf [4096]byte
	n := 0
	for _, f := range raster.Data() {
		binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(f))
		n += 4
		if n == len(buf) {
			h.Write(buf[:])
			n = 0
		}
	}
	h.Write(buf[:n])
	h.Write(version[:])
	var key scancache.Key
	h.Sum(key[:0])
	return key
}

// cachedDetect runs one megatile forward pass through the attached
// cache: a content hit returns the stored detections (a private copy)
// without touching the network; a miss runs Detect on the worker replica
// mw and retains the result. useCache=false (detached cache, or a path
// that skipped version hashing) is a plain Detect call. The second
// return reports how the lookup was served (OutcomeNone when no cache
// was consulted) — request traces stamp it on the megatile's span.
func (m *Model) cachedDetect(mw *Model, raster *tensor.Tensor, version [sha256.Size]byte, useCache bool) ([]Detection, scancache.Outcome) {
	if !useCache {
		return mw.Detect(raster), scancache.OutcomeNone
	}
	key := RasterKey(raster, version)
	return m.cache.GetOrComputeOutcome(key, func() []Detection {
		return mw.Detect(raster)
	})
}
