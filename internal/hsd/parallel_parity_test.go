package hsd

import (
	"math/rand"
	"testing"

	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
)

// detectAtWorkers runs f under a fixed worker count, restoring the
// previous count afterwards.
func detectAtWorkers[T any](n int, f func() T) T {
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	return f()
}

// assertSameDetections requires exact (bit-level float64) equality — the
// parallel scan promises byte-identical output, not mere tolerance.
func assertSameDetections(t *testing.T, label string, serial, par []Detection) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s: %d detections serial vs %d parallel", label, len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("%s: detection %d differs:\n  serial   %+v\n  parallel %+v", label, i, serial[i], par[i])
		}
	}
}

func parityModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDetectParityAcrossWorkerCounts(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
		x.RandUniform(rng, 0, 1)
		serial := detectAtWorkers(1, func() []Detection { return m.Detect(x) })
		par := detectAtWorkers(8, func() []Detection { return m.Detect(x) })
		assertSameDetections(t, "Detect", serial, par)
	}
}

func TestDetectParityWithoutRefine(t *testing.T) {
	c := TinyConfig()
	c.UseRefine = false
	m, err := NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	x := tensor.New(1, InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)
	serial := detectAtWorkers(1, func() []Detection { return m.Detect(x) })
	par := detectAtWorkers(8, func() []Detection { return m.Detect(x) })
	assertSameDetections(t, "Detect w/o refine", serial, par)
}

func TestDetectLayoutParityAcrossWorkerCounts(t *testing.T) {
	m := parityModel(t)
	c := m.Config
	regionNM := c.RegionNM()
	// 2×2 regions plus a ragged right/bottom margin so the tile grid has
	// clamped odd-sized final tiles.
	big := layout.New(layout.R(0, 0, 2*regionNM+regionNM/3, 2*regionNM+regionNM/5))
	for x := 40; x < big.Bounds.X1-80; x += 150 {
		big.Add(layout.R(x, 30, x+70, big.Bounds.Y1-50))
	}
	serial := detectAtWorkers(1, func() []Detection { return m.DetectLayout(big, big.Bounds) })
	par := detectAtWorkers(8, func() []Detection { return m.DetectLayout(big, big.Bounds) })
	assertSameDetections(t, "DetectLayout", serial, par)
}

func TestDetectLayoutParitySingleTile(t *testing.T) {
	// Degenerate scan: window smaller than one region → exactly one tile,
	// exercising the workers>tiles clamp.
	m := parityModel(t)
	c := m.Config
	l := layout.New(layout.R(0, 0, c.RegionNM()/2, c.RegionNM()/2))
	l.Add(layout.R(20, 20, 90, c.RegionNM()/2-20))
	serial := detectAtWorkers(1, func() []Detection { return m.DetectLayout(l, l.Bounds) })
	par := detectAtWorkers(8, func() []Detection { return m.DetectLayout(l, l.Bounds) })
	assertSameDetections(t, "DetectLayout single tile", serial, par)
}

func TestCloneProducesIdenticalDetections(t *testing.T) {
	m := parityModel(t)
	clone, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	x := tensor.New(1, InputChannels, m.Config.InputSize, m.Config.InputSize)
	x.RandUniform(rng, 0, 1)
	assertSameDetections(t, "Clone", m.Detect(x), clone.Detect(x))
	// The replica must be state-independent: running the clone again after
	// the original mutated its activation caches changes nothing.
	m.Detect(x)
	assertSameDetections(t, "Clone after original reran", m.Detect(x), clone.Detect(x))
}
