// Package serve implements the R-HSD detection daemon behind rhsd-serve:
// a pool of model clones fronted by an HTTP API.
//
//	POST /detect   layout text (BOUNDS/RECT) in, JSON detections out
//	GET  /healthz  liveness (503 while draining)
//	GET  /statusz  pool, queue, workspace and request counters as JSON
//	GET  /metrics  Prometheus text exposition (internal/telemetry)
//	GET  /debug/pprof/*  profiling handlers, only with Config.EnablePprof
//
// Design (DESIGN.md §12): every request is one unit of work handled by
// one pooled model clone whose scan concurrency is capped so the total
// goroutine budget stays at parallel.Workers() regardless of pool size —
// cross-request parallelism replaces the CLI's nested per-scan fan-out.
// Admission is a bounded queue that sheds load with 429 instead of
// buffering unboundedly; each request carries a deadline (a detection
// that outlives it answers 504 while the worker finishes in the
// background and rejoins the pool, since kernels are not cancellable
// mid-pass); shutdown stops admissions and drains in-flight work; idle
// servers trim per-clone workspaces back to their budget. All detection
// runs behind the guard.Run error boundary, so a panic anywhere in the
// inference stack becomes a 500 response and the daemon keeps serving.
//
// Observability (DESIGN.md §13): every request/response/latency series
// lives in a telemetry.Registry — the same registry that carries the
// model's per-stage histograms and the worker pool's utilization gauges —
// and /statusz is derived from those instruments, so the JSON status and
// the Prometheus exposition can never disagree. Requests get sequential
// IDs (echoed in the X-Request-Id response header) that structured logs,
// including recovered panic reports, carry as an attribute.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rhsd/internal/guard"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/parallel"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// Config tunes one Server. The zero value of every field selects a
// production-safe default (see withDefaults); fields with meaningful zero
// values use explicit sentinels, documented per field.
type Config struct {
	// Pool is the number of model clones, i.e. concurrent detections
	// (0 = parallel.Workers()).
	Pool int
	// QueueDepth is how many admitted requests may wait for a model
	// beyond the Pool already running; anything past Pool+QueueDepth is
	// shed with 429. Negative = default (2×Pool); 0 = no waiting room.
	QueueDepth int
	// Timeout bounds one request's wait-plus-detection time
	// (0 = 60s; negative = no deadline).
	Timeout time.Duration
	// MaxBodyBytes caps the /detect request body (0 = 16 MiB).
	MaxBodyBytes int64
	// Limits bound the parsed layout (zero fields = layout.DefaultLimits).
	Limits layout.Limits
	// MegatileFactor selects the scan: 0 = auto-size from MegatileMemMiB
	// per request window, N>0 = fixed N×N regions per pass, negative =
	// legacy per-tile scan.
	MegatileFactor int
	// MegatileMemMiB is the per-clone workspace budget driving the auto
	// factor (0 = 512).
	MegatileMemMiB int
	// CacheMemMiB bounds the content-addressed megatile result cache
	// shared by every pooled clone (internal/scancache): scans look each
	// megatile up by its raster content + weights version before running
	// the forward pass. 0 disables caching. Stale entries after a weight
	// change need no explicit invalidation — the weights version is part
	// of every key, so they simply become unreachable and age out by LRU.
	CacheMemMiB int
	// ScoreThreshold overrides the model's reporting threshold when
	// non-negative (an explicit 0 is honored); negative = model default.
	ScoreThreshold float64
	// Precision selects the trunk numeric path every pooled clone starts
	// with: hsd.PrecisionFP32 (default, "" included) or hsd.PrecisionInt8.
	// Int8 requires Calibration.
	Precision string
	// Calibration rasters arm the int8 trunk at startup: the model
	// sweeps its activation ranges over them and quantizes its weights
	// before the pool is cloned. Required when Precision is int8, and
	// for per-request ?precision=int8 overrides; empty leaves the int8
	// path unarmed (requests asking for it answer 400).
	Calibration []*tensor.Tensor
	// IdleTrim is how long the server must sit idle before per-clone
	// workspaces are trimmed (0 = 1 min; negative = never trim).
	IdleTrim time.Duration
	// TrimFloats is the per-workspace float32 budget left after an idle
	// trim; 0 releases all retained scratch.
	TrimFloats int
	// Registry receives every serve/pool/model instrument and backs
	// GET /metrics. nil = a fresh private registry (see Server.Registry).
	// A registry must not be shared between Servers: the second New would
	// panic on duplicate series.
	Registry *telemetry.Registry
	// FlightRecorder is how many completed request traces GET /traces
	// retains (the span-tree flight recorder, DESIGN.md §18). 0 = 32;
	// negative disables tracing entirely — requests then thread a nil
	// trace and pay only nil checks on the hot path.
	FlightRecorder int
	// SlowScan, when positive, logs a structured trace dump (worst
	// megatile chain included) for every detection whose scan takes at
	// least this long. 0 disables slow-scan logging.
	SlowScan time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints on a production port are a foot-gun.
	EnablePprof bool
	// Logger receives structured operational logs, including panic
	// reports recovered at the error boundary (nil = slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = parallel.Workers()
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 2 * c.Pool
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MegatileMemMiB <= 0 {
		c.MegatileMemMiB = 512
	}
	if c.IdleTrim == 0 {
		c.IdleTrim = time.Minute
	}
	if c.FlightRecorder == 0 {
		c.FlightRecorder = 32
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// serveMetrics is the daemon's instrument bundle, registered once at New.
// /statusz reads these same instruments, so JSON status and Prometheus
// exposition always agree.
type serveMetrics struct {
	requests   *telemetry.Counter // every admitted /detect request
	respOK     *telemetry.Counter // responses by class
	respClient *telemetry.Counter
	respServer *telemetry.Counter
	shed       *telemetry.Counter   // 429s from a full queue
	timeouts   *telemetry.Counter   // deadline hit waiting or detecting
	detections *telemetry.Counter   // hotspots reported across responses
	inflight   *telemetry.Gauge     // requests between admission and response
	latency    *telemetry.Histogram // successful /detect wall time
	queueWait  *telemetry.Histogram // admission-to-worker wait
}

func newServeMetrics(reg *telemetry.Registry) *serveMetrics {
	const respHelp = "Responses sent, by status class."
	return &serveMetrics{
		requests: reg.NewCounter("rhsd_serve_requests_total",
			"Detect requests admitted (past the draining check).", ""),
		respOK:     reg.NewCounter("rhsd_serve_responses_total", respHelp, `class="2xx"`),
		respClient: reg.NewCounter("rhsd_serve_responses_total", respHelp, `class="4xx"`),
		respServer: reg.NewCounter("rhsd_serve_responses_total", respHelp, `class="5xx"`),
		shed: reg.NewCounter("rhsd_serve_shed_total",
			"Requests shed with 429 because the admission queue was full.", ""),
		timeouts: reg.NewCounter("rhsd_serve_timeout_total",
			"Requests that hit their deadline waiting for or running a detection.", ""),
		detections: reg.NewCounter("rhsd_serve_detections_total",
			"Hotspot detections reported across all successful responses.", ""),
		inflight: reg.NewGauge("rhsd_serve_inflight",
			"Requests currently between admission and response.", ""),
		latency: reg.NewHistogram("rhsd_serve_request_seconds",
			"Successful /detect wall time (admission to response) in seconds.", "",
			telemetry.ExpBuckets(0.001, 2.5, 14)),
		queueWait: reg.NewHistogram("rhsd_serve_queue_wait_seconds",
			"Wait from admission until a pooled model became available.", "",
			telemetry.ExpBuckets(0.0001, 4, 10)),
	}
}

// worker is one pooled model clone plus its last observed workspace
// footprint (bytes), stored atomically so /statusz can report memory
// without touching a model that another goroutine may be driving.
type worker struct {
	m         *hsd.Model
	footprint atomic.Int64
}

// scanHistoryDepth bounds how many recent scans /detect?since= can
// reference. DFM loops re-submit against the immediately preceding scan,
// so a short ring suffices; a since id that has aged out degrades to a
// cold scan, never an error.
const scanHistoryDepth = 8

// scanEntry is one retained scan: the layout served and its ScanResult
// (both immutable once stored), addressable by the scan id echoed in the
// response. trace is the flight-recorder trace id of the request that
// produced the scan ("" when tracing is off) — the join key between
// /statusz scan history, /metrics exemplars and GET /traces/{id}.
type scanEntry struct {
	id    int64
	l     *layout.Layout
	res   *hsd.ScanResult
	trace string
}

// scanHistory is a small mutex-guarded ring of recent scans.
type scanHistory struct {
	mu      sync.Mutex
	depth   int
	nextID  int64
	entries []scanEntry // oldest first
}

func newScanHistory(depth int) *scanHistory {
	return &scanHistory{depth: depth}
}

// add retains (l, res) and returns its scan id (ids start at 1).
func (h *scanHistory) add(l *layout.Layout, res *hsd.ScanResult, trace string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	h.entries = append(h.entries, scanEntry{id: h.nextID, l: l, res: res, trace: trace})
	if len(h.entries) > h.depth {
		h.entries = append(h.entries[:0], h.entries[len(h.entries)-h.depth:]...)
	}
	return h.nextID
}

// ScanHistoryEntry is one retained scan in the /statusz listing.
type ScanHistoryEntry struct {
	ScanID       int64  `json:"scan_id"`
	TraceID      string `json:"trace_id,omitempty"`
	TilesScanned int    `json:"tiles_scanned"`
	TilesReused  int    `json:"tiles_reused"`
	Detections   int    `json:"detections"`
}

// list summarizes the retained scans, newest first.
func (h *scanHistory) list() []ScanHistoryEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ScanHistoryEntry, 0, len(h.entries))
	for i := len(h.entries) - 1; i >= 0; i-- {
		e := h.entries[i]
		out = append(out, ScanHistoryEntry{
			ScanID:       e.id,
			TraceID:      e.trace,
			TilesScanned: e.res.TilesScanned,
			TilesReused:  e.res.TilesReused,
			Detections:   len(e.res.Detections),
		})
	}
	return out
}

// get returns the retained scan with the given id, if still present.
func (h *scanHistory) get(id int64) (scanEntry, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range h.entries {
		if e.id == id {
			return e, true
		}
	}
	return scanEntry{}, false
}

// Server is the detection daemon. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg     Config
	perScan int // scan-goroutine cap applied to each pooled model
	pool    chan *worker
	workers []*worker
	sem     chan struct{} // admission: Pool+QueueDepth slots

	reg *telemetry.Registry
	met *serveMetrics
	log *slog.Logger

	// rec is the request-trace flight recorder behind GET /traces
	// (nil = tracing disabled).
	rec *telemetry.FlightRecorder

	// defaultPrecision is the pool-wide numeric path (cfg.Precision
	// normalized); int8Armed records whether startup calibration ran, the
	// precondition for per-request ?precision=int8 overrides.
	defaultPrecision string
	int8Armed        bool

	// cache is the shared megatile result cache (nil = disabled); hist
	// retains recent scan results for /detect?since= incremental rescans
	// (nil when the scan path is per-tile).
	cache *hsd.DetCache
	hist  *scanHistory

	mu       sync.RWMutex // guards closed vs. inflight.Add
	closed   bool
	inflight sync.WaitGroup

	start      time.Time
	lastActive atomic.Int64 // UnixNano of the last /detect admission
	reqID      atomic.Int64 // sequential request ids for logs + X-Request-Id

	stopTrim chan struct{}
	trimDone chan struct{}

	// testHook, when set, runs inside the detection error boundary before
	// the scan; tests use it to stall a worker or inject a panic.
	testHook func()
}

// New builds a Server around m: the pool's first worker is m itself, the
// rest are clones, each capped to scan with parallel.Workers()/Pool
// goroutines (at least 1) so a fully busy pool uses the same compute
// budget as one CLI scan. m must not be used by the caller afterwards.
//
// New wires the full observability stack into the registry: serve
// request/latency series, the worker pool's utilization gauges
// (parallel.RegisterMetrics) and — unless the model already carries an
// instrument bundle — per-stage detection histograms via
// hsd.NewInstruments, shared by every pooled clone.
func New(m *hsd.Model, cfg Config) (*Server, error) {
	if m == nil {
		return nil, errors.New("serve: nil model")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		perScan: scanWorkersPerModel(cfg.Pool),
		pool:    make(chan *worker, cfg.Pool),
		sem:     make(chan struct{}, cfg.Pool+cfg.QueueDepth),
		reg:     cfg.Registry,
		log:     cfg.Logger,
		start:   time.Now(),
	}
	s.met = newServeMetrics(s.reg)
	parallel.RegisterMetrics(s.reg)
	if cfg.FlightRecorder > 0 {
		s.rec = telemetry.NewFlightRecorder(cfg.FlightRecorder)
		// Per-span tensor stage attribution (gemm/im2col/quantize time on
		// megatile spans) rides the tensor profiling counters.
		tensor.SetProfiling(true)
	}
	if m.Instruments() == nil {
		m.SetInstruments(hsd.NewInstruments(s.reg))
	}
	if cfg.CacheMemMiB > 0 {
		// One cache for the whole pool, attached before cloning so every
		// worker inherits it: the workers' weights are bit-identical, so
		// they share keys and one worker's scan warms the others.
		s.cache = hsd.NewDetCache(int64(cfg.CacheMemMiB) << 20)
		s.cache.RegisterMetrics(s.reg)
		m.SetScanCache(s.cache)
	}
	if cfg.MegatileFactor >= 0 {
		s.hist = newScanHistory(scanHistoryDepth)
	}
	// Arm and select the numeric path before cloning: clones inherit the
	// calibration (plans are shared by reference) and the precision, so
	// the whole pool serves one consistent configuration.
	if len(cfg.Calibration) > 0 {
		if err := m.CalibrateInt8(cfg.Calibration); err != nil {
			return nil, fmt.Errorf("serve: int8 calibration: %w", err)
		}
	}
	if err := m.SetPrecision(cfg.Precision); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.defaultPrecision = m.Precision()
	s.int8Armed = m.Int8Calibrated()
	for i := 0; i < cfg.Pool; i++ {
		cm := m
		if i > 0 {
			var err error
			if cm, err = m.Clone(); err != nil {
				return nil, fmt.Errorf("serve: cloning model %d/%d: %w", i, cfg.Pool, err)
			}
		}
		if cfg.ScoreThreshold >= 0 {
			cm.Config.ScoreThreshold = cfg.ScoreThreshold
		}
		cm.SetScanWorkers(s.perScan)
		wk := &worker{m: cm}
		s.workers = append(s.workers, wk)
		s.pool <- wk
	}
	// Registered after precision arming so the labels report the path the
	// pool actually serves.
	registerBuildInfo(s.reg, s.buildInfo())
	s.reg.NewGaugeFunc("rhsd_serve_workspace_bytes",
		"Retained workspace bytes across all pooled model clones.", "",
		s.workspaceBytes)
	s.reg.NewGaugeFunc("rhsd_serve_queue_used",
		"Admission slots currently held (running plus waiting requests).", "",
		func() int64 { return int64(len(s.sem)) })
	s.lastActive.Store(time.Now().UnixNano())
	if cfg.IdleTrim > 0 {
		s.stopTrim = make(chan struct{})
		s.trimDone = make(chan struct{})
		go s.trimLoop()
	}
	return s, nil
}

// Registry returns the server's telemetry registry — the one behind
// GET /metrics — so embedders can add their own instruments to the same
// exposition.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// workspaceBytes sums the last observed per-clone workspace footprints.
func (s *Server) workspaceBytes() int64 {
	var total int64
	for _, wk := range s.workers {
		total += wk.footprint.Load()
	}
	return total
}

// Handler returns the HTTP handler serving the daemon's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/detect", s.handleDetect)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/traces/", s.handleTrace)
	mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Shutdown stops admitting requests (new /detect calls answer 503) and
// waits for in-flight detections — including any that already answered
// 504 but still hold a worker — to finish, or for ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already && s.stopTrim != nil {
		close(s.stopTrim)
		<-s.trimDone
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DetectionJSON is one hotspot clip in the /detect response, in layout
// nanometres relative to the request layout's bounds origin.
type DetectionJSON struct {
	CXnm  float64 `json:"cx_nm"`
	CYnm  float64 `json:"cy_nm"`
	Wnm   float64 `json:"w_nm"`
	Hnm   float64 `json:"h_nm"`
	Score float64 `json:"score"`
}

// DetectResponse is the /detect success payload. ScanID names this scan
// for a follow-up incremental request (POST /detect?since=<scan_id> with
// the edited layout); it is 0 when the scan path retains no history
// (per-tile scans). TilesScanned/TilesReused report the megatile fates —
// an incremental rescan of a lightly-edited layout reuses most tiles.
type DetectResponse struct {
	Detections   []DetectionJSON `json:"detections"`
	Count        int             `json:"count"`
	ElapsedMS    float64         `json:"elapsed_ms"`
	ScanID       int64           `json:"scan_id,omitempty"`
	TilesScanned int             `json:"tiles_scanned,omitempty"`
	TilesReused  int             `json:"tiles_reused,omitempty"`
	Incremental  bool            `json:"incremental,omitempty"`
	// Precision is the numeric path this scan ran under ("fp32" or
	// "int8"): the pool default, or the request's ?precision= override.
	Precision string `json:"precision,omitempty"`
	// TraceID names this request's span trace, retrievable while retained
	// at GET /traces/{trace_id} (empty when the flight recorder is off).
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorResponse is every non-2xx payload.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Status is the /statusz payload. Every counter is read from the same
// telemetry instruments that /metrics exposes.
type Status struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Pool           int     `json:"pool"`
	ScanWorkers    int     `json:"scan_workers_per_model"`
	QueueCapacity  int     `json:"queue_capacity"`
	QueueUsed      int     `json:"queue_used"`
	WorkspaceBytes int64   `json:"workspace_bytes"`
	Requests       int64   `json:"requests"`
	OK             int64   `json:"ok"`
	ClientErrors   int64   `json:"client_errors"`
	ServerErrors   int64   `json:"server_errors"`
	Shed           int64   `json:"shed"`
	Timeouts       int64   `json:"timeouts"`
	Detections     int64   `json:"detections"`
	LatencyAvgMS   float64 `json:"latency_avg_ms"`
	LatencyMaxMS   float64 `json:"latency_max_ms"`
	Draining       bool    `json:"draining"`
	// Precision is the pool-wide numeric path; Int8Armed reports whether
	// per-request ?precision=int8 overrides are available.
	Precision string `json:"precision"`
	Int8Armed bool   `json:"int8_armed"`
	// Cache* mirror the rhsd_scancache_* series when the megatile result
	// cache is enabled; CacheHitRate is hits / (hits + misses + shared).
	CacheEnabled   bool    `json:"cache_enabled"`
	CacheHits      int64   `json:"cache_hits,omitempty"`
	CacheMisses    int64   `json:"cache_misses,omitempty"`
	CacheShared    int64   `json:"cache_shared,omitempty"`
	CacheEvictions int64   `json:"cache_evictions,omitempty"`
	CacheBytes     int64   `json:"cache_bytes,omitempty"`
	CacheEntries   int64   `json:"cache_entries,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	// Build mirrors the rhsd_build_info gauge labels.
	Build BuildInfo `json:"build"`
	// TracesRetained/TraceCapacity describe the flight recorder; zero
	// capacity means tracing is disabled and GET /traces answers 404.
	TracesRetained int `json:"traces_retained"`
	TraceCapacity  int `json:"trace_capacity"`
	// ScanHistory lists the retained scans (?since= targets), newest
	// first, each carrying the trace id that joins it to GET /traces.
	ScanHistory []ScanHistoryEntry `json:"scan_history,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection failing mid-response is the client's problem
}

// fail answers with a JSON error and bumps the right response-class
// counter.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= 500 {
		s.met.respServer.Inc()
	} else if code >= 400 {
		s.met.respClient.Inc()
	}
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	m := s.met
	st := Status{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Pool:           len(s.workers),
		ScanWorkers:    s.perScan,
		QueueCapacity:  cap(s.sem),
		QueueUsed:      len(s.sem),
		WorkspaceBytes: s.workspaceBytes(),
		Requests:       m.requests.Value(),
		OK:             m.respOK.Value(),
		ClientErrors:   m.respClient.Value(),
		ServerErrors:   m.respServer.Value(),
		Shed:           m.shed.Value(),
		Timeouts:       m.timeouts.Value(),
		Detections:     m.detections.Value(),
		Precision:      s.defaultPrecision,
		Int8Armed:      s.int8Armed,
	}
	if n := m.latency.Count(); n > 0 {
		st.LatencyAvgMS = m.latency.Sum() / float64(n) * 1e3
	}
	st.LatencyMaxMS = m.latency.Max() * 1e3
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheEnabled = true
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheShared = cs.Shared
		st.CacheEvictions = cs.Evictions
		st.CacheBytes = cs.Bytes
		st.CacheEntries = cs.Entries
		if total := cs.Hits + cs.Misses + cs.Shared; total > 0 {
			st.CacheHitRate = float64(cs.Hits) / float64(total)
		}
	}
	st.Build = s.buildInfo()
	if s.rec != nil {
		st.TracesRetained = len(s.rec.Traces())
		st.TraceCapacity = s.rec.Cap()
	}
	if s.hist != nil {
		st.ScanHistory = s.hist.list()
	}
	s.mu.RLock()
	st.Draining = s.closed
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, st)
}

func scanWorkersPerModel(pool int) int {
	per := parallel.Workers() / pool
	if per < 1 {
		per = 1
	}
	return per
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a layout to /detect")
		return
	}
	// Admission: refuse while draining, then claim a queue slot without
	// blocking — a full queue sheds immediately rather than buffering
	// bodies in memory until the process OOMs.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	defer s.inflight.Done()

	id := s.reqID.Add(1)
	reqIDStr := strconv.FormatInt(id, 10)
	w.Header().Set("X-Request-Id", reqIDStr)
	// tr is nil when the flight recorder is off; every span operation
	// below is nil-safe, so the untraced path stays branch-only. An
	// inbound W3C traceparent header donates the trace id so a
	// coordinator fanning a chip out over workers sees one trace.
	tr := s.rec.StartTrace("detect", reqIDStr, r.Header.Get("traceparent"))
	if tr != nil {
		w.Header().Set("Traceparent", tr.TraceParent())
		w.Header().Set("X-Trace-Id", tr.TraceID())
	}
	// The scan goroutine owns trace completion once launched (handed);
	// until then early exits (shed, 4xx, wait timeout) complete it here.
	handed := false
	defer func() {
		if !handed {
			tr.Complete()
		}
	}()
	s.log.Debug("detect request", "request_id", id, "remote", r.RemoteAddr)
	s.met.requests.Inc()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	s.lastActive.Store(time.Now().UnixNano())
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.met.shed.Inc()
		s.fail(w, http.StatusTooManyRequests, "queue full (%d running or waiting)", cap(s.sem))
		return
	}

	var since int64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v <= 0 {
			s.fail(w, http.StatusBadRequest, "invalid since=%q: want a positive scan_id from an earlier response", q)
			return
		}
		since = v
	}

	// ?precision= overrides the pool default for this request only; the
	// override is applied to the exclusively-held worker and restored
	// before it rejoins the pool.
	precision := s.defaultPrecision
	if q := r.URL.Query().Get("precision"); q != "" {
		switch q {
		case hsd.PrecisionFP32, hsd.PrecisionInt8:
			precision = q
		default:
			s.fail(w, http.StatusBadRequest, "invalid precision=%q: want %q or %q",
				q, hsd.PrecisionFP32, hsd.PrecisionInt8)
			return
		}
		if precision == hsd.PrecisionInt8 && !s.int8Armed {
			s.fail(w, http.StatusBadRequest,
				"precision=int8 unavailable: the server started without int8 calibration")
			return
		}
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ps := tr.StartSpan(tr.Root(), "parse")
	l, err := layout.ParseChecked(body, s.cfg.Limits)
	tr.EndSpan(ps)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "parsing layout: %v", err)
		return
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	waitStart := time.Now()
	qs := tr.StartSpan(tr.Root(), "queue_wait")
	var wk *worker
	select {
	case wk = <-s.pool:
		s.met.queueWait.ObserveSince(waitStart)
		tr.EndSpan(qs)
	case <-ctx.Done():
		s.met.timeouts.Inc()
		s.fail(w, http.StatusServiceUnavailable, "no detection worker within the request deadline")
		return
	}

	// The kernels are not cancellable mid-pass, so the detection runs in
	// its own goroutine holding its own in-flight count: on timeout the
	// handler answers 504 immediately while the worker finishes in the
	// background and rejoins the pool (and Shutdown still waits for it).
	start := time.Now()
	type result struct {
		out scanOutcome
		err error
	}
	done := make(chan result, 1)
	s.inflight.Add(1)
	// The scan goroutine now owns the trace: it must complete it even if
	// the handler has long since answered 504, and completion must happen
	// there — after the worker detaches — so no span operation can race
	// Complete (span handles are invalid once the trace completes).
	handed = true
	go func() {
		defer s.inflight.Done()
		var out scanOutcome
		err := guard.Run(func() {
			if s.testHook != nil {
				s.testHook()
			}
			if prev := wk.m.Precision(); precision != prev {
				if perr := wk.m.SetPrecision(precision); perr != nil {
					panic(perr) // validated at admission: unreachable
				}
				defer wk.m.SetPrecision(prev)
			}
			wk.m.SetTrace(tr, tr.Root())
			out = s.scan(wk.m, l, since, tr.TraceID())
		})
		// Detach before the worker rejoins the pool: the next request
		// must not inherit this trace, and Complete below invalidates
		// every span handle the model still holds.
		wk.m.SetTrace(nil, nil)
		wk.footprint.Store(int64(wk.m.TotalWorkspaceFootprint()) * 4)
		s.pool <- wk
		s.finishTrace(tr, out, err, time.Since(start))
		done <- result{out, err}
	}()

	select {
	case res := <-done:
		if res.err != nil {
			var pe *guard.PanicError
			if errors.As(res.err, &pe) {
				s.log.Error("detection panic recovered",
					"request_id", id,
					"panic", fmt.Sprint(pe.Value),
					"stack", string(pe.Stack))
			}
			s.fail(w, http.StatusInternalServerError, "detection failed: %v", res.err)
			return
		}
		elapsed := time.Since(start)
		dets := res.out.dets
		s.log.Debug("detect done", "request_id", id,
			"detections", len(dets), "incremental", res.out.incremental,
			"elapsed_ms", float64(elapsed.Nanoseconds())/1e6)
		s.met.respOK.Inc()
		s.met.detections.Add(int64(len(dets)))
		s.met.latency.Observe(elapsed.Seconds())
		out := DetectResponse{
			Detections:   make([]DetectionJSON, len(dets)),
			Count:        len(dets),
			ElapsedMS:    float64(elapsed.Nanoseconds()) / 1e6,
			ScanID:       res.out.scanID,
			TilesScanned: res.out.tilesScanned,
			TilesReused:  res.out.tilesReused,
			Incremental:  res.out.incremental,
			Precision:    precision,
			TraceID:      tr.TraceID(),
		}
		for i, d := range dets {
			out.Detections[i] = DetectionJSON{
				CXnm: d.Clip.CX(), CYnm: d.Clip.CY(),
				Wnm: d.Clip.W(), Hnm: d.Clip.H(),
				Score: d.Score,
			}
		}
		writeJSON(w, http.StatusOK, out)
	case <-ctx.Done():
		s.met.timeouts.Inc()
		s.fail(w, http.StatusGatewayTimeout, "detection exceeded the request deadline")
	}
}

// scanOutcome is one request's detection result plus the scan metadata
// echoed in the response.
type scanOutcome struct {
	dets                      []hsd.Detection
	scanID                    int64
	tilesScanned, tilesReused int
	incremental               bool
}

// scan runs the configured detection over the request layout's bounds.
// It executes inside the guard boundary; panics become 500s.
//
// On the megatile path the scan result is retained in the history ring
// and its id returned, so a follow-up request can POST an edited layout
// with ?since=<id>: the server diffs the stored layout against the new
// one (layout.Diff) and re-scans only megatiles whose halo-inclusive
// raster window a dirty rect touches. A since id that has aged out, or a
// stored scan whose window or weights no longer match, silently degrades
// to a cold scan — incremental serving is an optimization, never a
// correctness dependency (the hsd differential suite pins bit-identity).
func (s *Server) scan(m *hsd.Model, l *layout.Layout, since int64, traceID string) scanOutcome {
	if s.cfg.MegatileFactor < 0 {
		return scanOutcome{dets: m.DetectLayout(l, l.Bounds)}
	}
	var res *hsd.ScanResult
	incremental := false
	if since > 0 && s.hist != nil {
		if prev, ok := s.hist.get(since); ok && prev.res.Window() == l.Bounds.Canon() {
			res = m.RescanLayoutMegatile(prev.res, l, layout.Diff(prev.l, l))
			// A weight mismatch inside Rescan degrades to a full scan;
			// report it as incremental only if any tile was actually reused.
			incremental = res.TilesReused > 0 || res.TilesScanned == 0
		}
	}
	if res == nil {
		factor := s.cfg.MegatileFactor
		if factor == 0 {
			factor = m.AutoMegatileFactor(l.Bounds, int64(s.cfg.MegatileMemMiB)<<20)
		}
		res = m.ScanLayoutMegatile(l, l.Bounds, factor)
	}
	id := s.hist.add(l, res, traceID)
	return scanOutcome{
		dets:         res.Detections,
		scanID:       id,
		tilesScanned: res.TilesScanned,
		tilesReused:  res.TilesReused,
		incremental:  incremental,
	}
}

// trimLoop watches for idle periods and trims per-clone workspaces back
// to the configured budget so a daemon that served one giant scan does
// not pin megatile-sized buffers forever.
func (s *Server) trimLoop() {
	defer close(s.trimDone)
	tick := time.NewTicker(s.cfg.IdleTrim)
	defer tick.Stop()
	for {
		select {
		case <-s.stopTrim:
			return
		case <-tick.C:
			idle := time.Now().UnixNano() - s.lastActive.Load()
			if idle < s.cfg.IdleTrim.Nanoseconds() {
				continue
			}
			s.trimIdleWorkers()
		}
	}
}

// trimIdleWorkers trims every worker currently parked in the pool. Busy
// workers are skipped — they are not idle, and they update their own
// footprint when they finish. Workers are removed from the pool while
// being trimmed so no request can race the workspace.
func (s *Server) trimIdleWorkers() {
	var parked []*worker
drain:
	for {
		select {
		case wk := <-s.pool:
			parked = append(parked, wk)
		default:
			break drain
		}
	}
	for _, wk := range parked {
		wk.m.TrimWorkspace(s.cfg.TrimFloats)
		wk.footprint.Store(int64(wk.m.TotalWorkspaceFootprint()) * 4)
		s.pool <- wk
	}
}
