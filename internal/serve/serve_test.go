package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rhsd/internal/hsd"
	"rhsd/internal/layout"
)

// testConfig is a TinyConfig model with the reporting threshold lowered
// so even untrained weights emit a stable, non-empty detection set —
// what the parity assertions need to be meaningful.
func testConfig() hsd.Config {
	c := hsd.TinyConfig()
	c.ScoreThreshold = 0.2
	return c
}

func testModel(t *testing.T) *hsd.Model {
	t.Helper()
	m, err := hsd.NewModel(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testLayout builds a multi-region layout with background stripes and a
// few dense blobs, covering both the megatile grid and ragged margins.
func testLayout(c hsd.Config) *layout.Layout {
	regionNM := c.RegionNM()
	p := int(c.PitchNM)
	l := layout.New(layout.R(0, 0, 2*regionNM+regionNM/3, 2*regionNM+regionNM/5))
	for y := 0; y < l.Bounds.Y1; y += 8 * p {
		l.Add(layout.R(0, y, l.Bounds.X1, y+p))
	}
	for _, ctr := range [][2]int{{regionNM / 2, regionNM / 2}, {regionNM, regionNM + regionNM/3}, {2 * regionNM, regionNM / 3}} {
		l.Add(layout.R(ctr[0]-5*p, ctr[1]-5*p, ctr[0]+6*p, ctr[1]+6*p))
	}
	return l
}

// lockedBuffer is an io.Writer safe for the slog handler to share with
// test assertions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func layoutBody(t *testing.T, l *layout.Layout) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer builds a Server plus an httptest front end. The returned
// cleanup shuts both down.
func newTestServer(t *testing.T, cfg Config, hook func()) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.IdleTrim == 0 {
		cfg.IdleTrim = -1 // keep the trim loop out of tests that don't ask for it
	}
	if cfg.ScoreThreshold == 0 {
		cfg.ScoreThreshold = -1 // model default unless a test overrides
	}
	s, err := New(testModel(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.testHook = hook
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func postLayout(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/detect", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeDetect(t *testing.T, data []byte) DetectResponse {
	t.Helper()
	var out DetectResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
	return out
}

// TestServeMatchesDirectConcurrent pins the core serving contract:
// concurrent /detect requests return bit-identical detections to a
// direct DetectLayoutMegatile call on an identically-seeded model.
// JSON carries float64 exactly (Go encodes the shortest round-tripping
// representation), so the comparison is exact equality.
func TestServeMatchesDirectConcurrent(t *testing.T) {
	c := testConfig()
	l := testLayout(c)
	const factor = 2

	direct := testModel(t)
	want, err := direct.DetectLayoutMegatileChecked(l, l.Bounds, factor)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("direct scan found no detections; the parity test is vacuous")
	}

	_, ts := newTestServer(t, Config{Pool: 3, QueueDepth: 32, MegatileFactor: factor}, nil)
	body := layoutBody(t, l)

	const requests = 9
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var out DetectResponse
			if err := json.Unmarshal(data, &out); err != nil {
				errs <- err
				return
			}
			if out.Count != len(want) || len(out.Detections) != len(want) {
				errs <- fmt.Errorf("%d detections, want %d", out.Count, len(want))
				return
			}
			for j, d := range out.Detections {
				w := want[j]
				if d.CXnm != w.Clip.CX() || d.CYnm != w.Clip.CY() ||
					d.Wnm != w.Clip.W() || d.Hnm != w.Clip.H() || d.Score != w.Score {
					errs <- fmt.Errorf("detection %d: got %+v want clip %+v score %v", j, d, w.Clip, w.Score)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueFullSheds429(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func() {
		once.Do(func() { close(started) })
		<-release
	}
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 0, Timeout: -1}, hook)
	body := layoutBody(t, testLayout(testConfig()))

	// First request occupies the single admission slot and stalls in
	// detection until released.
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started

	resp, data := postLayout(t, ts.URL, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d body %s, want 429", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body %q is not a JSON error", data)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("stalled request finished with %d", code)
	}
	if s.met.shed.Value() != 1 {
		t.Fatalf("shed counter = %d", s.met.shed.Value())
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func() {
		once.Do(func() { close(started) })
		<-release
	}
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4, Timeout: -1}, hook)
	body := layoutBody(t, testLayout(testConfig()))

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/detect", "text/plain", bytes.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining is observable immediately: healthz flips to 503 and new
	// detections are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postLayout(t, ts.URL, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("detect while draining: status %d, want 503", resp.StatusCode)
	}

	// The in-flight request must complete successfully, and only then
	// does Shutdown return.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	default:
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d", code)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestMalformedBodiesAnswer4xxAndServerKeepsServing(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4, MegatileFactor: 1}, nil)
	cases := []struct {
		name, body string
		status     int
	}{
		{"garbage", "not a layout at all", http.StatusBadRequest},
		{"empty", "", http.StatusBadRequest},
		{"empty bounds", "BOUNDS 0 0 0 0", http.StatusBadRequest},
		{"rect before bounds", "RECT 0 0 5 5", http.StatusBadRequest},
		{"oversized bounds", "BOUNDS 0 0 999999999 999999999", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postLayout(t, ts.URL, []byte(tc.body))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d body %s, want %d", resp.StatusCode, data, tc.status)
			}
			var e ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("body %q is not a JSON error", data)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/detect"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /detect: %d, want 405", resp.StatusCode)
		}
	}
	// After every rejection the daemon still serves real work.
	resp, data := postLayout(t, ts.URL, layoutBody(t, testLayout(testConfig())))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid request after rejections: %d %s", resp.StatusCode, data)
	}
}

func TestOversizedBodyAnswers413(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, MaxBodyBytes: 128}, nil)
	big := "BOUNDS 0 0 768 768\n" + strings.Repeat("RECT 1 1 2 2\n", 100)
	resp, data := postLayout(t, ts.URL, []byte(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d body %s, want 413", resp.StatusCode, data)
	}
}

// TestPanicBoundary pins the tentpole acceptance criterion: a panic in
// the detection stack becomes a 500 JSON error and the daemon keeps
// serving subsequent requests on the same worker.
func TestPanicBoundary(t *testing.T) {
	var panicOnce sync.Once
	hook := func() {
		shouldPanic := false
		panicOnce.Do(func() { shouldPanic = true })
		if shouldPanic {
			panic("injected kernel failure")
		}
	}
	logged := &lockedBuffer{}
	s, err := New(testModel(t), Config{
		Pool: 1, QueueDepth: 2, MegatileFactor: 1, ScoreThreshold: -1, IdleTrim: -1,
		Logger: slog.New(slog.NewTextHandler(logged, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.testHook = hook
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	body := layoutBody(t, testLayout(testConfig()))
	resp, data := postLayout(t, ts.URL, body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d body %s, want 500", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "injected kernel failure") {
		t.Fatalf("500 body %q does not carry the panic", data)
	}
	logText := logged.String()
	if !strings.Contains(logText, "injected kernel failure") {
		t.Fatal("panic stack was not logged")
	}
	if !strings.Contains(logText, "request_id=1") {
		t.Fatalf("panic report %q does not carry the request id", logText)
	}

	resp, data = postLayout(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status %d body %s", resp.StatusCode, data)
	}
	if out := decodeDetect(t, data); out.Count != len(out.Detections) {
		t.Fatalf("inconsistent response %+v", out)
	}
	if s.met.respServer.Value() != 1 {
		t.Fatalf("server error counter = %d", s.met.respServer.Value())
	}
}

func TestStatuszCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 4, MegatileFactor: 1}, nil)
	body := layoutBody(t, testLayout(testConfig()))
	for i := 0; i < 3; i++ {
		if resp, _ := postLayout(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	postLayout(t, ts.URL, []byte("garbage")) // one client error

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statusz %q: %v", data, err)
	}
	if st.Pool != 2 || st.QueueCapacity != 6 {
		t.Fatalf("pool/queue %d/%d, want 2/6", st.Pool, st.QueueCapacity)
	}
	if st.Requests != 4 || st.OK != 3 || st.ClientErrors != 1 {
		t.Fatalf("counters %+v", st)
	}
	if st.WorkspaceBytes <= 0 {
		t.Fatalf("workspace bytes %d after successful detections", st.WorkspaceBytes)
	}
	if st.LatencyAvgMS <= 0 || st.LatencyMaxMS < st.LatencyAvgMS {
		t.Fatalf("latency avg %v max %v", st.LatencyAvgMS, st.LatencyMaxMS)
	}
	if st.ScanWorkers < 1 {
		t.Fatalf("scan workers %d", st.ScanWorkers)
	}
}

// TestMetricsEndpoint pins the /metrics surface: exposition content
// type, the presence of every serve/pool/model family, and agreement
// between the Prometheus counters and the /statusz JSON derived from the
// same instruments.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4, MegatileFactor: 1}, nil)
	body := layoutBody(t, testLayout(testConfig()))
	for i := 0; i < 2; i++ {
		if resp, data := postLayout(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, data)
		}
	}
	postLayout(t, ts.URL, []byte("garbage")) // one 4xx

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE rhsd_serve_requests_total counter",
		"rhsd_serve_requests_total 3",
		`rhsd_serve_responses_total{class="2xx"} 2`,
		`rhsd_serve_responses_total{class="4xx"} 1`,
		"# TYPE rhsd_serve_request_seconds histogram",
		"rhsd_serve_request_seconds_count 2",
		"rhsd_serve_queue_wait_seconds_count 2",
		"rhsd_serve_workspace_bytes",
		"# TYPE rhsd_pool_workers gauge",
		"rhsd_pool_runs_total",
		`rhsd_detect_stage_seconds_bucket{stage="backbone"`,
		"rhsd_detect_passes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// /statusz is derived from the same instruments; the two views must
	// agree on every shared counter.
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statusz %q: %v", data, err)
	}
	if st.Requests != 3 || st.OK != 2 || st.ClientErrors != 1 {
		t.Fatalf("statusz disagrees with /metrics: %+v", st)
	}
	if st.LatencyMaxMS <= 0 {
		t.Fatalf("histogram-derived max latency %v", st.LatencyMaxMS)
	}

	// pprof stays off unless asked for.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: %d, want 404", resp.StatusCode)
	}
}

func TestPprofEnabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, EnablePprof: true}, nil)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline with EnablePprof: %d", resp.StatusCode)
	}
}

func TestIdleTrimReleasesWorkspaces(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, MegatileFactor: 1, IdleTrim: 20 * time.Millisecond}, nil)
	body := layoutBody(t, testLayout(testConfig()))
	if resp, data := postLayout(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("request failed: %s", data)
	}
	// A positive footprint right after the request is asserted by
	// TestStatuszCounters (no trim loop there); here the trim may fire
	// before we can observe it, so only the end state is checked: the
	// worker's workspace drains to zero once the server sits idle.
	deadline := time.Now().Add(5 * time.Second)
	for s.workers[0].footprint.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle trim never ran; footprint still %d bytes", s.workers[0].footprint.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1}, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}
}
