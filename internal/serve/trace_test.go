package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"rhsd/internal/telemetry"
)

// TestDetectProducesRetrievableTrace is the serve-level contract of the
// flight recorder: a /detect response names its trace, and the trace is
// retrievable with the queue-wait, parse, scan and megatile structure
// plus the /statusz scan-history join.
func TestDetectProducesRetrievableTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1}, nil)
	body := layoutBody(t, testLayout(testConfig()))

	resp, data := postLayout(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: status %d: %s", resp.StatusCode, data)
	}
	out := decodeDetect(t, data)
	if len(out.TraceID) != 32 {
		t.Fatalf("trace_id %q, want 32 hex digits", out.TraceID)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != out.TraceID {
		t.Fatalf("X-Trace-Id %q != body trace_id %q", got, out.TraceID)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.Contains(tp, out.TraceID) {
		t.Fatalf("traceparent header %q lacks the trace id", tp)
	}

	// Listing and fetch, by trace id and by request id.
	r, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(blob), out.TraceID) {
		t.Fatalf("traces list (status %d) lacks %s: %s", r.StatusCode, out.TraceID, blob)
	}
	r, err = http.Get(ts.URL + "/traces/" + out.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d: %s", r.StatusCode, blob)
	}
	var td telemetry.TraceData
	if err := json.Unmarshal(blob, &td); err != nil {
		t.Fatalf("trace fetch: decoding %q: %v", blob, err)
	}
	if !td.Complete || td.Root.Name != "detect" {
		t.Fatalf("trace complete=%v root=%q, want a complete detect trace", td.Complete, td.Root.Name)
	}
	names := map[string]int{}
	for _, c := range td.Root.Children {
		names[c.Name]++
	}
	for _, want := range []string{"queue_wait", "parse", "scan"} {
		if names[want] != 1 {
			t.Fatalf("root children %v, want one %q", names, want)
		}
	}
	megatiles := 0
	for _, c := range td.Root.Children {
		if c.Name != "scan" {
			continue
		}
		for _, mt := range c.Children {
			if mt.Name == "megatile" {
				megatiles++
			}
		}
	}
	if megatiles < 1 {
		t.Fatalf("scan span has no megatile children: %+v", td.Root)
	}

	// Scan history joins the scan id to the trace id.
	r, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(r.Body)
	r.Body.Close()
	var st Status
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if st.Build.GoVersion == "" || st.Build.GemmKernel == "" {
		t.Fatalf("statusz build info incomplete: %+v", st.Build)
	}
	if st.TraceCapacity != 32 || st.TracesRetained < 1 {
		t.Fatalf("statusz recorder retained=%d capacity=%d", st.TracesRetained, st.TraceCapacity)
	}
	joined := false
	for _, e := range st.ScanHistory {
		if e.ScanID == out.ScanID && e.TraceID == out.TraceID {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("scan history %+v lacks scan %d ↔ trace %s", st.ScanHistory, out.ScanID, out.TraceID)
	}

	// Text rendering by request id.
	r, err = http.Get(ts.URL + "/traces/" + td.RequestID + "?format=txt")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(blob), "megatile") {
		t.Fatalf("trace txt (status %d): %s", r.StatusCode, blob)
	}
}

func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, FlightRecorder: -1}, nil)
	resp, data := postLayout(t, ts.URL, layoutBody(t, testLayout(testConfig())))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: status %d: %s", resp.StatusCode, data)
	}
	if out := decodeDetect(t, data); out.TraceID != "" {
		t.Fatalf("trace_id %q with tracing disabled", out.TraceID)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id %q with tracing disabled", got)
	}
	for _, path := range []string{"/traces", "/traces/deadbeef"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404 with tracing disabled", path, r.StatusCode)
		}
	}
}

// TestTraceCompletesAfterTimeout pins the 504 contract: the handler
// answers without completing the trace; the scan goroutine completes it
// when the worker finishes, so the trace still lands in the recorder.
func TestTraceCompletesAfterTimeout(t *testing.T) {
	stall := make(chan struct{})
	_, ts := newTestServer(t, Config{Pool: 1, Timeout: 50 * time.Millisecond},
		func() { <-stall })
	resp, data := postLayout(t, ts.URL, layoutBody(t, testLayout(testConfig())))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled detect: status %d: %s", resp.StatusCode, data)
	}
	reqID := resp.Header.Get("X-Request-Id")
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("504 response X-Trace-Id %q, want a trace id", traceID)
	}
	close(stall)
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			var td telemetry.TraceData
			if err := json.Unmarshal(blob, &td); err != nil {
				t.Fatal(err)
			}
			if !td.Complete || td.RequestID != reqID {
				t.Fatalf("timed-out trace complete=%v request=%q, want complete %q",
					td.Complete, td.RequestID, reqID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed after the 504 (last status %d)", traceID, r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSlowScanLogging(t *testing.T) {
	var logs lockedBuffer
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	_, ts := newTestServer(t, Config{Pool: 1, SlowScan: time.Nanosecond, Logger: logger}, nil)
	resp, data := postLayout(t, ts.URL, layoutBody(t, testLayout(testConfig())))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: status %d: %s", resp.StatusCode, data)
	}
	out := decodeDetect(t, data)
	// The slow-scan dump is written by the scan goroutine right before
	// the response is released, but flushes through slog asynchronously
	// to this goroutine's view only in the sense of buffer writes; poll
	// briefly to be safe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		text := logs.String()
		if strings.Contains(text, "slow scan") && strings.Contains(text, out.TraceID) {
			if !strings.Contains(text, "worst_span=megatile") {
				t.Fatalf("slow-scan log lacks the worst megatile: %s", text)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-scan log for trace %s: %s", out.TraceID, text)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceParentAdopted checks the W3C propagation path end to end
// through the HTTP layer.
func TestTraceParentAdopted(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1}, nil)
	const inbound = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/detect",
		bytes.NewReader(layoutBody(t, testLayout(testConfig()))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: status %d", resp.StatusCode)
	}
	const wantID = "0af7651916cd43dd8448eb211c80319c"
	if got := resp.Header.Get("X-Trace-Id"); got != wantID {
		t.Fatalf("X-Trace-Id %q, want the inbound trace id", got)
	}
	out := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(out, "00-"+wantID+"-") || strings.Contains(out, "b7ad6b7169203331") {
		t.Fatalf("outbound traceparent %q: want inbound trace id with a fresh span id", out)
	}
	r, err := http.Get(ts.URL + "/traces/" + wantID)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("adopted trace not retained: status %d", r.StatusCode)
	}
	var td telemetry.TraceData
	if err := json.Unmarshal(blob, &td); err != nil {
		t.Fatal(err)
	}
	if td.ParentSpanID != "b7ad6b7169203331" {
		t.Fatalf("parent span id %q, want the inbound span", td.ParentSpanID)
	}
}
