package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"rhsd/internal/cpu"
	"rhsd/internal/telemetry"
	"rhsd/internal/tensor"
)

// This file holds the serve-side half of the request-trace flight
// recorder (DESIGN.md §18): the GET /traces endpoints, slow-scan
// structured logging, and the rhsd_build_info gauge that stamps every
// exposition with the exact kernels the pool dispatches to.

// BuildInfo identifies the serving binary and its dispatched kernels —
// the same facts as the rhsd_build_info gauge labels, surfaced on
// /statusz so one curl answers "what exactly is this host running".
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// CPUFeatures is the detected instruction-set list, joined with "+"
	// (e.g. "avx2+fma+sse2"), matching the benchmark report format.
	CPUFeatures string `json:"cpu_features"`
	// GemmKernel / QGemmKernel are the fp32 and int8 GEMM micro-kernels
	// runtime dispatch selected on this host.
	GemmKernel  string `json:"gemm_kernel"`
	QGemmKernel string `json:"qgemm_kernel"`
	// Precision is the pool-wide numeric path; Int8Armed reports whether
	// startup calibration armed the int8 trunk.
	Precision string `json:"precision"`
	Int8Armed bool   `json:"int8_armed"`
}

// buildInfo assembles the server's identity facts. Kernel names are read
// once here, not per scrape: dispatch is fixed after init, and the pool's
// precision is fixed after New.
func (s *Server) buildInfo() BuildInfo {
	return BuildInfo{
		GoVersion:   runtime.Version(),
		CPUFeatures: strings.Join(cpu.X86.FeatureList(), "+"),
		GemmKernel:  tensor.GemmKernel(),
		QGemmKernel: tensor.QGemmKernel(),
		Precision:   s.defaultPrecision,
		Int8Armed:   s.int8Armed,
	}
}

// registerBuildInfo exposes bi as the constant-1 rhsd_build_info gauge,
// the standard Prometheus idiom for joining version facts onto any other
// series by label.
func registerBuildInfo(reg *telemetry.Registry, bi BuildInfo) {
	labels := fmt.Sprintf(
		`go_version=%q,cpu=%q,gemm_kernel=%q,qgemm_kernel=%q,precision=%q,int8_armed=%q`,
		bi.GoVersion, bi.CPUFeatures, bi.GemmKernel, bi.QGemmKernel,
		bi.Precision, fmt.Sprint(bi.Int8Armed))
	reg.NewGaugeFunc("rhsd_build_info",
		"Build and dispatch identity; constant 1, information is in the labels.",
		labels, func() int64 { return 1 })
}

// handleTraces lists the flight recorder's retained traces, newest
// first, as JSON summaries (trace id, request id, duration, span count).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		s.fail(w, http.StatusNotFound, "tracing disabled (start with FlightRecorder >= 0)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.rec.Cap(),
		"traces":   s.rec.Traces(),
	})
}

// handleTrace serves one retained trace: GET /traces/{id} (trace id or
// request id) as the full span tree in JSON, or with ?format=txt as an
// aligned text tree for humans.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		s.fail(w, http.StatusNotFound, "tracing disabled (start with FlightRecorder >= 0)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if id == "" || strings.Contains(id, "/") {
		s.fail(w, http.StatusBadRequest, "want /traces/{trace_id or request_id}")
		return
	}
	data, ok := s.rec.Trace(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no retained trace %q (the recorder keeps the last %d)",
			id, s.rec.Cap())
		return
	}
	if r.URL.Query().Get("format") == "txt" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		data.RenderText(w)
		return
	}
	writeJSON(w, http.StatusOK, data)
}

// finishTrace stamps the scan outcome on the root span, completes the
// trace into the recorder's ring, and emits the slow-scan dump when the
// detection exceeded the configured threshold. Runs in the scan
// goroutine — the only place where no span handle can still be live.
func (s *Server) finishTrace(tr *telemetry.Trace, out scanOutcome, err error, elapsed time.Duration) {
	if tr == nil {
		return
	}
	root := tr.Root()
	if err != nil {
		root.SetAttrStr("outcome", "panic")
	} else {
		root.SetAttr("detections", int64(len(out.dets)))
		if out.scanID > 0 {
			root.SetAttr("scan_id", out.scanID)
		}
	}
	// Snapshot before Complete: once the trace is in the ring a later
	// completion may evict and recycle its spans at any time.
	slow := err == nil && s.cfg.SlowScan > 0 && elapsed >= s.cfg.SlowScan
	var snap telemetry.TraceData
	if slow {
		snap = tr.Snapshot()
	}
	tr.Complete()
	if slow {
		s.logSlowScan(snap, elapsed)
	}
}

// logSlowScan reports a slow detection with the worst megatile chain:
// the longest megatile/tile span under the scan span, its cache outcome
// and worker, and the stage child that dominated it.
func (s *Server) logSlowScan(snap telemetry.TraceData, elapsed time.Duration) {
	args := []any{
		"trace_id", snap.TraceID,
		"request_id", snap.RequestID,
		"elapsed_ms", float64(elapsed.Nanoseconds()) / 1e6,
		"spans", snap.Spans,
		"threshold_ms", float64(s.cfg.SlowScan.Nanoseconds()) / 1e6,
	}
	if worst, ok := worstWorkSpan(snap.Root); ok {
		args = append(args,
			"worst_span", worst.Name,
			"worst_ms", float64(worst.DurationNs)/1e6)
		for _, a := range worst.Attrs {
			if a.Str != "" {
				args = append(args, "worst_"+a.Key, a.Str)
			} else {
				args = append(args, "worst_"+a.Key, a.Val)
			}
		}
		if stage, ok := longestChild(worst); ok {
			args = append(args,
				"worst_stage", stage.Name,
				"worst_stage_ms", float64(stage.DurationNs)/1e6)
		}
	}
	s.log.Warn("slow scan", args...)
}

// worstWorkSpan finds the longest megatile/tile span anywhere in the
// tree (they only occur under scan/rescan spans).
func worstWorkSpan(sp telemetry.SpanData) (telemetry.SpanData, bool) {
	var best telemetry.SpanData
	found := false
	var walk func(telemetry.SpanData)
	walk = func(s telemetry.SpanData) {
		if (s.Name == "megatile" || s.Name == "tile") &&
			(!found || s.DurationNs > best.DurationNs) {
			best, found = s, true
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(sp)
	return best, found
}

// longestChild returns sp's longest direct child span.
func longestChild(sp telemetry.SpanData) (telemetry.SpanData, bool) {
	var best telemetry.SpanData
	found := false
	for _, c := range sp.Children {
		if !found || c.DurationNs > best.DurationNs {
			best, found = c, true
		}
	}
	return best, found
}
