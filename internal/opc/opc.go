// Package opc implements rule-based optical proximity correction on top
// of the litho proxy — the mask-side counterpart of hotspot detection.
// The paper positions its detector inside the DFM loop whose fixing step
// is OPC (its own citations include GAN-OPC); this package closes that
// loop for the synthetic substrate: detected-hotspot neighbourhoods can
// be corrected and re-verified with the same simulator that labelled
// them.
//
// The algorithm is classic iterative edge biasing: rasterize, simulate
// the print, measure the signed edge error of each rectangle edge at its
// midpoint band, and move under-printing edges outward (or over-printing
// edges inward) by one correction step; repeat. Corrections are applied
// per rectangle edge, which is exact for the Manhattan geometry the
// benchmarks use.
package opc

import (
	"fmt"

	"rhsd/internal/layout"
	"rhsd/internal/litho"
	"rhsd/internal/tensor"
)

// Config controls the correction loop.
type Config struct {
	// Iterations of measure-and-bias.
	Iterations int
	// StepNM is the edge move per iteration.
	StepNM int
	// MaxBiasNM bounds the total movement of any edge.
	MaxBiasNM int
	// Dose at which edges are evaluated (nominal 1.0; evaluate at the
	// worst process corner to harden the pattern).
	Dose float64
	// MinWidthNM refuses corrections that would shrink a shape below this
	// width (mask rule check).
	MinWidthNM int
}

// DefaultConfig returns a conservative correction recipe matched to the
// benchmark geometry.
func DefaultConfig() Config {
	return Config{
		Iterations: 4,
		StepNM:     4,
		MaxBiasNM:  16,
		Dose:       1.0,
		MinWidthNM: 16,
	}
}

// Result summarizes one correction run.
type Result struct {
	// Corrected is the biased layout (the input is not modified).
	Corrected *layout.Layout
	// EPEBefore/EPEAfter are mean |EPE| in nm at the evaluation dose.
	EPEBefore float64
	EPEAfter  float64
	// MovedEdges counts edge adjustments applied over all iterations.
	MovedEdges int
}

// edgeBias tracks the accumulated bias of each rectangle's four edges.
type edgeBias struct {
	left, right, top, bottom int
}

// Correct runs iterative edge biasing on the layout within its bounds and
// returns the corrected copy with before/after EPE.
func Correct(l *layout.Layout, m litho.Model, c Config) Result {
	if c.Iterations <= 0 || c.StepNM <= 0 {
		panic(fmt.Sprintf("opc: invalid config %+v", c))
	}
	biases := make([]edgeBias, len(l.Rects))
	res := Result{}

	apply := func() *layout.Layout {
		out := layout.New(l.Bounds)
		for i, r := range l.Rects {
			b := biases[i]
			out.Add(layout.R(r.X0-b.left, r.Y0-b.top, r.X1+b.right, r.Y1+b.bottom))
		}
		return out
	}

	measure := func(lay *layout.Layout) (*tensor.Tensor, *tensor.Tensor) {
		mask := lay.Rasterize(l.Bounds, m.PitchNM)
		printed := m.Print(m.Aerial(mask), c.Dose)
		return mask, printed
	}

	// Baseline EPE of the *intended* geometry vs its own print.
	intendedMask := l.Rasterize(l.Bounds, m.PitchNM)
	printed0 := m.Print(m.Aerial(intendedMask), c.Dose)
	res.EPEBefore = m.EPE(intendedMask, printed0, 16).MeanNM

	for it := 0; it < c.Iterations; it++ {
		cur := apply()
		_, printed := measure(cur)
		moved := false
		for i, r := range l.Rects {
			b := &biases[i]
			// Evaluate the print at each edge's midpoint, just inside the
			// intended shape: if the print is missing there, bias the edge
			// outward; if the print bleeds outside the midpoint just
			// beyond the edge, bias inward.
			cx := (r.X0 + r.X1) / 2
			cy := (r.Y0 + r.Y1) / 2
			type probe struct {
				insideX, insideY   int
				outsideX, outsideY int
				bias               *int
			}
			probes := []probe{
				{r.X0 - b.left + c.StepNM, cy, r.X0 - b.left - c.StepNM, cy, &b.left},
				{r.X1 + b.right - c.StepNM, cy, r.X1 + b.right + c.StepNM, cy, &b.right},
				{cx, r.Y0 - b.top + c.StepNM, cx, r.Y0 - b.top - c.StepNM, &b.top},
				{cx, r.Y1 + b.bottom - c.StepNM, cx, r.Y1 + b.bottom + c.StepNM, &b.bottom},
			}
			for _, p := range probes {
				if *p.bias >= c.MaxBiasNM {
					continue
				}
				in := sampleAt(printed, m.PitchNM, l.Bounds, p.insideX, p.insideY)
				outv := sampleAt(printed, m.PitchNM, l.Bounds, p.outsideX, p.outsideY)
				switch {
				case in < 0.5:
					// Under-printing: grow the mask edge outward.
					*p.bias += c.StepNM
					moved = true
					res.MovedEdges++
				case outv >= 0.5 && *p.bias > -c.MaxBiasNM && shrinkOK(r, *b, c):
					// Over-printing past the edge: pull the mask inward.
					*p.bias -= c.StepNM
					moved = true
					res.MovedEdges++
				}
			}
		}
		if !moved {
			break
		}
	}
	res.Corrected = apply()
	_, printedAfter := measure(res.Corrected)
	res.EPEAfter = m.EPE(intendedMask, printedAfter, 16).MeanNM
	return res
}

// shrinkOK checks the mask rule: shrinking must not push the shape below
// the minimum width in either axis.
func shrinkOK(r layout.Rect, b edgeBias, c Config) bool {
	w := r.W() + b.left + b.right - c.StepNM
	h := r.H() + b.top + b.bottom - c.StepNM
	return w >= c.MinWidthNM && h >= c.MinWidthNM
}

// sampleAt reads the printed raster at a layout coordinate (nm), returning
// 0 outside the window.
func sampleAt(printed *tensor.Tensor, pitch float64, bounds layout.Rect, x, y int) float32 {
	px := int(float64(x-bounds.X0) / pitch)
	py := int(float64(y-bounds.Y0) / pitch)
	if px < 0 || py < 0 || py >= printed.Dim(1) || px >= printed.Dim(2) {
		return 0
	}
	return printed.At(0, py, px)
}
