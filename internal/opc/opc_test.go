package opc

import (
	"testing"

	"rhsd/internal/layout"
	"rhsd/internal/litho"
)

// marginalLine is a line narrow enough to print thin but not vanish.
func marginalLine() *layout.Layout {
	l := layout.New(layout.R(0, 0, 512, 512))
	l.Add(layout.R(240, 100, 268, 400)) // 28 nm line, prints with necking
	return l
}

func safePattern() *layout.Layout {
	l := layout.New(layout.R(0, 0, 512, 512))
	l.Add(layout.R(100, 100, 200, 400))
	l.Add(layout.R(300, 100, 400, 400))
	return l
}

func TestCorrectReducesEPEOnMarginalPattern(t *testing.T) {
	m := litho.DefaultModel()
	res := Correct(marginalLine(), m, DefaultConfig())
	if res.MovedEdges == 0 {
		t.Fatal("marginal pattern should trigger corrections")
	}
	if !(res.EPEAfter <= res.EPEBefore) {
		t.Fatalf("OPC made EPE worse: %.2f → %.2f nm", res.EPEBefore, res.EPEAfter)
	}
}

func TestCorrectLeavesSafePatternAlmostAlone(t *testing.T) {
	m := litho.DefaultModel()
	res := Correct(safePattern(), m, DefaultConfig())
	// Wide safe shapes may get small line-end treatments but must not be
	// rewritten wholesale: every corrected rect stays within MaxBias of
	// the original.
	cfg := DefaultConfig()
	orig := safePattern()
	for i, r := range res.Corrected.Rects {
		o := orig.Rects[i]
		if abs(r.X0-o.X0) > cfg.MaxBiasNM || abs(r.X1-o.X1) > cfg.MaxBiasNM ||
			abs(r.Y0-o.Y0) > cfg.MaxBiasNM || abs(r.Y1-o.Y1) > cfg.MaxBiasNM {
			t.Fatalf("rect %d moved beyond MaxBias: %v → %v", i, o, r)
		}
	}
}

func TestCorrectDoesNotModifyInput(t *testing.T) {
	m := litho.DefaultModel()
	l := marginalLine()
	before := append([]layout.Rect(nil), l.Rects...)
	Correct(l, m, DefaultConfig())
	for i := range before {
		if l.Rects[i] != before[i] {
			t.Fatal("input layout mutated")
		}
	}
}

func TestCorrectRespectsMaskRules(t *testing.T) {
	m := litho.DefaultModel()
	c := DefaultConfig()
	res := Correct(marginalLine(), m, c)
	for _, r := range res.Corrected.Rects {
		if r.W() < c.MinWidthNM || r.H() < c.MinWidthNM {
			t.Fatalf("mask rule violated: %v", r)
		}
	}
}

func TestCorrectBoundsTotalBias(t *testing.T) {
	m := litho.DefaultModel()
	c := DefaultConfig()
	c.Iterations = 20 // many iterations; bias still bounded
	orig := marginalLine()
	res := Correct(orig, m, c)
	for i, r := range res.Corrected.Rects {
		o := orig.Rects[i]
		for _, d := range []int{abs(r.X0 - o.X0), abs(r.X1 - o.X1), abs(r.Y0 - o.Y0), abs(r.Y1 - o.Y1)} {
			if d > c.MaxBiasNM+c.StepNM {
				t.Fatalf("bias exceeded bound: %v → %v", o, r)
			}
		}
	}
}

func TestCorrectPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Correct(marginalLine(), litho.DefaultModel(), Config{})
}

func TestCorrectHelpsProcessWindow(t *testing.T) {
	// The corrected marginal line should fail at fewer process corners
	// (or at worst the same) than the uncorrected one.
	m := litho.DefaultModel()
	orig := marginalLine()
	res := Correct(orig, m, DefaultConfig())
	before := failCount(m, orig)
	after := failCount(m, res.Corrected)
	if after > before {
		t.Fatalf("OPC increased failures: %d → %d", before, after)
	}
}

func failCount(m litho.Model, l *layout.Layout) int {
	total := 0
	for _, h := range m.Simulate(l, l.Bounds) {
		total += h.Pixels
	}
	return total
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
