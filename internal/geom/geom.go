// Package geom provides the rectangle arithmetic used throughout the
// hotspot-detection pipeline: clip boxes, Intersection-over-Union (Eq. 2),
// the core-region IoU used by hotspot non-maximum suppression (§3.2.2) and
// the box coordinate encoding of Eq. 3.
//
// Rectangles are axis-aligned with float64 coordinates in whatever unit the
// caller chooses (nanometres for layout geometry, pixels for raster space).
package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle spanning [X0,X1) × [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectCWH builds a rectangle from its center and size.
func RectCWH(cx, cy, w, h float64) Rect {
	return Rect{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2, Y1: cy + h/2}
}

// W returns the width (may be negative for an invalid rect).
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// CX returns the x coordinate of the center.
func (r Rect) CX() float64 { return (r.X0 + r.X1) / 2 }

// CY returns the y coordinate of the center.
func (r Rect) CY() float64 { return (r.Y0 + r.Y1) / 2 }

// Area returns the area, or 0 if the rectangle is empty/inverted.
func (r Rect) Area() float64 {
	w, h := r.W(), r.H()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	return o.X0 >= r.X0 && o.Y0 >= r.Y0 && o.X1 <= r.X1 && o.Y1 <= r.Y1
}

// Intersect returns the overlapping region of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		X0: math.Max(r.X0, o.X0),
		Y0: math.Max(r.Y0, o.Y0),
		X1: math.Min(r.X1, o.X1),
		Y1: math.Min(r.Y1, o.Y1),
	}
}

// Disjoint reports whether r and o share no interior area. Disjoint
// rectangles have IoU exactly 0 (and so do their cores, which are
// subsets), which makes this the quick-reject test for the NMS inner
// loops: four comparisons instead of an Intersect + area arithmetic.
func (r Rect) Disjoint(o Rect) bool {
	return r.X1 <= o.X0 || o.X1 <= r.X0 || r.Y1 <= o.Y0 || o.Y1 <= r.Y0
}

// Union returns the bounding box of r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		X0: math.Min(r.X0, o.X0),
		Y0: math.Min(r.Y0, o.Y0),
		X1: math.Max(r.X1, o.X1),
		Y1: math.Max(r.Y1, o.Y1),
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// Scale returns r with all coordinates multiplied by s (spatial rescale,
// used when mapping clip coordinates onto a downsampled feature map).
func (r Rect) Scale(s float64) Rect {
	return Rect{X0: r.X0 * s, Y0: r.Y0 * s, X1: r.X1 * s, Y1: r.Y1 * s}
}

// Clip returns r clamped to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect {
	return r.Intersect(bounds)
}

// Core returns the middle-third core region of the clip, the area where a
// hotspot must lie for the clip to count as a correct detection ("The core
// region applied in this paper is the middle third region of the clip",
// §2).
func (r Rect) Core() Rect {
	w3, h3 := r.W()/3, r.H()/3
	return Rect{X0: r.X0 + w3, Y0: r.Y0 + h3, X1: r.X1 - w3, Y1: r.Y1 - h3}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.X0, r.Y0, r.W(), r.H())
}

// IoU computes Intersection over Union (Eq. 2). It returns 0 when either
// rectangle is empty.
func IoU(a, b Rect) float64 {
	inter := a.Intersect(b).Area()
	if inter == 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// CoreIoU computes the IoU of the two clips' core regions, the overlap
// measure used by hotspot non-maximum suppression (Centre_IoU in Alg. 1).
// Keying suppression on cores rather than whole clips prevents the "error
// dropout" of Figure 5, where a clip covering a distinct hotspot is
// discarded merely because its outer ring overlaps a higher-scoring clip.
func CoreIoU(a, b Rect) float64 {
	return IoU(a.Core(), b.Core())
}

// BoxEncoding holds the encoded regression target l = {lx, ly, lw, lh} of
// Eq. 3 relative to an anchor (g-clip) box.
type BoxEncoding struct {
	LX, LY, LW, LH float64
}

// Encode computes the Eq. 3 encoding of box relative to anchor:
//
//	lx = (x - xg)/wg,  ly = (y - yg)/hg,
//	lw = log(w/wg),    lh = log(h/hg).
//
// The anchor must have positive width and height.
func Encode(box, anchor Rect) BoxEncoding {
	wg, hg := anchor.W(), anchor.H()
	if wg <= 0 || hg <= 0 {
		panic(fmt.Sprintf("geom: Encode against degenerate anchor %v", anchor))
	}
	w, h := box.W(), box.H()
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("geom: Encode of degenerate box %v", box))
	}
	return BoxEncoding{
		LX: (box.CX() - anchor.CX()) / wg,
		LY: (box.CY() - anchor.CY()) / hg,
		LW: math.Log(w / wg),
		LH: math.Log(h / hg),
	}
}

// Decode inverts Encode: it applies the regression deltas to the anchor.
func Decode(enc BoxEncoding, anchor Rect) Rect {
	wg, hg := anchor.W(), anchor.H()
	cx := enc.LX*wg + anchor.CX()
	cy := enc.LY*hg + anchor.CY()
	w := math.Exp(enc.LW) * wg
	h := math.Exp(enc.LH) * hg
	return RectCWH(cx, cy, w, h)
}

// Vec4 returns the encoding as a [4]float64 in (lx, ly, lw, lh) order,
// matching the regression-head channel layout.
func (e BoxEncoding) Vec4() [4]float64 { return [4]float64{e.LX, e.LY, e.LW, e.LH} }

// EncodingFromVec4 rebuilds a BoxEncoding from the channel layout.
func EncodingFromVec4(v [4]float64) BoxEncoding {
	return BoxEncoding{LX: v[0], LY: v[1], LW: v[2], LH: v[3]}
}
