package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randRect draws a well-formed rectangle with positive area.
func randRect(rng *rand.Rand) Rect {
	x0 := rng.Float64()*100 - 50
	y0 := rng.Float64()*100 - 50
	return Rect{X0: x0, Y0: y0, X1: x0 + 1 + rng.Float64()*40, Y1: y0 + 1 + rng.Float64()*40}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 5, Y1: 10}
	if r.W() != 4 || r.H() != 8 || r.Area() != 32 {
		t.Fatalf("basics: w=%v h=%v a=%v", r.W(), r.H(), r.Area())
	}
	if r.CX() != 3 || r.CY() != 6 {
		t.Fatalf("center: %v %v", r.CX(), r.CY())
	}
	if !r.Contains(1, 2) || r.Contains(5, 10) {
		t.Fatal("half-open containment wrong")
	}
	if r.Empty() {
		t.Fatal("non-degenerate rect reported empty")
	}
}

func TestRectCWHInverse(t *testing.T) {
	r := RectCWH(10, 20, 6, 8)
	if r.CX() != 10 || r.CY() != 20 || r.W() != 6 || r.H() != 8 {
		t.Fatalf("RectCWH roundtrip: %v", r)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	i := a.Intersect(b)
	if i.Area() != 25 {
		t.Fatalf("intersect area %v", i.Area())
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Fatalf("union %v", u)
	}
	disjoint := a.Intersect(Rect{20, 20, 30, 30})
	if !disjoint.Empty() || disjoint.Area() != 0 {
		t.Fatal("disjoint intersect must be empty")
	}
}

func TestTranslateScaleClip(t *testing.T) {
	r := Rect{0, 0, 4, 4}
	if r.Translate(1, 2) != (Rect{1, 2, 5, 6}) {
		t.Fatal("translate")
	}
	if r.Scale(0.5) != (Rect{0, 0, 2, 2}) {
		t.Fatal("scale")
	}
	if r.Clip(Rect{1, 1, 3, 3}) != (Rect{1, 1, 3, 3}) {
		t.Fatal("clip")
	}
}

func TestCoreIsMiddleThird(t *testing.T) {
	r := Rect{0, 0, 9, 9}
	c := r.Core()
	if c != (Rect{3, 3, 6, 6}) {
		t.Fatalf("core %v", c)
	}
	// The hotspot-correctness rule: a point in the middle third.
	if !c.Contains(4.5, 4.5) || c.Contains(1, 1) {
		t.Fatal("core containment wrong")
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if IoU(a, a) != 1 {
		t.Fatal("self IoU must be 1")
	}
	b := Rect{5, 0, 15, 10}
	// inter 50, union 150.
	if !almostEq(IoU(a, b), 1.0/3.0, 1e-12) {
		t.Fatalf("IoU %v", IoU(a, b))
	}
	if IoU(a, Rect{20, 20, 30, 30}) != 0 {
		t.Fatal("disjoint IoU must be 0")
	}
}

func TestIoUProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		iou := IoU(a, b)
		// Bounded, symmetric.
		if iou < 0 || iou > 1 {
			return false
		}
		if !almostEq(iou, IoU(b, a), 1e-12) {
			return false
		}
		// Translation invariance.
		dx, dy := rng.Float64()*10, rng.Float64()*10
		if !almostEq(iou, IoU(a.Translate(dx, dy), b.Translate(dx, dy)), 1e-9) {
			return false
		}
		// Containment ⇒ IoU = areaRatio.
		inner := Rect{a.X0 + a.W()/4, a.Y0 + a.H()/4, a.X1 - a.W()/4, a.Y1 - a.H()/4}
		if !almostEq(IoU(a, inner), inner.Area()/a.Area(), 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreIoUBoundsAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		c := CoreIoU(a, b)
		return c >= 0 && c <= 1 && almostEq(c, CoreIoU(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreIoUFigure5Scenario(t *testing.T) {
	// Two clips whose outer rings overlap heavily but whose cores are
	// disjoint: conventional NMS (whole-clip IoU 0.7) would drop one, h-NMS
	// must keep both.
	a := Rect{0, 0, 12, 12}
	b := Rect{7, 0, 19, 12} // shifted so cores [4,8] vs [11,15] are disjoint
	if IoU(a, b) <= 0.2 {
		t.Fatalf("scenario needs meaningful clip overlap, got %v", IoU(a, b))
	}
	if CoreIoU(a, b) != 0 {
		t.Fatalf("cores should be disjoint, got %v", CoreIoU(a, b))
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		anchor := randRect(rng)
		box := randRect(rng)
		enc := Encode(box, anchor)
		dec := Decode(enc, anchor)
		return almostEq(dec.X0, box.X0, 1e-7) && almostEq(dec.Y0, box.Y0, 1e-7) &&
			almostEq(dec.X1, box.X1, 1e-7) && almostEq(dec.Y1, box.Y1, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIdentity(t *testing.T) {
	// Encoding a box against itself is all zeros (Eq. 3 with x=xg etc.).
	r := Rect{3, 4, 13, 24}
	e := Encode(r, r)
	if e.LX != 0 || e.LY != 0 || e.LW != 0 || e.LH != 0 {
		t.Fatalf("self-encode should be zero: %+v", e)
	}
}

func TestEncodeKnownShift(t *testing.T) {
	anchor := Rect{0, 0, 10, 10}
	box := anchor.Translate(5, 0) // shifted by half an anchor width
	e := Encode(box, anchor)
	if !almostEq(e.LX, 0.5, 1e-12) || e.LY != 0 || e.LW != 0 || e.LH != 0 {
		t.Fatalf("shift encode: %+v", e)
	}
	// Doubling size: lw = ln 2.
	big := RectCWH(anchor.CX(), anchor.CY(), 20, 10)
	e2 := Encode(big, anchor)
	if !almostEq(e2.LW, math.Ln2, 1e-12) || e2.LH != 0 {
		t.Fatalf("scale encode: %+v", e2)
	}
}

func TestEncodePanicsOnDegenerateAnchor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(Rect{0, 0, 1, 1}, Rect{0, 0, 0, 1})
}

func TestVec4Roundtrip(t *testing.T) {
	e := BoxEncoding{LX: 1, LY: 2, LW: 3, LH: 4}
	if EncodingFromVec4(e.Vec4()) != e {
		t.Fatal("Vec4 roundtrip")
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(Rect{1, 1, 9, 9}) || outer.ContainsRect(Rect{5, 5, 11, 9}) {
		t.Fatal("ContainsRect wrong")
	}
}

func TestDecodeProducesValidBoxesForModerateDeltas(t *testing.T) {
	// Property: decoding bounded regression outputs from a sane anchor
	// always yields a positive-area box (exp keeps sizes positive).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		anchor := geomRandRect(rng)
		enc := BoxEncoding{
			LX: rng.Float64()*4 - 2,
			LY: rng.Float64()*4 - 2,
			LW: rng.Float64()*4 - 2,
			LH: rng.Float64()*4 - 2,
		}
		box := Decode(enc, anchor)
		return box.W() > 0 && box.H() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func geomRandRect(rng *rand.Rand) Rect { return randRect(rng) }

func TestCoreOfCoreShrinks(t *testing.T) {
	r := Rect{0, 0, 27, 27}
	c1 := r.Core()
	c2 := c1.Core()
	if !c1.ContainsRect(c2) || !r.ContainsRect(c1) {
		t.Fatal("core nesting broken")
	}
	if c2.W() != 3 {
		t.Fatalf("double core width %v want 3", c2.W())
	}
}

func TestIntersectCommutesAndIsIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab != ba {
			return false
		}
		// Intersecting again with either operand is a no-op when non-empty.
		if !ab.Empty() && ab.Intersect(a) != ab {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
