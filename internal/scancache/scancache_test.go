package scancache

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rhsd/internal/telemetry"
)

// intsCache builds the cache instantiation the tests share: []int64
// values, 8 bytes per element, slice-clone copies.
func intsCache(maxBytes int64) *Cache[[]int64] {
	return New(maxBytes,
		func(v []int64) int64 { return int64(len(v)) * 8 },
		func(v []int64) []int64 { return append([]int64(nil), v...) })
}

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestGetOrComputeCachesAndCounts(t *testing.T) {
	c := intsCache(0)
	calls := 0
	compute := func() []int64 { calls++; return []int64{1, 2, 3} }

	v := c.GetOrCompute(key(1), compute)
	if len(v) != 3 || calls != 1 {
		t.Fatalf("first lookup: value %v, %d compute calls", v, calls)
	}
	v2 := c.GetOrCompute(key(1), compute)
	if calls != 1 {
		t.Fatalf("second lookup recomputed (%d calls)", calls)
	}
	if &v[0] == &v2[0] {
		t.Fatal("hit returned an aliased slice, want a defensive copy")
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("Get on an absent key reported a hit")
	}
	// Misses counts executed computes only; the absent-key Get above does
	// not count (see TestGetAbsentDoesNotCountMiss).
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Shared != 0 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestGetAbsentDoesNotCountMiss pins the accounting contract the
// concurrency hammer in internal/hsd relies on: Misses counts executed
// computes, and Get on an absent key counts nothing.
func TestGetAbsentDoesNotCountMiss(t *testing.T) {
	c := intsCache(0)
	if _, ok := c.Get(key(9)); ok {
		t.Fatal("phantom hit")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Shared != 0 {
		t.Fatalf("absent Get changed counters: %+v", st)
	}
}

func TestDefensiveCopyOnMissAndPut(t *testing.T) {
	c := intsCache(0)
	v := c.GetOrCompute(key(1), func() []int64 { return []int64{7, 7} })
	v[0] = 99 // caller mutates its copy
	got, ok := c.Get(key(1))
	if !ok || got[0] != 7 {
		t.Fatalf("cache entry corrupted by caller mutation: %v", got)
	}

	src := []int64{5}
	c.Put(key(2), src)
	src[0] = 42
	got, ok = c.Get(key(2))
	if !ok || got[0] != 5 {
		t.Fatalf("Put retained an aliased slice: %v", got)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	// Each 8-element entry costs 64 + entryOverheadBytes = 224; budget for
	// exactly two.
	c := intsCache(2 * (64 + entryOverheadBytes))
	mk := func(b byte) []int64 { return []int64{int64(b), 0, 0, 0, 0, 0, 0, 0} }
	c.Put(key(1), mk(1))
	c.Put(key(2), mk(2))
	c.Get(key(1)) // key 1 is now most recent; key 2 is LRU
	c.Put(key(3), mk(3))

	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU entry survived an over-budget insert")
	}
	for _, k := range []byte{1, 3} {
		if _, ok := c.Get(key(k)); !ok {
			t.Fatalf("recently used key %d was evicted", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 2*(64+entryOverheadBytes) {
		t.Fatalf("retained %d bytes, over budget", st.Bytes)
	}
}

func TestOversizedValueServedNotRetained(t *testing.T) {
	c := intsCache(100) // smaller than any entry incl. overhead
	v := c.GetOrCompute(key(1), func() []int64 { return []int64{1, 2, 3} })
	if len(v) != 3 {
		t.Fatalf("oversized value not served: %v", v)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized value retained: %+v", st)
	}
}

func TestPutReplacesExisting(t *testing.T) {
	c := intsCache(0)
	c.Put(key(1), []int64{1})
	c.Put(key(1), []int64{2, 3})
	got, ok := c.Get(key(1))
	if !ok || len(got) != 2 || got[0] != 2 {
		t.Fatalf("replacement not visible: %v", got)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 16+entryOverheadBytes {
		t.Fatalf("replacement double-counted: %+v", st)
	}
}

func TestPurge(t *testing.T) {
	c := intsCache(0)
	c.Put(key(1), []int64{1})
	c.Put(key(2), []int64{2})
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("purge left %+v", st)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("entry survived Purge")
	}
}

// TestSingleFlightDedup pins the dedup contract: N concurrent misses on
// one key run compute exactly once; one caller counts as the miss and
// the other N-1 as shared, and every caller gets the same value in its
// own copy.
func TestSingleFlightDedup(t *testing.T) {
	c := intsCache(0)
	const n = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	results := make([][]int64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i] = c.GetOrCompute(key(1), func() []int64 {
				computes.Add(1)
				return []int64{11, 22}
			})
		}(i)
	}
	close(gate)
	wg.Wait()

	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times for one key", computes.Load())
	}
	for i, r := range results {
		if len(r) != 2 || r[0] != 11 || r[1] != 22 {
			t.Fatalf("caller %d got %v", i, r)
		}
		for j := i + 1; j < n; j++ {
			if &r[0] == &results[j][0] {
				t.Fatalf("callers %d and %d share a slice", i, j)
			}
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits %d + shared %d, want %d non-computing lookups",
			st.Hits, st.Shared, n-1)
	}
}

// TestComputePanicReleasesWaiters: a panicking compute must propagate to
// its caller, cache nothing, and let a waiting caller take over the miss
// instead of deadlocking or consuming a zero value.
func TestComputePanicReleasesWaiters(t *testing.T) {
	c := intsCache(0)
	inPanic := make(chan struct{})
	waiterDone := make(chan []int64, 1)

	go func() {
		defer func() { recover() }()
		c.GetOrCompute(key(1), func() []int64 {
			close(inPanic)
			// Give the waiter time to join the flight before unwinding.
			for i := 0; i < 1000; i++ {
				c.Stats()
			}
			panic("scan blew up")
		})
	}()
	<-inPanic
	go func() {
		waiterDone <- c.GetOrCompute(key(1), func() []int64 { return []int64{5} })
	}()
	v := <-waiterDone
	if len(v) != 1 || v[0] != 5 {
		t.Fatalf("waiter after panic got %v", v)
	}
	if got, ok := c.Get(key(1)); !ok || got[0] != 5 {
		t.Fatalf("retry result not cached: %v ok=%v", got, ok)
	}
}

// TestConcurrentHammerExactCounts drives heavy mixed traffic and then
// checks the books exactly: every lookup is a hit, a miss or a shared
// wait, computes equal misses, and the retained set respects the budget.
func TestConcurrentHammerExactCounts(t *testing.T) {
	c := intsCache(0)
	const (
		goroutines = 8
		iters      = 300
		keys       = 17
	)
	var computes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := key(byte((g*31 + i) % keys))
				v := c.GetOrCompute(k, func() []int64 {
					computes.Add(1)
					return []int64{int64(k[0])}
				})
				if len(v) != 1 || v[0] != int64(k[0]) {
					t.Errorf("goroutine %d iter %d: got %v for key %d", g, i, v, k[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Misses != computes.Load() {
		t.Fatalf("misses %d != computes %d", st.Misses, computes.Load())
	}
	if total := st.Hits + st.Misses + st.Shared; total != goroutines*iters {
		t.Fatalf("hits+misses+shared = %d, want %d lookups", total, goroutines*iters)
	}
	if st.Entries != keys {
		t.Fatalf("retained %d entries, want %d", st.Entries, keys)
	}
}

func TestRegisterMetricsExposition(t *testing.T) {
	c := intsCache(0)
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)
	c.GetOrCompute(key(1), func() []int64 { return []int64{1} })
	c.GetOrCompute(key(1), func() []int64 { return []int64{1} })

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE rhsd_scancache_lookups_total counter",
		`rhsd_scancache_lookups_total{outcome="hit"} 1`,
		`rhsd_scancache_lookups_total{outcome="miss"} 1`,
		"rhsd_scancache_entries 1",
		"# TYPE rhsd_scancache_bytes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
