// Package scancache is a content-addressed result cache for megatile
// detection: scan results keyed by what the network actually consumed —
// the hashed bytes of the rasterized, halo-inclusive megatile window plus
// the model weight version — so two megatiles with byte-identical rasters
// under identical weights share one forward pass, wherever they sit on
// the chip and whichever request they arrived in.
//
// The cache is deliberately ignorant of detection types: Cache[V] stores
// any value type under a Key, with the caller supplying the size and
// copy policies at construction. internal/hsd instantiates it for
// []Detection (hsd.NewDetCache); nothing here imports the model stack,
// so the dependency arrow stays hsd → scancache.
//
// Correctness contract (pinned by the differential suite in
// internal/hsd):
//
//   - A hit returns a value that is bit-identical to what the compute
//     function produced when the entry was filled. Because the key covers
//     every raster byte (halo bands included) and the weight digest,
//     a hit can only occur when a cold scan would have produced the
//     same floats.
//   - Every lookup returns a defensive copy (via the copy policy), so
//     concurrent scans can never observe torn or aliased values even if
//     a caller mutates its result.
//   - Concurrent misses on one key are single-flighted: one caller
//     computes, the rest block and receive copies of the same value.
//
// Eviction is LRU under a byte budget; an entry larger than the whole
// budget is returned to the caller but not retained. Telemetry
// (RegisterMetrics) exposes hits, misses, single-flight waits, evictions
// and the current byte/entry footprint on the shared registry.
package scancache

import (
	"container/list"
	"sync"

	"rhsd/internal/telemetry"
)

// KeySize is the Key width in bytes: a full SHA-256 digest. Content
// addressing must make key collisions strictly harder than any other
// failure in the system — a truncated or non-cryptographic hash would
// turn "near-identical layout" (the common case in DFM loops) into a
// plausible silent-wrong-result source.
const KeySize = 32

// Key identifies cached content: a cryptographic digest of the exact
// bytes the scan consumed. Construct with a hash of raster content plus
// the weight version (see hsd.RasterKey); never from coordinates.
type Key [KeySize]byte

// Stats is a point-in-time snapshot of the cache counters, read from the
// same atomics the telemetry instruments expose.
type Stats struct {
	// Hits counts lookups answered from a completed entry.
	Hits int64
	// Misses counts lookups that ran the compute function.
	Misses int64
	// Shared counts lookups that joined another caller's in-flight
	// compute (single-flight). Hits + Misses + Shared = total lookups.
	Shared int64
	// Evictions counts entries dropped to fit the byte budget.
	Evictions int64
	// Bytes and Entries describe the currently retained set.
	Bytes   int64
	Entries int64
}

// entry is one retained value plus its LRU bookkeeping.
type entry[V any] struct {
	key   Key
	value V
	bytes int64
}

// flight is one in-progress compute that later arrivals wait on. failed
// marks a compute that panicked out of GetOrCompute: waiters retry
// rather than consuming a zero value.
type flight[V any] struct {
	done   chan struct{}
	value  V
	failed bool
}

// Cache is a content-addressed LRU result cache, safe for concurrent
// use. Create with New.
type Cache[V any] struct {
	maxBytes int64
	sizeOf   func(V) int64
	clone    func(V) V

	mu      sync.Mutex
	entries map[Key]*list.Element // values are *entry[V]
	lru     *list.List            // front = most recent
	flights map[Key]*flight[V]
	bytes   int64

	hits      telemetry.Counter
	misses    telemetry.Counter
	shared    telemetry.Counter
	evictions telemetry.Counter
}

// New builds a cache bounded to maxBytes of retained values (<= 0 means
// unbounded). sizeOf reports the retained footprint of one value and
// clone produces the defensive copy every lookup hands out; both must be
// non-nil and pure.
func New[V any](maxBytes int64, sizeOf func(V) int64, clone func(V) V) *Cache[V] {
	if sizeOf == nil || clone == nil {
		panic("scancache: New requires sizeOf and clone policies")
	}
	return &Cache[V]{
		maxBytes: maxBytes,
		sizeOf:   sizeOf,
		clone:    clone,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		flights:  make(map[Key]*flight[V]),
	}
}

// RegisterMetrics exposes the cache counters on reg under the
// rhsd_scancache_* names documented in DESIGN.md §14. Call at most once
// per registry (duplicate registration panics, like every instrument).
func (c *Cache[V]) RegisterMetrics(reg *telemetry.Registry) {
	const lookupHelp = "Cache lookups by outcome: hit (completed entry), miss (ran the scan), shared (joined an in-flight scan)."
	reg.NewGaugeFunc("rhsd_scancache_bytes",
		"Bytes retained by the megatile result cache.", "",
		func() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.bytes })
	reg.NewGaugeFunc("rhsd_scancache_entries",
		"Entries retained by the megatile result cache.", "",
		func() int64 { c.mu.Lock(); defer c.mu.Unlock(); return int64(c.lru.Len()) })
	reg.NewCounterFunc("rhsd_scancache_lookups_total", lookupHelp, `outcome="hit"`, c.hits.Value)
	reg.NewCounterFunc("rhsd_scancache_lookups_total", lookupHelp, `outcome="miss"`, c.misses.Value)
	reg.NewCounterFunc("rhsd_scancache_lookups_total", lookupHelp, `outcome="shared"`, c.shared.Value)
	reg.NewCounterFunc("rhsd_scancache_evictions_total",
		"Entries evicted from the megatile result cache to fit the byte budget.", "",
		c.evictions.Value)
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	bytes, entries := c.bytes, int64(c.lru.Len())
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Shared:    c.shared.Value(),
		Evictions: c.evictions.Value(),
		Bytes:     bytes,
		Entries:   entries,
	}
}

// Get returns a copy of the value cached under k, if present, and marks
// the entry recently used. It never waits on an in-flight compute.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		v := c.clone(el.Value.(*entry[V]).value)
		c.mu.Unlock()
		c.hits.Inc()
		return v, true
	}
	c.mu.Unlock()
	var zero V
	return zero, false
}

// GetOrCompute returns the value for k, running compute on a miss and
// retaining its result. Concurrent callers that miss on the same key are
// deduplicated: exactly one runs compute, the rest wait and receive the
// same value. Every return value — hit, miss or shared — is a defensive
// copy the caller owns outright. A compute that panics unwinds through
// GetOrCompute (nothing is cached); waiting callers retry, so one
// poisoned scan cannot wedge its neighbours.
func (c *Cache[V]) GetOrCompute(k Key, compute func() V) V {
	v, _ := c.GetOrComputeOutcome(k, compute)
	return v
}

// Outcome classifies how one cache lookup was served, for per-request
// trace attribution. The zero value OutcomeNone means "no cache was
// consulted" (callers running with caching disabled).
type Outcome uint8

const (
	OutcomeNone   Outcome = iota // no cache in play
	OutcomeHit                   // served from a completed entry
	OutcomeMiss                  // this caller ran compute
	OutcomeShared                // joined another caller's in-flight compute
)

// String returns the attribute value traces carry for the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeShared:
		return "shared"
	default:
		return "none"
	}
}

// GetOrComputeOutcome is GetOrCompute plus a report of how the lookup
// was served. A caller that takes over a panicked flight reports the
// miss it actually computed, not the shared wait it abandoned.
func (c *Cache[V]) GetOrComputeOutcome(k Key, compute func() V) (V, Outcome) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[k]; ok {
			c.lru.MoveToFront(el)
			v := c.clone(el.Value.(*entry[V]).value)
			c.mu.Unlock()
			c.hits.Inc()
			return v, OutcomeHit
		}
		if fl, ok := c.flights[k]; ok {
			c.mu.Unlock()
			<-fl.done
			c.mu.Lock()
			failed := fl.failed
			var v V
			if !failed {
				v = c.clone(fl.value)
			}
			c.mu.Unlock()
			if failed {
				continue // the computer panicked; take over the miss
			}
			c.shared.Inc()
			return v, OutcomeShared
		}
		fl := &flight[V]{done: make(chan struct{})}
		c.flights[k] = fl
		c.mu.Unlock()

		settled := false
		defer func() {
			if !settled { // compute panicked: release waiters, cache nothing
				c.mu.Lock()
				fl.failed = true
				close(fl.done)
				delete(c.flights, k)
				c.mu.Unlock()
			}
		}()
		c.misses.Inc()
		v := compute()

		c.mu.Lock()
		fl.value = c.clone(v)
		settled = true
		close(fl.done)
		delete(c.flights, k)
		c.insertLocked(k, fl.value)
		c.mu.Unlock()
		return v, OutcomeMiss
	}
}

// Put stores a copy of v under k (replacing any existing entry), subject
// to the byte budget. Scans that computed a result outside GetOrCompute
// — the incremental rescan's dirty tiles — use it to warm the cache.
func (c *Cache[V]) Put(k Key, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*entry[V])
		c.bytes -= e.bytes
		c.lru.Remove(el)
		delete(c.entries, k)
	}
	c.insertLocked(k, c.clone(v))
}

// insertLocked retains v under k and evicts LRU entries until the budget
// holds. Caller holds c.mu. v must already be a cache-private copy.
func (c *Cache[V]) insertLocked(k Key, v V) {
	if _, ok := c.entries[k]; ok {
		// A racing GetOrCompute already filled this key (both flights can
		// not coexist, but Put can race a flight); keep the existing entry.
		return
	}
	bytes := c.sizeOf(v) + entryOverheadBytes
	if c.maxBytes > 0 && bytes > c.maxBytes {
		return // larger than the whole budget: serve it, don't retain it
	}
	e := &entry[V]{key: k, value: v, bytes: bytes}
	c.entries[k] = c.lru.PushFront(e)
	c.bytes += bytes
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		old := oldest.Value.(*entry[V])
		c.lru.Remove(oldest)
		delete(c.entries, old.key)
		c.bytes -= old.bytes
		c.evictions.Inc()
	}
}

// entryOverheadBytes approximates the per-entry bookkeeping cost (map
// slot, list element, entry struct, key) charged against the byte budget
// so a flood of tiny results cannot blow past it.
const entryOverheadBytes = 160

// Purge drops every retained entry (in-flight computes are unaffected:
// their callers still receive values, and the results are re-inserted).
// Weight changes do not require a Purge for correctness — the weight
// digest in the key already strands stale entries — but purging returns
// their memory immediately instead of waiting for LRU pressure.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*list.Element)
	c.lru.Init()
	c.bytes = 0
}
