// Package patmatch implements a pattern-matching hotspot detector, the
// second of the three method classes the paper's introduction surveys
// ("the main idea of pattern matching is to set up a collection of
// hotspot layout patterns and use this collection to identify any matched
// patterns in a new design as hotspots"). It serves as an extended
// baseline beyond Table 1: fast and precise on seen patterns, but — as
// the paper notes — "this approach cannot give a confident result on
// unseen hotspot patterns".
//
// The matcher stores a library of rasterized hotspot-clip templates
// (downsampled density grids) mined from the training split and slides a
// window over test regions, reporting a hotspot wherever the windowed
// density grid is within a distance threshold of some template — a
// grid-reduced fuzzy match in the spirit of Wen et al. (TCAD'14) [1].
package patmatch

import (
	"math"
	"time"

	"rhsd/internal/dataset"
	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/metrics"
	"rhsd/internal/tensor"
)

// Config holds the matcher's parameters.
type Config struct {
	// ClipNM is the clip size (matches the detectors under comparison).
	ClipNM float64
	// GridCells is the reduced density-grid resolution per axis (the
	// "grid reduction" of fuzzy matching).
	GridCells int
	// RasterPitchNM is the fine raster pitch before grid reduction.
	RasterPitchNM float64
	// Threshold is the maximum mean absolute density difference for a
	// match, in [0,1]. Smaller = stricter = fewer false alarms but no
	// generalization.
	Threshold float64
	// StrideDiv divides the clip to get the scan stride (3 = core
	// stride, like the conventional flow).
	StrideDiv int
}

// DefaultConfig matches the fast evaluation profile's geometry.
func DefaultConfig() Config {
	return Config{
		ClipNM:        192,
		GridCells:     8,
		RasterPitchNM: 4,
		Threshold:     0.12,
		StrideDiv:     3,
	}
}

// Matcher is a trained pattern-matching detector.
type Matcher struct {
	Config    Config
	Templates []*tensor.Tensor // [1, G, G] density grids of known hotspots
}

// New builds an empty matcher.
func New(c Config) *Matcher { return &Matcher{Config: c} }

// grid rasterizes the clip centred at (cx, cy) and reduces it to a
// GridCells×GridCells density grid with values in [0,1].
func (m *Matcher) grid(l *layout.Layout, cx, cy float64) *tensor.Tensor {
	c := m.Config
	half := c.ClipNM / 2
	win := l.Window(layout.R(int(cx-half), int(cy-half), int(cx+half), int(cy+half)))
	raster := win.Rasterize(layout.R(0, 0, int(c.ClipNM), int(c.ClipNM)), c.RasterPitchNM)
	h, w := raster.Dim(1), raster.Dim(2)
	g := tensor.New(1, c.GridCells, c.GridCells)
	cellH := float64(h) / float64(c.GridCells)
	cellW := float64(w) / float64(c.GridCells)
	for gy := 0; gy < c.GridCells; gy++ {
		y0, y1 := int(float64(gy)*cellH), int(float64(gy+1)*cellH)
		for gx := 0; gx < c.GridCells; gx++ {
			x0, x1 := int(float64(gx)*cellW), int(float64(gx+1)*cellW)
			var sum float64
			n := 0
			for y := y0; y < y1 && y < h; y++ {
				for x := x0; x < x1 && x < w; x++ {
					sum += float64(raster.At(0, y, x))
					n++
				}
			}
			if n > 0 {
				g.Set(float32(sum/float64(n)), 0, gy, gx)
			}
		}
	}
	return g
}

// Train mines templates from the training hotspots. Each hotspot yields
// the centred template plus four shifted copies at half the scan stride,
// so a scan window that straddles a known hotspot still matches — the
// grid-reduction trick of fuzzy pattern matching.
func (m *Matcher) Train(regions []*dataset.Region) {
	s := m.Config.ClipNM / float64(m.Config.StrideDiv) / 2
	for _, r := range regions {
		for _, p := range r.HotspotPoints() {
			for dy := -1.0; dy <= 1; dy++ {
				for dx := -1.0; dx <= 1; dx++ {
					m.Templates = append(m.Templates, m.grid(r.Layout, p[0]+dx*s, p[1]+dy*s))
				}
			}
		}
	}
}

// distance is the mean absolute difference between two density grids.
func distance(a, b *tensor.Tensor) float64 {
	var sum float64
	for i, v := range a.Data() {
		sum += math.Abs(float64(v - b.Data()[i]))
	}
	return sum / float64(a.Size())
}

// MatchScore returns 1 − min-distance over the library (1 = exact match).
func (m *Matcher) MatchScore(g *tensor.Tensor) float64 {
	best := math.Inf(1)
	for _, t := range m.Templates {
		if d := distance(g, t); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return 1 - best
}

// DetectRegion scans the region at core stride and reports every window
// whose density grid fuzzily matches a library template.
func (m *Matcher) DetectRegion(r *dataset.Region) []metrics.Detection {
	c := m.Config
	stride := c.ClipNM / float64(c.StrideDiv)
	size := float64(r.Layout.Bounds.X1)
	var dets []metrics.Detection
	for cy := c.ClipNM / 2; cy+c.ClipNM/2 <= size; cy += stride {
		for cx := c.ClipNM / 2; cx+c.ClipNM/2 <= size; cx += stride {
			g := m.grid(r.Layout, cx, cy)
			score := m.MatchScore(g)
			if score >= 1-c.Threshold {
				dets = append(dets, metrics.Detection{
					Clip:  geom.RectCWH(cx, cy, c.ClipNM, c.ClipNM),
					Score: score,
				})
			}
		}
	}
	return dets
}

// Evaluate scores the matcher over test regions with wall-clock timing.
func (m *Matcher) Evaluate(regions []*dataset.Region) metrics.Outcome {
	var total metrics.Outcome
	for _, r := range regions {
		start := time.Now()
		dets := m.DetectRegion(r)
		elapsed := time.Since(start)
		o := metrics.Evaluate(dets, r.HotspotPoints())
		o.Elapsed = elapsed
		total.Add(o)
	}
	return total
}
