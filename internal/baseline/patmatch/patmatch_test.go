package patmatch

import (
	"testing"

	"rhsd/internal/dataset"
	"rhsd/internal/litho"
)

func smallData(nTrain, nTest int) *dataset.Dataset {
	spec := dataset.CaseSpecs(768)[0]
	return dataset.Generate(spec, litho.DefaultModel(), nTrain, nTest)
}

func TestGridShapeAndRange(t *testing.T) {
	m := New(DefaultConfig())
	data := smallData(1, 0)
	g := m.grid(data.Train[0].Layout, 384, 384)
	if g.Dim(1) != m.Config.GridCells || g.Dim(2) != m.Config.GridCells {
		t.Fatalf("grid shape %v", g.Shape())
	}
	for _, v := range g.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("density %v out of [0,1]", v)
		}
	}
}

func TestTrainMinesJitteredTemplates(t *testing.T) {
	m := New(DefaultConfig())
	data := smallData(3, 0)
	want := 0
	for _, r := range data.Train {
		want += len(r.Hotspots)
	}
	m.Train(data.Train)
	if len(m.Templates) != 9*want {
		t.Fatalf("templates %d want %d (9 per hotspot)", len(m.Templates), 9*want)
	}
}

func TestExactPatternMatchesItself(t *testing.T) {
	m := New(DefaultConfig())
	data := smallData(1, 0)
	r := data.Train[0]
	if len(r.Hotspots) == 0 {
		t.Skip("region without hotspots")
	}
	m.Train([]*dataset.Region{r})
	p := r.HotspotPoints()[0]
	g := m.grid(r.Layout, p[0], p[1])
	if s := m.MatchScore(g); s < 0.999 {
		t.Fatalf("self-match score %v", s)
	}
}

func TestEmptyLibraryMatchesNothing(t *testing.T) {
	m := New(DefaultConfig())
	data := smallData(1, 0)
	g := m.grid(data.Train[0].Layout, 384, 384)
	if m.MatchScore(g) != 0 {
		t.Fatal("empty library must score 0")
	}
	if dets := m.DetectRegion(data.Train[0]); len(dets) != 0 {
		t.Fatalf("empty library produced %d detections", len(dets))
	}
}

func TestSeenVsUnseenGap(t *testing.T) {
	// The paper's criticism of pattern matching: high recall on *seen*
	// patterns, no confidence on unseen ones. Detect on the training
	// regions (seen) vs test regions (unseen) and expect a recall gap.
	m := New(DefaultConfig())
	data := smallData(4, 4)
	m.Train(data.Train)
	seen := m.Evaluate(data.Train)
	unseen := m.Evaluate(data.Test)
	if seen.Accuracy() < 0.8 {
		t.Fatalf("seen-pattern recall too low: %v", seen.Accuracy())
	}
	if unseen.Accuracy() > seen.Accuracy() {
		t.Fatalf("unseen recall (%v) should not beat seen recall (%v)",
			unseen.Accuracy(), seen.Accuracy())
	}
}

func TestStricterThresholdMonotone(t *testing.T) {
	data := smallData(3, 1)
	loose := New(DefaultConfig())
	loose.Config.Threshold = 0.2
	strict := New(DefaultConfig())
	strict.Config.Threshold = 0.02
	loose.Train(data.Train)
	strict.Train(data.Train)
	r := data.Test[0]
	if len(strict.DetectRegion(r)) > len(loose.DetectRegion(r)) {
		t.Fatal("stricter threshold cannot produce more matches")
	}
}
