// Package generic provides the shared machinery of the two
// object-detection baselines in Table 1 — Faster R-CNN [23] and SSD [24]
// — "two classic techniques [that] match our region-based hotspot
// detection objectives well" but are configured as generic object
// detectors rather than specialized for hotspots: a plain convolutional
// backbone (no encoder-decoder, no inception), natural-image anchor
// scales, whole-box IoU matching and conventional NMS.
package generic

import (
	"math"
	"math/rand"

	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// InputChannels matches the region raster depth of the specialized
// detector (metal + inverted metal) so all compared detectors consume the
// same input representation.
const InputChannels = 2

// Raster2Ch rasterizes a layout into the shared two-channel region
// representation [1, 2, size, size]: channel 0 is metal, channel 1 its
// complement.
func Raster2Ch(l *layout.Layout, size int, pitchNM float64) *tensor.Tensor {
	raster := l.Rasterize(l.Bounds, pitchNM)
	x := tensor.New(1, InputChannels, size, size)
	for i := size * size; i < 2*size*size; i++ {
		x.Data()[i] = 1
	}
	h, w := raster.Dim(1), raster.Dim(2)
	for y := 0; y < min(h, size); y++ {
		for xx := 0; xx < min(w, size); xx++ {
			v := raster.At(0, y, xx)
			x.Set(v, 0, 0, y, xx)
			x.Set(1-v, 0, 1, y, xx)
		}
	}
	return x
}

// Backbone builds the plain VGG-style feature extractor: three
// conv+ReLU+pool stages for a total stride of 8.
func Backbone(prefix string, channels [3]int, rng *rand.Rand) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2D(prefix+".c1", InputChannels, channels[0], 3, 1, 1, rng),
		nn.NewLeakyReLU(0.05),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(prefix+".c2", channels[0], channels[1], 3, 1, 1, rng),
		nn.NewLeakyReLU(0.05),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(prefix+".c3", channels[1], channels[2], 3, 1, 1, rng),
		nn.NewLeakyReLU(0.05),
		nn.NewMaxPool2D(2, 2),
	)
}

// Anchors enumerates an anchor grid over a feat×feat map with the given
// stride: one box per (cell, base, ratio) with area base² and aspect
// h/w = ratio, in input-pixel coordinates, cell-major with the per-cell
// group contiguous.
func Anchors(feat, stride int, bases, ratios []float64) []geom.Rect {
	out := make([]geom.Rect, 0, feat*feat*len(bases)*len(ratios))
	for y := 0; y < feat; y++ {
		cy := (float64(y) + 0.5) * float64(stride)
		for x := 0; x < feat; x++ {
			cx := (float64(x) + 0.5) * float64(stride)
			for _, b := range bases {
				for _, ar := range ratios {
					r := math.Sqrt(ar)
					out = append(out, geom.RectCWH(cx, cy, b/r, b*r))
				}
			}
		}
	}
	return out
}

// Targets is the anchor training assignment.
type Targets struct {
	Label     []int8 // 1 positive, 0 negative, -1 ignored
	MatchedGT []int32
	Reg       []geom.BoxEncoding
}

// Assign labels anchors by whole-box IoU with posIoU/negIoU thresholds
// plus the best-anchor-per-GT rule.
func Assign(anchors, gt []geom.Rect, posIoU, negIoU float64) *Targets {
	n := len(anchors)
	t := &Targets{Label: make([]int8, n), MatchedGT: make([]int32, n), Reg: make([]geom.BoxEncoding, n)}
	if len(gt) == 0 {
		return t
	}
	bestIoU := make([]float64, n)
	gtBest := make([]float64, len(gt))
	gtBestAnchor := make([]int32, len(gt))
	for g := range gtBestAnchor {
		gtBestAnchor[g] = -1
	}
	for i, a := range anchors {
		for g, box := range gt {
			iou := geom.IoU(a, box)
			if iou > bestIoU[i] {
				bestIoU[i] = iou
				t.MatchedGT[i] = int32(g)
			}
			if iou > gtBest[g] {
				gtBest[g] = iou
				gtBestAnchor[g] = int32(i)
			}
		}
	}
	for i := range anchors {
		switch {
		case bestIoU[i] >= posIoU:
			t.Label[i] = 1
		case bestIoU[i] <= negIoU:
			t.Label[i] = 0
		default:
			t.Label[i] = -1
		}
	}
	for g, ai := range gtBestAnchor {
		if ai >= 0 && gtBest[g] > 0 {
			t.Label[ai] = 1
			t.MatchedGT[ai] = int32(g)
		}
	}
	for i := range anchors {
		if t.Label[i] == 1 {
			t.Reg[i] = geom.Encode(gt[t.MatchedGT[i]], anchors[i])
		}
	}
	return t
}

// SampleBatch draws up to budget anchor indices with at most half
// positives, mirroring the standard region-proposal training recipe.
func (t *Targets) SampleBatch(rng *rand.Rand, budget int) []int {
	var pos, neg []int
	for i, l := range t.Label {
		switch l {
		case 1:
			pos = append(pos, i)
		case 0:
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	if len(pos) > budget/2 {
		pos = pos[:budget/2]
	}
	rest := budget - len(pos)
	if len(neg) > rest {
		neg = neg[:rest]
	}
	return append(append([]int{}, pos...), neg...)
}
