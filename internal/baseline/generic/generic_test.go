package generic

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/geom"
	"rhsd/internal/tensor"
)

func TestBackboneStride8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Backbone("t", [3]int{4, 6, 8}, rng)
	x := tensor.New(1, InputChannels, 64, 64)
	y := b.Forward(x)
	if y.Dim(1) != 8 || y.Dim(2) != 8 || y.Dim(3) != 8 {
		t.Fatalf("backbone output %v want [1 8 8 8]", y.Shape())
	}
}

func TestAnchorsCountAndGeometry(t *testing.T) {
	a := Anchors(4, 8, []float64{16, 32}, []float64{0.5, 1, 2})
	if len(a) != 4*4*6 {
		t.Fatalf("anchor count %d", len(a))
	}
	// Area preserved per base within ratio group.
	if math.Abs(a[0].Area()-256) > 1e-6 || math.Abs(a[3].Area()-1024) > 1e-6 {
		t.Fatalf("areas: %v %v", a[0].Area(), a[3].Area())
	}
	if math.Abs(a[0].H()/a[0].W()-0.5) > 1e-9 {
		t.Fatalf("ratio: %v", a[0])
	}
}

func TestAssignRules(t *testing.T) {
	anchors := []geom.Rect{
		geom.RectCWH(10, 10, 16, 16),
		geom.RectCWH(50, 50, 16, 16),
		geom.RectCWH(12, 10, 16, 16),
	}
	gt := []geom.Rect{geom.RectCWH(10, 10, 16, 16)}
	tg := Assign(anchors, gt, 0.5, 0.3)
	if tg.Label[0] != 1 {
		t.Fatalf("exact match must be positive: %v", tg.Label)
	}
	if tg.Label[1] != 0 {
		t.Fatalf("disjoint must be negative: %v", tg.Label)
	}
	if tg.Label[2] != 1 { // IoU = 14*16/(2*256-224) ≈ 0.78
		t.Fatalf("high-IoU must be positive: %v", tg.Label)
	}
	// Regression encoding for the exact anchor is zero.
	if tg.Reg[0] != (geom.BoxEncoding{}) {
		t.Fatalf("exact reg: %+v", tg.Reg[0])
	}
}

func TestAssignBestAnchorRule(t *testing.T) {
	// GT too small for any anchor to clear 0.5: the best still turns
	// positive.
	anchors := []geom.Rect{
		geom.RectCWH(10, 10, 32, 32),
		geom.RectCWH(50, 50, 32, 32),
	}
	gt := []geom.Rect{geom.RectCWH(10, 10, 8, 8)}
	tg := Assign(anchors, gt, 0.5, 0.01)
	if tg.Label[0] != 1 {
		t.Fatalf("best anchor must be claimed: %v", tg.Label)
	}
}

func TestAssignNoGT(t *testing.T) {
	anchors := []geom.Rect{geom.RectCWH(10, 10, 16, 16)}
	tg := Assign(anchors, nil, 0.5, 0.3)
	if tg.Label[0] != 0 {
		t.Fatal("no GT → all negative")
	}
}

func TestSampleBatchExcludesIgnored(t *testing.T) {
	tg := &Targets{Label: []int8{1, -1, 0, 0, -1, 1}}
	rng := rand.New(rand.NewSource(2))
	batch := tg.SampleBatch(rng, 4)
	for _, i := range batch {
		if tg.Label[i] == -1 {
			t.Fatal("ignored anchor sampled")
		}
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
}
