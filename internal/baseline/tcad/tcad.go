// Package tcad implements the paper's main comparator, labelled "TCAD'18
// [16]" in Table 1: the clip-based hotspot detector of Yang et al.,
// "Layout hotspot detection with feature tensor generation and deep biased
// learning" (IEEE TCAD 2018), embedded in the conventional sliding-window
// flow of Figure 1.
//
// The flow is: extract overlapping clips across the region, convert each
// clip to a DCT feature tensor (frequency-domain feature expression), and
// classify each clip with a small CNN trained with biased learning for the
// unbalanced hotspot/non-hotspot distribution. The detector is accurate
// but pays the two costs the paper attributes to it: the overlapping scan
// makes it slow on large regions, and the recall-oriented bias makes it
// false-alarm heavy.
package tcad

import (
	"math/rand"
	"time"

	"rhsd/internal/dataset"
	"rhsd/internal/dct"
	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/metrics"
	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// Config holds the clip classifier's hyperparameters.
type Config struct {
	// ClipPx is the clip raster size in pixels (must be a multiple of
	// DCTBlock).
	ClipPx int
	// PitchNM converts layout nm to raster pixels.
	PitchNM float64
	// DCTBlock and DCTKeep define the feature tensor: DCTBlock×DCTBlock
	// blocks with the first DCTKeep zig-zag coefficients kept.
	DCTBlock int
	DCTKeep  int
	// Conv1, Conv2 and FC are the CNN widths.
	Conv1, Conv2, FC int
	// Bias is the biased-learning decision shift: a clip is reported as
	// hotspot when P(hotspot) > 0.5 − Bias. Positive bias trades false
	// alarms for recall, the deliberate choice of [16] for unbalanced
	// data.
	Bias float64
	// TrainSteps, BatchSize, LearningRate, Momentum configure SGD.
	TrainSteps   int
	BatchSize    int
	LearningRate float64
	Momentum     float64
	// NegPerRegion is the number of random negative clips mined from each
	// training region.
	NegPerRegion int
	// Seed fixes initialization and sampling.
	Seed int64
}

// DefaultConfig returns settings matched to the fast evaluation profile.
func DefaultConfig() Config {
	return Config{
		ClipPx:       16,
		PitchNM:      12,
		DCTBlock:     8,
		DCTKeep:      12,
		Conv1:        12,
		Conv2:        16,
		FC:           32,
		Bias:         0.2,
		TrainSteps:   400,
		BatchSize:    16,
		LearningRate: 0.01,
		Momentum:     0.9,
		NegPerRegion: 12,
		Seed:         11,
	}
}

// ClipNM returns the physical clip size.
func (c Config) ClipNM() float64 { return float64(c.ClipPx) * c.PitchNM }

// Detector is the trained sliding-window hotspot detector.
type Detector struct {
	Config Config

	net *nn.Sequential
	rng *rand.Rand
}

// New builds an untrained detector.
func New(c Config) *Detector {
	rng := rand.New(rand.NewSource(c.Seed))
	fb := c.ClipPx / c.DCTBlock
	net := nn.NewSequential(
		nn.NewConv2D("c1", c.DCTKeep, c.Conv1, 3, 1, 1, rng),
		nn.NewLeakyReLU(0.05),
		nn.NewConv2D("c2", c.Conv1, c.Conv2, 3, 1, 1, rng),
		nn.NewLeakyReLU(0.05),
		nn.NewFlatten(),
		nn.NewDense("fc1", c.Conv2*fb*fb, c.FC, rng),
		nn.NewLeakyReLU(0.05),
		nn.NewDense("fc2", c.FC, 2, rng),
	)
	return &Detector{Config: c, net: net, rng: rng}
}

// clipFeature rasterizes the clip window centred at (cx, cy) nm and
// produces its DCT feature tensor [keep, fb, fb].
func (d *Detector) clipFeature(r *dataset.Region, cx, cy float64) *tensor.Tensor {
	c := d.Config
	half := c.ClipNM() / 2
	win := r.Layout.Window(layout.R(int(cx-half), int(cy-half), int(cx+half), int(cy+half)))
	raster := win.Rasterize(win.Bounds, c.PitchNM)
	// Pad or crop to the exact clip raster.
	img := tensor.New(1, c.ClipPx, c.ClipPx)
	h, w := raster.Dim(1), raster.Dim(2)
	for y := 0; y < minInt(h, c.ClipPx); y++ {
		for x := 0; x < minInt(w, c.ClipPx); x++ {
			img.Set(raster.At(0, y, x), 0, y, x)
		}
	}
	return dct.FeatureTensor(img, c.DCTBlock, c.DCTKeep)
}

// trainExample is one labelled clip feature.
type trainExample struct {
	feat  *tensor.Tensor
	label int
}

// mineExamples builds the balanced clip training set: positives centred on
// (jittered) hotspots, negatives at random clip positions whose core holds
// no hotspot.
func (d *Detector) mineExamples(regions []*dataset.Region) []trainExample {
	c := d.Config
	var out []trainExample
	for _, r := range regions {
		pts := r.HotspotPoints()
		for _, p := range pts {
			// Original plus two jittered copies within the core.
			for j := 0; j < 3; j++ {
				jx := (d.rng.Float64() - 0.5) * c.ClipNM() / 4
				jy := (d.rng.Float64() - 0.5) * c.ClipNM() / 4
				if j == 0 {
					jx, jy = 0, 0
				}
				out = append(out, trainExample{
					feat:  d.clipFeature(r, p[0]+jx, p[1]+jy),
					label: 1,
				})
			}
		}
		size := float64(r.Layout.Bounds.X1)
		for n := 0; n < c.NegPerRegion; n++ {
			cx := c.ClipNM()/2 + d.rng.Float64()*(size-c.ClipNM())
			cy := c.ClipNM()/2 + d.rng.Float64()*(size-c.ClipNM())
			if coreHasHotspot(cx, cy, c.ClipNM(), pts) {
				continue
			}
			out = append(out, trainExample{feat: d.clipFeature(r, cx, cy), label: 0})
		}
	}
	return out
}

// Train fits the clip classifier on the training regions.
func (d *Detector) Train(regions []*dataset.Region) {
	c := d.Config
	examples := d.mineExamples(regions)
	if len(examples) == 0 {
		return
	}
	var pos, neg []trainExample
	for _, e := range examples {
		if e.label == 1 {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	opt := nn.NewSGD(c.LearningRate, c.Momentum, 0, 1)
	fb := c.ClipPx / c.DCTBlock
	for step := 0; step < c.TrainSteps; step++ {
		// Balanced batches are the training-side half of biased learning:
		// the minority hotspot class is oversampled to parity.
		batch := tensor.New(c.BatchSize, c.DCTKeep, fb, fb)
		labels := make([]int, c.BatchSize)
		for i := 0; i < c.BatchSize; i++ {
			var e trainExample
			if i%2 == 0 && len(pos) > 0 {
				e = pos[d.rng.Intn(len(pos))]
			} else if len(neg) > 0 {
				e = neg[d.rng.Intn(len(neg))]
			} else {
				e = pos[d.rng.Intn(len(pos))]
			}
			copy(batch.Data()[i*e.feat.Size():(i+1)*e.feat.Size()], e.feat.Data())
			labels[i] = e.label
		}
		logits := d.net.Forward(batch)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		d.net.Backward(grad)
		opt.Update(d.net.Params())
	}
}

// DetectRegion runs the conventional overlapping scan: clips at a stride
// of one core (one third of the clip) in each direction, every clip
// classified independently. Returns hotspot detections in region nm.
func (d *Detector) DetectRegion(r *dataset.Region) []metrics.Detection {
	c := d.Config
	clip := c.ClipNM()
	stride := clip / 3
	size := float64(r.Layout.Bounds.X1)
	var dets []metrics.Detection
	for cy := clip / 2; cy+clip/2 <= size; cy += stride {
		for cx := clip / 2; cx+clip/2 <= size; cx += stride {
			feat := d.clipFeature(r, cx, cy)
			batch := feat.Reshape(1, feat.Dim(0), feat.Dim(1), feat.Dim(2))
			logits := d.net.Forward(batch)
			p := nn.Softmax(logits).At(0, 1)
			if float64(p) > 0.5-c.Bias {
				dets = append(dets, metrics.Detection{
					Clip:  geom.RectCWH(cx, cy, clip, clip),
					Score: float64(p),
				})
			}
		}
	}
	return dets
}

// Evaluate runs DetectRegion over test regions and scores the paper's
// metrics, including wall-clock detection time.
func (d *Detector) Evaluate(regions []*dataset.Region) metrics.Outcome {
	var total metrics.Outcome
	for _, r := range regions {
		start := time.Now()
		dets := d.DetectRegion(r)
		elapsed := time.Since(start)
		o := metrics.Evaluate(dets, r.HotspotPoints())
		o.Elapsed = elapsed
		total.Add(o)
	}
	return total
}

func coreHasHotspot(cx, cy, clipNM float64, pts [][2]float64) bool {
	core := geom.RectCWH(cx, cy, clipNM, clipNM).Core()
	for _, p := range pts {
		if core.Contains(p[0], p[1]) {
			return true
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
