package tcad

import (
	"testing"

	"rhsd/internal/dataset"
	"rhsd/internal/litho"
)

func smallData(n int) *dataset.Dataset {
	spec := dataset.CaseSpecs(768)[0]
	return dataset.Generate(spec, litho.DefaultModel(), n, n)
}

func TestConfigClipNM(t *testing.T) {
	c := DefaultConfig()
	if c.ClipNM() != float64(c.ClipPx)*c.PitchNM {
		t.Fatal("ClipNM inconsistent")
	}
	if c.ClipPx%c.DCTBlock != 0 {
		t.Fatal("default clip not divisible by DCT block")
	}
}

func TestClipFeatureShape(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(1)
	f := d.clipFeature(data.Train[0], 300, 300)
	fb := d.Config.ClipPx / d.Config.DCTBlock
	if f.Dim(0) != d.Config.DCTKeep || f.Dim(1) != fb || f.Dim(2) != fb {
		t.Fatalf("feature shape %v", f.Shape())
	}
}

func TestClipFeatureBoundaryClipsDoNotPanic(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(1)
	r := data.Train[0]
	// Clips hanging off every edge.
	for _, p := range [][2]float64{{0, 0}, {768, 768}, {0, 400}, {768, 0}} {
		f := d.clipFeature(r, p[0], p[1])
		if f == nil {
			t.Fatal("nil feature")
		}
	}
}

func TestMineExamplesBalanceAndLabels(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(2)
	ex := d.mineExamples(data.Train)
	if len(ex) == 0 {
		t.Fatal("no examples mined")
	}
	pos, neg := 0, 0
	for _, e := range ex {
		if e.label == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("need both classes: pos=%d neg=%d", pos, neg)
	}
}

func TestTrainAndDetectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	c := DefaultConfig()
	c.TrainSteps = 150
	d := New(c)
	data := smallData(3)
	d.Train(data.Train)
	out := d.Evaluate(data.Test[:1])
	// The detector must produce a well-formed outcome; quality is the
	// bench harness's business.
	if out.GroundTruth < 0 || out.Detected > out.GroundTruth {
		t.Fatalf("malformed outcome %+v", out)
	}
	if out.Elapsed <= 0 {
		t.Fatal("timing not recorded")
	}
}

func TestBiasIncreasesDetections(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	c := DefaultConfig()
	c.TrainSteps = 120
	d := New(c)
	data := smallData(2)
	d.Train(data.Train)
	r := data.Test[0]
	d.Config.Bias = 0
	n0 := len(d.DetectRegion(r))
	d.Config.Bias = 0.45
	n1 := len(d.DetectRegion(r))
	if n1 < n0 {
		t.Fatalf("higher bias cannot reduce detections: %d -> %d", n0, n1)
	}
}
