// Package adaboost implements a classical machine-learning hotspot
// detector in the style the paper's introduction surveys ([6]: Matsunawa,
// Gao, Yu, Pan — "A new lithography hotspot detection framework based on
// AdaBoost classifier and simplified feature extraction", SPIE 2015):
// simplified density features over a clip, a boosted ensemble of decision
// stumps, and the conventional sliding-window scan. It extends the
// Table-1 comparison with the pre-CNN generation of learning detectors.
package adaboost

import (
	"math"
	"sort"
	"time"

	"rhsd/internal/dataset"
	"rhsd/internal/geom"
	"rhsd/internal/layout"
	"rhsd/internal/metrics"
)

// Config holds the detector's parameters.
type Config struct {
	// ClipNM is the clip size; GridCells the simplified-feature density
	// grid per axis (features = GridCells² densities + row/col sums).
	ClipNM        float64
	GridCells     int
	RasterPitchNM float64
	// Rounds is the number of boosting rounds (stumps).
	Rounds int
	// Bias shifts the ensemble decision toward recall, like the deep
	// baseline's biased learning: classify hotspot when margin > -Bias.
	Bias float64
	// NegPerRegion controls negative mining.
	NegPerRegion int
	Seed         int64
}

// DefaultConfig matches the fast evaluation profile's geometry.
func DefaultConfig() Config {
	return Config{
		ClipNM:        192,
		GridCells:     8,
		RasterPitchNM: 4,
		Rounds:        80,
		Bias:          0.05,
		NegPerRegion:  12,
		Seed:          41,
	}
}

// stump is one weak learner: sign(s) * (x[feature] > threshold ? 1 : -1).
type stump struct {
	feature   int
	threshold float64
	polarity  float64 // +1 or −1
	alpha     float64 // ensemble weight
}

// Detector is the boosted-stump sliding-window detector.
type Detector struct {
	Config Config
	stumps []stump
	nFeat  int
}

// New builds an untrained detector.
func New(c Config) *Detector { return &Detector{Config: c} }

// features extracts the simplified feature vector of the clip centred at
// (cx, cy): the density grid plus per-row and per-column density sums
// (capturing horizontal/vertical structure cheaply).
func (d *Detector) features(l *layout.Layout, cx, cy float64) []float64 {
	c := d.Config
	half := c.ClipNM / 2
	win := l.Window(layout.R(int(cx-half), int(cy-half), int(cx+half), int(cy+half)))
	raster := win.Rasterize(layout.R(0, 0, int(c.ClipNM), int(c.ClipNM)), c.RasterPitchNM)
	g := c.GridCells
	feats := make([]float64, g*g+2*g)
	h, w := raster.Dim(1), raster.Dim(2)
	cellH := float64(h) / float64(g)
	cellW := float64(w) / float64(g)
	for gy := 0; gy < g; gy++ {
		for gx := 0; gx < g; gx++ {
			y0, y1 := int(float64(gy)*cellH), int(float64(gy+1)*cellH)
			x0, x1 := int(float64(gx)*cellW), int(float64(gx+1)*cellW)
			var sum float64
			n := 0
			for y := y0; y < y1 && y < h; y++ {
				for x := x0; x < x1 && x < w; x++ {
					sum += float64(raster.At(0, y, x))
					n++
				}
			}
			var density float64
			if n > 0 {
				density = sum / float64(n)
			}
			feats[gy*g+gx] = density
			feats[g*g+gy] += density / float64(g)   // row sums
			feats[g*g+g+gx] += density / float64(g) // column sums
		}
	}
	return feats
}

// example is one labelled clip feature vector.
type example struct {
	x []float64
	y float64 // +1 hotspot, −1 non-hotspot
}

// Train runs AdaBoost.M1 over mined clip examples.
func (d *Detector) Train(regions []*dataset.Region) {
	c := d.Config
	rng := newLCG(uint64(c.Seed))
	var ex []example
	for _, r := range regions {
		pts := r.HotspotPoints()
		for _, p := range pts {
			ex = append(ex, example{x: d.features(r.Layout, p[0], p[1]), y: 1})
		}
		size := float64(r.Layout.Bounds.X1)
		for n := 0; n < c.NegPerRegion; n++ {
			cx := c.ClipNM/2 + rng.float64()*(size-c.ClipNM)
			cy := c.ClipNM/2 + rng.float64()*(size-c.ClipNM)
			if coreHasHotspot(cx, cy, c.ClipNM, pts) {
				continue
			}
			ex = append(ex, example{x: d.features(r.Layout, cx, cy), y: -1})
		}
	}
	if len(ex) == 0 {
		return
	}
	d.nFeat = len(ex[0].x)
	// Initial weights: uniform.
	w := make([]float64, len(ex))
	for i := range w {
		w[i] = 1.0 / float64(len(ex))
	}
	d.stumps = d.stumps[:0]
	for round := 0; round < c.Rounds; round++ {
		best, bestErr := d.bestStump(ex, w)
		if bestErr >= 0.5-1e-9 {
			break // no weak learner better than chance remains
		}
		if bestErr < 1e-12 {
			bestErr = 1e-12
		}
		best.alpha = 0.5 * math.Log((1-bestErr)/bestErr)
		d.stumps = append(d.stumps, best)
		// Reweight and renormalize.
		var z float64
		for i, e := range ex {
			w[i] *= math.Exp(-best.alpha * e.y * stumpPredict(best, e.x))
			z += w[i]
		}
		for i := range w {
			w[i] /= z
		}
	}
}

// bestStump exhaustively searches features × candidate thresholds for the
// minimum weighted error.
func (d *Detector) bestStump(ex []example, w []float64) (stump, float64) {
	best := stump{}
	bestErr := math.Inf(1)
	vals := make([]float64, len(ex))
	for f := 0; f < d.nFeat; f++ {
		for i, e := range ex {
			vals[i] = e.x[f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for k := 0; k+1 < len(sorted); k++ {
			if sorted[k] == sorted[k+1] {
				continue
			}
			thr := (sorted[k] + sorted[k+1]) / 2
			for _, pol := range [2]float64{1, -1} {
				var err float64
				for i, e := range ex {
					pred := pol
					if e.x[f] <= thr {
						pred = -pol
					}
					if pred != e.y {
						err += w[i]
					}
				}
				if err < bestErr {
					bestErr = err
					best = stump{feature: f, threshold: thr, polarity: pol}
				}
			}
		}
	}
	return best, bestErr
}

func stumpPredict(s stump, x []float64) float64 {
	if x[s.feature] > s.threshold {
		return s.polarity
	}
	return -s.polarity
}

// Margin returns the normalized ensemble margin in [−1, 1].
func (d *Detector) Margin(x []float64) float64 {
	var sum, total float64
	for _, s := range d.stumps {
		sum += s.alpha * stumpPredict(s, x)
		total += s.alpha
	}
	if total == 0 {
		return -1
	}
	return sum / total
}

// DetectRegion scans the region at core stride, reporting clips whose
// biased ensemble margin is positive.
func (d *Detector) DetectRegion(r *dataset.Region) []metrics.Detection {
	c := d.Config
	stride := c.ClipNM / 3
	size := float64(r.Layout.Bounds.X1)
	var dets []metrics.Detection
	for cy := c.ClipNM / 2; cy+c.ClipNM/2 <= size; cy += stride {
		for cx := c.ClipNM / 2; cx+c.ClipNM/2 <= size; cx += stride {
			m := d.Margin(d.features(r.Layout, cx, cy))
			if m > -c.Bias {
				dets = append(dets, metrics.Detection{
					Clip:  geom.RectCWH(cx, cy, c.ClipNM, c.ClipNM),
					Score: (m + 1) / 2,
				})
			}
		}
	}
	return dets
}

// Evaluate scores the detector over test regions with wall-clock timing.
func (d *Detector) Evaluate(regions []*dataset.Region) metrics.Outcome {
	var total metrics.Outcome
	for _, r := range regions {
		start := time.Now()
		dets := d.DetectRegion(r)
		elapsed := time.Since(start)
		o := metrics.Evaluate(dets, r.HotspotPoints())
		o.Elapsed = elapsed
		total.Add(o)
	}
	return total
}

func coreHasHotspot(cx, cy, clipNM float64, pts [][2]float64) bool {
	core := geom.RectCWH(cx, cy, clipNM, clipNM).Core()
	for _, p := range pts {
		if core.Contains(p[0], p[1]) {
			return true
		}
	}
	return false
}

// lcg is a tiny deterministic generator so the package does not share
// rand.Rand state with callers.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) float64() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / float64(1<<53)
}

// Ensemble exposes the learned stump count (for tests and reporting).
func (d *Detector) Ensemble() int { return len(d.stumps) }
