package adaboost

import (
	"testing"

	"rhsd/internal/dataset"
	"rhsd/internal/litho"
)

func smallData(nTrain, nTest int) *dataset.Dataset {
	spec := dataset.CaseSpecs(768)[0]
	return dataset.Generate(spec, litho.DefaultModel(), nTrain, nTest)
}

func TestFeatureVectorShapeAndRange(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(1, 0)
	f := d.features(data.Train[0].Layout, 384, 384)
	g := d.Config.GridCells
	if len(f) != g*g+2*g {
		t.Fatalf("feature length %d want %d", len(f), g*g+2*g)
	}
	for i, v := range f {
		if v < 0 || v > 1.0001 {
			t.Fatalf("feature %d = %v out of [0,1]", i, v)
		}
	}
}

func TestTrainBuildsEnsemble(t *testing.T) {
	c := DefaultConfig()
	c.Rounds = 20
	d := New(c)
	data := smallData(3, 0)
	d.Train(data.Train)
	if d.Ensemble() == 0 {
		t.Fatal("no stumps learned")
	}
	if d.Ensemble() > c.Rounds {
		t.Fatalf("ensemble %d exceeds rounds %d", d.Ensemble(), c.Rounds)
	}
}

func TestMarginSeparatesTrainingClasses(t *testing.T) {
	c := DefaultConfig()
	c.Rounds = 40
	d := New(c)
	data := smallData(4, 0)
	d.Train(data.Train)
	// On training hotspots the mean margin must exceed the mean margin of
	// random background clips.
	var posSum, negSum float64
	var nPos, nNeg int
	rng := newLCG(7)
	for _, r := range data.Train {
		pts := r.HotspotPoints()
		for _, p := range pts {
			posSum += d.Margin(d.features(r.Layout, p[0], p[1]))
			nPos++
		}
		for k := 0; k < 8; k++ {
			cx := 96 + rng.float64()*(768-192)
			cy := 96 + rng.float64()*(768-192)
			if coreHasHotspot(cx, cy, c.ClipNM, pts) {
				continue
			}
			negSum += d.Margin(d.features(r.Layout, cx, cy))
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		t.Skip("degenerate sample")
	}
	if !(posSum/float64(nPos) > negSum/float64(nNeg)) {
		t.Fatalf("margins do not separate: pos %v neg %v",
			posSum/float64(nPos), negSum/float64(nNeg))
	}
}

func TestUntrainedDetectsNothing(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(1, 0)
	if dets := d.DetectRegion(data.Train[0]); len(dets) != 0 {
		t.Fatalf("untrained ensemble fired %d times", len(dets))
	}
}

func TestBiasMonotone(t *testing.T) {
	c := DefaultConfig()
	c.Rounds = 25
	d := New(c)
	data := smallData(3, 1)
	d.Train(data.Train)
	r := data.Test[0]
	d.Config.Bias = 0
	n0 := len(d.DetectRegion(r))
	d.Config.Bias = 0.5
	n1 := len(d.DetectRegion(r))
	if n1 < n0 {
		t.Fatalf("higher bias cannot reduce detections: %d -> %d", n0, n1)
	}
}

func TestEvaluateWellFormed(t *testing.T) {
	c := DefaultConfig()
	c.Rounds = 20
	d := New(c)
	data := smallData(2, 1)
	d.Train(data.Train)
	o := d.Evaluate(data.Test)
	if o.Detected > o.GroundTruth || o.Elapsed <= 0 {
		t.Fatalf("outcome %+v", o)
	}
}

func TestLCGDeterministic(t *testing.T) {
	a, b := newLCG(5), newLCG(5)
	for i := 0; i < 10; i++ {
		va, vb := a.float64(), b.float64()
		if va != vb {
			t.Fatal("lcg must be deterministic")
		}
		if va < 0 || va >= 1 {
			t.Fatalf("lcg out of [0,1): %v", va)
		}
	}
}
