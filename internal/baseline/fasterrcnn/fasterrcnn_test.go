package fasterrcnn

import (
	"testing"

	"rhsd/internal/dataset"
	"rhsd/internal/litho"
)

func smallData(n int) *dataset.Dataset {
	spec := dataset.CaseSpecs(768)[0]
	return dataset.Generate(spec, litho.DefaultModel(), n, n)
}

func TestNewBuildsAnchorGrid(t *testing.T) {
	d := New(DefaultConfig())
	want := d.featW * d.featW * d.perCell
	if len(d.anchors) != want {
		t.Fatalf("anchors %d want %d", len(d.anchors), want)
	}
	// Generic anchors are several times larger than a 16 px clip.
	if d.anchors[len(d.anchors)/2].W() < 30 {
		t.Fatalf("generic anchors should be natural-image sized, got %v",
			d.anchors[len(d.anchors)/2])
	}
}

func TestDetectRegionUntrainedWellFormed(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(1)
	dets := d.DetectRegion(data.Test[0], 192)
	for _, det := range dets {
		if det.Clip.W() <= 0 || det.Clip.H() <= 0 {
			t.Fatalf("degenerate detection %v", det.Clip)
		}
		if det.Score < d.Config.ScoreThresh {
			t.Fatalf("sub-threshold detection leaked: %v", det.Score)
		}
	}
}

func TestTrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	c := DefaultConfig()
	c.TrainSteps = 40
	d := New(c)
	data := smallData(2)
	d.Train(data.Train, 192)
	out := d.Evaluate(data.Test[:1], 192)
	if out.Detected > out.GroundTruth {
		t.Fatalf("impossible outcome %+v", out)
	}
	if out.Elapsed <= 0 {
		t.Fatal("timing not recorded")
	}
}
