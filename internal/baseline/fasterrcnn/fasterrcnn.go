// Package fasterrcnn implements the "Faster R-CNN [23]" baseline of
// Table 1: a two-stage region-proposal detector in its generic
// object-detection configuration — plain convolutional backbone, anchor
// scales designed for natural images (large relative to hotspot clips),
// whole-box IoU matching and conventional NMS. The paper's finding is that
// this unadapted configuration "performs very poorly on hotspot detection
// tasks": the anchor prior rarely overlaps the small hotspot clips enough
// to generate positive samples, so the detector fires seldom (low accuracy
// and low false-alarm counts, as in Table 1's Faster R-CNN column).
package fasterrcnn

import (
	"math"
	"math/rand"
	"time"

	"rhsd/internal/baseline/generic"
	"rhsd/internal/dataset"
	"rhsd/internal/geom"
	"rhsd/internal/hsd"
	"rhsd/internal/metrics"
	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// Config holds the baseline's hyperparameters.
type Config struct {
	InputSize int
	PitchNM   float64
	// AnchorBases are anchor side lengths in pixels. The generic defaults
	// are sized for natural-image objects, i.e. several times larger than
	// a hotspot clip.
	AnchorBases  []float64
	AnchorRatios []float64
	Backbone     [3]int
	HeadChannels int
	RoISize      int
	RefineFC     int
	PosIoU       float64
	NegIoU       float64
	NMSThreshold float64
	Proposals    int
	ScoreThresh  float64
	BatchAnchors int
	TrainSteps   int
	LearningRate float64
	Momentum     float64
	Seed         int64
}

// DefaultConfig returns the generic configuration used by the benchmark
// harness at the fast profile (region raster 64 px, hotspot clips 16 px).
func DefaultConfig() Config {
	return Config{
		InputSize:    64,
		PitchNM:      12,
		AnchorBases:  []float64{48, 64}, // natural-image scale: 3–4× a clip
		AnchorRatios: []float64{0.5, 1, 2},
		Backbone:     [3]int{8, 16, 24},
		HeadChannels: 32,
		RoISize:      7,
		RefineFC:     48,
		PosIoU:       0.5,
		NegIoU:       0.3,
		NMSThreshold: 0.5,
		Proposals:    16,
		ScoreThresh:  0.5,
		BatchAnchors: 48,
		TrainSteps:   500,
		LearningRate: 0.01,
		Momentum:     0.9,
		Seed:         21,
	}
}

const stride = 8

// Detector is the generic two-stage baseline.
type Detector struct {
	Config Config

	backbone *nn.Sequential
	rpnTrunk *nn.Sequential
	rpnCls   *nn.Conv2D
	rpnReg   *nn.Conv2D
	roi      *hsd.RoIPool
	refineFC *nn.Sequential
	refCls   *nn.Dense
	refReg   *nn.Dense

	anchors []geom.Rect
	perCell int
	featW   int
	rng     *rand.Rand
}

// New builds an untrained detector.
func New(c Config) *Detector {
	rng := rand.New(rand.NewSource(c.Seed))
	d := &Detector{Config: c, rng: rng}
	d.backbone = generic.Backbone("frcnn", c.Backbone, rng)
	d.rpnTrunk = nn.NewSequential(
		nn.NewConv2D("frcnn.rpn", c.Backbone[2], c.HeadChannels, 3, 1, 1, rng),
		nn.NewLeakyReLU(0.05),
	)
	d.perCell = len(c.AnchorBases) * len(c.AnchorRatios)
	d.rpnCls = nn.NewConv2D("frcnn.cls", c.HeadChannels, 2*d.perCell, 1, 1, 0, rng)
	d.rpnReg = nn.NewConv2D("frcnn.reg", c.HeadChannels, 4*d.perCell, 1, 1, 0, rng)
	d.roi = hsd.NewRoIPool(c.RoISize, stride)
	d.refineFC = nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense("frcnn.fc", c.Backbone[2]*c.RoISize*c.RoISize, c.RefineFC, rng),
		nn.NewLeakyReLU(0.05),
	)
	d.refCls = nn.NewDense("frcnn.refcls", c.RefineFC, 2, rng)
	d.refReg = nn.NewDense("frcnn.refreg", c.RefineFC, 4, rng)
	d.featW = c.InputSize / stride
	d.anchors = generic.Anchors(d.featW, stride, c.AnchorBases, c.AnchorRatios)
	return d
}

func (d *Detector) params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, d.backbone.Params()...)
	ps = append(ps, d.rpnTrunk.Params()...)
	ps = append(ps, d.rpnCls.Params()...)
	ps = append(ps, d.rpnReg.Params()...)
	ps = append(ps, d.refineFC.Params()...)
	ps = append(ps, d.refCls.Params()...)
	ps = append(ps, d.refReg.Params()...)
	return ps
}

func (d *Detector) anchorAt(cls, reg *tensor.Tensor, i int) (l0, l1 float32, enc geom.BoxEncoding) {
	a := i % d.perCell
	cell := i / d.perCell
	y := cell / d.featW
	x := cell % d.featW
	l0 = cls.At(0, 2*a, y, x)
	l1 = cls.At(0, 2*a+1, y, x)
	enc = geom.BoxEncoding{
		LX: float64(reg.At(0, 4*a, y, x)),
		LY: float64(reg.At(0, 4*a+1, y, x)),
		LW: float64(reg.At(0, 4*a+2, y, x)),
		LH: float64(reg.At(0, 4*a+3, y, x)),
	}
	return
}

func (d *Detector) scatter(g *tensor.Tensor, i, ch int, v float32, per int) {
	a := i % d.perCell
	cell := i / d.perCell
	y := cell / d.featW
	x := cell % d.featW
	g.Set(g.At(0, per*a+ch, y, x)+v, 0, per*a+ch, y, x)
}

// sampleOf converts a region into the raster + GT clips the detector
// trains on. GT clips are the hotspot-centred clips of size ClipNM.
func (d *Detector) sampleOf(r *dataset.Region, clipNM float64) (raster *tensor.Tensor, gt []geom.Rect) {
	c := d.Config
	x := generic.Raster2Ch(r.Layout, c.InputSize, c.PitchNM)
	for _, p := range r.HotspotPoints() {
		gt = append(gt, geom.RectCWH(p[0]/c.PitchNM, p[1]/c.PitchNM, clipNM/c.PitchNM, clipNM/c.PitchNM))
	}
	return x, gt
}

// Train fits both stages on the training regions. clipNM is the
// ground-truth clip size shared by all detectors in a benchmark run.
func (d *Detector) Train(regions []*dataset.Region, clipNM float64) {
	c := d.Config
	if len(regions) == 0 {
		return
	}
	opt := nn.NewSGD(c.LearningRate, c.Momentum, 0, 1)
	for step := 0; step < c.TrainSteps; step++ {
		r := regions[d.rng.Intn(len(regions))]
		x, gt := d.sampleOf(r, clipNM)
		feat := d.backbone.Forward(x)
		trunk := d.rpnTrunk.Forward(feat)
		clsMap := d.rpnCls.Forward(trunk)
		regMap := d.rpnReg.Forward(trunk)

		targets := generic.Assign(d.anchors, gt, c.PosIoU, c.NegIoU)
		batch := targets.SampleBatch(d.rng, c.BatchAnchors)
		gCls := tensor.New(clsMap.Shape()...)
		gReg := tensor.New(regMap.Shape()...)
		if len(batch) > 0 {
			logits := tensor.New(len(batch), 2)
			labels := make([]int, len(batch))
			for k, i := range batch {
				l0, l1, _ := d.anchorAt(clsMap, regMap, i)
				logits.Set(l0, k, 0)
				logits.Set(l1, k, 1)
				labels[k] = int(targets.Label[i])
			}
			_, grad := nn.SoftmaxCrossEntropy(logits, labels)
			for k, i := range batch {
				d.scatter(gCls, i, 0, grad.At(k, 0), 2)
				d.scatter(gCls, i, 1, grad.At(k, 1), 2)
			}
		}
		var pos []int
		for _, i := range batch {
			if targets.Label[i] == 1 {
				pos = append(pos, i)
			}
		}
		if len(pos) > 0 {
			pred := tensor.New(len(pos), 4)
			tgt := tensor.New(len(pos), 4)
			wts := make([]float32, len(pos))
			for k, i := range pos {
				_, _, enc := d.anchorAt(clsMap, regMap, i)
				for j, v := range enc.Vec4() {
					pred.Set(float32(v), k, j)
				}
				for j, v := range targets.Reg[i].Vec4() {
					tgt.Set(float32(v), k, j)
				}
				wts[k] = 1
			}
			_, grad := nn.SmoothL1(pred, tgt, wts, float64(len(pos)))
			for k, i := range pos {
				for j := 0; j < 4; j++ {
					d.scatter(gReg, i, j, grad.At(k, j), 4)
				}
			}
		}

		// Second stage on proposals + GT.
		props := d.proposals(clsMap, regMap)
		rois := make([]geom.Rect, 0, len(props)+len(gt))
		for _, p := range props {
			rois = append(rois, p.Clip)
		}
		rois = append(rois, gt...)
		var gFeatRef *tensor.Tensor
		if len(rois) > 0 {
			pooled := d.roi.Forward(feat, rois)
			hidden := d.refineFC.Forward(pooled)
			refCls := d.refCls.Forward(hidden)
			refReg := d.refReg.Forward(hidden)
			labels := make([]int, len(rois))
			regTgt := tensor.New(len(rois), 4)
			regW := make([]float32, len(rois))
			nPos := 0
			for i, rb := range rois {
				for _, g := range gt {
					if geom.IoU(rb, g) >= 0.5 {
						labels[i] = 1
						regW[i] = 1
						for j, v := range geom.Encode(g, rb).Vec4() {
							regTgt.Set(float32(v), i, j)
						}
						nPos++
						break
					}
				}
			}
			_, gRefCls := nn.SoftmaxCrossEntropy(refCls, labels)
			_, gRefReg := nn.SmoothL1(refReg, regTgt, regW, float64(max(1, nPos)))
			gHidden := d.refCls.Backward(gRefCls)
			gHidden.Add(d.refReg.Backward(gRefReg))
			gPooled := d.refineFC.Backward(gHidden)
			gFeatRef = d.roi.Backward(gPooled)
		}

		gTrunk := d.rpnCls.Backward(gCls)
		gTrunk.Add(d.rpnReg.Backward(gReg))
		gFeat := d.rpnTrunk.Backward(gTrunk)
		if gFeatRef != nil {
			gFeat.Add(gFeatRef)
		}
		d.backbone.Backward(gFeat)
		opt.Update(d.params())
	}
}

// proposals decodes and filters RPN output with conventional NMS.
func (d *Detector) proposals(clsMap, regMap *tensor.Tensor) []hsd.ScoredClip {
	c := d.Config
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(c.InputSize), Y1: float64(c.InputSize)}
	cand := make([]hsd.ScoredClip, 0, len(d.anchors))
	for i, a := range d.anchors {
		l0, l1, enc := d.anchorAt(clsMap, regMap, i)
		box := geom.Decode(enc, a).Clip(bounds)
		if box.W() < 2 || box.H() < 2 {
			continue
		}
		cand = append(cand, hsd.ScoredClip{Clip: box, Score: sigmoid(l1 - l0)})
	}
	kept := hsd.ConventionalNMS(hsd.TopK(cand, 256), c.NMSThreshold)
	return hsd.TopK(kept, c.Proposals)
}

// DetectRegion runs the two-stage inference on one region, returning
// detections in region nm coordinates.
func (d *Detector) DetectRegion(r *dataset.Region, clipNM float64) []metrics.Detection {
	c := d.Config
	x, _ := d.sampleOf(r, clipNM)
	feat := d.backbone.Forward(x)
	trunk := d.rpnTrunk.Forward(feat)
	clsMap := d.rpnCls.Forward(trunk)
	regMap := d.rpnReg.Forward(trunk)
	props := d.proposals(clsMap, regMap)
	if len(props) == 0 {
		return nil
	}
	rois := make([]geom.Rect, len(props))
	for i, p := range props {
		rois[i] = p.Clip
	}
	pooled := d.roi.Forward(feat, rois)
	hidden := d.refineFC.Forward(pooled)
	refCls := d.refCls.Forward(hidden)
	refReg := d.refReg.Forward(hidden)
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(c.InputSize), Y1: float64(c.InputSize)}
	var scored []hsd.ScoredClip
	for i, rb := range rois {
		score := sigmoid(refCls.At(i, 1) - refCls.At(i, 0))
		if score < c.ScoreThresh {
			continue
		}
		enc := geom.BoxEncoding{
			LX: float64(refReg.At(i, 0)), LY: float64(refReg.At(i, 1)),
			LW: float64(refReg.At(i, 2)), LH: float64(refReg.At(i, 3)),
		}
		box := geom.Decode(enc, rb).Clip(bounds)
		if box.W() < 2 || box.H() < 2 {
			continue
		}
		scored = append(scored, hsd.ScoredClip{Clip: box, Score: score})
	}
	final := hsd.ConventionalNMS(scored, c.NMSThreshold)
	dets := make([]metrics.Detection, len(final))
	for i, s := range final {
		dets[i] = metrics.Detection{Clip: s.Clip.Scale(c.PitchNM), Score: s.Score}
	}
	return dets
}

// Evaluate scores the detector over test regions with wall-clock timing.
func (d *Detector) Evaluate(regions []*dataset.Region, clipNM float64) metrics.Outcome {
	var total metrics.Outcome
	for _, r := range regions {
		start := time.Now()
		dets := d.DetectRegion(r, clipNM)
		elapsed := time.Since(start)
		o := metrics.Evaluate(dets, r.HotspotPoints())
		o.Elapsed = elapsed
		total.Add(o)
	}
	return total
}

func sigmoid(x float32) float64 {
	d := float64(x)
	if d > 40 {
		return 1
	}
	if d < -40 {
		return 0
	}
	return 1 / (1 + math.Exp(-d))
}
