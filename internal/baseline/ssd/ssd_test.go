package ssd

import (
	"testing"

	"rhsd/internal/dataset"
	"rhsd/internal/litho"
)

func smallData(n int) *dataset.Dataset {
	spec := dataset.CaseSpecs(768)[0]
	return dataset.Generate(spec, litho.DefaultModel(), n, n)
}

func TestTwoScaleAnchors(t *testing.T) {
	d := New(DefaultConfig())
	if d.feat2 != d.feat1/2 {
		t.Fatalf("scale-2 map %d want %d", d.feat2, d.feat1/2)
	}
	if len(d.anchors1) != d.feat1*d.feat1*d.per1 {
		t.Fatalf("scale-1 anchors %d", len(d.anchors1))
	}
	if len(d.anchors2) != d.feat2*d.feat2*d.per2 {
		t.Fatalf("scale-2 anchors %d", len(d.anchors2))
	}
	// Scale-2 boxes are larger.
	if d.anchors2[0].Area() <= d.anchors1[0].Area() {
		t.Fatal("scale-2 default boxes should be larger")
	}
}

func TestHeadIndexRoundTrip(t *testing.T) {
	d := New(DefaultConfig())
	x, _ := d.sampleOf(smallData(1).Test[0], 192)
	c1, r1, c2, r2 := d.forward(x)
	// Reading the last anchor of each scale must not panic and must index
	// consistent positions.
	d.headAt(c1, r1, c2, r2, len(d.anchors1)-1)
	d.headAt(c1, r1, c2, r2, len(d.anchors1)+len(d.anchors2)-1)
}

func TestDetectRegionUntrainedWellFormed(t *testing.T) {
	d := New(DefaultConfig())
	data := smallData(1)
	dets := d.DetectRegion(data.Test[0], 192)
	for _, det := range dets {
		if det.Score < d.Config.ScoreThresh {
			t.Fatalf("sub-threshold detection leaked: %v", det.Score)
		}
	}
}

func TestTrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	c := DefaultConfig()
	c.TrainSteps = 40
	d := New(c)
	data := smallData(2)
	d.Train(data.Train, 192)
	out := d.Evaluate(data.Test[:1], 192)
	if out.Detected > out.GroundTruth {
		t.Fatalf("impossible outcome %+v", out)
	}
	if out.Elapsed <= 0 {
		t.Fatal("timing not recorded")
	}
}
