// Package ssd implements the "SSD [24]" baseline of Table 1: a one-stage
// single-shot detector with default boxes on two feature scales, generic
// whole-box matching and conventional NMS. Its default boxes are close
// enough to hotspot-clip scale to fire, but with no second-stage
// classification to veto weak candidates the detector is false-alarm
// heavy — the behaviour Table 1 reports (decent accuracy, nearly an order
// of magnitude more false alarms).
package ssd

import (
	"math"
	"math/rand"
	"time"

	"rhsd/internal/baseline/generic"
	"rhsd/internal/dataset"
	"rhsd/internal/geom"
	"rhsd/internal/hsd"
	"rhsd/internal/metrics"
	"rhsd/internal/nn"
	"rhsd/internal/tensor"
)

// Config holds the baseline's hyperparameters.
type Config struct {
	InputSize int
	PitchNM   float64
	// Bases1 are default-box sizes on the stride-8 map; Bases2 on the
	// stride-16 map.
	Bases1, Bases2 []float64
	Ratios         []float64
	Backbone       [3]int
	Extra          int // channels of the stride-16 extra stage
	PosIoU         float64
	NegIoU         float64
	NMSThreshold   float64
	ScoreThresh    float64
	BatchAnchors   int
	TrainSteps     int
	LearningRate   float64
	Momentum       float64
	Seed           int64
}

// DefaultConfig returns the configuration used by the benchmark harness
// at the fast profile.
func DefaultConfig() Config {
	return Config{
		InputSize:    64,
		PitchNM:      12,
		Bases1:       []float64{12, 20},
		Bases2:       []float64{28, 40},
		Ratios:       []float64{0.5, 1, 2},
		Backbone:     [3]int{8, 16, 24},
		Extra:        24,
		PosIoU:       0.45,
		NegIoU:       0.3,
		NMSThreshold: 0.5,
		// One-stage detectors are thresholded low to reach usable recall;
		// that is precisely what makes them false-alarm heavy here.
		ScoreThresh:  0.35,
		BatchAnchors: 64,
		TrainSteps:   500,
		LearningRate: 0.01,
		Momentum:     0.9,
		Seed:         31,
	}
}

const stride1 = 8

// Detector is the one-stage baseline.
type Detector struct {
	Config Config

	backbone *nn.Sequential
	extra    *nn.Sequential // stride-8 → stride-16 stage
	head1Cls *nn.Conv2D
	head1Reg *nn.Conv2D
	head2Cls *nn.Conv2D
	head2Reg *nn.Conv2D

	anchors1, anchors2 []geom.Rect
	per1, per2         int
	feat1, feat2       int
	rng                *rand.Rand
}

// New builds an untrained detector.
func New(c Config) *Detector {
	rng := rand.New(rand.NewSource(c.Seed))
	d := &Detector{Config: c, rng: rng}
	d.backbone = generic.Backbone("ssd", c.Backbone, rng)
	d.extra = nn.NewSequential(
		nn.NewConv2D("ssd.extra", c.Backbone[2], c.Extra, 3, 2, 1, rng),
		nn.NewLeakyReLU(0.05),
	)
	d.per1 = len(c.Bases1) * len(c.Ratios)
	d.per2 = len(c.Bases2) * len(c.Ratios)
	d.head1Cls = nn.NewConv2D("ssd.h1c", c.Backbone[2], 2*d.per1, 3, 1, 1, rng)
	d.head1Reg = nn.NewConv2D("ssd.h1r", c.Backbone[2], 4*d.per1, 3, 1, 1, rng)
	d.head2Cls = nn.NewConv2D("ssd.h2c", c.Extra, 2*d.per2, 3, 1, 1, rng)
	d.head2Reg = nn.NewConv2D("ssd.h2r", c.Extra, 4*d.per2, 3, 1, 1, rng)
	d.feat1 = c.InputSize / stride1
	d.feat2 = d.feat1 / 2
	d.anchors1 = generic.Anchors(d.feat1, stride1, c.Bases1, c.Ratios)
	d.anchors2 = generic.Anchors(d.feat2, 2*stride1, c.Bases2, c.Ratios)
	return d
}

func (d *Detector) params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, d.backbone.Params()...)
	ps = append(ps, d.extra.Params()...)
	ps = append(ps, d.head1Cls.Params()...)
	ps = append(ps, d.head1Reg.Params()...)
	ps = append(ps, d.head2Cls.Params()...)
	ps = append(ps, d.head2Reg.Params()...)
	return ps
}

// allAnchors returns the concatenated anchor list; index < len(anchors1)
// addresses scale 1.
func (d *Detector) allAnchors() []geom.Rect {
	out := make([]geom.Rect, 0, len(d.anchors1)+len(d.anchors2))
	out = append(out, d.anchors1...)
	return append(out, d.anchors2...)
}

// headAt reads the logits/regression of global anchor index i from the
// two head maps.
func (d *Detector) headAt(c1, r1, c2, r2 *tensor.Tensor, i int) (l0, l1 float32, enc geom.BoxEncoding) {
	if i < len(d.anchors1) {
		return readHead(c1, r1, i, d.per1, d.feat1)
	}
	return readHead(c2, r2, i-len(d.anchors1), d.per2, d.feat2)
}

func readHead(cls, reg *tensor.Tensor, i, per, featW int) (l0, l1 float32, enc geom.BoxEncoding) {
	a := i % per
	cell := i / per
	y := cell / featW
	x := cell % featW
	l0 = cls.At(0, 2*a, y, x)
	l1 = cls.At(0, 2*a+1, y, x)
	enc = geom.BoxEncoding{
		LX: float64(reg.At(0, 4*a, y, x)),
		LY: float64(reg.At(0, 4*a+1, y, x)),
		LW: float64(reg.At(0, 4*a+2, y, x)),
		LH: float64(reg.At(0, 4*a+3, y, x)),
	}
	return
}

func scatterHead(g *tensor.Tensor, i, per, featW, width, ch int, v float32) {
	a := i % per
	cell := i / per
	y := cell / featW
	x := cell % featW
	g.Set(g.At(0, width*a+ch, y, x)+v, 0, width*a+ch, y, x)
}

func (d *Detector) sampleOf(r *dataset.Region, clipNM float64) (*tensor.Tensor, []geom.Rect) {
	c := d.Config
	x := generic.Raster2Ch(r.Layout, c.InputSize, c.PitchNM)
	var gt []geom.Rect
	for _, p := range r.HotspotPoints() {
		gt = append(gt, geom.RectCWH(p[0]/c.PitchNM, p[1]/c.PitchNM, clipNM/c.PitchNM, clipNM/c.PitchNM))
	}
	return x, gt
}

// forward runs the backbone and both head scales.
func (d *Detector) forward(x *tensor.Tensor) (c1, r1, c2, r2 *tensor.Tensor) {
	feat1 := d.backbone.Forward(x)
	feat2 := d.extra.Forward(feat1)
	return d.head1Cls.Forward(feat1), d.head1Reg.Forward(feat1),
		d.head2Cls.Forward(feat2), d.head2Reg.Forward(feat2)
}

// Train fits the single-stage heads on the training regions.
func (d *Detector) Train(regions []*dataset.Region, clipNM float64) {
	c := d.Config
	if len(regions) == 0 {
		return
	}
	anchors := d.allAnchors()
	opt := nn.NewSGD(c.LearningRate, c.Momentum, 0, 1)
	for step := 0; step < c.TrainSteps; step++ {
		r := regions[d.rng.Intn(len(regions))]
		x, gt := d.sampleOf(r, clipNM)
		c1, r1, c2, r2 := d.forward(x)
		targets := generic.Assign(anchors, gt, c.PosIoU, c.NegIoU)
		batch := targets.SampleBatch(d.rng, c.BatchAnchors)
		gC1 := tensor.New(c1.Shape()...)
		gR1 := tensor.New(r1.Shape()...)
		gC2 := tensor.New(c2.Shape()...)
		gR2 := tensor.New(r2.Shape()...)
		if len(batch) > 0 {
			logits := tensor.New(len(batch), 2)
			labels := make([]int, len(batch))
			for k, i := range batch {
				l0, l1, _ := d.headAt(c1, r1, c2, r2, i)
				logits.Set(l0, k, 0)
				logits.Set(l1, k, 1)
				labels[k] = int(targets.Label[i])
			}
			_, grad := nn.SoftmaxCrossEntropy(logits, labels)
			for k, i := range batch {
				d.scatterCls(gC1, gC2, i, grad.At(k, 0), grad.At(k, 1))
			}
		}
		var pos []int
		for _, i := range batch {
			if targets.Label[i] == 1 {
				pos = append(pos, i)
			}
		}
		if len(pos) > 0 {
			pred := tensor.New(len(pos), 4)
			tgt := tensor.New(len(pos), 4)
			wts := make([]float32, len(pos))
			for k, i := range pos {
				_, _, enc := d.headAt(c1, r1, c2, r2, i)
				for j, v := range enc.Vec4() {
					pred.Set(float32(v), k, j)
				}
				for j, v := range targets.Reg[i].Vec4() {
					tgt.Set(float32(v), k, j)
				}
				wts[k] = 1
			}
			_, grad := nn.SmoothL1(pred, tgt, wts, float64(len(pos)))
			for k, i := range pos {
				for j := 0; j < 4; j++ {
					d.scatterReg(gR1, gR2, i, j, grad.At(k, j))
				}
			}
		}
		gFeat2 := d.head2Cls.Backward(gC2)
		gFeat2.Add(d.head2Reg.Backward(gR2))
		gFeat1 := d.extra.Backward(gFeat2)
		gFeat1.Add(d.head1Cls.Backward(gC1))
		gFeat1.Add(d.head1Reg.Backward(gR1))
		d.backbone.Backward(gFeat1)
		opt.Update(d.params())
	}
}

func (d *Detector) scatterCls(g1, g2 *tensor.Tensor, i int, v0, v1 float32) {
	if i < len(d.anchors1) {
		scatterHead(g1, i, d.per1, d.feat1, 2, 0, v0)
		scatterHead(g1, i, d.per1, d.feat1, 2, 1, v1)
	} else {
		j := i - len(d.anchors1)
		scatterHead(g2, j, d.per2, d.feat2, 2, 0, v0)
		scatterHead(g2, j, d.per2, d.feat2, 2, 1, v1)
	}
}

func (d *Detector) scatterReg(g1, g2 *tensor.Tensor, i, ch int, v float32) {
	if i < len(d.anchors1) {
		scatterHead(g1, i, d.per1, d.feat1, 4, ch, v)
	} else {
		scatterHead(g2, i-len(d.anchors1), d.per2, d.feat2, 4, ch, v)
	}
}

// DetectRegion runs single-shot inference on one region, returning
// detections in region nm coordinates.
func (d *Detector) DetectRegion(r *dataset.Region, clipNM float64) []metrics.Detection {
	c := d.Config
	x, _ := d.sampleOf(r, clipNM)
	c1, r1, c2, r2 := d.forward(x)
	bounds := geom.Rect{X0: 0, Y0: 0, X1: float64(c.InputSize), Y1: float64(c.InputSize)}
	anchors := d.allAnchors()
	var cand []hsd.ScoredClip
	for i, a := range anchors {
		l0, l1, enc := d.headAt(c1, r1, c2, r2, i)
		score := sigmoid(l1 - l0)
		if score < c.ScoreThresh {
			continue
		}
		box := geom.Decode(enc, a).Clip(bounds)
		if box.W() < 2 || box.H() < 2 {
			continue
		}
		cand = append(cand, hsd.ScoredClip{Clip: box, Score: score})
	}
	final := hsd.ConventionalNMS(hsd.TopK(cand, 256), c.NMSThreshold)
	dets := make([]metrics.Detection, len(final))
	for i, s := range final {
		dets[i] = metrics.Detection{Clip: s.Clip.Scale(c.PitchNM), Score: s.Score}
	}
	return dets
}

// Evaluate scores the detector over test regions with wall-clock timing.
func (d *Detector) Evaluate(regions []*dataset.Region, clipNM float64) metrics.Outcome {
	var total metrics.Outcome
	for _, r := range regions {
		start := time.Now()
		dets := d.DetectRegion(r, clipNM)
		elapsed := time.Since(start)
		o := metrics.Evaluate(dets, r.HotspotPoints())
		o.Elapsed = elapsed
		total.Add(o)
	}
	return total
}

func sigmoid(x float32) float64 {
	v := float64(x)
	if v > 40 {
		return 1
	}
	if v < -40 {
		return 0
	}
	return 1 / (1 + math.Exp(-v))
}
