package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv2DNilBias(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := New(1, 2, 5, 5)
	w := New(3, 2, 3, 3)
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	y := Conv2D(x, w, nil, o)
	zero := New(3)
	want := Conv2D(x, w, zero, o)
	for i := range y.Data() {
		if y.Data()[i] != want.Data()[i] {
			t.Fatal("nil bias must equal zero bias")
		}
	}
}

func TestConv2DRejectsMismatchedWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Conv2D(New(1, 3, 4, 4), New(2, 2, 3, 3), nil, ConvOpts{Kernel: 3, Stride: 1, Padding: 1})
}

func TestConv2DBatchIndependence(t *testing.T) {
	// Batched convolution equals per-sample convolution.
	rng := rand.New(rand.NewSource(12))
	x := New(3, 2, 6, 6)
	w := New(4, 2, 3, 3)
	b := New(4)
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	b.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	y := Conv2D(x, w, b, o)
	for i := 0; i < 3; i++ {
		xi := New(1, 2, 6, 6)
		copy(xi.Data(), x.Data()[i*2*36:(i+1)*2*36])
		yi := Conv2D(xi, w, b, o)
		for j := range yi.Data() {
			if math.Abs(float64(yi.Data()[j]-y.Data()[i*len(yi.Data())+j])) > 1e-5 {
				t.Fatalf("batch entry %d differs at %d", i, j)
			}
		}
	}
}

func TestConv2DLinearity(t *testing.T) {
	// conv(a*x) = a*conv(x) with zero bias.
	rng := rand.New(rand.NewSource(13))
	x := New(1, 1, 6, 6)
	w := New(2, 1, 3, 3)
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	y1 := Conv2D(x, w, nil, o)
	x2 := x.Clone()
	x2.Scale(2.5)
	y2 := Conv2D(x2, w, nil, o)
	for i := range y1.Data() {
		if math.Abs(float64(y2.Data()[i]-2.5*y1.Data()[i])) > 1e-4 {
			t.Fatal("convolution must be linear in the input")
		}
	}
}

func TestConv2DTranslationEquivariance(t *testing.T) {
	// Shifting the input by the stride shifts the (interior of the)
	// output by one cell.
	rng := rand.New(rand.NewSource(14))
	w := New(1, 1, 3, 3)
	w.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	x := New(1, 1, 10, 10)
	x.Set(1, 0, 0, 4, 4)
	y1 := Conv2D(x, w, nil, o)
	xs := New(1, 1, 10, 10)
	xs.Set(1, 0, 0, 4, 5)
	y2 := Conv2D(xs, w, nil, o)
	// Compare interiors offset by one column.
	for yy := 2; yy < 8; yy++ {
		for xx := 2; xx < 7; xx++ {
			if math.Abs(float64(y1.At(0, 0, yy, xx)-y2.At(0, 0, yy, xx+1))) > 1e-6 {
				t.Fatalf("equivariance broken at (%d,%d)", yy, xx)
			}
		}
	}
}

func TestMaxPoolStrideOneOverlapping(t *testing.T) {
	x := FromSlice([]float32{
		1, 5, 2,
		7, 3, 8,
		4, 9, 6,
	}, 1, 1, 3, 3)
	y, _ := MaxPool2D(x, 2, 1)
	want := []float32{7, 8, 9, 9}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("overlapping pool: %v want %v", y.Data(), want)
		}
	}
}

func TestSplitChannelsRejectsBadCounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitChannels(New(1, 4, 2, 2), 3, 3)
}

func TestGemmTransBothMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// c = aᵀ · bᵀ with a [k,m], b [n,k].
	m, n, k := 3, 4, 5
	a := New(k, m)
	b := New(n, k)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	c := make([]float32, m*n)
	Gemm(true, true, m, n, k, 1, a.Data(), b.Data(), 0, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for p := 0; p < k; p++ {
				want += float64(a.At(p, i)) * float64(b.At(j, p))
			}
			if math.Abs(want-float64(c[i*n+j])) > 1e-4 {
				t.Fatalf("transAB mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmAlphaScaling(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	c := make([]float32, 4)
	Gemm(false, false, 2, 2, 2, 2.5, a.Data(), b.Data(), 0, c)
	want := []float32{2.5, 5, 7.5, 10}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("alpha scaling: %v", c)
		}
	}
}

func TestDeconvStride1KernelFlipRelation(t *testing.T) {
	// For stride 1, deconvolution with weight w equals correlation with
	// the spatially flipped kernel (the conv/deconv duality).
	rng := rand.New(rand.NewSource(16))
	x := New(1, 1, 6, 6)
	x.RandN(rng, 1)
	w := New(1, 1, 3, 3) // [C=1, OC=1, 3, 3]
	w.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	y := Deconv2D(x, w, nil, o)
	flipped := New(1, 1, 3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			flipped.Set(w.At(0, 0, 2-i, 2-j), 0, 0, i, j)
		}
	}
	want := Conv2D(x, flipped, nil, o)
	for i := range y.Data() {
		if math.Abs(float64(y.Data()[i]-want.Data()[i])) > 1e-4 {
			t.Fatalf("deconv/flip-conv duality broken at %d: %v vs %v",
				i, y.Data()[i], want.Data()[i])
		}
	}
}
