package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// quantAdversarialInputs is the exhaustive edge-case table the fast
// quantize path is pinned over: every IEEE special class, both signs,
// denormals, last-ulp rounding boundaries and the clamp edges.
func quantAdversarialInputs() []float32 {
	nanPayload := math.Float32frombits(0x7FC00F0F) // quiet NaN, nonzero payload
	nanNeg := math.Float32frombits(0xFFC00001)     // negative quiet NaN
	nanSig := math.Float32frombits(0x7F800001)     // signalling-bit NaN
	vals := []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), nanPayload, nanNeg, nanSig,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		0x1p-126, -0x1p-126, // smallest normals
		math.Float32frombits(0x007FFFFF), // largest denormal
		math.MaxFloat32, -math.MaxFloat32,
		1 << 22, -(1 << 22), 1<<22 + 2, 1 << 23, -(1 << 23),
	}
	// Round-to-even boundaries: exact half-integers in both directions,
	// and their one-ulp neighbors.
	for _, h := range []float32{0.5, 1.5, 2.5, 63.5, 126.5, 127.5, 128.5} {
		for _, s := range []float32{1, -1} {
			v := s * h
			vals = append(vals,
				v,
				math.Float32frombits(math.Float32bits(v)+1),
				math.Float32frombits(math.Float32bits(v)-1))
		}
	}
	// A dense ramp through the representable range plus random fill.
	for i := -300; i <= 300; i++ {
		vals = append(vals, float32(i)/2.374)
	}
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 4096; i++ {
		vals = append(vals, float32(rng.NormFloat64()*40))
	}
	return vals
}

func quantTestParams() []QuantParams {
	return []QuantParams{
		{Scale: 1, Zero: 0},
		{Scale: 0.034, Zero: 17},
		{Scale: 0.25, Zero: 127},
		{Scale: 3.5, Zero: 64},
		{Scale: 1e-6, Zero: 3},
		{Scale: 1e6, Zero: 90},
	}
}

// TestQuantizeSliceFastParity pins the AVX2 quantize kernel
// bit-identical to its portable twin over the adversarial input table —
// NaN payloads, infinities, denormals, rounding boundaries — at every
// alignment of the 32-element SIMD split (so each edge case is seen by
// both the vector body and the scalar tail).
func TestQuantizeSliceFastParity(t *testing.T) {
	if !quantSIMDAvailable {
		t.Skip("no AVX2 quantize kernel on this host")
	}
	inputs := quantAdversarialInputs()
	for _, p := range quantTestParams() {
		rcp, ok := quantRecip(p.Scale)
		if !ok {
			t.Fatalf("params %+v unexpectedly outside the fast-path contract", p)
		}
		for _, off := range []int{0, 1, 7, 31} {
			src := inputs[min(off, len(inputs)):]
			want := make([]uint8, len(src))
			got := make([]uint8, len(src))
			quantizeSliceFastGo(want, src, rcp, p.Zero)
			quantizeSliceFast(got, src, rcp, p.Zero)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("params %+v off %d: src[%d] = %x (bits %08x): asm %d vs twin %d",
						p, off, i, src[i], math.Float32bits(src[i]), got[i], want[i])
				}
			}
		}
	}
}

// TestQuantizeSliceFastVsExactTolerance bounds the documented rounding
// difference between the reciprocal-multiply fast path and the exact
// float64-division reference: on any input the two may differ by at
// most one quantized step, and on the adversarial table plus a large
// random sample the difference must be rare.
func TestQuantizeSliceFastVsExactTolerance(t *testing.T) {
	inputs := quantAdversarialInputs()
	for _, p := range quantTestParams() {
		fast := make([]uint8, len(inputs))
		exact := make([]uint8, len(inputs))
		p.QuantizeSlice(fast, inputs)
		p.quantizeSliceExact(exact, inputs)
		diffs := 0
		for i := range inputs {
			d := int(fast[i]) - int(exact[i])
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("params %+v: src[%d] = %v: fast %d vs exact %d differs by more than one step",
					p, i, inputs[i], fast[i], exact[i])
			}
			if d == 1 {
				diffs++
			}
		}
		if diffs*100 > len(inputs) {
			t.Fatalf("params %+v: %d/%d one-step differences (> 1%%): boundary drift is not rare",
				p, diffs, len(inputs))
		}
	}
}

// TestQuantizeSliceMatchesScalarQuantize pins QuantizeSlice (whichever
// path it takes) to the one-value Quantize reference within the
// documented one-step tolerance, and exactly on specials: NaN must map
// to the zero point and ±Inf to the range ends on both paths.
func TestQuantizeSliceMatchesScalarQuantize(t *testing.T) {
	inputs := quantAdversarialInputs()
	for _, p := range quantTestParams() {
		got := make([]uint8, len(inputs))
		p.QuantizeSlice(got, inputs)
		for i, x := range inputs {
			want := p.Quantize(x)
			d := int(got[i]) - int(want)
			if d < 0 {
				d = -d
			}
			special := x != x || math.IsInf(float64(x), 0)
			if special && d != 0 {
				t.Fatalf("params %+v: special src[%d] = %v: slice %d vs scalar %d", p, i, x, got[i], want)
			}
			if d > 1 {
				t.Fatalf("params %+v: src[%d] = %v: slice %d vs scalar %d", p, i, x, got[i], want)
			}
		}
	}
}

// TestQuantizeSliceExactFallback forces the scales outside the fast
// path's contract — zero, NaN, Inf, denormal, and the underflowed
// envelope's SmallestNonzeroFloat32 (whose reciprocal overflows) — and
// checks QuantizeSlice still produces the exact-path answer.
func TestQuantizeSliceExactFallback(t *testing.T) {
	scales := []float32{
		0,
		math.SmallestNonzeroFloat32,
		math.Float32frombits(0x007FFFFF), // largest denormal
		float32(math.Inf(1)),
		float32(math.NaN()),
		math.MaxFloat32, // reciprocal is denormal
	}
	src := []float32{0, 1, -1, 50, 1e30, -1e30, float32(math.NaN())}
	for _, s := range scales {
		p := QuantParams{Scale: s, Zero: 5}
		if _, ok := quantRecip(s); ok {
			t.Fatalf("scale %v (bits %08x) unexpectedly inside the fast-path contract", s, math.Float32bits(s))
		}
		got := make([]uint8, len(src))
		want := make([]uint8, len(src))
		p.QuantizeSlice(got, src)
		p.quantizeSliceExact(want, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scale %v src[%d] = %v: QuantizeSlice %d vs exact %d", s, i, src[i], got[i], want[i])
			}
		}
	}
}

// TestQuantizeSliceLengthMismatchPanics pins the length contract: a dst
// sized for a different tensor than src is a caller bug and must panic,
// not silently quantize a prefix.
func TestQuantizeSliceLengthMismatchPanics(t *testing.T) {
	p := QuantParams{Scale: 1}
	for _, sh := range []struct{ d, s int }{{4, 3}, {3, 4}, {0, 1}} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("dst %d src %d: no panic", sh.d, sh.s)
				}
				if msg, _ := r.(string); !strings.Contains(msg, "QuantizeSlice") {
					t.Fatalf("dst %d src %d: unexpected panic %v", sh.d, sh.s, r)
				}
			}()
			p.QuantizeSlice(make([]uint8, sh.d), make([]float32, sh.s))
		}()
	}
}

// TestQuantRecipContract pins the gate itself: normal scales with
// normal reciprocals are accepted, everything else is not.
func TestQuantRecipContract(t *testing.T) {
	accept := []float32{1, 0.5, 0.034, 3.5, 1e-6, 1e6, -1, 0x1p-126 * 2}
	for _, s := range accept {
		if _, ok := quantRecip(s); !ok {
			t.Errorf("scale %v rejected, want accepted", s)
		}
	}
	reject := []float32{0, float32(math.Copysign(0, -1)), math.SmallestNonzeroFloat32,
		math.Float32frombits(0x007FFFFF), float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), math.MaxFloat32}
	for _, s := range reject {
		if rcp, ok := quantRecip(s); ok {
			t.Errorf("scale %v (bits %08x) accepted with rcp %v, want rejected", s, math.Float32bits(s), rcp)
		}
	}
}
