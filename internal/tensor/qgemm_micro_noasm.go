//go:build !amd64

package tensor

// No int8 assembly kernels off amd64: only the portable exact reference
// is registered and "qgo" stays the default.
var qarchKernels []*qgemmKernel

var qarchPreferred []string

func qarchKernelUsable(kr *qgemmKernel) bool {
	switch kr.kind {
	case qmicroGoExact, qmicroGoSat16:
		return true
	default:
		return false
	}
}

// qinterleaveRows writes dst[s*4+j] = rj[s] for s < n (see the amd64
// variant for the contract).
func qinterleaveRows(dst []uint8, r0, r1, r2, r3 []uint8, n int) {
	for s := 0; s < n; s++ {
		d := dst[s*4 : s*4+4]
		d[0], d[1], d[2], d[3] = r0[s], r1[s], r2[s], r3[s]
	}
}

// qgemmMicroRun executes one int8 micro-kernel invocation (see the
// amd64 variant for the contract).
func qgemmMicroRun(kind qmicroKind, mr, nr, kc4 int, pa []int8, pb []uint8, acc *[qgemmMaxTile]int32) {
	if kc4 <= 0 {
		tile := acc[:mr*nr]
		for i := range tile {
			tile[i] = 0
		}
		return
	}
	switch kind {
	case qmicroGoExact:
		qgemmMicroGoExact(mr, nr, kc4, pa, pb, acc)
	case qmicroGoSat16:
		qgemmMicroGoSat16(mr, nr, kc4, pa, pb, acc)
	default:
		panic("tensor: unknown int8 micro-kernel kind")
	}
}
