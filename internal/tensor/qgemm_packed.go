package tensor

import (
	"sync"

	"rhsd/internal/parallel"
)

// Packed cache-blocked int8 GEMM, the quantized sibling of
// gemm_packed.go. The block structure is identical — packed A panels
// reused across column blocks, per-slot B pack buffers, MR×NR register
// tiles — with three int8-specific twists:
//
//   - Panels are laid out in 4-deep k-groups (one dword per row/column
//     per group), the granule VPMADDUBSW and VPDPBUSD consume: A panels
//     are [kc4][MR][4]int8, B panels [kc4][NR][4]uint8. K-tails zero-pad
//     the A side, which makes the B side's tail bytes irrelevant.
//   - Accumulation is int32 and exact, so k-blocks may combine in any
//     grouping without a numerics concern. When k spans several blocks
//     the per-tile sums carry across blocks in a per-slot int32 buffer;
//     a single k-block dequantizes straight from the register tile.
//   - The epilogue fuses dequantization with the conv tail: for output
//     row r, C[r,s] = deqScale[r]·(acc[r,s] − corr[r]) + bias[r], then
//     an optional leaky ReLU. corr[r] = zp·Σ_k w_q[r,k] is the
//     activation zero-point correction: Σ w_q·(x_q − zp) rewritten so
//     the kernel multiplies raw bytes. Padding taps quantize real 0.0
//     to exactly zp, so their corrected contribution is exactly zero —
//     quantized and float conv see identical padding semantics.
//
// A panels are packed once per weight tensor per kernel geometry
// (QConvWeights), not per call: weights are immutable during inference,
// and pre-packing for every usable kernel keeps SetQGemmKernel swaps
// race-free.

// qpool recycles typed pack/carry buffers across quantized GEMM calls,
// mirroring packBufPool's power-of-two size classes and per-class cap.
type qpool[T int8 | uint8 | int32] struct {
	mu   sync.Mutex
	bins map[int][][]T
}

func (p *qpool[T]) get(n int) []T {
	class := sizeClass(n)
	p.mu.Lock()
	if p.bins == nil {
		p.bins = make(map[int][][]T)
	}
	bin := p.bins[class]
	if len(bin) > 0 {
		buf := bin[len(bin)-1]
		p.bins[class] = bin[:len(bin)-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]T, n, 1<<class)
}

func (p *qpool[T]) put(buf []T) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	class := sizeClass(len(buf))
	if 1<<class != len(buf) {
		return
	}
	p.mu.Lock()
	if p.bins == nil {
		p.bins = make(map[int][][]T)
	}
	if len(p.bins[class]) < packBufPoolPerClass {
		p.bins[class] = append(p.bins[class], buf)
	}
	p.mu.Unlock()
}

var (
	qpackAPool qpool[int8]  // dense-entry A panels (conv A is pre-packed)
	qbytePool  qpool[uint8] // B panels and quantized activation images
	qcarryPool qpool[int32] // cross-k-block tile carries
)

// qepilogue is the fused dequantize-and-finish tail of a quantized
// GEMM; passed by value for the same escape-analysis reason as bSource.
type qepilogue struct {
	deqScale []float32 // [m] scaleW[r]·scaleAct
	corr     []int32   // [m] zp·rowSum[r]
	bias     []float32 // [m] channel bias, nil for none
	act      bool      // apply leaky ReLU
	slope    float32
}

// qbSource describes where B panels come from: a dense k×n uint8 matrix
// or a virtual im2col lowering of a quantized [c,h,w] image whose
// out-of-image taps read as zero (the quantized zero point).
type qbSource struct {
	im2col      bool
	data        []uint8
	k, n        int
	zero        uint8 // im2col pad byte: the quantized representation of 0.0
	c, h, w, ow int
	o           ConvOpts
}

func qdenseB(k, n int, b []uint8) qbSource {
	return qbSource{data: b, k: k, n: n}
}

func qim2colB(x []uint8, c, h, w int, o ConvOpts, zero uint8) qbSource {
	return qbSource{
		im2col: true,
		data:   x,
		k:      c * o.Kernel * o.Kernel,
		n:      o.OutDim(h) * o.OutDim(w),
		zero:   zero,
		c:      c, h: h, w: w, ow: o.OutDim(w),
		o: o,
	}
}

// pack lays the (pc..pc+kc, jc..jc+nc) block of B out as
// [nPanels][kc4][NR][4] panels: byte (g, s, j) holds B[pc+4g+j, j0+s].
// Columns beyond the block and k-tail bytes pad with zero — both are
// multiplied by zero-padded A or discarded by the tile store. Full
// 4-row k-groups interleave with the SIMD transpose; only the k-tail
// group (kc%4 lanes) takes the scalar path.
func (bs qbSource) pack(kr *qgemmKernel, pb []uint8, jc, nc, pc, kc int) {
	if bs.im2col {
		bs.packIm2col(kr, pb, jc, nc, pc, kc)
		return
	}
	nr, kcStride := kr.nr, kr.kc
	n, b := bs.n, bs.data
	kc4 := (kc + 3) / 4
	fullG := kc / 4
	nPanels := (nc + nr - 1) / nr
	for np := 0; np < nPanels; np++ {
		dst := pb[np*kcStride*nr:]
		j0 := jc + np*nr
		cols := min(jc+nc-j0, nr)
		for g := 0; g < fullG; g++ {
			gd := dst[g*nr*4 : (g+1)*nr*4]
			p := pc + g*4
			qinterleaveRows(gd, b[p*n+j0:], b[(p+1)*n+j0:], b[(p+2)*n+j0:], b[(p+3)*n+j0:], cols)
			for i := cols * 4; i < nr*4; i++ {
				gd[i] = 0
			}
		}
		for g := fullG; g < kc4; g++ {
			gd := dst[g*nr*4 : (g+1)*nr*4]
			for jj := 0; jj < 4; jj++ {
				p := g*4 + jj
				if p >= kc {
					for s := 0; s < nr; s++ {
						gd[s*4+jj] = 0
					}
					continue
				}
				brow := b[(pc+p)*n+j0:]
				for s := 0; s < cols; s++ {
					gd[s*4+jj] = brow[s]
				}
				for s := cols; s < nr; s++ {
					gd[s*4+jj] = 0
				}
			}
		}
	}
}

// fillBytes sets every byte of b to v (the im2col zero point).
func fillBytes(b []uint8, v uint8) {
	for i := range b {
		b[i] = v
	}
}

// packIm2col packs B panels straight from the quantized image — the
// same incremental (channel, ky, kx) × (oy, ox) walk as the float
// packer, interleaved into 4-deep k-groups, with out-of-image taps
// writing the quantized zero point instead of 0.0.
//
// The walk writes each im2col row contiguously into a pooled scratch
// (stride-1 interior segments become one memmove) and the 4-deep
// interleave happens afterwards with the SIMD transpose — the direct
// stride-4 byte scatter this replaces dominated the whole quantized
// GEMM.
func (bs qbSource) packIm2col(kr *qgemmKernel, pb []uint8, jc, nc, pc, kc int) {
	nr, kcStride := kr.nr, kr.kc
	o := bs.o
	kern, stride := o.Kernel, o.Stride
	h, w, ow := bs.h, bs.w, bs.ow
	x := bs.data
	zp := bs.zero
	kc4 := (kc + 3) / 4
	nPanels := (nc + nr - 1) / nr
	tmp := qbytePool.get(kc4 * 4 * nr)
	for np := 0; np < nPanels; np++ {
		dst := pb[np*kcStride*nr:]
		j0 := jc + np*nr
		cols := min(jc+nc-j0, nr)
		ch := pc / (kern * kern)
		rem := pc - ch*kern*kern
		ky := rem / kern
		kx := rem - ky*kern
		oy0 := j0 / ow
		ox0 := j0 - oy0*ow
		for p := 0; p < kc; p++ {
			row := tmp[p*nr : p*nr+nr]
			base := ch * h * w
			dy := ky - o.Padding
			dx := kx - o.Padding
			oy, ox := oy0, ox0
			for s := 0; s < cols; {
				seg := min(ow-ox, cols-s)
				sy := oy*stride + dy
				switch {
				case sy < 0 || sy >= h:
					fillBytes(row[s:s+seg], zp)
				case stride == 1:
					// One contiguous source run clipped to [0, w):
					// element e reads sx = ox+e+dx.
					sx0 := ox + dx
					lead := 0
					if sx0 < 0 {
						lead = min(-sx0, seg)
					}
					valid := min(seg-lead, w-(sx0+lead))
					if valid < 0 {
						valid = 0
					}
					fillBytes(row[s:s+lead], zp)
					if valid > 0 {
						copy(row[s+lead:s+lead+valid], x[base+sy*w+sx0+lead:])
					}
					fillBytes(row[s+lead+valid:s+seg], zp)
				default:
					srow := x[base+sy*w : base+sy*w+w]
					for e := 0; e < seg; e++ {
						sx := (ox+e)*stride + dx
						if sx >= 0 && sx < w {
							row[s+e] = srow[sx]
						} else {
							row[s+e] = zp
						}
					}
				}
				s += seg
				ox = 0
				oy++
			}
			fillBytes(row[cols:], zp)
			kx++
			if kx == kern {
				kx = 0
				ky++
				if ky == kern {
					ky = 0
					ch++
				}
			}
		}
		// K-tail lanes multiply zero-padded A bytes; fill them anyway so
		// the packed block is deterministic.
		for p := kc; p < kc4*4; p++ {
			fillBytes(tmp[p*nr:p*nr+nr], zp)
		}
		for g := 0; g < kc4; g++ {
			qinterleaveRows(dst[g*nr*4:(g+1)*nr*4],
				tmp[g*4*nr:], tmp[(g*4+1)*nr:], tmp[(g*4+2)*nr:], tmp[(g*4+3)*nr:], nr)
		}
	}
	qbytePool.put(tmp)
}

// qpackA lays a quantized m×k int8 matrix out as
// [kBlocks][mPanels][kc4][MR][4] panels: byte (g, r, j) holds
// a[i0+r, pc+4g+j]. Row and k tails zero-pad, so the micro-kernel needs
// no tail handling and B-side tail bytes cannot leak into results.
func qpackA(kr *qgemmKernel, m, k int, a []int8, pa []int8) {
	mr, kcMax := kr.mr, kr.kc
	mPanels := (m + mr - 1) / mr
	for kb, pc := 0, 0; pc < k; kb, pc = kb+1, pc+kcMax {
		kc := min(k-pc, kcMax)
		kc4 := (kc + 3) / 4
		fullG := kc / 4
		for mp := 0; mp < mPanels; mp++ {
			dst := pa[(kb*mPanels+mp)*kcMax*mr:]
			i0 := mp * mr
			rows := min(m-i0, mr)
			// In-range rows: each row's 4-deep k-groups are contiguous in
			// the source, so a full group is one 4-byte move.
			for r := 0; r < rows; r++ {
				src := a[(i0+r)*k+pc : (i0+r)*k+pc+kc]
				d := dst[r*4:]
				for g := 0; g < fullG; g++ {
					s := src[g*4 : g*4+4]
					o := g * mr * 4
					d[o] = s[0]
					d[o+1] = s[1]
					d[o+2] = s[2]
					d[o+3] = s[3]
				}
				for g := fullG; g < kc4; g++ {
					o := g * mr * 4
					for jj := 0; jj < 4; jj++ {
						var v int8
						if p := g*4 + jj; p < kc {
							v = src[p]
						}
						d[o+jj] = v
					}
				}
			}
			// Row tail beyond m zero-pads every lane.
			for r := rows; r < mr; r++ {
				d := dst[r*4:]
				for g := 0; g < kc4; g++ {
					o := g * mr * 4
					d[o], d[o+1], d[o+2], d[o+3] = 0, 0, 0, 0
				}
			}
		}
	}
}

// qgemmPackedSize returns the packed-A length for an m×k matrix under
// kernel geometry kr.
func qgemmPackedSize(kr *qgemmKernel, m, k int) int {
	mPanels := (m + kr.mr - 1) / kr.mr
	kBlocks := (k + kr.kc - 1) / kr.kc
	return kBlocks * mPanels * kr.kc * kr.mr
}

// qgemmPackedWith runs the packed int8 sweep with an explicit kernel,
// pre-packed A panels and a B source, dequantizing into the float32
// destination. The parity suites use it to pin the asm kernels against
// their portable reference twins on identical packed bytes.
func qgemmPackedWith(kr *qgemmKernel, m, n, k int, pa []int8, bs qbSource, ep qepilogue, c []float32) {
	qgemmPackedScoped(kr, nil, m, n, k, pa, bs, ep, c)
}

// qgemmPackedScoped is qgemmPackedWith with a profile-attribution scope.
func qgemmPackedScoped(kr *qgemmKernel, sc *ProfileScope, m, n, k int, pa []int8, bs qbSource, ep qepilogue, c []float32) {
	on, t0 := profStart()
	mPanels := (m + kr.mr - 1) / kr.mr
	kBlocks := (k + kr.kc - 1) / kr.kc
	nBlocks := (n + kr.nc - 1) / kr.nc

	pbStride := kr.kc * kr.nc
	slots := parallel.Slots(nBlocks, 1)
	pbAll := qbytePool.get(slots * pbStride)
	var cbAll []int32
	cbStride := 0
	if kBlocks > 1 {
		// Int32 carries for every tile of one column block; only needed
		// when the k axis spans multiple blocks (dequantization must see
		// the complete sum).
		cbStride = mPanels * kr.mr * kr.nc
		cbAll = qcarryPool.get(slots * cbStride)
	}

	if slots == 1 {
		// Serial fast path: named call, no closure, no allocation (see
		// gemmPackedWith).
		qgemmPackedBlocks(kr, bs, m, n, k, pa, pbAll, cbAll, ep, c, kBlocks, mPanels, 0, nBlocks)
	} else {
		parallel.ForIndexed(nBlocks, 1, func(slot, b0, b1 int) {
			pb := pbAll[slot*pbStride : (slot+1)*pbStride]
			var cb []int32
			if cbAll != nil {
				cb = cbAll[slot*cbStride : (slot+1)*cbStride]
			}
			qgemmPackedBlocks(kr, bs, m, n, k, pa, pb, cb, ep, c, kBlocks, mPanels, b0, b1)
		})
	}

	if cbAll != nil {
		qcarryPool.put(cbAll)
	}
	qbytePool.put(pbAll)
	profEnd(on, sc, profQGemm, t0)
}

// qgemmPackedBlocks sweeps column blocks [b0, b1) with private B pack
// and carry buffers.
func qgemmPackedBlocks(kr *qgemmKernel, bs qbSource, m, n, k int, pa []int8, pb []uint8, cb []int32, ep qepilogue, c []float32, kBlocks, mPanels, b0, b1 int) {
	mr, nr := kr.mr, kr.nr
	npMax := kr.nc / nr
	for blk := b0; blk < b1; blk++ {
		jc := blk * kr.nc
		nc := min(n-jc, kr.nc)
		nPanels := (nc + nr - 1) / nr
		for kb := 0; kb < kBlocks; kb++ {
			pc := kb * kr.kc
			kc := min(k-pc, kr.kc)
			kc4 := (kc + 3) / 4
			bs.pack(kr, pb, jc, nc, pc, kc)
			first, last := kb == 0, kb == kBlocks-1
			for mp := 0; mp < mPanels; mp++ {
				paPanel := pa[(kb*mPanels+mp)*kr.kc*mr:]
				i0 := mp * mr
				mi := min(m-i0, mr)
				for np := 0; np < nPanels; np++ {
					j0 := jc + np*nr
					nj := min(jc+nc-j0, nr)
					var acc [qgemmMaxTile]int32
					qgemmMicroRun(kr.kind, mr, nr, kc4, paPanel, pb[np*kr.kc*nr:], &acc)
					if first && last {
						qstoreTile(c, n, i0, j0, mi, nj, nr, acc[:mr*nr], ep)
						continue
					}
					slot := cb[(mp*npMax+np)*mr*nr : (mp*npMax+np+1)*mr*nr]
					switch {
					case first:
						copy(slot, acc[:mr*nr])
					case last:
						for i, v := range acc[:mr*nr] {
							slot[i] += v
						}
						qstoreTile(c, n, i0, j0, mi, nj, nr, slot, ep)
					default:
						for i, v := range acc[:mr*nr] {
							slot[i] += v
						}
					}
				}
			}
		}
	}
}

// qstoreTile dequantizes the mi×nj valid region of an int32 tile (row
// stride nr) into C at (i0, j0), fusing the zero-point correction, the
// per-channel scale, the bias and the optional leaky ReLU.
func qstoreTile(c []float32, n, i0, j0, mi, nj, nr int, tile []int32, ep qepilogue) {
	for r := 0; r < mi; r++ {
		row := i0 + r
		ds := ep.deqScale[row]
		co := ep.corr[row]
		var b float32
		if ep.bias != nil {
			b = ep.bias[row]
		}
		crow := c[row*n+j0 : row*n+j0+nj]
		arow := tile[r*nr : r*nr+nj]
		if ep.act {
			for s, v := range arow {
				f := ds*float32(v-co) + b
				if f < 0 {
					f *= ep.slope
				}
				crow[s] = f
			}
		} else {
			for s, v := range arow {
				crow[s] = ds*float32(v-co) + b
			}
		}
	}
}

// QGemmInt8 runs the dequantizing int8 GEMM with the active kernel:
//
//	C[r,s] = deqScale[r]·(Σ_p aq[r,p]·b[p,s] − corr[r])
//
// aq is m×k row-major int8 (weights), b is k×n row-major uint8
// (activations). Used by benchmarks and as the dense-matrix entry to
// the quantized path; convolutions go through QConvWeights/QConv2DInfer
// with pre-packed panels instead.
func QGemmInt8(m, n, k int, aq []int8, b []uint8, deqScale []float32, corr []int32, c []float32) {
	kr := qgemmActive.Load()
	pa := qpackAPool.get(qgemmPackedSize(kr, m, k))
	qpackA(kr, m, k, aq, pa)
	qgemmPackedWith(kr, m, n, k, pa, qdenseB(k, n, b), qepilogue{deqScale: deqScale, corr: corr}, c)
	qpackAPool.put(pa)
}

// QConvWeights is one conv layer's weight tensor on the quantized path:
// per-output-channel symmetric int8 values packed into micro-kernel
// panels for every int8 kernel usable on this machine, plus the
// per-channel scales and row sums the dequantization epilogue needs.
// Packing for every usable kernel up front is what lets SetQGemmKernel
// swap kernels mid-flight without repacking or locking.
type QConvWeights struct {
	OC, KK int
	Scales []float32 // [OC] symmetric weight scales
	RowSum []int32   // [OC] Σ_k w_q[r,k], for the zero-point correction
	packed map[string][]int8
}

// NewQConvWeights quantizes a [oc, kk] float32 weight matrix (a conv
// weight tensor flattened to its GEMM shape).
func NewQConvWeights(w []float32, oc, kk int) *QConvWeights {
	q, scales := QuantizeWeightsPerChannel(w, oc, kk)
	rowSum := make([]int32, oc)
	for r := 0; r < oc; r++ {
		var s int32
		for _, v := range q[r*kk : r*kk+kk] {
			s += int32(v)
		}
		rowSum[r] = s
	}
	packed := make(map[string][]int8)
	for _, kr := range allQGemmKernels() {
		if !qarchKernelUsable(kr) {
			continue
		}
		pa := make([]int8, qgemmPackedSize(kr, oc, kk))
		qpackA(kr, oc, kk, q, pa)
		packed[kr.name] = pa
	}
	return &QConvWeights{OC: oc, KK: kk, Scales: scales, RowSum: rowSum, packed: packed}
}

// QConvPlan binds quantized weights to one activation quantization: the
// dequantization scale and zero-point correction are precomputed per
// output channel so the inference epilogue is two fused multiply-adds
// per element.
type QConvPlan struct {
	W        *QConvWeights
	In       QuantParams
	DeqScale []float32 // [OC] Scales[r]·In.Scale
	Corr     []int32   // [OC] In.Zero·RowSum[r]
}

// Plan derives the per-channel dequantization constants for an input
// calibrated to in.
func (qw *QConvWeights) Plan(in QuantParams) *QConvPlan {
	deq := make([]float32, qw.OC)
	corr := make([]int32, qw.OC)
	for r := range deq {
		deq[r] = qw.Scales[r] * in.Scale
		corr[r] = int32(in.Zero) * qw.RowSum[r]
	}
	return &QConvPlan{W: qw, In: in, DeqScale: deq, Corr: corr}
}
