package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func fillRand(t *Tensor, rng *rand.Rand) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64())
	}
}

func assertTensorBits(t *testing.T, label string, want, got *Tensor) {
	t.Helper()
	ws, gs := want.Shape(), got.Shape()
	if len(ws) != len(gs) {
		t.Fatalf("%s: shape %v vs %v", label, ws, gs)
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("%s: shape %v vs %v", label, ws, gs)
		}
	}
	for i, v := range want.data {
		if math.Float32bits(v) != math.Float32bits(got.data[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, v, got.data[i])
		}
	}
}

// TestConvInferMatchesTraining checks the workspace/fused-epilogue conv
// kernels against the allocating training-path kernels bit for bit, for
// both a fresh and a recycled (dirty) workspace.
func TestConvInferMatchesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := NewWorkspace()
	o := ConvOpts{Kernel: 3, Stride: 2, Padding: 1}
	x := New(2, 3, 9, 11)
	wgt := New(4, 3, 3, 3)
	bias := New(4)
	fillRand(x, rng)
	fillRand(wgt, rng)
	fillRand(bias, rng)

	want := Conv2D(x, wgt, bias, o)
	for pass := 0; pass < 2; pass++ { // second pass runs on dirty buffers
		ws.Reset()
		got := Conv2DInfer(ws, x, wgt, o, Epilogue{Bias: bias})
		assertTensorBits(t, "conv2d infer", want, got)
	}

	// Fused leaky ReLU = unfused bias-add then activation.
	slope := float32(0.05)
	wantAct := want.Clone()
	for i, v := range wantAct.data {
		if v <= 0 {
			wantAct.data[i] = v * slope
		}
	}
	ws.Reset()
	gotAct := Conv2DInfer(ws, x, wgt, o, Epilogue{Bias: bias, Act: true, Slope: slope})
	assertTensorBits(t, "conv2d fused relu", wantAct, gotAct)

	dwgt := New(3, 5, 3, 3)
	dbias := New(5)
	fillRand(dwgt, rng)
	fillRand(dbias, rng)
	dwant := Deconv2D(x, dwgt, dbias, o)
	for pass := 0; pass < 2; pass++ {
		ws.Reset()
		dgot := Deconv2DInfer(ws, x, dwgt, o, Epilogue{Bias: dbias})
		assertTensorBits(t, "deconv2d infer", dwant, dgot)
	}

	pwant, _ := MaxPool2D(x, 2, 2)
	ws.Reset()
	pgot := MaxPool2DInfer(ws, x, 2, 2)
	assertTensorBits(t, "maxpool infer", pwant, pgot)

	a := New(1, 2, 4, 4)
	b := New(1, 3, 4, 4)
	fillRand(a, rng)
	fillRand(b, rng)
	cwant := ConcatChannels(a, b)
	ws.Reset()
	cgot := ConcatChannelsInfer(ws, a, b)
	assertTensorBits(t, "concat infer", cwant, cgot)
}
