package tensor

// Workspace is an arena of reusable scratch buffers keyed by power-of-two
// size class, the allocation substrate of the zero-allocation inference
// path. A kernel asks for scratch with Get/Tensor; nothing is returned
// piecemeal — instead the owner calls Reset at the start of each
// inference pass, which recycles every buffer handed out since the last
// Reset back into the size-class free lists. Because a model's layer
// shapes are identical from pass to pass, the second and every later
// pass is served entirely from the free lists: steady-state inference
// performs no heap allocation and retains exactly one pass's footprint.
//
// Contracts:
//   - Buffers and tensors obtained from a Workspace are valid only until
//     the next Reset; Reset invalidates all of them at once.
//   - Get returns dirty memory. Kernels writing into workspace tensors
//     must store every element (or use GetZeroed where they accumulate).
//   - A Workspace is not safe for concurrent use. Every goroutine that
//     runs inference owns its own Workspace — DetectLayout's per-replica
//     models each carry one, which is what keeps the tile-parallel scan
//     race-free.
//
// All methods accept a nil receiver and fall back to plain allocation,
// so code paths can be written once and run with or without an arena.
type Workspace struct {
	free    map[int][][]float32 // size class → free buffers
	live    []wsBuf             // handed out since the last Reset
	headers []*Tensor           // reusable Tensor headers
	used    int                 // headers in use since the last Reset
	scope   *ProfileScope       // per-pass profile attribution, nil = global only
}

// SetProfileScope installs the profile scope the infer kernels running
// against this workspace attribute their stage time to (nil detaches).
// The workspace is the natural carrier: it is per-model, owned by
// exactly one goroutine per pass, and already threaded through every
// inference entry point. Nil-receiver-safe like every Workspace method.
func (ws *Workspace) SetProfileScope(sc *ProfileScope) {
	if ws == nil {
		return
	}
	ws.scope = sc
}

// ProfileScope returns the installed scope, or nil (including on a nil
// workspace).
func (ws *Workspace) ProfileScope() *ProfileScope {
	if ws == nil {
		return nil
	}
	return ws.scope
}

type wsBuf struct {
	buf   []float32
	class int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[int][][]float32)}
}

// Get returns a scratch slice of length n backed by a recycled buffer
// when one of the right size class is free. The contents are dirty.
func (ws *Workspace) Get(n int) []float32 {
	if ws == nil {
		return make([]float32, n)
	}
	class := sizeClass(n)
	bin := ws.free[class]
	var buf []float32
	if len(bin) > 0 {
		buf = bin[len(bin)-1]
		ws.free[class] = bin[:len(bin)-1]
	} else {
		buf = make([]float32, 1<<class)
	}
	ws.live = append(ws.live, wsBuf{buf: buf, class: class})
	return buf[:n]
}

// GetZeroed is Get plus an explicit zero fill, for kernels that
// accumulate into their scratch.
func (ws *Workspace) GetZeroed(n int) []float32 {
	s := ws.Get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Tensor returns a workspace-backed tensor of the given shape with dirty
// contents. The Tensor header itself is recycled too, so steady-state
// passes allocate neither data nor headers.
func (ws *Workspace) Tensor(shape ...int) *Tensor {
	if ws == nil {
		// Copy before calling New: New retains (and may format) its
		// argument, and passing shape straight through would make every
		// caller's variadic slice escape — even on the arena path.
		return New(append([]int(nil), shape...)...)
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Static message: formatting shape here would make the
			// variadic slice escape and defeat the zero-alloc path.
			panic("tensor: negative dimension in workspace Tensor shape")
		}
		n *= d
	}
	t := ws.header()
	t.shape = append(t.shape[:0], shape...)
	t.data = ws.Get(n)
	return t
}

// ZeroTensor is Tensor with a zero fill.
func (ws *Workspace) ZeroTensor(shape ...int) *Tensor {
	t := ws.Tensor(shape...)
	t.Zero()
	return t
}

// View wraps an existing data slice in a recycled header with the given
// shape — the workspace analogue of FromSlice/Reshape, used where a
// layer only reinterprets its input (Flatten) and must not trigger even
// a header allocation.
func (ws *Workspace) View(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		// Static message keeps the shape slice from escaping (see Tensor).
		panic("tensor: workspace View shape does not match data length")
	}
	if ws == nil {
		return FromSlice(data, append([]int(nil), shape...)...) // see Tensor
	}
	t := ws.header()
	t.shape = append(t.shape[:0], shape...)
	t.data = data
	return t
}

func (ws *Workspace) header() *Tensor {
	if ws.used < len(ws.headers) {
		t := ws.headers[ws.used]
		ws.used++
		return t
	}
	t := &Tensor{}
	ws.headers = append(ws.headers, t)
	ws.used++
	return t
}

// Reset recycles every buffer and header handed out since the previous
// Reset, invalidating all tensors obtained from the workspace. Call it
// at the top of each inference pass.
func (ws *Workspace) Reset() {
	if ws == nil {
		return
	}
	for _, lb := range ws.live {
		ws.free[lb.class] = append(ws.free[lb.class], lb.buf)
	}
	ws.live = ws.live[:0]
	ws.used = 0
}

// Trim releases free buffers — largest size classes first — until the
// retained footprint is at most maxFloats float32s (best effort: live
// buffers are never touched, so call Reset first to trim everything).
// This is the high-water release for mixed workloads: a workspace grown
// to megatile size during a scan would otherwise pin megatile-class
// buffers forever even when the owner drops back to nominal-size
// inference. Trimmed classes simply re-allocate on next use, so Trim
// trades one transient allocation spike for bounded steady-state memory.
func (ws *Workspace) Trim(maxFloats int) {
	if ws == nil {
		return
	}
	total := ws.Footprint()
	if total <= maxFloats {
		return
	}
	classes := make([]int, 0, len(ws.free))
	for class := range ws.free {
		classes = append(classes, class)
	}
	// Largest classes first: one megatile-sized buffer dwarfs every
	// nominal-size class, so dropping from the top frees the most memory
	// while keeping the hot small classes warm.
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if classes[j] > classes[i] {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	for _, class := range classes {
		bin := ws.free[class]
		for len(bin) > 0 && total > maxFloats {
			total -= cap(bin[len(bin)-1])
			bin[len(bin)-1] = nil
			bin = bin[:len(bin)-1]
		}
		if len(bin) == 0 {
			delete(ws.free, class)
		} else {
			ws.free[class] = bin
		}
		if total <= maxFloats {
			return
		}
	}
}

// Footprint reports the total float32 capacity currently retained by the
// arena (free and live), for diagnostics and the memory-model docs.
func (ws *Workspace) Footprint() int {
	if ws == nil {
		return 0
	}
	total := 0
	for _, bin := range ws.free {
		for _, buf := range bin {
			total += cap(buf)
		}
	}
	for _, lb := range ws.live {
		total += cap(lb.buf)
	}
	return total
}
