package tensor

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync/atomic"
)

// GEMM micro-kernel registry and runtime dispatch.
//
// The packed GEMM (gemm_packed.go) is parameterised by a register-tile
// geometry (MR×NR) and cache blocking (KC/NC). Each supported geometry +
// instruction set is a *gemmKernel; the widest kernel the host supports
// is selected once at init and every Gemm call reads it through an
// atomic pointer, so ops can flip kernels at runtime (tests, triage)
// without a data race.
//
// Numerics: kernels fall into two rounding families.
//
//   - "muladd" (go, sse): each accumulation step rounds the product and
//     the sum separately (MULPS/ADDPS ≡ scalar a*b then +), the historic
//     semantics of this repo.
//   - "fma" (go-fma, avx2, avx512): each step is a fused multiply-add
//     with a single rounding (VFMADD231PS). The portable reference
//     emulates it with math.FMA in float64 — double rounding
//     float64→float32 is exact for float32 FMA because float64 carries
//     ≥ 2·24+2 significand bits (Figueroa's theorem), so the Go
//     reference and the hardware kernel are bit-identical.
//
// Within a family every kernel produces bit-identical results for the
// whole packed GEMM: the per-element accumulation order (k ascending,
// KC-blocked with KC equal across the family's kernels) does not depend on MR/NR,
// only the per-step rounding differs between families. Across families
// results agree to rounding, not to the bit — pinned by the kernel
// parity suites and the hsd cross-kernel scan test.
const (
	gemmMaxMR   = 8
	gemmMaxNR   = 32
	gemmMaxTile = gemmMaxMR * gemmMaxNR
)

// microKind names a concrete micro-kernel implementation for the static
// dispatch in gemmMicroRun. Dispatch is a switch over this enum rather
// than a stored func value on purpose: an indirect call would make
// escape analysis assume the stack-allocated accumulator tile escapes,
// heap-allocating ~1 KB per micro-tile and destroying the
// zero-allocation inference guarantee.
type microKind uint8

const (
	microGo4x8 microKind = iota // portable unrolled mul-add (historic reference)
	microGoFMA                  // portable math.FMA reference, geometry from the kernel
	microSSE4x8
	microAVX2x6x16
	microAVX512x8x32
)

// gemmKernel describes one registered micro-kernel: its register-tile
// geometry, cache blocking, rounding family, production implementation
// and the portable reference it is bit-pinned against.
type gemmKernel struct {
	name string
	kind microKind // production implementation
	ref  microKind // portable bit-reference implementation
	mr   int       // register tile rows; A packs into mr-wide panels
	nr   int       // register tile cols; B packs into nr-wide panels
	kc   int       // k-block depth (equal within a family: keeps it bit-stable)
	nc   int       // column-block width (multiple of nr)
	fma  bool      // rounding family: true = fused multiply-add
}

func (kr *gemmKernel) family() string {
	if kr.fma {
		return "fma"
	}
	return "muladd"
}

// refTwin returns a copy of kr that runs the portable reference
// implementation with identical geometry — the comparison arm of the
// bit-parity suites.
func (kr *gemmKernel) refTwin() *gemmKernel {
	twin := *kr
	twin.name = kr.name + "-ref"
	twin.kind = kr.ref
	return &twin
}

// portableKernels are available on every architecture. Geometry of the
// FMA reference matches the AVX2 kernel so forcing `go-fma` reproduces
// the AVX2/AVX-512 scan bits on any machine.
var portableKernels = []*gemmKernel{
	{name: "go", kind: microGo4x8, ref: microGo4x8, mr: 4, nr: 8, kc: 256, nc: 128},
	{name: "go-fma", kind: microGoFMA, ref: microGoFMA, mr: 6, nr: 16, kc: 192, nc: 128, fma: true},
}

// gemmActive is the kernel Gemm dispatches to; set at init, replaced by
// SetGemmKernel. Reads are a single atomic load on the Gemm hot path.
var gemmActive atomic.Pointer[gemmKernel]

// gemmEnvRequest records the RHSD_GEMM_KERNEL override and whether it
// was honored, so the kernel-matrix CI step can distinguish "forced" from
// "fell back" and skip with a logged reason.
var gemmEnvRequest struct {
	name    string
	present bool
	honored bool
}

func allGemmKernels() []*gemmKernel {
	ks := append([]*gemmKernel(nil), portableKernels...)
	return append(ks, archKernels...)
}

func lookupGemmKernel(name string) *gemmKernel {
	for _, kr := range allGemmKernels() {
		if kr.name == name {
			return kr
		}
	}
	return nil
}

// GemmKernels lists every registered kernel name, available or not,
// sorted for stable output.
func GemmKernels() []string {
	var names []string
	for _, kr := range allGemmKernels() {
		names = append(names, kr.name)
	}
	sort.Strings(names)
	return names
}

// GemmKernelAvailable reports whether the named kernel is registered and
// safe to execute on this machine.
func GemmKernelAvailable(name string) bool {
	kr := lookupGemmKernel(name)
	return kr != nil && archKernelUsable(kr)
}

// GemmKernel returns the name of the kernel Gemm currently dispatches to.
func GemmKernel() string { return gemmActive.Load().name }

// GemmKernelFamily returns the rounding family ("muladd" or "fma") of a
// registered kernel, or "" when unknown. Kernels within one family are
// bit-identical for the whole packed GEMM; across families results agree
// to rounding only.
func GemmKernelFamily(name string) string {
	kr := lookupGemmKernel(name)
	if kr == nil {
		return ""
	}
	return kr.family()
}

// SetGemmKernel makes Gemm dispatch to the named kernel and returns the
// previously active name. It errors (leaving the active kernel
// unchanged) when the kernel is unknown or unsupported on this machine.
// The swap is atomic: concurrent Gemm calls see either kernel, each call
// using exactly one. Intended for tests, benchmarks and ops triage — the
// RHSD_GEMM_KERNEL environment variable applies it at process start.
func SetGemmKernel(name string) (prev string, err error) {
	kr := lookupGemmKernel(name)
	if kr == nil {
		return GemmKernel(), fmt.Errorf("tensor: unknown GEMM kernel %q (have %v)", name, GemmKernels())
	}
	if !archKernelUsable(kr) {
		return GemmKernel(), fmt.Errorf("tensor: GEMM kernel %q unsupported on this CPU", name)
	}
	old := gemmActive.Swap(kr)
	return old.name, nil
}

// RequestedGemmKernel reports the RHSD_GEMM_KERNEL override: the
// requested name, whether the variable was set, and whether the request
// was honored (false means the kernel was unknown or unsupported and
// dispatch fell back to the auto choice).
func RequestedGemmKernel() (name string, present, honored bool) {
	return gemmEnvRequest.name, gemmEnvRequest.present, gemmEnvRequest.honored
}

func init() {
	// Widest safe kernel first; "go" is always usable.
	var pick *gemmKernel
	for _, name := range archPreferred {
		if kr := lookupGemmKernel(name); kr != nil && archKernelUsable(kr) {
			pick = kr
			break
		}
	}
	if pick == nil {
		pick = lookupGemmKernel("go")
	}
	gemmActive.Store(pick)

	if env, ok := os.LookupEnv("RHSD_GEMM_KERNEL"); ok {
		gemmEnvRequest.name = env
		gemmEnvRequest.present = true
		if _, err := SetGemmKernel(env); err != nil {
			fmt.Fprintf(os.Stderr, "tensor: RHSD_GEMM_KERNEL: %v; using %q\n", err, GemmKernel())
		} else {
			gemmEnvRequest.honored = true
		}
	}
}

// gemmMicroGoFMARef is the portable reference for the FMA-family
// kernels: acc[r*nr+s] = fma(pa[p*mr+r], pb[p*nr+s], acc[r*nr+s]) with a
// single rounding per step. math.FMA in float64 over float32 operands
// rounds exactly like a hardware float32 FMA (see the family comment at
// the top of this file), and on amd64 it compiles to a VFMADD
// instruction, so this reference is both bit-exact and tolerably fast as
// the portable fallback.
func gemmMicroGoFMARef(mr, nr, kc int, pa, pb []float32, acc *[gemmMaxTile]float32) {
	tile := acc[:mr*nr]
	for i := range tile {
		tile[i] = 0
	}
	pa = pa[:kc*mr]
	pb = pb[:kc*nr]
	for p := 0; p < kc; p++ {
		av := pa[p*mr : p*mr+mr]
		bv := pb[p*nr : p*nr+nr]
		for r, a := range av {
			row := tile[r*nr : r*nr+nr]
			a64 := float64(a)
			for s, b := range bv {
				row[s] = float32(math.FMA(a64, float64(b), float64(row[s])))
			}
		}
	}
}
