package tensor

import "rhsd/internal/cpu"

// amd64 micro-kernel registrations. SSE2 is architectural baseline;
// AVX2/AVX-512 are gated on runtime CPUID + OS state (internal/cpu).
//
// Geometry notes:
//   - sse 4×8: the historic kernel — two 4-lane XMM vectors per row,
//     MULPS/ADDPS (muladd family).
//   - avx2 6×16: 12 YMM accumulators (6 rows × two 8-lane vectors),
//     2 B loads + 1 broadcast = 15 of 16 registers, VFMADD231PS.
//   - avx512 8×32: 16 ZMM accumulators (8 rows × two 16-lane vectors),
//     using Z16–Z18 for loads/broadcast (EVEX gives 32 registers).
//
// KC is identical across kernels of one rounding family so each family
// stays internally bit-stable (see gemm_kernel.go): muladd (go, sse)
// uses 256, fma (go-fma, avx2, avx512) uses 192. NC is numerics-free
// and tuned per kernel; both come from the measured cache-block sweep
// (BenchmarkGemmBlockSweep) at the backbone GEMM shapes.
var archKernels = []*gemmKernel{
	{name: "sse", kind: microSSE4x8, ref: microGo4x8, mr: 4, nr: 8, kc: 256, nc: 128},
	{name: "avx2", kind: microAVX2x6x16, ref: microGoFMA, mr: 6, nr: 16, kc: 192, nc: 512, fma: true},
	{name: "avx512", kind: microAVX512x8x32, ref: microGoFMA, mr: 8, nr: 32, kc: 192, nc: 128, fma: true},
}

// archPreferred orders the default selection widest-first.
var archPreferred = []string{"avx512", "avx2", "sse"}

func archKernelUsable(kr *gemmKernel) bool {
	switch kr.kind {
	case microAVX2x6x16:
		return cpu.X86.HasAVX2FMA()
	case microAVX512x8x32:
		return cpu.X86.HasAVX512()
	default:
		return true
	}
}

// gemmMicroRun executes one micro-kernel invocation:
// acc[r*nr+s] = Σ_p pa[p*mr+r]·pb[p*nr+s] over kc packed steps,
// overwriting (not accumulating into) the mr×nr tile prefix of acc.
// Dispatch is a static switch (see microKind) so the accumulator never
// escapes to the heap.
func gemmMicroRun(kind microKind, mr, nr, kc int, pa, pb []float32, acc *[gemmMaxTile]float32) {
	if kc <= 0 {
		tile := acc[:mr*nr]
		for i := range tile {
			tile[i] = 0
		}
		return
	}
	switch kind {
	case microGo4x8:
		gemmMicro4x8Go(kc, pa, pb, acc)
	case microGoFMA:
		gemmMicroGoFMARef(mr, nr, kc, pa, pb, acc)
	case microSSE4x8:
		_ = pa[kc*4-1]
		_ = pb[kc*8-1]
		gemmMicro4x8SSE(kc, &pa[0], &pb[0], acc)
	case microAVX2x6x16:
		_ = pa[kc*6-1]
		_ = pb[kc*16-1]
		gemmMicroAVX2(kc, &pa[0], &pb[0], acc)
	case microAVX512x8x32:
		_ = pa[kc*8-1]
		_ = pb[kc*32-1]
		gemmMicroAVX512(kc, &pa[0], &pb[0], acc)
	default:
		panic("tensor: unknown micro-kernel kind")
	}
}

// Assembly micro-kernels (gemm_micro_amd64.s). Each overwrites the
// leading mr×nr floats of acc; MULPS/ADDPS for SSE (muladd family),
// VFMADD231PS for AVX2/AVX-512 (fma family).
//
//go:noescape
func gemmMicro4x8SSE(kc int, pa, pb *float32, acc *[gemmMaxTile]float32)

//go:noescape
func gemmMicroAVX2(kc int, pa, pb *float32, acc *[gemmMaxTile]float32)

//go:noescape
func gemmMicroAVX512(kc int, pa, pb *float32, acc *[gemmMaxTile]float32)
