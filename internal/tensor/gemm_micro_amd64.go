package tensor

// gemmMicro4x8 dispatches to the SSE micro-kernel. MULPS/ADDPS round each
// lane exactly like the scalar mul-then-add of gemmMicro4x8Go (no FMA
// contraction), so the asm and portable kernels are bit-identical and the
// cross-worker determinism contract is unaffected by the architecture.
func gemmMicro4x8(kc int, pa, pb []float32, acc *[gemmMR * gemmNR]float32) {
	if kc <= 0 {
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	_ = pa[kc*gemmMR-1]
	_ = pb[kc*gemmNR-1]
	gemmMicro4x8SSE(kc, &pa[0], &pb[0], acc)
}

// gemmMicro4x8SSE is implemented in gemm_micro_amd64.s.
//
//go:noescape
func gemmMicro4x8SSE(kc int, pa, pb *float32, acc *[gemmMR * gemmNR]float32)
