package tensor

import (
	"math/rand"
	"testing"
)

// BenchmarkGemm times the convolution-shaped product that dominates
// R-HSD inference: [OC, C·K·K] × [C·K·K, OH·OW] at a 56×56 feature map
// (m=64 output channels, k=64·3·3 taps, n=56·56 positions).
func BenchmarkGemm(b *testing.B) {
	const m, k, n = 64, 64 * 3 * 3, 56 * 56
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, m*k)
	bb := randSlice(rng, k*n)
	c := make([]float32, m*n)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, m, n, k, 1, a, bb, 0, c)
	}
}

// BenchmarkConv2D times one 3×3 convolution over the stem-resolution
// feature map of a 224×224 region (64 channels at 56×56).
func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(1, 64, 56, 56)
	x.RandN(rng, 1)
	w := New(64, 64, 3, 3)
	w.RandN(rng, 1)
	bias := New(64)
	bias.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, bias, o)
	}
}

// BenchmarkMaxPool2D times the 2×2/2 pooling of the full-resolution stem
// output for a 224×224 region.
func BenchmarkMaxPool2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(1, 32, 224, 224)
	x.RandN(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxPool2D(x, 2, 2)
	}
}
