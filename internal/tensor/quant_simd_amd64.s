// AVX2 activation quantization kernel: 32 floats per iteration through
// the reciprocal-multiply formulation pinned bit-identical to
// quantizeSliceFastGo (quant_simd.go):
//
//   q = x·rcp                      VMULPS
//   nan lanes of q remembered      VCMPPS $3 (unordered self-compare)
//   q clamped to ±2^22             VMINPS / VMAXPS
//   round-to-nearest-even → int32  VCVTPS2DQ (MXCSR default = RNE)
//   + zero point                   VPADDD
//   clamp to [0, ActQMax]          VPMAXSD / VPMINSD
//   nan lanes → zero point         VBLENDVPS on the remembered mask
//
// VMINPS/VMAXPS return the second source when an input is NaN, so NaN
// lanes flow through the clamp as ±2^22 garbage — harmless, because the
// final blend overwrites exactly those lanes with the zero point.
//
// The four int32 result vectors narrow to one 32-byte store via
// VPACKSSDW/VPACKUSWB (saturating packs are exact here: every value is
// already in [0, 127]). Both packs interleave their sources per 128-bit
// lane, so each is followed by a VPERMQ $0xD8 qword swizzle that
// restores source order; three swizzles in total put all 32 bytes in
// input order without an index-table load.
//
// func quantizeSliceAVX2(dst *uint8, src *float32, n int, rcp float32, zero int32)
#include "textflag.h"

TEXT ·quantizeSliceAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	VBROADCASTSS rcp+24(FP), Y15  // 1/scale in every lane
	MOVL         zero+28(FP), AX  // zero point as int32
	VMOVD        AX, X12
	VPBROADCASTD X12, Y12

	MOVL         $0x4A800000, AX  // 2^22 as float32
	VMOVD        AX, X14
	VPBROADCASTD X14, Y14
	MOVL         $0xCA800000, AX  // -2^22
	VMOVD        AX, X13
	VPBROADCASTD X13, Y13
	MOVL         $127, AX         // ActQMax
	VMOVD        AX, X11
	VPBROADCASTD X11, Y11
	VPXOR        Y10, Y10, Y10    // int32 zero, the low clamp

quantloop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3

	VMULPS Y15, Y0, Y0
	VMULPS Y15, Y1, Y1
	VMULPS Y15, Y2, Y2
	VMULPS Y15, Y3, Y3

	VCMPPS $3, Y0, Y0, Y4 // unordered: all-ones where q is NaN
	VCMPPS $3, Y1, Y1, Y5
	VCMPPS $3, Y2, Y2, Y6
	VCMPPS $3, Y3, Y3, Y7

	VMINPS Y14, Y0, Y0
	VMINPS Y14, Y1, Y1
	VMINPS Y14, Y2, Y2
	VMINPS Y14, Y3, Y3
	VMAXPS Y13, Y0, Y0
	VMAXPS Y13, Y1, Y1
	VMAXPS Y13, Y2, Y2
	VMAXPS Y13, Y3, Y3

	VCVTPS2DQ Y0, Y0
	VCVTPS2DQ Y1, Y1
	VCVTPS2DQ Y2, Y2
	VCVTPS2DQ Y3, Y3

	VPADDD Y12, Y0, Y0
	VPADDD Y12, Y1, Y1
	VPADDD Y12, Y2, Y2
	VPADDD Y12, Y3, Y3

	VPMAXSD Y10, Y0, Y0
	VPMAXSD Y10, Y1, Y1
	VPMAXSD Y10, Y2, Y2
	VPMAXSD Y10, Y3, Y3
	VPMINSD Y11, Y0, Y0
	VPMINSD Y11, Y1, Y1
	VPMINSD Y11, Y2, Y2
	VPMINSD Y11, Y3, Y3

	VBLENDVPS Y4, Y12, Y0, Y0 // NaN lanes take the zero point
	VBLENDVPS Y5, Y12, Y1, Y1
	VBLENDVPS Y6, Y12, Y2, Y2
	VBLENDVPS Y7, Y12, Y3, Y3

	VPACKSSDW Y1, Y0, Y8      // words, lane-interleaved [v0lo v1lo v0hi v1hi]
	VPACKSSDW Y3, Y2, Y9
	VPERMQ    $0xD8, Y8, Y8   // words back in source order [v0 v1]
	VPERMQ    $0xD8, Y9, Y9
	VPACKUSWB Y9, Y8, Y8      // bytes, lane-interleaved [v0 v2 v1 v3]
	VPERMQ    $0xD8, Y8, Y8   // bytes in input order [v0 v1 v2 v3]
	VMOVDQU   Y8, (DI)

	ADDQ $128, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNZ  quantloop

	VZEROUPPER
	RET
