//go:build !amd64

package tensor

// gemmMicro4x8 falls back to the portable kernel on architectures without
// an assembly implementation.
func gemmMicro4x8(kc int, pa, pb []float32, acc *[gemmMR * gemmNR]float32) {
	gemmMicro4x8Go(kc, pa, pb, acc)
}
