//go:build !amd64

package tensor

// No assembly kernels off amd64: only the portable implementations are
// registered and the historic "go" kernel stays the default, so results
// on these architectures are unchanged.
var archKernels []*gemmKernel

var archPreferred []string

func archKernelUsable(kr *gemmKernel) bool {
	switch kr.kind {
	case microGo4x8, microGoFMA:
		return true
	default:
		return false
	}
}

// gemmMicroRun executes one micro-kernel invocation (see the amd64
// variant for the contract).
func gemmMicroRun(kind microKind, mr, nr, kc int, pa, pb []float32, acc *[gemmMaxTile]float32) {
	if kc <= 0 {
		tile := acc[:mr*nr]
		for i := range tile {
			tile[i] = 0
		}
		return
	}
	switch kind {
	case microGo4x8:
		gemmMicro4x8Go(kc, pa, pb, acc)
	case microGoFMA:
		gemmMicroGoFMARef(mr, nr, kc, pa, pb, acc)
	default:
		panic("tensor: unknown micro-kernel kind")
	}
}
