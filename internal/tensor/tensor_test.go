package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Size() != 24 {
		t.Fatalf("got rank=%d size=%d", x.Rank(), x.Size())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundtrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if x.At(2, 1, 3) != 7.5 {
		t.Fatalf("At/Set mismatch: %v", x.At(2, 1, 3))
	}
	// Row-major offset: ((2*4)+1)*5 + 3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatalf("expected element at flat index 48, data[48]=%v", x.Data()[48])
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(9, 2, 3)
	if x.At(1, 5) != 9 {
		t.Fatal("Reshape must share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Fill(2)
	if x.Data()[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{4, 5, 6}, 3)
	x.Add(y)
	if x.Data()[2] != 9 {
		t.Fatalf("Add: %v", x.Data())
	}
	x.Sub(y)
	if x.Data()[0] != 1 {
		t.Fatalf("Sub: %v", x.Data())
	}
	x.Scale(2)
	if x.Data()[1] != 4 {
		t.Fatalf("Scale: %v", x.Data())
	}
	x.AXPY(0.5, y)
	if !almostEq(float64(x.Data()[0]), 4, 1e-6) {
		t.Fatalf("AXPY: %v", x.Data())
	}
}

func TestSumStats(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum: %v", x.Sum())
	}
	if x.SumSquares() != 14 {
		t.Fatalf("SumSquares: %v", x.SumSquares())
	}
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs: %v", x.MaxAbs())
	}
	if x.Dot(x) != 14 {
		t.Fatalf("Dot: %v", x.Dot(x))
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul[%d]=%v want %v", i, c.Data()[i], v)
		}
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 5)
	b := New(5, 3)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	ref := MatMul(a, b)

	// aT stored as [5,4]: transpose manually.
	aT := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			aT.Set(a.At(i, j), j, i)
		}
	}
	bT := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			bT.Set(b.At(i, j), j, i)
		}
	}
	got1 := MatMulTransA(aT, b)
	got2 := MatMulTransB(a, bT)
	for i := range ref.Data() {
		if !almostEq(float64(got1.Data()[i]), float64(ref.Data()[i]), 1e-4) {
			t.Fatalf("TransA mismatch at %d: %v vs %v", i, got1.Data()[i], ref.Data()[i])
		}
		if !almostEq(float64(got2.Data()[i]), float64(ref.Data()[i]), 1e-4) {
			t.Fatalf("TransB mismatch at %d: %v vs %v", i, got2.Data()[i], ref.Data()[i])
		}
	}
}

func TestGemmBetaAccumulate(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := []float32{10, 10, 10, 10}
	Gemm(false, false, 2, 2, 2, 1, a.Data(), b.Data(), 1, c)
	want := []float32{11, 12, 13, 14}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("beta accumulate: %v", c)
		}
	}
}

// naiveConv is an O(everything) reference convolution used to validate the
// im2col/GEMM fast path.
func naiveConv(x, w, b *Tensor, o ConvOpts) *Tensor {
	n, c, h, wd := x.Shape()[0], x.Shape()[1], x.Shape()[2], x.Shape()[3]
	oc := w.Shape()[0]
	oh, ow := o.OutDim(h), o.OutDim(wd)
	out := New(n, oc, oh, ow)
	for i := 0; i < n; i++ {
		for f := 0; f < oc; f++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					if b != nil {
						s = b.Data()[f]
					}
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < o.Kernel; ky++ {
							for kx := 0; kx < o.Kernel; kx++ {
								sy := oy*o.Stride + ky - o.Padding
								sx := ox*o.Stride + kx - o.Padding
								if sy < 0 || sy >= h || sx < 0 || sx >= wd {
									continue
								}
								s += x.At(i, ch, sy, sx) * w.At(f, ch, ky, kx)
							}
						}
					}
					out.Set(s, i, f, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []ConvOpts{
		{Kernel: 3, Stride: 1, Padding: 1},
		{Kernel: 3, Stride: 2, Padding: 1},
		{Kernel: 1, Stride: 1, Padding: 0},
		{Kernel: 5, Stride: 1, Padding: 2},
	} {
		x := New(2, 3, 8, 8)
		w := New(4, 3, cfg.Kernel, cfg.Kernel)
		b := New(4)
		x.RandN(rng, 1)
		w.RandN(rng, 1)
		b.RandN(rng, 1)
		got := Conv2D(x, w, b, cfg)
		want := naiveConv(x, w, b, cfg)
		if !got.SameShape(want) {
			t.Fatalf("%+v: shape %v want %v", cfg, got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			if !almostEq(float64(got.Data()[i]), float64(want.Data()[i]), 1e-3) {
				t.Fatalf("%+v: elem %d: %v want %v", cfg, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> must hold exactly for the pair to be
	// valid adjoints, which is what backprop relies on.
	rng := rand.New(rand.NewSource(3))
	o := ConvOpts{Kernel: 3, Stride: 2, Padding: 1}
	x := New(2, 7, 7)
	x.RandN(rng, 1)
	col := Im2Col(x, o)
	y := New(col.Shape()[0], col.Shape()[1])
	y.RandN(rng, 1)
	lhs := col.Dot(y)
	back := Col2Im(y, 2, 7, 7, o)
	rhs := x.Dot(back)
	if !almostEq(lhs, rhs, 1e-2) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestConv2DBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	x := New(1, 2, 5, 5)
	w := New(3, 2, 3, 3)
	b := New(3)
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	b.RandN(rng, 1)

	loss := func() float64 {
		y := Conv2D(x, w, b, o)
		var s float64
		for _, v := range y.Data() {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}
	y := Conv2D(x, w, b, o)
	gy := y.Clone() // dL/dy = y for L = 0.5*sum(y^2)
	dw := New(3, 2, 3, 3)
	db := New(3)
	dx := Conv2DBackward(x, w, gy, dw, db, o)

	const eps = 1e-2
	checkGrad := func(name string, param *Tensor, grad *Tensor, indices []int) {
		for _, i := range indices {
			orig := param.Data()[i]
			param.Data()[i] = orig + eps
			lp := loss()
			param.Data()[i] = orig - eps
			lm := loss()
			param.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if !almostEq(num, float64(grad.Data()[i]), 2e-1*(1+math.Abs(num))) {
				t.Fatalf("%s grad[%d]: numerical %v analytic %v", name, i, num, grad.Data()[i])
			}
		}
	}
	checkGrad("x", x, dx, []int{0, 7, 24, 49})
	checkGrad("w", w, dw, []int{0, 5, 17, 53})
	checkGrad("b", b, db, []int{0, 1, 2})
}

func TestDeconv2DShapeAndAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := ConvOpts{Kernel: 3, Stride: 2, Padding: 1}
	x := New(1, 2, 4, 4)
	w := New(2, 3, 3, 3) // [C, OC, K, K]
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	y := Deconv2D(x, w, nil, o)
	// OH = (4-1)*2 - 2 + 3 = 7.
	if y.Shape()[1] != 3 || y.Shape()[2] != 7 || y.Shape()[3] != 7 {
		t.Fatalf("Deconv2D shape %v", y.Shape())
	}

	// Deconv with weight w must be the adjoint of Conv with the same
	// geometry: <Deconv(x), z> == <x, Conv(z)> where conv weights are the
	// transposed view [OC, C, K, K] with flipped... — in our formulation,
	// Deconv2D(x, w) = Conv2DBackward-input(w, x), so test against that.
	z := New(1, 3, 7, 7)
	z.RandN(rng, 1)
	lhs := y.Dot(z)
	// Conv z with weights reinterpreted: Conv2D expects [OC=C, IC=OC, K, K].
	wT := New(2, 3, 3, 3)
	copy(wT.Data(), w.Data())
	conv := Conv2D(z, wT.Reshape(2, 3, 3, 3), nil, o)
	rhs := x.Dot(conv)
	if !almostEq(lhs, rhs, 1e-2*(1+math.Abs(lhs))) {
		t.Fatalf("deconv/conv adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestDeconv2DBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := ConvOpts{Kernel: 3, Stride: 2, Padding: 1}
	x := New(1, 2, 3, 3)
	w := New(2, 2, 3, 3)
	b := New(2)
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	b.RandN(rng, 1)
	loss := func() float64 {
		y := Deconv2D(x, w, b, o)
		var s float64
		for _, v := range y.Data() {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}
	y := Deconv2D(x, w, b, o)
	dw := New(2, 2, 3, 3)
	db := New(2)
	dx := Deconv2DBackward(x, w, y, dw, db, o)
	const eps = 1e-2
	for _, i := range []int{0, 4, 8, 17} {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := loss()
		x.Data()[i] = orig - eps
		lm := loss()
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if !almostEq(num, float64(dx.Data()[i]), 2e-1*(1+math.Abs(num))) {
			t.Fatalf("deconv dx[%d]: numerical %v analytic %v", i, num, dx.Data()[i])
		}
	}
	for _, i := range []int{0, 9, 20, 35} {
		orig := w.Data()[i]
		w.Data()[i] = orig + eps
		lp := loss()
		w.Data()[i] = orig - eps
		lm := loss()
		w.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if !almostEq(num, float64(dw.Data()[i]), 2e-1*(1+math.Abs(num))) {
			t.Fatalf("deconv dw[%d]: numerical %v analytic %v", i, num, dw.Data()[i])
		}
	}
	_ = db
}

func TestMaxPoolForwardKnown(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, arg := MaxPool2D(x, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("pool[%d]=%v want %v", i, y.Data()[i], v)
		}
	}
	dx := MaxPool2DBackward(y, arg, 1, 1, 4, 4, 2, 2)
	// Gradient lands exactly at the max positions.
	if dx.At(0, 0, 1, 1) != 6 || dx.At(0, 0, 3, 3) != 16 {
		t.Fatalf("pool backward wrong: %v", dx.Data())
	}
	if dx.At(0, 0, 0, 0) != 0 {
		t.Fatal("pool backward leaked gradient to non-max position")
	}
}

func TestConcatSplitChannelsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(2, 3, 4, 4)
	b := New(2, 5, 4, 4)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	cat := ConcatChannels(a, b)
	if cat.Shape()[1] != 8 {
		t.Fatalf("concat channels %v", cat.Shape())
	}
	parts := SplitChannels(cat, 3, 5)
	for i, v := range a.Data() {
		if parts[0].Data()[i] != v {
			t.Fatal("split part 0 mismatch")
		}
	}
	for i, v := range b.Data() {
		if parts[1].Data()[i] != v {
			t.Fatal("split part 1 mismatch")
		}
	}
}

func TestConcatChannelsOrderIsPreserved(t *testing.T) {
	a := New(1, 1, 1, 1)
	a.Fill(1)
	b := New(1, 2, 1, 1)
	b.Fill(2)
	cat := ConcatChannels(a, b)
	if cat.At(0, 0, 0, 0) != 1 || cat.At(0, 1, 0, 0) != 2 || cat.At(0, 2, 0, 0) != 2 {
		t.Fatalf("concat order wrong: %v", cat.Data())
	}
}

func TestConvOutDim(t *testing.T) {
	cases := []struct {
		o    ConvOpts
		in   int
		want int
	}{
		{ConvOpts{3, 1, 1}, 224, 224},
		{ConvOpts{3, 2, 1}, 224, 112},
		{ConvOpts{2, 2, 0}, 224, 112},
		{ConvOpts{7, 1, 0}, 7, 1},
	}
	for _, c := range cases {
		if got := c.o.OutDim(c.in); got != c.want {
			t.Fatalf("OutDim(%+v, %d)=%d want %d", c.o, c.in, got, c.want)
		}
	}
}

// Property: Im2Col followed by Col2Im applied to a constant-one column
// counts how many output taps touch each input pixel; every interior pixel
// of a stride-1 padded conv must be touched K*K times.
func TestCol2ImCoverageProperty(t *testing.T) {
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	h, w := 6, 6
	col := New(1*3*3, o.OutDim(h)*o.OutDim(w))
	col.Fill(1)
	img := Col2Im(col, 1, h, w, o)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			if img.At(0, y, x) != 9 {
				t.Fatalf("interior (%d,%d) touched %v times, want 9", y, x, img.At(0, y, x))
			}
		}
	}
	if img.At(0, 0, 0) != 4 {
		t.Fatalf("corner touched %v times, want 4", img.At(0, 0, 0))
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A·B)·C ≈ A·(B·C) for random small matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4)
		b := New(4, 2)
		c := New(2, 5)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		c.RandN(rng, 1)
		l := MatMul(MatMul(a, b), c)
		r := MatMul(a, MatMul(b, c))
		for i := range l.Data() {
			if !almostEq(float64(l.Data()[i]), float64(r.Data()[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandNDeterministicUnderSeed(t *testing.T) {
	a := New(16)
	b := New(16)
	a.RandN(rand.New(rand.NewSource(42)), 1)
	b.RandN(rand.New(rand.NewSource(42)), 1)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("RandN must be deterministic for a fixed seed")
		}
	}
}
