package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantRoundTrip checks that dequantize∘quantize stays within half
// a quantization step for in-range values, and that 0.0 survives the
// round trip exactly (the padding/ReLU invariant).
func TestQuantRoundTrip(t *testing.T) {
	var r QuantRange
	r.Observe(-1.5)
	r.Observe(3.25)
	p := r.Params()
	if p.Scale <= 0 {
		t.Fatalf("non-positive scale %v", p.Scale)
	}
	if got := p.Dequantize(p.Quantize(0)); got != 0 {
		t.Fatalf("0.0 round-trips to %v, want exact 0", got)
	}
	step := float64(p.Scale)
	for i := 0; i <= 1000; i++ {
		x := -1.5 + 4.75*float64(i)/1000
		got := float64(p.Dequantize(p.Quantize(float32(x))))
		if math.Abs(got-x) > step/2+1e-6 {
			t.Fatalf("round-trip of %v = %v, off by %v > step/2 = %v", x, got, math.Abs(got-x), step/2)
		}
	}
}

// TestQuantizeSaturates pins the clamp ends: values beyond the
// calibrated range saturate to 0 / ActQMax instead of wrapping, and
// ±Inf pin to the range ends. NaN maps to the zero point (the
// representation of 0.0).
func TestQuantizeSaturates(t *testing.T) {
	var r QuantRange
	r.Observe(-2)
	r.Observe(2)
	p := r.Params()
	cases := []struct {
		in   float32
		want uint8
	}{
		{-1e30, 0},
		{float32(math.Inf(-1)), 0},
		{1e30, ActQMax},
		{float32(math.Inf(1)), ActQMax},
		{float32(math.NaN()), p.Zero},
		{float32(math.Copysign(0, -1)), p.Zero}, // -0.0 is still 0.0
	}
	for _, c := range cases {
		if got := p.Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	// Slice path agrees with the scalar path element-wise.
	src := []float32{-1e30, -2, -0.5, 0, 0.5, 2, 1e30,
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))}
	dst := make([]uint8, len(src))
	p.QuantizeSlice(dst, src)
	for i, x := range src {
		if dst[i] != p.Quantize(x) {
			t.Errorf("QuantizeSlice[%d] = %d, Quantize(%v) = %d", i, dst[i], x, p.Quantize(x))
		}
	}
}

// TestQuantRangeIgnoresNonFinite checks the calibration reducer drops
// NaN/±Inf instead of poisoning the envelope.
func TestQuantRangeIgnoresNonFinite(t *testing.T) {
	var r QuantRange
	r.ObserveSlice([]float32{
		float32(math.NaN()), float32(math.Inf(1)), 1, -3, float32(math.Inf(-1)), 2,
	})
	if !r.Observed() {
		t.Fatal("finite values not observed")
	}
	if r.Min != -3 || r.Max != 2 {
		t.Fatalf("envelope [%v, %v], want [-3, 2]", r.Min, r.Max)
	}
}

// TestQuantRangeDegenerate checks empty and zero-width envelopes yield
// safe identity-ish params instead of zero or infinite scales.
func TestQuantRangeDegenerate(t *testing.T) {
	var empty QuantRange
	if p := empty.Params(); p.Scale != 1 || p.Zero != 0 {
		t.Fatalf("empty reducer params %+v, want {1 0}", p)
	}
	var zeros QuantRange
	zeros.Observe(0)
	zeros.Observe(0)
	if p := zeros.Params(); p.Scale != 1 || p.Zero != 0 {
		t.Fatalf("all-zero reducer params %+v, want {1 0}", p)
	}
	var nonfinite QuantRange
	nonfinite.Observe(float32(math.NaN()))
	if nonfinite.Observed() {
		t.Fatal("NaN counted as an observation")
	}
	// A tiny sub-denormal envelope must still produce a positive scale.
	var tiny QuantRange
	tiny.Observe(0)
	tiny.Observe(1e-44)
	if p := tiny.Params(); !(p.Scale > 0) {
		t.Fatalf("tiny envelope scale %v, want > 0", p.Scale)
	}
}

// TestQuantRangeMerge checks the parallel-reduction merge matches
// observing the union.
func TestQuantRangeMerge(t *testing.T) {
	var a, b, u QuantRange
	a.ObserveSlice([]float32{-1, 0.5})
	b.ObserveSlice([]float32{-0.25, 4})
	u.ObserveSlice([]float32{-1, 0.5, -0.25, 4})
	a.Merge(b)
	if a.Min != u.Min || a.Max != u.Max {
		t.Fatalf("merged envelope [%v, %v], want [%v, %v]", a.Min, a.Max, u.Min, u.Max)
	}
	var empty QuantRange
	a.Merge(empty) // no-op
	if a.Min != u.Min || a.Max != u.Max {
		t.Fatal("merging an empty reducer changed the envelope")
	}
}

// TestQuantizeWeightsPerChannel pins the symmetric weight scheme:
// per-row scales, ±WeightQMax saturation symmetry, zero-range rows, and
// non-finite poisoning.
func TestQuantizeWeightsPerChannel(t *testing.T) {
	w := []float32{
		// row 0: plain values, amax 2
		2, -1, 0.5, -0.25,
		// row 1: all zero (degenerate channel)
		0, 0, 0, 0,
		// row 2: NaN and Inf mixed with finite values
		float32(math.NaN()), float32(math.Inf(1)), -1, 0.5,
		// row 3: negative extreme dominates
		-4, 1, 0, 2,
	}
	q, scales := QuantizeWeightsPerChannel(w, 4, 4)

	if scales[0] != 2.0/WeightQMax {
		t.Errorf("row 0 scale %v, want %v", scales[0], 2.0/WeightQMax)
	}
	if q[0] != WeightQMax {
		t.Errorf("row 0 max quantizes to %d, want %d", q[0], WeightQMax)
	}
	if scales[1] != 1 {
		t.Errorf("zero row scale %v, want 1", scales[1])
	}
	for i := 4; i < 8; i++ {
		if q[i] != 0 {
			t.Errorf("zero row q[%d] = %d, want 0", i, q[i])
		}
	}
	// Inf is excluded from the amax, NaN maps to 0.
	if scales[2] != 1.0/WeightQMax {
		t.Errorf("row 2 scale %v, want %v (finite amax 1)", scales[2], 1.0/WeightQMax)
	}
	if q[8] != 0 {
		t.Errorf("NaN weight quantizes to %d, want 0", q[8])
	}
	if q[9] != WeightQMax {
		t.Errorf("+Inf weight quantizes to %d, want saturation %d", q[9], WeightQMax)
	}
	if q[12] != -WeightQMax {
		t.Errorf("row 3 min quantizes to %d, want %d", q[12], -WeightQMax)
	}
	// Symmetric: no value may reach -128.
	for i, v := range q {
		if v < -WeightQMax || v > WeightQMax {
			t.Errorf("q[%d] = %d outside ±%d", i, v, WeightQMax)
		}
	}
}

// TestQuantActivationDomain pins the 7-bit activation contract that
// keeps the sat16 kernel family exact: every quantized activation byte
// is ≤ ActQMax, so |activation·weight| pair sums fit int16.
func TestQuantActivationDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var r QuantRange
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64() * 100)
		r.Observe(vals[i])
	}
	p := r.Params()
	q := make([]uint8, len(vals))
	p.QuantizeSlice(q, vals)
	for i, b := range q {
		if b > ActQMax {
			t.Fatalf("quantized byte %d = %d > ActQMax", i, b)
		}
	}
	worst := int32(ActQMax)*int32(WeightQMax) + int32(ActQMax)*int32(WeightQMax)
	if worst > math.MaxInt16 {
		t.Fatalf("pair-sum bound %d overflows int16", worst)
	}
}

// FuzzQuantRangeParams fuzzes the calibration reducer: for any pair of
// observed values the derived params must be finite, positive-scale,
// and quantize every finite input into [0, ActQMax] with 0.0 mapping to
// the zero point exactly.
func FuzzQuantRangeParams(f *testing.F) {
	f.Add(float32(-1), float32(1), float32(0.5))
	f.Add(float32(0), float32(0), float32(0))
	f.Add(float32(math.Inf(-1)), float32(math.NaN()), float32(3))
	f.Add(float32(1e38), float32(-1e38), float32(1e-40))
	f.Add(float32(1e-44), float32(0), float32(1e-44))
	f.Fuzz(func(t *testing.T, a, b, x float32) {
		var r QuantRange
		r.Observe(a)
		r.Observe(b)
		p := r.Params()
		if !(p.Scale > 0) || math.IsInf(float64(p.Scale), 0) {
			t.Fatalf("Observe(%v, %v): scale %v not finite positive", a, b, p.Scale)
		}
		if p.Zero > ActQMax {
			t.Fatalf("Observe(%v, %v): zero point %d out of range", a, b, p.Zero)
		}
		if q := p.Quantize(0); q != p.Zero {
			t.Fatalf("params %+v: Quantize(0) = %d, want zero point %d", p, q, p.Zero)
		}
		q := p.Quantize(x)
		if q > ActQMax {
			t.Fatalf("params %+v: Quantize(%v) = %d out of range", p, x, q)
		}
		d := p.Dequantize(q)
		if math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
			t.Fatalf("params %+v: Dequantize(%d) = %v not finite", p, q, d)
		}
	})
}
