//go:build !amd64

package tensor

// No assembly quantize kernel off amd64: quantizeSliceFast runs the
// portable twin for the whole slice, which is bit-identical to the AVX2
// kernel by contract, so results do not depend on the architecture.
const quantSIMDWidth = 32

var quantSIMDAvailable = false

func quantizeSliceAVX2(dst *uint8, src *float32, n int, rcp float32, zero int32) {
	panic("tensor: quantizeSliceAVX2 unreachable without amd64")
}
