package tensor

import (
	"fmt"

	"rhsd/internal/parallel"
)

// convMinChunkWork is the per-chunk floor (in touched elements) below
// which the batched/blocked conv loops stay serial, matching the Gemm
// heuristic.
const convMinChunkWork = 1 << 15

// ConvOpts describes a 2-D convolution geometry: square kernel, symmetric
// stride and zero padding.
type ConvOpts struct {
	Kernel  int // kernel size (K×K)
	Stride  int // stride in both directions, ≥1
	Padding int // zero padding on each border
}

// OutDim returns the output spatial size for an input of size in.
func (o ConvOpts) OutDim(in int) int {
	return (in+2*o.Padding-o.Kernel)/o.Stride + 1
}

func (o ConvOpts) check() {
	if o.Kernel <= 0 || o.Stride <= 0 || o.Padding < 0 {
		panic(fmt.Sprintf("tensor: invalid conv opts %+v", o))
	}
}

// Im2Col lowers an input image x [C,H,W] into a matrix [C*K*K, OH*OW] so
// convolution becomes a single GEMM. Out-of-bounds taps read as zero.
// Channels lower independently (each owns a disjoint block of output
// rows), so they are distributed over the worker pool.
func Im2Col(x *Tensor, o ConvOpts) *Tensor {
	o.check()
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := o.OutDim(h), o.OutDim(w)
	col := New(c*o.Kernel*o.Kernel, oh*ow)
	im2colInto(x.data, c, h, w, o, col.data)
	return col
}

// Col2Im is the adjoint of Im2Col: it scatters a column matrix
// [C*K*K, OH*OW] back into an image [C,H,W], accumulating overlaps.
func Col2Im(col *Tensor, c, h, w int, o ConvOpts) *Tensor {
	o.check()
	oh, ow := o.OutDim(h), o.OutDim(w)
	if col.shape[0] != c*o.Kernel*o.Kernel || col.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with c=%d h=%d w=%d opts %+v",
			col.shape, c, h, w, o))
	}
	x := New(c, h, w)
	// Each channel scatters only into its own image plane, so channels
	// parallelise without write conflicts; the ky/kx accumulation order
	// within a channel is unchanged, keeping results bit-exact.
	col2imInto(col.data, c, h, w, o, x.data)
	return x
}

// Conv2D applies weights wgt [OC, C, K, K] and bias [OC] (bias may be nil)
// to a batch x [N, C, H, W], returning [N, OC, OH, OW].
func Conv2D(x, wgt, bias *Tensor, o ConvOpts) *Tensor {
	o.check()
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc := wgt.shape[0]
	if wgt.shape[1] != c || wgt.shape[2] != o.Kernel || wgt.shape[3] != o.Kernel {
		panic(fmt.Sprintf("tensor: Conv2D weight %v incompatible with input %v opts %+v",
			wgt.shape, x.shape, o))
	}
	oh, ow := o.OutDim(h), o.OutDim(w)
	out := New(n, oc, oh, ow)
	wmat := wgt.Reshape(oc, c*o.Kernel*o.Kernel)
	// Batch items write disjoint output planes, so they fan out over the
	// worker pool; with a single item the inner Gemm/Im2Col parallelise
	// instead.
	parallel.For(n, 1, func(n0, n1 int) {
		for i := n0; i < n1; i++ {
			xi := FromSlice(x.data[i*c*h*w:(i+1)*c*h*w], c, h, w)
			col := Im2Col(xi, o)
			dst := out.data[i*oc*oh*ow : (i+1)*oc*oh*ow]
			Gemm(false, false, oc, oh*ow, c*o.Kernel*o.Kernel, 1, wmat.data, col.data, 0, dst)
		}
	})
	if bias != nil {
		addChannelBias(out, bias)
	}
	return out
}

// Conv2DBackward computes the gradients of a Conv2D application given the
// upstream gradient gy [N, OC, OH, OW]. It returns dx and accumulates into
// dw [OC,C,K,K] and db [OC] when they are non-nil.
func Conv2DBackward(x, wgt, gy, dw, db *Tensor, o ConvOpts) (dx *Tensor) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc := wgt.shape[0]
	oh, ow := o.OutDim(h), o.OutDim(w)
	kk := c * o.Kernel * o.Kernel
	dx = New(n, c, h, w)
	wmat := wgt.Reshape(oc, kk)
	// Batch items are independent except for the dW accumulation. Each
	// item therefore computes its weight-gradient contribution into a
	// private buffer and the contributions are reduced in batch order
	// afterwards — the same one-add-per-item-per-element sequence as the
	// serial dW += gy·colᵀ loop, so results stay bit-identical. The n==1
	// case (the detection hot path) skips the buffer and accumulates
	// directly.
	var dwParts [][]float32
	if dw != nil && n > 1 {
		dwParts = make([][]float32, n)
	}
	parallel.For(n, 1, func(n0, n1 int) {
		for i := n0; i < n1; i++ {
			xi := FromSlice(x.data[i*c*h*w:(i+1)*c*h*w], c, h, w)
			gyi := gy.data[i*oc*oh*ow : (i+1)*oc*oh*ow]
			col := Im2Col(xi, o)
			if dw != nil {
				if dwParts != nil {
					part := make([]float32, oc*kk)
					Gemm(false, true, oc, kk, oh*ow, 1, gyi, col.data, 0, part)
					dwParts[i] = part
				} else {
					// dW += gy · colᵀ
					Gemm(false, true, oc, kk, oh*ow, 1, gyi, col.data, 1, dw.data)
				}
			}
			// dcol = Wᵀ · gy, then scatter back to image space.
			dcol := New(kk, oh*ow)
			Gemm(true, false, kk, oh*ow, oc, 1, wmat.data, gyi, 0, dcol.data)
			dxi := Col2Im(dcol, c, h, w, o)
			copy(dx.data[i*c*h*w:(i+1)*c*h*w], dxi.data)
		}
	})
	for _, part := range dwParts {
		for e, v := range part {
			dw.data[e] += v
		}
	}
	if db != nil {
		accumChannelBiasGrad(gy, db)
	}
	return dx
}

// Deconv2D applies a transposed convolution ("deconvolution" in the paper's
// decoder, §3.1.1) with weights wgt [C, OC, K, K] to x [N, C, H, W],
// producing [N, OC, OH, OW] where OH = (H-1)*stride - 2*pad + K. It is the
// exact adjoint of Conv2D with the same geometry, so gradient checking the
// pair validates both.
func Deconv2D(x, wgt, bias *Tensor, o ConvOpts) *Tensor {
	o.check()
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if wgt.shape[0] != c || wgt.shape[2] != o.Kernel || wgt.shape[3] != o.Kernel {
		panic(fmt.Sprintf("tensor: Deconv2D weight %v incompatible with input %v", wgt.shape, x.shape))
	}
	oc := wgt.shape[1]
	oh := (h-1)*o.Stride - 2*o.Padding + o.Kernel
	ow := (w-1)*o.Stride - 2*o.Padding + o.Kernel
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Deconv2D produces non-positive output %dx%d", oh, ow))
	}
	out := New(n, oc, oh, ow)
	kk := oc * o.Kernel * o.Kernel
	wmat := wgt.Reshape(c, kk)
	parallel.For(n, 1, func(n0, n1 int) {
		for i := n0; i < n1; i++ {
			xi := x.data[i*c*h*w : (i+1)*c*h*w]
			// col = Wᵀ · x, then col2im scatters into the larger output plane.
			col := New(kk, h*w)
			Gemm(true, false, kk, h*w, c, 1, wmat.data, xi, 0, col.data)
			oi := Col2Im(col, oc, oh, ow, o)
			copy(out.data[i*oc*oh*ow:(i+1)*oc*oh*ow], oi.data)
		}
	})
	if bias != nil {
		addChannelBias(out, bias)
	}
	return out
}

// Deconv2DBackward computes gradients for Deconv2D. gy has the output shape
// [N, OC, OH, OW]; it returns dx [N,C,H,W] and accumulates dw/db when
// non-nil.
func Deconv2DBackward(x, wgt, gy, dw, db *Tensor, o ConvOpts) (dx *Tensor) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc := wgt.shape[1]
	oh := (h-1)*o.Stride - 2*o.Padding + o.Kernel
	ow := (w-1)*o.Stride - 2*o.Padding + o.Kernel
	kk := oc * o.Kernel * o.Kernel
	dx = New(n, c, h, w)
	wmat := wgt.Reshape(c, kk)
	// Same deterministic-reduction scheme as Conv2DBackward: private dW
	// buffers per batch item, reduced in batch order.
	var dwParts [][]float32
	if dw != nil && n > 1 {
		dwParts = make([][]float32, n)
	}
	parallel.For(n, 1, func(n0, n1 int) {
		for i := n0; i < n1; i++ {
			gyi := FromSlice(gy.data[i*oc*oh*ow:(i+1)*oc*oh*ow], oc, oh, ow)
			gcol := Im2Col(gyi, o) // [kk, h*w]
			xi := x.data[i*c*h*w : (i+1)*c*h*w]
			if dw != nil {
				if dwParts != nil {
					part := make([]float32, c*kk)
					Gemm(false, true, c, kk, h*w, 1, xi, gcol.data, 0, part)
					dwParts[i] = part
				} else {
					// dW[c, kk] += x[c, h*w] · gcolᵀ
					Gemm(false, true, c, kk, h*w, 1, xi, gcol.data, 1, dw.data)
				}
			}
			// dx = W · gcol
			Gemm(false, false, c, h*w, kk, 1, wmat.data, gcol.data, 0, dx.data[i*c*h*w:(i+1)*c*h*w])
		}
	})
	for _, part := range dwParts {
		for e, v := range part {
			dw.data[e] += v
		}
	}
	if db != nil {
		accumChannelBiasGrad(gy, db)
	}
	return dx
}

func addChannelBias(t, bias *Tensor) {
	n, c := t.shape[0], t.shape[1]
	if n == 0 || c == 0 {
		return
	}
	plane := t.Size() / (n * c)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			b := bias.data[ch]
			seg := t.data[(i*c+ch)*plane : (i*c+ch+1)*plane]
			for j := range seg {
				seg[j] += b
			}
		}
	}
}

func accumChannelBiasGrad(gy, db *Tensor) {
	n, c := gy.shape[0], gy.shape[1]
	if n == 0 || c == 0 {
		return
	}
	plane := gy.Size() / (n * c)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			seg := gy.data[(i*c+ch)*plane : (i*c+ch+1)*plane]
			var s float32
			for _, v := range seg {
				s += v
			}
			db.data[ch] += s
		}
	}
}

// MaxPool2D applies K×K max pooling with the given stride to x [N,C,H,W]
// and returns the pooled tensor plus the argmax index (into the flat input
// plane) for each output element, used by MaxPool2DBackward.
func MaxPool2D(x *Tensor, kernel, stride int) (*Tensor, []int32) {
	if kernel <= 0 || stride <= 0 {
		panic("tensor: MaxPool2D requires positive kernel and stride")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := (h-kernel)/stride + 1
	ow := (w-kernel)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D output empty for input %dx%d kernel %d stride %d", h, w, kernel, stride))
	}
	out := New(n, c, oh, ow)
	arg := make([]int32, out.Size())
	maxPool2DInto(x.data, n, c, h, w, kernel, stride, out.data, arg)
	return out, arg
}

// maxPool2DInto is the shared pooling core: it fills od (and arg when
// non-nil) for an input plane set [n,c,h,w]. Every (batch, channel)
// plane pools independently into its own output slice, so planes spread
// across the worker pool. The scan order within a plane is unchanged,
// preserving the first-maximum tie-break.
func maxPool2DInto(xd []float32, n, c, h, w, kernel, stride int, od []float32, arg []int32) {
	oh := (h-kernel)/stride + 1
	ow := (w-kernel)/stride + 1
	perPlane := oh * ow * kernel * kernel
	// Direct call when serial: creating the closure for parallel.For would
	// heap-allocate on every pool layer (see gemmPacked for the rationale).
	if parallel.Workers() == 1 {
		maxPoolPlanes(xd, h, w, kernel, stride, od, arg, 0, n*c)
		return
	}
	parallel.For(n*c, parallel.GrainFor(perPlane, convMinChunkWork), func(p0, p1 int) {
		maxPoolPlanes(xd, h, w, kernel, stride, od, arg, p0, p1)
	})
}

// maxPoolPlanes pools (batch, channel) planes [p0, p1).
func maxPoolPlanes(xd []float32, h, w, kernel, stride int, od []float32, arg []int32, p0, p1 int) {
	oh := (h-kernel)/stride + 1
	ow := (w-kernel)/stride + 1
	for p := p0; p < p1; p++ {
		plane := xd[p*h*w : (p+1)*h*w]
		oi := p * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(-1e30)
				bestIdx := int32(0)
				for ky := 0; ky < kernel; ky++ {
					sy := oy*stride + ky
					rowOff := sy * w
					for kx := 0; kx < kernel; kx++ {
						sx := ox*stride + kx
						if v := plane[rowOff+sx]; v > best {
							best = v
							bestIdx = int32(rowOff + sx)
						}
					}
				}
				od[oi] = best
				if arg != nil {
					arg[oi] = bestIdx
				}
				oi++
			}
		}
	}
}

// MaxPool2DBackward routes the upstream gradient gy back to the argmax
// positions recorded by MaxPool2D.
func MaxPool2DBackward(gy *Tensor, arg []int32, n, c, h, w, oh, ow int) *Tensor {
	dx := New(n, c, h, w)
	gi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := dx.data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for j := 0; j < oh*ow; j++ {
				plane[arg[gi]] += gy.data[gi]
				gi++
			}
		}
	}
	return dx
}

// ConcatChannels concatenates NCHW tensors along the channel axis. All
// inputs must agree on N, H and W.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels needs at least one input")
	}
	n, h, w := ts[0].shape[0], ts[0].shape[2], ts[0].shape[3]
	totalC := 0
	for _, t := range ts {
		if t.shape[0] != n || t.shape[2] != h || t.shape[3] != w {
			panic(fmt.Sprintf("tensor: ConcatChannels mismatch %v vs %v", ts[0].shape, t.shape))
		}
		totalC += t.shape[1]
	}
	out := New(n, totalC, h, w)
	plane := h * w
	for i := 0; i < n; i++ {
		off := i * totalC * plane
		for _, t := range ts {
			c := t.shape[1]
			copy(out.data[off:off+c*plane], t.data[i*c*plane:(i+1)*c*plane])
			off += c * plane
		}
	}
	return out
}

// SplitChannels is the inverse of ConcatChannels: it slices t [N,C,H,W]
// into tensors with the given channel counts (which must sum to C).
func SplitChannels(t *Tensor, channels ...int) []*Tensor {
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	sum := 0
	for _, ci := range channels {
		sum += ci
	}
	if sum != c {
		panic(fmt.Sprintf("tensor: SplitChannels counts %v do not sum to %d", channels, c))
	}
	plane := h * w
	outs := make([]*Tensor, len(channels))
	for k, ci := range channels {
		outs[k] = New(n, ci, h, w)
	}
	for i := 0; i < n; i++ {
		off := i * c * plane
		for k, ci := range channels {
			copy(outs[k].data[i*ci*plane:(i+1)*ci*plane], t.data[off:off+ci*plane])
			off += ci * plane
		}
	}
	return outs
}
