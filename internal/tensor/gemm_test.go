package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestGemmZeroTimesNaNPropagates pins the IEEE semantics of zero entries:
// a zero in op(a) multiplied against a NaN or Inf in op(b) must produce
// NaN (0·NaN = NaN, 0·Inf = NaN), so the kernel may not skip zero
// multiplicands. Separately, alpha == 0 (and k == 0) follow the BLAS
// convention: C = beta·C without referencing op(a)·op(b) at all, so NaN
// in the inputs does NOT propagate on that path.
func TestGemmZeroTimesNaNPropagates(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))

	kernels := []struct {
		name string
		run  func(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32)
	}{
		{"Gemm", Gemm},
		{"GemmUnblocked", GemmUnblocked},
	}

	// Both a small shape (serial row kernel) and a shape past the packed
	// cutoff, so the packed path is exercised too.
	shapes := []struct{ m, n, k int }{
		{2, 3, 2},
		{64, 64, 64}, // 64^3 = 262144, comfortably on the packed path
	}

	for _, kr := range kernels {
		for _, sh := range shapes {
			m, n, k := sh.m, sh.n, sh.k
			a := make([]float32, m*k) // all zeros
			b := make([]float32, k*n)
			b[0] = nan
			b[n] = inf // row 1, col 0 (k ≥ 2 everywhere)

			c := make([]float32, m*n)
			kr.run(false, false, m, n, k, 1, a, b, 1, c)
			// c[0][0] = Σ_p 0·b[p][0] includes 0·NaN and 0·Inf → NaN.
			if !math.IsNaN(float64(c[0])) {
				t.Errorf("%s %dx%dx%d: c[0] = %v, want NaN (0·NaN/0·Inf must propagate)", kr.name, m, n, k, c[0])
			}
			// Columns never touching NaN/Inf stay finite.
			if math.IsNaN(float64(c[1])) {
				t.Errorf("%s %dx%dx%d: c[1] = NaN, want finite", kr.name, m, n, k)
			}

			// alpha == 0: pure beta-scale, op(a)·op(b) not referenced.
			c2 := make([]float32, m*n)
			for i := range c2 {
				c2[i] = 2
			}
			kr.run(false, false, m, n, k, 0, a, b, 0.5, c2)
			for i, v := range c2 {
				if v != 1 {
					t.Fatalf("%s %dx%dx%d alpha=0: c[%d] = %v, want 1 (beta·C only)", kr.name, m, n, k, i, v)
				}
			}

			// k == 0: same convention.
			c3 := []float32{4, 4}
			kr.run(false, false, 1, 2, 0, 1, nil, nil, 0.25, c3)
			if c3[0] != 1 || c3[1] != 1 {
				t.Fatalf("%s k=0: c = %v, want [1 1]", kr.name, c3)
			}
		}
	}
}

// TestGemmMicroKernelParity checks that every registered
// architecture-specific micro-kernel is bit-identical to its portable Go
// reference for every depth, including the kc == 0 zero-fill case.
// Unsupported kernels are skipped with a logged reason.
func TestGemmMicroKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range GemmKernels() {
		kr := lookupGemmKernel(name)
		if !archKernelUsable(kr) {
			t.Logf("kernel %s unsupported on this CPU; skipping", name)
			continue
		}
		for _, kc := range []int{0, 1, 2, 3, 7, 64, 255, 256} {
			pa := randSlice(rng, max(1, kc*kr.mr))
			pb := randSlice(rng, max(1, kc*kr.nr))
			var want, got [gemmMaxTile]float32
			for i := range got {
				got[i] = 999 // ensure the kernel overwrites, not accumulates
				want[i] = 999
			}
			gemmMicroRun(kr.ref, kr.mr, kr.nr, kc, pa, pb, &want)
			gemmMicroRun(kr.kind, kr.mr, kr.nr, kc, pa, pb, &got)
			for i := 0; i < kr.mr*kr.nr; i++ {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("%s kc=%d: acc[%d] = %x (impl) vs %x (ref)", name, kc, i,
						math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestGemmPackedMatchesUnblocked cross-checks the packed kernel against
// the unblocked reference within floating-point tolerance. The two group
// additions differently (k-blocks of 256 vs a single running sum), so
// exact equality is not expected — but both must be within a few ulps of
// each other for well-conditioned inputs.
func TestGemmPackedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, n, k int }{
		{64, 64, 64},  // just past the packed cutoff
		{129, 67, 31}, // ragged panels in every dimension
		{4, 300, 300}, // single panel row, k > KC
		{70, 9, 520},  // n barely past one NR panel, multiple k-blocks
	}
	for _, sh := range shapes {
		m, n, k := sh.m, sh.n, sh.k
		if !gemmUsesPacked(m, n, k) {
			t.Fatalf("shape %v routes to the row kernel; pick a bigger one", sh)
		}
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				cP := randSlice(rng, m*n)
				cU := append([]float32(nil), cP...)
				alpha, beta := float32(0.75), float32(-0.5)
				Gemm(transA, transB, m, n, k, alpha, a, b, beta, cP)
				GemmUnblocked(transA, transB, m, n, k, alpha, a, b, beta, cU)
				for i := range cP {
					diff := math.Abs(float64(cP[i] - cU[i]))
					// k ≤ 520 partial sums of N(0,1) products: 1e-3
					// absolute slack is orders of magnitude above ulp
					// drift yet catches indexing bugs immediately.
					if diff > 1e-3 {
						t.Fatalf("shape %v transA=%v transB=%v: c[%d] packed %v vs unblocked %v",
							sh, transA, transB, i, cP[i], cU[i])
					}
				}
			}
		}
	}
}

// TestGemmPackedParityAcrossWorkerCounts re-checks the determinism
// contract specifically at packed-path shapes with ragged edges: results
// must be bit-identical at 1 and 8 workers.
func TestGemmPackedParityAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := []struct{ m, n, k int }{
		{64, 64, 64},
		{129, 260, 33}, // n spans three column blocks, ragged everywhere
	}
	for _, sh := range shapes {
		m, n, k := sh.m, sh.n, sh.k
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c0 := randSlice(rng, m*n)
		run := func() []float32 {
			c := append([]float32(nil), c0...)
			Gemm(false, false, m, n, k, 1, a, b, 0.25, c)
			return c
		}
		serial := runAtWorkers(1, run)
		par := runAtWorkers(8, run)
		assertBitIdentical(t, "packed gemm", serial, par)
	}
}
