package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// availableKernels returns every registered kernel usable on this
// machine, logging the ones skipped.
func availableKernels(t *testing.T) []*gemmKernel {
	t.Helper()
	var ks []*gemmKernel
	for _, name := range GemmKernels() {
		kr := lookupGemmKernel(name)
		if !archKernelUsable(kr) {
			t.Logf("kernel %s unsupported on this CPU; skipping", name)
			continue
		}
		ks = append(ks, kr)
	}
	return ks
}

// TestGemmKernelTailShapeParity sweeps m, n, k through ± neighbourhoods
// of each kernel's MR/NR/KC/NC multiples and pins the production
// micro-kernel bit-identical to its portable reference twin over the
// whole packed sweep — every ragged-panel and k-tail combination, all
// four transpose variants on a subset, beta semantics included. A
// tolerance cross-check against GemmUnblocked catches geometry bugs that
// a self-consistent pack/kernel pair would hide.
func TestGemmKernelTailShapeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, kr := range availableKernels(t) {
		ref := kr.refTwin()
		ms := []int{1, kr.mr - 1, kr.mr, kr.mr + 1, 2*kr.mr + 1}
		ns := []int{1, kr.nr - 1, kr.nr, kr.nr + 1, kr.nc - 1, kr.nc + 1}
		ks := []int{1, kr.kc - 1, kr.kc, kr.kc + 1, 2*kr.kc + 3}
		for _, m := range ms {
			if m < 1 {
				continue
			}
			for _, n := range ns {
				if n < 1 {
					continue
				}
				for ki, k := range ks {
					if k < 1 {
						continue
					}
					// Exercise the transpose packers on a sliding subset
					// to bound runtime; the (false,false) path runs always.
					transA := ki%2 == 1
					transB := ki%3 == 1
					a := randSlice(rng, m*k)
					b := randSlice(rng, k*n)
					cImpl := randSlice(rng, m*n)
					cRef := append([]float32(nil), cImpl...)
					cUnb := append([]float32(nil), cImpl...)
					alpha, beta := float32(0.75), float32(-0.5)
					gemmPackedWith(kr, transA, m, n, k, alpha, a, denseB(transB, k, n, b), beta, cImpl)
					gemmPackedWith(ref, transA, m, n, k, alpha, a, denseB(transB, k, n, b), beta, cRef)
					for i := range cImpl {
						if math.Float32bits(cImpl[i]) != math.Float32bits(cRef[i]) {
							t.Fatalf("%s m=%d n=%d k=%d transA=%v transB=%v: c[%d] = %x (impl) vs %x (ref)",
								kr.name, m, n, k, transA, transB, i,
								math.Float32bits(cImpl[i]), math.Float32bits(cRef[i]))
						}
					}
					GemmUnblocked(transA, transB, m, n, k, alpha, a, b, beta, cUnb)
					for i := range cImpl {
						if diff := math.Abs(float64(cImpl[i] - cUnb[i])); diff > 1e-2 {
							t.Fatalf("%s m=%d n=%d k=%d: c[%d] packed %v vs unblocked %v",
								kr.name, m, n, k, i, cImpl[i], cUnb[i])
						}
					}
				}
			}
		}
	}
}

// TestGemmKernelSpecialValues pushes NaN, ±Inf, denormals and
// overflow-provoking magnitudes through every available kernel and pins
// the result bit-identical to the portable reference — the FMA kernels'
// math.FMA emulation must reproduce hardware NaN quieting, Inf
// arithmetic and gradual underflow exactly (no FTZ/DAZ: Go never sets
// MXCSR flush modes, so denormals survive both paths).
func TestGemmKernelSpecialValues(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	denorm := math.Float32frombits(1)           // smallest subnormal
	denormBig := math.Float32frombits(0x7FFFFF) // largest subnormal
	big := float32(3e38)                        // big*big overflows to +Inf

	rng := rand.New(rand.NewSource(31))
	for _, kr := range availableKernels(t) {
		ref := kr.refTwin()
		// One shape past a full panel in every dimension so interior and
		// tail lanes both see the special values.
		m, n, k := kr.mr+1, kr.nr+1, kr.kc+2
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		// Plant specials at positions hitting lane 0 and a high lane.
		a[0] = nan
		a[k] = 0 // row 1: 0·Inf → NaN
		b[0] = inf
		b[1] = -inf
		a[2*k] = denorm
		b[n+1] = denormBig
		a[3%m*k+1] = big
		b[n+2] = big
		cImpl := randSlice(rng, m*n)
		cRef := append([]float32(nil), cImpl...)
		gemmPackedWith(kr, false, m, n, k, 1, a, denseB(false, k, n, b), 0, cImpl)
		gemmPackedWith(ref, false, m, n, k, 1, a, denseB(false, k, n, b), 0, cRef)
		sawNaN, sawInf := false, false
		for i := range cImpl {
			if math.Float32bits(cImpl[i]) != math.Float32bits(cRef[i]) {
				t.Fatalf("%s: c[%d] = %x (impl) vs %x (ref)", kr.name, i,
					math.Float32bits(cImpl[i]), math.Float32bits(cRef[i]))
			}
			if math.IsNaN(float64(cImpl[i])) {
				sawNaN = true
			}
			if math.IsInf(float64(cImpl[i]), 0) {
				sawInf = true
			}
		}
		if !sawNaN {
			t.Errorf("%s: planted NaN/0·Inf did not propagate to any output", kr.name)
		}
		if !sawInf {
			t.Errorf("%s: planted overflow did not propagate an Inf", kr.name)
		}
	}
}

// TestGemmKernelFamilyBitStability checks the cross-kernel contract: all
// available kernels of one rounding family produce bit-identical C for
// identical inputs, regardless of register-tile geometry — the
// per-element accumulation order (k ascending, shared KC) is
// geometry-independent. Families themselves agree only to rounding,
// which the test asserts too (they must differ by ≤ tolerance yet are
// not required to match bitwise).
func TestGemmKernelFamilyBitStability(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m, n, k := 37, 130, 300 // ragged for every registered geometry
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c0 := randSlice(rng, m*n)

	results := map[string][]float32{} // family → first result seen
	owner := map[string]string{}
	for _, kr := range availableKernels(t) {
		c := append([]float32(nil), c0...)
		gemmPackedWith(kr, false, m, n, k, 0.5, a, denseB(false, k, n, b), -1, c)
		fam := kr.family()
		if prev, ok := results[fam]; ok {
			for i := range c {
				if math.Float32bits(c[i]) != math.Float32bits(prev[i]) {
					t.Fatalf("family %q: %s and %s disagree at c[%d]: %x vs %x",
						fam, kr.name, owner[fam], i,
						math.Float32bits(c[i]), math.Float32bits(prev[i]))
				}
			}
		} else {
			results[fam] = c
			owner[fam] = kr.name
		}
	}
	if len(results) == 2 {
		ma, fa := results["muladd"], results["fma"]
		for i := range ma {
			if diff := math.Abs(float64(ma[i] - fa[i])); diff > 1e-2 {
				t.Fatalf("families diverge beyond rounding at c[%d]: %v vs %v", i, ma[i], fa[i])
			}
		}
	}
}

// TestSetGemmKernel pins the dispatch API: roundtrip, unknown name,
// unsupported kernel, and that the active kernel is always usable.
func TestSetGemmKernel(t *testing.T) {
	orig := GemmKernel()
	defer SetGemmKernel(orig)

	if !GemmKernelAvailable(orig) {
		t.Fatalf("active kernel %q reported unavailable", orig)
	}
	if _, err := SetGemmKernel("no-such-kernel"); err == nil {
		t.Fatal("SetGemmKernel accepted an unknown name")
	}
	if GemmKernel() != orig {
		t.Fatalf("failed Set changed the active kernel to %q", GemmKernel())
	}
	for _, name := range GemmKernels() {
		if fam := GemmKernelFamily(name); fam != "muladd" && fam != "fma" {
			t.Fatalf("kernel %q has unexpected family %q", name, fam)
		}
		if !GemmKernelAvailable(name) {
			if _, err := SetGemmKernel(name); err == nil {
				t.Fatalf("SetGemmKernel accepted unsupported kernel %q", name)
			}
			continue
		}
		prev, err := SetGemmKernel(name)
		if err != nil {
			t.Fatalf("SetGemmKernel(%q): %v", name, err)
		}
		_ = prev
		if GemmKernel() != name {
			t.Fatalf("active = %q after SetGemmKernel(%q)", GemmKernel(), name)
		}
	}
}

// TestForcedKernelActive is the kernel-matrix gate: when
// RHSD_GEMM_KERNEL forced a kernel, the active kernel must be exactly
// that one; when the request could not be honored the test skips with
// the reason, so `make kernel-matrix` stays green on narrower hosts
// while recording what was not exercised.
func TestForcedKernelActive(t *testing.T) {
	name, present, honored := RequestedGemmKernel()
	if !present {
		t.Skip("RHSD_GEMM_KERNEL not set; nothing forced")
	}
	if !honored {
		t.Skipf("requested kernel %q unsupported on this host; dispatch fell back to %q", name, GemmKernel())
	}
	if GemmKernel() != name {
		t.Fatalf("RHSD_GEMM_KERNEL=%s honored but active kernel is %q", name, GemmKernel())
	}
}

// TestGemmKernelDispatchRace hammers Gemm from several goroutines while
// the active kernel is being flipped: the atomic swap must never tear
// (each call uses exactly one kernel) and -race must stay silent. Every
// result is checked against both families' references since either
// kernel may legally serve any call during the flip window.
func TestGemmKernelDispatchRace(t *testing.T) {
	orig := GemmKernel()
	defer SetGemmKernel(orig)

	var names []string
	for _, kr := range availableKernels(t) {
		names = append(names, kr.name)
	}
	if len(names) < 2 {
		t.Skip("need at least two usable kernels")
	}

	rng := rand.New(rand.NewSource(41))
	const m, n, k = 32, 96, 96 // past the packed cutoff
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := map[string][]float32{}
	for _, name := range names {
		c := make([]float32, m*n)
		gemmPackedWith(lookupGemmKernel(name), false, m, n, k, 1, a, denseB(false, k, n, b), 0, c)
		want[GemmKernelFamily(name)] = c
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float32, m*n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				Gemm(false, false, m, n, k, 1, a, b, 0, c)
				matched := false
				for _, w := range want {
					same := true
					for i := range c {
						if math.Float32bits(c[i]) != math.Float32bits(w[i]) {
							same = false
							break
						}
					}
					if same {
						matched = true
						break
					}
				}
				if !matched {
					t.Error("Gemm result matches no kernel family: torn dispatch")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := SetGemmKernel(names[i%len(names)]); err != nil {
			t.Errorf("SetGemmKernel: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestGemmKernelGeometry pins the registry invariants the packed sweep
// relies on: nc a multiple of nr (pack buffers hold a block's panels
// exactly), tiles within gemmMaxTile, and KC equal across every kernel
// of one rounding family — the KC grouping of the k-sum is part of each
// family's bit-stability contract, so retuning KC for one family member
// (see BenchmarkGemmBlockSweep) must retune all of them together.
func TestGemmKernelGeometry(t *testing.T) {
	familyKC := map[string]int{}
	for _, kr := range allGemmKernels() {
		if kr.nc%kr.nr != 0 {
			t.Errorf("%s: nc=%d not a multiple of nr=%d", kr.name, kr.nc, kr.nr)
		}
		if kr.mr*kr.nr > gemmMaxTile {
			t.Errorf("%s: tile %dx%d exceeds gemmMaxTile", kr.name, kr.mr, kr.nr)
		}
		if kr.mr > gemmMaxMR || kr.nr > gemmMaxNR {
			t.Errorf("%s: mr=%d nr=%d exceed declared maxima", kr.name, kr.mr, kr.nr)
		}
		if kc, ok := familyKC[kr.family()]; ok {
			if kc != kr.kc {
				t.Errorf("%s: kc=%d differs from its %s-family peers' kc=%d", kr.name, kr.kc, kr.family(), kc)
			}
		} else {
			familyKC[kr.family()] = kr.kc
		}
	}
}
