package tensor

import (
	"fmt"

	"rhsd/internal/parallel"
)

// Prepacked B operands for the packed GEMM. A weight matrix that is
// multiplied on the right in every inference call (Dense layers, the
// refinement heads) pays the B-panel packing of gemm_packed.go on each
// call even though the panel bytes never change. PackB performs that
// packing once; GemmPreB then runs the identical block sweep over the
// stored panels.
//
// Bit-identity contract: GemmPreB(…, pb, …) produces exactly the bits
// Gemm(…, b, …) produces for every shape — the stored panels are built
// by the same bSource.pack the per-call path runs (same zero padding,
// same tail handling), the tile sweep is the shared
// gemmPackedBlockTiles, and the routing decision (gemmUsesPacked) is
// the same shape-only test, with products routed to the row kernel
// reading the retained raw matrix. Swapping Gemm for GemmPreB can
// therefore never change results, only packing traffic — pinned by
// TestGemmPreBMatchesGemm.
//
// Lifecycle: a PackedB is a derived view of the matrix it was built
// from. Callers must rebuild it after the weights change; the raw slice
// is retained by reference, so a stale PackedB is one whose panels
// disagree with raw. nn.Dense owns that lifecycle for layer weights
// (packs are invalidated by Backward and rebuilt at every weight
// mutation point — see DESIGN §17). Like a Workspace, a PackedB is for
// single-goroutine use: panels for kernels beyond the build-time one
// are added lazily on first use.
type PackedB struct {
	trans bool
	k, n  int
	raw   []float32
	packs map[string][]float32 // kernel name → packed panel data
}

// PackB packs op(B) — b stored k×n, or n×k when trans — for reuse
// across GemmPreB calls. Panels for the currently active kernel are
// built eagerly (the common steady state); other kernels pack lazily on
// first use, so forcing a kernel via RHSD_GEMM_KERNEL or SetGemmKernel
// never needs a rebuild and never pays for the kernels it doesn't run.
func PackB(trans bool, k, n int, b []float32) *PackedB {
	if len(b) < k*n {
		panic(fmt.Sprintf("tensor: PackB matrix has %d elements, need %d", len(b), k*n))
	}
	pb := &PackedB{trans: trans, k: k, n: n, raw: b, packs: make(map[string][]float32)}
	pb.ensure(gemmActive.Load())
	return pb
}

// ensure returns the panel data for kr, packing it on first use.
func (pb *PackedB) ensure(kr *gemmKernel) []float32 {
	if p, ok := pb.packs[kr.name]; ok {
		return p
	}
	p := pb.packFor(kr)
	pb.packs[kr.name] = p
	return p
}

// packFor lays op(B) out in kr's panel geometry, column block by column
// block: chunk (blk, kb) holds the nPanels(blk) panels bSource.pack
// produces for that block pair, each panel kr.kc·kr.nr floats (rows
// beyond a tail k-block stay zero and are never read — the micro-kernel
// sweeps only kc steps). The layout exactly mirrors what the per-call
// sweep packs into its scratch buffer, so gemmPackedBlockTiles consumes
// both identically.
func (pb *PackedB) packFor(kr *gemmKernel) []float32 {
	bs := denseB(pb.trans, pb.k, pb.n, pb.raw)
	kBlocks := (pb.k + kr.kc - 1) / kr.kc
	nBlocks := (pb.n + kr.nc - 1) / kr.nc
	panel := kr.kc * kr.nr
	total := 0
	for blk := 0; blk < nBlocks; blk++ {
		nc := min(kr.nc, pb.n-blk*kr.nc)
		total += (nc + kr.nr - 1) / kr.nr * kBlocks * panel
	}
	out := make([]float32, total)
	off := 0
	for blk := 0; blk < nBlocks; blk++ {
		jc := blk * kr.nc
		nc := min(kr.nc, pb.n-jc)
		nPanels := (nc + kr.nr - 1) / kr.nr
		for kb := 0; kb < kBlocks; kb++ {
			pc := kb * kr.kc
			kc := min(kr.kc, pb.k-pc)
			bs.pack(kr, out[off:], jc, nc, pc, kc)
			off += nPanels * panel
		}
	}
	return out
}

// GemmPreB computes c = alpha·op(a)·op(B) + beta·c against a prepacked
// B (see PackB). Semantics, routing and bits are identical to Gemm with
// the original matrix; only the per-call B packing is skipped.
func GemmPreB(transA bool, m, n, k int, alpha float32, a []float32, pb *PackedB, beta float32, c []float32) {
	GemmPreBScoped(nil, transA, m, n, k, alpha, a, pb, beta, c)
}

// GemmPreBScoped is GemmPreB with an explicit profile-attribution
// scope (see GemmScoped); the nn inference path threads the workspace's
// scope through here.
func GemmPreBScoped(sc *ProfileScope, transA bool, m, n, k int, alpha float32, a []float32, pb *PackedB, beta float32, c []float32) {
	if pb.k != k || pb.n != n {
		panic(fmt.Sprintf("tensor: GemmPreB packed for %dx%d, called with k=%d n=%d", pb.k, pb.n, k, n))
	}
	if len(c) < m*n {
		panic("tensor: Gemm output buffer too small")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		scaleRows(c, m*n, beta)
		return
	}
	if !gemmUsesPacked(m, n, k) {
		on, t0 := profStart()
		gemmRows(transA, pb.trans, 0, m, m, n, k, alpha, a, pb.raw, beta, c)
		profEnd(on, sc, profGemmRows, t0)
		return
	}
	kr := gemmActive.Load()
	gemmPackedPre(kr, sc, transA, m, n, k, alpha, a, pb.ensure(kr), beta, c)
}

// gemmPackedPre is gemmPackedWith minus the B packing: A is packed per
// call (it changes every call), the stored B panels are indexed by the
// same (column block, k-block) walk the per-call sweep uses.
func gemmPackedPre(kr *gemmKernel, sc *ProfileScope, transA bool, m, n, k int, alpha float32, a []float32, pre []float32, beta float32, c []float32) {
	on, t0 := profStart()
	mPanels := (m + kr.mr - 1) / kr.mr
	kBlocks := (k + kr.kc - 1) / kr.kc
	nBlocks := (n + kr.nc - 1) / kr.nc

	pa := packBufGet(kBlocks * mPanels * kr.kc * kr.mr)
	packA(kr, transA, m, k, alpha, a, pa)

	if parallel.Slots(nBlocks, 1) == 1 {
		// Serial fast path, same closure-avoidance rationale as
		// gemmPackedWith.
		gemmPackedBlocksPre(kr, pre, m, n, k, beta, c, pa, kBlocks, mPanels, 0, nBlocks)
	} else {
		parallel.ForIndexed(nBlocks, 1, func(_, b0, b1 int) {
			gemmPackedBlocksPre(kr, pre, m, n, k, beta, c, pa, kBlocks, mPanels, b0, b1)
		})
	}

	packBufPut(pa)
	profEnd(on, sc, profGemmPacked, t0)
}

// gemmPackedBlocksPre sweeps column blocks [b0, b1) over prepacked B
// panels laid out by packFor.
func gemmPackedBlocksPre(kr *gemmKernel, pre []float32, m, n, k int, beta float32, c, pa []float32, kBlocks, mPanels, b0, b1 int) {
	panel := kr.kc * kr.nr
	fullPanels := kr.nc / kr.nr // nc is a multiple of nr for every kernel
	for blk := b0; blk < b1; blk++ {
		jc := blk * kr.nc
		nc := n - jc
		if nc > kr.nc {
			nc = kr.nc
		}
		nPanels := (nc + kr.nr - 1) / kr.nr
		// Blocks before blk are all full-width, so the chunk offset is
		// plain arithmetic rather than a prefix sum.
		base := blk * fullPanels * kBlocks * panel
		for kb := 0; kb < kBlocks; kb++ {
			pc := kb * kr.kc
			kc := k - pc
			if kc > kr.kc {
				kc = kr.kc
			}
			gemmPackedBlockTiles(kr, m, n, kc, beta, c, pa, pre[base+kb*nPanels*panel:], kb, mPanels, jc, nc)
		}
	}
}
