package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// gemmSmallShapes is the routing test matrix: the model's actual
// small-GEMM population (CPN 1×1 heads, refinement FC and its heads)
// plus ragged tails in every dimension and shapes straddling both
// routing boundaries (the flop threshold and the n-floor).
func gemmSmallShapes() []struct{ m, n, k int } {
	return []struct{ m, n, k int }{
		{6, 784, 512},   // CPN cls head: 2·per logits, 28×28 grid, HeadChannels
		{12, 784, 512},  // CPN reg head
		{6, 196, 32},    // tiny-config CPN head, small grid
		{1, 256, 3136},  // refinement FC, one RoI
		{32, 256, 3136}, // refinement FC, batched RoIs
		{1, 2, 256},     // refinement cls head: n below the floor → rows
		{1, 4, 256},     // refinement reg head: n below the floor → rows
		{1, 1, 1},       // degenerate-but-valid
		{2, 8, 16},      // below the flop threshold → rows
		{4, 16, 64},     // skinny A below the flop threshold → rows
		{8, 64, 64},     // exactly at the flop threshold → packed
		{12, 16, 108},   // refinement conv lowering: wide-m term → packed
		{12, 16, 36},    // smallest refinement conv, still wide-m → packed
		{8, 16, 4},      // wide m but under the wide-m flop floor → rows
		{7, 17, 33},     // ragged everywhere
		{5, 9, 129},     // n just past one NR panel on the narrowest kernel
		{13, 31, 7},     // shallow k, ragged m and n
		{3, 8, 171},     // single m-panel, n at the floor
		{61, 33, 192},   // ragged m/n, k exactly one fma-family KC block
		{6, 784, 193},   // k one past a KC block: tail k-block in play
	}
}

// TestGemmSmallShapeRouting pins the routing decision itself: it
// depends only on the shape — never on the kernel geometry or worker
// count, which would break cross-kernel bit-stability — and the n-floor
// keeps NR-padding-dominated shapes on the row kernel.
func TestGemmSmallShapeRouting(t *testing.T) {
	if gemmUsesPacked(1, 2, 256) || gemmUsesPacked(1, 4, 256) {
		t.Error("n below the floor must route to the row kernel")
	}
	if !gemmUsesPacked(6, 784, 512) {
		t.Error("CPN head shape must route to the packed sweep")
	}
	if !gemmUsesPacked(1, 256, 3136) {
		t.Error("refinement FC shape must route to the packed sweep")
	}
	if gemmUsesPacked(2, 8, 16) {
		t.Error("shape below the flop threshold must route to the row kernel")
	}
	if gemmUsesPacked(4, 16, 256) || !gemmUsesPacked(8, 64, 64) {
		t.Errorf("flop threshold boundary moved: 4·16·256 → %v, 8·64·64 → %v",
			gemmUsesPacked(4, 16, 256), gemmUsesPacked(8, 64, 64))
	}
	// The wide-m term: refinement conv lowerings (m=12, n=16) sit far
	// below the unconditional flop cutoff but must reach the packed
	// sweep; skinny-A products of the same flop count must not.
	if !gemmUsesPacked(12, 16, 36) || !gemmUsesPacked(12, 16, 108) {
		t.Error("wide-m refinement conv shape must route to the packed sweep")
	}
	if gemmUsesPacked(6, 16, 128) {
		t.Error("m below gemmPackedMinM must stay on the row kernel under the flop cutoff")
	}
	if gemmUsesPacked(8, 16, 4) || !gemmUsesPacked(8, 16, 32) {
		t.Errorf("wide-m flop floor boundary moved: 8·16·4 → %v, 8·16·32 → %v",
			gemmUsesPacked(8, 16, 4), gemmUsesPacked(8, 16, 32))
	}
	// The flop estimate is computed in int64: dimensions whose product
	// overflows int32 (46341³ ≈ 2^46) must still count as large instead
	// of wrapping negative and falling back to the row kernel.
	if !gemmUsesPacked(46341, 46341, 46341) {
		t.Error("flop estimate overflowed: huge shape routed to the row kernel")
	}
	if !gemmUsesPacked(1<<20, 1<<20, 1<<20) {
		t.Error("flop estimate overflowed at 2^60 flops")
	}
}

// TestGemmSmallShapePackedVsRows cross-checks the two routing targets
// against each other on every registered kernel at every small shape:
// whatever gemmUsesPacked decides, both paths must agree within
// summation-reordering tolerance, so a routing threshold change can
// never change results beyond ulp-level drift.
func TestGemmSmallShapePackedVsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	origKernel := GemmKernel()
	defer SetGemmKernel(origKernel)
	for _, kr := range availableKernels(t) {
		if _, err := SetGemmKernel(kr.name); err != nil {
			t.Fatalf("SetGemmKernel(%q): %v", kr.name, err)
		}
		for _, sh := range gemmSmallShapes() {
			m, n, k := sh.m, sh.n, sh.k
			for _, transA := range []bool{false, true} {
				for _, transB := range []bool{false, true} {
					a := randSlice(rng, m*k)
					b := randSlice(rng, k*n)
					cR := randSlice(rng, m*n)
					cP := append([]float32(nil), cR...)
					alpha, beta := float32(0.75), float32(-0.5)
					gemmRows(transA, transB, 0, m, m, n, k, alpha, a, b, beta, cR)
					gemmPacked(nil, transA, transB, m, n, k, alpha, a, b, beta, cP)
					for i := range cP {
						diff := float64(cP[i] - cR[i])
						if diff < 0 {
							diff = -diff
						}
						if diff > 1e-3 {
							t.Fatalf("%s shape %v transA=%v transB=%v: c[%d] packed %v vs rows %v",
								kr.name, sh, transA, transB, i, cP[i], cR[i])
						}
					}
				}
			}
		}
	}
}

// TestGemmPreBMatchesGemm pins the prepacked-B contract: for every
// registered kernel and every small shape — on both sides of the
// routing threshold, with ragged tails, both B orientations and both A
// orientations — GemmPreB over PackB(b) is bit-identical to Gemm over
// b. Swapping the per-call packer for a prepacked weight can never
// change inference results.
func TestGemmPreBMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	origKernel := GemmKernel()
	defer SetGemmKernel(origKernel)
	for _, kr := range availableKernels(t) {
		if _, err := SetGemmKernel(kr.name); err != nil {
			t.Fatalf("SetGemmKernel(%q): %v", kr.name, err)
		}
		for _, sh := range gemmSmallShapes() {
			m, n, k := sh.m, sh.n, sh.k
			for _, transA := range []bool{false, true} {
				for _, transB := range []bool{false, true} {
					a := randSlice(rng, m*k)
					b := randSlice(rng, k*n)
					c0 := randSlice(rng, m*n)
					want := append([]float32(nil), c0...)
					got := append([]float32(nil), c0...)
					alpha, beta := float32(1.25), float32(0.5)
					Gemm(transA, transB, m, n, k, alpha, a, b, beta, want)
					pb := PackB(transB, k, n, b)
					GemmPreB(transA, m, n, k, alpha, a, pb, beta, got)
					assertBitIdentical(t, fmt.Sprintf("%s shape %v transA=%v transB=%v", kr.name, sh, transA, transB), want, got)
					// Second call reuses the cached panels — still identical.
					got2 := append([]float32(nil), c0...)
					GemmPreB(transA, m, n, k, alpha, a, pb, beta, got2)
					assertBitIdentical(t, fmt.Sprintf("%s shape %v reuse", kr.name, sh), want, got2)
				}
			}
		}
	}
}

// TestGemmPreBAcrossKernelSwitch checks the lazy per-kernel packing: a
// PackedB built under one kernel must produce correct (bit-identical to
// Gemm) results after SetGemmKernel switches the active kernel, packing
// the new geometry on first use.
func TestGemmPreBAcrossKernelSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	origKernel := GemmKernel()
	defer SetGemmKernel(origKernel)
	kernels := availableKernels(t)
	if len(kernels) < 2 {
		t.Skip("need at least two usable kernels")
	}
	m, n, k := 6, 784, 512
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)

	if _, err := SetGemmKernel(kernels[0].name); err != nil {
		t.Fatal(err)
	}
	pb := PackB(false, k, n, b)
	for _, kr := range kernels {
		if _, err := SetGemmKernel(kr.name); err != nil {
			t.Fatal(err)
		}
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a, b, 0, want)
		GemmPreB(false, m, n, k, 1, a, pb, 0, got)
		assertBitIdentical(t, kr.name+" after switch", want, got)
	}
}

// TestGemmPreBParityAcrossWorkerCounts extends the determinism contract
// to the prepacked path: bit-identical at 1 and 8 workers.
func TestGemmPreBParityAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m, n, k := 32, 784, 512 // n spans multiple column blocks on every kernel
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	pb := PackB(false, k, n, b)
	run := func() []float32 {
		c := make([]float32, m*n)
		GemmPreB(false, m, n, k, 1, a, pb, 0, c)
		return c
	}
	serial := runAtWorkers(1, run)
	par := runAtWorkers(8, run)
	assertBitIdentical(t, "prepacked gemm", serial, par)
}

// TestPackBValidates pins the argument contracts.
func TestPackBValidates(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PackB with a short matrix did not panic")
			}
		}()
		PackB(false, 4, 4, make([]float32, 15))
	}()
	pb := PackB(false, 4, 8, make([]float32, 32))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("GemmPreB with mismatched k/n did not panic")
			}
		}()
		GemmPreB(false, 2, 8, 5, 1, make([]float32, 10), pb, 0, make([]float32, 16))
	}()
}

// BenchmarkGemmSmallShapeSweep measures the row kernel, the per-call
// packed sweep and the prepacked sweep at the small-GEMM population, on
// the active kernel. This is the measurement behind the routing
// constants (gemmRowsMaxFlops, gemmRowsMinN) in matmul.go: the
// crossover where the packed sweep overtakes the row kernel sets the
// flop threshold, and the n∈{2,4} head shapes justify the n-floor.
func BenchmarkGemmSmallShapeSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	shapes := []struct{ m, n, k int }{
		{1, 2, 256}, {1, 4, 256}, {1, 8, 256}, // head shapes around the n-floor
		{2, 8, 16}, {4, 16, 64}, {4, 16, 256}, // around the flop threshold
		{12, 16, 36}, {12, 16, 48}, {12, 16, 108}, // refinement conv lowerings
		{8, 16, 128}, {12, 16, 128}, {16, 16, 64}, // m-sweep at constant ~16K flops
		{8, 16, 8}, {8, 16, 32}, {12, 16, 16}, {6, 16, 128}, {6, 16, 48}, // wide-m lower boundary
		{6, 196, 32}, {6, 784, 512}, {12, 784, 512}, // CPN heads
		{1, 256, 3136}, {32, 256, 3136}, // refinement FC
	}
	for _, sh := range shapes {
		m, n, k := sh.m, sh.n, sh.k
		a := randSlice(rng, m*k)
		bm := randSlice(rng, k*n)
		c := make([]float32, m*n)
		name := fmt.Sprintf("m%dn%dk%d", m, n, k)
		b.Run(name+"/rows", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmRows(false, false, 0, m, m, n, k, 1, a, bm, 0, c)
			}
		})
		b.Run(name+"/packed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPacked(nil, false, false, m, n, k, 1, a, bm, 0, c)
			}
		})
		pb := PackB(false, k, n, bm)
		kr := gemmActive.Load()
		b.Run(name+"/prepacked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPackedPre(kr, nil, false, m, n, k, 1, a, pb.ensure(kr), 0, c)
			}
		})
	}
}
