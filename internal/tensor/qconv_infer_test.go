package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestQConv2DInferMatchesFloat checks the quantized conv against the
// float32 conv within the quantization error budget, across geometries
// with padding (exercising the zero-point padding correction) and
// strides, for every available kernel — whose outputs must also be
// bit-identical to each other (activations are in-domain by
// construction).
func TestQConv2DInferMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := NewWorkspace()
	cases := []struct {
		n, c, h, w, oc int
		o              ConvOpts
	}{
		{1, 3, 16, 16, 8, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
		{2, 4, 13, 11, 6, ConvOpts{Kernel: 3, Stride: 2, Padding: 1}},
		{1, 8, 20, 20, 16, ConvOpts{Kernel: 5, Stride: 1, Padding: 2}},
		{1, 2, 9, 9, 4, ConvOpts{Kernel: 1, Stride: 1, Padding: 0}},
	}
	orig := QGemmKernel()
	defer SetQGemmKernel(orig)
	for ci, tc := range cases {
		x := New(tc.n, tc.c, tc.h, tc.w)
		wgt := New(tc.oc, tc.c, tc.o.Kernel, tc.o.Kernel)
		bias := New(tc.oc)
		fillRand(x, rng)
		fillRand(wgt, rng)
		fillRand(bias, rng)

		ws.Reset()
		want := Conv2DInfer(ws, x, wgt, tc.o, Epilogue{Bias: bias, Act: true, Slope: 0.05})

		var r QuantRange
		r.ObserveSlice(x.data)
		kk := tc.c * tc.o.Kernel * tc.o.Kernel
		plan := NewQConvWeights(wgt.data, tc.oc, kk).Plan(r.Params())

		// Error budget: each of the kk products carries at most half an
		// activation step times the weight magnitude (and vice versa);
		// a loose per-element bound of kk·(actStep·maxW + wStep·maxAct)
		// covers accumulation comfortably.
		actStep := float64(plan.In.Scale)
		var maxW, wStep float64
		for r := 0; r < tc.oc; r++ {
			if s := float64(plan.W.Scales[r]); s*WeightQMax > maxW {
				maxW = s * WeightQMax
				wStep = s
			}
		}
		var maxAct float64
		for _, v := range x.data {
			if a := math.Abs(float64(v)); a > maxAct {
				maxAct = a
			}
		}
		tol := float64(kk) * (actStep*maxW + wStep*maxAct)

		var ref []float32
		for _, kr := range availableQKernels(t) {
			if _, err := SetQGemmKernel(kr.name); err != nil {
				t.Fatalf("SetQGemmKernel(%s): %v", kr.name, err)
			}
			qws := NewWorkspace()
			got := QConv2DInfer(qws, x, plan, tc.o, Epilogue{Bias: bias, Act: true, Slope: 0.05})
			gs, wsh := got.Shape(), want.Shape()
			for i := range wsh {
				if gs[i] != wsh[i] {
					t.Fatalf("case %d: shape %v vs %v", ci, gs, wsh)
				}
			}
			for i, v := range want.data {
				if math.Abs(float64(got.data[i])-float64(v)) > tol {
					t.Fatalf("case %d kernel %s: element %d: int8 %v vs fp32 %v (tol %v)",
						ci, kr.name, i, got.data[i], v, tol)
				}
			}
			if ref == nil {
				ref = append([]float32(nil), got.data...)
				continue
			}
			for i := range ref {
				if math.Float32bits(ref[i]) != math.Float32bits(got.data[i]) {
					t.Fatalf("case %d: kernel %s diverges from first kernel at %d: %v vs %v",
						ci, kr.name, i, got.data[i], ref[i])
				}
			}
			ref = nil
			ref = append(ref, got.data...)
		}
	}
}

// TestQConv2DInferZeroInput pins the padding identity: an all-zero
// input quantizes to the zero point everywhere, the correction cancels
// it exactly, and the output is exactly bias (after activation).
func TestQConv2DInferZeroInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	o := ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	x := New(1, 3, 8, 8) // zeros
	wgt := New(4, 3, 3, 3)
	bias := New(4)
	fillRand(wgt, rng)
	fillRand(bias, rng)

	var r QuantRange
	r.Observe(-1)
	r.Observe(1)
	plan := NewQConvWeights(wgt.data, 4, 27).Plan(r.Params())
	ws := NewWorkspace()
	got := QConv2DInfer(ws, x, plan, o, Epilogue{Bias: bias})
	oh, ow := o.OutDim(8), o.OutDim(8)
	for ch := 0; ch < 4; ch++ {
		for i := 0; i < oh*ow; i++ {
			if v := got.data[ch*oh*ow+i]; v != bias.data[ch] {
				t.Fatalf("channel %d element %d = %v, want exact bias %v", ch, i, v, bias.data[ch])
			}
		}
	}
}

// TestQConvWeightsPackedForAllKernels checks weights pre-pack for every
// usable kernel so SetQGemmKernel swaps never need repacking.
func TestQConvWeightsPackedForAllKernels(t *testing.T) {
	w := make([]float32, 8*36)
	for i := range w {
		w[i] = float32(i%11) - 5
	}
	qw := NewQConvWeights(w, 8, 36)
	for _, kr := range availableQKernels(t) {
		if qw.packed[kr.name] == nil {
			t.Errorf("no packed panels for usable kernel %q", kr.name)
		}
	}
}
