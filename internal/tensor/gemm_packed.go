package tensor

import (
	"sync"

	"rhsd/internal/parallel"
)

// Packed cache-blocked GEMM (BLIS-style). op(A) and op(B) are repacked
// into contiguous panels sized for cache residency and swept by a
// register-blocked micro-kernel whose geometry (MR×NR register tile,
// KC/NC cache blocking) comes from the runtime-selected kernel
// (gemm_kernel.go):
//
//   - A is packed once, alpha folded in, as MR-wide row panels grouped by
//     KC-deep k-blocks. The whole packed A is reused by every column
//     block, so it stays hot in L2/L3 across the sweep.
//   - The n axis is cut into NC-wide column blocks; the blocks fan out
//     over the worker pool and each concurrent worker packs B panels for
//     its current block into a private per-slot buffer (no locking,
//     parallel.ForIndexed provides the slot id).
//   - For each (k-block, column block) the micro-kernel accumulates an
//     MR×NR register tile over the packed panels and adds it into C.
//
// B panels are produced by a bSource, which is either a dense matrix
// (plain Gemm) or a virtual im2col lowering of an image (the fused
// inference-conv path, conv_infer.go) — the panel values are identical
// either way, so fusing changes memory traffic, never results.
//
// Determinism: the block geometry is fixed per kernel and the k-blocks
// of one output element are always accumulated in ascending order by the
// single worker that owns the element's column block, so the result is
// bit-identical for every worker count. Only the grouping of the k-sum
// differs from the unblocked kernel, so the two agree to rounding.

// packBufPool recycles pack buffers across Gemm calls so steady-state
// inference performs no heap allocations. Buffers are binned by
// power-of-two size class; each class keeps a bounded stack so a burst of
// concurrent training goroutines cannot pin unbounded memory.
var packBufPool struct {
	mu   sync.Mutex
	bins map[int][][]float32
}

const packBufPoolPerClass = 16

func packBufGet(n int) []float32 {
	class := sizeClass(n)
	packBufPool.mu.Lock()
	if packBufPool.bins == nil {
		packBufPool.bins = make(map[int][][]float32)
	}
	bin := packBufPool.bins[class]
	if len(bin) > 0 {
		buf := bin[len(bin)-1]
		packBufPool.bins[class] = bin[:len(bin)-1]
		packBufPool.mu.Unlock()
		return buf[:n]
	}
	packBufPool.mu.Unlock()
	return make([]float32, n, 1<<class)
}

func packBufPut(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	class := sizeClass(len(buf))
	if 1<<class != len(buf) {
		// Foreign capacity (not pool-shaped); binning it would lie about
		// its size class, so drop it for the GC.
		return
	}
	packBufPool.mu.Lock()
	if packBufPool.bins == nil {
		packBufPool.bins = make(map[int][][]float32)
	}
	if len(packBufPool.bins[class]) < packBufPoolPerClass {
		packBufPool.bins[class] = append(packBufPool.bins[class], buf)
	}
	packBufPool.mu.Unlock()
}

// sizeClass returns the exponent of the smallest power of two ≥ n (≥ 64
// elements, so tiny buffers share a bin).
func sizeClass(n int) int {
	class := 6
	for 1<<class < n {
		class++
	}
	return class
}

// bSource describes where B panels come from. It is passed by value
// everywhere (including into the parallel closure) so the serial path
// never heap-allocates: capturing its address would force the whole
// struct onto the heap on every call (escape analysis is
// path-insensitive, see DESIGN §10).
type bSource struct {
	im2col bool
	trans  bool      // dense only: B stored n×k instead of k×n
	data   []float32 // dense matrix, or [c,h,w] image planes for im2col
	k, n   int       // op(B) dimensions
	// im2col fields: op(B)[row, j] = image[ch, oy·stride+ky-pad,
	// ox·stride+kx-pad] with row = (ch·K+ky)·K+kx and j = oy·ow+ox,
	// zero outside the image — exactly the matrix im2colInto
	// materializes, produced panel-by-panel on the fly instead.
	c, h, w, ow int
	o           ConvOpts
}

func denseB(trans bool, k, n int, b []float32) bSource {
	return bSource{trans: trans, data: b, k: k, n: n}
}

func im2colB(x []float32, c, h, w int, o ConvOpts) bSource {
	return bSource{
		im2col: true,
		data:   x,
		k:      c * o.Kernel * o.Kernel,
		n:      o.OutDim(h) * o.OutDim(w),
		c:      c, h: h, w: w, ow: o.OutDim(w),
		o: o,
	}
}

// pack lays the (pc..pc+kc, jc..jc+nc) block of op(B) out as
// [nPanels][KC·NR] panels: within a panel, element (p, s) holds
// op(B)[pc+p, j0+s]. Columns beyond the block pad with zeros.
func (bs bSource) pack(kr *gemmKernel, pb []float32, jc, nc, pc, kc int) {
	if bs.im2col {
		bs.packIm2col(kr, pb, jc, nc, pc, kc)
		return
	}
	nr, kcStride := kr.nr, kr.kc
	k, n, b := bs.k, bs.n, bs.data
	nPanels := (nc + nr - 1) / nr
	for np := 0; np < nPanels; np++ {
		dst := pb[np*kcStride*nr:]
		j0 := jc + np*nr
		if j0+nr <= jc+nc {
			if bs.trans {
				for p := 0; p < kc; p++ {
					d := dst[p*nr : p*nr+nr]
					for s := range d {
						d[s] = b[(j0+s)*k+pc+p]
					}
				}
			} else {
				for p := 0; p < kc; p++ {
					brow := b[(pc+p)*n+j0:]
					copy(dst[p*nr:p*nr+nr], brow[:nr])
				}
			}
			continue
		}
		for p := 0; p < kc; p++ {
			for s := 0; s < nr; s++ {
				j := j0 + s
				var v float32
				if j < jc+nc {
					if bs.trans {
						v = b[j*k+pc+p]
					} else {
						v = b[(pc+p)*n+j]
					}
				}
				dst[p*nr+s] = v
			}
		}
	}
}

// packIm2col packs B panels straight from the image, skipping the
// materialized column matrix entirely: each element is computed from the
// (channel, ky, kx) row decomposition and the (oy, ox) output pixel the
// column index names. Values — including the zero padding of
// out-of-image taps and of columns beyond the block — are identical to
// running packB over im2colInto's output, which is what keeps the fused
// and materialized conv paths bit-identical.
func (bs bSource) packIm2col(kr *gemmKernel, pb []float32, jc, nc, pc, kc int) {
	nr, kcStride := kr.nr, kr.kc
	o := bs.o
	kern, stride := o.Kernel, o.Stride
	h, w, ow := bs.h, bs.w, bs.ow
	x := bs.data
	nPanels := (nc + nr - 1) / nr
	for np := 0; np < nPanels; np++ {
		dst := pb[np*kcStride*nr:]
		j0 := jc + np*nr
		cols := jc + nc - j0
		if cols > nr {
			cols = nr
		}
		// Decompose the panel's starting row and column once, then walk
		// both incrementally — no div/mod in the element loops.
		ch := pc / (kern * kern)
		rem := pc - ch*kern*kern
		ky := rem / kern
		kx := rem - ky*kern
		oy0 := j0 / ow
		ox0 := j0 - oy0*ow
		for p := 0; p < kc; p++ {
			d := dst[p*nr : p*nr+nr]
			base := ch * h * w
			dy := ky - o.Padding
			dx := kx - o.Padding
			oy, ox := oy0, ox0
			// Walk the panel row in output-row segments: within one
			// segment sy is fixed, so padding resolves to zero-fills and
			// — at stride 1, the dominant conv geometry — the interior is
			// one contiguous copy from the image row, the same memmove
			// fast path the dense packer and im2colChans enjoy.
			for s := 0; s < cols; {
				seg := ow - ox
				if seg > cols-s {
					seg = cols - s
				}
				sy := oy*stride + dy
				switch {
				case sy < 0 || sy >= h:
					for e := 0; e < seg; e++ {
						d[s+e] = 0
					}
				case stride == 1:
					srow := x[base+sy*w : base+sy*w+w]
					sx := ox + dx
					e := 0
					for ; e < seg && sx < 0; e++ {
						d[s+e] = 0
						sx++
					}
					if run := min(seg-e, w-sx); run > 0 {
						copy(d[s+e:s+e+run], srow[sx:sx+run])
						e += run
					}
					for ; e < seg; e++ {
						d[s+e] = 0
					}
				default:
					srow := x[base+sy*w : base+sy*w+w]
					for e := 0; e < seg; e++ {
						sx := (ox+e)*stride + dx
						if sx >= 0 && sx < w {
							d[s+e] = srow[sx]
						} else {
							d[s+e] = 0
						}
					}
				}
				s += seg
				ox = 0
				oy++
			}
			for s := cols; s < nr; s++ {
				d[s] = 0
			}
			kx++
			if kx == kern {
				kx = 0
				ky++
				if ky == kern {
					ky = 0
					ch++
				}
			}
		}
	}
}

func gemmPacked(sc *ProfileScope, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	gemmPackedScoped(gemmActive.Load(), sc, transA, m, n, k, alpha, a, denseB(transB, k, n, b), beta, c)
}

// gemmPackedWith runs the packed sweep with an explicit kernel and B
// source; the parity suites use it to pin asm kernels against their
// portable reference twins on identical geometry.
func gemmPackedWith(kr *gemmKernel, transA bool, m, n, k int, alpha float32, a []float32, bs bSource, beta float32, c []float32) {
	gemmPackedScoped(kr, nil, transA, m, n, k, alpha, a, bs, beta, c)
}

// gemmPackedScoped is gemmPackedWith with a profile-attribution scope.
func gemmPackedScoped(kr *gemmKernel, sc *ProfileScope, transA bool, m, n, k int, alpha float32, a []float32, bs bSource, beta float32, c []float32) {
	on, t0 := profStart()
	mPanels := (m + kr.mr - 1) / kr.mr
	kBlocks := (k + kr.kc - 1) / kr.kc
	nBlocks := (n + kr.nc - 1) / kr.nc

	pa := packBufGet(kBlocks * mPanels * kr.kc * kr.mr)
	packA(kr, transA, m, k, alpha, a, pa)

	// One pack buffer per worker slot; nc is a multiple of nr for every
	// registered kernel, so kc·nc floats hold a block's panels exactly.
	pbStride := kr.kc * kr.nc
	slots := parallel.Slots(nBlocks, 1)
	pbAll := packBufGet(slots * pbStride)

	if slots == 1 {
		// Serial fast path: calling the named block sweep directly avoids
		// creating a closure (which Go heap-allocates unconditionally
		// because it may flow to a goroutine) — this keeps single-worker
		// inference allocation-free.
		gemmPackedBlocks(kr, bs, m, n, k, beta, c, pa, pbAll, kBlocks, mPanels, 0, nBlocks)
	} else {
		parallel.ForIndexed(nBlocks, 1, func(slot, b0, b1 int) {
			pb := pbAll[slot*pbStride : (slot+1)*pbStride]
			gemmPackedBlocks(kr, bs, m, n, k, beta, c, pa, pb, kBlocks, mPanels, b0, b1)
		})
	}

	packBufPut(pbAll)
	packBufPut(pa)
	profEnd(on, sc, profGemmPacked, t0)
}

// gemmPackedBlocks sweeps column blocks [b0, b1) using the private pack
// buffer pb for B panels.
func gemmPackedBlocks(kr *gemmKernel, bs bSource, m, n, k int, beta float32, c, pa, pb []float32, kBlocks, mPanels, b0, b1 int) {
	for blk := b0; blk < b1; blk++ {
		jc := blk * kr.nc
		nc := n - jc
		if nc > kr.nc {
			nc = kr.nc
		}
		for kb := 0; kb < kBlocks; kb++ {
			pc := kb * kr.kc
			kc := k - pc
			if kc > kr.kc {
				kc = kr.kc
			}
			bs.pack(kr, pb, jc, nc, pc, kc)
			gemmPackedBlockTiles(kr, m, n, kc, beta, c, pa, pb, kb, mPanels, jc, nc)
		}
	}
}

// gemmPackedBlockTiles sweeps the micro-kernel over one (column block,
// k-block) pair whose B panels are already packed in pb — shared by the
// per-call packers above and the prepacked-B driver (gemm_prepack.go),
// so both consume panel data through identical tile arithmetic.
func gemmPackedBlockTiles(kr *gemmKernel, m, n, kc int, beta float32, c, pa, pb []float32, kb, mPanels, jc, nc int) {
	mr, nr := kr.mr, kr.nr
	nPanels := (nc + nr - 1) / nr
	first := kb == 0
	for mp := 0; mp < mPanels; mp++ {
		paPanel := pa[(kb*mPanels+mp)*kr.kc*mr:]
		i0 := mp * mr
		mi := m - i0
		if mi > mr {
			mi = mr
		}
		for np := 0; np < nPanels; np++ {
			j0 := jc + np*nr
			nj := jc + nc - j0
			if nj > nr {
				nj = nr
			}
			var acc [gemmMaxTile]float32
			gemmMicroRun(kr.kind, mr, nr, kc, paPanel, pb[np*kr.kc*nr:], &acc)
			storeTile(c, n, i0, j0, mi, nj, nr, &acc, first, beta)
		}
	}
}

// packA lays op(A) out as [kBlocks][mPanels][KC·MR] panels with alpha
// folded in: within a panel, element (p, r) holds alpha·op(A)[i0+r, pc+p].
// Rows beyond m pad with zeros so the micro-kernel needs no row tail.
func packA(kr *gemmKernel, transA bool, m, k int, alpha float32, a []float32, pa []float32) {
	mr, kcMax := kr.mr, kr.kc
	mPanels := (m + mr - 1) / mr
	for kb, pc := 0, 0; pc < k; kb, pc = kb+1, pc+kcMax {
		kc := k - pc
		if kc > kcMax {
			kc = kcMax
		}
		for mp := 0; mp < mPanels; mp++ {
			dst := pa[(kb*mPanels+mp)*kcMax*mr:]
			i0 := mp * mr
			if i0+mr <= m {
				// Full panel: no row bounds checks in the copy loops.
				if transA {
					for p := 0; p < kc; p++ {
						arow := a[(pc+p)*m+i0 : (pc+p)*m+i0+mr]
						d := dst[p*mr : p*mr+mr]
						for r, v := range arow {
							d[r] = alpha * v
						}
					}
				} else {
					for r := 0; r < mr; r++ {
						src := a[(i0+r)*k+pc : (i0+r)*k+pc+kc]
						for p, v := range src {
							dst[p*mr+r] = alpha * v
						}
					}
				}
				continue
			}
			for p := 0; p < kc; p++ {
				for r := 0; r < mr; r++ {
					i := i0 + r
					var v float32
					if i < m {
						if transA {
							v = a[(pc+p)*m+i]
						} else {
							v = a[i*k+pc+p]
						}
					}
					dst[p*mr+r] = alpha * v
				}
			}
		}
	}
}

// storeTile adds the mi×nj valid region of an MR×NR accumulator tile
// (row stride nr) into C at (i0, j0). On the first k-block the
// destination is beta-scaled first, matching the beta-then-accumulate
// semantics of the unblocked kernel.
func storeTile(c []float32, n, i0, j0, mi, nj, nr int, acc *[gemmMaxTile]float32, first bool, beta float32) {
	for r := 0; r < mi; r++ {
		crow := c[(i0+r)*n+j0 : (i0+r)*n+j0+nj]
		arow := acc[r*nr : r*nr+nj]
		switch {
		case first && beta == 0:
			for s := range crow {
				crow[s] = arow[s]
			}
		case first && beta != 1:
			for s := range crow {
				crow[s] = beta*crow[s] + arow[s]
			}
		default:
			for s := range crow {
				crow[s] += arow[s]
			}
		}
	}
}

// gemmMicro4x8Go accumulates a 4×8 tile over kc packed steps:
// acc[r*8+s] = Σ_p pa[p*4+r]·pb[p*8+s]. It is the portable muladd-family
// kernel and the bit-reference for the SSE implementation, whose
// MULPS/ADDPS per-lane rounding is identical to scalar mul-then-add
// (pinned by TestGemmMicroKernelParity).
func gemmMicro4x8Go(kc int, pa, pb []float32, acc *[gemmMaxTile]float32) {
	var (
		c00, c01, c02, c03, c04, c05, c06, c07 float32
		c10, c11, c12, c13, c14, c15, c16, c17 float32
		c20, c21, c22, c23, c24, c25, c26, c27 float32
		c30, c31, c32, c33, c34, c35, c36, c37 float32
	)
	pa = pa[:kc*4]
	pb = pb[:kc*8]
	for p := 0; p < kc; p++ {
		pav := pa[p*4 : p*4+4]
		pbv := pb[p*8 : p*8+8]
		a0, a1, a2, a3 := pav[0], pav[1], pav[2], pav[3]
		b0, b1, b2, b3 := pbv[0], pbv[1], pbv[2], pbv[3]
		b4, b5, b6, b7 := pbv[4], pbv[5], pbv[6], pbv[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	acc[0], acc[1], acc[2], acc[3], acc[4], acc[5], acc[6], acc[7] = c00, c01, c02, c03, c04, c05, c06, c07
	acc[8], acc[9], acc[10], acc[11], acc[12], acc[13], acc[14], acc[15] = c10, c11, c12, c13, c14, c15, c16, c17
	acc[16], acc[17], acc[18], acc[19], acc[20], acc[21], acc[22], acc[23] = c20, c21, c22, c23, c24, c25, c26, c27
	acc[24], acc[25], acc[26], acc[27], acc[28], acc[29], acc[30], acc[31] = c30, c31, c32, c33, c34, c35, c36, c37
}
