package tensor

import (
	"sync"

	"rhsd/internal/parallel"
)

// Packed cache-blocked GEMM (BLIS-style). op(A) and op(B) are repacked
// into contiguous panels sized for cache residency and swept by a
// register-blocked 4×8 micro-kernel:
//
//   - A is packed once, alpha folded in, as MR-wide row panels grouped by
//     KC-deep k-blocks. The whole packed A is reused by every column
//     block, so it stays hot in L2/L3 across the sweep.
//   - The n axis is cut into NC-wide column blocks; the blocks fan out
//     over the worker pool and each concurrent worker packs B panels for
//     its current block into a private per-slot buffer (no locking,
//     parallel.ForIndexed provides the slot id).
//   - For each (k-block, column block) the micro-kernel accumulates a
//     4×8 register tile over the packed panels and adds it into C.
//
// Determinism: the block geometry (MR/NR/KC/NC) is fixed and the k-blocks
// of one output element are always accumulated in ascending order by the
// single worker that owns the element's column block, so the result is
// bit-identical for every worker count. Only the grouping of the k-sum
// differs from the unblocked kernel, so the two agree to rounding.
const (
	gemmMR = 4   // micro-kernel rows (register tile height)
	gemmNR = 8   // micro-kernel cols (register tile width)
	gemmKC = 256 // k-block depth: one A panel (KC·MR) ≈ 4 KB, L1-resident
	gemmNC = 128 // column-block width: one packed B block (KC·NC) = 128 KB
)

// packBufPool recycles pack buffers across Gemm calls so steady-state
// inference performs no heap allocations. Buffers are binned by
// power-of-two size class; each class keeps a bounded stack so a burst of
// concurrent training goroutines cannot pin unbounded memory.
var packBufPool struct {
	mu   sync.Mutex
	bins map[int][][]float32
}

const packBufPoolPerClass = 16

func packBufGet(n int) []float32 {
	class := sizeClass(n)
	packBufPool.mu.Lock()
	if packBufPool.bins == nil {
		packBufPool.bins = make(map[int][][]float32)
	}
	bin := packBufPool.bins[class]
	if len(bin) > 0 {
		buf := bin[len(bin)-1]
		packBufPool.bins[class] = bin[:len(bin)-1]
		packBufPool.mu.Unlock()
		return buf[:n]
	}
	packBufPool.mu.Unlock()
	return make([]float32, n, 1<<class)
}

func packBufPut(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	class := sizeClass(len(buf))
	if 1<<class != len(buf) {
		// Foreign capacity (not pool-shaped); binning it would lie about
		// its size class, so drop it for the GC.
		return
	}
	packBufPool.mu.Lock()
	if packBufPool.bins == nil {
		packBufPool.bins = make(map[int][][]float32)
	}
	if len(packBufPool.bins[class]) < packBufPoolPerClass {
		packBufPool.bins[class] = append(packBufPool.bins[class], buf)
	}
	packBufPool.mu.Unlock()
}

// sizeClass returns the exponent of the smallest power of two ≥ n (≥ 64
// elements, so tiny buffers share a bin).
func sizeClass(n int) int {
	class := 6
	for 1<<class < n {
		class++
	}
	return class
}

func gemmPacked(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	mPanels := (m + gemmMR - 1) / gemmMR
	kBlocks := (k + gemmKC - 1) / gemmKC
	nBlocks := (n + gemmNC - 1) / gemmNC

	pa := packBufGet(kBlocks * mPanels * gemmKC * gemmMR)
	packA(transA, m, k, alpha, a, pa)

	const pbStride = gemmKC * gemmNC
	slots := parallel.Slots(nBlocks, 1)
	pbAll := packBufGet(slots * pbStride)

	if slots == 1 {
		// Serial fast path: calling the named block sweep directly avoids
		// creating a closure (which Go heap-allocates unconditionally
		// because it may flow to a goroutine) — this keeps single-worker
		// inference allocation-free.
		gemmPackedBlocks(transB, m, n, k, beta, b, c, pa, pbAll, kBlocks, mPanels, 0, nBlocks)
	} else {
		parallel.ForIndexed(nBlocks, 1, func(slot, b0, b1 int) {
			pb := pbAll[slot*pbStride : (slot+1)*pbStride]
			gemmPackedBlocks(transB, m, n, k, beta, b, c, pa, pb, kBlocks, mPanels, b0, b1)
		})
	}

	packBufPut(pbAll)
	packBufPut(pa)
}

// gemmPackedBlocks sweeps column blocks [b0, b1) using the private pack
// buffer pb for B panels.
func gemmPackedBlocks(transB bool, m, n, k int, beta float32, b, c, pa, pb []float32, kBlocks, mPanels, b0, b1 int) {
	for blk := b0; blk < b1; blk++ {
		jc := blk * gemmNC
		nc := n - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		nPanels := (nc + gemmNR - 1) / gemmNR
		for kb := 0; kb < kBlocks; kb++ {
			pc := kb * gemmKC
			kc := k - pc
			if kc > gemmKC {
				kc = gemmKC
			}
			packB(transB, k, n, jc, nc, pc, kc, b, pb)
			first := kb == 0
			for mp := 0; mp < mPanels; mp++ {
				paPanel := pa[(kb*mPanels+mp)*gemmKC*gemmMR:]
				i0 := mp * gemmMR
				mi := m - i0
				if mi > gemmMR {
					mi = gemmMR
				}
				for np := 0; np < nPanels; np++ {
					j0 := jc + np*gemmNR
					nj := n - j0
					if nj > gemmNR {
						nj = gemmNR
					}
					var acc [gemmMR * gemmNR]float32
					gemmMicro4x8(kc, paPanel, pb[np*gemmKC*gemmNR:], &acc)
					storeTile(c, n, i0, j0, mi, nj, &acc, first, beta)
				}
			}
		}
	}
}

// packA lays op(A) out as [kBlocks][mPanels][KC·MR] panels with alpha
// folded in: within a panel, element (p, r) holds alpha·op(A)[i0+r, pc+p].
// Rows beyond m pad with zeros so the micro-kernel needs no row tail.
func packA(transA bool, m, k int, alpha float32, a []float32, pa []float32) {
	mPanels := (m + gemmMR - 1) / gemmMR
	for kb, pc := 0, 0; pc < k; kb, pc = kb+1, pc+gemmKC {
		kc := k - pc
		if kc > gemmKC {
			kc = gemmKC
		}
		for mp := 0; mp < mPanels; mp++ {
			dst := pa[(kb*mPanels+mp)*gemmKC*gemmMR:]
			i0 := mp * gemmMR
			if i0+gemmMR <= m {
				// Full panel: no row bounds checks in the copy loop.
				if transA {
					for p := 0; p < kc; p++ {
						arow := a[(pc+p)*m+i0:]
						d := dst[p*gemmMR:]
						d[0] = alpha * arow[0]
						d[1] = alpha * arow[1]
						d[2] = alpha * arow[2]
						d[3] = alpha * arow[3]
					}
				} else {
					a0 := a[i0*k:]
					a1 := a[(i0+1)*k:]
					a2 := a[(i0+2)*k:]
					a3 := a[(i0+3)*k:]
					for p := 0; p < kc; p++ {
						d := dst[p*gemmMR:]
						d[0] = alpha * a0[pc+p]
						d[1] = alpha * a1[pc+p]
						d[2] = alpha * a2[pc+p]
						d[3] = alpha * a3[pc+p]
					}
				}
				continue
			}
			for p := 0; p < kc; p++ {
				for r := 0; r < gemmMR; r++ {
					i := i0 + r
					var v float32
					if i < m {
						if transA {
							v = a[(pc+p)*m+i]
						} else {
							v = a[i*k+pc+p]
						}
					}
					dst[p*gemmMR+r] = alpha * v
				}
			}
		}
	}
}

// packB lays the (pc..pc+kc, jc..jc+nc) block of op(B) out as
// [nPanels][KC·NR] panels: within a panel, element (p, s) holds
// op(B)[pc+p, j0+s]. Columns beyond the matrix pad with zeros.
func packB(transB bool, k, n, jc, nc, pc, kc int, b []float32, pb []float32) {
	nPanels := (nc + gemmNR - 1) / gemmNR
	for np := 0; np < nPanels; np++ {
		dst := pb[np*gemmKC*gemmNR:]
		j0 := jc + np*gemmNR
		if j0+gemmNR <= jc+nc {
			if transB {
				for p := 0; p < kc; p++ {
					d := dst[p*gemmNR:]
					for s := 0; s < gemmNR; s++ {
						d[s] = b[(j0+s)*k+pc+p]
					}
				}
			} else {
				for p := 0; p < kc; p++ {
					brow := b[(pc+p)*n+j0:]
					copy(dst[p*gemmNR:p*gemmNR+gemmNR], brow[:gemmNR])
				}
			}
			continue
		}
		for p := 0; p < kc; p++ {
			for s := 0; s < gemmNR; s++ {
				j := j0 + s
				var v float32
				if j < jc+nc {
					if transB {
						v = b[j*k+pc+p]
					} else {
						v = b[(pc+p)*n+j]
					}
				}
				dst[p*gemmNR+s] = v
			}
		}
	}
}

// gemmMicro4x8Go accumulates a 4×8 tile over kc packed steps:
// acc[r*8+s] = Σ_p pa[p*4+r]·pb[p*8+s]. It is the portable reference for
// the per-arch gemmMicro4x8; the SSE implementation uses MULPS/ADDPS,
// whose per-lane rounding is identical to scalar mul-then-add, so both
// produce bit-identical results (pinned by TestGemmMicroKernelParity).
func gemmMicro4x8Go(kc int, pa, pb []float32, acc *[gemmMR * gemmNR]float32) {
	var (
		c00, c01, c02, c03, c04, c05, c06, c07 float32
		c10, c11, c12, c13, c14, c15, c16, c17 float32
		c20, c21, c22, c23, c24, c25, c26, c27 float32
		c30, c31, c32, c33, c34, c35, c36, c37 float32
	)
	pa = pa[:kc*gemmMR]
	pb = pb[:kc*gemmNR]
	for p := 0; p < kc; p++ {
		pav := pa[p*gemmMR : p*gemmMR+gemmMR]
		pbv := pb[p*gemmNR : p*gemmNR+gemmNR]
		a0, a1, a2, a3 := pav[0], pav[1], pav[2], pav[3]
		b0, b1, b2, b3 := pbv[0], pbv[1], pbv[2], pbv[3]
		b4, b5, b6, b7 := pbv[4], pbv[5], pbv[6], pbv[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	acc[0], acc[1], acc[2], acc[3], acc[4], acc[5], acc[6], acc[7] = c00, c01, c02, c03, c04, c05, c06, c07
	acc[8], acc[9], acc[10], acc[11], acc[12], acc[13], acc[14], acc[15] = c10, c11, c12, c13, c14, c15, c16, c17
	acc[16], acc[17], acc[18], acc[19], acc[20], acc[21], acc[22], acc[23] = c20, c21, c22, c23, c24, c25, c26, c27
	acc[24], acc[25], acc[26], acc[27], acc[28], acc[29], acc[30], acc[31] = c30, c31, c32, c33, c34, c35, c36, c37
}

// storeTile adds the mi×nj valid region of a 4×8 accumulator tile into C
// at (i0, j0). On the first k-block the destination is beta-scaled first,
// matching the beta-then-accumulate semantics of the unblocked kernel.
func storeTile(c []float32, n, i0, j0, mi, nj int, acc *[gemmMR * gemmNR]float32, first bool, beta float32) {
	for r := 0; r < mi; r++ {
		crow := c[(i0+r)*n+j0 : (i0+r)*n+j0+nj]
		arow := acc[r*gemmNR : r*gemmNR+nj]
		switch {
		case first && beta == 0:
			for s := range crow {
				crow[s] = arow[s]
			}
		case first && beta != 1:
			for s := range crow {
				crow[s] = beta*crow[s] + arow[s]
			}
		default:
			for s := range crow {
				crow[s] += arow[s]
			}
		}
	}
}
